// E2: update time of flow tables - the paper's stated evaluation metric
// ("we have been running our evaluations with respect to the update time of
// flow tables in OpenFlow switches").
//
// Sweeps the two asynchrony knobs the demo exposes:
//   - FlowMod install latency distribution (OVS-ish constant / lognormal,
//     and the heavy-tailed bounded Pareto that models the hardware switches
//     of the paper's footnote 2 / Kuzniar et al. PAM'15),
//   - control-channel RTT,
// and reports the controller-observed update completion time per scheduler.
// Expected shape: multi-round schedulers pay roughly (#rounds) x (RTT +
// install + barrier) while OneShot pays one round; the security of WayUp
// costs a constant factor, not a scaling penalty.
#include "bench_common.hpp"

#include "tsu/topo/instances.hpp"

namespace tsu {
namespace {

struct InstallModel {
  const char* name;
  sim::LatencyModel model;
};

void run() {
  bench::print_header(
      "E2", "update time of flow tables vs install latency and RTT",
      "section 2 evaluation metric (update time of flow tables)");

  const topo::Fig1 fig = topo::fig1();
  const std::vector<InstallModel> install_models{
      {"const 1ms", sim::LatencyModel::constant(sim::milliseconds(1))},
      {"lognormal med=1ms s=0.7",
       sim::LatencyModel::lognormal(sim::milliseconds(1), 0.7)},
      {"pareto 0.5..50ms a=1.3",
       sim::LatencyModel::pareto(sim::microseconds(500), sim::milliseconds(50),
                                 1.3)},
  };
  const std::vector<std::pair<const char*, sim::Duration>> one_way{
      {"0.1", sim::microseconds(100)},
      {"1", sim::milliseconds(1)},
      {"10", sim::milliseconds(10)},
  };

  stats::Table table({"install model", "one-way ch. ms", "algorithm",
                      "rounds", "mean ms", "p95 ms", "max ms"});
  const std::vector<std::uint64_t> seeds = bench::seed_range(50);

  for (const InstallModel& install : install_models) {
    for (const auto& [rtt_name, latency] : one_way) {
      for (const core::Algorithm algorithm :
           {core::Algorithm::kOneShot, core::Algorithm::kTwoPhase,
            core::Algorithm::kWayUp, core::Algorithm::kPeacock,
            core::Algorithm::kSlfGreedy}) {
        const Result<core::PlanOutcome> planned =
            core::plan(fig.instance, algorithm);
        if (!planned.ok()) continue;
        core::ExecutorConfig config;
        config.with_traffic = false;  // pure control-plane timing
        config.switch_config.install_latency = install.model;
        config.channel.latency = sim::LatencyModel::constant(latency);
        const Result<core::SeedSweep> sweep = core::sweep_seeds(
            fig.instance, planned.value().schedule, config, seeds);
        if (!sweep.ok()) continue;
        table.add_row(
            {install.name, rtt_name, core::to_string(algorithm),
             std::to_string(planned.value().schedule.round_count()),
             bench::fmt(sweep.value().update_ms.mean()),
             bench::fmt(sweep.value().update_ms_pct.p95()),
             bench::fmt(sweep.value().update_ms.max())});
      }
    }
  }
  bench::print_table(table);
}

}  // namespace
}  // namespace tsu

int main() {
  tsu::run();
  return 0;
}
