// E5: WayUp round counts and the optimality gap.
//
// WayUp [5] promises waypoint enforcement in a constant number of rounds.
// On small random instances we compare its round count against the true
// minimum (exhaustive search with the same per-subset WPE oracle) and
// verify every schedule with the model checker. Expected shape: WayUp is
// at most 4 rounds, usually within one round of optimal; the instances
// where the optimum is smaller are those with empty conflict sets.
#include "bench_common.hpp"

#include <map>

#include "tsu/topo/instances.hpp"
#include "tsu/update/schedulers.hpp"
#include "tsu/util/rng.hpp"
#include "tsu/verify/checker.hpp"

namespace tsu {
namespace {

void run() {
  bench::print_header("E5", "WayUp rounds vs brute-force optimum (WPE)",
                      "WayUp [5] constant-round claim");

  Rng rng(424242);
  topo::RandomInstanceOptions options;
  options.old_interior_max = 4;
  options.new_len_max = 4;
  options.reuse_probability = 0.7;

  std::map<std::pair<std::size_t, std::size_t>, int> histogram;
  int verified = 0;
  int total = 0;
  stats::Summary wayup_rounds;
  stats::Summary optimal_rounds;

  while (total < 120) {
    const update::Instance inst = topo::random_instance(rng, options);
    if (inst.touched().size() > 9) continue;
    const Result<update::Schedule> wayup = update::plan_wayup(inst);
    if (!wayup.ok()) continue;
    update::OptimalOptions optimal_options;
    optimal_options.properties = update::kWaypoint;
    optimal_options.max_rounds = 6;
    const Result<update::Schedule> optimal =
        update::plan_optimal(inst, optimal_options);
    if (!optimal.ok()) continue;
    ++total;
    wayup_rounds.add(static_cast<double>(wayup.value().round_count()));
    optimal_rounds.add(static_cast<double>(optimal.value().round_count()));
    ++histogram[{wayup.value().round_count(),
                 optimal.value().round_count()}];
    if (verify::check_schedule(inst, wayup.value(), update::kWaypoint).ok)
      ++verified;
  }

  stats::Table table({"wayup rounds", "optimal rounds", "instances"});
  for (const auto& [key, count] : histogram)
    table.add_row({std::to_string(key.first), std::to_string(key.second),
                   std::to_string(count)});
  bench::print_table(table);

  std::printf("instances: %d\n", total);
  std::printf("wayup   mean rounds: %s (max %s)\n",
              bench::fmt(wayup_rounds.mean()).c_str(),
              bench::fmt(wayup_rounds.max(), 0).c_str());
  std::printf("optimal mean rounds: %s\n",
              bench::fmt(optimal_rounds.mean()).c_str());
  std::printf("WPE model-check pass rate: %d/%d\n", verified, total);
}

}  // namespace
}  // namespace tsu

int main() {
  tsu::run();
  return 0;
}
