// E7: what the barriers buy and what they cost.
//
// The demo's controller fences every round with BARRIER_REQUEST/REPLY
// ("the barrier messages are utilized to ensure reliable network updates").
// This bench runs the same WayUp schedule (a) with per-round barriers and
// (b) recklessly pipelined (all FlowMods back-to-back, one trailing
// barrier), measuring the update-time cost of the fences and the security
// violations that appear the moment they are removed - the round structure
// is only meaningful if rounds are actually separated.
#include "bench_common.hpp"

#include "tsu/topo/instances.hpp"

namespace tsu {
namespace {

void run() {
  bench::print_header("E7", "barrier cost vs consistency",
                      "sections 1-2 (barriers make rounds reliable)");

  const topo::Fig1 fig = topo::fig1();
  const Result<core::PlanOutcome> planned =
      core::plan(fig.instance, core::Algorithm::kWayUp);
  if (!planned.ok()) return;

  stats::Table table({"mode", "mean update ms", "p95 update ms",
                      "bypassed pkts (total)", "runs w/ bypass"});
  const std::vector<std::uint64_t> seeds = bench::seed_range(100);

  for (const bool use_barriers : {true, false}) {
    core::ExecutorConfig config = bench::harsh_config(1);
    config.controller.use_barriers = use_barriers;
    const Result<core::SeedSweep> sweep = core::sweep_seeds(
        fig.instance, planned.value().schedule, config, seeds);
    if (!sweep.ok()) continue;
    const core::SeedSweep& s = sweep.value();
    table.add_row({use_barriers ? "barriered rounds (the paper's controller)"
                                : "reckless pipeline (no round fences)",
                   bench::fmt(s.update_ms.mean()),
                   bench::fmt(s.update_ms_pct.p95()),
                   bench::fmt(s.bypassed.mean() *
                              static_cast<double>(s.runs), 0),
                   std::to_string(s.runs_with_bypass) + "/" +
                       std::to_string(s.runs)});
  }
  bench::print_table(table);
  std::printf(
      "shape: removing the fences makes the update faster and insecure -\n"
      "the WayUp round structure only enforces WPE when barriers separate\n"
      "the rounds, which is exactly the demo's point.\n");
}

}  // namespace
}  // namespace tsu

int main() {
  tsu::run();
  return 0;
}
