// E4: number of rounds vs instance size - the Peacock [PODC'15] contrast.
//
// On the reversal family (new route traverses the old route's interior
// backwards) strong loop freedom degenerates to Θ(n) rounds, while the
// relaxed (weak) loop freedom that Peacock targets stays essentially flat.
// Random instances show the same gap in expectation. This regenerates the
// qualitative figure behind the demo's "weak loop freedom [4]" guarantee.
#include "bench_common.hpp"

#include "tsu/topo/instances.hpp"
#include "tsu/update/schedulers.hpp"
#include "tsu/util/rng.hpp"

namespace tsu {
namespace {

void run() {
  bench::print_header("E4", "rounds needed: relaxed vs strong loop freedom",
                      "Peacock [4] claim (O(log n)-ish vs Theta(n))");

  stats::Table reversal({"n (old path length)", "peacock rounds",
                         "slf-greedy rounds", "speedup"});
  for (const std::size_t n : {4u, 6u, 8u, 12u, 16u, 24u, 32u, 48u, 64u}) {
    const update::Instance inst = topo::reversal_instance(n);
    const Result<update::Schedule> peacock = update::plan_peacock(inst);
    const Result<update::Schedule> slf = update::plan_slf_greedy(inst);
    if (!peacock.ok() || !slf.ok()) continue;
    reversal.add_row(
        {std::to_string(n), std::to_string(peacock.value().round_count()),
         std::to_string(slf.value().round_count()),
         bench::fmt(static_cast<double>(slf.value().round_count()) /
                    static_cast<double>(peacock.value().round_count()), 1) +
             "x"});
  }
  std::printf("reversal family (worst case for strong loop freedom):\n");
  bench::print_table(reversal);

  stats::Table random_table({"old interior", "instances", "peacock mean",
                             "peacock max", "slf mean", "slf max",
                             "wayup mean (<=4)"});
  Rng rng(20160822);  // SIGCOMM'16 started Aug 22, 2016
  for (const std::size_t interior : {4u, 8u, 12u, 16u, 24u}) {
    topo::RandomInstanceOptions options;
    options.old_interior_min = interior;
    options.old_interior_max = interior;
    options.new_len_min = interior;
    options.new_len_max = interior;
    options.reuse_probability = 0.7;
    stats::Summary peacock_rounds;
    stats::Summary slf_rounds;
    stats::Summary wayup_rounds;
    const int instances = 60;
    for (int i = 0; i < instances; ++i) {
      const update::Instance inst = topo::random_instance(rng, options);
      if (const Result<update::Schedule> s = update::plan_peacock(inst); s.ok())
        peacock_rounds.add(static_cast<double>(s.value().round_count()));
      if (const Result<update::Schedule> s = update::plan_slf_greedy(inst);
          s.ok())
        slf_rounds.add(static_cast<double>(s.value().round_count()));
      if (const Result<update::Schedule> s = update::plan_wayup(inst); s.ok())
        wayup_rounds.add(static_cast<double>(s.value().round_count()));
    }
    random_table.add_row(
        {std::to_string(interior), std::to_string(instances),
         bench::fmt(peacock_rounds.mean()),
         bench::fmt(peacock_rounds.max(), 0), bench::fmt(slf_rounds.mean()),
         bench::fmt(slf_rounds.max(), 0), bench::fmt(wayup_rounds.mean())});
  }
  std::printf("random two-path instances (reuse=0.7):\n");
  bench::print_table(random_table);
}

}  // namespace
}  // namespace tsu

int main() {
  tsu::run();
  return 0;
}
