// E10 (extension): feasibility and cost of jointly transiently secure
// schedules (WPE + relaxed loop freedom + blackhole freedom).
//
// The demo's two schedulers each guarantee one property; its reference [3]
// (SIGMETRICS'16, "Transiently secure network updates") asks for both at
// once and proves that is not always possible. This bench measures, over
// random instances of growing overlap, (a) the fraction that admit a
// jointly secure schedule, (b) the round cost when they do, and (c) shows
// that the paper's own Figure 1 scenario is jointly infeasible - the
// structural reason the demo ships WayUp and Peacock separately.
#include "bench_common.hpp"

#include "tsu/topo/instances.hpp"
#include "tsu/update/schedulers.hpp"
#include "tsu/util/rng.hpp"
#include "tsu/verify/checker.hpp"

namespace tsu {
namespace {

void run() {
  bench::print_header("E10", "joint WPE + loop freedom: feasibility and cost",
                      "extension; paper reference [3] (SIGMETRICS'16)");

  const topo::Fig1 fig = topo::fig1();
  const Result<update::Schedule> fig1_secure =
      update::plan_secure(fig.instance);
  std::printf("Figure 1 scenario jointly securable: %s\n\n",
              fig1_secure.ok() ? "YES" : "NO (proved by exhaustive search)");

  stats::Table table({"reuse prob", "instances", "jointly feasible",
                      "mean rounds (feasible)", "wayup mean rounds",
                      "peacock mean rounds"});
  Rng rng(101010);
  for (const double reuse : {0.2, 0.4, 0.6, 0.8}) {
    topo::RandomInstanceOptions options;
    options.old_interior_max = 5;
    options.new_len_max = 5;
    options.reuse_probability = reuse;
    int feasible = 0;
    int total = 0;
    stats::Summary secure_rounds;
    stats::Summary wayup_rounds;
    stats::Summary peacock_rounds;
    while (total < 80) {
      const update::Instance inst = topo::random_instance(rng, options);
      if (inst.touched().size() > 12) continue;
      ++total;
      if (const Result<update::Schedule> s = update::plan_wayup(inst); s.ok())
        wayup_rounds.add(static_cast<double>(s.value().round_count()));
      if (const Result<update::Schedule> s = update::plan_peacock(inst);
          s.ok())
        peacock_rounds.add(static_cast<double>(s.value().round_count()));
      const Result<update::Schedule> secure = update::plan_secure(inst);
      if (!secure.ok()) continue;
      ++feasible;
      secure_rounds.add(static_cast<double>(secure.value().round_count()));
    }
    table.add_row({bench::fmt(reuse, 1), std::to_string(total),
                   std::to_string(feasible) + "/" + std::to_string(total),
                   secure_rounds.count() > 0
                       ? bench::fmt(secure_rounds.mean())
                       : "-",
                   bench::fmt(wayup_rounds.mean()),
                   bench::fmt(peacock_rounds.mean())});
  }
  bench::print_table(table);
  std::printf(
      "shape: the more the new route reuses old-route switches (larger\n"
      "conflict sets X/Y and more backward moves), the rarer jointly\n"
      "secure schedules become - matching the SIGMETRICS'16 impossibility\n"
      "results and explaining the demo's two-algorithm design.\n");
}

}  // namespace
}  // namespace tsu

int main() {
  tsu::run();
  return 0;
}
