// E8: the controller's message queue under concurrent policy updates.
//
// The paper's controller enqueues REST messages and processes them
// strictly one at a time (§2; multi-policy scheduling is delegated to
// refs [1] and [3]). This bench submits k simultaneous policy updates and
// measures makespan, per-update duration and queueing delay - the head-of-
// line cost of the serializing design.
//
// The hotpath section is the steady-state cost model behind every number
// above: ns/event and allocations/event for the pooled EventQueue loop,
// cancel churn, a codec encode+decode round trip on caller-owned scratch,
// and a full channel send->deliver round trip. The allocation counters
// come from the global operator-new hooks (util/alloc_hooks.hpp, included
// in THIS translation unit only); every *_steady_allocs figure is expected
// to be zero, and the committed BENCH_*.json baseline plus
// tools/check_bench_regression.py turn any regression - allocation or
// >threshold ns/event - into a CI failure.
#include "bench_common.hpp"

#include <chrono>
#include <fstream>
#include <string_view>

#include "tsu/channel/channel.hpp"
#include "tsu/json/json.hpp"
#include "tsu/proto/codec.hpp"
#include "tsu/proto/messages.hpp"
#include "tsu/sim/event_queue.hpp"
#include "tsu/sim/simulator.hpp"
#include "tsu/topo/instances.hpp"
#include "tsu/util/alloc_hooks.hpp"
#include "tsu/util/rng.hpp"

namespace tsu {
namespace {

// Wall-clock ns for one run of `body`, amortized over `iterations`.
template <typename Body>
double time_ns_per(std::uint64_t iterations, Body&& body) {
  const auto start = std::chrono::steady_clock::now();
  body();
  const auto stop = std::chrono::steady_clock::now();
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start);
  return static_cast<double>(ns.count()) / static_cast<double>(iterations);
}

void queue_bench(json::Array* rows) {
  bench::print_header("E8", "message-queue behaviour under k concurrent updates",
                      "section 2 (controller-side message queue; cf. [1],[3])");

  stats::Table table({"k requests", "makespan ms", "mean update ms",
                      "mean queueing delay ms", "max queueing delay ms"});

  for (const std::size_t k : {1u, 2u, 4u, 8u, 16u}) {
    Rng rng(1000 + k);
    topo::RandomInstanceOptions options;
    options.old_interior_min = 4;
    options.old_interior_max = 6;
    options.new_len_min = 4;
    options.new_len_max = 6;

    std::vector<update::Instance> instances;
    std::vector<update::Schedule> schedules;
    for (std::size_t i = 0; i < k; ++i) {
      instances.push_back(topo::random_instance(rng, options));
      const Result<core::PlanOutcome> planned =
          core::plan(instances.back(), core::Algorithm::kWayUp);
      if (!planned.ok()) {
        instances.pop_back();
        continue;
      }
      schedules.push_back(planned.value().schedule);
    }
    std::vector<const update::Instance*> instance_ptrs;
    std::vector<const update::Schedule*> schedule_ptrs;
    for (std::size_t i = 0; i < instances.size(); ++i) {
      instance_ptrs.push_back(&instances[i]);
      schedule_ptrs.push_back(&schedules[i]);
    }

    core::ExecutorConfig config;
    config.with_traffic = false;
    config.channel.latency = sim::LatencyModel::constant(sim::milliseconds(1));
    config.switch_config.install_latency =
        sim::LatencyModel::lognormal(sim::milliseconds(1), 0.5);
    const Result<std::vector<core::ExecutionResult>> results =
        core::execute_queue(instance_ptrs, schedule_ptrs, config);
    if (!results.ok()) continue;

    stats::Summary durations;
    stats::Summary queueing;
    sim::SimTime first_start = ~sim::SimTime{0};
    sim::SimTime last_finish = 0;
    for (const core::ExecutionResult& r : results.value()) {
      durations.add(r.update_ms());
      queueing.add(sim::to_ms(r.update.queueing_delay()));
      first_start = std::min(first_start, r.update.started);
      last_finish = std::max(last_finish, r.update.finished);
    }
    const double makespan_ms = sim::to_ms(last_finish - first_start);
    table.add_row({std::to_string(results.value().size()),
                   bench::fmt(makespan_ms), bench::fmt(durations.mean()),
                   bench::fmt(queueing.mean()), bench::fmt(queueing.max())});
    if (rows != nullptr) {
      json::Object entry;
      entry.set("k", json::Value(
                         static_cast<std::int64_t>(results.value().size())));
      entry.set("makespan_ms", json::Value(makespan_ms));
      entry.set("mean_update_ms", json::Value(durations.mean()));
      entry.set("mean_queueing_delay_ms", json::Value(queueing.mean()));
      entry.set("max_queueing_delay_ms", json::Value(queueing.max()));
      rows->push_back(json::Value(std::move(entry)));
    }
  }
  bench::print_table(table);
  std::printf(
      "shape: the makespan and queueing delay grow linearly in k - the\n"
      "serializing queue is simple and consistent but head-of-line blocked;\n"
      "refs [1]/[3] of the paper study schedulers for multiple policies.\n");
}

// The hot-path cost model. Each scenario warms its pools to the high-water
// mark first (the same discipline as tests/hotpath_alloc_test.cpp, which
// pins the zero-allocation property as a hard test), then measures a long
// steady-state loop: wall ns/event and allocations observed in the window.
json::Object hotpath_bench() {
  bench::print_header(
      "HOTPATH", "steady-state ns/event and allocations per event",
      "allocation-free hot path (event arena, scratch codec, frame pool)");

  json::Object hotpath;
  stats::Table table({"scenario", "events", "ns/event", "allocs (steady)"});
  const auto record = [&](const char* name, std::uint64_t events,
                          double ns_per_event, std::uint64_t steady_allocs) {
    table.add_row({name, std::to_string(events), bench::fmt(ns_per_event),
                   std::to_string(steady_allocs)});
    json::Object entry;
    entry.set("events", json::Value(static_cast<std::int64_t>(events)));
    entry.set("ns_per_event", json::Value(ns_per_event));
    entry.set("steady_allocs",
              json::Value(static_cast<std::int64_t>(steady_allocs)));
    hotpath.set(name, json::Value(std::move(entry)));
  };

  // --- EventQueue pop/fire/push over a warm 1000-slot arena ------------
  {
    sim::EventQueue q;
    std::uint64_t fired = 0;
    sim::SimTime t = 0;
    auto cycle = [&]() {
      auto event = q.pop();
      event.fn();
      q.push(++t, [&fired]() { ++fired; });
    };
    for (int i = 0; i < 1000; ++i) q.push(++t, [&fired]() { ++fired; });
    for (int i = 0; i < 1000; ++i) {
      cycle();
      q.cancel(q.push(t + 500000, []() {}));
    }
    constexpr std::uint64_t kCycles = 2000000;
    const std::uint64_t before = alloc_hooks::allocations();
    const double ns = time_ns_per(kCycles, [&]() {
      for (std::uint64_t i = 0; i < kCycles; ++i) cycle();
    });
    record("queue_pop_push", kCycles, ns,
           alloc_hooks::allocations() - before);

    constexpr std::uint64_t kCancels = 1000000;
    const std::uint64_t before_cancel = alloc_hooks::allocations();
    const double cancel_ns = time_ns_per(kCancels, [&]() {
      for (std::uint64_t i = 0; i < kCancels; ++i)
        q.cancel(q.push(t + 500000, []() {}));
    });
    record("queue_cancel_churn", kCancels, cancel_ns,
           alloc_hooks::allocations() - before_cancel);
  }

  // --- codec: encode_into caller scratch, decode a span view -----------
  {
    proto::FlowMod mod;
    mod.match = flow::Match::exact_flow(42);
    mod.action = flow::Action::forward(7);
    const proto::Message message = proto::make_flow_mod(1234, mod);
    std::vector<std::byte> scratch;
    proto::encode_into(message, scratch);  // warm the scratch capacity
    std::uint64_t decoded = 0;
    constexpr std::uint64_t kFrames = 1000000;
    const std::uint64_t before = alloc_hooks::allocations();
    const double ns = time_ns_per(kFrames, [&]() {
      for (std::uint64_t i = 0; i < kFrames; ++i) {
        proto::encode_into(message, scratch);
        const Result<proto::Message> round = proto::decode(scratch);
        if (round.ok() && round.value().type() == proto::MsgType::kFlowMod)
          ++decoded;
      }
    });
    record("codec_roundtrip", kFrames, ns,
           alloc_hooks::allocations() - before);
    if (decoded != kFrames)
      std::fprintf(stderr, "codec round trip dropped frames - BENCH BUG\n");
  }

  // --- channel: send -> pooled frame -> codec -> delivery -> decode ----
  {
    sim::Simulator sim;
    channel::ChannelConfig config;
    channel::ControlChannel ch(sim, config, Rng(7));
    std::uint64_t received = 0;
    ch.set_receiver([&](const proto::Message& message) {
      if (message.type() == proto::MsgType::kBarrierRequest) ++received;
    });
    for (std::uint32_t i = 0; i < 64; ++i) {
      ch.send(proto::make_barrier_request(i));
      sim.run();
    }
    constexpr std::uint64_t kRoundTrips = 200000;
    const std::uint64_t before = alloc_hooks::allocations();
    const double ns = time_ns_per(kRoundTrips, [&]() {
      for (std::uint64_t i = 0; i < kRoundTrips; ++i) {
        ch.send(proto::make_barrier_request(static_cast<Xid>(i)));
        sim.run();
      }
    });
    record("channel_roundtrip", kRoundTrips, ns,
           alloc_hooks::allocations() - before);
    if (received != 64 + kRoundTrips)
      std::fprintf(stderr, "channel round trip dropped frames - BENCH BUG\n");
  }

  bench::print_table(table);
  std::printf(
      "shape: every steady-allocs column is zero - the slot arena, frame\n"
      "pool and caller-owned codec scratch absorb the per-event traffic\n"
      "after warmup. tools/check_bench_regression.py fails CI if any\n"
      "allocation reappears or ns/event regresses past the threshold.\n");
  return hotpath;
}

}  // namespace
}  // namespace tsu

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string_view(argv[i]) == "--json") json_path = argv[i + 1];

  tsu::json::Array queue_rows;
  tsu::queue_bench(json_path != nullptr ? &queue_rows : nullptr);
  tsu::json::Object hotpath = tsu::hotpath_bench();

  if (json_path != nullptr) {
    tsu::json::Object doc;
    doc.set("bench", tsu::json::Value("bench_queue/serial-queue+hotpath"));
    doc.set("queue", tsu::json::Value(std::move(queue_rows)));
    doc.set("hotpath", tsu::json::Value(std::move(hotpath)));
    std::ofstream out(json_path);
    out << tsu::json::write(tsu::json::Value(std::move(doc))) << "\n";
    std::printf("queue+hotpath JSON written to %s\n", json_path);
  }
  return 0;
}
