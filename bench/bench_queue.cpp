// E8: the controller's message queue under concurrent policy updates.
//
// The paper's controller enqueues REST messages and processes them
// strictly one at a time (§2; multi-policy scheduling is delegated to
// refs [1] and [3]). This bench submits k simultaneous policy updates and
// measures makespan, per-update duration and queueing delay - the head-of-
// line cost of the serializing design.
#include "bench_common.hpp"

#include "tsu/topo/instances.hpp"
#include "tsu/util/rng.hpp"

namespace tsu {
namespace {

void run() {
  bench::print_header("E8", "message-queue behaviour under k concurrent updates",
                      "section 2 (controller-side message queue; cf. [1],[3])");

  stats::Table table({"k requests", "makespan ms", "mean update ms",
                      "mean queueing delay ms", "max queueing delay ms"});

  for (const std::size_t k : {1u, 2u, 4u, 8u, 16u}) {
    Rng rng(1000 + k);
    topo::RandomInstanceOptions options;
    options.old_interior_min = 4;
    options.old_interior_max = 6;
    options.new_len_min = 4;
    options.new_len_max = 6;

    std::vector<update::Instance> instances;
    std::vector<update::Schedule> schedules;
    for (std::size_t i = 0; i < k; ++i) {
      instances.push_back(topo::random_instance(rng, options));
      const Result<core::PlanOutcome> planned =
          core::plan(instances.back(), core::Algorithm::kWayUp);
      if (!planned.ok()) {
        instances.pop_back();
        continue;
      }
      schedules.push_back(planned.value().schedule);
    }
    std::vector<const update::Instance*> instance_ptrs;
    std::vector<const update::Schedule*> schedule_ptrs;
    for (std::size_t i = 0; i < instances.size(); ++i) {
      instance_ptrs.push_back(&instances[i]);
      schedule_ptrs.push_back(&schedules[i]);
    }

    core::ExecutorConfig config;
    config.with_traffic = false;
    config.channel.latency = sim::LatencyModel::constant(sim::milliseconds(1));
    config.switch_config.install_latency =
        sim::LatencyModel::lognormal(sim::milliseconds(1), 0.5);
    const Result<std::vector<core::ExecutionResult>> results =
        core::execute_queue(instance_ptrs, schedule_ptrs, config);
    if (!results.ok()) continue;

    stats::Summary durations;
    stats::Summary queueing;
    sim::SimTime first_start = ~sim::SimTime{0};
    sim::SimTime last_finish = 0;
    for (const core::ExecutionResult& r : results.value()) {
      durations.add(r.update_ms());
      queueing.add(sim::to_ms(r.update.queueing_delay()));
      first_start = std::min(first_start, r.update.started);
      last_finish = std::max(last_finish, r.update.finished);
    }
    table.add_row({std::to_string(results.value().size()),
                   bench::fmt(sim::to_ms(last_finish - first_start)),
                   bench::fmt(durations.mean()), bench::fmt(queueing.mean()),
                   bench::fmt(queueing.max())});
  }
  bench::print_table(table);
  std::printf(
      "shape: the makespan and queueing delay grow linearly in k - the\n"
      "serializing queue is simple and consistent but head-of-line blocked;\n"
      "refs [1]/[3] of the paper study schedulers for multiple policies.\n");
}

}  // namespace
}  // namespace tsu

int main() {
  tsu::run();
  return 0;
}
