// E9: microbenchmarks of the substrate primitives (google-benchmark).
#include <benchmark/benchmark.h>

#include "tsu/json/json.hpp"
#include "tsu/proto/codec.hpp"
#include "tsu/rest/rest.hpp"
#include "tsu/topo/instances.hpp"
#include "tsu/update/schedulers.hpp"
#include "tsu/util/rng.hpp"
#include "tsu/verify/checker.hpp"

namespace tsu {
namespace {

void BM_RngU64(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng());
}
BENCHMARK(BM_RngU64);

void BM_JsonParseRestMessage(benchmark::State& state) {
  const std::string text =
      R"({"oldpath":[1,2,3,4,8,5,6,12],"newpath":[1,7,5,3,2,9,10,11,12],)"
      R"("wp":3,"interval":50,"add":[{"dpid":7,"priority":100,)"
      R"("match":{"flow":1},"actions":[{"type":"OUTPUT","port":5}]}]})";
  for (auto _ : state) {
    auto result = json::parse(text);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_JsonParseRestMessage);

void BM_RestParseUpdateMessage(benchmark::State& state) {
  const std::string text =
      R"({"oldpath":[1,2,3,4,8,5,6,12],"newpath":[1,7,5,3,2,9,10,11,12],)"
      R"("wp":3,"interval":50})";
  for (auto _ : state) {
    auto result = rest::parse_update_message(text);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_RestParseUpdateMessage);

void BM_ProtoEncodeFlowMod(benchmark::State& state) {
  proto::FlowMod mod;
  mod.match.flow = 1;
  mod.match.src_host = 2;
  mod.action = flow::Action::forward(5);
  const proto::Message message = proto::make_flow_mod(7, mod);
  for (auto _ : state) {
    auto wire = proto::encode(message);
    benchmark::DoNotOptimize(wire);
  }
}
BENCHMARK(BM_ProtoEncodeFlowMod);

void BM_ProtoDecodeFlowMod(benchmark::State& state) {
  proto::FlowMod mod;
  mod.match.flow = 1;
  mod.action = flow::Action::forward(5);
  const auto wire = proto::encode(proto::make_flow_mod(7, mod));
  for (auto _ : state) {
    auto message = proto::decode(wire);
    benchmark::DoNotOptimize(message);
  }
}
BENCHMARK(BM_ProtoDecodeFlowMod);

void BM_FlowTableLookup(benchmark::State& state) {
  flow::FlowTable table;
  for (FlowId f = 0; f < static_cast<FlowId>(state.range(0)); ++f)
    table.add(flow::FlowRule{flow::Match::exact_flow(f),
                             flow::Action::forward(2), 100, 0});
  flow::Packet packet;
  packet.flow = static_cast<FlowId>(state.range(0)) - 1;  // worst case
  for (auto _ : state) benchmark::DoNotOptimize(table.lookup(packet));
}
BENCHMARK(BM_FlowTableLookup)->Arg(8)->Arg(64)->Arg(512);

void BM_WalkFromSource(benchmark::State& state) {
  const update::Instance inst = topo::fig1().instance;
  const update::StateMask mask = update::full_state(inst);
  for (auto _ : state)
    benchmark::DoNotOptimize(update::walk_from_source(inst, mask));
}
BENCHMARK(BM_WalkFromSource);

void BM_PlanWayUpFig1(benchmark::State& state) {
  const update::Instance inst = topo::fig1().instance;
  for (auto _ : state)
    benchmark::DoNotOptimize(update::plan_wayup(inst));
}
BENCHMARK(BM_PlanWayUpFig1);

void BM_PlanPeacockReversal(benchmark::State& state) {
  const update::Instance inst =
      topo::reversal_instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(update::plan_peacock(inst));
}
BENCHMARK(BM_PlanPeacockReversal)->Arg(8)->Arg(16)->Arg(32);

void BM_PlanSlfGreedyReversal(benchmark::State& state) {
  const update::Instance inst =
      topo::reversal_instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(update::plan_slf_greedy(inst));
}
BENCHMARK(BM_PlanSlfGreedyReversal)->Arg(8)->Arg(16)->Arg(32);

void BM_CheckWayUpFig1(benchmark::State& state) {
  const update::Instance inst = topo::fig1().instance;
  const auto schedule = update::plan_wayup(inst);
  for (auto _ : state) {
    auto report =
        verify::check_schedule(inst, schedule.value(), update::kWaypoint);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_CheckWayUpFig1);

void BM_RandomInstance(benchmark::State& state) {
  Rng rng(1);
  topo::RandomInstanceOptions options;
  for (auto _ : state)
    benchmark::DoNotOptimize(topo::random_instance(rng, options));
}
BENCHMARK(BM_RandomInstance);

}  // namespace
}  // namespace tsu

BENCHMARK_MAIN();
