// E1 + E6: the paper's Figure 1 demo scenario.
//
// Reproduces the demo run: the 12-switch topology, old route
// <1,2,3,4,8,5,6,12>, new route <1,7,5,3,2,9,10,11,12>, waypoint 3
// (firewall/IDS). For every scheduler we print the round structure, the
// model-checker verdict for the full transient-state space, and the
// observed data-plane behaviour across 100 asynchronous runs. The paper's
// claim: the multi-round (WayUp) update is transiently secure - no packet
// ever slips past switch 3 - while the single-round update is not.
//
// The E6 section prints the per-millisecond packet-outcome timeline of one
// run each for OneShot and WayUp, the textual equivalent of the demo video.
#include "bench_common.hpp"

#include "tsu/topo/instances.hpp"
#include "tsu/verify/checker.hpp"

namespace tsu {
namespace {

void run() {
  const topo::Fig1 fig = topo::fig1();
  bench::print_header("E1", "Figure 1 scenario: transiently secure updates",
                      "Figure 1 + section 2 claims (WPE via WayUp, weak "
                      "loop freedom via Peacock)");

  std::printf("topology: %s\n", fig.topology.to_string().c_str());
  std::printf("old route: %s\n",
              graph::to_string(fig.instance.old_path()).c_str());
  std::printf("new route: %s\n",
              graph::to_string(fig.instance.new_path()).c_str());
  std::printf("waypoint : switch %u\n\n", *fig.instance.waypoint());

  stats::Table table({"algorithm", "rounds", "schedule", "checker(WPE)",
                      "checker(WLF)", "bypassed pkts", "looped pkts",
                      "dropped pkts", "runs w/ bypass", "update ms (mean)"});

  const std::vector<std::uint64_t> seeds = bench::seed_range(100);
  for (const core::Algorithm algorithm :
       {core::Algorithm::kOneShot, core::Algorithm::kTwoPhase,
        core::Algorithm::kWayUp, core::Algorithm::kPeacock,
        core::Algorithm::kSlfGreedy}) {
    const Result<core::PlanOutcome> planned = core::plan(fig.instance, algorithm);
    if (!planned.ok()) continue;
    const update::Schedule& schedule = planned.value().schedule;

    const verify::CheckReport wpe =
        verify::check_schedule(fig.instance, schedule, update::kWaypoint);
    const verify::CheckReport wlf = verify::check_schedule(
        fig.instance, schedule, update::kLoopFree | update::kBlackholeFree);

    const Result<core::SeedSweep> sweep = core::sweep_seeds(
        fig.instance, schedule, bench::harsh_config(1), seeds);
    if (!sweep.ok()) continue;
    const core::SeedSweep& s = sweep.value();

    table.add_row({core::to_string(algorithm),
                   std::to_string(schedule.round_count()),
                   schedule.to_string(),
                   wpe.ok ? "OK" : "VIOLATED",
                   wlf.ok ? "OK" : "VIOLATED",
                   bench::fmt(s.bypassed.mean() *
                              static_cast<double>(s.runs), 0),
                   bench::fmt(s.looped.mean() * static_cast<double>(s.runs), 0),
                   bench::fmt(s.blackholed.mean() *
                              static_cast<double>(s.runs), 0),
                   std::to_string(s.runs_with_bypass) + "/" +
                       std::to_string(s.runs),
                   bench::fmt(s.update_ms.mean())});
  }
  bench::print_table(table);

  bench::print_header("E6", "packet-outcome timeline during the update",
                      "demo narrative / video (packets during the update)");
  for (const core::Algorithm algorithm :
       {core::Algorithm::kOneShot, core::Algorithm::kWayUp}) {
    const Result<core::PlanOutcome> planned =
        core::plan(fig.instance, algorithm);
    if (!planned.ok()) continue;
    // Seed 7 shows a bypass for OneShot under the harsh regime.
    const Result<core::ExecutionResult> result = core::execute(
        fig.instance, planned.value().schedule, bench::harsh_config(7));
    if (!result.ok()) continue;
    std::printf("--- %s (seed 7) ---\n", core::to_string(algorithm));
    std::printf("update window: %s\n",
                format_duration_ns(result.value().update.duration()).c_str());
    for (std::size_t i = 0; i < result.value().timeline.size(); ++i) {
      const auto& bucket = result.value().timeline[i];
      std::printf("[%3zu ms] delivered=%3zu", i, bucket.delivered);
      if (bucket.bypassed != 0)
        std::printf("  BYPASSED-WAYPOINT=%zu", bucket.bypassed);
      if (bucket.looped != 0) std::printf("  looped=%zu", bucket.looped);
      if (bucket.blackholed != 0)
        std::printf("  dropped=%zu", bucket.blackholed);
      std::printf("\n");
    }
    std::printf("traffic: %s\n\n", result.value().traffic.to_string().c_str());
  }
}

}  // namespace
}  // namespace tsu

int main() {
  tsu::run();
  return 0;
}
