// E11 (extension): multi-policy updates - parallelizing the message queue.
//
// The demo's controller serializes concurrent policy updates (E8). Its
// reference [1] (Dudycz, Ludwig, Schmid, DSN'16, "Can't touch this:
// Consistent network updates for multiple policies") asks how much of that
// serialization is necessary. merge_policies interleaves per-policy rounds
// under the "one policy per switch per round" discipline; this bench
// measures the resulting global round count against (a) full serialization
// (sum of rounds) and (b) the perfect-parallel lower bound (max of rounds),
// as a function of how much the policies' switch sets overlap.
//
// Also reports the round-compression ablation: how many rounds
// compress_schedule removes from WayUp/Peacock output when the hazards a
// constant-round algorithm defends against are absent from the instance.
//
// The batching section drives the controller's per-switch outbox across
// every BatchMode on the 1000-flow pool workload: frames per flow,
// makespan, p50/p99 per-flow install latency and the max outbox hold, so
// the frames-vs-latency trade-off is tracked per PR. With --json FILE, the
// admission-policy and batching sections additionally write their numbers
// as a JSON document (consumed by the CI stress job).
#include <chrono>
#include <fstream>
#include <string_view>

#include "bench_common.hpp"

#include "tsu/controller/plan_cache.hpp"
#include "tsu/controller/update_request.hpp"
#include "tsu/core/service.hpp"
#include "tsu/json/json.hpp"
#include "tsu/sim/faults.hpp"
#include "tsu/sim/sharded.hpp"
#include "tsu/sim/thread_pool.hpp"
#include "tsu/util/alloc_hooks.hpp"
#include "tsu/topo/instances.hpp"
#include "tsu/update/optimizer.hpp"
#include "tsu/update/schedulers.hpp"
#include "tsu/util/rng.hpp"

namespace tsu {
namespace {

constexpr std::size_t kAdmissionFlows = 256;
constexpr std::size_t kAdmissionSwitches = 60;
constexpr std::size_t kBatchFlows = 1000;
constexpr std::size_t kBatchSwitches = 210;

// Builds k policies whose node universes overlap pairwise by `shared`
// switches out of `span`.
std::vector<update::Instance> make_policies(Rng& rng, std::size_t k,
                                            std::size_t shared) {
  std::vector<update::Instance> policies;
  topo::RandomInstanceOptions options;
  options.old_interior_min = 4;
  options.old_interior_max = 5;
  options.new_len_min = 4;
  options.new_len_max = 5;
  options.with_waypoint = false;
  for (std::size_t i = 0; i < k; ++i) {
    update::Instance inst = topo::random_instance(rng, options);
    // Shift node ids so consecutive policies share `shared` low ids.
    const NodeId offset =
        static_cast<NodeId>(i * (inst.node_count() - shared));
    graph::Path old_path = inst.old_path();
    graph::Path new_path = inst.new_path();
    for (NodeId& v : old_path) v += offset;
    for (NodeId& v : new_path) v += offset;
    policies.push_back(
        std::move(update::Instance::make(old_path, new_path)).value());
  }
  return policies;
}

// Self-perpetuating shard-local work for the parallel-epoch hotpath
// measurement: one event chain per shard keeps every shard eligible, so
// run_parallel dispatches epochs through the worker pool the whole run.
struct Ticker {
  sim::Simulator* shard = nullptr;
  std::uint64_t remaining = 0;
  std::uint64_t fired = 0;

  void tick() {
    ++fired;
    if (remaining == 0) return;
    --remaining;
    shard->schedule(7, [this]() { tick(); }, sim::EventScope::kLocal);
  }
};

// A packet-like hand-off bouncing between two shards through the SPSC
// mailbox rings.
struct Bouncer {
  sim::ShardedSim* group = nullptr;
  std::uint64_t remaining = 0;
  std::uint64_t bounces = 0;

  void bounce(std::size_t at) {
    ++bounces;
    if (remaining == 0) return;
    --remaining;
    const std::size_t to = 1 - at;
    group->post(to, at, group->shard(at).now() + 10,
                [this, to]() { bounce(to); });
  }
};

// Steady-state cost of a parallel epoch: two shards of self-perpetuating
// local chains plus a cross-shard bounce stream through the SPSC rings,
// warmed once (pool lanes, epoch scratch, event arenas, ring first-touch)
// and then measured - wall ns/event and allocations in the window. The
// *_steady_allocs figure is expected to be zero (the hard gate is
// tests/hotpath_alloc_test.cpp; the JSON baseline keeps CI honest).
json::Object hotpath_bench() {
  constexpr std::uint64_t kTicks = 200000;    // per shard
  constexpr std::uint64_t kBounces = 20000;   // cross-shard ring posts
  const std::uint64_t setup_begin = alloc_hooks::allocations();
  sim::ShardedSim group(2);
  sim::ThreadPool thread_pool(2);
  const sim::Duration lookahead = 10;  // lower-bounds the bounce post delay

  Ticker tickers[2] = {{&group.shard(0), kTicks}, {&group.shard(1), kTicks}};
  Bouncer bouncer{&group, kBounces};
  const auto kick = [&]() {
    group.schedule_on(0, 5, [&]() { tickers[0].tick(); },
                      sim::EventScope::kLocal);
    group.schedule_on(1, 5, [&]() { tickers[1].tick(); },
                      sim::EventScope::kLocal);
    group.schedule_on(0, 5, [&]() { bouncer.bounce(0); },
                      sim::EventScope::kLocal);
  };
  kick();
  group.run_parallel(thread_pool, lookahead);  // warmup run pays first-touch
  // Everything before this line is setup: construction, pool lanes, event
  // arenas, ring first-touch. The watermark splits the allocation count
  // into a paid-once setup figure and the (zero) steady-state figure.
  alloc_hooks::mark_setup_complete();
  const std::uint64_t setup_allocs =
      alloc_hooks::setup_allocations() - setup_begin;

  tickers[0].remaining = kTicks;
  tickers[1].remaining = kTicks;
  bouncer.remaining = kBounces;
  kick();
  const std::uint64_t events = 2 * kTicks + kBounces + 3;
  const std::uint64_t before = alloc_hooks::allocations();
  const auto start = std::chrono::steady_clock::now();
  group.run_parallel(thread_pool, lookahead);
  const auto stop = std::chrono::steady_clock::now();
  const std::uint64_t steady_allocs = alloc_hooks::allocations() - before;
  const double ns_per_event =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              stop - start)
                              .count()) /
      static_cast<double>(events);

  std::printf("\nparallel-epoch hotpath (2 shards, %llu local events + %llu "
              "ring posts):\n  %s ns/event, %llu allocations in the "
              "measurement window (%llu during setup)\n",
              static_cast<unsigned long long>(2 * kTicks),
              static_cast<unsigned long long>(kBounces),
              bench::fmt(ns_per_event).c_str(),
              static_cast<unsigned long long>(steady_allocs),
              static_cast<unsigned long long>(setup_allocs));
  if (group.overflow_posts() != 0)
    std::fprintf(stderr, "bounce stream overflowed the SPSC rings - the "
                         "measurement includes mutex fallbacks\n");

  json::Object hotpath;
  json::Object entry;
  entry.set("events", json::Value(static_cast<std::int64_t>(events)));
  entry.set("ns_per_event", json::Value(ns_per_event));
  entry.set("steady_allocs",
            json::Value(static_cast<std::int64_t>(steady_allocs)));
  // Setup-phase allocations (informational, not gated): the paid-once cost
  // the alloc_hooks watermark separates from the steady state.
  entry.set("setup_allocs",
            json::Value(static_cast<std::int64_t>(setup_allocs)));
  entry.set("ring_overflows",
            json::Value(static_cast<std::int64_t>(group.overflow_posts())));
  hotpath.set("parallel_epoch", json::Value(std::move(entry)));
  return hotpath;
}

// The compile-once submission path (controller/plan_cache.hpp): cold
// (lower the schedule, compute the footprint, encode every frame) vs warm
// (one cache lookup; the channel patches xids into the cached bytes)
// ns/submission at the component level, plus a service-level comparison of
// the same open-loop run with the cache off and on - sustained/s must
// match exactly (the transparency contract), wall time and the warm-window
// allocation count are what the cache buys. Gated figures
// (tools/check_bench_regression.py): warm/cold <= 0.7 and zero
// steady-state submission allocations.
json::Object submission_path_bench(bool* failed) {
  const topo::PlannedPoolWorkload pool =
      topo::planned_pool_workload(8, 48).value();
  const core::ExecutorConfig defaults;
  const std::size_t templates = pool.instances.size();
  constexpr int kReps = 2000;

  // Cold: the full per-submission pipeline the cache-off path runs.
  std::size_t sink = 0;
  const auto cold_start = std::chrono::steady_clock::now();
  for (int rep = 0; rep < kReps; ++rep) {
    for (std::size_t i = 0; i < templates; ++i) {
      controller::UpdateRequest req = controller::request_from_schedule(
          pool.instances[i], pool.schedules[i],
          static_cast<FlowId>(defaults.flow + i), defaults.priority,
          defaults.interval);
      const std::shared_ptr<const controller::CompiledPlan> plan =
          controller::compile_plan(std::move(req), 0);
      sink += plan->frames.size();
    }
  }
  const auto cold_stop = std::chrono::steady_clock::now();
  const double cold_ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              cold_stop - cold_start)
                              .count()) /
      static_cast<double>(kReps * templates);

  // Warm: the hit path - one hash lookup returning the shared plan.
  controller::PlanCache cache;
  for (std::size_t i = 0; i < templates; ++i) {
    controller::UpdateRequest req = controller::request_from_schedule(
        pool.instances[i], pool.schedules[i],
        static_cast<FlowId>(defaults.flow + i), defaults.priority,
        defaults.interval);
    cache.store(i, controller::compile_plan(std::move(req), 0));
  }
  const auto warm_start = std::chrono::steady_clock::now();
  for (int rep = 0; rep < kReps; ++rep) {
    for (std::size_t i = 0; i < templates; ++i) {
      const std::shared_ptr<const controller::CompiledPlan> plan =
          cache.lookup(i, 0);
      sink += plan->request.rounds.size();
    }
  }
  const auto warm_stop = std::chrono::steady_clock::now();
  const double warm_ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              warm_stop - warm_start)
                              .count()) /
      static_cast<double>(kReps * templates);
  const double ratio = cold_ns > 0 ? warm_ns / cold_ns : 0.0;

  // Service level: the saturated open-loop point, cache off vs on. The
  // cache-on run additionally brackets a warm window (a third into the run
  // to two thirds) with the allocation counter - the submission path plus
  // the whole switch pipeline must stay off the heap once every template
  // has compiled.
  constexpr std::uint64_t kTarget = 10000;
  const auto service_config = [] {
    core::ServiceConfig config;
    config.exec.seed = 4242;
    config.exec.with_traffic = false;
    config.exec.controller.max_in_flight = 16;
    config.flows = 8;
    config.pool_switches = 48;
    config.arrival_rate_per_sec = 700;
    config.max_pending = 1024;
    config.target_completions = kTarget;
    return config;
  };
  core::ServiceConfig off_config = service_config();
  off_config.exec.controller.plan_cache = false;
  const Result<core::ServiceResult> off = core::execute_service(off_config);

  core::ServiceConfig on_config = service_config();
  on_config.snapshot_interval = sim::milliseconds(100);
  on_config.snapshot_window = 4;
  std::uint64_t window_start = 0;
  std::uint64_t window_end = 0;
  on_config.on_snapshot = [&](const core::ServiceSnapshot& snap) {
    if (window_start == 0 && snap.completed >= kTarget / 3)
      window_start = alloc_hooks::allocations();
    else if (window_start != 0 && window_end == 0 &&
             snap.completed >= 2 * kTarget / 3)
      window_end = alloc_hooks::allocations();
  };
  const Result<core::ServiceResult> on = core::execute_service(on_config);

  json::Object section;
  section.set("templates",
              json::Value(static_cast<std::int64_t>(templates)));
  section.set("cold_ns_per_submission", json::Value(cold_ns));
  section.set("warm_ns_per_submission", json::Value(warm_ns));
  section.set("warm_cold_ratio", json::Value(ratio));
  section.set("sink", json::Value(static_cast<std::int64_t>(sink & 0xff)));

  if (!off.ok() || !on.ok()) {
    std::fprintf(stderr, "submission-path bench service run failed: %s\n",
                 (!off.ok() ? off.error() : on.error()).to_string().c_str());
    *failed = true;
    return section;
  }
  const core::ServiceResult& off_result = off.value();
  const core::ServiceResult& on_result = on.value();
  const double hit_rate =
      on_result.stats.submitted == 0
          ? 0.0
          : static_cast<double>(on_result.stats.plan_hits) /
                static_cast<double>(on_result.stats.submitted);
  const std::uint64_t steady_allocs =
      window_end >= window_start ? window_end - window_start : 0;
  if (window_end == 0) *failed = true;  // the window never closed

  std::printf("\nsubmission path (8 templates, plan cache):\n"
              "  cold %s ns/submission, warm %s ns/submission (ratio %s)\n"
              "  service %llu completions: hit rate %s, "
              "%llu warm-window allocations\n"
              "  sustained/s on=%s off=%s (must match: transparency), "
              "wall ms on=%s off=%s\n",
              bench::fmt(cold_ns).c_str(), bench::fmt(warm_ns).c_str(),
              bench::fmt(ratio, 3).c_str(),
              static_cast<unsigned long long>(on_result.stats.completed),
              bench::fmt(hit_rate, 3).c_str(),
              static_cast<unsigned long long>(steady_allocs),
              bench::fmt(on_result.sustained_per_sec(), 1).c_str(),
              bench::fmt(off_result.sustained_per_sec(), 1).c_str(),
              bench::fmt(on_result.wall_ms).c_str(),
              bench::fmt(off_result.wall_ms).c_str());
  if (on_result.sustained_per_sec() != off_result.sustained_per_sec()) {
    std::fprintf(stderr, "plan cache changed sim-time throughput - "
                         "transparency broken, BENCH BUG\n");
    *failed = true;
  }

  section.set("service_completions",
              json::Value(static_cast<std::int64_t>(on_result.stats.completed)));
  section.set("plan_compiles", json::Value(static_cast<std::int64_t>(
                                   on_result.stats.plan_compiles)));
  section.set("plan_hits", json::Value(static_cast<std::int64_t>(
                               on_result.stats.plan_hits)));
  section.set("plan_invalidations",
              json::Value(static_cast<std::int64_t>(
                  on_result.stats.plan_invalidations)));
  section.set("hit_rate", json::Value(hit_rate));
  // Gated at zero: past warmup, submissions must never touch the heap.
  section.set("steady_allocs",
              json::Value(static_cast<std::int64_t>(steady_allocs)));
  section.set("sustained_per_sec_on",
              json::Value(on_result.sustained_per_sec()));
  section.set("sustained_per_sec_off",
              json::Value(off_result.sustained_per_sec()));
  section.set("sustained_delta",
              json::Value(on_result.sustained_per_sec() -
                          off_result.sustained_per_sec()));
  section.set("wall_ms_on", json::Value(on_result.wall_ms));
  section.set("wall_ms_off", json::Value(off_result.wall_ms));
  return section;
}

// Returns false if the admission section could not produce all its rows.
bool run(const char* json_path) {
  bool admission_failed = false;
  bench::print_header("E11", "multi-policy round merging",
                      "extension; paper reference [1] (DSN'16)");

  stats::Table table({"k policies", "switch overlap", "sum rounds (serial)",
                      "max rounds (ideal)", "merged rounds",
                      "parallel efficiency"});
  for (const std::size_t k : {2u, 4u, 8u}) {
    for (const std::size_t shared : {0u, 2u, 4u}) {
      Rng rng(9000 + k * 10 + shared);
      const std::vector<update::Instance> policies =
          make_policies(rng, k, shared);
      std::vector<update::Schedule> schedules;
      std::vector<const update::Instance*> policy_ptrs;
      std::vector<const update::Schedule*> schedule_ptrs;
      std::size_t sum_rounds = 0;
      std::size_t max_rounds = 0;
      // Keep policies and schedules aligned: skip a policy entirely when
      // the planner declines it.
      schedules.reserve(policies.size());
      for (const update::Instance& inst : policies) {
        Result<update::Schedule> schedule = update::plan_peacock(inst);
        if (!schedule.ok()) continue;
        sum_rounds += schedule.value().round_count();
        max_rounds = std::max(max_rounds, schedule.value().round_count());
        schedules.push_back(std::move(schedule).value());
        policy_ptrs.push_back(&inst);
      }
      for (const update::Schedule& schedule : schedules)
        schedule_ptrs.push_back(&schedule);
      const Result<update::MergedSchedule> merged =
          update::merge_policies(policy_ptrs, schedule_ptrs);
      if (!merged.ok()) continue;
      const double efficiency =
          static_cast<double>(max_rounds) /
          static_cast<double>(merged.value().round_count());
      table.add_row({std::to_string(k), std::to_string(shared),
                     std::to_string(sum_rounds), std::to_string(max_rounds),
                     std::to_string(merged.value().round_count()),
                     bench::fmt(efficiency * 100.0, 0) + "%"});
    }
  }
  bench::print_table(table);

  std::printf("\nround-compression ablation (compress_schedule):\n");
  stats::Table ablation({"algorithm", "instances", "mean rounds",
                         "mean rounds compressed", "rounds removed"});
  Rng rng(777777);
  topo::RandomInstanceOptions options;
  options.reuse_probability = 0.4;  // hazards frequently absent
  for (const core::Algorithm algorithm :
       {core::Algorithm::kWayUp, core::Algorithm::kPeacock}) {
    stats::Summary before;
    stats::Summary after;
    const std::uint32_t property =
        algorithm == core::Algorithm::kWayUp ? update::kWaypoint
                                             : update::kPeacockGuarantee;
    for (int i = 0; i < 80; ++i) {
      const update::Instance inst = topo::random_instance(rng, options);
      const Result<core::PlanOutcome> planned = core::plan(inst, algorithm);
      if (!planned.ok()) continue;
      const update::Schedule compressed = update::compress_schedule(
          inst, planned.value().schedule, property);
      before.add(static_cast<double>(planned.value().schedule.round_count()));
      after.add(static_cast<double>(compressed.round_count()));
    }
    ablation.add_row({core::to_string(algorithm),
                      std::to_string(before.count()),
                      bench::fmt(before.mean()), bench::fmt(after.mean()),
                      bench::fmt(before.mean() - after.mean())});
  }
  bench::print_table(ablation);

  // Wall-clock makespan through the *actual* controller: the demo's
  // serializing queue vs one merged multi-policy request.
  std::printf("\ncontrol-plane makespan: serializing queue vs merged request:\n");
  stats::Table makespan({"k policies", "serial queue ms", "merged ms",
                         "speedup"});
  for (const std::size_t k : {2u, 4u, 8u}) {
    Rng makespan_rng(31000 + k);
    const std::vector<update::Instance> policies =
        make_policies(makespan_rng, k, 2);
    std::vector<update::Schedule> schedules;
    std::vector<const update::Instance*> policy_ptrs;
    std::vector<const update::Schedule*> schedule_ptrs;
    schedules.reserve(policies.size());
    for (const update::Instance& inst : policies) {
      Result<update::Schedule> schedule = update::plan_peacock(inst);
      if (!schedule.ok()) continue;
      schedules.push_back(std::move(schedule).value());
      policy_ptrs.push_back(&inst);
    }
    for (const update::Schedule& schedule : schedules)
      schedule_ptrs.push_back(&schedule);
    core::ExecutorConfig config;
    config.with_traffic = false;
    config.switch_config.install_latency =
        sim::LatencyModel::lognormal(sim::milliseconds(1), 0.5);
    const Result<std::vector<core::ExecutionResult>> serial =
        core::execute_queue(policy_ptrs, schedule_ptrs, config);
    const Result<core::MergedExecutionResult> merged_run =
        core::execute_merged(policy_ptrs, schedule_ptrs, config);
    if (!serial.ok() || !merged_run.ok()) continue;
    const double serial_ms = sim::to_ms(
        serial.value().back().update.finished -
        serial.value().front().update.started);
    const double merged_ms = merged_run.value().update_ms();
    makespan.add_row({std::to_string(k), bench::fmt(serial_ms),
                      bench::fmt(merged_ms),
                      bench::fmt(serial_ms / merged_ms, 1) + "x"});
  }
  bench::print_table(makespan);

  // The concurrent multi-flow engine: K requests in flight at once, with
  // and without per-switch frame batching, against the serializing queue.
  std::printf(
      "\nconcurrent engine: serial queue vs K in-flight vs K + batching:\n");
  stats::Table engine({"k policies", "serial ms", "concurrent ms",
                       "speedup", "serial frames", "batched frames",
                       "frames saved"});
  for (const std::size_t k : {2u, 4u, 8u, 16u}) {
    Rng engine_rng(47000 + k);
    const std::vector<update::Instance> policies =
        make_policies(engine_rng, k, 0);
    std::vector<update::Schedule> schedules;
    std::vector<const update::Instance*> policy_ptrs;
    std::vector<const update::Schedule*> schedule_ptrs;
    schedules.reserve(policies.size());
    for (const update::Instance& inst : policies) {
      Result<update::Schedule> schedule = update::plan_peacock(inst);
      if (!schedule.ok()) continue;
      schedules.push_back(std::move(schedule).value());
      policy_ptrs.push_back(&inst);
    }
    for (const update::Schedule& schedule : schedules)
      schedule_ptrs.push_back(&schedule);
    core::ExecutorConfig config;
    config.with_traffic = false;
    const Result<std::vector<core::ExecutionResult>> serial =
        core::execute_queue(policy_ptrs, schedule_ptrs, config);
    core::ExecutorConfig concurrent_config = config;
    concurrent_config.controller.max_in_flight = k;
    const Result<core::MultiFlowExecutionResult> concurrent =
        core::execute_multiflow(policy_ptrs, schedule_ptrs,
                                concurrent_config);
    core::ExecutorConfig batched_config = concurrent_config;
    batched_config.controller.batch_frames = true;
    const Result<core::MultiFlowExecutionResult> batched =
        core::execute_multiflow(policy_ptrs, schedule_ptrs, batched_config);
    if (!serial.ok() || !concurrent.ok() || !batched.ok()) continue;
    const double serial_ms = sim::to_ms(
        serial.value().back().update.finished -
        serial.value().front().update.started);
    const double concurrent_ms = concurrent.value().makespan_ms();
    const std::size_t serial_frames = serial.value().front().frames_sent;
    const std::size_t batched_frames = batched.value().frames_sent;
    engine.add_row(
        {std::to_string(k), bench::fmt(serial_ms), bench::fmt(concurrent_ms),
         bench::fmt(serial_ms / concurrent_ms, 1) + "x",
         std::to_string(serial_frames), std::to_string(batched_frames),
         bench::fmt(100.0 * (1.0 - static_cast<double>(batched_frames) /
                                       static_cast<double>(serial_frames)),
                    0) + "%"});
  }
  bench::print_table(engine);

  // Admission policies on a shared-pool workload: flows share switches
  // (switch-level overlap) but never rules, so rule-level conflict
  // tracking must reach blind-level parallelism while serialize pays the
  // full queue; the safety oracle checks all three.
  std::printf("\nadmission policies: %zu flows over %zu shared switches:\n",
              kAdmissionFlows, kAdmissionSwitches);
  stats::Table admission_table({"policy", "makespan ms", "max in flight",
                                "conflict edges", "violations"});
  json::Array admission_json;
  const topo::PlannedPoolWorkload pool =
      topo::planned_pool_workload(kAdmissionFlows, kAdmissionSwitches)
          .value();
  for (const controller::AdmissionPolicy policy :
       {controller::AdmissionPolicy::kBlind,
        controller::AdmissionPolicy::kConflictAware,
        controller::AdmissionPolicy::kSerialize}) {
    core::ExecutorConfig config;
    config.seed = 4242;
    config.traffic_interarrival =
        sim::LatencyModel::constant(sim::milliseconds(2));
    config.controller.max_in_flight = kAdmissionFlows;
    config.controller.batch_frames = true;
    config.controller.admission = policy;
    const Result<core::MultiFlowExecutionResult> run =
        core::execute_multiflow(pool.instance_ptrs, pool.schedule_ptrs,
                                config);
    if (!run.ok()) {
      // A missing policy row would silently corrupt the CI-tracked JSON
      // series; fail the bench loudly instead.
      std::fprintf(stderr, "admission bench failed for policy %s: %s\n",
                   controller::to_string(policy),
                   run.error().to_string().c_str());
      admission_failed = true;
      continue;
    }
    const core::MultiFlowExecutionResult& result = run.value();
    const std::size_t violations = result.aggregate.bypassed +
                                   result.aggregate.looped +
                                   result.aggregate.blackholed;
    admission_table.add_row(
        {controller::to_string(policy), bench::fmt(result.makespan_ms()),
         std::to_string(result.max_in_flight_observed),
         std::to_string(result.conflict_edges),
         std::to_string(violations)});
    json::Object entry;
    entry.set("policy", json::Value(controller::to_string(policy)));
    entry.set("flows",
              json::Value(static_cast<std::int64_t>(kAdmissionFlows)));
    entry.set("switches",
              json::Value(static_cast<std::int64_t>(kAdmissionSwitches)));
    entry.set("makespan_ms", json::Value(result.makespan_ms()));
    entry.set("max_in_flight_observed",
              json::Value(
                  static_cast<std::int64_t>(result.max_in_flight_observed)));
    entry.set("conflict_edges",
              json::Value(static_cast<std::int64_t>(result.conflict_edges)));
    entry.set("blocked_submissions",
              json::Value(
                  static_cast<std::int64_t>(result.blocked_submissions)));
    entry.set("frames_sent",
              json::Value(static_cast<std::int64_t>(result.frames_sent)));
    entry.set("packets", json::Value(
                             static_cast<std::int64_t>(result.aggregate.total)));
    entry.set("violations", json::Value(static_cast<std::int64_t>(violations)));
    admission_json.push_back(json::Value(std::move(entry)));
  }
  bench::print_table(admission_table);

  // The adaptive outbox across batch modes: the 1000-flow pool workload,
  // every flow in flight at once under conflict-aware admission. Frames
  // must fall sharply in the windowed modes while the added install
  // latency stays bounded by the hold window.
  bool batching_failed = false;
  std::printf("\nbatch modes: %zu flows over %zu shared switches "
              "(window 0.3 ms):\n",
              kBatchFlows, kBatchSwitches);
  stats::Table batch_table({"mode", "frames", "frames/flow", "vs off",
                            "makespan ms", "p50 ms", "p99 ms",
                            "max hold ms"});
  json::Array batching_json;
  const topo::PlannedPoolWorkload batch_pool =
      topo::planned_pool_workload(kBatchFlows, kBatchSwitches).value();
  std::size_t off_frames = 0;
  for (const controller::BatchMode mode :
       {controller::BatchMode::kOff, controller::BatchMode::kInstant,
        controller::BatchMode::kWindow, controller::BatchMode::kAdaptive}) {
    core::ExecutorConfig config;
    config.seed = 4242;
    config.with_traffic = false;
    config.channel.latency =
        sim::LatencyModel::constant(sim::microseconds(100));
    config.switch_config.install_latency =
        sim::LatencyModel::constant(sim::microseconds(50));
    config.controller.max_in_flight = kBatchFlows;
    config.controller.admission = controller::AdmissionPolicy::kConflictAware;
    config.controller.batch_mode = mode;
    config.controller.batch_window = sim::microseconds(300);
    const Result<core::MultiFlowExecutionResult> run =
        core::execute_multiflow(batch_pool.instance_ptrs,
                                batch_pool.schedule_ptrs, config);
    if (!run.ok()) {
      std::fprintf(stderr, "batching bench failed for mode %s: %s\n",
                   controller::to_string(mode),
                   run.error().to_string().c_str());
      batching_failed = true;
      continue;
    }
    const core::MultiFlowExecutionResult& result = run.value();
    stats::Percentiles install_ms;
    for (const core::ExecutionResult& flow : result.flows)
      install_ms.add(flow.update_ms());
    if (mode == controller::BatchMode::kOff) off_frames = result.frames_sent;
    const double saved =
        off_frames > 0
            ? 100.0 * (1.0 - static_cast<double>(result.frames_sent) /
                                 static_cast<double>(off_frames))
            : 0.0;
    batch_table.add_row(
        {controller::to_string(mode), std::to_string(result.frames_sent),
         bench::fmt(static_cast<double>(result.frames_sent) /
                    static_cast<double>(kBatchFlows)),
         bench::fmt(-saved, 0) + "%", bench::fmt(result.makespan_ms()),
         bench::fmt(install_ms.median()), bench::fmt(install_ms.p99()),
         bench::fmt(result.batching.max_hold_ms(), 3)});
    json::Object entry;
    entry.set("mode", json::Value(controller::to_string(mode)));
    entry.set("flows", json::Value(static_cast<std::int64_t>(kBatchFlows)));
    entry.set("switches",
              json::Value(static_cast<std::int64_t>(kBatchSwitches)));
    entry.set("frames_sent",
              json::Value(static_cast<std::int64_t>(result.frames_sent)));
    entry.set("messages_sent",
              json::Value(static_cast<std::int64_t>(result.messages_sent)));
    entry.set("batches_sent", json::Value(static_cast<std::int64_t>(
                                  result.batching.batches_sent)));
    entry.set("timer_flushes", json::Value(static_cast<std::int64_t>(
                                   result.batching.timer_flushes)));
    entry.set("budget_flushes", json::Value(static_cast<std::int64_t>(
                                    result.batching.budget_flushes)));
    entry.set("makespan_ms", json::Value(result.makespan_ms()));
    entry.set("install_p50_ms", json::Value(install_ms.median()));
    entry.set("install_p99_ms", json::Value(install_ms.p99()));
    entry.set("max_hold_ms", json::Value(result.batching.max_hold_ms()));
    batching_json.push_back(json::Value(std::move(entry)));
  }
  bench::print_table(batch_table);

  // Sharded controller scaling: the same 1000-flow pool through 1/2/4/8
  // hash-partitioned controller shards (hash scatters each flow's block of
  // switches, so nearly every update is cross-shard - the worst case for
  // the coordinator). Tracked per PR: makespan, frames per flow, and the
  // cross-shard round-sync overhead the two-phase round barrier costs.
  bool sharding_failed = false;
  std::printf("\nsharded controller: %zu flows over %zu switches "
              "(hash partition, adaptive batching):\n",
              kBatchFlows, kBatchSwitches);
  stats::Table shard_table({"shards", "makespan ms", "frames/flow",
                            "cross-shard updates", "rounds synced",
                            "sync overhead ms"});
  json::Array sharding_json;
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    core::ExecutorConfig config;
    config.seed = 4242;
    config.with_traffic = false;
    config.channel.latency =
        sim::LatencyModel::constant(sim::microseconds(100));
    config.switch_config.install_latency =
        sim::LatencyModel::constant(sim::microseconds(50));
    config.switch_config.batch_replies = true;
    config.controller.max_in_flight = kBatchFlows;
    config.controller.admission = controller::AdmissionPolicy::kConflictAware;
    config.controller.batch_mode = controller::BatchMode::kAdaptive;
    config.controller.batch_window = sim::microseconds(300);
    config.controller.shards = shards;
    config.controller.partition = topo::PartitionScheme::kHash;
    const Result<core::MultiFlowExecutionResult> run =
        core::execute_multiflow(batch_pool.instance_ptrs,
                                batch_pool.schedule_ptrs, config);
    if (!run.ok()) {
      std::fprintf(stderr, "sharding bench failed for %zu shards: %s\n",
                   shards, run.error().to_string().c_str());
      sharding_failed = true;
      continue;
    }
    const core::MultiFlowExecutionResult& result = run.value();
    shard_table.add_row(
        {std::to_string(shards), bench::fmt(result.makespan_ms()),
         bench::fmt(static_cast<double>(result.frames_sent) /
                    static_cast<double>(kBatchFlows)),
         std::to_string(result.sharding.cross_shard_updates),
         std::to_string(result.sharding.rounds_synced),
         bench::fmt(result.sharding.sync_overhead_ms(), 3)});
    json::Object entry;
    entry.set("shards", json::Value(static_cast<std::int64_t>(shards)));
    entry.set("flows", json::Value(static_cast<std::int64_t>(kBatchFlows)));
    entry.set("switches",
              json::Value(static_cast<std::int64_t>(kBatchSwitches)));
    entry.set("partition", json::Value("hash"));
    entry.set("makespan_ms", json::Value(result.makespan_ms()));
    entry.set("frames_sent",
              json::Value(static_cast<std::int64_t>(result.frames_sent)));
    entry.set("messages_sent",
              json::Value(static_cast<std::int64_t>(result.messages_sent)));
    entry.set("cross_shard_updates",
              json::Value(static_cast<std::int64_t>(
                  result.sharding.cross_shard_updates)));
    entry.set("rounds_synced", json::Value(static_cast<std::int64_t>(
                                   result.sharding.rounds_synced)));
    entry.set("sync_overhead_ms",
              json::Value(result.sharding.sync_overhead_ms()));
    sharding_json.push_back(json::Value(std::move(entry)));
  }
  bench::print_table(shard_table);

  // Parallel execution wall-clock: the 1000-flow pool with live traffic
  // (the data plane is where the parallelizable work lives), greedy-cut
  // partitioned so shards stay independent, sequential vs parallel at
  // 1/2/4/8 shards. Simulated results are bit-identical by construction
  // (the equivalence suite pins it; the digest check here guards the
  // bench itself) - the only thing allowed to move is wall-clock time,
  // recorded into the CI JSON so BENCH_*.json carries a perf trajectory.
  // NOTE: the speedup column only means something with >= shards hardware
  // threads; hardware_threads is recorded alongside for that reason.
  bool parallel_failed = false;
  std::printf("\nparallel stepping: %zu flows over %zu switches "
              "(greedy_cut partition, live traffic), %zu hardware threads:\n",
              kBatchFlows, kBatchSwitches,
              sim::ThreadPool::hardware_threads());
  stats::Table parallel_table({"shards", "partition", "exec", "opt",
                               "wall ms", "speedup", "epochs", "stalls",
                               "serial frac", "steals", "skips",
                               "makespan ms"});
  json::Array parallel_json;
  // Each group runs three modes: the sequential reference (speculation +
  // stealing knobs ON, so the optimized parallel run is its bit-identical
  // twin), the plain parallel stepper (opt off - the pre-optimization
  // engine), and the optimized parallel stepper. The greedy_cut groups
  // measure the shard-local regime (most epochs, stealing territory); the
  // hash group - nearly every update cross-shard, nonzero inter-round
  // interval - measures the serial bottleneck regime, where speculative
  // round release elides interval timers and local-scope barrier replies
  // remove sync points. serial_fraction = horizon stalls / total events is
  // the gated figure (tools/check_bench_regression.py).
  struct ParallelGroup {
    std::size_t shards;
    topo::PartitionScheme partition;
    sim::Duration interval;
  };
  std::vector<ParallelGroup> groups;
  for (const std::size_t shards : {1u, 2u, 4u, 8u})
    groups.push_back({shards, topo::PartitionScheme::kGreedyCut, 0});
  groups.push_back({4, topo::PartitionScheme::kHash, sim::microseconds(300)});
  for (const ParallelGroup& group : groups) {
    double sequential_wall_ms = 0;
    std::uint64_t sequential_digest = 0;
    struct Mode {
      sim::ExecMode exec;
      bool optimized;
    };
    constexpr Mode kModes[] = {{sim::ExecMode::kSequential, true},
                               {sim::ExecMode::kParallel, false},
                               {sim::ExecMode::kParallel, true}};
    for (const Mode mode : kModes) {
      core::ExecutorConfig config;
      config.seed = 4242;
      config.interval = group.interval;
      config.channel.latency =
          sim::LatencyModel::constant(sim::microseconds(100));
      config.switch_config.install_latency =
          sim::LatencyModel::constant(sim::microseconds(50));
      config.switch_config.batch_replies = true;
      config.traffic_interarrival =
          sim::LatencyModel::constant(sim::microseconds(400));
      config.link_latency = sim::LatencyModel::constant(sim::microseconds(20));
      config.warmup = sim::milliseconds(2);
      config.drain = sim::milliseconds(10);
      config.controller.max_in_flight = kBatchFlows;
      config.controller.admission =
          controller::AdmissionPolicy::kConflictAware;
      config.controller.batch_mode = controller::BatchMode::kAdaptive;
      config.controller.batch_window = sim::microseconds(300);
      config.controller.shards = group.shards;
      config.controller.partition = group.partition;
      config.controller.exec = mode.exec;
      config.controller.threads = group.shards;
      config.controller.speculate = mode.optimized;
      config.controller.steal = mode.optimized;
      const std::uint64_t allocs_before = alloc_hooks::allocations();
      const Result<core::MultiFlowExecutionResult> run =
          core::execute_multiflow(batch_pool.instance_ptrs,
                                  batch_pool.schedule_ptrs, config);
      const std::uint64_t run_allocs =
          alloc_hooks::allocations() - allocs_before;
      if (!run.ok()) {
        std::fprintf(stderr, "parallel bench failed for %zu shards %s: %s\n",
                     group.shards, sim::to_string(mode.exec),
                     run.error().to_string().c_str());
        parallel_failed = true;
        continue;
      }
      const core::MultiFlowExecutionResult& result = run.value();
      if (mode.exec == sim::ExecMode::kSequential) {
        sequential_wall_ms = result.sharding.wall_ms;
        sequential_digest = result.final_state_digest;
      } else if (result.final_state_digest != sequential_digest) {
        std::fprintf(stderr,
                     "parallel digest diverged at %zu shards - BENCH BUG\n",
                     group.shards);
        parallel_failed = true;
      }
      std::size_t total_events = 0;
      for (const std::size_t n : result.sharding.events_per_shard)
        total_events += n;
      const double serial_fraction =
          total_events == 0
              ? 0.0
              : static_cast<double>(result.sharding.horizon_stalls) /
                    static_cast<double>(total_events);
      const double speedup =
          mode.exec == sim::ExecMode::kSequential ||
                  result.sharding.wall_ms <= 0
              ? 1.0
              : sequential_wall_ms / result.sharding.wall_ms;
      const bool parallel = mode.exec == sim::ExecMode::kParallel;
      parallel_table.add_row(
          {std::to_string(group.shards), topo::to_string(group.partition),
           sim::to_string(mode.exec), mode.optimized ? "on" : "off",
           bench::fmt(result.sharding.wall_ms),
           parallel ? bench::fmt(speedup) : "-",
           std::to_string(result.sharding.parallel_epochs),
           std::to_string(result.sharding.horizon_stalls),
           parallel ? bench::fmt(serial_fraction) : "-",
           std::to_string(result.sharding.steals),
           std::to_string(result.sharding.speculative_releases),
           bench::fmt(result.makespan_ms())});
      json::Object entry;
      entry.set("shards",
                json::Value(static_cast<std::int64_t>(group.shards)));
      entry.set("exec", json::Value(sim::to_string(mode.exec)));
      entry.set("threads", json::Value(static_cast<std::int64_t>(
                               result.sharding.threads)));
      entry.set("hardware_threads",
                json::Value(static_cast<std::int64_t>(
                    sim::ThreadPool::hardware_threads())));
      // Fewer cores than shards means the speedup column measures
      // oversubscription, not the stepper - flagged so downstream tooling
      // can skip speedup comparisons on starved machines.
      entry.set("cores_limited",
                json::Value(sim::ThreadPool::hardware_threads() <
                            group.shards));
      entry.set("partition", json::Value(topo::to_string(group.partition)));
      entry.set("speculate", json::Value(mode.optimized));
      entry.set("steal", json::Value(mode.optimized));
      entry.set("wall_ms", json::Value(result.sharding.wall_ms));
      if (parallel) entry.set("speedup_vs_sequential", json::Value(speedup));
      entry.set("parallel_epochs", json::Value(static_cast<std::int64_t>(
                                       result.sharding.parallel_epochs)));
      entry.set("horizon_stalls", json::Value(static_cast<std::int64_t>(
                                      result.sharding.horizon_stalls)));
      // The gated serial-health figures are parallel-only: a sequential
      // merge has no waves, so stalls/steals are structurally zero there.
      if (parallel) {
        entry.set("serial_fraction", json::Value(serial_fraction));
        entry.set("steals", json::Value(static_cast<std::int64_t>(
                                result.sharding.steals)));
        entry.set("overflow_posts",
                  json::Value(static_cast<std::int64_t>(
                      result.sharding.overflow_posts)));
      }
      entry.set("speculative_releases",
                json::Value(static_cast<std::int64_t>(
                    result.sharding.speculative_releases)));
      entry.set("partition_cut_weight",
                json::Value(static_cast<std::int64_t>(
                    result.sharding.partition_cut_weight)));
      entry.set("makespan_ms", json::Value(result.makespan_ms()));
      entry.set("packets", json::Value(static_cast<std::int64_t>(
                               result.aggregate.total)));
      // Whole-run allocation count (setup + warmup + steady state): the
      // per-PR trajectory of how much the run touches the allocator. The
      // hard zero-allocation gate lives in the hotpath section below -
      // this figure is informational.
      entry.set("allocations",
                json::Value(static_cast<std::int64_t>(run_allocs)));
      parallel_json.push_back(json::Value(std::move(entry)));
    }
  }
  bench::print_table(parallel_table);

  // Fault recovery: seeded chaos schedules (sim/faults.hpp) against the
  // admission pool, once per failure response. Tracked per PR: recovery
  // latency percentiles, resync traffic, rollback counts and the makespan
  // inflation faults cost over the fault-free run.
  bool faults_failed = false;
  constexpr std::size_t kFaultSeeds = 5;
  std::printf("\nfault recovery: %zu flows over %zu switches, "
              "%zu chaos seeds per response:\n",
              kAdmissionFlows, kAdmissionSwitches, kFaultSeeds);
  stats::Table fault_table({"response", "makespan ms", "inflation ms",
                            "recovery p50 ms", "recovery p99 ms", "resyncs",
                            "resync frames", "retries", "rollbacks",
                            "frames lost"});
  json::Array faults_json;
  const auto fault_config = [] {
    core::ExecutorConfig config;
    config.seed = 4242;
    config.channel.latency =
        sim::LatencyModel::constant(sim::microseconds(100));
    config.switch_config.install_latency =
        sim::LatencyModel::constant(sim::microseconds(50));
    config.traffic_interarrival =
        sim::LatencyModel::constant(sim::milliseconds(2));
    config.link_latency = sim::LatencyModel::constant(sim::microseconds(20));
    config.warmup = sim::milliseconds(2);
    config.drain = sim::milliseconds(10);
    config.controller.max_in_flight = kAdmissionFlows;
    // Above the loaded round RTT (~3 ms with every flow in flight), so
    // only real faults trip the liveness machinery.
    config.controller.liveness_timeout = sim::milliseconds(10);
    return config;
  };
  sim::ChaosOptions fault_options;
  fault_options.node_count = kAdmissionSwitches;
  fault_options.start_ms = 1.5;
  fault_options.horizon_ms = 10;
  fault_options.crashes = 2;
  fault_options.link_downs = 1;
  fault_options.blackholes = 1;
  fault_options.min_down_ms = 0.5;
  fault_options.max_down_ms = 2.5;
  const Result<core::MultiFlowExecutionResult> fault_free =
      core::execute_multiflow(pool.instance_ptrs, pool.schedule_ptrs,
                              fault_config());
  if (!fault_free.ok()) {
    std::fprintf(stderr, "fault bench baseline failed: %s\n",
                 fault_free.error().to_string().c_str());
    faults_failed = true;
  }
  const double clean_ms =
      fault_free.ok() ? fault_free.value().makespan_ms() : 0.0;
  for (const controller::FailureResponse response :
       {controller::FailureResponse::kWait,
        controller::FailureResponse::kRollback}) {
    sim::FaultStats merged;
    double makespan_sum_ms = 0;
    std::size_t runs = 0;
    for (std::size_t seed = 1; seed <= kFaultSeeds; ++seed) {
      core::ExecutorConfig config = fault_config();
      config.controller.failure_response = response;
      config.faults = sim::FaultSchedule::random(seed, fault_options);
      const Result<core::MultiFlowExecutionResult> run =
          core::execute_multiflow(pool.instance_ptrs, pool.schedule_ptrs,
                                  config);
      if (!run.ok()) {
        std::fprintf(stderr, "fault bench failed for %s seed %zu: %s\n",
                     controller::to_string(response), seed,
                     run.error().to_string().c_str());
        faults_failed = true;
        continue;
      }
      const sim::FaultStats& faults = run.value().faults;
      merged.crashes += faults.crashes;
      merged.link_downs += faults.link_downs;
      merged.blackholes += faults.blackholes;
      merged.frames_lost += faults.frames_lost;
      merged.timeouts += faults.timeouts;
      merged.resyncs += faults.resyncs;
      merged.resync_frames += faults.resync_frames;
      merged.rollbacks += faults.rollbacks;
      merged.retries += faults.retries;
      merged.resubmissions += faults.resubmissions;
      merged.recovery_ms.insert(merged.recovery_ms.end(),
                                faults.recovery_ms.begin(),
                                faults.recovery_ms.end());
      makespan_sum_ms += run.value().makespan_ms();
      ++runs;
    }
    if (runs == 0) continue;
    const double mean_ms = makespan_sum_ms / static_cast<double>(runs);
    fault_table.add_row(
        {controller::to_string(response), bench::fmt(mean_ms),
         bench::fmt(mean_ms - clean_ms), bench::fmt(merged.recovery_p50_ms()),
         bench::fmt(merged.recovery_p99_ms()),
         std::to_string(merged.resyncs),
         std::to_string(merged.resync_frames),
         std::to_string(merged.retries), std::to_string(merged.rollbacks),
         std::to_string(merged.frames_lost)});
    json::Object entry;
    entry.set("response", json::Value(controller::to_string(response)));
    entry.set("seeds", json::Value(static_cast<std::int64_t>(runs)));
    entry.set("flows",
              json::Value(static_cast<std::int64_t>(kAdmissionFlows)));
    entry.set("switches",
              json::Value(static_cast<std::int64_t>(kAdmissionSwitches)));
    entry.set("makespan_ms", json::Value(mean_ms));
    entry.set("clean_makespan_ms", json::Value(clean_ms));
    entry.set("recovery_p50_ms", json::Value(merged.recovery_p50_ms()));
    entry.set("recovery_p99_ms", json::Value(merged.recovery_p99_ms()));
    entry.set("crashes", json::Value(static_cast<std::int64_t>(merged.crashes)));
    entry.set("link_downs",
              json::Value(static_cast<std::int64_t>(merged.link_downs)));
    entry.set("blackholes",
              json::Value(static_cast<std::int64_t>(merged.blackholes)));
    entry.set("frames_lost",
              json::Value(static_cast<std::int64_t>(merged.frames_lost)));
    entry.set("timeouts",
              json::Value(static_cast<std::int64_t>(merged.timeouts)));
    entry.set("resyncs", json::Value(static_cast<std::int64_t>(merged.resyncs)));
    entry.set("resync_frames",
              json::Value(static_cast<std::int64_t>(merged.resync_frames)));
    entry.set("retries", json::Value(static_cast<std::int64_t>(merged.retries)));
    entry.set("rollbacks",
              json::Value(static_cast<std::int64_t>(merged.rollbacks)));
    entry.set("resubmissions",
              json::Value(static_cast<std::int64_t>(merged.resubmissions)));
    faults_json.push_back(json::Value(std::move(entry)));
  }
  bench::print_table(fault_table);

  // Open-loop service mode: Poisson arrivals at three operating points of
  // the same template pool - comfortably under capacity, near saturation,
  // and deep overload (where the bounded pending queue sheds load). All
  // sim-time figures are deterministic per seed, so the CI gate can hold
  // sustained throughput and the drain invariant to tight tolerances.
  bool open_loop_failed = false;
  constexpr std::uint64_t kServeTarget = 20000;
  std::printf("\nopen-loop service: 8 templates over 48 switches, "
              "%llu completions per point:\n",
              static_cast<unsigned long long>(kServeTarget));
  stats::Table serve_table({"operating point", "arrival/s", "sustained/s",
                            "p50 dur ms", "p99 dur ms", "p99 wait ms",
                            "rejected", "peak pending", "leftover entries"});
  json::Array open_loop_json;
  struct ServePoint {
    const char* label;
    double rate;
    std::size_t max_pending;
  };
  // The pool's service capacity under the default environment is ~690
  // updates/s (8 templates, ~12.5 ms per serialized update), which anchors
  // the three operating points.
  for (const ServePoint point :
       {ServePoint{"under_capacity", 500, 1024},
        ServePoint{"saturated", 700, 1024},
        ServePoint{"overload", 5000, 256}}) {
    core::ServiceConfig config;
    config.exec.seed = 4242;
    config.exec.with_traffic = false;
    config.exec.controller.max_in_flight = 16;
    config.flows = 8;
    config.pool_switches = 48;
    config.arrival_rate_per_sec = point.rate;
    config.max_pending = point.max_pending;
    config.target_completions = kServeTarget;
    const Result<core::ServiceResult> run = core::execute_service(config);
    if (!run.ok()) {
      std::fprintf(stderr, "open-loop bench failed for %s: %s\n",
                   point.label, run.error().to_string().c_str());
      open_loop_failed = true;
      continue;
    }
    const core::ServiceResult& result = run.value();
    serve_table.add_row(
        {point.label, bench::fmt(point.rate, 0),
         bench::fmt(result.sustained_per_sec(), 0),
         bench::fmt(result.completions.duration_ns.quantile(0.5) / 1e6),
         bench::fmt(result.completions.duration_ns.quantile(0.99) / 1e6),
         bench::fmt(result.completions.wait_ns.quantile(0.99) / 1e6),
         std::to_string(result.stats.rejected),
         std::to_string(result.stats.peak_pending),
         std::to_string(result.steady_state_entries_final)});
    json::Object entry;
    entry.set("label", json::Value(point.label));
    entry.set("arrival_rate_per_sec", json::Value(point.rate));
    entry.set("target_completions",
              json::Value(static_cast<std::int64_t>(kServeTarget)));
    entry.set("sustained_per_sec", json::Value(result.sustained_per_sec()));
    entry.set("p50_duration_ms",
              json::Value(result.completions.duration_ns.quantile(0.5) / 1e6));
    entry.set("p99_duration_ms",
              json::Value(result.completions.duration_ns.quantile(0.99) / 1e6));
    entry.set("p99_wait_ms",
              json::Value(result.completions.wait_ns.quantile(0.99) / 1e6));
    entry.set("rejected",
              json::Value(static_cast<std::int64_t>(result.stats.rejected)));
    entry.set("peak_pending", json::Value(static_cast<std::int64_t>(
                                  result.stats.peak_pending)));
    entry.set("steady_state_entries_final",
              json::Value(static_cast<std::int64_t>(
                  result.steady_state_entries_final)));
    entry.set("retired_xids", json::Value(static_cast<std::int64_t>(
                                  result.retired_xids)));
    open_loop_json.push_back(json::Value(std::move(entry)));
  }
  bench::print_table(serve_table);

  bool submission_failed = false;
  json::Object submission_path = submission_path_bench(&submission_failed);

  json::Object hotpath = hotpath_bench();

  if (json_path != nullptr) {
    json::Object doc;
    doc.set("bench",
            json::Value("bench_multi_policy/admission+batching+sharding"));
    doc.set("results", json::Value(std::move(admission_json)));
    doc.set("batching", json::Value(std::move(batching_json)));
    doc.set("sharding", json::Value(std::move(sharding_json)));
    doc.set("parallel", json::Value(std::move(parallel_json)));
    doc.set("faults", json::Value(std::move(faults_json)));
    doc.set("open_loop", json::Value(std::move(open_loop_json)));
    doc.set("submission_path", json::Value(std::move(submission_path)));
    doc.set("hotpath", json::Value(std::move(hotpath)));
    std::ofstream out(json_path);
    out << json::write(json::Value(std::move(doc))) << "\n";
    std::printf("admission+batching+sharding JSON written to %s\n",
                json_path);
  }

  std::printf(
      "shape: disjoint policies merge at ~100%% parallel efficiency; shared\n"
      "switches serialize only the conflicting rounds. Compression removes\n"
      "the rounds constant-round algorithms spend on hazards the concrete\n"
      "instance does not have. Rule-level admission parallelizes the\n"
      "shared-switch pool blind admission races through and serialize\n"
      "queues behind. The windowed outbox trades a bounded (<= window)\n"
      "install-latency hold for sharply fewer, larger frames. Sharding\n"
      "partitions that work across controllers: a round's barriers cover\n"
      "the same switches either way, so the makespan stays flat even when\n"
      "hash partitioning makes nearly every update cross-shard; the sync\n"
      "overhead column sums each cross-shard round's confirmation spread\n"
      "(first shard done -> last shard done) over all concurrent updates,\n"
      "i.e. the slack the two-phase barrier absorbs off the critical path.\n");
  return !admission_failed && !batching_failed && !sharding_failed &&
         !parallel_failed && !faults_failed && !open_loop_failed &&
         !submission_failed;
}

}  // namespace
}  // namespace tsu

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string_view(argv[i]) == "--json") json_path = argv[i + 1];
  return tsu::run(json_path) ? 0 : 1;
}
