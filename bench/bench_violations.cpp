// E3: transient violations under asynchrony.
//
// Quantifies the problem statement of section 1 ("the asynchronous
// communication of network update commands may lead to transient
// inconsistencies, such as loops or bypassed waypoints"): a single-round
// update is executed under increasing control-channel jitter and the
// per-packet and per-run violation probabilities are measured, against
// WayUp (security) and Peacock (loop freedom) at the same jitter.
#include "bench_common.hpp"

#include "tsu/topo/instances.hpp"

namespace tsu {
namespace {

void run() {
  bench::print_header("E3", "transient violation rates vs channel jitter",
                      "section 1 motivation (loops, bypassed waypoints)");

  const topo::Fig1 fig = topo::fig1();
  const std::vector<std::pair<const char*, sim::Duration>> jitters{
      {"1", sim::milliseconds(1)},
      {"4", sim::milliseconds(4)},
      {"16", sim::milliseconds(16)},
      {"64", sim::milliseconds(64)},
  };

  stats::Table table({"jitter ms", "algorithm", "bypass pkt rate",
                      "loop pkt rate", "drop pkt rate", "runs w/ bypass",
                      "runs w/ loop", "runs w/ drop"});
  const std::vector<std::uint64_t> seeds = bench::seed_range(100);

  for (const auto& [jitter_name, jitter] : jitters) {
    for (const core::Algorithm algorithm :
         {core::Algorithm::kOneShot, core::Algorithm::kTwoPhase,
          core::Algorithm::kWayUp, core::Algorithm::kPeacock}) {
      const Result<core::PlanOutcome> planned =
          core::plan(fig.instance, algorithm);
      if (!planned.ok()) continue;
      core::ExecutorConfig config = bench::harsh_config(1);
      config.channel.latency =
          sim::LatencyModel::uniform(sim::microseconds(100), jitter);
      const Result<core::SeedSweep> sweep = core::sweep_seeds(
          fig.instance, planned.value().schedule, config, seeds);
      if (!sweep.ok()) continue;
      const core::SeedSweep& s = sweep.value();
      const double packets =
          s.delivered.mean() + s.bypassed.mean() + s.looped.mean() +
          s.blackholed.mean();
      const auto rate = [&](double count) {
        return packets > 0 ? bench::fmt(count / packets, 4) : "0";
      };
      table.add_row({jitter_name, core::to_string(algorithm),
                     rate(s.bypassed.mean()), rate(s.looped.mean()),
                     rate(s.blackholed.mean()),
                     std::to_string(s.runs_with_bypass) + "/" +
                         std::to_string(s.runs),
                     std::to_string(s.runs_with_loop) + "/" +
                         std::to_string(s.runs),
                     std::to_string(s.runs_with_drop) + "/" +
                         std::to_string(s.runs)});
    }
  }
  bench::print_table(table);
  std::printf(
      "note: WayUp guarantees the *bypass* column is zero; transient loops\n"
      "and drops are outside its contract (WPE and loop freedom are not\n"
      "always jointly satisfiable). Peacock guarantees the loop column is\n"
      "zero for packets entering at the source.\n");
}

}  // namespace
}  // namespace tsu

int main() {
  tsu::run();
  return 0;
}
