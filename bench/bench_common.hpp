// Shared helpers for the experiment benches (E1..E8 in DESIGN.md).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "tsu/core/experiment.hpp"
#include "tsu/core/executor.hpp"
#include "tsu/core/planner.hpp"
#include "tsu/stats/table.hpp"
#include "tsu/util/strings.hpp"

namespace tsu::bench {

// The asynchrony regime of the demo: jittery control channel, noisy
// installs, steady probe traffic.
inline core::ExecutorConfig harsh_config(std::uint64_t seed) {
  core::ExecutorConfig config;
  config.seed = seed;
  config.channel.latency =
      sim::LatencyModel::uniform(sim::microseconds(100), sim::milliseconds(8));
  config.switch_config.install_latency =
      sim::LatencyModel::lognormal(sim::milliseconds(2), 1.0);
  config.traffic_interarrival =
      sim::LatencyModel::constant(sim::microseconds(100));
  config.link_latency = sim::LatencyModel::constant(sim::microseconds(20));
  return config;
}

inline std::vector<std::uint64_t> seed_range(std::size_t count,
                                             std::uint64_t base = 1) {
  std::vector<std::uint64_t> seeds(count);
  for (std::size_t i = 0; i < count; ++i) seeds[i] = base + i;
  return seeds;
}

inline std::string fmt(double value, int precision = 2) {
  return format_double(value, precision);
}

inline void print_header(const char* experiment, const char* title,
                         const char* paper_artifact) {
  std::printf("\n================================================================\n");
  std::printf("%s  %s\n", experiment, title);
  std::printf("paper artifact: %s\n", paper_artifact);
  std::printf("================================================================\n\n");
}

inline void print_table(const stats::Table& table) {
  std::fputs(table.to_markdown().c_str(), stdout);
  std::fputs("\n", stdout);
}

}  // namespace tsu::bench
