// Quickstart: plan a transiently secure update, verify it, run it.
//
//   $ ./build/examples/quickstart
//
// Walks the three layers of the public API:
//   1. update::Instance  - describe the routing-policy change,
//   2. core::plan        - pick a scheduler, get (and model-check) rounds,
//   3. core::execute     - run it against the simulated SDN with traffic.
#include <cstdio>

#include "tsu/core/executor.hpp"
#include "tsu/core/planner.hpp"
#include "tsu/update/instance.hpp"

int main() {
  using namespace tsu;

  // 1. The policy change: move the flow from the top route to the bottom
  //    route; every packet must keep traversing the firewall at switch 3.
  //
  //        old:  1 -> 2 -> 3 -> 4 -> 6
  //        new:  1 -> 5 -> 3 -> 7 -> 6      (waypoint: 3)
  Result<update::Instance> instance =
      update::Instance::make({1, 2, 3, 4, 6}, {1, 5, 3, 7, 6}, NodeId{3});
  if (!instance.ok()) {
    std::fprintf(stderr, "bad instance: %s\n",
                 instance.error().to_string().c_str());
    return 1;
  }

  // 2. Plan with WayUp and let the model checker prove waypoint
  //    enforcement over every transient state of every round.
  core::PlannerOptions options;
  options.verify = true;
  Result<core::PlanOutcome> planned =
      core::plan(instance.value(), core::Algorithm::kWayUp, options);
  if (!planned.ok()) {
    std::fprintf(stderr, "planning failed: %s\n",
                 planned.error().to_string().c_str());
    return 1;
  }
  std::printf("schedule : %s\n", planned.value().schedule.to_string().c_str());
  std::printf("verified : %s\n", planned.value().report->to_string().c_str());

  // 3. Execute against the simulated asynchronous control plane while a
  //    host keeps sending packets through the network.
  core::ExecutorConfig config;
  config.seed = 42;
  Result<core::ExecutionResult> result =
      core::execute(instance.value(), planned.value().schedule, config);
  if (!result.ok()) {
    std::fprintf(stderr, "execution failed: %s\n",
                 result.error().to_string().c_str());
    return 1;
  }
  std::printf("update   : %.2f ms over %zu rounds\n",
              result.value().update_ms(), result.value().update.rounds.size());
  std::printf("traffic  : %s\n", result.value().traffic.to_string().c_str());
  std::printf("security : %zu packets bypassed the firewall\n",
              result.value().traffic.bypassed);
  return result.value().traffic.bypassed == 0 ? 0 : 1;
}
