// Loop-free traffic migration with Peacock: the PODC'15 use case the demo
// inherits for its "weak loop freedom" guarantee.
//
//   $ ./build/examples/loopfree_migration [n]
//
// Migrates a flow from a path onto its reversal - the worst case for
// strong loop freedom - and contrasts the round counts and update times of
// Peacock (relaxed loop freedom) and the strong-loop-freedom greedy.
#include <cstdio>
#include <cstdlib>

#include "tsu/core/experiment.hpp"
#include "tsu/topo/instances.hpp"
#include "tsu/update/schedulers.hpp"
#include "tsu/verify/checker.hpp"

int main(int argc, char** argv) {
  using namespace tsu;
  const std::size_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 12;
  if (n < 4 || n > 64) {
    std::fprintf(stderr, "n must be in [4, 64]\n");
    return 1;
  }

  const update::Instance inst = topo::reversal_instance(n);
  std::printf("old route: %s\n", graph::to_string(inst.old_path()).c_str());
  std::printf("new route: %s (interior reversed)\n\n",
              graph::to_string(inst.new_path()).c_str());

  core::ExecutorConfig config;
  config.seed = 3;
  config.with_traffic = true;
  config.traffic_interarrival =
      sim::LatencyModel::constant(sim::microseconds(150));

  for (const core::Algorithm algorithm :
       {core::Algorithm::kPeacock, core::Algorithm::kSlfGreedy}) {
    Result<core::ExperimentResult> result =
        core::run_experiment(inst, algorithm, config);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", core::to_string(algorithm),
                   result.error().to_string().c_str());
      return 1;
    }
    const core::ExperimentResult& r = result.value();
    std::printf("=== %s ===\n", core::to_string(algorithm));
    std::printf("rounds: %zu   checker: %s\n", r.schedule.round_count(),
                r.check.ok ? "OK" : "VIOLATED");
    std::printf("update time: %.2f ms\n", r.execution.update_ms());
    std::printf("traffic: %s\n\n", r.execution.traffic.to_string().c_str());
  }

  std::printf(
      "relaxed loop freedom retires the reversal in a handful of rounds;\n"
      "strong loop freedom needs ~n rounds - 'it's good to relax!'\n");
  return 0;
}
