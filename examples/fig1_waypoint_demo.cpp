// The paper's demo, end to end: Figure 1's 12-switch network, host h1
// talking to h2 through the waypoint at switch 3, and a policy update
// executed once insecurely (single round) and once with WayUp.
//
//   $ ./build/examples/fig1_waypoint_demo [seed]
//
// Prints the round structure, the transient states the model checker
// flags, and the packet-level outcome of both runs.
#include <cstdio>
#include <cstdlib>

#include "tsu/core/experiment.hpp"
#include "tsu/topo/instances.hpp"

int main(int argc, char** argv) {
  using namespace tsu;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  const topo::Fig1 fig = topo::fig1();
  std::printf("%s\n", fig.topology.to_string().c_str());
  std::printf("h1 at switch 1, h2 at switch 12, waypoint (firewall) at 3\n");
  std::printf("old route: %s\n",
              graph::to_string(fig.instance.old_path()).c_str());
  std::printf("new route: %s\n\n",
              graph::to_string(fig.instance.new_path()).c_str());

  core::ExecutorConfig config;
  config.seed = seed;
  config.channel.latency =
      sim::LatencyModel::uniform(sim::microseconds(100), sim::milliseconds(8));
  config.switch_config.install_latency =
      sim::LatencyModel::lognormal(sim::milliseconds(2), 1.0);
  config.traffic_interarrival =
      sim::LatencyModel::constant(sim::microseconds(100));

  for (const core::Algorithm algorithm :
       {core::Algorithm::kOneShot, core::Algorithm::kWayUp}) {
    Result<core::ExperimentResult> result =
        core::run_experiment(fig.instance, algorithm, config);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", core::to_string(algorithm),
                   result.error().to_string().c_str());
      return 1;
    }
    const core::ExperimentResult& r = result.value();
    std::printf("=== %s ===\n", core::to_string(algorithm));
    std::printf("schedule: %s\n", r.schedule.to_string().c_str());
    std::printf("model checker: %s\n", r.check.to_string().c_str());
    std::printf("update time: %.2f ms\n", r.execution.update_ms());
    std::printf("traffic: %s\n", r.execution.traffic.to_string().c_str());
    if (r.execution.traffic.bypassed > 0)
      std::printf(">>> %zu packets slipped past the firewall <<<\n",
                  r.execution.traffic.bypassed);
    else
      std::printf("no packet bypassed the firewall\n");
    std::printf("\n");
  }
  return 0;
}
