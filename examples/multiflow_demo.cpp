// Multi-flow demo: 64 concurrent policy updates through one controller.
//
//   $ ./build/multiflow_demo
//
// Exercises the concurrent update engine end-to-end: 64 disjoint policy
// changes are submitted together, the controller keeps all of them in
// flight at once (vs. the paper's one-at-a-time message queue), and with
// frame batching it coalesces same-instant messages per switch into single
// control frames. Per-flow traffic runs throughout; the consistency monitor
// watches every flow simultaneously.
#include <cstdio>

#include <vector>

#include "tsu/core/executor.hpp"
#include "tsu/update/schedulers.hpp"

int main() {
  using namespace tsu;

  constexpr std::size_t kFlows = 64;

  // 64 disjoint policy changes: flow i moves from <b, b+1, b+2, b+3> to
  // <b, b+4, b+5, b+3> in its own node block b = 6 * i.
  std::vector<update::Instance> instances;
  std::vector<update::Schedule> schedules;
  for (std::size_t i = 0; i < kFlows; ++i) {
    const NodeId base = static_cast<NodeId>(6 * i);
    Result<update::Instance> instance = update::Instance::make(
        {base, base + 1, base + 2, base + 3},
        {base, base + 4, base + 5, base + 3});
    if (!instance.ok()) {
      std::fprintf(stderr, "bad instance: %s\n",
                   instance.error().to_string().c_str());
      return 1;
    }
    Result<update::Schedule> schedule =
        update::plan_peacock(instance.value());
    if (!schedule.ok()) {
      std::fprintf(stderr, "planning failed: %s\n",
                   schedule.error().to_string().c_str());
      return 1;
    }
    instances.push_back(std::move(instance).value());
    schedules.push_back(std::move(schedule).value());
  }
  std::vector<const update::Instance*> instance_ptrs;
  std::vector<const update::Schedule*> schedule_ptrs;
  for (std::size_t i = 0; i < kFlows; ++i) {
    instance_ptrs.push_back(&instances[i]);
    schedule_ptrs.push_back(&schedules[i]);
  }

  const auto report = [](const char* label,
                         const core::MultiFlowExecutionResult& r) {
    std::printf(
        "%-22s makespan %7.2f ms  frames %6zu  messages %6zu  "
        "in-flight peak %zu\n",
        label, r.makespan_ms(), r.frames_sent, r.messages_sent,
        r.max_in_flight_observed);
  };

  // The paper's serializing queue (K = 1), the concurrent engine (K = 64),
  // and the concurrent engine with per-switch frame batching.
  core::ExecutorConfig serial_config;
  serial_config.seed = 7;
  Result<std::vector<core::ExecutionResult>> serial =
      core::execute_queue(instance_ptrs, schedule_ptrs, serial_config);
  if (!serial.ok()) {
    std::fprintf(stderr, "serial run failed: %s\n",
                 serial.error().to_string().c_str());
    return 1;
  }
  const double serial_ms = sim::to_ms(
      serial.value().back().update.finished -
      serial.value().front().update.started);
  std::printf("%-22s makespan %7.2f ms  frames %6zu\n",
              "serial queue (K=1)", serial_ms,
              serial.value().front().frames_sent);

  core::ExecutorConfig concurrent_config = serial_config;
  concurrent_config.controller.max_in_flight = kFlows;
  Result<core::MultiFlowExecutionResult> concurrent =
      core::execute_multiflow(instance_ptrs, schedule_ptrs,
                              concurrent_config);
  core::ExecutorConfig batched_config = concurrent_config;
  batched_config.controller.batch_frames = true;
  Result<core::MultiFlowExecutionResult> batched =
      core::execute_multiflow(instance_ptrs, schedule_ptrs, batched_config);
  if (!concurrent.ok() || !batched.ok()) {
    std::fprintf(stderr, "concurrent run failed\n");
    return 1;
  }
  report("concurrent (K=64)", concurrent.value());
  report("concurrent + batching", batched.value());

  const dataplane::MonitorReport aggregate = batched.value().aggregate;
  std::printf("\nall %zu flows observed simultaneously: %s\n",
              batched.value().flows.size(), aggregate.to_string().c_str());
  if (aggregate.bypassed + aggregate.looped + aggregate.blackholed != 0) {
    std::fprintf(stderr, "unexpected transient violations!\n");
    return 1;
  }
  std::printf(
      "no transient violation on any flow; batching saved %zu frames.\n",
      serial.value().front().frames_sent - batched.value().frames_sent);
  return 0;
}
