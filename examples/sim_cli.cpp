// Scenario driver: run any scheduler on any built-in workload from the
// command line, optionally under a JSON-configured environment.
//
//   $ ./build/sim_cli --algorithm wayup --workload fig1 --seeds 20
//   $ ./build/sim_cli --algorithm peacock --workload reversal:24
//   $ ./build/sim_cli --algorithm oneshot --workload random:9
//         --config env.json   (flags may be combined freely)
//
// Multi-flow mode drives the concurrent update engine instead: N flows
// over a shared switch pool, admitted under the chosen policy.
//
//   $ ./build/sim_cli --flows 256 --switches 60
//         --admission conflict_aware --max-in-flight 256 --batch
//
// Serve mode runs the open-loop service (core/service.hpp): Poisson
// arrivals against a template pool, bounded pending queue, live JSON
// snapshots on stdout and a final stats document.
//
//   $ ./build/sim_cli --serve --rate 5000 --duration-ms 2000
//   $ ./build/sim_cli --serve --target 100000 --max-pending 256
//         --classes 2 --config service.json
//
// Workloads: fig1 | reversal:<n> | random:<seed>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "tsu/core/config.hpp"
#include "tsu/core/experiment.hpp"
#include "tsu/rest/service_json.hpp"
#include "tsu/topo/instances.hpp"
#include "tsu/util/strings.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: sim_cli [--algorithm NAME] [--workload SPEC]\n"
               "               [--seeds N] [--config FILE.json]\n"
               "               [--flows N] [--switches S]\n"
               "               [--admission blind|conflict_aware|serialize]\n"
               "               [--admission-release request|round]\n"
               "               [--max-in-flight K] [--batch]\n"
               "               [--batch-mode off|instant|window|adaptive]\n"
               "               [--batch-window-ms MS] [--batch-bytes N]\n"
               "               [--batch-replies]\n"
               "               [--shards N]\n"
               "               [--partition hash|block|greedy_cut]\n"
               "               [--exec sequential|parallel] [--threads N]\n"
               "               [--speculate] [--steal]\n"
               "               [--faults FILE.json] [--liveness-ms MS]\n"
               "               [--failure-response wait|rollback]\n"
               "               [--serve] [--rate R] [--duration-ms MS]\n"
               "               [--target N] [--max-pending N] [--classes N]\n"
               "               [--plan-cache on|off]\n"
               "  algorithms: oneshot twophase wayup peacock slf-greedy "
               "secure optimal\n"
               "  workloads : fig1 | reversal:<n> | random:<seed>\n"
               "  --flows >1 runs the concurrent multi-flow engine on a\n"
               "  shared pool of --switches switches (default 6 per flow)\n"
               "  --batch is the legacy alias for --batch-mode instant; an\n"
               "  explicit --batch-mode (from flag or config file, including\n"
               "  'off') overrides the alias. window/adaptive hold a\n"
               "  per-switch outbox up to the window (or byte budget) to\n"
               "  pack cross-flow frames; --batch-replies coalesces\n"
               "  same-instant switch->controller replies too\n"
               "  --shards N partitions the switches across N controller\n"
               "  shards (hash scatters NodeIds, block keeps contiguous\n"
               "  ranges shard-local, greedy_cut packs switches that share\n"
               "  updates onto one shard to minimize the cross-shard cut);\n"
               "  cross-shard updates synchronize round-by-round through\n"
               "  the shard coordinator. --exec parallel steps independent\n"
               "  shards on --threads workers (0 = auto) between safe\n"
               "  horizons - bit-identical results, less wall-clock\n"
               "  --speculate releases round barriers speculatively for\n"
               "  updates the admission DAG proves conflict-free and lets\n"
               "  barrier replies process mid-epoch (needs conflict_aware);\n"
               "  --steal launches each wave's epochs longest-first so idle\n"
               "  lanes pick up the heaviest shard backlog\n"
               "  --admission-release round frees a request's conflict\n"
               "  footprint per completed round instead of at completion\n"
               "  --faults replays a serialized FaultSchedule (switch\n"
               "  crashes, control-link outages, frame blackholes) against\n"
               "  the run; --liveness-ms sets the controller's detection\n"
               "  timeout and --failure-response picks retry vs rollback\n"
               "  --serve runs the open-loop service: Poisson arrivals at\n"
               "  --rate req/s over --flows templates on --switches pool\n"
               "  switches until --duration-ms of sim time or --target\n"
               "  accepted requests (one is required); arrivals beyond the\n"
               "  --max-pending backlog are shed; --classes N splits\n"
               "  arrivals over N priority classes (0 served first); live\n"
               "  snapshots and the final stats print as JSON, and a\n"
               "  --config file may carry a \"service\" block for the\n"
               "  full schema (traces, rate limits, snapshot cadence);\n"
               "  --plan-cache off disables the service submission path's\n"
               "  compiled-plan cache (memoized rounds/admission footprint/\n"
               "  pre-encoded frames per template+direction; default on)\n");
}

// Multi-flow mode: N peacock-planned flows over a shared switch pool,
// executed concurrently under the configured admission policy.
int run_multiflow(std::size_t flows, std::size_t switches,
                  tsu::core::ExecutorConfig config) {
  using namespace tsu;
  Result<topo::PlannedPoolWorkload> workload =
      topo::planned_pool_workload(flows, switches);
  if (!workload.ok()) {
    std::fprintf(stderr, "planning failed: %s\n",
                 workload.error().to_string().c_str());
    return 1;
  }
  const topo::PlannedPoolWorkload w = std::move(workload).value();

  std::printf("flows    : %zu over %zu switches\n", flows, switches);
  std::printf("admission: %s (release per %s), max_in_flight %zu/shard, "
              "batch_mode %s (window %.2f ms, budget %zu B)\n",
              controller::to_string(config.controller.admission),
              controller::to_string(config.controller.admission_release),
              config.controller.max_in_flight,
              controller::to_string(
                  controller::effective_batch_mode(config.controller)),
              sim::to_ms(config.controller.batch_window),
              config.controller.batch_bytes);
  std::printf("shards   : %zu (%s partition, %s exec)%s\n",
              config.controller.shards,
              topo::to_string(config.controller.partition),
              sim::to_string(config.controller.exec),
              config.switch_config.batch_replies ? ", reply batching on"
                                                 : "");

  const Result<core::MultiFlowExecutionResult> run =
      core::execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
  if (!run.ok()) {
    std::fprintf(stderr, "execution failed: %s\n",
                 run.error().to_string().c_str());
    return 1;
  }
  const core::MultiFlowExecutionResult& result = run.value();
  std::printf("makespan : %.2f ms (max %zu in flight)\n",
              result.makespan_ms(), result.max_in_flight_observed);
  std::printf("admission: %llu conflict edges, %llu blocked submissions\n",
              static_cast<unsigned long long>(result.conflict_edges),
              static_cast<unsigned long long>(result.blocked_submissions));
  std::printf("frames   : %zu (%zu logical messages)\n", result.frames_sent,
              result.messages_sent);
  std::printf("batching : %zu batches (%zu coalesced), %zu timer / %zu "
              "budget flushes, max hold %.3f ms\n",
              result.batching.batches_sent,
              result.batching.messages_coalesced,
              result.batching.timer_flushes, result.batching.budget_flushes,
              result.batching.max_hold_ms());
  if (result.sharding.shards > 1) {
    std::printf("sharding : %zu cross-shard updates, %zu rounds synced, "
                "%.3f ms sync overhead, cut weight %zu\n",
                result.sharding.cross_shard_updates,
                result.sharding.rounds_synced,
                result.sharding.sync_overhead_ms(),
                result.sharding.partition_cut_weight);
    if (result.sharding.exec == sim::ExecMode::kParallel)
      std::printf("parallel : %zu epochs, %zu horizon stalls, %zu threads, "
                  "%zu speculative releases, %zu steals, "
                  "%zu overflow posts, %.1f ms wall\n",
                  result.sharding.parallel_epochs,
                  result.sharding.horizon_stalls, result.sharding.threads,
                  result.sharding.speculative_releases,
                  result.sharding.steals, result.sharding.overflow_posts,
                  result.sharding.wall_ms);
  }
  std::printf("traffic  : %zu packets, %zu bypassed, %zu looped, "
              "%zu blackholed\n",
              result.aggregate.total, result.aggregate.bypassed,
              result.aggregate.looped, result.aggregate.blackholed);
  if (!config.faults.empty()) {
    const sim::FaultStats& f = result.faults;
    std::printf("faults   : %zu crashes, %zu link downs, %zu blackholes, "
                "%zu frames lost\n",
                f.crashes, f.link_downs, f.blackholes, f.frames_lost);
    std::printf("recovery : %zu timeouts, %zu resyncs (%zu frames), "
                "%zu retries, %zu rollbacks (%zu resubmitted), "
                "p50 %.2f ms p99 %.2f ms\n",
                f.timeouts, f.resyncs, f.resync_frames, f.retries,
                f.rollbacks, f.resubmissions, f.recovery_p50_ms(),
                f.recovery_p99_ms());
  }
  return 0;
}

// Serve mode: open-loop service with live JSON snapshots on stdout.
int run_service(tsu::core::ServiceConfig config) {
  using namespace tsu;
  std::printf("service  : %s\n",
              json::write(core::service_config_to_json(config)).c_str());
  if (config.snapshot_interval == 0)
    config.snapshot_interval = sim::milliseconds(100);
  config.on_snapshot = [](const core::ServiceSnapshot& snapshot) {
    std::printf("snapshot : %s\n", rest::to_json(snapshot).c_str());
  };
  const Result<core::ServiceResult> run = core::execute_service(config);
  if (!run.ok()) {
    std::fprintf(stderr, "service failed: %s\n",
                 run.error().to_string().c_str());
    return 1;
  }
  std::printf("result   : %s\n", rest::to_json(run.value()).c_str());
  return 0;
}

std::optional<tsu::update::Instance> make_workload(const std::string& spec) {
  using namespace tsu;
  if (spec == "fig1") return topo::fig1().instance;
  if (starts_with(spec, "reversal:")) {
    const auto n = parse_int(spec.substr(9));
    if (!n.has_value() || *n < 4 || *n > 128) return std::nullopt;
    return topo::reversal_instance(static_cast<std::size_t>(*n));
  }
  if (starts_with(spec, "random:")) {
    const auto seed = parse_int(spec.substr(7));
    if (!seed.has_value() || *seed < 0) return std::nullopt;
    Rng rng(static_cast<std::uint64_t>(*seed));
    return topo::random_instance(rng, topo::RandomInstanceOptions{});
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tsu;

  std::string algorithm_name = "wayup";
  std::string workload = "fig1";
  std::size_t seeds = 10;
  std::size_t flows = 1;
  std::size_t switches = 0;  // 0: sized from --flows (6 per flow)
  core::ExecutorConfig config;
  // Controller flags are collected separately and applied after the loop,
  // so they win over a --config file regardless of argument order.
  std::optional<controller::AdmissionPolicy> admission_flag;
  std::optional<controller::AdmissionRelease> admission_release_flag;
  std::optional<std::size_t> max_in_flight_flag;
  bool batch_flag = false;
  std::optional<controller::BatchMode> batch_mode_flag;
  std::optional<double> batch_window_ms_flag;
  std::optional<std::size_t> batch_bytes_flag;
  bool batch_replies_flag = false;
  std::optional<std::size_t> shards_flag;
  std::optional<topo::PartitionScheme> partition_flag;
  std::optional<sim::ExecMode> exec_flag;
  std::optional<std::size_t> threads_flag;
  bool speculate_flag = false;
  bool steal_flag = false;
  std::optional<sim::FaultSchedule> faults_flag;
  std::optional<double> liveness_ms_flag;
  std::optional<controller::FailureResponse> failure_response_flag;
  bool serve = false;
  bool switches_set = false;
  std::optional<bool> plan_cache_flag;
  std::optional<double> rate_flag;
  std::optional<double> duration_ms_flag;
  std::optional<std::uint64_t> target_flag;
  std::optional<std::size_t> max_pending_flag;
  std::optional<std::size_t> classes_flag;
  // The config file is parsed after the loop: --serve selects the service
  // document parser (which accepts the "service" block).
  std::optional<std::string> config_text;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--algorithm") {
      const char* v = next();
      if (v == nullptr) return usage(), 1;
      algorithm_name = v;
    } else if (arg == "--workload") {
      const char* v = next();
      if (v == nullptr) return usage(), 1;
      workload = v;
    } else if (arg == "--seeds") {
      const char* v = next();
      const auto n = v != nullptr ? parse_int(v) : std::nullopt;
      if (!n.has_value() || *n < 1) return usage(), 1;
      seeds = static_cast<std::size_t>(*n);
    } else if (arg == "--flows") {
      const char* v = next();
      const auto n = v != nullptr ? parse_int(v) : std::nullopt;
      if (!n.has_value() || *n < 1) return usage(), 1;
      flows = static_cast<std::size_t>(*n);
    } else if (arg == "--switches") {
      const char* v = next();
      const auto n = v != nullptr ? parse_int(v) : std::nullopt;
      if (!n.has_value() || *n < 6) return usage(), 1;
      switches = static_cast<std::size_t>(*n);
      switches_set = true;
    } else if (arg == "--serve") {
      serve = true;
    } else if (arg == "--rate") {
      const char* v = next();
      char* endp = nullptr;
      const double rate = v != nullptr ? std::strtod(v, &endp) : -1;
      if (v == nullptr || endp == v || rate <= 0) return usage(), 1;
      rate_flag = rate;
    } else if (arg == "--duration-ms") {
      const char* v = next();
      char* endp = nullptr;
      const double ms = v != nullptr ? std::strtod(v, &endp) : -1;
      if (v == nullptr || endp == v || ms <= 0) return usage(), 1;
      duration_ms_flag = ms;
    } else if (arg == "--target") {
      const char* v = next();
      const auto n = v != nullptr ? parse_int(v) : std::nullopt;
      if (!n.has_value() || *n < 1) return usage(), 1;
      target_flag = static_cast<std::uint64_t>(*n);
    } else if (arg == "--max-pending") {
      const char* v = next();
      const auto n = v != nullptr ? parse_int(v) : std::nullopt;
      if (!n.has_value() || *n < 1) return usage(), 1;
      max_pending_flag = static_cast<std::size_t>(*n);
    } else if (arg == "--plan-cache") {
      const char* v = next();
      if (v == nullptr ||
          (std::string_view(v) != "on" && std::string_view(v) != "off"))
        return usage(), 1;
      plan_cache_flag = std::string_view(v) == "on";
    } else if (arg == "--classes") {
      const char* v = next();
      const auto n = v != nullptr ? parse_int(v) : std::nullopt;
      if (!n.has_value() || *n < 1 || *n > 256) return usage(), 1;
      classes_flag = static_cast<std::size_t>(*n);
    } else if (arg == "--admission") {
      const char* v = next();
      const auto policy = v != nullptr
                              ? controller::admission_policy_from_string(v)
                              : std::nullopt;
      if (!policy.has_value()) return usage(), 1;
      admission_flag = *policy;
    } else if (arg == "--max-in-flight") {
      const char* v = next();
      const auto n = v != nullptr ? parse_int(v) : std::nullopt;
      if (!n.has_value() || *n < 1) return usage(), 1;
      max_in_flight_flag = static_cast<std::size_t>(*n);
    } else if (arg == "--batch") {
      batch_flag = true;
    } else if (arg == "--batch-mode") {
      const char* v = next();
      const auto mode =
          v != nullptr ? controller::batch_mode_from_string(v) : std::nullopt;
      if (!mode.has_value()) return usage(), 1;
      batch_mode_flag = *mode;
    } else if (arg == "--batch-window-ms") {
      const char* v = next();
      char* endp = nullptr;
      const double ms = v != nullptr ? std::strtod(v, &endp) : -1;
      if (v == nullptr || endp == v || ms < 0) return usage(), 1;
      batch_window_ms_flag = ms;
    } else if (arg == "--batch-bytes") {
      const char* v = next();
      const auto n = v != nullptr ? parse_int(v) : std::nullopt;
      if (!n.has_value() || *n < 1) return usage(), 1;
      batch_bytes_flag = static_cast<std::size_t>(*n);
    } else if (arg == "--batch-replies") {
      batch_replies_flag = true;
    } else if (arg == "--admission-release") {
      const char* v = next();
      const auto release =
          v != nullptr ? controller::admission_release_from_string(v)
                       : std::nullopt;
      if (!release.has_value()) return usage(), 1;
      admission_release_flag = *release;
    } else if (arg == "--shards") {
      const char* v = next();
      const auto n = v != nullptr ? parse_int(v) : std::nullopt;
      if (!n.has_value() || *n < 1 ||
          *n > static_cast<std::int64_t>(proto::kMaxXidShards))
        return usage(), 1;
      shards_flag = static_cast<std::size_t>(*n);
    } else if (arg == "--partition") {
      const char* v = next();
      const auto scheme =
          v != nullptr ? topo::partition_scheme_from_string(v) : std::nullopt;
      if (!scheme.has_value()) return usage(), 1;
      partition_flag = *scheme;
    } else if (arg == "--exec") {
      const char* v = next();
      const auto mode =
          v != nullptr ? sim::exec_mode_from_string(v) : std::nullopt;
      if (!mode.has_value()) return usage(), 1;
      exec_flag = *mode;
    } else if (arg == "--threads") {
      const char* v = next();
      const auto n = v != nullptr ? parse_int(v) : std::nullopt;
      if (!n.has_value() || *n < 0) return usage(), 1;
      threads_flag = static_cast<std::size_t>(*n);
    } else if (arg == "--speculate") {
      speculate_flag = true;
    } else if (arg == "--steal") {
      steal_flag = true;
    } else if (arg == "--faults") {
      const char* v = next();
      if (v == nullptr) return usage(), 1;
      std::ifstream file(v);
      if (!file) {
        std::fprintf(stderr, "cannot open %s\n", v);
        return 1;
      }
      std::ostringstream buffer;
      buffer << file.rdbuf();
      const std::string text = buffer.str();
      Result<sim::FaultSchedule> schedule =
          sim::FaultSchedule::from_json(std::string_view(text));
      if (!schedule.ok()) {
        std::fprintf(stderr, "bad fault schedule: %s\n",
                     schedule.error().to_string().c_str());
        return 1;
      }
      faults_flag = std::move(schedule).value();
    } else if (arg == "--liveness-ms") {
      const char* v = next();
      char* endp = nullptr;
      const double ms = v != nullptr ? std::strtod(v, &endp) : -1;
      if (v == nullptr || endp == v || ms < 0) return usage(), 1;
      liveness_ms_flag = ms;
    } else if (arg == "--failure-response") {
      const char* v = next();
      const auto response =
          v != nullptr ? controller::failure_response_from_string(v)
                       : std::nullopt;
      if (!response.has_value()) return usage(), 1;
      failure_response_flag = *response;
    } else if (arg == "--config") {
      const char* v = next();
      if (v == nullptr) return usage(), 1;
      std::ifstream file(v);
      if (!file) {
        std::fprintf(stderr, "cannot open %s\n", v);
        return 1;
      }
      std::ostringstream buffer;
      buffer << file.rdbuf();
      config_text = buffer.str();
    } else {
      usage();
      return arg == "--help" ? 0 : 1;
    }
  }

  core::ServiceConfig service;
  if (config_text.has_value()) {
    if (serve) {
      Result<core::ServiceConfig> parsed =
          core::service_config_from_json(std::string_view(*config_text));
      if (!parsed.ok()) {
        std::fprintf(stderr, "bad config: %s\n",
                     parsed.error().to_string().c_str());
        return 1;
      }
      service = std::move(parsed).value();
      config = service.exec;
    } else {
      Result<core::ExecutorConfig> parsed =
          core::config_from_json(std::string_view(*config_text));
      if (!parsed.ok()) {
        std::fprintf(stderr, "bad config: %s\n",
                     parsed.error().to_string().c_str());
        return 1;
      }
      config = parsed.value();
    }
  }

  if (admission_flag.has_value())
    config.controller.admission = *admission_flag;
  if (max_in_flight_flag.has_value())
    config.controller.max_in_flight = *max_in_flight_flag;
  if (batch_flag) config.controller.batch_frames = true;
  if (batch_mode_flag.has_value()) {
    config.controller.batch_mode = *batch_mode_flag;
    // Explicit mode retires the legacy alias: --batch-mode off wins over
    // --batch and over a config file's batch_frames.
    config.controller.batch_frames = false;
  }
  if (batch_window_ms_flag.has_value())
    config.controller.batch_window = sim::from_ms(*batch_window_ms_flag);
  if (batch_bytes_flag.has_value())
    config.controller.batch_bytes = *batch_bytes_flag;
  if (batch_replies_flag) config.switch_config.batch_replies = true;
  if (admission_release_flag.has_value())
    config.controller.admission_release = *admission_release_flag;
  if (shards_flag.has_value()) config.controller.shards = *shards_flag;
  if (partition_flag.has_value())
    config.controller.partition = *partition_flag;
  if (exec_flag.has_value()) config.controller.exec = *exec_flag;
  if (threads_flag.has_value()) config.controller.threads = *threads_flag;
  if (speculate_flag) config.controller.speculate = true;
  if (steal_flag) config.controller.steal = true;
  if (plan_cache_flag.has_value())
    config.controller.plan_cache = *plan_cache_flag;
  if (faults_flag.has_value()) config.faults = std::move(*faults_flag);
  if (liveness_ms_flag.has_value())
    config.controller.liveness_timeout = sim::from_ms(*liveness_ms_flag);
  if (failure_response_flag.has_value())
    config.controller.failure_response = *failure_response_flag;

  if (serve) {
    service.exec = config;
    if (flows > 1) service.flows = flows;
    if (switches_set) service.pool_switches = switches;
    if (rate_flag.has_value()) service.arrival_rate_per_sec = *rate_flag;
    if (duration_ms_flag.has_value())
      service.horizon = sim::from_ms(*duration_ms_flag);
    if (target_flag.has_value()) service.target_completions = *target_flag;
    if (max_pending_flag.has_value()) service.max_pending = *max_pending_flag;
    if (classes_flag.has_value())
      service.classes.assign(*classes_flag, core::ServiceClassConfig{});
    return run_service(std::move(service));
  }

  if (flows > 1) {
    if (switches == 0) switches = flows * 6;
    return run_multiflow(flows, switches, config);
  }

  const auto algorithm = core::algorithm_from_string(algorithm_name);
  if (!algorithm.has_value()) {
    std::fprintf(stderr, "unknown algorithm '%s'\n", algorithm_name.c_str());
    return 1;
  }
  const std::optional<update::Instance> instance = make_workload(workload);
  if (!instance.has_value()) {
    std::fprintf(stderr, "bad workload '%s'\n", workload.c_str());
    return 1;
  }

  std::printf("instance : %s\n", instance->to_string().c_str());
  std::printf("config   : %s\n",
              json::write(core::config_to_json(config)).c_str());

  core::PlannerOptions plan_options;
  plan_options.verify = true;
  Result<core::PlanOutcome> planned =
      core::plan(*instance, *algorithm, plan_options);
  if (!planned.ok()) {
    std::fprintf(stderr, "planning failed: %s\n",
                 planned.error().to_string().c_str());
    return 1;
  }
  std::printf("schedule : %s\n", planned.value().schedule.to_string().c_str());
  std::printf("verified : %s\n", planned.value().report->to_string().c_str());

  std::vector<std::uint64_t> seed_list(seeds);
  for (std::size_t i = 0; i < seeds; ++i) seed_list[i] = config.seed + i;
  Result<core::SeedSweep> sweep = core::sweep_seeds(
      *instance, planned.value().schedule, config, seed_list);
  if (!sweep.ok()) {
    std::fprintf(stderr, "execution failed: %s\n",
                 sweep.error().to_string().c_str());
    return 1;
  }
  const core::SeedSweep& s = sweep.value();
  std::printf("runs     : %zu\n", s.runs);
  std::printf("update   : mean %.2f ms  p95 %.2f ms  max %.2f ms\n",
              s.update_ms.mean(), s.update_ms_pct.p95(), s.update_ms.max());
  std::printf("traffic  : delivered %.1f/run, bypassed %.1f/run (%zu runs), "
              "looped %.1f/run (%zu runs), dropped %.1f/run (%zu runs)\n",
              s.delivered.mean(), s.bypassed.mean(), s.runs_with_bypass,
              s.looped.mean(), s.runs_with_loop, s.blackholed.mean(),
              s.runs_with_drop);
  return 0;
}
