// The REST front door: feed the controller the exact JSON message format
// of the paper's ofctl_rest_own.py (§2), plan WayUp server-side, execute.
//
//   $ ./build/examples/rest_controller            # built-in Fig.1 message
//   $ ./build/examples/rest_controller msg.json   # your own message
#include <cstdio>
#include <fstream>
#include <sstream>

#include "tsu/core/experiment.hpp"
#include "tsu/rest/rest.hpp"
#include "tsu/topo/instances.hpp"
#include "tsu/util/strings.hpp"

namespace {

constexpr const char* kDefaultMessage = R"({
  "oldpath": [1, 2, 3, 4, 8, 5, 6, 12],
  "newpath": [1, 7, 5, 3, 2, 9, 10, 11, 12],
  "wp": 3,
  "interval": 10
})";

}  // namespace

int main(int argc, char** argv) {
  using namespace tsu;

  std::string body = kDefaultMessage;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    body = buffer.str();
  }

  // Parse the REST message (paths as datapath numbers, wp, interval).
  Result<rest::RestUpdateMessage> message = rest::parse_update_message(body);
  if (!message.ok()) {
    std::fprintf(stderr, "bad REST message: %s\n",
                 message.error().to_string().c_str());
    return 1;
  }
  std::printf("request: %s\n\n", rest::to_json(message.value()).c_str());

  // Resolve datapath numbers against the deployment's topology.
  const topo::Fig1 fig = topo::fig1();
  Result<update::Instance> instance =
      rest::to_instance(message.value(), fig.topology);
  if (!instance.ok()) {
    std::fprintf(stderr, "message does not fit the topology: %s\n",
                 instance.error().to_string().c_str());
    return 1;
  }

  // Plan (WayUp when a waypoint is present, Peacock otherwise) and run,
  // honouring the message's inter-round interval.
  const core::Algorithm algorithm = instance.value().has_waypoint()
                                        ? core::Algorithm::kWayUp
                                        : core::Algorithm::kPeacock;
  core::ExecutorConfig config;
  config.seed = 11;
  config.interval = sim::from_ms(message.value().interval_ms);
  // Honour the message's optional controller knobs (admission policy,
  // max_in_flight, batch_frames).
  rest::apply_controller_overrides(message.value(), config.controller);
  std::printf("admission: %s (max_in_flight %zu, batching %s)\n\n",
              controller::to_string(config.controller.admission),
              config.controller.max_in_flight,
              config.controller.batch_frames ? "on" : "off");
  Result<core::ExperimentResult> result =
      core::run_experiment(instance.value(), algorithm, config);
  if (!result.ok()) {
    std::fprintf(stderr, "update failed: %s\n",
                 result.error().to_string().c_str());
    return 1;
  }
  std::printf("%s\n", result.value().summary_line().c_str());
  std::printf("per-round timings:\n");
  const auto& rounds = result.value().execution.update.rounds;
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    std::printf("  round %zu: %s (flow_mods=%zu, barriers=%zu)\n", i + 1,
                format_duration_ns(rounds[i].finished - rounds[i].started)
                    .c_str(),
                rounds[i].flow_mods, rounds[i].barriers);
  }
  return 0;
}
