#include <gtest/gtest.h>

#include <algorithm>

#include "tsu/topo/instances.hpp"
#include "tsu/update/instance.hpp"

namespace tsu::update {
namespace {

Instance make_fig1() { return topo::fig1().instance; }

// Old: <1, 2, 3, 4, 8, 5, 6, 12>, New: <1, 7, 5, 3, 2, 9, 10, 11, 12>, wp=3.

TEST(InstanceTest, MakeValidatesPaths) {
  EXPECT_TRUE(Instance::make({1, 2, 3}, {1, 4, 3}).ok());
  EXPECT_FALSE(Instance::make({1}, {1, 2}).ok());
  EXPECT_FALSE(Instance::make({1, 2, 3}, {2, 3}).ok());
  EXPECT_FALSE(Instance::make({1, 2, 3}, {1, 4, 3}, NodeId{2}).ok());
}

TEST(InstanceTest, EndpointsAndWaypoint) {
  const Instance inst = make_fig1();
  EXPECT_EQ(inst.source(), 1u);
  EXPECT_EQ(inst.destination(), 12u);
  ASSERT_TRUE(inst.has_waypoint());
  EXPECT_EQ(*inst.waypoint(), 3u);
  EXPECT_EQ(inst.node_count(), 13u);
}

TEST(InstanceTest, RolesClassifyNodes) {
  const Instance inst = make_fig1();
  EXPECT_EQ(inst.role(1), NodeRole::kBoth);    // source
  EXPECT_EQ(inst.role(3), NodeRole::kBoth);    // waypoint
  EXPECT_EQ(inst.role(4), NodeRole::kOldOnly);
  EXPECT_EQ(inst.role(8), NodeRole::kOldOnly);
  EXPECT_EQ(inst.role(6), NodeRole::kOldOnly);
  EXPECT_EQ(inst.role(7), NodeRole::kNewOnly);
  EXPECT_EQ(inst.role(9), NodeRole::kNewOnly);
  EXPECT_EQ(inst.role(0), NodeRole::kUntouched);
}

TEST(InstanceTest, NextHops) {
  const Instance inst = make_fig1();
  EXPECT_EQ(inst.old_next(1), 2u);
  EXPECT_EQ(inst.new_next(1), 7u);
  EXPECT_EQ(inst.old_next(3), 4u);
  EXPECT_EQ(inst.new_next(3), 2u);
  EXPECT_EQ(inst.old_next(12), kInvalidNode);  // destination
  EXPECT_EQ(inst.new_next(12), kInvalidNode);
  EXPECT_EQ(inst.old_next(7), kInvalidNode);   // new-only node
  EXPECT_EQ(inst.new_next(4), kInvalidNode);   // old-only node
}

TEST(InstanceTest, PositionsMatchPaths) {
  const Instance inst = make_fig1();
  EXPECT_EQ(*inst.old_pos(1), 0u);
  EXPECT_EQ(*inst.old_pos(12), 7u);
  EXPECT_EQ(*inst.new_pos(7), 1u);
  EXPECT_FALSE(inst.old_pos(7).has_value());
  EXPECT_FALSE(inst.new_pos(4).has_value());
}

TEST(InstanceTest, TouchedSetIsNewPathMinusDestination) {
  const Instance inst = make_fig1();
  std::vector<NodeId> touched = inst.touched();
  std::sort(touched.begin(), touched.end());
  // All new-path nodes change their next hop (or get installed) except 12.
  EXPECT_EQ(touched, (std::vector<NodeId>{1, 2, 3, 5, 7, 9, 10, 11}));
  EXPECT_TRUE(inst.is_touched(5));
  EXPECT_FALSE(inst.is_touched(12));
  EXPECT_FALSE(inst.is_touched(4));
}

TEST(InstanceTest, UnchangedNodesNotTouched) {
  // Node 2 keeps the same next hop in both paths: not touched.
  Result<Instance> inst = Instance::make({1, 2, 3, 4}, {1, 2, 3, 5, 4});
  ASSERT_TRUE(inst.ok());
  EXPECT_FALSE(inst.value().is_touched(1));  // 1 -> 2 in both
  EXPECT_FALSE(inst.value().is_touched(2));  // 2 -> 3 in both
  EXPECT_TRUE(inst.value().is_touched(3));   // 3 -> 4 vs 3 -> 5
  std::vector<NodeId> touched = inst.value().touched();
  std::sort(touched.begin(), touched.end());
  EXPECT_EQ(touched, (std::vector<NodeId>{3, 5}));
}

TEST(InstanceTest, OldOnlyNodes) {
  const Instance inst = make_fig1();
  std::vector<NodeId> old_only = inst.old_only_nodes();
  std::sort(old_only.begin(), old_only.end());
  EXPECT_EQ(old_only, (std::vector<NodeId>{4, 6, 8}));
}

TEST(InstanceTest, ConflictSetsOnFig1) {
  const Instance inst = make_fig1();
  // X = new-prefix nodes on the old suffix: node 5 (before wp on new,
  // after wp on old).
  EXPECT_EQ(inst.set_x(), (std::vector<NodeId>{5}));
  // Y = old-prefix nodes on the new suffix: node 2.
  EXPECT_EQ(inst.set_y(), (std::vector<NodeId>{2}));
}

TEST(InstanceTest, ConflictSetsEmptyWithoutWaypoint) {
  Result<Instance> inst = Instance::make({1, 2, 3}, {1, 4, 3});
  ASSERT_TRUE(inst.ok());
  EXPECT_TRUE(inst.value().set_x().empty());
  EXPECT_TRUE(inst.value().set_y().empty());
}

TEST(InstanceTest, ConflictSetsEmptyOnDisjointInterior) {
  // Old and new share only endpoints and wp; no X/Y conflicts.
  Result<Instance> inst =
      Instance::make({1, 2, 3, 4, 9}, {1, 5, 3, 6, 9}, NodeId{3});
  ASSERT_TRUE(inst.ok());
  EXPECT_TRUE(inst.value().set_x().empty());
  EXPECT_TRUE(inst.value().set_y().empty());
}

TEST(InstanceTest, IdenticalPathsHaveNoTouchedNodes) {
  Result<Instance> inst = Instance::make({1, 2, 3}, {1, 2, 3});
  ASSERT_TRUE(inst.ok());
  EXPECT_TRUE(inst.value().touched().empty());
}

TEST(InstanceTest, ToStringShowsPathsAndWaypoint) {
  const Instance inst = make_fig1();
  const std::string text = inst.to_string();
  EXPECT_NE(text.find("old=<1, 2, 3, 4, 8, 5, 6, 12>"), std::string::npos);
  EXPECT_NE(text.find("wp=3"), std::string::npos);
}

TEST(InstanceTest, RoleNames) {
  EXPECT_STREQ(to_string(NodeRole::kBoth), "both");
  EXPECT_STREQ(to_string(NodeRole::kNewOnly), "new-only");
}

}  // namespace
}  // namespace tsu::update
