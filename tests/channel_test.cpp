#include <gtest/gtest.h>

#include <vector>

#include "tsu/channel/channel.hpp"

namespace tsu::channel {
namespace {

struct Fixture {
  sim::Simulator sim;
  std::vector<std::pair<sim::SimTime, proto::Message>> received;

  ControlChannel make(ChannelConfig config, std::uint64_t seed = 1) {
    ControlChannel channel(sim, config, Rng(seed));
    channel.set_receiver([this](const proto::Message& m) {
      received.emplace_back(sim.now(), m);
    });
    return channel;
  }
};

TEST(ChannelTest, DeliversAfterConstantLatency) {
  Fixture f;
  ChannelConfig config;
  config.latency = sim::LatencyModel::constant(sim::milliseconds(2));
  ControlChannel channel = f.make(config);
  channel.send(proto::make_hello(1));
  f.sim.run();
  ASSERT_EQ(f.received.size(), 1u);
  EXPECT_EQ(f.received[0].first, sim::milliseconds(2));
  EXPECT_EQ(f.received[0].second.type(), proto::MsgType::kHello);
}

TEST(ChannelTest, PreservesMessageContentThroughWire) {
  Fixture f;
  ControlChannel channel = f.make(ChannelConfig{});
  proto::FlowMod mod;
  mod.command = proto::FlowModCommand::kModify;
  mod.priority = 42;
  mod.match.flow = 9;
  mod.action = flow::Action::forward(5);
  channel.send(proto::make_flow_mod(77, mod));
  f.sim.run();
  ASSERT_EQ(f.received.size(), 1u);
  const auto& decoded = std::get<proto::FlowMod>(f.received[0].second.body);
  EXPECT_EQ(f.received[0].second.xid, 77u);
  EXPECT_EQ(decoded.priority, 42);
  EXPECT_EQ(decoded.match.flow, 9u);
  EXPECT_EQ(decoded.action, flow::Action::forward(5));
}

TEST(ChannelTest, InOrderDeliveryDespiteJitter) {
  Fixture f;
  ChannelConfig config;
  config.latency =
      sim::LatencyModel::uniform(sim::microseconds(100), sim::milliseconds(10));
  ControlChannel channel = f.make(config, 99);
  for (Xid xid = 0; xid < 50; ++xid)
    channel.send(proto::make_barrier_request(xid));
  f.sim.run();
  ASSERT_EQ(f.received.size(), 50u);
  for (Xid xid = 0; xid < 50; ++xid)
    EXPECT_EQ(f.received[xid].second.xid, xid);  // FIFO per channel
  for (std::size_t i = 1; i < f.received.size(); ++i)
    EXPECT_GE(f.received[i].first, f.received[i - 1].first);
}

TEST(ChannelTest, IndependentChannelsReorderFreely) {
  // The asynchrony of the paper: two switches' channels race.
  Fixture f;
  ChannelConfig slow;
  slow.latency = sim::LatencyModel::constant(sim::milliseconds(10));
  ChannelConfig fast;
  fast.latency = sim::LatencyModel::constant(sim::milliseconds(1));
  ControlChannel to_s1(f.sim, slow, Rng(1));
  ControlChannel to_s2(f.sim, fast, Rng(2));
  std::vector<int> order;
  to_s1.set_receiver([&](const proto::Message&) { order.push_back(1); });
  to_s2.set_receiver([&](const proto::Message&) { order.push_back(2); });
  to_s1.send(proto::make_hello(1));  // sent first...
  to_s2.send(proto::make_hello(2));
  f.sim.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));  // ...but arrives second
}

TEST(ChannelTest, LossSurfacesAsRetransmitDelay) {
  Fixture f;
  ChannelConfig config;
  config.latency = sim::LatencyModel::constant(sim::milliseconds(1));
  config.loss_probability = 1.0;  // would retransmit forever...
  config.retransmit_timeout = sim::milliseconds(30);
  // ...so dial it to lose exactly once via a crafted probability: use 0.5
  // and just assert delivery is never *earlier* than the base latency and
  // everything still arrives.
  config.loss_probability = 0.5;
  ControlChannel channel = f.make(config, 7);
  for (Xid xid = 0; xid < 20; ++xid) channel.send(proto::make_hello(xid));
  f.sim.run();
  ASSERT_EQ(f.received.size(), 20u);
  EXPECT_GT(channel.retransmissions(), 0u);
  for (const auto& [at, message] : f.received)
    EXPECT_GE(at, sim::milliseconds(1));
}

TEST(ChannelTest, CountsFramesAndBytes) {
  Fixture f;
  ControlChannel channel = f.make(ChannelConfig{});
  channel.send(proto::make_hello(1));
  channel.send(proto::make_barrier_request(2));
  f.sim.run();
  EXPECT_EQ(channel.frames_sent(), 2u);
  EXPECT_EQ(channel.bytes_sent(), 16u);  // two 8-byte header-only frames
}

TEST(ChannelTest, DuplexDirectionsAreIndependent) {
  sim::Simulator sim;
  Rng rng(5);
  ChannelConfig config;
  config.latency = sim::LatencyModel::constant(sim::milliseconds(1));
  DuplexChannel duplex(sim, config, rng);
  int to_switch = 0;
  int to_controller = 0;
  duplex.to_switch.set_receiver(
      [&](const proto::Message&) { ++to_switch; });
  duplex.to_controller.set_receiver(
      [&](const proto::Message&) { ++to_controller; });
  duplex.to_switch.send(proto::make_hello(1));
  duplex.to_controller.send(proto::make_hello(2));
  duplex.to_controller.send(proto::make_hello(3));
  sim.run();
  EXPECT_EQ(to_switch, 1);
  EXPECT_EQ(to_controller, 2);
}

TEST(ChannelDeathTest, SendWithoutReceiverAsserts) {
  sim::Simulator sim;
  ControlChannel channel(sim, ChannelConfig{}, Rng(1));
  EXPECT_DEATH(channel.send(proto::make_hello(1)), "receiver");
}

}  // namespace
}  // namespace tsu::channel
