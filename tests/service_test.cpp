// Open-loop service mode tests: Poisson and trace arrivals, bounded
// pending queue with load shedding, per-class rate limiting, priority
// admission ordering, live snapshots, and the bounded-memory drain
// contract (steady_state_entries back to zero).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string_view>
#include <vector>

#include "tsu/core/service.hpp"

namespace tsu::core {
namespace {

ServiceConfig small_service() {
  ServiceConfig config;
  config.exec.seed = 42;
  config.exec.with_traffic = false;  // most tests: control plane only
  config.flows = 4;
  config.pool_switches = 24;
  config.exec.controller.max_in_flight = 8;
  config.arrival_rate_per_sec = 20000;
  config.target_completions = 60;
  return config;
}

TEST(ServiceTest, CompletesTargetAndDrainsClean) {
  const Result<ServiceResult> run = execute_service(small_service());
  ASSERT_TRUE(run.ok()) << run.error().to_string();
  const ServiceResult& result = run.value();
  EXPECT_EQ(result.stats.accepted, 60u);
  EXPECT_EQ(result.stats.completed, 60u);
  EXPECT_EQ(result.stats.submitted, result.stats.completed);
  EXPECT_EQ(result.stats.aborted, 0u);
  EXPECT_EQ(result.completions.count, 60u);
  EXPECT_EQ(result.recent.size(), 60u);  // below ring capacity: full history
  // Completion order in the recent window.
  for (std::size_t i = 1; i < result.recent.size(); ++i)
    EXPECT_LE(result.recent[i - 1].finished, result.recent[i].finished);
  // The leak detector: every per-xid / per-update map drained to empty.
  EXPECT_EQ(result.steady_state_entries_final, 0u);
  EXPECT_GT(result.retired_xids, 0u);  // xids were released for reuse
  EXPECT_GT(result.sustained_per_sec(), 0.0);
  // Admission wait covers arrival -> start, so it is >= 0 and was folded
  // into the streaming stats for every completion.
  EXPECT_EQ(result.completions.wait_ms.count(), 60u);
}

TEST(ServiceTest, DeterministicPerSeed) {
  const Result<ServiceResult> a = execute_service(small_service());
  const Result<ServiceResult> b = execute_service(small_service());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().stats.arrivals, b.value().stats.arrivals);
  EXPECT_EQ(a.value().stats.completed, b.value().stats.completed);
  EXPECT_EQ(a.value().sim_duration, b.value().sim_duration);
  EXPECT_EQ(a.value().final_state_digest, b.value().final_state_digest);
  EXPECT_EQ(a.value().frames_sent, b.value().frames_sent);
}

// The plan cache's transparency contract: a cached submission must be
// BIT-identical to a from-scratch one - same frames on the wire, same
// forwarding state, same makespan, same oracle verdict - across seeds,
// with traffic and sharding mixed in. Any divergence means the compiled
// plan diverged from what the lowering pipeline would have produced.
TEST(ServiceTest, PlanCacheIsBitTransparentAcrossSeeds) {
  // The CI cache-off sweep (TSU_PLAN_CACHE=off) forces both arms of this
  // comparison onto the same path, which would vacuously pass the identity
  // checks and fail the cache-on counter assertions - skip it there; the
  // normal legs run it.
  if (const char* env = std::getenv("TSU_PLAN_CACHE");
      env != nullptr && std::string_view(env) == "off")
    GTEST_SKIP() << "plan cache forced off by environment";
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    ServiceConfig config = small_service();
    config.exec.seed = seed;
    config.target_completions = 30;
    config.exec.with_traffic = (seed % 5 == 0);  // oracle on a fifth of them
    if (seed % 3 == 0) config.exec.controller.shards = 2;
    ServiceConfig off_config = config;
    off_config.exec.controller.plan_cache = false;

    const Result<ServiceResult> on = execute_service(config);
    const Result<ServiceResult> off = execute_service(off_config);
    ASSERT_TRUE(on.ok()) << "seed " << seed << ": " << on.error().to_string();
    ASSERT_TRUE(off.ok()) << "seed " << seed << ": "
                          << off.error().to_string();

    EXPECT_EQ(on.value().final_state_digest, off.value().final_state_digest)
        << "seed " << seed;
    EXPECT_EQ(on.value().frames_sent, off.value().frames_sent)
        << "seed " << seed;
    EXPECT_EQ(on.value().sim_duration, off.value().sim_duration)
        << "seed " << seed;
    EXPECT_EQ(on.value().stats.completed, off.value().stats.completed)
        << "seed " << seed;
    EXPECT_EQ(on.value().traffic.total, off.value().traffic.total)
        << "seed " << seed;
    EXPECT_EQ(on.value().traffic.bypassed, off.value().traffic.bypassed)
        << "seed " << seed;
    EXPECT_EQ(on.value().traffic.looped, off.value().traffic.looped)
        << "seed " << seed;
    EXPECT_EQ(on.value().traffic.blackholed, off.value().traffic.blackholed)
        << "seed " << seed;

    // The cache actually engaged: templates repeat, so most submissions
    // after the first few are hits; cache-off reports all-zero counters.
    EXPECT_GT(on.value().stats.plan_hits, 0u) << "seed " << seed;
    EXPECT_GT(on.value().stats.plan_compiles, 0u) << "seed " << seed;
    EXPECT_EQ(off.value().stats.plan_compiles, 0u) << "seed " << seed;
    EXPECT_EQ(off.value().stats.plan_hits, 0u) << "seed " << seed;
    EXPECT_EQ(off.value().stats.plan_invalidations, 0u) << "seed " << seed;
  }
}

TEST(ServiceTest, TrafficOracleSeesNoViolations) {
  ServiceConfig config = small_service();
  config.exec.with_traffic = true;
  config.target_completions = 24;
  const Result<ServiceResult> run = execute_service(config);
  ASSERT_TRUE(run.ok()) << run.error().to_string();
  const ServiceResult& result = run.value();
  EXPECT_GT(result.traffic.total, 0u);
  EXPECT_EQ(result.traffic.bypassed, 0u);
  EXPECT_EQ(result.traffic.looped, 0u);
  EXPECT_EQ(result.traffic.blackholed, 0u);
  EXPECT_EQ(result.steady_state_entries_final, 0u);
}

TEST(ServiceTest, FullPendingQueueShedsLoad) {
  ServiceConfig config = small_service();
  config.target_completions = 0;
  config.horizon = sim::milliseconds(5);
  config.arrival_rate_per_sec = 1000000;  // far beyond service capacity
  config.max_pending = 8;
  config.submit_depth = 2;
  config.exec.controller.max_in_flight = 1;
  const Result<ServiceResult> run = execute_service(config);
  ASSERT_TRUE(run.ok()) << run.error().to_string();
  const ServiceResult& result = run.value();
  EXPECT_GT(result.stats.rejected, 0u);
  EXPECT_LE(result.stats.peak_pending, 8u);
  EXPECT_EQ(result.stats.accepted + result.stats.rejected,
            result.stats.arrivals);
  // Every accepted request still completed - rejection is the ONLY loss.
  EXPECT_EQ(result.stats.completed, result.stats.accepted);
  EXPECT_EQ(result.steady_state_entries_final, 0u);
}

TEST(ServiceTest, PerClassRateLimitThrottles) {
  ServiceConfig config = small_service();
  config.target_completions = 40;
  config.arrival_rate_per_sec = 100000;
  config.classes = {ServiceClassConfig{/*rate_limit_per_sec=*/20000,
                                       /*burst=*/1, /*weight=*/1}};
  const Result<ServiceResult> run = execute_service(config);
  ASSERT_TRUE(run.ok()) << run.error().to_string();
  const ServiceResult& result = run.value();
  EXPECT_GT(result.stats.throttled, 0u);
  EXPECT_EQ(result.stats.completed, 40u);
  // Arrivals outpace the release rate 5:1, so requests measurably sat in
  // the pending queue: admission wait strictly exceeds queueing delay.
  EXPECT_GT(result.completions.wait_ms.mean(), 0.0);
  EXPECT_EQ(result.steady_state_entries_final, 0u);
}

TEST(ServiceTest, HighPriorityClassWaitsLess) {
  ServiceConfig config = small_service();
  config.exec.seed = 7;
  config.target_completions = 120;
  config.arrival_rate_per_sec = 50000;  // saturating: the queue is never dry
  config.max_pending = 256;
  config.submit_depth = 1;
  config.exec.controller.max_in_flight = 1;
  config.classes = {ServiceClassConfig{0, 1, 1}, ServiceClassConfig{0, 1, 1}};
  const Result<ServiceResult> run = execute_service(config);
  ASSERT_TRUE(run.ok()) << run.error().to_string();
  const ServiceResult& result = run.value();
  ASSERT_EQ(result.stats.by_class.size(), 2u);
  EXPECT_GT(result.stats.by_class[0].completed, 0u);
  EXPECT_GT(result.stats.by_class[1].completed, 0u);
  // All 120 completions fit in the recent ring? No - ring capacity is 256,
  // and 120 < 256, so the window holds every completion with its class.
  double wait0 = 0, wait1 = 0;
  std::size_t n0 = 0, n1 = 0;
  for (const controller::UpdateMetrics& m : result.recent) {
    if (m.priority_class == 0) {
      wait0 += static_cast<double>(m.admission_wait());
      ++n0;
    } else {
      wait1 += static_cast<double>(m.admission_wait());
      ++n1;
    }
  }
  ASSERT_GT(n0, 0u);
  ASSERT_GT(n1, 0u);
  // Class 0 jumps the pending queue, so its mean admission wait must be
  // strictly lower under saturation.
  EXPECT_LT(wait0 / static_cast<double>(n0), wait1 / static_cast<double>(n1));
}

TEST(ServiceTest, SnapshotsStreamAndStayBounded) {
  ServiceConfig config = small_service();
  config.target_completions = 80;
  config.arrival_rate_per_sec = 10000;
  config.snapshot_interval = sim::milliseconds(1);
  config.snapshot_window = 4;
  std::size_t callbacks = 0;
  std::uint64_t last_completed = 0;
  config.on_snapshot = [&](const ServiceSnapshot& s) {
    ++callbacks;
    EXPECT_GE(s.completed, last_completed);  // cumulative counters
    last_completed = s.completed;
  };
  const Result<ServiceResult> run = execute_service(config);
  ASSERT_TRUE(run.ok()) << run.error().to_string();
  const ServiceResult& result = run.value();
  ASSERT_FALSE(result.snapshots.empty());
  EXPECT_LE(result.snapshots.size(), 4u);  // bounded ring
  EXPECT_GE(callbacks, result.snapshots.size());
  for (std::size_t i = 1; i < result.snapshots.size(); ++i)
    EXPECT_LT(result.snapshots[i - 1].at, result.snapshots[i].at);
  // Live stats carried real data.
  EXPECT_GT(result.snapshots.back().completed, 0u);
  EXPECT_GT(result.snapshots.back().p50_duration_ms, 0.0);
}

TEST(ServiceTest, TraceDrivenArrivalsFollowTheTrace) {
  ServiceConfig config = small_service();
  config.target_completions = 0;
  // 30 gaps, no cycling: exactly 30 arrivals, then the trace is exhausted.
  config.trace.assign(30, sim::microseconds(100));
  config.trace_cycle = false;
  const Result<ServiceResult> run = execute_service(config);
  ASSERT_TRUE(run.ok()) << run.error().to_string();
  const ServiceResult& result = run.value();
  EXPECT_EQ(result.stats.arrivals, 30u);
  EXPECT_EQ(result.stats.completed, result.stats.accepted);
  EXPECT_EQ(result.steady_state_entries_final, 0u);
}

TEST(ServiceTest, RejectsUnboundedConfigs) {
  ServiceConfig config = small_service();
  config.target_completions = 0;
  config.horizon = 0;
  EXPECT_FALSE(execute_service(config).ok());  // arrivals would never stop
  config = small_service();
  config.max_pending = 0;
  EXPECT_FALSE(execute_service(config).ok());
  config = small_service();
  config.classes.clear();
  EXPECT_FALSE(execute_service(config).ok());
}

TEST(ServiceTest, ShardedServiceDrainsClean) {
  ServiceConfig config = small_service();
  config.exec.controller.shards = 2;
  config.target_completions = 40;
  const Result<ServiceResult> run = execute_service(config);
  ASSERT_TRUE(run.ok()) << run.error().to_string();
  EXPECT_EQ(run.value().stats.completed, 40u);
  EXPECT_EQ(run.value().steady_state_entries_final, 0u);
}

}  // namespace
}  // namespace tsu::core
