#include <gtest/gtest.h>

#include "tsu/rest/rest.hpp"
#include "tsu/topo/generators.hpp"
#include "tsu/topo/instances.hpp"

namespace tsu::rest {
namespace {

// The paper's example message shape (§2), concretized for Figure 1.
constexpr const char* kFig1Request = R"({
  "oldpath": [1, 2, 3, 4, 8, 5, 6, 12],
  "newpath": [1, 7, 5, 3, 2, 9, 10, 11, 12],
  "wp": 3,
  "interval": 50,
  "add": [
    {"dpid": 7, "priority": 100, "match": {"flow": 1},
     "actions": [{"type": "OUTPUT", "port": 5}]}
  ],
  "modify": [
    {"dpid": 1, "priority": 100, "match": {"flow": 1},
     "actions": [{"type": "OUTPUT", "port": 7}]}
  ]
})";

TEST(RestParseTest, ParsesPaperShapedMessage) {
  const Result<RestUpdateMessage> parsed = parse_update_message(kFig1Request);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  const RestUpdateMessage& m = parsed.value();
  EXPECT_EQ(m.old_path,
            (std::vector<DatapathId>{1, 2, 3, 4, 8, 5, 6, 12}));
  EXPECT_EQ(m.new_path,
            (std::vector<DatapathId>{1, 7, 5, 3, 2, 9, 10, 11, 12}));
  EXPECT_EQ(m.waypoint, 3u);
  EXPECT_DOUBLE_EQ(m.interval_ms, 50.0);
  ASSERT_EQ(m.flow_mods.size(), 2u);
  EXPECT_EQ(m.flow_mods[0].dpid, 7u);
  EXPECT_EQ(m.flow_mods[0].mod.command, proto::FlowModCommand::kAdd);
  EXPECT_EQ(m.flow_mods[0].mod.action, flow::Action::forward(5));
  EXPECT_EQ(m.flow_mods[1].mod.command, proto::FlowModCommand::kModify);
}

TEST(RestParseTest, AcceptsNumericStrings) {
  // "the waypoint is a string, which can be converted to an integer value"
  const Result<RestUpdateMessage> parsed = parse_update_message(
      R"({"oldpath": ["1", "2", "3"], "newpath": ["1", "4", "3"],
          "wp": "2", "interval": 0})");
  // wp=2 is not on the new path; parsing still succeeds - instance
  // validation is a separate step.
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().old_path, (std::vector<DatapathId>{1, 2, 3}));
  EXPECT_EQ(parsed.value().waypoint, 2u);
}

TEST(RestParseTest, WaypointAndBodyOptional) {
  const Result<RestUpdateMessage> parsed = parse_update_message(
      R"({"oldpath": [1, 2], "newpath": [1, 2]})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed.value().waypoint.has_value());
  EXPECT_TRUE(parsed.value().flow_mods.empty());
  EXPECT_DOUBLE_EQ(parsed.value().interval_ms, 0.0);
}

TEST(RestParseTest, ControllerKnobsParsedAndApplied) {
  const Result<RestUpdateMessage> parsed = parse_update_message(
      R"({"oldpath": [1, 2], "newpath": [1, 2],
          "admission": "conflict_aware", "max_in_flight": 16,
          "batch_frames": true})");
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().admission,
            controller::AdmissionPolicy::kConflictAware);
  EXPECT_EQ(parsed.value().max_in_flight, 16u);
  EXPECT_EQ(parsed.value().batch_frames, true);

  controller::ControllerConfig config;
  apply_controller_overrides(parsed.value(), config);
  EXPECT_EQ(config.admission, controller::AdmissionPolicy::kConflictAware);
  EXPECT_EQ(config.max_in_flight, 16u);
  EXPECT_TRUE(config.batch_frames);

  // Absent knobs leave the config alone.
  const Result<RestUpdateMessage> plain =
      parse_update_message(R"({"oldpath": [1, 2], "newpath": [1, 2]})");
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain.value().admission.has_value());
  controller::ControllerConfig untouched;
  untouched.max_in_flight = 4;
  apply_controller_overrides(plain.value(), untouched);
  EXPECT_EQ(untouched.max_in_flight, 4u);
  EXPECT_EQ(untouched.admission, controller::AdmissionPolicy::kBlind);
}

TEST(RestParseTest, BatchingKnobsParsedAndApplied) {
  const Result<RestUpdateMessage> parsed = parse_update_message(
      R"({"oldpath": [1, 2], "newpath": [1, 2],
          "batch_mode": "adaptive", "batch_window_ms": 0.25,
          "batch_bytes": 4096})");
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().batch_mode, controller::BatchMode::kAdaptive);
  EXPECT_DOUBLE_EQ(*parsed.value().batch_window_ms, 0.25);
  EXPECT_EQ(parsed.value().batch_bytes, 4096u);

  controller::ControllerConfig config;
  apply_controller_overrides(parsed.value(), config);
  EXPECT_EQ(config.batch_mode, controller::BatchMode::kAdaptive);
  EXPECT_EQ(config.batch_window, sim::microseconds(250));
  EXPECT_EQ(config.batch_bytes, 4096u);
  EXPECT_EQ(controller::effective_batch_mode(config),
            controller::BatchMode::kAdaptive);

  // An explicit "off" header overrides a server-side legacy batch_frames.
  const Result<RestUpdateMessage> off = parse_update_message(
      R"({"oldpath": [1, 2], "newpath": [1, 2], "batch_mode": "off"})");
  ASSERT_TRUE(off.ok());
  controller::ControllerConfig legacy;
  legacy.batch_frames = true;
  apply_controller_overrides(off.value(), legacy);
  EXPECT_EQ(controller::effective_batch_mode(legacy),
            controller::BatchMode::kOff);
}

TEST(RestParseTest, RejectsBadControllerKnobs) {
  EXPECT_FALSE(parse_update_message(
                   R"({"oldpath": [1], "newpath": [1],
                       "admission": "optimistic"})")
                   .ok());
  EXPECT_FALSE(parse_update_message(
                   R"({"oldpath": [1], "newpath": [1], "max_in_flight": 0})")
                   .ok());
  EXPECT_FALSE(parse_update_message(
                   R"({"oldpath": [1], "newpath": [1],
                       "batch_frames": "yes"})")
                   .ok());
  EXPECT_FALSE(parse_update_message(
                   R"({"oldpath": [1], "newpath": [1],
                       "batch_mode": "eager"})")
                   .ok());
  EXPECT_FALSE(parse_update_message(
                   R"({"oldpath": [1], "newpath": [1],
                       "batch_window_ms": -1})")
                   .ok());
  EXPECT_FALSE(parse_update_message(
                   R"({"oldpath": [1], "newpath": [1], "batch_bytes": 0})")
                   .ok());
  EXPECT_FALSE(parse_update_message(
                   R"({"oldpath": [1], "newpath": [1], "shards": 0})")
                   .ok());
  EXPECT_FALSE(parse_update_message(
                   R"({"oldpath": [1], "newpath": [1], "shards": 300})")
                   .ok());
  EXPECT_FALSE(parse_update_message(
                   R"({"oldpath": [1], "newpath": [1],
                       "partition": "modulo"})")
                   .ok());
  EXPECT_FALSE(parse_update_message(
                   R"({"oldpath": [1], "newpath": [1],
                       "admission_release": "never"})")
                   .ok());
}

TEST(RestParseTest, ShardingKnobsParsedAndApplied) {
  const Result<RestUpdateMessage> parsed = parse_update_message(
      R"({"oldpath": [1, 2], "newpath": [1, 2],
          "shards": 4, "partition": "block",
          "admission_release": "round",
          "speculate": true, "steal": true})");
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().shards, 4u);
  EXPECT_EQ(parsed.value().partition, topo::PartitionScheme::kBlock);
  EXPECT_EQ(parsed.value().admission_release,
            controller::AdmissionRelease::kRound);
  EXPECT_EQ(parsed.value().speculate, true);
  EXPECT_EQ(parsed.value().steal, true);

  controller::ControllerConfig config;
  apply_controller_overrides(parsed.value(), config);
  EXPECT_EQ(config.shards, 4u);
  EXPECT_EQ(config.partition, topo::PartitionScheme::kBlock);
  EXPECT_EQ(config.admission_release, controller::AdmissionRelease::kRound);
  EXPECT_TRUE(config.speculate);
  EXPECT_TRUE(config.steal);

  // Non-boolean speculation knobs are malformed, like every other typed
  // header field.
  EXPECT_FALSE(parse_update_message(
                   R"({"oldpath": [1], "newpath": [1], "speculate": 1})")
                   .ok());
  EXPECT_FALSE(parse_update_message(
                   R"({"oldpath": [1], "newpath": [1], "steal": "on"})")
                   .ok());

  // Absent sharding knobs leave the server's configuration alone.
  const Result<RestUpdateMessage> plain =
      parse_update_message(R"({"oldpath": [1, 2], "newpath": [1, 2]})");
  ASSERT_TRUE(plain.ok());
  controller::ControllerConfig untouched;
  untouched.shards = 2;
  untouched.speculate = true;
  apply_controller_overrides(plain.value(), untouched);
  EXPECT_EQ(untouched.shards, 2u);
  EXPECT_EQ(untouched.admission_release,
            controller::AdmissionRelease::kRequest);
  EXPECT_TRUE(untouched.speculate);  // absent field leaves it alone
  EXPECT_FALSE(untouched.steal);
}

TEST(RestParseTest, RejectsMissingPaths) {
  EXPECT_FALSE(parse_update_message(R"({"newpath": [1, 2]})").ok());
  EXPECT_FALSE(parse_update_message(R"({"oldpath": [1, 2]})").ok());
  EXPECT_FALSE(parse_update_message(R"({})").ok());
}

TEST(RestParseTest, RejectsMalformedFields) {
  EXPECT_FALSE(parse_update_message(
                   R"({"oldpath": "nope", "newpath": [1, 2]})")
                   .ok());
  EXPECT_FALSE(parse_update_message(
                   R"({"oldpath": [1, "x"], "newpath": [1, 2]})")
                   .ok());
  EXPECT_FALSE(parse_update_message(
                   R"({"oldpath": [1, 2], "newpath": [1, 2], "wp": -3})")
                   .ok());
  EXPECT_FALSE(parse_update_message(
                   R"({"oldpath": [1, 2], "newpath": [1, 2],
                       "interval": -1})")
                   .ok());
  EXPECT_FALSE(parse_update_message(
                   R"({"oldpath": [1, 2], "newpath": [1, 2],
                       "frobnicate": []})")
                   .ok());
}

TEST(RestParseTest, RejectsBadFlowMods) {
  // Missing dpid.
  EXPECT_FALSE(parse_update_message(
                   R"({"oldpath": [1,2], "newpath": [1,2],
                       "add": [{"priority": 1}]})")
                   .ok());
  // Unknown action type.
  EXPECT_FALSE(parse_update_message(
                   R"({"oldpath": [1,2], "newpath": [1,2],
                       "add": [{"dpid": 1,
                                "actions": [{"type": "TELEPORT"}]}]})")
                   .ok());
  // Unknown match field.
  EXPECT_FALSE(parse_update_message(
                   R"({"oldpath": [1,2], "newpath": [1,2],
                       "add": [{"dpid": 1, "match": {"vlan": 5}}]})")
                   .ok());
  // Priority out of range.
  EXPECT_FALSE(parse_update_message(
                   R"({"oldpath": [1,2], "newpath": [1,2],
                       "add": [{"dpid": 1, "priority": 70000}]})")
                   .ok());
  // Not even JSON.
  EXPECT_FALSE(parse_update_message("oldpath=1,2").ok());
}

TEST(RestParseTest, DeleteEntriesSupported) {
  const Result<RestUpdateMessage> parsed = parse_update_message(
      R"({"oldpath": [1, 2], "newpath": [1, 2],
          "delete": [{"dpid": 4, "match": {"flow": 1}}]})");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().flow_mods.size(), 1u);
  EXPECT_EQ(parsed.value().flow_mods[0].mod.command,
            proto::FlowModCommand::kDelete);
}

TEST(RestRoundTripTest, ToJsonParsesBack) {
  const Result<RestUpdateMessage> first = parse_update_message(kFig1Request);
  ASSERT_TRUE(first.ok());
  const std::string rendered = to_json(first.value());
  const Result<RestUpdateMessage> second = parse_update_message(rendered);
  ASSERT_TRUE(second.ok()) << rendered;
  EXPECT_EQ(second.value().old_path, first.value().old_path);
  EXPECT_EQ(second.value().new_path, first.value().new_path);
  EXPECT_EQ(second.value().waypoint, first.value().waypoint);
  ASSERT_EQ(second.value().flow_mods.size(), first.value().flow_mods.size());
  for (std::size_t i = 0; i < second.value().flow_mods.size(); ++i) {
    EXPECT_EQ(second.value().flow_mods[i].dpid,
              first.value().flow_mods[i].dpid);
    EXPECT_EQ(second.value().flow_mods[i].mod.match,
              first.value().flow_mods[i].mod.match);
    EXPECT_EQ(second.value().flow_mods[i].mod.action,
              first.value().flow_mods[i].mod.action);
  }
}

TEST(RestRoundTripTest, ControllerKnobsSurviveRoundTrip) {
  RestUpdateMessage message;
  message.old_path = {1, 2};
  message.new_path = {1, 2};
  message.admission = controller::AdmissionPolicy::kSerialize;
  message.max_in_flight = 8;
  message.batch_frames = false;
  message.batch_mode = controller::BatchMode::kWindow;
  message.batch_window_ms = 0.5;
  message.batch_bytes = 2048;
  message.shards = 4;
  message.partition = topo::PartitionScheme::kHash;
  message.admission_release = controller::AdmissionRelease::kRound;
  message.speculate = true;
  message.steal = false;
  const Result<RestUpdateMessage> back =
      parse_update_message(to_json(message));
  ASSERT_TRUE(back.ok()) << to_json(message);
  EXPECT_EQ(back.value().admission, controller::AdmissionPolicy::kSerialize);
  EXPECT_EQ(back.value().max_in_flight, 8u);
  EXPECT_EQ(back.value().batch_frames, false);
  EXPECT_EQ(back.value().batch_mode, controller::BatchMode::kWindow);
  EXPECT_DOUBLE_EQ(*back.value().batch_window_ms, 0.5);
  EXPECT_EQ(back.value().batch_bytes, 2048u);
  EXPECT_EQ(back.value().shards, 4u);
  EXPECT_EQ(back.value().partition, topo::PartitionScheme::kHash);
  EXPECT_EQ(back.value().admission_release,
            controller::AdmissionRelease::kRound);
  EXPECT_EQ(back.value().speculate, true);
  EXPECT_EQ(back.value().steal, false);  // false is still an explicit value
}

TEST(RestToInstanceTest, MapsDatapathsToNodes) {
  const topo::Fig1 fig = topo::fig1();
  const Result<RestUpdateMessage> parsed = parse_update_message(kFig1Request);
  ASSERT_TRUE(parsed.ok());
  const Result<update::Instance> inst =
      to_instance(parsed.value(), fig.topology);
  ASSERT_TRUE(inst.ok()) << inst.error().to_string();
  EXPECT_EQ(inst.value().old_path(), fig.instance.old_path());
  EXPECT_EQ(inst.value().new_path(), fig.instance.new_path());
  EXPECT_EQ(inst.value().waypoint(), fig.instance.waypoint());
}

TEST(RestToInstanceTest, UnknownDatapathRejected) {
  const topo::Fig1 fig = topo::fig1();
  const Result<RestUpdateMessage> parsed = parse_update_message(
      R"({"oldpath": [1, 99], "newpath": [1, 99]})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(to_instance(parsed.value(), fig.topology).ok());
}

TEST(RestToInstanceTest, InvalidRoutePairRejected) {
  const topo::Fig1 fig = topo::fig1();
  // Different endpoints.
  const Result<RestUpdateMessage> parsed = parse_update_message(
      R"({"oldpath": [1, 2, 3], "newpath": [2, 3]})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(to_instance(parsed.value(), fig.topology).ok());
}

TEST(RestToInstanceTest, CustomDpidMappingHonored) {
  topo::Topology topology = topo::line(3);
  topology.set_dpid(0, 100);
  topology.set_dpid(1, 200);
  topology.set_dpid(2, 300);
  const Result<RestUpdateMessage> parsed = parse_update_message(
      R"({"oldpath": [100, 200, 300], "newpath": [100, 300]})");
  ASSERT_TRUE(parsed.ok());
  const Result<update::Instance> inst =
      to_instance(parsed.value(), topology);
  ASSERT_TRUE(inst.ok()) << inst.error().to_string();
  EXPECT_EQ(inst.value().old_path(), (graph::Path{0, 1, 2}));
  EXPECT_EQ(inst.value().new_path(), (graph::Path{0, 2}));
}

}  // namespace
}  // namespace tsu::rest
