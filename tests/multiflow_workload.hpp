// Shared multi-flow test workload: `count` disjoint policy updates, each
// in its own node block of 6 — old route <b, b+1, b+2, b+3>, new route
// <b, b+4, b+5, b+3> — with Peacock (loop- and blackhole-free) schedules,
// so a correct execution shows zero transient violations on every flow.
#pragma once

#include <vector>

#include "tsu/update/instance.hpp"
#include "tsu/update/schedule.hpp"
#include "tsu/update/schedulers.hpp"

namespace tsu::testutil {

inline update::Instance offset_instance(NodeId base) {
  const graph::Path old_path{base, base + 1, base + 2, base + 3};
  const graph::Path new_path{base, base + 4, base + 5, base + 3};
  return update::Instance::make(old_path, new_path).value();
}

struct Workload {
  std::vector<update::Instance> instances;
  std::vector<update::Schedule> schedules;
  std::vector<const update::Instance*> instance_ptrs;
  std::vector<const update::Schedule*> schedule_ptrs;
};

inline Workload disjoint_workload(std::size_t count) {
  Workload w;
  for (std::size_t i = 0; i < count; ++i)
    w.instances.push_back(offset_instance(static_cast<NodeId>(i * 6)));
  for (const update::Instance& inst : w.instances)
    w.schedules.push_back(update::plan_peacock(inst).value());
  for (std::size_t i = 0; i < count; ++i) {
    w.instance_ptrs.push_back(&w.instances[i]);
    w.schedule_ptrs.push_back(&w.schedules[i]);
  }
  return w;
}

}  // namespace tsu::testutil
