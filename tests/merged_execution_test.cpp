// End-to-end tests of multi-policy merged execution: several policies, one
// controller request with interleaved rounds, per-policy guarantees intact.
#include <gtest/gtest.h>

#include "tsu/core/executor.hpp"
#include "tsu/core/planner.hpp"
#include "tsu/topo/instances.hpp"
#include "tsu/update/schedulers.hpp"
#include "tsu/util/rng.hpp"

namespace tsu::core {
namespace {

// Two waypointed policies sharing switches 3 and 5.
update::Instance policy_one() {
  return std::move(update::Instance::make({1, 2, 3, 4, 8, 5, 6, 12},
                                          {1, 7, 5, 3, 2, 9, 10, 11, 12},
                                          NodeId{3}))
      .value();
}

update::Instance policy_two() {
  return std::move(update::Instance::make({20, 3, 5, 21},
                                          {20, 22, 3, 5, 21}, NodeId{3}))
      .value();
}

ExecutorConfig jittery(std::uint64_t seed) {
  ExecutorConfig config;
  config.seed = seed;
  config.channel.latency =
      sim::LatencyModel::uniform(sim::microseconds(100), sim::milliseconds(6));
  config.switch_config.install_latency =
      sim::LatencyModel::lognormal(sim::milliseconds(1), 0.8);
  return config;
}

TEST(MergedExecutionTest, CompletesAndReportsPerPolicyTraffic) {
  const update::Instance a = policy_one();
  const update::Instance b = policy_two();
  const update::Schedule sa = plan(a, Algorithm::kWayUp).value().schedule;
  const update::Schedule sb = plan(b, Algorithm::kWayUp).value().schedule;
  const Result<MergedExecutionResult> result =
      execute_merged({&a, &b}, {&sa, &sb}, jittery(1));
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  ASSERT_EQ(result.value().traffic.size(), 2u);
  EXPECT_GT(result.value().traffic[0].total, 0u);
  EXPECT_GT(result.value().traffic[1].total, 0u);
  EXPECT_GT(result.value().update_ms(), 0.0);
}

TEST(MergedExecutionTest, PerPolicyWaypointGuaranteesSurviveMerging) {
  const update::Instance a = policy_one();
  const update::Instance b = policy_two();
  const update::Schedule sa = plan(a, Algorithm::kWayUp).value().schedule;
  const update::Schedule sb = plan(b, Algorithm::kWayUp).value().schedule;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const Result<MergedExecutionResult> result =
        execute_merged({&a, &b}, {&sa, &sb}, jittery(seed));
    ASSERT_TRUE(result.ok()) << result.error().to_string();
    EXPECT_EQ(result.value().traffic[0].bypassed, 0u) << "seed " << seed;
    EXPECT_EQ(result.value().traffic[1].bypassed, 0u) << "seed " << seed;
  }
}

TEST(MergedExecutionTest, MergedBeatsSerialMakespan) {
  const update::Instance a = policy_one();
  const update::Instance b = policy_two();
  const update::Schedule sa = plan(a, Algorithm::kWayUp).value().schedule;
  const update::Schedule sb = plan(b, Algorithm::kWayUp).value().schedule;
  ExecutorConfig config;
  config.with_traffic = false;
  config.seed = 3;

  const Result<std::vector<ExecutionResult>> serial =
      execute_queue({&a, &b}, {&sa, &sb}, config);
  ASSERT_TRUE(serial.ok());
  const sim::Duration serial_makespan =
      serial.value().back().update.finished -
      serial.value().front().update.started;

  const Result<MergedExecutionResult> merged =
      execute_merged({&a, &b}, {&sa, &sb}, config);
  ASSERT_TRUE(merged.ok());
  EXPECT_LT(merged.value().update.duration(), serial_makespan);
}

TEST(MergedExecutionTest, FlowsRemainIsolatedInTables) {
  // After the merged update, both flows' final rules coexist on the shared
  // switches; a packet of flow A is never steered by flow B's rule. The
  // per-policy delivered counts in the drain window prove both paths work.
  const update::Instance a = policy_one();
  const update::Instance b = policy_two();
  const update::Schedule sa = plan(a, Algorithm::kPeacock).value().schedule;
  const update::Schedule sb = plan(b, Algorithm::kPeacock).value().schedule;
  const Result<MergedExecutionResult> result =
      execute_merged({&a, &b}, {&sa, &sb}, jittery(5));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().traffic[0].looped, 0u);
  EXPECT_EQ(result.value().traffic[1].looped, 0u);
  EXPECT_GT(result.value().traffic[0].delivered, 0u);
  EXPECT_GT(result.value().traffic[1].delivered, 0u);
}

TEST(MergedExecutionTest, RejectsEmptyInput) {
  EXPECT_FALSE(execute_merged({}, {}, ExecutorConfig{}).ok());
}

TEST(MixedExecutionTest, MergedRequestComposesWithIndependentRequests) {
  // One merged request (two policies sharing switches 3 and 5) plus two
  // rule-disjoint independent policies, all through one controller under
  // conflict-aware admission: the independents must overlap the merged
  // request in time, and every policy stays violation-free. Waypoint-free
  // variants of the shared-switch policies, so Peacock's loop- and
  // blackhole-free guarantee makes every monitor count zero.
  const update::Instance a =
      std::move(update::Instance::make({1, 2, 3, 4, 8, 5, 6, 12},
                                       {1, 7, 5, 3, 2, 9, 10, 11, 12}))
          .value();
  const update::Instance b =
      std::move(update::Instance::make({20, 3, 5, 21}, {20, 22, 3, 5, 21}))
          .value();
  std::vector<update::Instance> pool = topo::pool_workload(2, 12);
  // Shift the pool policies out of a/b's node range (a/b use ids < 23).
  std::vector<update::Instance> independents;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const NodeId base = static_cast<NodeId>(30 + i * 6);
    const graph::Path old_path{base, base + 1, base + 2, base + 3};
    const graph::Path new_path{base, base + 4, base + 5, base + 3};
    independents.push_back(
        std::move(update::Instance::make(old_path, new_path)).value());
  }
  const update::Schedule sa = plan(a, Algorithm::kPeacock).value().schedule;
  const update::Schedule sb = plan(b, Algorithm::kPeacock).value().schedule;
  const update::Schedule s0 = update::plan_peacock(independents[0]).value();
  const update::Schedule s1 = update::plan_peacock(independents[1]).value();

  ExecutorConfig config = jittery(11);
  config.controller.max_in_flight = 3;
  config.controller.admission = controller::AdmissionPolicy::kConflictAware;

  const std::vector<const update::Instance*> instances{
      &a, &b, &independents[0], &independents[1]};
  const std::vector<const update::Schedule*> schedules{&sa, &sb, &s0, &s1};
  const Result<MixedExecutionResult> run = execute_mixed(
      instances, schedules, {{0, 1}, {2}, {3}}, config);
  ASSERT_TRUE(run.ok()) << run.error().to_string();
  const MixedExecutionResult& result = run.value();

  ASSERT_EQ(result.updates.size(), 3u);  // merged + two independents
  ASSERT_EQ(result.traffic.size(), 4u);  // per policy
  for (const dataplane::MonitorReport& report : result.traffic) {
    EXPECT_GT(report.total, 0u);
    EXPECT_EQ(report.bypassed, 0u);
    EXPECT_EQ(report.looped, 0u);
    EXPECT_EQ(report.blackholed, 0u);
  }

  // No rule overlap between the merged request and the independents, so
  // all three requests ran concurrently.
  EXPECT_EQ(result.conflict_edges, 0u);
  EXPECT_EQ(result.max_in_flight_observed, 3u);
  const controller::UpdateMetrics& merged_update = result.updates[0];
  for (std::size_t r = 1; r < result.updates.size(); ++r)
    EXPECT_LT(result.updates[r].started, merged_update.finished);
}

TEST(MixedExecutionTest, RejectsNonPartitionGroups) {
  const update::Instance a = policy_one();
  const update::Instance b = policy_two();
  const update::Schedule sa = plan(a, Algorithm::kWayUp).value().schedule;
  const update::Schedule sb = plan(b, Algorithm::kWayUp).value().schedule;
  const std::vector<const update::Instance*> instances{&a, &b};
  const std::vector<const update::Schedule*> schedules{&sa, &sb};
  EXPECT_FALSE(execute_mixed(instances, schedules, {{0}}, {}).ok());
  EXPECT_FALSE(execute_mixed(instances, schedules, {{0, 0}, {1}}, {}).ok());
  EXPECT_FALSE(execute_mixed(instances, schedules, {{0, 2}, {1}}, {}).ok());
  EXPECT_FALSE(execute_mixed(instances, schedules, {}, {}).ok());
  EXPECT_FALSE(execute_mixed(instances, schedules, {{0}, {}}, {}).ok());
}

TEST(MergedExecutionTest, ManyRandomPoliciesMerge) {
  Rng rng(8800);
  topo::RandomInstanceOptions options;
  options.with_waypoint = false;
  std::vector<update::Instance> instances;
  std::vector<update::Schedule> schedules;
  for (int i = 0; i < 5; ++i) {
    update::Instance inst = topo::random_instance(rng, options);
    // Shift each policy into its own id range to bound accidental overlap
    // (ids stay small enough for the dense switch array).
    Result<PlanOutcome> planned = plan(inst, Algorithm::kPeacock);
    ASSERT_TRUE(planned.ok());
    instances.push_back(std::move(inst));
    schedules.push_back(std::move(planned.value().schedule));
  }
  std::vector<const update::Instance*> instance_ptrs;
  std::vector<const update::Schedule*> schedule_ptrs;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    instance_ptrs.push_back(&instances[i]);
    schedule_ptrs.push_back(&schedules[i]);
  }
  ExecutorConfig config;
  config.with_traffic = false;
  const Result<MergedExecutionResult> result =
      execute_merged(instance_ptrs, schedule_ptrs, config);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_GT(result.value().update.rounds.size(), 0u);
}

}  // namespace
}  // namespace tsu::core
