// End-to-end tests of the concurrent multi-flow update engine: K in-flight
// updates on one simulated control plane, per-flow traffic observed by the
// consistency monitor, cross-flow frame batching, and determinism.
#include <gtest/gtest.h>

#include <vector>

#include "multiflow_workload.hpp"
#include "tsu/core/executor.hpp"

namespace tsu::core {
namespace {

using testutil::Workload;
using testutil::disjoint_workload;

TEST(MultiFlowExecutionTest, SustainsSixtyFourConcurrentUpdates) {
  const Workload w = disjoint_workload(64);
  ExecutorConfig config;
  config.controller.max_in_flight = 64;
  config.controller.batch_frames = true;
  const Result<MultiFlowExecutionResult> run =
      execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
  ASSERT_TRUE(run.ok()) << run.error().to_string();
  const MultiFlowExecutionResult& result = run.value();
  EXPECT_GE(result.max_in_flight_observed, 64u);
  ASSERT_EQ(result.flows.size(), 64u);
  for (const ExecutionResult& flow_result : result.flows) {
    EXPECT_GT(flow_result.update.flow_mods_sent, 0u);
    EXPECT_GT(flow_result.update.finished, flow_result.update.started);
    // Peacock schedules: the monitor saw no transient violation anywhere.
    EXPECT_EQ(flow_result.traffic.bypassed, 0u);
    EXPECT_EQ(flow_result.traffic.looped, 0u);
    EXPECT_EQ(flow_result.traffic.blackholed, 0u);
    EXPECT_GT(flow_result.traffic.total, 0u);
  }
  EXPECT_GT(result.aggregate.total, 0u);
  EXPECT_EQ(result.aggregate.bypassed + result.aggregate.looped +
                result.aggregate.blackholed,
            0u);
  // Batching actually coalesced: fewer frames than logical messages.
  EXPECT_LT(result.frames_sent, result.messages_sent);
}

TEST(MultiFlowExecutionTest, ConcurrencyBeatsSerialMakespan) {
  const Workload w = disjoint_workload(8);
  ExecutorConfig serial_config;
  ExecutorConfig concurrent_config;
  concurrent_config.controller.max_in_flight = 8;
  const Result<std::vector<ExecutionResult>> serial =
      execute_queue(w.instance_ptrs, w.schedule_ptrs, serial_config);
  const Result<MultiFlowExecutionResult> concurrent =
      execute_multiflow(w.instance_ptrs, w.schedule_ptrs, concurrent_config);
  ASSERT_TRUE(serial.ok()) << serial.error().to_string();
  ASSERT_TRUE(concurrent.ok()) << concurrent.error().to_string();
  const sim::Duration serial_makespan =
      serial.value().back().update.finished -
      serial.value().front().update.started;
  EXPECT_LT(concurrent.value().makespan, serial_makespan);
}

TEST(MultiFlowExecutionTest, BatchedMatchesSerialViolationsWithFewerFrames) {
  const Workload w = disjoint_workload(8);
  ExecutorConfig serial_config;  // K = 1, no batching
  ExecutorConfig batched_config;
  batched_config.controller.max_in_flight = 8;
  batched_config.controller.batch_frames = true;
  const Result<std::vector<ExecutionResult>> serial =
      execute_queue(w.instance_ptrs, w.schedule_ptrs, serial_config);
  const Result<MultiFlowExecutionResult> batched =
      execute_multiflow(w.instance_ptrs, w.schedule_ptrs, batched_config);
  ASSERT_TRUE(serial.ok()) << serial.error().to_string();
  ASSERT_TRUE(batched.ok()) << batched.error().to_string();
  ASSERT_EQ(batched.value().flows.size(), serial.value().size());
  for (std::size_t i = 0; i < serial.value().size(); ++i) {
    const dataplane::MonitorReport& s = serial.value()[i].traffic;
    const dataplane::MonitorReport& b = batched.value().flows[i].traffic;
    // Same per-flow violation counts (zero: the schedules are consistent).
    EXPECT_EQ(b.bypassed, s.bypassed) << "flow " << i;
    EXPECT_EQ(b.looped, s.looped) << "flow " << i;
    EXPECT_EQ(b.blackholed, s.blackholed) << "flow " << i;
    // Identical logical control-plane work per flow.
    EXPECT_EQ(batched.value().flows[i].update.flow_mods_sent,
              serial.value()[i].update.flow_mods_sent);
    EXPECT_EQ(batched.value().flows[i].update.barriers_sent,
              serial.value()[i].update.barriers_sent);
  }
  // Strictly fewer control frames in batched mode.
  EXPECT_LT(batched.value().frames_sent, serial.value().front().frames_sent);
}

TEST(MultiFlowExecutionTest, ResultsIndexedBySubmissionOrder) {
  const Workload w = disjoint_workload(4);
  ExecutorConfig config;
  config.controller.max_in_flight = 4;
  const Result<MultiFlowExecutionResult> run =
      execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
  ASSERT_TRUE(run.ok());
  for (std::size_t i = 0; i < run.value().flows.size(); ++i)
    EXPECT_EQ(run.value().flows[i].update.flow, config.flow + i);
}

TEST(MultiFlowExecutionTest, RejectsMismatchedInputs) {
  const Workload w = disjoint_workload(2);
  std::vector<const update::Schedule*> one{w.schedule_ptrs[0]};
  EXPECT_FALSE(execute_multiflow(w.instance_ptrs, one, {}).ok());
  EXPECT_FALSE(execute_multiflow({}, {}, {}).ok());
}

}  // namespace
}  // namespace tsu::core
