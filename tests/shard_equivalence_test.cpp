// Sharded-vs-single-controller equivalence, sequential-vs-parallel
// equivalence, and cross-shard liveness.
//
// Equivalence: whatever the shard count, partition scheme, admission
// policy, release granularity or batch mode, a run must install exactly
// the same final forwarding state as the single controller, complete every
// update, and report the same per-flow safety-oracle outcome (zero
// violations everywhere) - sharding may only change frame interleavings
// and coordination timing, never WHAT gets installed or the transient
// guarantees. 100 seeds x shards in {1, 2, 4, 8}.
//
// Parallel equivalence (the hard deliverable of the parallel stepper,
// sim/sharded.hpp): for every one of those runs, exec = parallel on a
// 4-thread pool must be BIT-IDENTICAL to exec = sequential - same final
// state digest, same frame count, same makespan, same per-flow packet
// oracle, same coordination counters. Parallelism may only change
// wall-clock time, never a single simulated event.
//
// Speculation + stealing: the same 100 x {1, 2, 4, 8} matrix with
// speculative round barriers and longest-first epoch launch on (plus a
// nonzero inter-round interval, the thing speculation elides), a twice-run
// determinism pin for the steal counter, and a chaos overlay proving a
// speculatively released round never admits a conflict even while
// rollback/resync recovery is rewriting the schedule.
//
// Liveness: 500 seeds of flows deliberately spanning shard boundaries
// (hash partition scatters each flow's switches) under tight per-shard
// capacity and every admission policy. Completion IS the assertion: the
// engine errors out if the simulation drains with updates still pending,
// so any cross-shard admission/capacity deadlock fails the sweep.
//
// TSU_EQUIV_SLIM (ThreadSanitizer CI): same matrices, fewer seeds - TSan's
// ~10x slowdown would blow the job budget at full seed counts, and the
// interleaving coverage comes from the thread schedules, not the seeds.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "tsu/core/executor.hpp"
#include "tsu/json/json.hpp"
#include "tsu/sim/faults.hpp"
#include "tsu/topo/instances.hpp"
#include "tsu/util/rng.hpp"
#include "tsu/verify/transient.hpp"

namespace tsu::core {
namespace {

#ifdef TSU_EQUIV_SLIM
constexpr std::uint64_t kEquivalenceSeeds = 12;
constexpr std::uint64_t kLivenessSeeds = 60;
#else
constexpr std::uint64_t kEquivalenceSeeds = 100;
constexpr std::uint64_t kLivenessSeeds = 500;
#endif

// The sequential run is the baseline; the parallel rerun of the same
// config must reproduce it event-for-event. Everything observable from
// one engine run is compared.
void expect_parallel_bit_identical(const MultiFlowExecutionResult& sequential,
                                   const MultiFlowExecutionResult& parallel,
                                   std::uint64_t seed, std::size_t shards) {
  EXPECT_EQ(parallel.final_state_digest, sequential.final_state_digest)
      << "seed " << seed << " shards " << shards;
  EXPECT_EQ(parallel.frames_sent, sequential.frames_sent)
      << "seed " << seed << " shards " << shards;
  EXPECT_EQ(parallel.control_bytes, sequential.control_bytes)
      << "seed " << seed << " shards " << shards;
  EXPECT_EQ(parallel.messages_sent, sequential.messages_sent)
      << "seed " << seed << " shards " << shards;
  EXPECT_EQ(parallel.makespan, sequential.makespan)
      << "seed " << seed << " shards " << shards;
  EXPECT_EQ(parallel.max_in_flight_observed,
            sequential.max_in_flight_observed)
      << "seed " << seed << " shards " << shards;
  EXPECT_EQ(parallel.conflict_edges, sequential.conflict_edges)
      << "seed " << seed << " shards " << shards;
  EXPECT_EQ(parallel.sharding.cross_shard_updates,
            sequential.sharding.cross_shard_updates)
      << "seed " << seed << " shards " << shards;
  EXPECT_EQ(parallel.sharding.rounds_synced,
            sequential.sharding.rounds_synced)
      << "seed " << seed << " shards " << shards;
  EXPECT_EQ(parallel.sharding.sync_overhead,
            sequential.sharding.sync_overhead)
      << "seed " << seed << " shards " << shards;
  // Speculative interval skips are part of the event schedule, so they too
  // must be exec-mode invariant (both zero when speculation is off).
  EXPECT_EQ(parallel.sharding.speculative_releases,
            sequential.sharding.speculative_releases)
      << "seed " << seed << " shards " << shards;
  // The event SCHEDULE is identical, not just the outcomes: every shard
  // processed exactly the events it processes under the merger.
  ASSERT_EQ(parallel.sharding.events_per_shard.size(),
            sequential.sharding.events_per_shard.size());
  for (std::size_t s = 0; s < parallel.sharding.events_per_shard.size(); ++s)
    EXPECT_EQ(parallel.sharding.events_per_shard[s],
              sequential.sharding.events_per_shard[s])
        << "seed " << seed << " shards " << shards << " shard " << s;
  ASSERT_EQ(parallel.flows.size(), sequential.flows.size());
  for (std::size_t i = 0; i < parallel.flows.size(); ++i) {
    const dataplane::MonitorReport& got = parallel.flows[i].traffic;
    const dataplane::MonitorReport& want = sequential.flows[i].traffic;
    EXPECT_EQ(got.total, want.total)
        << "seed " << seed << " shards " << shards << " flow " << i;
    EXPECT_EQ(got.delivered, want.delivered)
        << "seed " << seed << " shards " << shards << " flow " << i;
    EXPECT_EQ(got.bypassed, want.bypassed)
        << "seed " << seed << " shards " << shards << " flow " << i;
    EXPECT_EQ(got.looped, want.looped)
        << "seed " << seed << " shards " << shards << " flow " << i;
    EXPECT_EQ(got.blackholed, want.blackholed)
        << "seed " << seed << " shards " << shards << " flow " << i;
    EXPECT_EQ(got.ttl_expired, want.ttl_expired)
        << "seed " << seed << " shards " << shards << " flow " << i;
    EXPECT_EQ(parallel.flows[i].packets_injected,
              sequential.flows[i].packets_injected)
        << "seed " << seed << " shards " << shards << " flow " << i;
    EXPECT_EQ(parallel.flows[i].update.finished,
              sequential.flows[i].update.finished)
        << "seed " << seed << " shards " << shards << " flow " << i;
  }
}

ExecutorConfig fast_config(std::uint64_t seed) {
  ExecutorConfig config;
  config.seed = seed;
  config.channel.latency = sim::LatencyModel::constant(sim::microseconds(200));
  config.switch_config.install_latency =
      sim::LatencyModel::constant(sim::microseconds(100));
  config.traffic_interarrival =
      sim::LatencyModel::constant(sim::milliseconds(1));
  config.link_latency = sim::LatencyModel::constant(sim::microseconds(20));
  config.warmup = sim::milliseconds(1);
  config.drain = sim::milliseconds(4);
  return config;
}

TEST(ShardEquivalenceTest, ShardCountsMatchSingleControllerAcross100Seeds) {
  constexpr std::size_t kShardCounts[] = {2, 4, 8};
  std::size_t cross_updates_seen = 0;
  for (std::uint64_t seed = 1; seed <= kEquivalenceSeeds; ++seed) {
    Rng rng(seed);
    const std::size_t flows = 3 + rng.index(6);           // 3..8
    const std::size_t switches = 6 * (1 + rng.index(3));  // 6, 12 or 18
    const topo::PlannedPoolWorkload w =
        topo::planned_pool_workload(flows, switches).value();

    ExecutorConfig config = fast_config(seed);
    config.controller.admission =
        static_cast<controller::AdmissionPolicy>(rng.index(3));
    config.controller.admission_release =
        rng.index(2) == 0 ? controller::AdmissionRelease::kRequest
                          : controller::AdmissionRelease::kRound;
    config.controller.max_in_flight = 1 + rng.index(flows);
    config.controller.batch_mode =
        static_cast<controller::BatchMode>(rng.index(4));
    config.controller.batch_window = sim::microseconds(50 + rng.index(950));
    config.switch_config.batch_replies = rng.index(2) == 1;
    // Hash scatters a flow's block of switches across shards (the
    // cross-shard stress); block keeps it mostly shard-local.
    config.controller.partition = rng.index(2) == 0
                                      ? topo::PartitionScheme::kHash
                                      : topo::PartitionScheme::kBlock;

    // shards = 1: the single controller, the equivalence baseline. The
    // 1-shard group must also be exec-mode invariant.
    config.controller.shards = 1;
    config.controller.exec = sim::ExecMode::kSequential;
    const Result<MultiFlowExecutionResult> single =
        execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
    ASSERT_TRUE(single.ok()) << "seed " << seed << ": "
                             << single.error().to_string();
    const MultiFlowExecutionResult& baseline = single.value();
    EXPECT_GT(baseline.aggregate.total, 0u) << "seed " << seed;
    EXPECT_EQ(baseline.sharding.shards, 1u);
    EXPECT_EQ(baseline.sharding.cross_shard_updates, 0u);
    {
      config.controller.exec = sim::ExecMode::kParallel;
      config.controller.threads = 4;
      const Result<MultiFlowExecutionResult> single_parallel =
          execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
      ASSERT_TRUE(single_parallel.ok()) << "seed " << seed;
      expect_parallel_bit_identical(baseline, single_parallel.value(), seed,
                                    1);
      config.controller.exec = sim::ExecMode::kSequential;
      config.controller.threads = 0;
    }

    for (const std::size_t shards : kShardCounts) {
      config.controller.shards = shards;
      config.controller.exec = sim::ExecMode::kSequential;
      const Result<MultiFlowExecutionResult> run =
          execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
      ASSERT_TRUE(run.ok()) << "seed " << seed << " shards " << shards
                            << ": " << run.error().to_string();
      const MultiFlowExecutionResult& result = run.value();
      ASSERT_EQ(result.flows.size(), flows);
      cross_updates_seen += result.sharding.cross_shard_updates;

      // The same config on the parallel stepper: bit-identical, seed by
      // seed, shard count by shard count.
      config.controller.exec = sim::ExecMode::kParallel;
      config.controller.threads = 4;
      const Result<MultiFlowExecutionResult> parallel_run =
          execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
      ASSERT_TRUE(parallel_run.ok())
          << "seed " << seed << " shards " << shards << " (parallel): "
          << parallel_run.error().to_string();
      expect_parallel_bit_identical(result, parallel_run.value(), seed,
                                    shards);
      config.controller.exec = sim::ExecMode::kSequential;
      config.controller.threads = 0;

      // Identical final forwarding state, rule by rule.
      EXPECT_EQ(result.final_state_digest, baseline.final_state_digest)
          << "seed " << seed << " shards " << shards;
      // Safety oracle: zero transient violations under every shard count.
      EXPECT_EQ(result.aggregate.bypassed, 0u)
          << "seed " << seed << " shards " << shards;
      EXPECT_EQ(result.aggregate.looped, 0u)
          << "seed " << seed << " shards " << shards;
      EXPECT_EQ(result.aggregate.blackholed, 0u)
          << "seed " << seed << " shards " << shards;
      // Per-flow oracle results and message counts match the single
      // controller: sharding repartitions work, it never adds or drops
      // FlowMods.
      for (std::size_t i = 0; i < flows; ++i) {
        const dataplane::MonitorReport& got = result.flows[i].traffic;
        const dataplane::MonitorReport& want = baseline.flows[i].traffic;
        ASSERT_EQ(got.bypassed, want.bypassed)
            << "seed " << seed << " shards " << shards << " flow " << i;
        ASSERT_EQ(got.looped, want.looped)
            << "seed " << seed << " shards " << shards << " flow " << i;
        ASSERT_EQ(got.blackholed, want.blackholed)
            << "seed " << seed << " shards " << shards << " flow " << i;
        EXPECT_EQ(result.flows[i].update.flow_mods_sent,
                  baseline.flows[i].update.flow_mods_sent)
            << "seed " << seed << " shards " << shards << " flow " << i;
      }
    }
  }
  // The sweep must actually have exercised the cross-shard protocol.
  EXPECT_GT(cross_updates_seen, 0u);
}

TEST(ShardEquivalenceTest, ShardsOneIsDeterministicallyReproducible) {
  // The shards = 1 bit-compatibility pin: the sharded engine with one
  // shard reproduces its own digests, frame counts and makespan exactly,
  // run after run (the untouched PR 1-3 suites pin that this path equals
  // the pre-sharding engine's behaviour).
  const topo::PlannedPoolWorkload w =
      topo::planned_pool_workload(8, 12).value();
  ExecutorConfig config = fast_config(42);
  config.controller.max_in_flight = 8;
  config.controller.admission = controller::AdmissionPolicy::kConflictAware;
  config.controller.batch_mode = controller::BatchMode::kAdaptive;
  config.controller.shards = 1;
  const Result<MultiFlowExecutionResult> a =
      execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
  const Result<MultiFlowExecutionResult> b =
      execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().final_state_digest, b.value().final_state_digest);
  EXPECT_EQ(a.value().frames_sent, b.value().frames_sent);
  EXPECT_EQ(a.value().makespan, b.value().makespan);
}

TEST(ShardEquivalenceTest, ShardedRunsAreDeterministicPerSeed) {
  // Determinism of the MERGED clock: same seed + same shard count =>
  // identical digests, frames and makespan, so sharded regressions are
  // reproducible.
  const topo::PlannedPoolWorkload w =
      topo::planned_pool_workload(8, 12).value();
  for (const std::size_t shards : {2u, 4u}) {
    ExecutorConfig config = fast_config(42);
    config.controller.max_in_flight = 8;
    config.controller.shards = shards;
    config.controller.partition = topo::PartitionScheme::kHash;
    const Result<MultiFlowExecutionResult> a =
        execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
    const Result<MultiFlowExecutionResult> b =
        execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value().final_state_digest, b.value().final_state_digest);
    EXPECT_EQ(a.value().frames_sent, b.value().frames_sent);
    EXPECT_EQ(a.value().makespan, b.value().makespan);
    EXPECT_EQ(a.value().sharding.rounds_synced,
              b.value().sharding.rounds_synced);
  }
}

TEST(ShardEquivalenceTest, ParallelRunsAreDeterministicPerSeed) {
  // The parallel determinism pin: one seed, run twice on a 4-thread pool,
  // must process exactly the same number of events on every shard and land
  // on identical digests, frames and makespan - whatever the OS made of
  // the thread schedules. Both partitions that matter: hash (cross-shard
  // heavy, most horizon stalls) and greedy_cut (shard-local, most epochs).
  const topo::PlannedPoolWorkload w =
      topo::planned_pool_workload(8, 12).value();
  for (const topo::PartitionScheme scheme :
       {topo::PartitionScheme::kHash, topo::PartitionScheme::kGreedyCut}) {
    ExecutorConfig config = fast_config(42);
    config.controller.max_in_flight = 8;
    config.controller.admission = controller::AdmissionPolicy::kConflictAware;
    config.controller.batch_mode = controller::BatchMode::kAdaptive;
    config.controller.shards = 4;
    config.controller.partition = scheme;
    config.controller.exec = sim::ExecMode::kParallel;
    config.controller.threads = 4;
    const Result<MultiFlowExecutionResult> a =
        execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
    const Result<MultiFlowExecutionResult> b =
        execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
    ASSERT_TRUE(a.ok()) << topo::to_string(scheme);
    ASSERT_TRUE(b.ok()) << topo::to_string(scheme);
    ASSERT_EQ(a.value().sharding.events_per_shard.size(), 4u);
    for (std::size_t s = 0; s < 4; ++s)
      EXPECT_EQ(a.value().sharding.events_per_shard[s],
                b.value().sharding.events_per_shard[s])
          << topo::to_string(scheme) << " shard " << s;
    EXPECT_EQ(a.value().final_state_digest, b.value().final_state_digest)
        << topo::to_string(scheme);
    EXPECT_EQ(a.value().frames_sent, b.value().frames_sent)
        << topo::to_string(scheme);
    EXPECT_EQ(a.value().makespan, b.value().makespan)
        << topo::to_string(scheme);
    EXPECT_EQ(a.value().sharding.parallel_epochs,
              b.value().sharding.parallel_epochs)
        << topo::to_string(scheme);
    EXPECT_EQ(a.value().sharding.horizon_stalls,
              b.value().sharding.horizon_stalls)
        << topo::to_string(scheme);
    // The workload actually exercised the engine: some events ran.
    std::size_t total_events = 0;
    for (const std::size_t n : a.value().sharding.events_per_shard)
      total_events += n;
    EXPECT_GT(total_events, 0u) << topo::to_string(scheme);
  }
}

TEST(ShardEquivalenceTest, GreedyCutPartitionCutsTheWorkloadCut) {
  // The pool workload's flows live in disjoint 6-switch blocks, so a
  // workload-aware partition can place every block wholly on one shard:
  // greedy_cut must reach (near-)zero cut weight and zero cross-shard
  // updates where hash pays a heavy cut, and its results must still match
  // the hash run's digest (partitioning never changes WHAT is installed).
  const topo::PlannedPoolWorkload w =
      topo::planned_pool_workload(12, 24).value();
  ExecutorConfig config = fast_config(7);
  config.controller.max_in_flight = 12;
  config.controller.shards = 4;

  config.controller.partition = topo::PartitionScheme::kHash;
  const Result<MultiFlowExecutionResult> hash =
      execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
  ASSERT_TRUE(hash.ok());

  config.controller.partition = topo::PartitionScheme::kGreedyCut;
  const Result<MultiFlowExecutionResult> greedy =
      execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
  ASSERT_TRUE(greedy.ok());

  EXPECT_GT(hash.value().sharding.partition_cut_weight, 0u);
  EXPECT_LT(greedy.value().sharding.partition_cut_weight,
            hash.value().sharding.partition_cut_weight / 2);
  EXPECT_EQ(greedy.value().sharding.cross_shard_updates, 0u);
  EXPECT_EQ(greedy.value().final_state_digest,
            hash.value().final_state_digest);
  // All four shards own switches (the balance cap held).
  ASSERT_EQ(greedy.value().sharding.events_per_shard.size(), 4u);
  for (std::size_t s = 0; s < 4; ++s)
    EXPECT_GT(greedy.value().sharding.events_per_shard[s], 0u)
        << "shard " << s;
}

TEST(ShardEquivalenceTest, SpeculativeStealingMatrixBitIdentical) {
  // The speculation + work-stealing matrix: 100 seeds x shards
  // {1, 2, 4, 8} with conflict-aware admission, speculative round
  // barriers, longest-first epoch launch AND a nonzero inter-round
  // interval (the thing speculation elides on empty rounds). Three
  // assertions per cell:
  //   1. exec = parallel is BIT-IDENTICAL to exec = sequential under
  //      speculation + stealing - the optimizations move work between
  //      waves, never a single simulated event;
  //   2. the final forwarding state matches a NON-speculative baseline
  //      digest - skipping a pacing interval may compress the schedule
  //      but can never change what gets installed;
  //   3. the safety oracle stays silent - a speculatively released round
  //      that admitted a conflict would surface as a transient violation.
  // The sweep must actually take speculative skips and LPT steals, or the
  // matrix proved nothing - asserted at the end.
  constexpr std::size_t kShardCounts[] = {2, 4, 8};
  std::size_t cross_seen = 0, skips_seen = 0, steals_seen = 0;
  for (std::uint64_t seed = 1; seed <= kEquivalenceSeeds; ++seed) {
    Rng rng(seed);
    const std::size_t flows = 3 + rng.index(6);           // 3..8
    const std::size_t switches = 6 * (1 + rng.index(3));  // 6, 12 or 18
    const topo::PlannedPoolWorkload w =
        topo::planned_pool_workload(flows, switches).value();

    ExecutorConfig config = fast_config(seed);
    config.interval = sim::microseconds(200 + 100 * rng.index(8));
    config.controller.admission = controller::AdmissionPolicy::kConflictAware;
    config.controller.max_in_flight = 1 + rng.index(flows);
    config.controller.batch_mode =
        static_cast<controller::BatchMode>(rng.index(4));
    // Hash scatters flows across shards - the speculation stress, since
    // only cross-shard sub-requests ever see empty rounds.
    config.controller.partition = rng.index(4) == 0
                                      ? topo::PartitionScheme::kBlock
                                      : topo::PartitionScheme::kHash;

    // Non-speculative single-shard run: the WHAT-gets-installed baseline.
    config.controller.shards = 1;
    const Result<MultiFlowExecutionResult> plain =
        execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
    ASSERT_TRUE(plain.ok()) << "seed " << seed << ": "
                            << plain.error().to_string();
    const MultiFlowExecutionResult& baseline = plain.value();

    config.controller.speculate = true;
    config.controller.steal = true;
    for (const std::size_t shards : kShardCounts) {
      config.controller.shards = shards;
      config.controller.exec = sim::ExecMode::kSequential;
      const Result<MultiFlowExecutionResult> seq =
          execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
      ASSERT_TRUE(seq.ok()) << "seed " << seed << " shards " << shards
                            << ": " << seq.error().to_string();
      cross_seen += seq.value().sharding.cross_shard_updates;
      skips_seen += seq.value().sharding.speculative_releases;

      config.controller.exec = sim::ExecMode::kParallel;
      config.controller.threads = 4;
      const Result<MultiFlowExecutionResult> par =
          execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
      ASSERT_TRUE(par.ok()) << "seed " << seed << " shards " << shards
                            << " (parallel): " << par.error().to_string();
      expect_parallel_bit_identical(seq.value(), par.value(), seed, shards);
      steals_seen += par.value().sharding.steals;
      config.controller.exec = sim::ExecMode::kSequential;
      config.controller.threads = 0;

      EXPECT_EQ(seq.value().final_state_digest, baseline.final_state_digest)
          << "seed " << seed << " shards " << shards;
      EXPECT_EQ(seq.value().aggregate.bypassed, 0u)
          << "seed " << seed << " shards " << shards;
      EXPECT_EQ(seq.value().aggregate.looped, 0u)
          << "seed " << seed << " shards " << shards;
      EXPECT_EQ(seq.value().aggregate.blackholed, 0u)
          << "seed " << seed << " shards " << shards;
      for (std::size_t i = 0; i < flows; ++i)
        EXPECT_EQ(seq.value().flows[i].update.flow_mods_sent,
                  baseline.flows[i].update.flow_mods_sent)
            << "seed " << seed << " shards " << shards << " flow " << i;
    }
    config.controller.speculate = false;
    config.controller.steal = false;
  }
  EXPECT_GT(cross_seen, 0u);
  EXPECT_GT(skips_seen, 0u);   // speculation actually skipped intervals
  EXPECT_GT(steals_seen, 0u);  // LPT ordering actually promoted epochs
}

TEST(ShardEquivalenceTest, SpeculativeParallelRunsAreDeterministicPerSeed) {
  // Twice-run determinism WITH speculation + stealing: same seed, same
  // 4-thread pool, two runs - identical per-shard event counts, digests,
  // epoch/stall counters, speculative skips AND steal counts, whatever
  // the OS made of the thread schedules. The steal counter is the
  // sensitive one: it must be a pure function of each wave's start state,
  // not of which lane got there first.
  const topo::PlannedPoolWorkload w =
      topo::planned_pool_workload(8, 12).value();
  for (const topo::PartitionScheme scheme :
       {topo::PartitionScheme::kHash, topo::PartitionScheme::kGreedyCut}) {
    ExecutorConfig config = fast_config(42);
    config.interval = sim::microseconds(300);
    config.controller.max_in_flight = 8;
    config.controller.admission = controller::AdmissionPolicy::kConflictAware;
    config.controller.batch_mode = controller::BatchMode::kAdaptive;
    config.controller.shards = 4;
    config.controller.partition = scheme;
    config.controller.exec = sim::ExecMode::kParallel;
    config.controller.threads = 4;
    config.controller.speculate = true;
    config.controller.steal = true;
    const Result<MultiFlowExecutionResult> a =
        execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
    const Result<MultiFlowExecutionResult> b =
        execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
    ASSERT_TRUE(a.ok()) << topo::to_string(scheme);
    ASSERT_TRUE(b.ok()) << topo::to_string(scheme);
    ASSERT_EQ(a.value().sharding.events_per_shard.size(), 4u);
    for (std::size_t s = 0; s < 4; ++s)
      EXPECT_EQ(a.value().sharding.events_per_shard[s],
                b.value().sharding.events_per_shard[s])
          << topo::to_string(scheme) << " shard " << s;
    EXPECT_EQ(a.value().final_state_digest, b.value().final_state_digest)
        << topo::to_string(scheme);
    EXPECT_EQ(a.value().frames_sent, b.value().frames_sent)
        << topo::to_string(scheme);
    EXPECT_EQ(a.value().makespan, b.value().makespan)
        << topo::to_string(scheme);
    EXPECT_EQ(a.value().sharding.parallel_epochs,
              b.value().sharding.parallel_epochs)
        << topo::to_string(scheme);
    EXPECT_EQ(a.value().sharding.horizon_stalls,
              b.value().sharding.horizon_stalls)
        << topo::to_string(scheme);
    EXPECT_EQ(a.value().sharding.speculative_releases,
              b.value().sharding.speculative_releases)
        << topo::to_string(scheme);
    EXPECT_EQ(a.value().sharding.steals, b.value().sharding.steals)
        << topo::to_string(scheme);
  }
}

TEST(ShardEquivalenceTest, SpeculationUnderChaosStaysSafeAndBitIdentical) {
  // The chaos overlay on the speculative engine: seeded random fault
  // schedules (crashes with and without state loss, control-link flaps,
  // frame blackholes) against conflict-aware admission with speculation +
  // stealing on, alternating wait-retry and rollback recovery. Rollback
  // is the sharp edge: a rolled-back update's deferred barrier events
  // must die at their guards, never releasing a round for an aborted or
  // conflicting schedule. check_fault_trace holds the oracle to zero
  // consistency violations (outage loss is accounted separately), and the
  // parallel rerun must stay bit-identical to sequential even with faults
  // and recovery in the schedule. Failures print the schedule JSON for
  // sim_cli --faults replay.
#ifdef TSU_EQUIV_SLIM
  constexpr std::uint64_t kChaosSeeds = 10;
#else
  constexpr std::uint64_t kChaosSeeds = 40;
#endif
  constexpr std::size_t kFlows = 6;
  constexpr std::size_t kSwitches = 12;
  const topo::PlannedPoolWorkload w =
      topo::planned_pool_workload(kFlows, kSwitches).value();

  sim::ChaosOptions options;
  options.node_count = kSwitches;
  options.start_ms = 0.8;  // updates start at warmup = 1 ms
  options.horizon_ms = 6;
  options.crashes = 2;
  options.link_downs = 1;
  options.blackholes = 1;
  options.min_down_ms = 0.5;
  options.max_down_ms = 2;

  std::size_t recoveries = 0, skips_seen = 0;
  for (std::uint64_t seed = 1; seed <= kChaosSeeds; ++seed) {
    ExecutorConfig config = fast_config(seed);
    config.interval = sim::microseconds(400);
    config.drain = sim::milliseconds(8);
    config.controller.admission = controller::AdmissionPolicy::kConflictAware;
    config.controller.max_in_flight = kFlows;
    config.controller.shards = 4;
    config.controller.partition = topo::PartitionScheme::kHash;
    config.controller.speculate = true;
    config.controller.steal = true;
    config.controller.liveness_timeout = sim::milliseconds(2);
    config.controller.failure_response =
        seed % 2 == 0 ? controller::FailureResponse::kRollback
                      : controller::FailureResponse::kWait;
    config.faults = sim::FaultSchedule::random(seed, options);
    const std::string replay = json::write(config.faults.to_json());

    const Result<MultiFlowExecutionResult> seq =
        execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
    ASSERT_TRUE(seq.ok()) << "seed " << seed << ": "
                          << seq.error().to_string() << "\nreplay: " << replay;
    const verify::TransientCheckReport report = verify::check_fault_trace(
        config.faults, seq.value().faults, seq.value().aggregate, kFlows,
        seq.value().flows.size());
    ASSERT_TRUE(report.ok) << "seed " << seed << ": " << report.to_string()
                           << "\nreplay: " << replay;
    recoveries += seq.value().faults.resyncs + seq.value().faults.rollbacks +
                  seq.value().faults.retries;
    skips_seen += seq.value().sharding.speculative_releases;

    config.controller.exec = sim::ExecMode::kParallel;
    config.controller.threads = 4;
    const Result<MultiFlowExecutionResult> par =
        execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
    ASSERT_TRUE(par.ok()) << "seed " << seed << " (parallel): "
                          << par.error().to_string() << "\nreplay: " << replay;
    expect_parallel_bit_identical(seq.value(), par.value(), seed, 4);
  }
  // The overlay exercised both the recovery machinery and speculation;
  // a sweep where either never fired would be vacuous.
  EXPECT_GT(recoveries, 0u);
  EXPECT_GT(skips_seen, 0u);
}

TEST(ShardEquivalenceTest, CrossShardFlowLivenessSweep500Seeds) {
  // Flows spanning shard boundaries under tight per-shard capacity: 500
  // seeds, every admission policy and release granularity, shards 2..5.
  // run_engine fails ("simulation drained before all updates completed")
  // on any deadlock, so completion is the liveness proof.
  std::size_t cross_updates_seen = 0;
  for (std::uint64_t seed = 1; seed <= kLivenessSeeds; ++seed) {
    Rng rng(seed);
    const std::size_t flows = 4 + rng.index(7);           // 4..10
    const std::size_t switches = 12 + 6 * rng.index(3);   // 12, 18 or 24
    const topo::PlannedPoolWorkload w =
        topo::planned_pool_workload(flows, switches).value();

    ExecutorConfig config = fast_config(seed);
    config.with_traffic = false;
    config.drain = sim::milliseconds(1);
    config.controller.shards = 2 + rng.index(4);          // 2..5
    config.controller.partition = topo::PartitionScheme::kHash;
    config.controller.admission =
        static_cast<controller::AdmissionPolicy>(rng.index(3));
    config.controller.admission_release =
        rng.index(2) == 0 ? controller::AdmissionRelease::kRequest
                          : controller::AdmissionRelease::kRound;
    // Tight capacity is the deadlock bait: cross-shard updates must
    // acquire a slot on EVERY participating shard.
    config.controller.max_in_flight = 1 + rng.index(3);
    config.controller.batch_mode =
        static_cast<controller::BatchMode>(rng.index(4));
    config.switch_config.batch_replies = rng.index(2) == 1;
    // Half the sweep runs the parallel stepper: cross-shard liveness must
    // not depend on the execution mode either.
    if (rng.index(2) == 1) {
      config.controller.exec = sim::ExecMode::kParallel;
      config.controller.threads = 2 + rng.index(3);  // 2..4
    }

    const Result<MultiFlowExecutionResult> run =
        execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
    ASSERT_TRUE(run.ok()) << "seed " << seed << " shards "
                          << config.controller.shards << ": "
                          << run.error().to_string();
    ASSERT_EQ(run.value().flows.size(), flows) << "seed " << seed;
    cross_updates_seen += run.value().sharding.cross_shard_updates;
  }
  EXPECT_GT(cross_updates_seen, 0u);
}

}  // namespace
}  // namespace tsu::core
