// Sharded-vs-single-controller equivalence and cross-shard liveness.
//
// Equivalence: whatever the shard count, partition scheme, admission
// policy, release granularity or batch mode, a run must install exactly
// the same final forwarding state as the single controller, complete every
// update, and report the same per-flow safety-oracle outcome (zero
// violations everywhere) - sharding may only change frame interleavings
// and coordination timing, never WHAT gets installed or the transient
// guarantees. 100 seeds x shards in {1, 2, 4, 8}.
//
// Liveness: 500 seeds of flows deliberately spanning shard boundaries
// (hash partition scatters each flow's switches) under tight per-shard
// capacity and every admission policy. Completion IS the assertion: the
// engine errors out if the simulation drains with updates still pending,
// so any cross-shard admission/capacity deadlock fails the sweep.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "tsu/core/executor.hpp"
#include "tsu/topo/instances.hpp"
#include "tsu/util/rng.hpp"

namespace tsu::core {
namespace {

ExecutorConfig fast_config(std::uint64_t seed) {
  ExecutorConfig config;
  config.seed = seed;
  config.channel.latency = sim::LatencyModel::constant(sim::microseconds(200));
  config.switch_config.install_latency =
      sim::LatencyModel::constant(sim::microseconds(100));
  config.traffic_interarrival =
      sim::LatencyModel::constant(sim::milliseconds(1));
  config.link_latency = sim::LatencyModel::constant(sim::microseconds(20));
  config.warmup = sim::milliseconds(1);
  config.drain = sim::milliseconds(4);
  return config;
}

TEST(ShardEquivalenceTest, ShardCountsMatchSingleControllerAcross100Seeds) {
  constexpr std::size_t kShardCounts[] = {2, 4, 8};
  std::size_t cross_updates_seen = 0;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    Rng rng(seed);
    const std::size_t flows = 3 + rng.index(6);           // 3..8
    const std::size_t switches = 6 * (1 + rng.index(3));  // 6, 12 or 18
    const topo::PlannedPoolWorkload w =
        topo::planned_pool_workload(flows, switches).value();

    ExecutorConfig config = fast_config(seed);
    config.controller.admission =
        static_cast<controller::AdmissionPolicy>(rng.index(3));
    config.controller.admission_release =
        rng.index(2) == 0 ? controller::AdmissionRelease::kRequest
                          : controller::AdmissionRelease::kRound;
    config.controller.max_in_flight = 1 + rng.index(flows);
    config.controller.batch_mode =
        static_cast<controller::BatchMode>(rng.index(4));
    config.controller.batch_window = sim::microseconds(50 + rng.index(950));
    config.switch_config.batch_replies = rng.index(2) == 1;
    // Hash scatters a flow's block of switches across shards (the
    // cross-shard stress); block keeps it mostly shard-local.
    config.controller.partition = rng.index(2) == 0
                                      ? topo::PartitionScheme::kHash
                                      : topo::PartitionScheme::kBlock;

    // shards = 1: the single controller, the equivalence baseline.
    config.controller.shards = 1;
    const Result<MultiFlowExecutionResult> single =
        execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
    ASSERT_TRUE(single.ok()) << "seed " << seed << ": "
                             << single.error().to_string();
    const MultiFlowExecutionResult& baseline = single.value();
    EXPECT_GT(baseline.aggregate.total, 0u) << "seed " << seed;
    EXPECT_EQ(baseline.sharding.shards, 1u);
    EXPECT_EQ(baseline.sharding.cross_shard_updates, 0u);

    for (const std::size_t shards : kShardCounts) {
      config.controller.shards = shards;
      const Result<MultiFlowExecutionResult> run =
          execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
      ASSERT_TRUE(run.ok()) << "seed " << seed << " shards " << shards
                            << ": " << run.error().to_string();
      const MultiFlowExecutionResult& result = run.value();
      ASSERT_EQ(result.flows.size(), flows);
      cross_updates_seen += result.sharding.cross_shard_updates;

      // Identical final forwarding state, rule by rule.
      EXPECT_EQ(result.final_state_digest, baseline.final_state_digest)
          << "seed " << seed << " shards " << shards;
      // Safety oracle: zero transient violations under every shard count.
      EXPECT_EQ(result.aggregate.bypassed, 0u)
          << "seed " << seed << " shards " << shards;
      EXPECT_EQ(result.aggregate.looped, 0u)
          << "seed " << seed << " shards " << shards;
      EXPECT_EQ(result.aggregate.blackholed, 0u)
          << "seed " << seed << " shards " << shards;
      // Per-flow oracle results and message counts match the single
      // controller: sharding repartitions work, it never adds or drops
      // FlowMods.
      for (std::size_t i = 0; i < flows; ++i) {
        const dataplane::MonitorReport& got = result.flows[i].traffic;
        const dataplane::MonitorReport& want = baseline.flows[i].traffic;
        ASSERT_EQ(got.bypassed, want.bypassed)
            << "seed " << seed << " shards " << shards << " flow " << i;
        ASSERT_EQ(got.looped, want.looped)
            << "seed " << seed << " shards " << shards << " flow " << i;
        ASSERT_EQ(got.blackholed, want.blackholed)
            << "seed " << seed << " shards " << shards << " flow " << i;
        EXPECT_EQ(result.flows[i].update.flow_mods_sent,
                  baseline.flows[i].update.flow_mods_sent)
            << "seed " << seed << " shards " << shards << " flow " << i;
      }
    }
  }
  // The sweep must actually have exercised the cross-shard protocol.
  EXPECT_GT(cross_updates_seen, 0u);
}

TEST(ShardEquivalenceTest, ShardsOneIsDeterministicallyReproducible) {
  // The shards = 1 bit-compatibility pin: the sharded engine with one
  // shard reproduces its own digests, frame counts and makespan exactly,
  // run after run (the untouched PR 1-3 suites pin that this path equals
  // the pre-sharding engine's behaviour).
  const topo::PlannedPoolWorkload w =
      topo::planned_pool_workload(8, 12).value();
  ExecutorConfig config = fast_config(42);
  config.controller.max_in_flight = 8;
  config.controller.admission = controller::AdmissionPolicy::kConflictAware;
  config.controller.batch_mode = controller::BatchMode::kAdaptive;
  config.controller.shards = 1;
  const Result<MultiFlowExecutionResult> a =
      execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
  const Result<MultiFlowExecutionResult> b =
      execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().final_state_digest, b.value().final_state_digest);
  EXPECT_EQ(a.value().frames_sent, b.value().frames_sent);
  EXPECT_EQ(a.value().makespan, b.value().makespan);
}

TEST(ShardEquivalenceTest, ShardedRunsAreDeterministicPerSeed) {
  // Determinism of the MERGED clock: same seed + same shard count =>
  // identical digests, frames and makespan, so sharded regressions are
  // reproducible.
  const topo::PlannedPoolWorkload w =
      topo::planned_pool_workload(8, 12).value();
  for (const std::size_t shards : {2u, 4u}) {
    ExecutorConfig config = fast_config(42);
    config.controller.max_in_flight = 8;
    config.controller.shards = shards;
    config.controller.partition = topo::PartitionScheme::kHash;
    const Result<MultiFlowExecutionResult> a =
        execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
    const Result<MultiFlowExecutionResult> b =
        execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value().final_state_digest, b.value().final_state_digest);
    EXPECT_EQ(a.value().frames_sent, b.value().frames_sent);
    EXPECT_EQ(a.value().makespan, b.value().makespan);
    EXPECT_EQ(a.value().sharding.rounds_synced,
              b.value().sharding.rounds_synced);
  }
}

TEST(ShardEquivalenceTest, CrossShardFlowLivenessSweep500Seeds) {
  // Flows spanning shard boundaries under tight per-shard capacity: 500
  // seeds, every admission policy and release granularity, shards 2..5.
  // run_engine fails ("simulation drained before all updates completed")
  // on any deadlock, so completion is the liveness proof.
  std::size_t cross_updates_seen = 0;
  for (std::uint64_t seed = 1; seed <= 500; ++seed) {
    Rng rng(seed);
    const std::size_t flows = 4 + rng.index(7);           // 4..10
    const std::size_t switches = 12 + 6 * rng.index(3);   // 12, 18 or 24
    const topo::PlannedPoolWorkload w =
        topo::planned_pool_workload(flows, switches).value();

    ExecutorConfig config = fast_config(seed);
    config.with_traffic = false;
    config.drain = sim::milliseconds(1);
    config.controller.shards = 2 + rng.index(4);          // 2..5
    config.controller.partition = topo::PartitionScheme::kHash;
    config.controller.admission =
        static_cast<controller::AdmissionPolicy>(rng.index(3));
    config.controller.admission_release =
        rng.index(2) == 0 ? controller::AdmissionRelease::kRequest
                          : controller::AdmissionRelease::kRound;
    // Tight capacity is the deadlock bait: cross-shard updates must
    // acquire a slot on EVERY participating shard.
    config.controller.max_in_flight = 1 + rng.index(3);
    config.controller.batch_mode =
        static_cast<controller::BatchMode>(rng.index(4));
    config.switch_config.batch_replies = rng.index(2) == 1;

    const Result<MultiFlowExecutionResult> run =
        execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
    ASSERT_TRUE(run.ok()) << "seed " << seed << " shards "
                          << config.controller.shards << ": "
                          << run.error().to_string();
    ASSERT_EQ(run.value().flows.size(), flows) << "seed " << seed;
    cross_updates_seen += run.value().sharding.cross_shard_updates;
  }
  EXPECT_GT(cross_updates_seen, 0u);
}

}  // namespace
}  // namespace tsu::core
