// Scale/stress harness for the concurrent update engine: 1000+ flows over
// 200+ switches under all three admission policies, with the consistency
// monitor as safety oracle. Asserts zero transient violations everywhere,
// honest parallelism (conflict-aware beats serialize on makespan and
// matches blind on this rule-disjoint workload), and a wall-clock budget.
//
// Registered at full scale as a Release CTest with an explicit TIMEOUT
// (see CMakeLists.txt); Debug and sanitizer builds compile a slim variant
// (TSU_STRESS_SLIM: 100 flows x 32 switches, wall-clock budget waived) so
// ASan/UBSan exercise the stress path too instead of skipping it.
#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "tsu/core/executor.hpp"
#include "tsu/sim/faults.hpp"
#include "tsu/topo/instances.hpp"
#include "tsu/update/schedulers.hpp"
#include "tsu/verify/transient.hpp"

namespace tsu::core {
namespace {

#ifdef TSU_STRESS_SLIM
constexpr std::size_t kFlows = 100;
constexpr std::size_t kSwitches = 32;   // 5 blocks of 6: 20 flows/block
constexpr std::size_t kChaosSeeds = 50;
constexpr std::size_t kChaosFlows = 20;
constexpr std::size_t kChaosSwitches = 18;
#else
constexpr std::size_t kFlows = 1000;
constexpr std::size_t kSwitches = 210;  // 35 blocks of 6: ~29 flows/block
constexpr double kWallClockBudgetSeconds = 60.0;
constexpr std::size_t kChaosSeeds = 500;
constexpr std::size_t kChaosFlows = 40;
constexpr std::size_t kChaosSwitches = 36;
#endif

// Fast control plane so even the fully serialized run stays within the
// budget; sparse per-flow traffic still yields thousands of oracle-checked
// packets in aggregate.
ExecutorConfig stress_config(controller::AdmissionPolicy admission) {
  ExecutorConfig config;
  config.seed = 20260729;
  config.channel.latency = sim::LatencyModel::constant(sim::microseconds(100));
  config.switch_config.install_latency =
      sim::LatencyModel::constant(sim::microseconds(50));
  config.traffic_interarrival =
      sim::LatencyModel::constant(sim::milliseconds(10));
  config.link_latency = sim::LatencyModel::constant(sim::microseconds(20));
  config.warmup = sim::milliseconds(2);
  config.drain = sim::milliseconds(10);
  config.controller.max_in_flight = kFlows;
  // The adaptive outbox at full pressure: heavy cross-flow frame packing
  // with a bounded hold, exercised at scale under every admission policy.
  config.controller.batch_mode = controller::BatchMode::kAdaptive;
  config.controller.batch_window = sim::microseconds(200);
  config.controller.admission = admission;
  return config;
}

void expect_zero_violations(const MultiFlowExecutionResult& result,
                            const char* policy) {
  EXPECT_GT(result.aggregate.total, 0u) << policy;
  EXPECT_EQ(result.aggregate.bypassed, 0u) << policy;
  EXPECT_EQ(result.aggregate.looped, 0u) << policy;
  EXPECT_EQ(result.aggregate.blackholed, 0u) << policy;
}

TEST(ScaleStressTest, ThousandFlowsUnderEveryAdmissionPolicy) {
  const auto wall_start = std::chrono::steady_clock::now();
  const topo::PlannedPoolWorkload w =
      topo::planned_pool_workload(kFlows, kSwitches).value();

  const Result<MultiFlowExecutionResult> blind = execute_multiflow(
      w.instance_ptrs, w.schedule_ptrs,
      stress_config(controller::AdmissionPolicy::kBlind));
  const Result<MultiFlowExecutionResult> conflict_aware = execute_multiflow(
      w.instance_ptrs, w.schedule_ptrs,
      stress_config(controller::AdmissionPolicy::kConflictAware));
  const Result<MultiFlowExecutionResult> serialize = execute_multiflow(
      w.instance_ptrs, w.schedule_ptrs,
      stress_config(controller::AdmissionPolicy::kSerialize));

  ASSERT_TRUE(blind.ok()) << blind.error().to_string();
  ASSERT_TRUE(conflict_aware.ok()) << conflict_aware.error().to_string();
  ASSERT_TRUE(serialize.ok()) << serialize.error().to_string();

  // Safety oracle: zero transient violations under every policy.
  expect_zero_violations(blind.value(), "blind");
  expect_zero_violations(conflict_aware.value(), "conflict_aware");
  expect_zero_violations(serialize.value(), "serialize");
  ASSERT_EQ(blind.value().flows.size(), kFlows);
  ASSERT_EQ(conflict_aware.value().flows.size(), kFlows);
  ASSERT_EQ(serialize.value().flows.size(), kFlows);

  // Rule-level dependency tracking finds NO conflicts here: the flows
  // share switches but never rules, so conflict-aware admission must reach
  // full parallelism (this is exactly where switch-level tracking would
  // have serialized ~29x per block).
  EXPECT_EQ(conflict_aware.value().conflict_edges, 0u);
  EXPECT_EQ(conflict_aware.value().blocked_submissions, 0u);
  EXPECT_EQ(conflict_aware.value().max_in_flight_observed, kFlows);
  EXPECT_EQ(blind.value().max_in_flight_observed, kFlows);

  // The serializing policy really serialized, whatever max_in_flight says.
  EXPECT_EQ(serialize.value().max_in_flight_observed, 1u);
  EXPECT_GT(serialize.value().blocked_submissions, 0u);

  // Honest parallelism: conflict-aware beats serialize by a wide margin
  // and stays within noise of blind admission.
  EXPECT_LT(conflict_aware.value().makespan * 5, serialize.value().makespan);
  EXPECT_LE(conflict_aware.value().makespan, blind.value().makespan * 2);

  // Per-flow violation counts: the conflict-aware run reports exactly what
  // the fully serialized run reports, flow by flow.
  for (std::size_t i = 0; i < kFlows; ++i) {
    const dataplane::MonitorReport& ca = conflict_aware.value().flows[i].traffic;
    const dataplane::MonitorReport& s = serialize.value().flows[i].traffic;
    ASSERT_EQ(ca.bypassed, s.bypassed) << "flow " << i;
    ASSERT_EQ(ca.looped, s.looped) << "flow " << i;
    ASSERT_EQ(ca.blackholed, s.blackholed) << "flow " << i;
  }

  // The adaptive hold window is bounded even at full scale.
  EXPECT_LE(blind.value().batching.max_hold, sim::microseconds(200));
  EXPECT_LE(conflict_aware.value().batching.max_hold, sim::microseconds(200));
  EXPECT_GT(conflict_aware.value().batching.batches_sent, 0u);

#ifdef TSU_STRESS_SLIM
  (void)wall_start;  // wall-clock means nothing under -O0 / sanitizers
#else
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  EXPECT_LT(wall_seconds, kWallClockBudgetSeconds)
      << "stress run blew its wall-clock budget";
#endif
}

TEST(ScaleStressTest, ShardedFourWayMatchesSingleController) {
  // The sharded controller at full scale: the same pool workload through
  // 4 hash-partitioned shards (nearly every flow spans shards) with
  // switch->controller reply batching on, against the single controller
  // with identical knobs. The final forwarding state must be identical,
  // the safety oracle silent, and the cross-shard round protocol visibly
  // exercised.
  const auto wall_start = std::chrono::steady_clock::now();
  const topo::PlannedPoolWorkload w =
      topo::planned_pool_workload(kFlows, kSwitches).value();

  ExecutorConfig config =
      stress_config(controller::AdmissionPolicy::kConflictAware);
  config.switch_config.batch_replies = true;

  config.controller.shards = 1;
  const Result<MultiFlowExecutionResult> single =
      execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
  ASSERT_TRUE(single.ok()) << single.error().to_string();

  config.controller.shards = 4;
  config.controller.partition = topo::PartitionScheme::kHash;
  const Result<MultiFlowExecutionResult> sharded =
      execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
  ASSERT_TRUE(sharded.ok()) << sharded.error().to_string();

  expect_zero_violations(single.value(), "single");
  expect_zero_violations(sharded.value(), "sharded-4");
  ASSERT_EQ(sharded.value().flows.size(), kFlows);
  EXPECT_EQ(sharded.value().final_state_digest,
            single.value().final_state_digest);

  // Per-flow oracle results match the single controller flow by flow.
  for (std::size_t i = 0; i < kFlows; ++i) {
    const dataplane::MonitorReport& got = sharded.value().flows[i].traffic;
    const dataplane::MonitorReport& want = single.value().flows[i].traffic;
    ASSERT_EQ(got.bypassed, want.bypassed) << "flow " << i;
    ASSERT_EQ(got.looped, want.looped) << "flow " << i;
    ASSERT_EQ(got.blackholed, want.blackholed) << "flow " << i;
  }

  // Hash partitioning scatters each flow's block of 6 switches: the run
  // must have driven the cross-shard protocol hard, and a round only
  // syncs once per cross-shard request round.
  EXPECT_EQ(sharded.value().sharding.shards, 4u);
  EXPECT_GT(sharded.value().sharding.cross_shard_updates, kFlows / 2);
  EXPECT_GT(sharded.value().sharding.rounds_synced,
            sharded.value().sharding.cross_shard_updates);
  // A round's barriers cover the same switch set sharded or not, so the
  // two-phase protocol costs coordination spread, not extra serial work:
  // the sharded makespan stays within 2x of the single controller's.
  EXPECT_LE(sharded.value().makespan, single.value().makespan * 2);

  // The parallel stepper at full scale: the same 4-shard run on a 4-thread
  // pool must be bit-identical to the sequential merge - digest, frames,
  // makespan and the per-shard event schedule.
  config.controller.exec = sim::ExecMode::kParallel;
  config.controller.threads = 4;
  const Result<MultiFlowExecutionResult> parallel =
      execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
  ASSERT_TRUE(parallel.ok()) << parallel.error().to_string();
  expect_zero_violations(parallel.value(), "sharded-4-parallel");
  EXPECT_EQ(parallel.value().final_state_digest,
            sharded.value().final_state_digest);
  EXPECT_EQ(parallel.value().frames_sent, sharded.value().frames_sent);
  EXPECT_EQ(parallel.value().makespan, sharded.value().makespan);
  ASSERT_EQ(parallel.value().sharding.events_per_shard.size(), 4u);
  for (std::size_t s = 0; s < 4; ++s)
    EXPECT_EQ(parallel.value().sharding.events_per_shard[s],
              sharded.value().sharding.events_per_shard[s])
        << "shard " << s;
  EXPECT_GT(parallel.value().sharding.parallel_epochs, 0u);

#ifdef TSU_STRESS_SLIM
  (void)wall_start;
#else
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  EXPECT_LT(wall_seconds, kWallClockBudgetSeconds)
      << "sharded stress run blew its wall-clock budget";
#endif
}

// ----------------------------------------------------------------- chaos
// Random fault schedules against the concurrent engine, with the transient
// safety oracle (verify/transient.hpp) judging every executed trace.

ExecutorConfig chaos_config() {
  ExecutorConfig config = stress_config(controller::AdmissionPolicy::kBlind);
  config.controller.batch_mode = controller::BatchMode::kOff;
  config.traffic_interarrival =
      sim::LatencyModel::constant(sim::milliseconds(2));
  config.drain = sim::milliseconds(6);
  config.controller.liveness_timeout = sim::milliseconds(2);
  return config;
}

sim::ChaosOptions chaos_options(std::size_t switches) {
  sim::ChaosOptions options;
  options.node_count = switches;
  options.start_ms = 1.5;  // the update window opens at warmup = 2 ms
  options.horizon_ms = 10;
  options.crashes = 2;
  options.link_downs = 1;
  options.blackholes = 1;
  options.min_down_ms = 0.5;
  options.max_down_ms = 2.5;
  return options;
}

TEST(ScaleStressTest, ChaosSweepFindsNoTransientViolations) {
  // Hundreds of seeded random fault schedules - crashes with and without
  // state loss, control-link flaps, frame blackholes - against the
  // concurrent engine, alternating wait-retry and rollback recovery. Every
  // trace must drain with the oracle silent, and recovery keeps the
  // makespan bounded. Any failure prints the schedule's JSON: replay it
  // with `sim_cli --faults`.
  const topo::PlannedPoolWorkload w =
      topo::planned_pool_workload(kChaosFlows, kChaosSwitches).value();

  const Result<MultiFlowExecutionResult> clean = execute_multiflow(
      w.instance_ptrs, w.schedule_ptrs, chaos_config());
  ASSERT_TRUE(clean.ok()) << clean.error().to_string();
  const sim::Duration clean_makespan = clean.value().makespan;

  std::size_t resyncs = 0, rollbacks = 0, retries = 0;
  for (std::size_t seed = 1; seed <= kChaosSeeds; ++seed) {
    ExecutorConfig config = chaos_config();
    config.faults =
        sim::FaultSchedule::random(seed, chaos_options(kChaosSwitches));
    config.controller.failure_response =
        seed % 2 == 0 ? controller::FailureResponse::kRollback
                      : controller::FailureResponse::kWait;
    const std::string replay = json::write(config.faults.to_json());

    const Result<MultiFlowExecutionResult> run =
        execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
    ASSERT_TRUE(run.ok())
        << "seed " << seed << ": " << run.error().to_string()
        << "\nreplay: " << replay;
    const MultiFlowExecutionResult& result = run.value();

    const verify::TransientCheckReport report = verify::check_fault_trace(
        config.faults, result.faults, result.aggregate, kChaosFlows,
        result.flows.size());
    ASSERT_TRUE(report.ok)
        << "seed " << seed << ": " << report.to_string()
        << "\nreplay: " << replay;

    // Faults cost recovery time, never livelock: the makespan stays within
    // a fixed envelope of the fault-free run.
    EXPECT_LE(result.makespan, clean_makespan + sim::milliseconds(150))
        << "seed " << seed << " makespan blew up\nreplay: " << replay;

    resyncs += result.faults.resyncs;
    rollbacks += result.faults.rollbacks;
    retries += result.faults.retries;
  }
  // The sweep really exercised the recovery machinery, all three arms.
  EXPECT_GT(resyncs, kChaosSeeds);  // >= 1 per seed: 3 session losses each
  EXPECT_GT(rollbacks, 0u);
  EXPECT_GT(retries, 0u);
}

TEST(ScaleStressTest, ChaosAtFullScaleStaysConsistent) {
  // A few random fault schedules against the full pool, single controller
  // and the 4-shard sequential-vs-parallel pair. The sharded runs must
  // stay bit-identical to each other under faults, and every trace passes
  // the oracle.
  const auto wall_start = std::chrono::steady_clock::now();
  const topo::PlannedPoolWorkload w =
      topo::planned_pool_workload(kFlows, kSwitches).value();

  // The pool builds blocks of 6 switches, so only the largest multiple of
  // 6 exists as fault targets (kSwitches = 32 in the slim variant leaves
  // nodes 30..31 unbuilt).
  sim::ChaosOptions options = chaos_options(kSwitches - kSwitches % 6);
  options.crashes = 3;
  options.link_downs = 2;
  options.blackholes = 2;

  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    ExecutorConfig config = chaos_config();
    // The liveness timeout must clear the *loaded* round RTT: with every
    // flow in flight a block switch serializes ~29 flows' installs per
    // round (~3 ms), so the sweep's 2 ms timeout would mark healthy
    // switches dead and storm retries. 25 ms is comfortably above worst
    // case while still catching real blackholes within the drain.
    config.controller.liveness_timeout = sim::milliseconds(25);
    config.faults = sim::FaultSchedule::random(seed, options);
    const std::string replay = json::write(config.faults.to_json());

    const Result<MultiFlowExecutionResult> single =
        execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
    ASSERT_TRUE(single.ok())
        << single.error().to_string() << "\nreplay: " << replay;
    const verify::TransientCheckReport report = verify::check_fault_trace(
        config.faults, single.value().faults, single.value().aggregate,
        kFlows, single.value().flows.size());
    ASSERT_TRUE(report.ok) << report.to_string() << "\nreplay: " << replay;

    config.controller.shards = 4;
    const Result<MultiFlowExecutionResult> sharded =
        execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
    ASSERT_TRUE(sharded.ok())
        << sharded.error().to_string() << "\nreplay: " << replay;
    const verify::TransientCheckReport sharded_report =
        verify::check_fault_trace(config.faults, sharded.value().faults,
                                  sharded.value().aggregate, kFlows,
                                  sharded.value().flows.size());
    ASSERT_TRUE(sharded_report.ok)
        << sharded_report.to_string() << "\nreplay: " << replay;

    // Fault recovery converges to the same forwarding state sharded or
    // not, and the parallel stepper stays bit-identical under faults.
    EXPECT_EQ(sharded.value().final_state_digest,
              single.value().final_state_digest)
        << "seed " << seed << "\nreplay: " << replay;
    config.controller.exec = sim::ExecMode::kParallel;
    config.controller.threads = 4;
    const Result<MultiFlowExecutionResult> parallel =
        execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
    ASSERT_TRUE(parallel.ok())
        << parallel.error().to_string() << "\nreplay: " << replay;
    EXPECT_EQ(parallel.value().final_state_digest,
              sharded.value().final_state_digest)
        << "seed " << seed << "\nreplay: " << replay;
    EXPECT_EQ(parallel.value().frames_sent, sharded.value().frames_sent);
    EXPECT_EQ(parallel.value().makespan, sharded.value().makespan);
    EXPECT_EQ(parallel.value().faults.resyncs,
              sharded.value().faults.resyncs);
    EXPECT_EQ(parallel.value().faults.resync_frames,
              sharded.value().faults.resync_frames);
  }

#ifdef TSU_STRESS_SLIM
  (void)wall_start;
#else
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  EXPECT_LT(wall_seconds, kWallClockBudgetSeconds)
      << "full-scale chaos run blew its wall-clock budget";
#endif
}

}  // namespace
}  // namespace tsu::core
