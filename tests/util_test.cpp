#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "tsu/util/arena.hpp"
#include "tsu/util/rng.hpp"
#include "tsu/util/status.hpp"
#include "tsu/util/strings.hpp"

namespace tsu {
namespace {

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformU64RespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform_u64(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RngTest, UniformU64SingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_u64(5, 5), 5u);
}

TEST(RngTest, UniformU64CoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_u64(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformI64HandlesNegativeRanges) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_i64(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, IndexStaysBelowBound) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(17), 17u);
}

TEST(RngTest, Uniform01InHalfOpenUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, Uniform01MeanNearHalf) {
  Rng rng(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(23);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(RngTest, NormalMeanAndSpread) {
  Rng rng(29);
  double sum = 0;
  double sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, LognormalMedianRoughlyMatches) {
  Rng rng(31);
  std::vector<double> samples;
  for (int i = 0; i < 10001; ++i) samples.push_back(rng.lognormal_median(5.0, 0.7));
  std::nth_element(samples.begin(), samples.begin() + 5000, samples.end());
  EXPECT_NEAR(samples[5000], 5.0, 0.3);
}

TEST(RngTest, ParetoWithinBounds) {
  Rng rng(37);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.pareto(1.5, 1.0, 100.0);
    EXPECT_GE(v, 1.0);
    EXPECT_LT(v, 100.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(41);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(43);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ForkedStreamsDiffer) {
  Rng parent(47);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (parent() == child()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(RngTest, SplitMix64KnownSequenceIsStable) {
  std::uint64_t s1 = 0;
  std::uint64_t s2 = 0;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(splitmix64(s1), splitmix64(s2));
}

// --------------------------------------------------------------- strings --

TEST(StringsTest, SplitBasic) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = split(",a,,b,", ',');
  ASSERT_EQ(parts.size(), 5u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[4], "");
}

TEST(StringsTest, SplitNoDelimiter) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringsTest, TrimStripsBothEnds) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(starts_with("oldpath", "old"));
  EXPECT_FALSE(starts_with("old", "oldpath"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(StringsTest, ParseIntAcceptsValid) {
  EXPECT_EQ(parse_int("0"), 0);
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-17"), -17);
  EXPECT_EQ(parse_int("+5"), 5);
  EXPECT_EQ(parse_int("9223372036854775807"), INT64_MAX);
}

TEST(StringsTest, ParseIntRejectsJunk) {
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("-").has_value());
  EXPECT_FALSE(parse_int("12a").has_value());
  EXPECT_FALSE(parse_int("1.5").has_value());
  EXPECT_FALSE(parse_int(" 1").has_value());
  EXPECT_FALSE(parse_int("99999999999999999999").has_value());  // overflow
}

TEST(StringsTest, FormatDurationPicksUnit) {
  EXPECT_EQ(format_duration_ns(500), "500 ns");
  EXPECT_EQ(format_duration_ns(1'500), "1.50 us");
  EXPECT_EQ(format_duration_ns(2'500'000), "2.50 ms");
  EXPECT_EQ(format_duration_ns(3'200'000'000ULL), "3.20 s");
}

TEST(StringsTest, JoinWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

// ---------------------------------------------------------------- status --

TEST(StatusTest, ResultHoldsValue) {
  const Result<int> r(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 5);
  EXPECT_EQ(r.value_or(9), 5);
}

TEST(StatusTest, ResultHoldsError) {
  const Result<int> r(make_error(Errc::kNotFound, "nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::kNotFound);
  EXPECT_EQ(r.error().message, "nope");
  EXPECT_EQ(r.value_or(9), 9);
}

TEST(StatusTest, StatusDefaultsToOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
}

TEST(StatusTest, StatusCarriesError) {
  const Status s = make_error(Errc::kParseError, "bad");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().to_string(), "parse_error: bad");
}

TEST(StatusTest, ErrcNames) {
  EXPECT_STREQ(to_string(Errc::kInvalidArgument), "invalid_argument");
  EXPECT_STREQ(to_string(Errc::kExhausted), "exhausted");
}

TEST(StatusTest, MovedResultTransfersOwnership) {
  Result<std::string> r(std::string("payload"));
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

namespace {
struct DtorProbe {
  int id;
  std::vector<int>* order;
  DtorProbe(int id, std::vector<int>* order) : id(id), order(order) {}
  ~DtorProbe() { order->push_back(id); }
};
}  // namespace

TEST(SetupArenaTest, PacksObjectsIntoOneChunk) {
  util::SetupArena arena;
  for (int i = 0; i < 100; ++i) {
    int* p = arena.make<int>(i);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(*p, i);
  }
  // 100 ints fit the 64 KiB default chunk with room to spare, and ints
  // are trivially destructible so the dtor registry stays empty.
  EXPECT_EQ(arena.chunks(), 1u);
  EXPECT_EQ(arena.objects(), 0u);
}

TEST(SetupArenaTest, DestroysInReverseCreationOrder) {
  std::vector<int> order;
  {
    util::SetupArena arena;
    for (int i = 0; i < 5; ++i) arena.make<DtorProbe>(i, &order);
    EXPECT_EQ(arena.objects(), 5u);
    EXPECT_TRUE(order.empty());  // nothing destroyed while the arena lives
  }
  EXPECT_EQ(order, (std::vector<int>{4, 3, 2, 1, 0}));
}

TEST(SetupArenaTest, GrowsByChunksAndHandlesOversizedRequests) {
  util::SetupArena arena(64);  // tiny chunks force growth
  struct Big {
    char bytes[256];
  };
  char* small = arena.make<char>('x');
  Big* big = arena.make<Big>();  // larger than a whole chunk
  char* after = arena.make<char>('y');
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(*small, 'x');
  EXPECT_EQ(*after, 'y');
  EXPECT_GE(arena.chunks(), 2u);
}

TEST(SetupArenaTest, RespectsAlignment) {
  util::SetupArena arena;
  struct alignas(64) Aligned {
    char c;
  };
  arena.make<char>('a');  // misalign the bump pointer
  Aligned* p = arena.make<Aligned>();
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
}

}  // namespace
}  // namespace tsu
