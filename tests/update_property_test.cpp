// Property-based sweeps: every scheduler's guarantee is machine-checked
// against the exhaustive transient-state model on seeded random instances.
// These are the tests that validate the WayUp/Peacock reconstructions.
#include <gtest/gtest.h>

#include "tsu/topo/instances.hpp"
#include "tsu/update/schedulers.hpp"
#include "tsu/verify/checker.hpp"
#include "tsu/verify/property.hpp"

namespace tsu::update {
namespace {

struct SweepParam {
  std::uint64_t seed;
  std::size_t old_interior_max;
  std::size_t new_len_max;
};

class SchedulerSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  topo::RandomInstanceOptions generator_options() const {
    topo::RandomInstanceOptions options;
    options.old_interior_max = GetParam().old_interior_max;
    options.new_len_max = GetParam().new_len_max;
    return options;
  }
};

constexpr int kInstancesPerSeed = 40;

TEST_P(SchedulerSweep, WayUpAlwaysEnforcesWaypoint) {
  Rng rng(GetParam().seed);
  const topo::RandomInstanceOptions options = generator_options();
  for (int i = 0; i < kInstancesPerSeed; ++i) {
    const Instance inst = topo::random_instance(rng, options);
    const Result<Schedule> schedule = plan_wayup(inst);
    ASSERT_TRUE(schedule.ok()) << inst.to_string();
    EXPECT_TRUE(validate_schedule(inst, schedule.value()).ok())
        << inst.to_string();
    const verify::CheckReport report =
        verify::check_schedule(inst, schedule.value(), kWaypoint);
    EXPECT_TRUE(report.ok)
        << inst.to_string() << "\n" << schedule.value().to_string() << "\n"
        << report.to_string();
  }
}

TEST_P(SchedulerSweep, WayUpSurvivesTwoSnapshotAdversary) {
  Rng rng(GetParam().seed ^ 0xabcdef);
  const topo::RandomInstanceOptions options = generator_options();
  for (int i = 0; i < kInstancesPerSeed / 2; ++i) {
    const Instance inst = topo::random_instance(rng, options);
    const Result<Schedule> schedule = plan_wayup(inst);
    ASSERT_TRUE(schedule.ok());
    const verify::TwoSnapshotReport report =
        verify::check_two_snapshot(inst, schedule.value(), kWaypoint);
    EXPECT_TRUE(report.ok)
        << inst.to_string() << "\n" << schedule.value().to_string() << "\n"
        << report.to_string();
  }
}

TEST_P(SchedulerSweep, PeacockSurvivesTwoSnapshotAdversary) {
  // Not implied by the per-subset property: a packet may cross a rule
  // change mid-flight. Empirically (and asserted here) Peacock's schedules
  // stay loop-free even for such packets.
  Rng rng(GetParam().seed ^ 0x2faced);
  const topo::RandomInstanceOptions options = generator_options();
  for (int i = 0; i < kInstancesPerSeed / 2; ++i) {
    const Instance inst = topo::random_instance(rng, options);
    const Result<Schedule> schedule = plan_peacock(inst);
    ASSERT_TRUE(schedule.ok());
    const verify::TwoSnapshotReport report = verify::check_two_snapshot(
        inst, schedule.value(), kLoopFree | kBlackholeFree);
    EXPECT_TRUE(report.ok)
        << inst.to_string() << "\n" << schedule.value().to_string() << "\n"
        << report.to_string();
  }
}

TEST_P(SchedulerSweep, PeacockAlwaysRelaxedLoopFree) {
  Rng rng(GetParam().seed ^ 0x5eed);
  const topo::RandomInstanceOptions options = generator_options();
  for (int i = 0; i < kInstancesPerSeed; ++i) {
    const Instance inst = topo::random_instance(rng, options);
    const Result<Schedule> schedule = plan_peacock(inst);
    ASSERT_TRUE(schedule.ok())
        << inst.to_string() << " error: " << schedule.error().to_string();
    EXPECT_TRUE(validate_schedule(inst, schedule.value()).ok())
        << inst.to_string();
    const verify::CheckReport report = verify::check_schedule(
        inst, schedule.value(), kLoopFree | kBlackholeFree);
    EXPECT_TRUE(report.ok)
        << inst.to_string() << "\n" << schedule.value().to_string() << "\n"
        << report.to_string();
  }
}

TEST_P(SchedulerSweep, SlfGreedyAlwaysStronglyLoopFree) {
  Rng rng(GetParam().seed ^ 0x51f);
  const topo::RandomInstanceOptions options = generator_options();
  for (int i = 0; i < kInstancesPerSeed; ++i) {
    const Instance inst = topo::random_instance(rng, options);
    const Result<Schedule> schedule = plan_slf_greedy(inst);
    ASSERT_TRUE(schedule.ok())
        << inst.to_string() << " error: " << schedule.error().to_string();
    const verify::CheckReport report = verify::check_schedule(
        inst, schedule.value(), kGlobalLoopFree | kBlackholeFree);
    EXPECT_TRUE(report.ok)
        << inst.to_string() << "\n" << schedule.value().to_string() << "\n"
        << report.to_string();
  }
}

TEST_P(SchedulerSweep, SchedulesPartitionTouchedNodes) {
  Rng rng(GetParam().seed ^ 0x9a97);
  const topo::RandomInstanceOptions options = generator_options();
  for (int i = 0; i < kInstancesPerSeed; ++i) {
    const Instance inst = topo::random_instance(rng, options);
    for (const Result<Schedule>& schedule :
         {plan_oneshot(inst), plan_twophase(inst), plan_wayup(inst),
          plan_peacock(inst), plan_slf_greedy(inst)}) {
      ASSERT_TRUE(schedule.ok());
      EXPECT_TRUE(validate_schedule(inst, schedule.value()).ok())
          << inst.to_string() << " via " << schedule.value().algorithm;
    }
  }
}

TEST_P(SchedulerSweep, FinalStateAlwaysDeliversAlongNewPath) {
  Rng rng(GetParam().seed ^ 0xf17a1);
  const topo::RandomInstanceOptions options = generator_options();
  for (int i = 0; i < kInstancesPerSeed; ++i) {
    const Instance inst = topo::random_instance(rng, options);
    const WalkResult walk = walk_from_source(inst, full_state(inst));
    EXPECT_EQ(walk.outcome, WalkOutcome::kDelivered);
    EXPECT_EQ(walk.trace, inst.new_path()) << inst.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, SchedulerSweep,
    ::testing::Values(SweepParam{101, 6, 6}, SweepParam{202, 6, 6},
                      SweepParam{303, 8, 8}, SweepParam{404, 8, 8},
                      SweepParam{505, 10, 10}, SweepParam{606, 4, 10},
                      SweepParam{707, 10, 4}, SweepParam{808, 12, 12}),
    [](const ::testing::TestParamInfo<SweepParam>& param_info) {
      return "seed" + std::to_string(param_info.param.seed) + "_o" +
             std::to_string(param_info.param.old_interior_max) + "_n" +
             std::to_string(param_info.param.new_len_max);
    });

// ------------------------------------------------- optimality comparisons --

TEST(OptimalityGap, WayUpWithinOneRoundOfOptimalOnSmallInstances) {
  Rng rng(515);
  topo::RandomInstanceOptions options;
  options.old_interior_max = 4;
  options.new_len_max = 4;
  int compared = 0;
  for (int i = 0; i < 60 && compared < 20; ++i) {
    const Instance inst = topo::random_instance(rng, options);
    if (inst.touched().size() > 9) continue;
    const Result<Schedule> wayup = plan_wayup(inst);
    ASSERT_TRUE(wayup.ok());
    OptimalOptions opt;
    opt.properties = kWaypoint;
    opt.max_rounds = 6;
    const Result<Schedule> best = plan_optimal(inst, opt);
    ASSERT_TRUE(best.ok()) << inst.to_string();
    EXPECT_LE(best.value().round_count(), wayup.value().round_count());
    ++compared;
  }
  EXPECT_GE(compared, 10);
}

TEST(OptimalityGap, PeacockNeverWorseThanSlfOnReversals) {
  for (std::size_t n = 5; n <= 12; ++n) {
    const Instance inst = topo::reversal_instance(n);
    const Result<Schedule> peacock = plan_peacock(inst);
    const Result<Schedule> slf = plan_slf_greedy(inst);
    ASSERT_TRUE(peacock.ok() && slf.ok());
    EXPECT_LE(peacock.value().round_count(), slf.value().round_count());
  }
}

// ---------------------------------------------- baselines do fail somewhere --

TEST(BaselineFailures, OneShotViolatesSomewhere) {
  // On a decent sample of waypoint instances with conflicts, OneShot must
  // produce at least one WPE violation (otherwise the whole premise of the
  // paper would be moot).
  Rng rng(777);
  topo::RandomInstanceOptions options;
  options.reuse_probability = 0.8;
  int violations = 0;
  for (int i = 0; i < 40; ++i) {
    const Instance inst = topo::random_instance(rng, options);
    const Result<Schedule> schedule = plan_oneshot(inst);
    ASSERT_TRUE(schedule.ok());
    if (!verify::check_schedule(inst, schedule.value(), kWaypoint).ok)
      ++violations;
  }
  EXPECT_GT(violations, 0);
}

TEST(BaselineFailures, OneShotLoopsSomewhere) {
  Rng rng(888);
  topo::RandomInstanceOptions options;
  options.with_waypoint = false;
  options.reuse_probability = 0.8;
  int violations = 0;
  for (int i = 0; i < 40; ++i) {
    const Instance inst = topo::random_instance(rng, options);
    const Result<Schedule> schedule = plan_oneshot(inst);
    ASSERT_TRUE(schedule.ok());
    if (!verify::check_schedule(inst, schedule.value(), kLoopFree).ok)
      ++violations;
  }
  EXPECT_GT(violations, 0);
}

}  // namespace
}  // namespace tsu::update
