#include <gtest/gtest.h>

#include "tsu/stats/histogram.hpp"
#include "tsu/stats/summary.hpp"
#include "tsu/stats/table.hpp"

namespace tsu::stats {
namespace {

// ---------------------------------------------------------------- Summary --

TEST(SummaryTest, EmptyDefaults) {
  const Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(SummaryTest, SingleSample) {
  Summary s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(SummaryTest, KnownMoments) {
  Summary s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  // Sample variance of the classic data set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(SummaryTest, NegativeValues) {
  Summary s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
}

TEST(SummaryTest, ToStringMentionsCount) {
  Summary s;
  s.add(1.0);
  EXPECT_NE(s.to_string().find("n=1"), std::string::npos);
}

// ------------------------------------------------------------ Percentiles --

TEST(PercentilesTest, MedianOfOddSet) {
  Percentiles p;
  for (const double x : {5.0, 1.0, 3.0}) p.add(x);
  EXPECT_DOUBLE_EQ(p.median(), 3.0);
}

TEST(PercentilesTest, InterpolatesBetweenSamples) {
  Percentiles p;
  p.add(0.0);
  p.add(10.0);
  EXPECT_DOUBLE_EQ(p.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(p.quantile(0.25), 2.5);
}

TEST(PercentilesTest, ExtremesAreMinMax) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) p.add(i);
  EXPECT_DOUBLE_EQ(p.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.quantile(1.0), 100.0);
  EXPECT_NEAR(p.p95(), 95.0, 1.0);
}

TEST(PercentilesTest, SingleSampleEverywhere) {
  Percentiles p;
  p.add(7.0);
  EXPECT_DOUBLE_EQ(p.quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(p.quantile(0.99), 7.0);
}

TEST(PercentilesTest, AddAllAndCount) {
  Percentiles p;
  p.add_all({1.0, 2.0, 3.0});
  EXPECT_EQ(p.count(), 3u);
}

TEST(PercentilesDeathTest, EmptyQuantileAsserts) {
  const Percentiles p;
  EXPECT_DEATH((void)p.quantile(0.5), "empty");
}

// ------------------------------------------------------------ LogHistogram --

TEST(LogHistogramTest, CountsTotal) {
  LogHistogram h;
  h.add(0.5);
  h.add(1.0);
  h.add(3.0);
  h.add(1000.0);
  EXPECT_EQ(h.total(), 4u);
}

TEST(LogHistogramTest, RendersBuckets) {
  LogHistogram h;
  h.add(2.0);  // [2^1, 2^2)
  const std::string text = h.to_string();
  EXPECT_NE(text.find("[2^1, 2^2): 1"), std::string::npos) << text;
}

TEST(LogHistogramTest, EmptyRendering) {
  const LogHistogram h;
  EXPECT_EQ(h.to_string(), "(empty histogram)\n");
}

// ------------------------------------------------------------------ Table --

TEST(TableTest, MarkdownAlignment) {
  Table t({"algo", "rounds"});
  t.add_row({"wayup", "4"});
  t.add_row({"oneshot", "1"});
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| algo    | rounds |"), std::string::npos) << md;
  EXPECT_NE(md.find("| wayup   | 4      |"), std::string::npos) << md;
}

TEST(TableTest, CsvEscapesSpecials) {
  Table t({"name", "note"});
  t.add_row({"a,b", "say \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos) << csv;
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos) << csv;
}

TEST(TableTest, CsvPlainFieldsUnquoted) {
  Table t({"x"});
  t.add_row({"42"});
  EXPECT_EQ(t.to_csv(), "x\n42\n");
}

TEST(TableDeathTest, RowWidthMismatchAsserts) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "width");
}

}  // namespace
}  // namespace tsu::stats
