// Failure injection: the guarantees must survive degraded control
// channels - loss (surfacing as TCP retransmit delays), heavy-tailed
// installs, pathological jitter - and hard faults from the fault-injection
// subsystem (sim/faults.hpp): switch crashes before and after the round
// ack, cold-reboot vs retained-TCAM reconnects, control-link outages,
// frame blackholes, double faults, and rollback. The executor must degrade
// loudly, not silently, on misuse.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "tsu/channel/channel.hpp"
#include "tsu/controller/controller.hpp"
#include "tsu/controller/plan_cache.hpp"
#include "tsu/core/executor.hpp"
#include "tsu/core/planner.hpp"
#include "tsu/sim/faults.hpp"
#include "tsu/switchsim/switch.hpp"
#include "tsu/topo/instances.hpp"
#include "tsu/verify/transient.hpp"
#include "multiflow_workload.hpp"

namespace tsu::core {
namespace {

const topo::Fig1& fig1() {
  static const topo::Fig1 fig = topo::fig1();
  return fig;
}

update::Schedule wayup_schedule() {
  return plan(fig1().instance, Algorithm::kWayUp).value().schedule;
}

TEST(FailureInjectionTest, LossyChannelStillCompletesAndStaysSecure) {
  ExecutorConfig config;
  config.channel.loss_probability = 0.3;
  config.channel.retransmit_timeout = sim::milliseconds(20);
  const update::Schedule schedule = wayup_schedule();
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    config.seed = seed;
    const Result<ExecutionResult> result =
        execute(fig1().instance, schedule, config);
    ASSERT_TRUE(result.ok()) << result.error().to_string();
    EXPECT_EQ(result.value().traffic.bypassed, 0u) << "seed " << seed;
    EXPECT_GT(result.value().update_ms(), 0.0);
  }
}

TEST(FailureInjectionTest, LossMakesUpdatesSlowerNotBroken) {
  const update::Schedule schedule = wayup_schedule();
  ExecutorConfig clean;
  clean.seed = 5;
  clean.with_traffic = false;
  ExecutorConfig lossy = clean;
  lossy.channel.loss_probability = 0.4;
  lossy.channel.retransmit_timeout = sim::milliseconds(25);
  const Result<ExecutionResult> fast =
      execute(fig1().instance, schedule, clean);
  const Result<ExecutionResult> slow =
      execute(fig1().instance, schedule, lossy);
  ASSERT_TRUE(fast.ok() && slow.ok());
  EXPECT_GT(slow.value().update_ms(), fast.value().update_ms());
}

TEST(FailureInjectionTest, HeavyTailedInstallsKeepWaypointSafety) {
  ExecutorConfig config;
  config.switch_config.install_latency = sim::LatencyModel::pareto(
      sim::microseconds(200), sim::milliseconds(200), 1.1);
  const update::Schedule schedule = wayup_schedule();
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    config.seed = seed;
    const Result<ExecutionResult> result =
        execute(fig1().instance, schedule, config);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().traffic.bypassed, 0u) << "seed " << seed;
  }
}

TEST(FailureInjectionTest, ExtremeJitterKeepsPeacockLoopFree) {
  const Result<PlanOutcome> planned =
      plan(fig1().instance, Algorithm::kPeacock);
  ASSERT_TRUE(planned.ok());
  ExecutorConfig config;
  config.channel.latency = sim::LatencyModel::uniform(
      sim::microseconds(10), sim::milliseconds(100));
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    config.seed = seed;
    const Result<ExecutionResult> result =
        execute(fig1().instance, planned.value().schedule, config);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().traffic.looped, 0u) << "seed " << seed;
    EXPECT_EQ(result.value().traffic.ttl_expired, 0u) << "seed " << seed;
  }
}

TEST(FailureInjectionTest, SlowChannelDoesNotReorderWithinSwitch) {
  // With high jitter, per-switch FIFO must still hold: the final rule at
  // every switch is the last one sent (the new path works end to end).
  const update::Schedule schedule = wayup_schedule();
  ExecutorConfig config;
  config.channel.latency = sim::LatencyModel::uniform(
      sim::microseconds(10), sim::milliseconds(50));
  config.with_traffic = false;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    config.seed = seed;
    const Result<ExecutionResult> result =
        execute(fig1().instance, schedule, config);
    ASSERT_TRUE(result.ok());
  }
}

TEST(FailureInjectionTest, ExecutorRejectsMismatchedQueueInputs) {
  const update::Schedule schedule = wayup_schedule();
  const Result<std::vector<ExecutionResult>> empty =
      execute_queue({}, {}, ExecutorConfig{});
  EXPECT_FALSE(empty.ok());
  const Result<std::vector<ExecutionResult>> mismatched = execute_queue(
      {&fig1().instance}, {&schedule, &schedule}, ExecutorConfig{});
  EXPECT_FALSE(mismatched.ok());
}

TEST(FailureInjectionTest, TrafficlessRunsReportNoPackets) {
  ExecutorConfig config;
  config.with_traffic = false;
  const Result<ExecutionResult> result =
      execute(fig1().instance, wayup_schedule(), config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().traffic.total, 0u);
  EXPECT_EQ(result.value().packets_injected, 0u);
  EXPECT_GT(result.value().update_ms(), 0.0);
}

TEST(FailureInjectionTest, RetransmissionsAreCounted) {
  ExecutorConfig config;
  config.seed = 3;
  config.channel.loss_probability = 0.5;
  config.with_traffic = false;
  const Result<ExecutionResult> result =
      execute(fig1().instance, wayup_schedule(), config);
  ASSERT_TRUE(result.ok());
  // Frames were still all delivered (the update completed); the loss shows
  // up as latency, mirroring TCP under the OpenFlow session.
  EXPECT_GT(result.value().frames_sent, 0u);
}

// ------------------------------------------------------------------ hard
// faults: the fault-injection subsystem against one Peacock-planned flow
// (old 0->1->2->3, new 0->4->5->3) with stretched rounds, so every fault
// lands at a controlled point of the update. Each scenario must converge
// to the never-faulted forwarding state (or, for rollback, the pre-update
// state) with the transient oracle silent.

ExecutorConfig hard_fault_config() {
  ExecutorConfig config;
  config.channel.latency =
      sim::LatencyModel::constant(sim::microseconds(100));
  config.switch_config.install_latency =
      sim::LatencyModel::constant(sim::microseconds(50));
  config.traffic_interarrival =
      sim::LatencyModel::constant(sim::milliseconds(1));
  config.link_latency = sim::LatencyModel::constant(sim::microseconds(20));
  config.warmup = sim::milliseconds(2);    // requests submitted at 2 ms
  config.drain = sim::milliseconds(10);
  config.interval = sim::milliseconds(1);  // stretch the rounds apart
  config.controller.liveness_timeout = sim::milliseconds(3);
  return config;
}

sim::FaultEvent crash_event(double at_ms, NodeId node, double down_ms,
                            bool lose_state) {
  sim::FaultEvent event;
  event.kind = sim::FaultKind::kSwitchCrash;
  event.at = sim::from_ms(at_ms);
  event.node = node;
  event.down_for = sim::from_ms(down_ms);
  event.lose_state = lose_state;
  return event;
}

// Runs the single-flow workload and fails the test on engine error or any
// transient-oracle violation; returns the result for scenario asserts.
MultiFlowExecutionResult run_hard_fault(const testutil::Workload& w,
                                        const ExecutorConfig& config) {
  const Result<MultiFlowExecutionResult> run =
      execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
  EXPECT_TRUE(run.ok()) << (run.ok() ? "" : run.error().to_string());
  if (!run.ok()) return {};
  const verify::TransientCheckReport report = verify::check_fault_trace(
      config.faults, run.value().faults, run.value().aggregate,
      w.instances.size(), run.value().flows.size());
  EXPECT_TRUE(report.ok) << report.to_string();
  return run.value();
}

TEST(FailureInjectionTest, CrashBeforeAckReplaysTheLostRound) {
  const testutil::Workload w = testutil::disjoint_workload(1);
  ExecutorConfig config = hard_fault_config();
  const MultiFlowExecutionResult baseline = run_hard_fault(w, config);

  // 2.05 ms: round 1's FlowMod to the new-path switch is still in flight,
  // so the crash eats it unacknowledged.
  config.faults.add(crash_event(2.05, 4, 2, /*lose_state=*/true));
  const MultiFlowExecutionResult faulted = run_hard_fault(w, config);

  EXPECT_EQ(faulted.final_state_digest, baseline.final_state_digest);
  EXPECT_EQ(faulted.initial_state_digest, baseline.initial_state_digest);
  EXPECT_EQ(faulted.faults.crashes, 1u);
  EXPECT_GE(faulted.faults.resyncs, 1u);
  EXPECT_GE(faulted.faults.frames_lost, 1u);
  ASSERT_EQ(faulted.faults.recovery_ms.size(), 1u);
  EXPECT_GE(faulted.faults.recovery_ms[0], 2.0);  // >= the down window
}

TEST(FailureInjectionTest, CrashAfterAckResyncsTheWipedTables) {
  const testutil::Workload w = testutil::disjoint_workload(1);
  ExecutorConfig config = hard_fault_config();
  const MultiFlowExecutionResult baseline = run_hard_fault(w, config);

  // 3.0 ms: round 1 is acknowledged; the cold reboot wipes the installed
  // rule, so only the reconnect resync can restore it.
  config.faults.add(crash_event(3.0, 4, 1.5, /*lose_state=*/true));
  const MultiFlowExecutionResult faulted = run_hard_fault(w, config);

  EXPECT_EQ(faulted.final_state_digest, baseline.final_state_digest);
  EXPECT_EQ(faulted.faults.crashes, 1u);
  EXPECT_GE(faulted.faults.resyncs, 1u);
  EXPECT_GE(faulted.faults.resync_frames, 1u);  // the wiped rule came back
}

TEST(FailureInjectionTest, ReconnectResyncDigestEqualsNeverCrashedDigest) {
  const testutil::Workload w = testutil::disjoint_workload(1);
  ExecutorConfig config = hard_fault_config();
  const MultiFlowExecutionResult baseline = run_hard_fault(w, config);

  ExecutorConfig cold = config;
  cold.faults.add(crash_event(3.0, 4, 1.5, /*lose_state=*/true));
  const MultiFlowExecutionResult cold_run = run_hard_fault(w, cold);

  ExecutorConfig warm = config;
  warm.faults.add(crash_event(3.0, 4, 1.5, /*lose_state=*/false));
  const MultiFlowExecutionResult warm_run = run_hard_fault(w, warm);

  EXPECT_EQ(cold_run.final_state_digest, baseline.final_state_digest);
  EXPECT_EQ(warm_run.final_state_digest, baseline.final_state_digest);
  // The retained-TCAM reconnect only corrects rules whose install was
  // unfenced at crash time; the cold reboot replays the full image.
  EXPECT_LE(warm_run.faults.resync_frames, cold_run.faults.resync_frames);
  EXPECT_GE(warm_run.faults.resyncs, 1u);
}

TEST(FailureInjectionTest, CrashMidRoundIsDrivenToCompletion) {
  const testutil::Workload w = testutil::disjoint_workload(1);
  ExecutorConfig config = hard_fault_config();
  const MultiFlowExecutionResult baseline = run_hard_fault(w, config);

  // 3.6 ms: around the ingress-flip round at node 0 - whichever side of
  // the ack the crash lands on, the update must converge to the same
  // forwarding state through resync and replay.
  config.faults.add(crash_event(3.6, 0, 2, /*lose_state=*/false));
  const MultiFlowExecutionResult faulted = run_hard_fault(w, config);

  EXPECT_EQ(faulted.final_state_digest, baseline.final_state_digest);
  EXPECT_EQ(faulted.faults.crashes, 1u);
  EXPECT_GE(faulted.faults.resyncs + faulted.faults.retries, 1u);
}

TEST(FailureInjectionTest, RollbackLeavesPreUpdateForwardingState) {
  const testutil::Workload w = testutil::disjoint_workload(1);
  ExecutorConfig config = hard_fault_config();
  config.controller.failure_response = controller::FailureResponse::kRollback;
  config.controller.resubmit_after_rollback = false;

  // The crash outlives the liveness timeout, so the controller declares
  // the switch dead mid-update and unwinds the rounds already sent.
  config.faults.add(crash_event(2.05, 4, 6, /*lose_state=*/true));
  const MultiFlowExecutionResult result = run_hard_fault(w, config);

  EXPECT_EQ(result.faults.rollbacks, 1u);
  EXPECT_EQ(result.faults.resubmissions, 0u);
  ASSERT_EQ(result.flows.size(), 1u);
  EXPECT_TRUE(result.flows[0].update.aborted);
  // The inverse FlowMods restored exactly the pre-update forwarding state.
  EXPECT_EQ(result.final_state_digest, result.initial_state_digest);
}

TEST(FailureInjectionTest, RolledBackUpdateResubmitsAndFinishes) {
  const testutil::Workload w = testutil::disjoint_workload(1);
  ExecutorConfig config = hard_fault_config();
  const MultiFlowExecutionResult baseline = run_hard_fault(w, config);

  config.controller.failure_response = controller::FailureResponse::kRollback;
  config.controller.resubmit_after_rollback = true;  // the default
  config.faults.add(crash_event(2.05, 4, 6, /*lose_state=*/true));
  const MultiFlowExecutionResult result = run_hard_fault(w, config);

  EXPECT_GE(result.faults.rollbacks, 1u);
  EXPECT_GE(result.faults.resubmissions, 1u);
  ASSERT_EQ(result.flows.size(), 1u);
  EXPECT_FALSE(result.flows[0].update.aborted);
  // The resubmitted update finished: the new path is installed after all.
  EXPECT_EQ(result.final_state_digest, baseline.final_state_digest);
}

TEST(FailureInjectionTest, DoubleFaultOnSameSwitchStillConverges) {
  const testutil::Workload w = testutil::disjoint_workload(1);
  ExecutorConfig config = hard_fault_config();
  const MultiFlowExecutionResult baseline = run_hard_fault(w, config);

  // The second crash lands while the first reconnect's resync is still in
  // flight, forcing the controller to abandon and redo it.
  config.faults.add(crash_event(2.05, 4, 1, /*lose_state=*/true));
  config.faults.add(crash_event(3.2, 4, 1, /*lose_state=*/true));
  const MultiFlowExecutionResult faulted = run_hard_fault(w, config);

  EXPECT_EQ(faulted.final_state_digest, baseline.final_state_digest);
  EXPECT_EQ(faulted.faults.crashes, 2u);
  EXPECT_GE(faulted.faults.resyncs, 1u);
}

TEST(FailureInjectionTest, LinkFailureMidUpdateHealsWithoutCrash) {
  const testutil::Workload w = testutil::disjoint_workload(1);
  ExecutorConfig config = hard_fault_config();
  const MultiFlowExecutionResult baseline = run_hard_fault(w, config);

  sim::FaultEvent outage;
  outage.kind = sim::FaultKind::kLinkDown;
  outage.at = sim::from_ms(2.05);  // round 1's frames are in flight
  outage.node = 4;
  outage.down_for = sim::milliseconds(2);
  config.faults.add(outage);
  const MultiFlowExecutionResult faulted = run_hard_fault(w, config);

  EXPECT_EQ(faulted.final_state_digest, baseline.final_state_digest);
  EXPECT_EQ(faulted.faults.crashes, 0u);
  EXPECT_EQ(faulted.faults.link_downs, 1u);
  EXPECT_GE(faulted.faults.resyncs, 1u);
  // The switch never stopped forwarding: a dark control channel is not an
  // outage for the data plane.
  EXPECT_EQ(faulted.aggregate.fault_dropped, 0u);
}

TEST(FailureInjectionTest, BlackholeRecoversViaTimeoutAndRetry) {
  const testutil::Workload w = testutil::disjoint_workload(1);
  ExecutorConfig config = hard_fault_config();
  const MultiFlowExecutionResult baseline = run_hard_fault(w, config);

  sim::FaultEvent hole;
  hole.kind = sim::FaultKind::kBlackhole;
  hole.at = sim::from_ms(1.9);  // armed just before round 1 is sent
  hole.node = 4;
  hole.frames = 2;  // eats the FlowMod and the barrier
  config.faults.add(hole);
  const MultiFlowExecutionResult faulted = run_hard_fault(w, config);

  EXPECT_EQ(faulted.final_state_digest, baseline.final_state_digest);
  // Silent frame loss never tears the session down: recovery must come
  // from the liveness timeout and a per-switch retry, not a resync.
  EXPECT_EQ(faulted.faults.crashes, 0u);
  EXPECT_EQ(faulted.faults.resyncs, 0u);
  EXPECT_GE(faulted.faults.timeouts, 1u);
  EXPECT_GE(faulted.faults.retries, 1u);
  EXPECT_EQ(faulted.faults.frames_lost, 2u);
}

// ------------------------------------------------------------ plan cache
// A fault-driven resync rewrites shadow-table state, so any plan compiled
// before it may describe a world the switches no longer hold. The
// controller bumps resync_generation() per reconnect handled, and
// PlanCache::lookup must discard (and count) plans from older generations
// instead of serving their stale pre-encoded frames.
TEST(FailureInjectionTest, ResyncInvalidatesCompiledPlans) {
  sim::Simulator sim;
  Rng rng{99};
  controller::ControllerConfig ctrl_config;
  // Fault tolerance on: shadow tables are maintained, so the reconnect
  // resync has an image to replay (and the pre-encoded fast path is
  // ineligible - plan submissions take the Message fallback, exactly the
  // regime a faulty deployment runs in).
  ctrl_config.liveness_timeout = sim::milliseconds(3);
  controller::Controller ctrl(sim, ctrl_config);
  channel::ChannelConfig channel_config;
  channel_config.latency = sim::LatencyModel::constant(sim::microseconds(100));
  switchsim::SwitchConfig switch_config;
  switch_config.install_latency =
      sim::LatencyModel::constant(sim::microseconds(50));

  std::map<NodeId, std::unique_ptr<switchsim::SimSwitch>> switches;
  std::vector<std::unique_ptr<channel::DuplexChannel>> channels;
  for (NodeId node : {NodeId{1}, NodeId{2}}) {
    auto sw = std::make_unique<switchsim::SimSwitch>(sim, node, node,
                                                    switch_config, rng.fork());
    auto duplex =
        std::make_unique<channel::DuplexChannel>(sim, channel_config, rng);
    auto* sw_ptr = sw.get();
    auto* duplex_ptr = duplex.get();
    duplex->to_switch.set_receiver(
        [sw_ptr](const proto::Message& m) { sw_ptr->receive(m); });
    duplex->to_controller.set_receiver(
        [&ctrl, node](const proto::Message& m) { ctrl.on_message(node, m); });
    sw->set_controller_link([duplex_ptr](const proto::Message& m) {
      duplex_ptr->to_controller.send(m);
    });
    ctrl.attach_switch(node, [duplex_ptr](const proto::Message& m) {
      duplex_ptr->to_switch.send(m);
    });
    switches.emplace(node, std::move(sw));
    channels.push_back(std::move(duplex));
  }

  controller::UpdateRequest request;
  request.name = "cached-template";
  request.flow = 7;
  proto::FlowMod mod;
  mod.command = proto::FlowModCommand::kAdd;
  mod.priority = 100;
  mod.match.flow = 7;
  mod.action = flow::Action::forward(2);
  request.rounds = {{controller::RoundOp{1, mod, {}}},
                    {controller::RoundOp{2, mod, {}}}};

  controller::PlanCache cache;
  const std::uint64_t key = 0xfeedULL;
  const std::uint64_t gen0 = ctrl.resync_generation();
  std::shared_ptr<const controller::CompiledPlan> plan =
      controller::compile_plan(request, gen0);
  cache.store(key, plan);
  ctrl.submit_plan(plan, 0, std::nullopt);
  sim.run();
  ASSERT_TRUE(ctrl.idle());
  flow::Packet p;
  p.flow = 7;
  EXPECT_TRUE(switches[1]->table().lookup(p).has_value());

  // Warm lookup at the unchanged generation: a hit, same plan object.
  EXPECT_EQ(cache.lookup(key, ctrl.resync_generation()), plan);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.invalidations(), 0u);

  // Cold-reboot fault: the reconnect Hello drives a shadow resync, which
  // must bump the generation and restore the wiped rule.
  switches[1]->crash(/*lose_state=*/true);
  EXPECT_FALSE(switches[1]->table().lookup(p).has_value());
  switches[1]->restart();
  sim.run();
  const std::uint64_t gen1 = ctrl.resync_generation();
  EXPECT_GT(gen1, gen0);
  EXPECT_GE(ctrl.resyncs(), 1u);
  EXPECT_TRUE(switches[1]->table().lookup(p).has_value());

  // The stale plan is discarded, not served.
  EXPECT_EQ(cache.lookup(key, gen1), nullptr);
  EXPECT_EQ(cache.invalidations(), 1u);
  EXPECT_EQ(cache.size(), 0u);

  // Recompile at the post-resync generation: the template is cacheable
  // again and the submission completes normally.
  std::shared_ptr<const controller::CompiledPlan> fresh =
      controller::compile_plan(request, gen1);
  cache.store(key, fresh);
  ctrl.submit_plan(fresh, 0, std::nullopt);
  sim.run();
  EXPECT_TRUE(ctrl.idle());
  EXPECT_EQ(cache.lookup(key, ctrl.resync_generation()), fresh);
  EXPECT_EQ(cache.compiles(), 2u);
  EXPECT_TRUE(switches[2]->table().lookup(p).has_value());
}

TEST(FailureInjectionTest, NonEmptyScheduleDefaultsLivenessDetection) {
  // A fault schedule with fault tolerance left unconfigured must not hang
  // the run: the executor arms the default liveness timeout.
  const testutil::Workload w = testutil::disjoint_workload(1);
  ExecutorConfig config = hard_fault_config();
  config.controller.liveness_timeout = 0;
  config.faults.add(crash_event(2.05, 4, 1, /*lose_state=*/true));
  const MultiFlowExecutionResult result = run_hard_fault(w, config);
  EXPECT_EQ(result.faults.crashes, 1u);
  EXPECT_GE(result.faults.resyncs, 1u);
}

}  // namespace
}  // namespace tsu::core
