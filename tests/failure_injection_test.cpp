// Failure injection: the guarantees must survive degraded control
// channels - loss (surfacing as TCP retransmit delays), heavy-tailed
// installs, pathological jitter - and the executor must degrade loudly,
// not silently, on misuse.
#include <gtest/gtest.h>

#include "tsu/core/executor.hpp"
#include "tsu/core/planner.hpp"
#include "tsu/topo/instances.hpp"

namespace tsu::core {
namespace {

const topo::Fig1& fig1() {
  static const topo::Fig1 fig = topo::fig1();
  return fig;
}

update::Schedule wayup_schedule() {
  return plan(fig1().instance, Algorithm::kWayUp).value().schedule;
}

TEST(FailureInjectionTest, LossyChannelStillCompletesAndStaysSecure) {
  ExecutorConfig config;
  config.channel.loss_probability = 0.3;
  config.channel.retransmit_timeout = sim::milliseconds(20);
  const update::Schedule schedule = wayup_schedule();
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    config.seed = seed;
    const Result<ExecutionResult> result =
        execute(fig1().instance, schedule, config);
    ASSERT_TRUE(result.ok()) << result.error().to_string();
    EXPECT_EQ(result.value().traffic.bypassed, 0u) << "seed " << seed;
    EXPECT_GT(result.value().update_ms(), 0.0);
  }
}

TEST(FailureInjectionTest, LossMakesUpdatesSlowerNotBroken) {
  const update::Schedule schedule = wayup_schedule();
  ExecutorConfig clean;
  clean.seed = 5;
  clean.with_traffic = false;
  ExecutorConfig lossy = clean;
  lossy.channel.loss_probability = 0.4;
  lossy.channel.retransmit_timeout = sim::milliseconds(25);
  const Result<ExecutionResult> fast =
      execute(fig1().instance, schedule, clean);
  const Result<ExecutionResult> slow =
      execute(fig1().instance, schedule, lossy);
  ASSERT_TRUE(fast.ok() && slow.ok());
  EXPECT_GT(slow.value().update_ms(), fast.value().update_ms());
}

TEST(FailureInjectionTest, HeavyTailedInstallsKeepWaypointSafety) {
  ExecutorConfig config;
  config.switch_config.install_latency = sim::LatencyModel::pareto(
      sim::microseconds(200), sim::milliseconds(200), 1.1);
  const update::Schedule schedule = wayup_schedule();
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    config.seed = seed;
    const Result<ExecutionResult> result =
        execute(fig1().instance, schedule, config);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().traffic.bypassed, 0u) << "seed " << seed;
  }
}

TEST(FailureInjectionTest, ExtremeJitterKeepsPeacockLoopFree) {
  const Result<PlanOutcome> planned =
      plan(fig1().instance, Algorithm::kPeacock);
  ASSERT_TRUE(planned.ok());
  ExecutorConfig config;
  config.channel.latency = sim::LatencyModel::uniform(
      sim::microseconds(10), sim::milliseconds(100));
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    config.seed = seed;
    const Result<ExecutionResult> result =
        execute(fig1().instance, planned.value().schedule, config);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().traffic.looped, 0u) << "seed " << seed;
    EXPECT_EQ(result.value().traffic.ttl_expired, 0u) << "seed " << seed;
  }
}

TEST(FailureInjectionTest, SlowChannelDoesNotReorderWithinSwitch) {
  // With high jitter, per-switch FIFO must still hold: the final rule at
  // every switch is the last one sent (the new path works end to end).
  const update::Schedule schedule = wayup_schedule();
  ExecutorConfig config;
  config.channel.latency = sim::LatencyModel::uniform(
      sim::microseconds(10), sim::milliseconds(50));
  config.with_traffic = false;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    config.seed = seed;
    const Result<ExecutionResult> result =
        execute(fig1().instance, schedule, config);
    ASSERT_TRUE(result.ok());
  }
}

TEST(FailureInjectionTest, ExecutorRejectsMismatchedQueueInputs) {
  const update::Schedule schedule = wayup_schedule();
  const Result<std::vector<ExecutionResult>> empty =
      execute_queue({}, {}, ExecutorConfig{});
  EXPECT_FALSE(empty.ok());
  const Result<std::vector<ExecutionResult>> mismatched = execute_queue(
      {&fig1().instance}, {&schedule, &schedule}, ExecutorConfig{});
  EXPECT_FALSE(mismatched.ok());
}

TEST(FailureInjectionTest, TrafficlessRunsReportNoPackets) {
  ExecutorConfig config;
  config.with_traffic = false;
  const Result<ExecutionResult> result =
      execute(fig1().instance, wayup_schedule(), config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().traffic.total, 0u);
  EXPECT_EQ(result.value().packets_injected, 0u);
  EXPECT_GT(result.value().update_ms(), 0.0);
}

TEST(FailureInjectionTest, RetransmissionsAreCounted) {
  ExecutorConfig config;
  config.seed = 3;
  config.channel.loss_probability = 0.5;
  config.with_traffic = false;
  const Result<ExecutionResult> result =
      execute(fig1().instance, wayup_schedule(), config);
  ASSERT_TRUE(result.ok());
  // Frames were still all delivered (the update completed); the loss shows
  // up as latency, mirroring TCP under the OpenFlow session.
  EXPECT_GT(result.value().frames_sent, 0u);
}

}  // namespace
}  // namespace tsu::core
