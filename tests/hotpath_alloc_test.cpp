// Zero-allocation regression tests for the hot path. The global
// operator-new hooks (util/alloc_hooks.hpp - included in THIS translation
// unit only) count every heap allocation in the process; each scenario
// warms the relevant pools to their high-water mark, opens a measurement
// window, drives the steady-state loop, and asserts the window saw ZERO
// allocations:
//
//   - EventQueue push/pop churn over a warm slot arena (the "1000-flow
//     pool" hot loop),
//   - a full channel round-trip (pooled frame -> codec -> delivery event),
//   - data-plane packet hops across live flow tables,
//   - ShardedSim::run_parallel epochs with cross-shard ring posts.
//
// Any new per-event allocation anywhere on these paths turns a green test
// red with an exact count - the same counter the bench JSON publishes.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "tsu/channel/channel.hpp"
#include "tsu/core/service.hpp"
#include "tsu/dataplane/monitor.hpp"
#include "tsu/dataplane/traffic.hpp"
#include "tsu/proto/messages.hpp"
#include "tsu/sim/event_queue.hpp"
#include "tsu/sim/sharded.hpp"
#include "tsu/sim/simulator.hpp"
#include "tsu/sim/thread_pool.hpp"
#include "tsu/switchsim/switch.hpp"
#include "tsu/util/alloc_hooks.hpp"
#include "tsu/util/rng.hpp"

namespace tsu {
namespace {

std::uint64_t allocs() { return alloc_hooks::allocations(); }

TEST(HotPathAllocTest, EventQueuePoolHotLoopAllocatesNothing) {
  // The 1000-flow pool hot loop: 1000 events concurrently pending (one
  // per in-flight flow), each pop immediately replaced by a push. After
  // one warmup lap over the full pattern, 100k further cycles must touch
  // the allocator zero times - push recycles retired slots, the heap
  // vectors live off their high-water capacity.
  sim::EventQueue q;
  std::uint64_t fired = 0;
  sim::SimTime t = 0;
  auto cycle = [&]() {
    auto event = q.pop();
    event.fn();
    q.push(++t, [&fired]() { ++fired; });
  };
  for (int i = 0; i < 1000; ++i) q.push(++t, [&fired]() { ++fired; });
  // Warmup lap: the same loop body, plus cancel churn so the free list
  // reaches its high-water capacity too.
  for (int i = 0; i < 1000; ++i) {
    cycle();
    q.cancel(q.push(t + 500000, []() {}));
  }
  const std::uint64_t before = allocs();
  for (int i = 0; i < 100000; ++i) cycle();
  const std::uint64_t during = allocs() - before;
  EXPECT_EQ(during, 0u) << "steady-state push/pop hit the allocator";

  // Cancel churn stays free as well once warm.
  const std::uint64_t before_cancel = allocs();
  for (int i = 0; i < 1000; ++i) q.cancel(q.push(t + 500000, []() {}));
  EXPECT_EQ(allocs() - before_cancel, 0u)
      << "cancel/retire cycled slots through the allocator";

  // 1000 seeded + 1000 warmup cycles + 100k measured cycles all fire;
  // the cancelled probes never do.
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, 102000u);
}

TEST(HotPathAllocTest, ChannelRoundTripAllocatesNothingOnceWarm) {
  // Send -> pooled frame -> codec encode_into -> delivery event -> decode
  // -> receiver, repeatedly. After the frame pool and event arena warm up,
  // a barrier round-trip is allocation-free end to end.
  sim::Simulator sim;
  channel::ChannelConfig config;
  channel::ControlChannel ch(sim, config, Rng(7));
  std::uint64_t received = 0;
  ch.set_receiver([&](const proto::Message& message) {
    if (message.type() == proto::MsgType::kBarrierRequest) ++received;
  });
  for (std::uint32_t i = 0; i < 64; ++i) {
    ch.send(proto::make_barrier_request(i));
    sim.run();
  }
  ASSERT_EQ(received, 64u);
  const std::uint64_t before = allocs();
  for (std::uint32_t i = 0; i < 1000; ++i) {
    ch.send(proto::make_barrier_request(i));
    sim.run();
  }
  const std::uint64_t during = allocs() - before;
  EXPECT_EQ(during, 0u) << "channel round-trip hit the allocator";
  EXPECT_EQ(received, 1064u);
}

TEST(HotPathAllocTest, PacketHopsAllocateNothingOnceWarm) {
  // A packet forwarding down a 4-switch chain: every hop is a pooled
  // event whose closure (LivePacket included) must stay inline, every
  // table lookup pure value work. The monitor's bucket width is huge so
  // its timeline never grows mid-run; the measurement window is bracketed
  // by two probe events inside the simulation itself.
  sim::Simulator sim;
  switchsim::SwitchConfig sw_config;
  std::vector<std::unique_ptr<switchsim::SimSwitch>> storage;
  std::vector<switchsim::SimSwitch*> switches(4, nullptr);
  for (NodeId v = 0; v < 4; ++v) {
    storage.push_back(std::make_unique<switchsim::SimSwitch>(
        sim, v, v, sw_config, Rng(v + 1)));
    switches[v] = storage.back().get();
  }
  auto rule = [&](NodeId at, flow::Action action) {
    switches[at]->table().add(
        flow::FlowRule{flow::Match::exact_flow(1), action, 100, 0});
  };
  rule(0, flow::Action::forward(1));
  rule(1, flow::Action::forward(2));
  rule(2, flow::Action::forward(3));
  rule(3, flow::Action::deliver());

  dataplane::ConsistencyMonitor monitor(sim::milliseconds(1000000));
  dataplane::TrafficConfig config;
  config.flow = 1;
  config.ingress = 0;
  config.egress = 3;
  config.interarrival = sim::LatencyModel::constant(sim::milliseconds(1));
  config.link_latency = sim::LatencyModel::constant(sim::microseconds(10));
  config.stop = sim::milliseconds(50);
  dataplane::TrafficSource source(sim, switches, config, Rng(9), monitor);

  std::uint64_t window_start = 0;
  std::uint64_t window_end = 0;
  // 10ms of traffic warms the arena and the monitor; 10..45ms is measured.
  sim.schedule_at(sim::milliseconds(10), [&]() { window_start = allocs(); });
  sim.schedule_at(sim::milliseconds(45), [&]() { window_end = allocs(); });
  source.start();
  sim.run();

  EXPECT_EQ(source.in_flight(), 0u);
  EXPECT_GE(monitor.report().delivered, 45u);
  EXPECT_EQ(window_end - window_start, 0u)
      << "packet injection/hops hit the allocator mid-run";
}

TEST(HotPathAllocTest, SetupWatermarkFreezesTheSetupCount) {
  // The setup watermark splits the process-global allocation count into a
  // paid-once setup figure and the steady state: mark_setup_complete()
  // snapshots the counter, and later allocations move allocations() but
  // never the frozen setup_allocations() figure (the split the bench JSON
  // publishes as setup_allocs vs steady_allocs).
  auto warm = std::make_unique<int>(1);
  alloc_hooks::mark_setup_complete();
  const std::uint64_t mark = alloc_hooks::setup_allocations();
  EXPECT_GE(mark, 1u);
  auto extra = std::make_unique<int>(2);
  auto more = std::make_unique<int>(3);
  EXPECT_EQ(alloc_hooks::setup_allocations(), mark)
      << "the watermark moved after mark_setup_complete()";
  EXPECT_GT(allocs(), mark);
  // Re-marking captures the new count - each measurement phase can reset
  // its own baseline.
  alloc_hooks::mark_setup_complete();
  EXPECT_GT(alloc_hooks::setup_allocations(), mark);
}

// Self-perpetuating shard-local work: one event chain per shard keeps both
// shards eligible so run_parallel uses the worker pool.
struct Ticker {
  sim::Simulator* shard = nullptr;
  std::uint64_t remaining = 0;
  std::uint64_t fired = 0;

  void tick() {
    ++fired;
    if (remaining == 0) return;
    --remaining;
    shard->schedule(7, [this]() { tick(); }, sim::EventScope::kLocal);
  }
};

// A packet-like hand-off bouncing between two shards through the SPSC
// mailbox rings.
struct Bouncer {
  sim::ShardedSim* group = nullptr;
  std::uint64_t remaining = 0;
  std::uint64_t bounces = 0;

  void bounce(std::size_t at) {
    ++bounces;
    if (remaining == 0) return;
    --remaining;
    const std::size_t to = 1 - at;
    group->post(to, at, group->shard(at).now() + 10,
                [this, to]() { bounce(to); });
  }
};

TEST(HotPathAllocTest, ParallelEpochsAllocateNothingOnceWarm) {
  // run_parallel steady state: horizon computation, pool dispatch, epoch
  // stepping, ring posts and sync-point drains - all off warm pools. The
  // warmup run pays every first-touch allocation (pool lanes, epoch
  // counters, drain scratch, event arenas); the measured run must be free.
  sim::ShardedSim group(2);
  sim::ThreadPool pool(2);
  const sim::Duration lookahead = 10;  // lower-bounds the bounce post delay

  Ticker tickers[2] = {{&group.shard(0), 2000}, {&group.shard(1), 2000}};
  Bouncer bouncer{&group, 500};
  group.schedule_on(0, 5, [&]() { tickers[0].tick(); },
                    sim::EventScope::kLocal);
  group.schedule_on(1, 5, [&]() { tickers[1].tick(); },
                    sim::EventScope::kLocal);
  group.schedule_on(0, 5, [&]() { bouncer.bounce(0); },
                    sim::EventScope::kLocal);
  group.run_parallel(pool, lookahead);
  ASSERT_EQ(tickers[0].fired, 2001u);
  ASSERT_EQ(bouncer.bounces, 501u);
  ASSERT_GT(group.parallel_epochs(), 0u);

  // Identical workload again, this time under measurement. The kick
  // events are pushed BEFORE the window opens.
  tickers[0].remaining = 2000;
  tickers[1].remaining = 2000;
  bouncer.remaining = 500;
  group.schedule_on(0, 5, [&]() { tickers[0].tick(); },
                    sim::EventScope::kLocal);
  group.schedule_on(1, 5, [&]() { tickers[1].tick(); },
                    sim::EventScope::kLocal);
  group.schedule_on(0, 5, [&]() { bouncer.bounce(0); },
                    sim::EventScope::kLocal);
  const std::uint64_t before = allocs();
  group.run_parallel(pool, lookahead);
  const std::uint64_t during = allocs() - before;
  EXPECT_EQ(during, 0u) << "parallel epochs hit the allocator";
  EXPECT_EQ(tickers[0].fired, 4002u);
  EXPECT_EQ(bouncer.bounces, 1002u);
  EXPECT_EQ(group.overflow_posts(), 0u)
      << "the bounce stream should fit the SPSC rings";
}

TEST(HotPathAllocTest, WarmCacheSubmissionWindowAllocatesNothing) {
  // The compiled-plan cache's whole point: after the first submission of
  // each (template, direction) pair compiled its plan, every further
  // submission through execute_service is allocation-free end to end -
  // cache lookup, submit_plan, xid-patched pre-encoded sends, barrier
  // replies, completion recording, admission release, and the pending-ring
  // arrival path all run off warm pools. The window opens via the snapshot
  // feed once the run is unambiguously warm (every template submitted both
  // directions many times over, the 256-entry completion ring wrapped, all
  // pools at high-water) and closes before the drain.
  core::ServiceConfig config;
  config.exec.seed = 17;
  config.exec.with_traffic = false;
  config.flows = 4;
  config.pool_switches = 24;
  config.arrival_rate_per_sec = 20000;
  config.target_completions = 1200;
  config.snapshot_interval = sim::milliseconds(1);
  config.snapshot_window = 8;

  std::uint64_t window_start = 0;
  std::uint64_t window_end = 0;
  std::uint64_t in_window_completions = 0;
  std::uint64_t window_opened_at = 0;
  config.on_snapshot = [&](const core::ServiceSnapshot& snapshot) {
    if (window_start == 0 && snapshot.completed >= 400) {
      window_start = allocs();
      window_opened_at = snapshot.completed;
    } else if (window_start != 0 && window_end == 0 &&
               snapshot.completed >= 1000) {
      window_end = allocs();
      in_window_completions = snapshot.completed - window_opened_at;
    }
  };

  const Result<core::ServiceResult> run = core::execute_service(config);
  ASSERT_TRUE(run.ok()) << run.error().to_string();
  const core::ServiceResult& result = run.value();

  ASSERT_NE(window_start, 0u) << "warm window never opened";
  ASSERT_NE(window_end, 0u) << "warm window never closed";
  EXPECT_GE(in_window_completions, 400u);
  EXPECT_EQ(window_end - window_start, 0u)
      << "warm-cache submissions hit the allocator";

  // One compile per (template, direction), everything else a hit; a
  // fault-free run never invalidates. The drain leaves no residue.
  EXPECT_EQ(result.stats.plan_compiles, 8u);
  EXPECT_EQ(result.stats.plan_hits, result.stats.submitted - 8u);
  EXPECT_EQ(result.stats.plan_invalidations, 0u);
  EXPECT_EQ(result.stats.completed, 1200u);
  EXPECT_EQ(result.steady_state_entries_final, 0u);
}

}  // namespace
}  // namespace tsu
