// End-to-end tests: planner -> controller -> channels -> switches ->
// data plane, on the paper's Figure 1 scenario. These are the C++
// equivalent of the demo itself.
#include <gtest/gtest.h>

#include "tsu/core/experiment.hpp"
#include "tsu/core/executor.hpp"
#include "tsu/core/planner.hpp"
#include "tsu/topo/instances.hpp"

namespace tsu::core {
namespace {

ExecutorConfig harsh_async_config(std::uint64_t seed) {
  // Heavy jitter on both the channel and the installs: the conditions under
  // which one-shot updates visibly break.
  ExecutorConfig config;
  config.seed = seed;
  config.channel.latency =
      sim::LatencyModel::uniform(sim::microseconds(100), sim::milliseconds(8));
  config.switch_config.install_latency =
      sim::LatencyModel::lognormal(sim::milliseconds(2), 1.0);
  config.traffic_interarrival =
      sim::LatencyModel::constant(sim::microseconds(100));
  config.link_latency = sim::LatencyModel::constant(sim::microseconds(20));
  return config;
}

TEST(IntegrationTest, WayUpOnFig1NeverBypassesWaypoint) {
  const topo::Fig1 fig = topo::fig1();
  const Result<PlanOutcome> planned =
      plan(fig.instance, Algorithm::kWayUp);
  ASSERT_TRUE(planned.ok());
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const Result<ExecutionResult> result =
        execute(fig.instance, planned.value().schedule,
                harsh_async_config(seed));
    ASSERT_TRUE(result.ok()) << result.error().to_string();
    EXPECT_EQ(result.value().traffic.bypassed, 0u) << "seed " << seed;
    EXPECT_GT(result.value().traffic.delivered, 0u);
  }
}

TEST(IntegrationTest, OneShotOnFig1BypassesUnderAsynchrony) {
  const topo::Fig1 fig = topo::fig1();
  const Result<PlanOutcome> planned =
      plan(fig.instance, Algorithm::kOneShot);
  ASSERT_TRUE(planned.ok());
  std::size_t bypassed_runs = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const Result<ExecutionResult> result =
        execute(fig.instance, planned.value().schedule,
                harsh_async_config(seed));
    ASSERT_TRUE(result.ok());
    if (result.value().traffic.bypassed > 0) ++bypassed_runs;
  }
  // The security violation the paper demos must actually materialize.
  EXPECT_GT(bypassed_runs, 0u);
}

TEST(IntegrationTest, PeacockOnFig1NeverLoops) {
  const topo::Fig1 fig = topo::fig1();
  const Result<PlanOutcome> planned =
      plan(fig.instance, Algorithm::kPeacock);
  ASSERT_TRUE(planned.ok());
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Result<ExecutionResult> result =
        execute(fig.instance, planned.value().schedule,
                harsh_async_config(seed));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().traffic.looped, 0u) << "seed " << seed;
    EXPECT_EQ(result.value().traffic.ttl_expired, 0u) << "seed " << seed;
  }
}

TEST(IntegrationTest, UpdateMetricsAreConsistent) {
  const topo::Fig1 fig = topo::fig1();
  const Result<PlanOutcome> planned = plan(fig.instance, Algorithm::kWayUp);
  ASSERT_TRUE(planned.ok());
  const Result<ExecutionResult> result =
      execute(fig.instance, planned.value().schedule, ExecutorConfig{});
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  const ExecutionResult& r = result.value();
  // 4 semantic rounds + cleanup.
  ASSERT_EQ(r.update.rounds.size(), 5u);
  for (std::size_t i = 1; i < r.update.rounds.size(); ++i)
    EXPECT_GE(r.update.rounds[i].started, r.update.rounds[i - 1].finished);
  EXPECT_EQ(r.update.flow_mods_sent, 11u);  // 8 touched + 3 cleanup
  EXPECT_GT(r.update.barriers_sent, 0u);
  EXPECT_GT(r.frames_sent, 0u);
  EXPECT_GT(r.control_bytes, 0u);
  EXPECT_GT(r.update_ms(), 0.0);
}

TEST(IntegrationTest, MoreRoundsTakeLonger) {
  const topo::Fig1 fig = topo::fig1();
  ExecutorConfig config;
  config.with_traffic = false;
  const Result<PlanOutcome> oneshot = plan(fig.instance, Algorithm::kOneShot);
  const Result<PlanOutcome> wayup = plan(fig.instance, Algorithm::kWayUp);
  ASSERT_TRUE(oneshot.ok() && wayup.ok());
  const Result<ExecutionResult> fast =
      execute(fig.instance, oneshot.value().schedule, config);
  const Result<ExecutionResult> safe =
      execute(fig.instance, wayup.value().schedule, config);
  ASSERT_TRUE(fast.ok() && safe.ok());
  EXPECT_LT(fast.value().update_ms(), safe.value().update_ms());
}

TEST(IntegrationTest, IntervalStretchesUpdateTime) {
  const topo::Fig1 fig = topo::fig1();
  const Result<PlanOutcome> planned = plan(fig.instance, Algorithm::kWayUp);
  ASSERT_TRUE(planned.ok());
  ExecutorConfig config;
  config.with_traffic = false;
  const Result<ExecutionResult> tight =
      execute(fig.instance, planned.value().schedule, config);
  config.interval = sim::milliseconds(25);
  const Result<ExecutionResult> spaced =
      execute(fig.instance, planned.value().schedule, config);
  ASSERT_TRUE(tight.ok() && spaced.ok());
  // 4 inter-round gaps (incl. before cleanup) of 25 ms each.
  EXPECT_NEAR(spaced.value().update_ms() - tight.value().update_ms(), 100.0,
              1.0);
}

TEST(IntegrationTest, ExecuteQueueSerializes) {
  const topo::Fig1 fig = topo::fig1();
  Rng rng(4242);
  topo::RandomInstanceOptions gen;
  const update::Instance other = topo::random_instance(rng, gen);
  const Result<PlanOutcome> first = plan(fig.instance, Algorithm::kWayUp);
  const Result<PlanOutcome> second = plan(other, Algorithm::kWayUp);
  ASSERT_TRUE(first.ok() && second.ok());

  ExecutorConfig config;
  config.with_traffic = false;
  const Result<std::vector<ExecutionResult>> results = execute_queue(
      {&fig.instance, &other},
      {&first.value().schedule, &second.value().schedule}, config);
  ASSERT_TRUE(results.ok()) << results.error().to_string();
  ASSERT_EQ(results.value().size(), 2u);
  const auto& m1 = results.value()[0].update;
  const auto& m2 = results.value()[1].update;
  EXPECT_GE(m2.started, m1.finished);
  EXPECT_GT(m2.queueing_delay(), 0u);
  EXPECT_EQ(m1.queueing_delay(), 0u);
}

TEST(IntegrationTest, RunExperimentCombinesPlanCheckExecute) {
  const topo::Fig1 fig = topo::fig1();
  const Result<ExperimentResult> result =
      run_experiment(fig.instance, Algorithm::kWayUp);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_TRUE(result.value().check.ok);
  EXPECT_EQ(result.value().schedule.round_count(), 4u);
  EXPECT_GT(result.value().execution.traffic.total, 0u);
  const std::string line = result.value().summary_line();
  EXPECT_NE(line.find("wayup"), std::string::npos);
  EXPECT_NE(line.find("check=OK"), std::string::npos);
}

TEST(IntegrationTest, SweepSeedsAggregates) {
  const topo::Fig1 fig = topo::fig1();
  const Result<PlanOutcome> planned = plan(fig.instance, Algorithm::kWayUp);
  ASSERT_TRUE(planned.ok());
  const Result<SeedSweep> sweep =
      sweep_seeds(fig.instance, planned.value().schedule, ExecutorConfig{},
                  {1, 2, 3, 4, 5});
  ASSERT_TRUE(sweep.ok());
  EXPECT_EQ(sweep.value().runs, 5u);
  EXPECT_EQ(sweep.value().update_ms.count(), 5u);
  EXPECT_EQ(sweep.value().runs_with_bypass, 0u);
  EXPECT_GT(sweep.value().update_ms.mean(), 0.0);
}

TEST(PlannerTest, AlgorithmNamesRoundTrip) {
  for (const Algorithm algorithm :
       {Algorithm::kOneShot, Algorithm::kTwoPhase, Algorithm::kWayUp,
        Algorithm::kPeacock, Algorithm::kSlfGreedy, Algorithm::kOptimal}) {
    const auto parsed = algorithm_from_string(to_string(algorithm));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, algorithm);
  }
  EXPECT_FALSE(algorithm_from_string("quantum").has_value());
}

TEST(PlannerTest, VerifyOptionAttachesReport) {
  const topo::Fig1 fig = topo::fig1();
  PlannerOptions options;
  options.verify = true;
  const Result<PlanOutcome> outcome =
      plan(fig.instance, Algorithm::kOneShot, options);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome.value().report.has_value());
  EXPECT_FALSE(outcome.value().report->ok);  // OneShot is insecure on fig1
}

TEST(PlannerTest, DefaultPropertiesPerAlgorithm) {
  EXPECT_EQ(default_property(Algorithm::kWayUp, true), update::kWaypoint);
  EXPECT_EQ(default_property(Algorithm::kPeacock, true),
            update::kPeacockGuarantee);
  EXPECT_EQ(default_property(Algorithm::kOneShot, true),
            update::kTransientlySecure);
  EXPECT_EQ(default_property(Algorithm::kOneShot, false),
            update::kPeacockGuarantee);
}

}  // namespace
}  // namespace tsu::core
