#include <gtest/gtest.h>

#include "tsu/graph/algorithms.hpp"
#include "tsu/graph/graph.hpp"
#include "tsu/graph/path.hpp"

namespace tsu::graph {
namespace {

Digraph chain(std::size_t n) {
  Digraph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

// ---------------------------------------------------------------- Digraph --

TEST(DigraphTest, StartsEmpty) {
  const Digraph g;
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(DigraphTest, AddNodesAndEdges) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
}

TEST(DigraphTest, DuplicateEdgesIgnored) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(DigraphTest, AddNodeGrows) {
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  g.add_edge(a, b);
  EXPECT_TRUE(g.has_edge(a, b));
}

TEST(DigraphTest, EnsureNodesNeverShrinks) {
  Digraph g(5);
  g.ensure_nodes(3);
  EXPECT_EQ(g.node_count(), 5u);
  g.ensure_nodes(8);
  EXPECT_EQ(g.node_count(), 8u);
}

TEST(DigraphTest, InNeighborsTrackReverseEdges) {
  Digraph g(3);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  const auto in = g.in_neighbors(2);
  EXPECT_EQ(in.size(), 2u);
}

TEST(DigraphTest, MakeBidirectionalMirrorsEdges) {
  Digraph g = chain(3);
  g.make_bidirectional();
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 1));
  EXPECT_EQ(g.edge_count(), 4u);
}

TEST(DigraphTest, EdgesEnumeratesAll) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(2, 0);
  const auto edges = g.edges();
  EXPECT_EQ(edges.size(), 2u);
}

TEST(DigraphTest, ToDotContainsEdges) {
  Digraph g(2);
  g.add_edge(0, 1);
  EXPECT_NE(g.to_dot().find("0 -> 1"), std::string::npos);
}

TEST(DigraphDeathTest, SelfLoopRejected) {
  Digraph g(2);
  EXPECT_DEATH(g.add_edge(1, 1), "self-loops");
}

TEST(DigraphDeathTest, OutOfRangeEdgeRejected) {
  Digraph g(2);
  EXPECT_DEATH(g.add_edge(0, 5), "out of range");
}

// ------------------------------------------------------------- algorithms --

TEST(ReachabilityTest, ChainReachability) {
  const Digraph g = chain(4);
  const auto reach = reachable_from(g, 0);
  EXPECT_TRUE(reach[0]);
  EXPECT_TRUE(reach[3]);
  const auto reach2 = reachable_from(g, 2);
  EXPECT_FALSE(reach2[0]);
  EXPECT_TRUE(reach2[3]);
}

TEST(ReachabilityTest, DisconnectedComponentsUnreached) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const auto reach = reachable_from(g, 0);
  EXPECT_FALSE(reach[2]);
  EXPECT_FALSE(reach[3]);
}

TEST(AcyclicityTest, ChainIsAcyclic) { EXPECT_TRUE(is_acyclic(chain(5))); }

TEST(AcyclicityTest, CycleDetected) {
  Digraph g = chain(3);
  g.add_edge(2, 0);
  EXPECT_FALSE(is_acyclic(g));
}

TEST(AcyclicityTest, TwoNodeCycle) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_FALSE(is_acyclic(g));
}

TEST(AcyclicityTest, DiamondIsAcyclic) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  EXPECT_TRUE(is_acyclic(g));
}

TEST(CycleReachableTest, CycleBehindSourceFound) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 1);  // cycle 1<->2 reachable from 0
  EXPECT_TRUE(cycle_reachable_from(g, 0));
}

TEST(CycleReachableTest, CycleElsewhereIgnored) {
  Digraph g(5);
  g.add_edge(0, 1);   // source component: plain chain
  g.add_edge(3, 4);   // separate cycle 3<->4
  g.add_edge(4, 3);
  EXPECT_FALSE(cycle_reachable_from(g, 0));
  EXPECT_TRUE(cycle_reachable_from(g, 3));
}

TEST(CycleReachableTest, SelfReachingCycleAtSource) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_TRUE(cycle_reachable_from(g, 0));
}

TEST(TopologicalOrderTest, ValidOrderOnDag) {
  Digraph g(4);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const auto order = topological_order(g);
  ASSERT_TRUE(order.has_value());
  std::vector<std::size_t> position(4);
  for (std::size_t i = 0; i < order->size(); ++i) position[(*order)[i]] = i;
  for (const Edge& e : g.edges()) EXPECT_LT(position[e.from], position[e.to]);
}

TEST(TopologicalOrderTest, NulloptOnCycle) {
  Digraph g = chain(3);
  g.add_edge(2, 0);
  EXPECT_FALSE(topological_order(g).has_value());
}

TEST(ShortestPathTest, FindsDirectRoute) {
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 4);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  const Path p = shortest_path(g, 0, 4);
  EXPECT_EQ(p, (Path{0, 1, 4}));
}

TEST(ShortestPathTest, EmptyWhenUnreachable) {
  Digraph g(3);
  g.add_edge(0, 1);
  EXPECT_TRUE(shortest_path(g, 0, 2).empty());
}

TEST(ShortestPathTest, TrivialSourceEqualsTarget) {
  const Digraph g = chain(2);
  EXPECT_EQ(shortest_path(g, 0, 0), (Path{0}));
}

TEST(AvoidingPathTest, RoutesAroundBannedNode) {
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 4);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  const Path p = shortest_path_avoiding(g, 0, 4, 1);
  EXPECT_EQ(p, (Path{0, 2, 3, 4}));
}

TEST(AvoidingPathTest, EmptyWhenBanDisconnects) {
  const Digraph g = chain(4);
  EXPECT_TRUE(shortest_path_avoiding(g, 0, 3, 2).empty());
}

TEST(HasPathTest, Basics) {
  const Digraph g = chain(3);
  EXPECT_TRUE(has_path(g, 0, 2));
  EXPECT_FALSE(has_path(g, 2, 0));
}

// ------------------------------------------------------------------ paths --

TEST(PathTest, SimpleDetectsDuplicates) {
  EXPECT_TRUE(is_simple({1, 2, 3}));
  EXPECT_FALSE(is_simple({1, 2, 1}));
  EXPECT_TRUE(is_simple({}));
  EXPECT_TRUE(is_simple({7}));
}

TEST(PathTest, IsPathOfChecksEdges) {
  const Digraph g = chain(4);
  EXPECT_TRUE(is_path_of(g, {0, 1, 2, 3}));
  EXPECT_FALSE(is_path_of(g, {0, 2}));
  EXPECT_TRUE(is_path_of(g, {2}));  // trivial
}

TEST(PathTest, IndexAndContains) {
  const Path p{5, 3, 8};
  EXPECT_EQ(index_of(p, 3), 1u);
  EXPECT_FALSE(index_of(p, 9).has_value());
  EXPECT_TRUE(contains(p, 8));
  EXPECT_FALSE(contains(p, 1));
}

TEST(PathTest, SegmentInclusive) {
  const Path p{1, 2, 3, 4, 5};
  EXPECT_EQ(segment(p, 1, 3), (Path{2, 3, 4}));
  EXPECT_EQ(segment(p, 0, 0), (Path{1}));
}

TEST(PathTest, NextHop) {
  const Path p{1, 2, 3};
  EXPECT_EQ(next_hop(p, 1), 2u);
  EXPECT_EQ(next_hop(p, 2), 3u);
  EXPECT_FALSE(next_hop(p, 3).has_value());  // last node
  EXPECT_FALSE(next_hop(p, 9).has_value());  // absent
}

TEST(PathTest, ToStringUsesAngleBrackets) {
  EXPECT_EQ(to_string(Path{2, 1, 3}), "<2, 1, 3>");
  EXPECT_EQ(to_string(Path{}), "<>");
}

TEST(PathTest, AddPathEdgesGrowsGraph) {
  Digraph g;
  add_path_edges(g, {1, 5, 2});
  EXPECT_GE(g.node_count(), 6u);
  EXPECT_TRUE(g.has_edge(1, 5));
  EXPECT_TRUE(g.has_edge(5, 2));
}

// --------------------------------------------------- update path validation --

TEST(ValidatePathsTest, AcceptsGoodPair) {
  EXPECT_TRUE(validate_update_paths({1, 2, 3}, {1, 4, 3}, std::nullopt).ok());
}

TEST(ValidatePathsTest, AcceptsWaypointOnBoth) {
  EXPECT_TRUE(validate_update_paths({1, 2, 3}, {1, 2, 4, 3}, NodeId{2}).ok());
}

TEST(ValidatePathsTest, RejectsTooShort) {
  EXPECT_FALSE(validate_update_paths({1}, {1, 2}, std::nullopt).ok());
}

TEST(ValidatePathsTest, RejectsNonSimple) {
  EXPECT_FALSE(
      validate_update_paths({1, 2, 1, 3}, {1, 3}, std::nullopt).ok());
  EXPECT_FALSE(
      validate_update_paths({1, 3}, {1, 2, 2, 3}, std::nullopt).ok());
}

TEST(ValidatePathsTest, RejectsEndpointMismatch) {
  EXPECT_FALSE(validate_update_paths({1, 2, 3}, {2, 3}, std::nullopt).ok());
  EXPECT_FALSE(validate_update_paths({1, 2, 3}, {1, 4}, std::nullopt).ok());
}

TEST(ValidatePathsTest, RejectsWaypointIssues) {
  // Waypoint at the source / destination.
  EXPECT_FALSE(validate_update_paths({1, 2, 3}, {1, 2, 3}, NodeId{1}).ok());
  EXPECT_FALSE(validate_update_paths({1, 2, 3}, {1, 2, 3}, NodeId{3}).ok());
  // Waypoint missing from one of the paths.
  EXPECT_FALSE(validate_update_paths({1, 2, 3}, {1, 4, 3}, NodeId{2}).ok());
  EXPECT_FALSE(validate_update_paths({1, 4, 3}, {1, 2, 3}, NodeId{2}).ok());
}

}  // namespace
}  // namespace tsu::graph
