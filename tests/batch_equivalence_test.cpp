// Randomized batched-vs-unbatched equivalence: whatever the outbox flush
// policy (off | instant | window | adaptive), a run must install exactly
// the same final forwarding state, complete every update, and report zero
// safety-oracle violations - batching may only change frame packing and
// timing, never WHAT gets installed or the transient guarantees. 100 seeds
// x 4 batch modes = 400 executions over randomized shared-pool workloads,
// admission policies, concurrency limits, hold windows and byte budgets.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "tsu/core/executor.hpp"
#include "tsu/topo/instances.hpp"
#include "tsu/util/rng.hpp"

namespace tsu::core {
namespace {

constexpr controller::BatchMode kAllModes[] = {
    controller::BatchMode::kOff, controller::BatchMode::kInstant,
    controller::BatchMode::kWindow, controller::BatchMode::kAdaptive};

// Fast constant-latency control plane with sparse per-flow traffic: quick
// enough for 400 runs under sanitizers, busy enough that the consistency
// monitor sees real packets on every flow.
ExecutorConfig fast_config(std::uint64_t seed) {
  ExecutorConfig config;
  config.seed = seed;
  config.channel.latency = sim::LatencyModel::constant(sim::microseconds(200));
  config.switch_config.install_latency =
      sim::LatencyModel::constant(sim::microseconds(100));
  config.traffic_interarrival =
      sim::LatencyModel::constant(sim::milliseconds(1));
  config.link_latency = sim::LatencyModel::constant(sim::microseconds(20));
  config.warmup = sim::milliseconds(1);
  config.drain = sim::milliseconds(4);
  return config;
}

TEST(BatchEquivalenceTest, EveryBatchModeMatchesUnbatchedAcross100Seeds) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    Rng rng(seed);
    const std::size_t flows = 3 + rng.index(6);            // 3..8
    const std::size_t switches = 6 * (1 + rng.index(2));   // 6 or 12: shared
    const topo::PlannedPoolWorkload w =
        topo::planned_pool_workload(flows, switches).value();

    ExecutorConfig config = fast_config(seed);
    config.controller.admission =
        static_cast<controller::AdmissionPolicy>(rng.index(3));
    config.controller.max_in_flight = 1 + rng.index(flows);
    config.controller.batch_window =
        sim::microseconds(50 + rng.index(950));            // 50us..1ms
    config.controller.batch_bytes = 200 + rng.index(3800); // forces budget
                                                           // flushes sometimes

    std::optional<MultiFlowExecutionResult> baseline;  // batch_mode = off
    for (const controller::BatchMode mode : kAllModes) {
      config.controller.batch_mode = mode;
      const Result<MultiFlowExecutionResult> run =
          execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
      ASSERT_TRUE(run.ok()) << "seed " << seed << " mode "
                            << controller::to_string(mode) << ": "
                            << run.error().to_string();
      const MultiFlowExecutionResult& result = run.value();
      ASSERT_EQ(result.flows.size(), flows);

      // Safety oracle: zero transient violations under every flush policy.
      EXPECT_GT(result.aggregate.total, 0u) << "seed " << seed;
      EXPECT_EQ(result.aggregate.bypassed, 0u)
          << "seed " << seed << " mode " << controller::to_string(mode);
      EXPECT_EQ(result.aggregate.looped, 0u)
          << "seed " << seed << " mode " << controller::to_string(mode);
      EXPECT_EQ(result.aggregate.blackholed, 0u)
          << "seed " << seed << " mode " << controller::to_string(mode);

      // The hold window really is a bound, whatever this seed drew.
      EXPECT_LE(result.batching.max_hold, config.controller.batch_window)
          << "seed " << seed << " mode " << controller::to_string(mode);

      if (mode == controller::BatchMode::kOff) {
        EXPECT_EQ(result.batching.batches_sent, 0u) << "seed " << seed;
        baseline = result;
        continue;
      }

      // Identical final forwarding state, flow by flow and rule by rule.
      ASSERT_TRUE(baseline.has_value());
      EXPECT_EQ(result.final_state_digest, baseline->final_state_digest)
          << "seed " << seed << " mode " << controller::to_string(mode);
      // Per-flow violation counts match the unbatched run...
      for (std::size_t i = 0; i < flows; ++i) {
        const dataplane::MonitorReport& got = result.flows[i].traffic;
        const dataplane::MonitorReport& want = baseline->flows[i].traffic;
        ASSERT_EQ(got.bypassed, want.bypassed) << "seed " << seed << " flow " << i;
        ASSERT_EQ(got.looped, want.looped) << "seed " << seed << " flow " << i;
        ASSERT_EQ(got.blackholed, want.blackholed)
            << "seed " << seed << " flow " << i;
        // ...and so does the logical message count: batching repacks
        // frames, it never adds or drops FlowMods.
        EXPECT_EQ(result.flows[i].update.flow_mods_sent,
                  baseline->flows[i].update.flow_mods_sent)
            << "seed " << seed << " flow " << i;
      }
      // Coalescing can only remove frames.
      EXPECT_LE(result.frames_sent, baseline->frames_sent)
          << "seed " << seed << " mode " << controller::to_string(mode);
    }
  }
}

TEST(BatchEquivalenceTest, WindowedModesCutFramesOnSharedPool) {
  // 64 flows over 12 shared switches, all in flight at once: the windowed
  // outbox must pack cross-instant messages into markedly fewer frames
  // than both the unbatched and the same-instant-only baselines.
  const topo::PlannedPoolWorkload w =
      topo::planned_pool_workload(64, 12).value();
  ExecutorConfig config = fast_config(7);
  config.controller.max_in_flight = 64;
  config.controller.batch_window = sim::microseconds(300);

  MultiFlowExecutionResult by_mode[4];
  for (std::size_t i = 0; i < 4; ++i) {
    config.controller.batch_mode = kAllModes[i];
    const Result<MultiFlowExecutionResult> run =
        execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
    ASSERT_TRUE(run.ok()) << run.error().to_string();
    by_mode[i] = run.value();
  }
  const MultiFlowExecutionResult& off = by_mode[0];
  for (const std::size_t windowed : {2u, 3u}) {  // window, adaptive
    const MultiFlowExecutionResult& result = by_mode[windowed];
    EXPECT_EQ(result.final_state_digest, off.final_state_digest);
    // The acceptance bar: >= 30% fewer control frames than unbatched.
    EXPECT_LE(result.frames_sent * 10, off.frames_sent * 7)
        << controller::to_string(kAllModes[windowed]) << " sent "
        << result.frames_sent << " frames vs " << off.frames_sent;
    EXPECT_GT(result.batching.batches_sent, 0u);
    EXPECT_GT(result.batching.messages_coalesced, 0u);
    // Cross-instant packing: windowed modes beat same-instant coalescing.
    EXPECT_LT(result.frames_sent, by_mode[1].frames_sent);
  }
}

TEST(BatchEquivalenceTest, RunsAreDeterministicPerModeAndSeed) {
  const topo::PlannedPoolWorkload w =
      topo::planned_pool_workload(8, 6).value();
  for (const controller::BatchMode mode : kAllModes) {
    ExecutorConfig config = fast_config(42);
    config.controller.max_in_flight = 8;
    config.controller.batch_mode = mode;
    const Result<MultiFlowExecutionResult> a =
        execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
    const Result<MultiFlowExecutionResult> b =
        execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value().final_state_digest, b.value().final_state_digest);
    EXPECT_EQ(a.value().frames_sent, b.value().frames_sent);
    EXPECT_EQ(a.value().makespan, b.value().makespan);
    EXPECT_EQ(a.value().batching.batches_sent,
              b.value().batching.batches_sent);
  }
}

}  // namespace
}  // namespace tsu::core
