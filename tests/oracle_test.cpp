#include <gtest/gtest.h>

#include "tsu/topo/instances.hpp"
#include "tsu/update/oracle.hpp"
#include "tsu/util/rng.hpp"

namespace tsu::update {
namespace {

Instance fig1_instance() { return topo::fig1().instance; }

StateMask with_updates(const Instance& inst,
                       std::initializer_list<NodeId> nodes) {
  StateMask state = empty_state(inst);
  for (const NodeId v : nodes) state[v] = true;
  return state;
}

// ---------------------------------------------------------- state checks --

TEST(StateSatisfiesTest, InitialStateSatisfiesEverything) {
  const Instance inst = fig1_instance();
  EXPECT_TRUE(state_satisfies(inst, empty_state(inst),
                              kWaypoint | kLoopFree | kGlobalLoopFree |
                                  kBlackholeFree));
}

TEST(StateSatisfiesTest, FinalStateSatisfiesEverything) {
  const Instance inst = fig1_instance();
  EXPECT_TRUE(state_satisfies(inst, full_state(inst),
                              kWaypoint | kLoopFree | kBlackholeFree));
}

TEST(StateSatisfiesTest, BypassViolatesWaypointOnly) {
  const Instance inst = fig1_instance();
  // Y node 2 updated early: delivery around the waypoint.
  const StateMask state = with_updates(inst, {2, 7, 9, 10, 11});
  EXPECT_FALSE(state_satisfies(inst, state, kWaypoint));
  EXPECT_TRUE(state_satisfies(inst, state, kLoopFree));
  EXPECT_TRUE(state_satisfies(inst, state, kBlackholeFree));
}

TEST(StateSatisfiesTest, LoopViolatesLoopFreedom) {
  // old 0->1->2->3, new 0->2->1->3: updating only 2 creates 1<->2 on the
  // live path.
  Result<Instance> inst = Instance::make({0, 1, 2, 3}, {0, 2, 1, 3});
  ASSERT_TRUE(inst.ok());
  const StateMask state = with_updates(inst.value(), {2});
  EXPECT_FALSE(state_satisfies(inst.value(), state, kLoopFree));
  EXPECT_FALSE(state_satisfies(inst.value(), state, kGlobalLoopFree));
}

TEST(StateSatisfiesTest, OffPathLoopViolatesOnlyStrongLoopFreedom) {
  // old 0->1->2->3->4, new 0->3->2->1->4. Updating {3, 2} loops 2<->3 but
  // the live path 0->1->... wait: 1 keeps old rule ->2, so the loop IS
  // reachable. Use {2} plus nothing reroutes the source: old path hits 2,
  // then new rule 2->1, 1 old ->2: reachable loop again. For a stale loop
  // off the live path, reroute the source around it: update {0, 3, 2}.
  // 0->3 (new), 3->2 (new), 2->1 (new), 1->2 (old): 2 revisited - still
  // reachable. This family keeps every loop reachable; instead build one
  // where the new path avoids the loop segment entirely:
  // old 0->1->2->3, new 0->3 directly; auxiliary nodes 1,2 keep old rules.
  // Then no state update can loop. Conclusion: craft the stale loop with
  // two flows is out of scope here, so assert the simpler directional
  // claim: kGlobalLoopFree is strictly stronger than kLoopFree.
  Result<Instance> inst =
      Instance::make({0, 1, 2, 3, 4}, {0, 3, 2, 1, 4});
  ASSERT_TRUE(inst.ok());
  const StateMask state = with_updates(inst.value(), {0, 2});
  // Live path: 0->3(old? no - 0 updated -> 3) wait old_next(3)=4 so walk
  // 0,3,4 delivered; stale cycle 1->2(old), 2->1(new) sits off the path.
  EXPECT_TRUE(state_satisfies(inst.value(), state, kLoopFree));
  EXPECT_FALSE(state_satisfies(inst.value(), state, kGlobalLoopFree));
}

TEST(StateSatisfiesTest, BlackholeDetected) {
  Result<Instance> inst = Instance::make({0, 1, 2}, {0, 3, 2});
  ASSERT_TRUE(inst.ok());
  // 0 points to 3 before 3's rule is installed.
  const StateMask state = with_updates(inst.value(), {0});
  EXPECT_FALSE(state_satisfies(inst.value(), state, kBlackholeFree));
  EXPECT_TRUE(state_satisfies(inst.value(), state, kLoopFree));
}

// ----------------------------------------------------------- round safety --

TEST(RoundSafetyTest, InstallRoundIsSafe) {
  const Instance inst = fig1_instance();
  const std::vector<NodeId> installs{7, 9, 10, 11};
  EXPECT_TRUE(round_safe_exhaustive(inst, empty_state(inst), installs,
                                    kWaypoint | kLoopFree | kBlackholeFree));
  EXPECT_TRUE(round_safe_union_certificate(
      inst, empty_state(inst), installs,
      kWaypoint | kLoopFree | kBlackholeFree));
}

TEST(RoundSafetyTest, OneShotRoundIsUnsafeOnFig1) {
  const Instance inst = fig1_instance();
  EXPECT_FALSE(round_safe_exhaustive(inst, empty_state(inst), inst.touched(),
                                     kWaypoint));
  EXPECT_FALSE(round_safe_union_certificate(inst, empty_state(inst),
                                            inst.touched(), kWaypoint));
}

TEST(RoundSafetyTest, UnionCertificateIsSound) {
  // Whenever the certificate says safe, exhaustive agrees - across many
  // random instances and random rounds.
  Rng rng(2024);
  topo::RandomInstanceOptions options;
  options.old_interior_max = 5;
  options.new_len_max = 5;
  int certified = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const Instance inst = topo::random_instance(rng, options);
    const std::vector<NodeId>& touched = inst.touched();
    if (touched.empty()) continue;
    // Random applied set and random round from the rest.
    StateMask applied = empty_state(inst);
    std::vector<NodeId> round;
    for (const NodeId v : touched) {
      if (rng.bernoulli(0.3))
        applied[v] = true;
      else if (rng.bernoulli(0.5))
        round.push_back(v);
    }
    if (round.empty()) continue;
    for (const std::uint32_t mask :
         {kWaypoint, kLoopFree, kGlobalLoopFree, kBlackholeFree}) {
      if (round_safe_union_certificate(inst, applied, round, mask)) {
        ++certified;
        EXPECT_TRUE(round_safe_exhaustive(inst, applied, round, mask))
            << inst.to_string() << " property " << property_name(mask);
      }
    }
  }
  EXPECT_GT(certified, 50);  // the check must actually exercise both sides
}

TEST(RoundSafetyTest, ExhaustiveMatchesCertificateForStrongLoopFreedom) {
  // For kGlobalLoopFree the union certificate is exact: both directions.
  Rng rng(99);
  topo::RandomInstanceOptions options;
  options.old_interior_max = 4;
  options.new_len_max = 4;
  options.with_waypoint = false;
  for (int trial = 0; trial < 200; ++trial) {
    const Instance inst = topo::random_instance(rng, options);
    const std::vector<NodeId>& touched = inst.touched();
    if (touched.empty()) continue;
    StateMask applied = empty_state(inst);
    std::vector<NodeId> round;
    for (const NodeId v : touched) {
      if (rng.bernoulli(0.25))
        applied[v] = true;
      else if (rng.bernoulli(0.6))
        round.push_back(v);
    }
    if (round.empty()) continue;
    EXPECT_EQ(
        round_safe_union_certificate(inst, applied, round, kGlobalLoopFree),
        round_safe_exhaustive(inst, applied, round, kGlobalLoopFree))
        << inst.to_string();
  }
}

TEST(RoundSafetyTest, DispatcherUsesExhaustiveForSmallRounds) {
  const Instance inst = fig1_instance();
  OracleOptions options;
  options.exhaustive_limit = 16;
  EXPECT_FALSE(round_safe(inst, empty_state(inst), inst.touched(), kWaypoint,
                          options));
  const std::vector<NodeId> installs{7, 9, 10, 11};
  EXPECT_TRUE(round_safe(inst, empty_state(inst), installs, kWaypoint,
                         options));
}

TEST(RoundSafetyTest, DispatcherFallsBackToCertificate) {
  const Instance inst = fig1_instance();
  OracleOptions options;
  options.exhaustive_limit = 2;  // force the certificate path
  const std::vector<NodeId> installs{7, 9, 10, 11};
  EXPECT_TRUE(round_safe(inst, empty_state(inst), installs,
                         kWaypoint | kLoopFree, options));
  EXPECT_FALSE(round_safe(inst, empty_state(inst), inst.touched(),
                          kWaypoint, options));
}

TEST(PropertyNameTest, RendersCombinations) {
  EXPECT_EQ(property_name(kWaypoint), "WPE");
  EXPECT_EQ(property_name(kWaypoint | kLoopFree), "WPE+WLF");
  EXPECT_EQ(property_name(kSlfGuarantee), "SLF+BH");
  EXPECT_EQ(property_name(0), "none");
}

}  // namespace
}  // namespace tsu::update
