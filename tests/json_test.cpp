#include <gtest/gtest.h>

#include <string>

#include "tsu/json/json.hpp"

namespace tsu::json {
namespace {

Value must_parse(std::string_view text) {
  Result<Value> result = parse(text);
  EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.error().to_string())
                           << " input: " << text;
  return result.ok() ? std::move(result).value() : Value();
}

void must_fail(std::string_view text) {
  const Result<Value> result = parse(text);
  EXPECT_FALSE(result.ok()) << "should have rejected: " << text;
}

// ---------------------------------------------------------------- scalars --

TEST(JsonParse, Null) { EXPECT_TRUE(must_parse("null").is_null()); }

TEST(JsonParse, Booleans) {
  EXPECT_TRUE(must_parse("true").as_bool());
  EXPECT_FALSE(must_parse("false").as_bool());
}

TEST(JsonParse, Integers) {
  EXPECT_EQ(must_parse("0").as_int(), 0);
  EXPECT_EQ(must_parse("42").as_int(), 42);
  EXPECT_EQ(must_parse("-7").as_int(), -7);
}

TEST(JsonParse, Doubles) {
  EXPECT_DOUBLE_EQ(must_parse("1.5").as_double(), 1.5);
  EXPECT_DOUBLE_EQ(must_parse("-0.25").as_double(), -0.25);
  EXPECT_DOUBLE_EQ(must_parse("1e3").as_double(), 1000.0);
  EXPECT_DOUBLE_EQ(must_parse("2.5E-2").as_double(), 0.025);
}

TEST(JsonParse, LeadingZeroRules) {
  must_fail("01");
  must_fail("-01");
  EXPECT_DOUBLE_EQ(must_parse("0.5").as_double(), 0.5);
}

TEST(JsonParse, NumberJunk) {
  must_fail("+1");
  must_fail("1.");
  must_fail(".5");
  must_fail("1e");
  must_fail("1e+");
  must_fail("--1");
  must_fail("0x10");
}

TEST(JsonParse, Strings) {
  EXPECT_EQ(must_parse(R"("hello")").as_string(), "hello");
  EXPECT_EQ(must_parse(R"("")").as_string(), "");
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(must_parse(R"("a\"b")").as_string(), "a\"b");
  EXPECT_EQ(must_parse(R"("a\\b")").as_string(), "a\\b");
  EXPECT_EQ(must_parse(R"("a\/b")").as_string(), "a/b");
  EXPECT_EQ(must_parse(R"("a\nb\tc\rd\fe\bf")").as_string(),
            "a\nb\tc\rd\fe\bf");
}

TEST(JsonParse, UnicodeEscapesBmp) {
  EXPECT_EQ(must_parse(R"("\u0041")").as_string(), "A");
  EXPECT_EQ(must_parse(R"("\u00e9")").as_string(), "\xc3\xa9");      // e-acute
  EXPECT_EQ(must_parse(R"("\u20ac")").as_string(), "\xe2\x82\xac");  // euro sign
}

TEST(JsonParse, UnicodeSurrogatePair) {
  // U+1F600 encoded as \ud83d\ude00.
  EXPECT_EQ(must_parse(R"("\ud83d\ude00")").as_string(),
            "\xf0\x9f\x98\x80");
}

TEST(JsonParse, Utf8PassThrough) {
  // Raw UTF-8 in the input survives unmodified.
  EXPECT_EQ(must_parse("\"\xc3\xa9\"").as_string(), "\xc3\xa9");
}

TEST(JsonParse, BadUnicodeEscapes) {
  must_fail(R"("\u12")");      // too short
  must_fail(R"("\ug000")");    // bad hex
  must_fail(R"("\ud83d")");    // unpaired high surrogate
  must_fail(R"("\ud83dx")");   // high surrogate then junk
  must_fail(R"("\ude00")");    // unpaired low surrogate
}

TEST(JsonParse, RawControlCharacterRejected) {
  must_fail("\"a\nb\"");
}

TEST(JsonParse, UnterminatedString) {
  must_fail(R"("abc)");
  must_fail(R"("abc\)");
}

// ------------------------------------------------------------- containers --

TEST(JsonParse, EmptyContainers) {
  EXPECT_TRUE(must_parse("[]").as_array().empty());
  EXPECT_TRUE(must_parse("{}").as_object().empty());
}

TEST(JsonParse, ArrayValues) {
  const Value v = must_parse(R"([1, "two", null, true, [3]])");
  const Array& a = v.as_array();
  ASSERT_EQ(a.size(), 5u);
  EXPECT_EQ(a[0].as_int(), 1);
  EXPECT_EQ(a[1].as_string(), "two");
  EXPECT_TRUE(a[2].is_null());
  EXPECT_TRUE(a[3].as_bool());
  EXPECT_EQ(a[4].as_array()[0].as_int(), 3);
}

TEST(JsonParse, ObjectPreservesInsertionOrder) {
  const Value v = must_parse(R"({"z": 1, "a": 2, "m": 3})");
  std::vector<std::string> keys;
  for (const auto& [k, _] : v.as_object()) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<std::string>{"z", "a", "m"}));
}

TEST(JsonParse, DuplicateKeysKeepLast) {
  const Value v = must_parse(R"({"k": 1, "k": 2})");
  EXPECT_EQ(v.as_object().size(), 1u);
  EXPECT_EQ(v.as_object().find("k")->as_int(), 2);
}

TEST(JsonParse, NestedStructure) {
  const Value v = must_parse(
      R"({"oldpath":[1,2,3],"newpath":[1,7,3],"wp":3,"interval":50})");
  const Object& o = v.as_object();
  EXPECT_EQ(o.find("oldpath")->as_array().size(), 3u);
  EXPECT_EQ(o.find("wp")->as_int(), 3);
  EXPECT_EQ(o.find("interval")->as_int(), 50);
  EXPECT_EQ(o.find("missing"), nullptr);
}

TEST(JsonParse, ContainerJunk) {
  must_fail("[1,]");
  must_fail("[,1]");
  must_fail("[1 2]");
  must_fail("{\"a\":}");
  must_fail("{\"a\" 1}");
  must_fail("{a: 1}");
  must_fail("{1: 2}");
  must_fail("[");
  must_fail("{");
  must_fail("}");
}

TEST(JsonParse, TrailingContentRejected) {
  must_fail("1 2");
  must_fail("{} []");
  must_fail("null x");
}

TEST(JsonParse, WhitespaceTolerated) {
  const Value v = must_parse(" \t\n { \"a\" : [ 1 , 2 ] } \r\n ");
  EXPECT_EQ(v.as_object().find("a")->as_array().size(), 2u);
}

TEST(JsonParse, DepthLimitEnforced) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  deep += "1";
  for (int i = 0; i < 100; ++i) deep += "]";
  ParseOptions options;
  options.max_depth = 10;
  EXPECT_FALSE(parse(deep, options).ok());
  options.max_depth = 200;
  EXPECT_TRUE(parse(deep, options).ok());
}

TEST(JsonParse, SizeLimitEnforced) {
  ParseOptions options;
  options.max_bytes = 4;
  EXPECT_FALSE(parse("[1,2,3]", options).ok());
}

TEST(JsonParse, EmptyInputRejected) {
  must_fail("");
  must_fail("   ");
}

// ----------------------------------------------------------------- writer --

TEST(JsonWrite, CompactRoundTrip) {
  const std::string text =
      R"({"oldpath":[1,2,3],"wp":3,"name":"fw \"main\"","ratio":0.5,)"
      R"("on":true,"off":false,"none":null})";
  const Value v = must_parse(text);
  const std::string rendered = write(v);
  const Value reparsed = must_parse(rendered);
  EXPECT_TRUE(v == reparsed) << rendered;
}

TEST(JsonWrite, IntegersRenderWithoutExponent) {
  EXPECT_EQ(write(Value(static_cast<std::int64_t>(1234567))), "1234567");
  EXPECT_EQ(write(Value(-3)), "-3");
}

TEST(JsonWrite, EscapesControlCharacters) {
  EXPECT_EQ(write(Value(std::string("a\x01""b"))), "\"a\\u0001b\"");
  EXPECT_EQ(write(Value(std::string("tab\t"))), R"("tab\t")");
}

TEST(JsonWrite, PrettyPrinting) {
  Object o;
  o.set("a", Value(1));
  Array arr;
  arr.emplace_back(2);
  o.set("b", Value(std::move(arr)));
  WriteOptions options;
  options.indent = 2;
  const std::string text = write(Value(std::move(o)), options);
  EXPECT_NE(text.find("\n  \"a\": 1"), std::string::npos) << text;
  const Value reparsed = must_parse(text);
  EXPECT_EQ(reparsed.as_object().find("a")->as_int(), 1);
}

TEST(JsonWrite, EmptyContainersCompact) {
  EXPECT_EQ(write(Value(Array{})), "[]");
  EXPECT_EQ(write(Value(Object{})), "{}");
}

// ----------------------------------------------------------------- value --

TEST(JsonValue, EqualityIsStructural) {
  const Value a = must_parse(R"({"x":[1,2],"y":"s"})");
  const Value b = must_parse(R"({"y":"s","x":[1,2]})");  // key order differs
  EXPECT_TRUE(a == b);
  const Value c = must_parse(R"({"x":[1,3],"y":"s"})");
  EXPECT_FALSE(a == c);
}

TEST(JsonValue, CopyIsDeep) {
  Value a = must_parse(R"({"x":[1]})");
  Value b = a;
  b.as_object().find("x")->as_array().push_back(Value(2));
  EXPECT_EQ(a.as_object().find("x")->as_array().size(), 1u);
  EXPECT_EQ(b.as_object().find("x")->as_array().size(), 2u);
}

TEST(JsonValue, AsIntGuardsIntegrality) {
  EXPECT_EQ(must_parse("7").as_int(), 7);
  EXPECT_DEATH(must_parse("7.5").as_int(), "integral");
}

TEST(JsonValue, ObjectSetOverwrites) {
  Object o;
  o.set("k", Value(1));
  o.set("k", Value(2));
  EXPECT_EQ(o.size(), 1u);
  EXPECT_EQ(o.find("k")->as_int(), 2);
}

}  // namespace
}  // namespace tsu::json
