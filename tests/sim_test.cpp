#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "tsu/sim/distributions.hpp"
#include "tsu/sim/event_queue.hpp"
#include "tsu/sim/sharded.hpp"
#include "tsu/sim/simulator.hpp"
#include "tsu/sim/thread_pool.hpp"

namespace tsu::sim {
namespace {

// ------------------------------------------------------------- EventQueue --

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.push(30, [&]() { fired.push_back(3); });
  q.push(10, [&]() { fired.push_back(1); });
  q.push(20, [&]() { fired.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakByScheduleOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.push(5, [&]() { fired.push_back(1); });
  q.push(5, [&]() { fired.push_back(2); });
  q.push(5, [&]() { fired.push_back(3); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, CancelSuppressesEvent) {
  EventQueue q;
  std::vector<int> fired;
  q.push(1, [&]() { fired.push_back(1); });
  const EventId second = q.push(2, [&]() { fired.push_back(2); });
  q.push(3, [&]() { fired.push_back(3); });
  EXPECT_TRUE(q.cancel(second));
  EXPECT_FALSE(q.cancel(second));  // already cancelled
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, CancelReleasesClosureEagerly) {
  // The cancelled closure's captures must be destroyed AT the cancel, not
  // when the lazy heap entry is eventually skimmed or compacted away. A
  // retransmit timer capturing a frame buffer would otherwise pin that
  // memory until an unrelated pop wandered past the tombstone.
  EventQueue q;
  auto payload = std::make_shared<int>(42);
  const EventId id = q.push(10, [payload]() {});
  q.push(20, []() {});  // keeps the heap non-empty so nothing is skimmed
  EXPECT_EQ(payload.use_count(), 2);
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(payload.use_count(), 1)
      << "cancel left the closure alive in the arena";
  // The stale heap entry is still there (lazy cancel) yet firing works.
  std::size_t fired = 0;
  while (!q.empty()) {
    q.pop();
    ++fired;
  }
  EXPECT_EQ(fired, 1u);
}

TEST(EventQueueTest, PoppedClosureSlotIsRetired) {
  // Firing an event must release its arena slot (and closure) so the
  // steady-state push/pop loop recycles storage instead of growing it.
  EventQueue q;
  auto payload = std::make_shared<int>(7);
  q.push(1, [payload]() {});
  auto event = q.pop();
  event.fn();
  event.fn.reset();  // simulator drops the fn right after invoking it
  EXPECT_EQ(payload.use_count(), 1);
  // The freed slot is reused: ids differ (generation bump) but storage
  // does not grow.
  const EventId a = q.push(2, []() {});
  q.pop();
  const EventId b = q.push(3, []() {});
  EXPECT_NE(a, b);  // stale ids must not alias the recycled slot
  EXPECT_FALSE(q.cancel(a));
  EXPECT_TRUE(q.cancel(b));
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId first = q.push(1, []() {});
  q.push(9, []() {});
  q.cancel(first);
  EXPECT_EQ(q.next_time(), 9u);
}

TEST(EventQueueTest, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.push(1, []() {});
  q.push(2, []() {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_TRUE(q.empty());
}

// -------------------------------------------------------------- Simulator --

TEST(EventQueueTest, CompactionBoundsHeapUnderCancelChurn) {
  // Retransmit-timer pattern: almost every scheduled event gets cancelled.
  // Lazy cancellation alone would grow the heap to the total push count;
  // compaction must keep it within the documented bound throughout.
  EventQueue q;
  std::vector<EventId> batch;
  for (int round = 0; round < 200; ++round) {
    batch.clear();
    for (int i = 0; i < 500; ++i)
      batch.push_back(q.push(1000 + round, []() {}));
    // Cancel all but one per round (the one that "times out").
    for (std::size_t i = 0; i + 1 < batch.size(); ++i) q.cancel(batch[i]);
    ASSERT_LE(q.heap_size(), EventQueue::kCompactSlack * q.size() +
                                 EventQueue::kCompactMinimum)
        << "round " << round;
  }
  EXPECT_EQ(q.size(), 200u);  // one survivor per round
  // The heap is within a small factor of the live count, not the ~100k
  // events ever pushed.
  EXPECT_LE(q.heap_size(), EventQueue::kCompactSlack * q.size() +
                               EventQueue::kCompactMinimum);
  // Surviving events still fire in order after all those rebuilds.
  SimTime last = 0;
  std::size_t fired = 0;
  while (!q.empty()) {
    const auto event = q.pop();
    EXPECT_GE(event.time, last);
    last = event.time;
    ++fired;
  }
  EXPECT_EQ(fired, 200u);
}

TEST(EventQueueTest, FlushTimerCancelChurnStaysBoundedAmidLiveEvents) {
  // The controller's windowed outbox arms one cancellable flush timer per
  // switch fill and cancels it whenever the byte budget ships the outbox
  // first - so under budget-heavy batching churn nearly every timer dies
  // cancelled while channel-delivery events stay live and keep firing.
  // The lazy-cancel heap must stay within its compaction bound the whole
  // time, and surviving events must keep firing in order.
  EventQueue q;
  SimTime now = 0;
  SimTime last_fired = 0;
  for (int round = 0; round < 5000; ++round) {
    // Budget flush: the armed flush timer is cancelled before it fires.
    const EventId timer = q.push(now + 500, []() {});
    ASSERT_TRUE(q.cancel(timer));
    // Interleaved live work (frame deliveries, installs) that does fire.
    q.push(now + 100, []() {});
    if (round % 2 == 0) {
      const auto fired = q.pop();
      EXPECT_GE(fired.time, last_fired);
      last_fired = fired.time;
    }
    ASSERT_LE(q.heap_size(), EventQueue::kCompactSlack * q.size() +
                                 EventQueue::kCompactMinimum)
        << "round " << round;
    ++now;
  }
  // Draining the survivors works after all that churn.
  std::size_t fired = 0;
  while (!q.empty()) {
    q.pop();
    ++fired;
  }
  EXPECT_GT(fired, 0u);
}

TEST(EventQueueTest, CompactionPreservesCancelSemantics) {
  // Cancelling an id that survived a rebuild must still work, and ids of
  // compacted-away entries must stay invalid.
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 300; ++i) ids.push_back(q.push(10 + i, []() {}));
  for (int i = 0; i < 290; ++i) EXPECT_TRUE(q.cancel(ids[i]));  // compacts
  EXPECT_FALSE(q.cancel(ids[0]));      // already cancelled
  EXPECT_TRUE(q.cancel(ids[295]));     // survivor, still cancellable
  EXPECT_EQ(q.size(), 9u);
  std::size_t fired = 0;
  while (!q.empty()) {
    q.pop();
    ++fired;
  }
  EXPECT_EQ(fired, 9u);
}

TEST(SimulatorTest, ClockAdvancesWithEvents) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0u);
  SimTime seen = 0;
  sim.schedule(100, [&]() { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 100u);
  EXPECT_EQ(sim.now(), 100u);
}

TEST(SimulatorTest, NestedSchedulingFromHandlers) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.schedule(10, [&]() {
    times.push_back(sim.now());
    sim.schedule(5, [&]() { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15}));
}

TEST(SimulatorTest, RunUntilStopsEarly) {
  Simulator sim;
  int fired = 0;
  sim.schedule(10, [&]() { ++fired; });
  sim.schedule(100, [&]() { ++fired; });
  sim.run(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50u);  // clock moved to the horizon
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventAtHorizonStillFires) {
  Simulator sim;
  int fired = 0;
  sim.schedule(50, [&]() { ++fired; });
  sim.run(50);
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, StepRunsExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1, [&]() { ++fired; });
  sim.schedule(2, [&]() { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, CancelPending) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.schedule(10, [&]() { ++fired; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(SimulatorTest, ReturnsProcessedCount) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule(static_cast<Duration>(i), []() {});
  EXPECT_EQ(sim.run(), 5u);
}

TEST(SimulatorDeathTest, SchedulingIntoPastAsserts) {
  Simulator sim;
  sim.schedule(10, []() {});
  sim.run();
  EXPECT_DEATH(sim.schedule_at(5, []() {}), "past");
}

// ----------------------------------------------------------- sharded sim --

TEST(ShardedSimTest, IdleSiblingEchoKeepsShardZeroInTimeOrder) {
  // Regression for the per-shard wave bound's round-trip cap: shard 0
  // carries a dense chain of local events while shard 1 is completely idle
  // (no pending events, no kShared work anywhere). One early shard-0 event
  // posts a hand-off to shard 1 whose handler immediately echoes back at
  // +2*lookahead. Without the N_i + 2*lookahead term the sibling-only
  // bound is unbounded here, shard 0 runs its whole chain in one epoch,
  // and the echo is delivered BELOW events shard 0 already executed -
  // execution order diverges from the sequential merger (and trips the
  // push_remote frontier assert). With the cap, both modes must record
  // the identical shard-0 execution sequence.
  constexpr Duration kLookahead = 10;
  constexpr std::uint64_t kChain = 100;
  auto run_one = [](bool parallel) {
    ShardedSim group(2);
    std::vector<SimTime> order;  // shard-0 executions only: no cross-shard
                                 // writes, so epochs never race on it
    std::uint64_t remaining = kChain;
    std::function<void()> tick = [&]() {
      order.push_back(group.shard(0).now());
      if (remaining == 0) return;
      --remaining;
      group.shard(0).schedule(1, [&]() { tick(); }, EventScope::kLocal);
    };
    group.schedule_on(0, 5, [&]() { tick(); }, EventScope::kLocal);
    group.schedule_on(
        0, 5,
        [&]() {
          group.post(1, 0, group.shard(0).now() + kLookahead, [&]() {
            group.post(0, 1, group.shard(1).now() + kLookahead,
                       [&]() { order.push_back(group.shard(0).now()); });
          });
        },
        EventScope::kLocal);
    if (parallel) {
      ThreadPool pool(2);
      group.run_parallel(pool, kLookahead);
    } else {
      group.run();
    }
    return order;
  };
  const std::vector<SimTime> sequential = run_one(false);
  const std::vector<SimTime> parallel = run_one(true);
  ASSERT_EQ(sequential.size(), kChain + 2);  // chain ticks + the echo
  EXPECT_TRUE(std::is_sorted(parallel.begin(), parallel.end()))
      << "shard 0 executed an echoed hand-off below its own frontier";
  EXPECT_EQ(parallel, sequential);
}

// ------------------------------------------------------------- time utils --

TEST(TimeTest, UnitHelpers) {
  EXPECT_EQ(microseconds(2), 2'000u);
  EXPECT_EQ(milliseconds(3), 3'000'000u);
  EXPECT_EQ(seconds(1), 1'000'000'000u);
  EXPECT_DOUBLE_EQ(to_ms(milliseconds(5)), 5.0);
  EXPECT_DOUBLE_EQ(to_us(microseconds(7)), 7.0);
}

TEST(TimeTest, FromMsClampsNegative) {
  EXPECT_EQ(from_ms(-1.0), 0u);
  EXPECT_EQ(from_ms(1.5), 1'500'000u);
}

// ---------------------------------------------------------- distributions --

TEST(LatencyModelTest, ConstantAlwaysSame) {
  Rng rng(1);
  const LatencyModel m = LatencyModel::constant(milliseconds(2));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(m.sample(rng), milliseconds(2));
  EXPECT_DOUBLE_EQ(m.mean(), 2e6);
}

TEST(LatencyModelTest, UniformWithinBounds) {
  Rng rng(2);
  const LatencyModel m =
      LatencyModel::uniform(microseconds(100), microseconds(200));
  for (int i = 0; i < 1000; ++i) {
    const Duration d = m.sample(rng);
    EXPECT_GE(d, microseconds(100));
    EXPECT_LT(d, microseconds(200));
  }
  EXPECT_DOUBLE_EQ(m.mean(), 150e3);
}

TEST(LatencyModelTest, ExponentialMeanApproximation) {
  Rng rng(3);
  const LatencyModel m = LatencyModel::exponential(milliseconds(1));
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(m.sample(rng));
  EXPECT_NEAR(sum / n, 1e6, 5e4);
}

TEST(LatencyModelTest, LognormalMedianApproximation) {
  Rng rng(4);
  const LatencyModel m = LatencyModel::lognormal(milliseconds(1), 0.5);
  std::vector<double> samples;
  for (int i = 0; i < 10001; ++i)
    samples.push_back(static_cast<double>(m.sample(rng)));
  std::nth_element(samples.begin(), samples.begin() + 5000, samples.end());
  EXPECT_NEAR(samples[5000], 1e6, 1e5);
}

TEST(LatencyModelTest, ParetoBounded) {
  Rng rng(5);
  const LatencyModel m =
      LatencyModel::pareto(microseconds(100), milliseconds(100), 1.3);
  for (int i = 0; i < 2000; ++i) {
    const Duration d = m.sample(rng);
    EXPECT_GE(d, microseconds(100));
    EXPECT_LT(d, milliseconds(100));
  }
}

TEST(LatencyModelTest, ToStringMentionsKind) {
  EXPECT_NE(LatencyModel::constant(1).to_string().find("const"),
            std::string::npos);
  EXPECT_NE(LatencyModel::lognormal(milliseconds(1), 0.5)
                .to_string()
                .find("lognormal"),
            std::string::npos);
}

}  // namespace
}  // namespace tsu::sim
