#include <gtest/gtest.h>

#include "tsu/graph/algorithms.hpp"
#include "tsu/topo/instances.hpp"
#include "tsu/update/forwarding.hpp"

namespace tsu::update {
namespace {

Instance simple() {
  // old 0->1->2->3, new 0->4->2->1->3 (backward move at 2).
  Result<Instance> inst = Instance::make({0, 1, 2, 3}, {0, 4, 2, 1, 3});
  EXPECT_TRUE(inst.ok());
  return std::move(inst).value();
}

StateMask with_updates(const Instance& inst,
                       std::initializer_list<NodeId> nodes) {
  StateMask state = empty_state(inst);
  for (const NodeId v : nodes) state[v] = true;
  return state;
}

TEST(ForwardingTest, EmptyStateFollowsOldPath) {
  const Instance inst = simple();
  const WalkResult walk = walk_from_source(inst, empty_state(inst));
  EXPECT_EQ(walk.outcome, WalkOutcome::kDelivered);
  EXPECT_EQ(walk.trace, (graph::Path{0, 1, 2, 3}));
}

TEST(ForwardingTest, FullStateFollowsNewPath) {
  const Instance inst = simple();
  const WalkResult walk = walk_from_source(inst, full_state(inst));
  EXPECT_EQ(walk.outcome, WalkOutcome::kDelivered);
  EXPECT_EQ(walk.trace, inst.new_path());
}

TEST(ForwardingTest, ActiveNextSwitchesPerNode) {
  const Instance inst = simple();
  const StateMask state = with_updates(inst, {0});
  EXPECT_EQ(active_next(inst, state, 0), 4u);   // updated -> new rule
  EXPECT_EQ(active_next(inst, state, 1), 2u);   // old rule
  EXPECT_EQ(active_next(inst, empty_state(inst), 4), kInvalidNode);  // none
}

TEST(ForwardingTest, BlackholeWhenNewOnlyNotInstalled) {
  const Instance inst = simple();
  // 0 flips to the new path but 4 has no rule yet.
  const WalkResult walk = walk_from_source(inst, with_updates(inst, {0}));
  EXPECT_EQ(walk.outcome, WalkOutcome::kBlackhole);
  EXPECT_EQ(walk.trace, (graph::Path{0, 4}));
}

TEST(ForwardingTest, TransientLoopDetected) {
  const Instance inst = simple();
  // 0 -> 4 -> 2 (updated: -> 1), 1 old rule -> 2: loop 2 -> 1 -> 2.
  const WalkResult walk = walk_from_source(inst, with_updates(inst, {0, 4, 2}));
  EXPECT_EQ(walk.outcome, WalkOutcome::kLoop);
  // Trace ends at the first revisited node.
  EXPECT_EQ(walk.trace, (graph::Path{0, 4, 2, 1, 2}));
}

TEST(ForwardingTest, WaypointVisitTracked) {
  const topo::Fig1 fig = topo::fig1();
  const WalkResult old_walk =
      walk_from_source(fig.instance, empty_state(fig.instance));
  EXPECT_TRUE(old_walk.visited_waypoint);
  const WalkResult new_walk =
      walk_from_source(fig.instance, full_state(fig.instance));
  EXPECT_TRUE(new_walk.visited_waypoint);
}

TEST(ForwardingTest, WaypointBypassObservable) {
  const topo::Fig1 fig = topo::fig1();
  const Instance& inst = fig.instance;
  // Update only node 2 (Y set): old prefix 1->2 then jumps to the new
  // suffix 2->9->10->11->12, skipping waypoint 3. Install the new-only
  // nodes first so the walk completes.
  const StateMask state = with_updates(inst, {2, 7, 9, 10, 11});
  const WalkResult walk = walk_from_source(inst, state);
  EXPECT_EQ(walk.outcome, WalkOutcome::kDelivered);
  EXPECT_FALSE(walk.visited_waypoint);
  EXPECT_EQ(walk.trace, (graph::Path{1, 2, 9, 10, 11, 12}));
}

TEST(ForwardingTest, ActiveGraphHasOneEdgePerRuledNode) {
  const Instance inst = simple();
  const graph::Digraph g = active_graph(inst, empty_state(inst));
  EXPECT_EQ(g.out_neighbors(0).size(), 1u);
  EXPECT_EQ(g.out_neighbors(3).size(), 0u);  // destination
  EXPECT_EQ(g.out_neighbors(4).size(), 0u);  // not installed
  const graph::Digraph full = active_graph(inst, full_state(inst));
  EXPECT_TRUE(full.has_edge(2, 1));
  EXPECT_FALSE(full.has_edge(2, 3));
}

TEST(ForwardingTest, UnionGraphContainsBothRulesForRoundNodes) {
  const Instance inst = simple();
  const StateMask applied = empty_state(inst);
  const graph::Digraph g = union_graph(inst, applied, {2});
  EXPECT_TRUE(g.has_edge(2, 3));  // old rule
  EXPECT_TRUE(g.has_edge(2, 1));  // new rule (may land any time)
  EXPECT_TRUE(g.has_edge(0, 1));  // pending elsewhere: old only
  EXPECT_FALSE(g.has_edge(0, 4));
}

TEST(ForwardingTest, UnionGraphUsesNewRuleForApplied) {
  const Instance inst = simple();
  StateMask applied = empty_state(inst);
  applied[0] = true;
  const graph::Digraph g = union_graph(inst, applied, {});
  EXPECT_TRUE(g.has_edge(0, 4));
  EXPECT_FALSE(g.has_edge(0, 1));
}

TEST(ForwardingTest, UnionGraphIsSupergraphOfSubsetStates) {
  const topo::Fig1 fig = topo::fig1();
  const Instance& inst = fig.instance;
  const std::vector<NodeId> round = inst.touched();
  const StateMask applied = empty_state(inst);
  const graph::Digraph u = union_graph(inst, applied, round);
  // Try a few subset states; every active edge must exist in the union.
  for (std::uint64_t bits : {0ULL, 1ULL, 5ULL, 37ULL, 255ULL}) {
    StateMask state = applied;
    for (std::size_t i = 0; i < round.size(); ++i)
      state[round[i]] = ((bits >> i) & 1ULL) != 0;
    const graph::Digraph g = active_graph(inst, state);
    for (const graph::Edge& e : g.edges())
      EXPECT_TRUE(u.has_edge(e.from, e.to))
          << "missing " << e.from << "->" << e.to << " for bits=" << bits;
  }
}

TEST(ForwardingTest, WalkOutcomeNames) {
  EXPECT_STREQ(to_string(WalkOutcome::kDelivered), "delivered");
  EXPECT_STREQ(to_string(WalkOutcome::kLoop), "loop");
  EXPECT_STREQ(to_string(WalkOutcome::kBlackhole), "blackhole");
}

TEST(ForwardingTest, WalkResultToString) {
  const Instance inst = simple();
  const WalkResult walk = walk_from_source(inst, empty_state(inst));
  const std::string text = walk.to_string();
  EXPECT_NE(text.find("delivered"), std::string::npos);
  EXPECT_NE(text.find("<0,1,2,3>"), std::string::npos);
}

}  // namespace
}  // namespace tsu::update
