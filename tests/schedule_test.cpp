#include <gtest/gtest.h>

#include "tsu/topo/instances.hpp"
#include "tsu/update/schedule.hpp"

namespace tsu::update {
namespace {

Instance simple() {
  Result<Instance> inst = Instance::make({0, 1, 2, 3}, {0, 4, 2, 1, 3});
  EXPECT_TRUE(inst.ok());
  return std::move(inst).value();
}

TEST(ScheduleTest, ValidPartitionAccepted) {
  const Instance inst = simple();
  Schedule s;
  s.rounds = {{4}, {0, 2}, {1}};
  EXPECT_TRUE(validate_schedule(inst, s).ok());
}

TEST(ScheduleTest, MissingNodeRejected) {
  const Instance inst = simple();
  Schedule s;
  s.rounds = {{4}, {0, 2}};  // node 1 missing
  const Status status = validate_schedule(inst, s);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("missing"), std::string::npos);
}

TEST(ScheduleTest, DuplicateNodeRejected) {
  const Instance inst = simple();
  Schedule s;
  s.rounds = {{4, 0}, {0, 2, 1}};
  EXPECT_FALSE(validate_schedule(inst, s).ok());
}

TEST(ScheduleTest, UntouchedNodeRejected) {
  const Instance inst = simple();
  Schedule s;
  s.rounds = {{4, 0, 2, 1, 3}};  // 3 is the destination, not touched
  EXPECT_FALSE(validate_schedule(inst, s).ok());
}

TEST(ScheduleTest, EmptyRoundRejected) {
  const Instance inst = simple();
  Schedule s;
  s.rounds = {{4, 0, 2, 1}, {}};
  EXPECT_FALSE(validate_schedule(inst, s).ok());
}

TEST(ScheduleTest, CleanupMustBeOldOnly) {
  const topo::Fig1 fig = topo::fig1();
  Schedule s;
  s.rounds = {fig.instance.touched()};
  s.cleanup = {4, 8, 6};
  EXPECT_TRUE(validate_schedule(fig.instance, s).ok());
  s.cleanup = {5};  // on both paths, not old-only
  EXPECT_FALSE(validate_schedule(fig.instance, s).ok());
}

TEST(ScheduleTest, StateAfterRoundsAccumulates) {
  const Instance inst = simple();
  Schedule s;
  s.rounds = {{4}, {0, 2}, {1}};
  const StateMask s0 = state_after_rounds(inst, s, 0);
  EXPECT_FALSE(s0[4]);
  const StateMask s1 = state_after_rounds(inst, s, 1);
  EXPECT_TRUE(s1[4]);
  EXPECT_FALSE(s1[0]);
  const StateMask s3 = state_after_rounds(inst, s, 3);
  EXPECT_TRUE(s3[0] && s3[1] && s3[2] && s3[4]);
  // Past-the-end clamps.
  const StateMask s9 = state_after_rounds(inst, s, 9);
  EXPECT_EQ(s9, s3);
}

TEST(ScheduleTest, TouchedCountSumsRounds) {
  Schedule s;
  s.rounds = {{1, 2}, {3}};
  EXPECT_EQ(s.touched_count(), 3u);
  EXPECT_EQ(s.round_count(), 2u);
}

TEST(ScheduleTest, ToStringShowsRoundsAndCleanup) {
  Schedule s;
  s.algorithm = "wayup";
  s.rounds = {{7}, {5}};
  s.cleanup = {4};
  const std::string text = s.to_string();
  EXPECT_NE(text.find("wayup"), std::string::npos);
  EXPECT_NE(text.find("R1:{7}"), std::string::npos);
  EXPECT_NE(text.find("R2:{5}"), std::string::npos);
  EXPECT_NE(text.find("cleanup:{4}"), std::string::npos);
}

}  // namespace
}  // namespace tsu::update
