// Conflict-aware admission tests: rule footprint computation, overlap
// detection, dependency-DAG admit/release ordering for the three policies,
// controller-level conflict serialization, and a randomized liveness
// property (every admitted request eventually completes; no deadlock).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "tsu/channel/channel.hpp"
#include "tsu/controller/admission.hpp"
#include "tsu/controller/controller.hpp"
#include "tsu/switchsim/switch.hpp"
#include "tsu/topo/instances.hpp"
#include "tsu/update/schedulers.hpp"
#include "tsu/util/rng.hpp"

namespace tsu::controller {
namespace {

// ------------------------------------------------------- Match::overlaps --

TEST(MatchOverlapTest, WildcardOverlapsEverything) {
  const flow::Match wild = flow::Match::wildcard();
  EXPECT_TRUE(wild.overlaps(wild));
  EXPECT_TRUE(wild.overlaps(flow::Match::exact_flow(7)));
  EXPECT_TRUE(flow::Match::exact_flow(7).overlaps(wild));
}

TEST(MatchOverlapTest, ConcreteFieldsSeparate) {
  EXPECT_TRUE(flow::Match::exact_flow(7).overlaps(flow::Match::exact_flow(7)));
  EXPECT_FALSE(
      flow::Match::exact_flow(7).overlaps(flow::Match::exact_flow(8)));
  // Disjoint on one field is enough, even when others are wildcarded.
  flow::Match a = flow::Match::exact_flow(7);
  a.in_port = 1;
  flow::Match b = flow::Match::exact_flow(7);
  b.in_port = 2;
  EXPECT_FALSE(a.overlaps(b));
  b.in_port.reset();
  EXPECT_TRUE(a.overlaps(b));  // b's wildcard port covers a's port 1
}

TEST(MatchOverlapTest, OverlapIsSymmetricAndWiderThanSubsumption) {
  flow::Match narrow = flow::Match::exact_flow(3);
  narrow.src_host = 1;
  const flow::Match wide = flow::Match::exact_flow(3);
  EXPECT_TRUE(wide.subsumes(narrow));
  EXPECT_FALSE(narrow.subsumes(wide));
  // ...but overlap holds both ways.
  EXPECT_TRUE(wide.overlaps(narrow));
  EXPECT_TRUE(narrow.overlaps(wide));
}

// ------------------------------------------------------------- Footprint --

RoundOp op(NodeId node, FlowId flow, NodeId next, std::uint8_t table = 0) {
  proto::FlowMod mod;
  mod.command = proto::FlowModCommand::kAdd;
  mod.table = table;
  mod.priority = 100;
  mod.match.flow = flow;
  mod.action = flow::Action::forward(next);
  return RoundOp{node, mod, {}};
}

TEST(FootprintTest, CollectsEveryRoundIncludingCleanup) {
  const update::Instance inst = topo::pool_workload(1, 6).front();
  const update::Schedule schedule = update::plan_peacock(inst).value();
  const UpdateRequest request =
      request_from_schedule(inst, schedule, 42, 100, 0);
  const Footprint footprint = Footprint::of(request);

  // Every node named in any round (schedule rounds + trailing cleanup
  // deletes) appears with the request's flow match.
  std::set<NodeId> touched;
  for (const std::vector<RoundOp>& round : request.rounds)
    for (const RoundOp& round_op : round) touched.insert(round_op.node);
  std::set<NodeId> in_footprint;
  for (const RuleRef& rule : footprint.rules()) {
    in_footprint.insert(rule.node);
    EXPECT_EQ(rule.table, 0);
    EXPECT_EQ(rule.match.flow, 42u);
  }
  EXPECT_EQ(in_footprint, touched);
  EXPECT_FALSE(schedule.cleanup.empty());
  for (const NodeId v : schedule.cleanup)
    EXPECT_TRUE(in_footprint.count(v) > 0) << "cleanup node " << v;
}

TEST(FootprintTest, DeduplicatesRepeatedRules) {
  UpdateRequest request;
  request.flow = 1;
  request.rounds = {{op(1, 1, 2), op(1, 1, 2)}, {op(1, 1, 3)}};
  // Same (node, table, match) three times; action differences don't split
  // the footprint entry.
  EXPECT_EQ(Footprint::of(request).size(), 1u);
}

TEST(FootprintTest, ConflictNeedsSameSwitchSameTableOverlappingMatch) {
  const auto footprint_of_one = [](RoundOp one) {
    UpdateRequest request;
    request.rounds = {{std::move(one)}};
    return Footprint::of(request);
  };
  const Footprint base = footprint_of_one(op(1, 7, 2));
  EXPECT_TRUE(base.conflicts_with(footprint_of_one(op(1, 7, 9))));
  // Different switch.
  EXPECT_FALSE(base.conflicts_with(footprint_of_one(op(2, 7, 9))));
  // Different flow (disjoint matches).
  EXPECT_FALSE(base.conflicts_with(footprint_of_one(op(1, 8, 9))));
  // Different table on the same switch.
  EXPECT_FALSE(base.conflicts_with(footprint_of_one(op(1, 7, 9, 1))));
  // A wildcard match on the same switch conflicts with everything there.
  proto::FlowMod wild;
  wild.match = flow::Match::wildcard();
  UpdateRequest wild_request;
  wild_request.rounds = {{RoundOp{1, wild, {}}}};
  EXPECT_TRUE(base.conflicts_with(Footprint::of(wild_request)));
}

// -------------------------------------------------------- AdmissionQueue --

Footprint flow_on_nodes(FlowId flow, std::vector<NodeId> nodes) {
  Footprint footprint;
  for (const NodeId node : nodes)
    footprint.add(RuleRef{node, 0, flow::Match::exact_flow(flow)});
  return footprint;
}

TEST(AdmissionQueueTest, ConflictAwareAdmitReleaseOrdering) {
  AdmissionQueue q(AdmissionPolicy::kConflictAware);
  // A and C are disjoint; B conflicts with A (same flow, shared node).
  EXPECT_TRUE(q.submit(1, flow_on_nodes(1, {1, 2})));
  EXPECT_FALSE(q.submit(2, flow_on_nodes(1, {2, 3})));
  EXPECT_TRUE(q.submit(3, flow_on_nodes(2, {1, 2})));  // other flow: disjoint
  EXPECT_TRUE(q.admissible(1));
  EXPECT_FALSE(q.admissible(2));
  EXPECT_TRUE(q.admissible(3));
  EXPECT_EQ(q.blocked(), 1u);
  EXPECT_EQ(q.conflict_edges(), 1u);
  EXPECT_EQ(q.blocked_submissions(), 1u);

  // Releasing the disjoint request frees nothing...
  EXPECT_TRUE(q.release(3).empty());
  EXPECT_FALSE(q.admissible(2));
  // ...releasing the conflict does.
  const std::vector<AdmissionQueue::Id> unblocked = q.release(1);
  ASSERT_EQ(unblocked.size(), 1u);
  EXPECT_EQ(unblocked.front(), 2u);
  EXPECT_TRUE(q.admissible(2));
  EXPECT_EQ(q.live(), 1u);
}

TEST(AdmissionQueueTest, ChainReleasesInArrivalOrder) {
  AdmissionQueue q(AdmissionPolicy::kConflictAware);
  // Three requests on the same rule: a dependency chain. Each waits only
  // for the live conflicts at submission.
  EXPECT_TRUE(q.submit(1, flow_on_nodes(1, {5})));
  EXPECT_FALSE(q.submit(2, flow_on_nodes(1, {5})));
  EXPECT_FALSE(q.submit(3, flow_on_nodes(1, {5})));
  EXPECT_EQ(q.release(1), (std::vector<AdmissionQueue::Id>{2}));
  // 3 still waits for 2 (it arrived while 2 was live).
  EXPECT_FALSE(q.admissible(3));
  EXPECT_EQ(q.release(2), (std::vector<AdmissionQueue::Id>{3}));
  EXPECT_TRUE(q.admissible(3));
}

TEST(AdmissionQueueTest, BlindAdmitsEverythingSerializeNothing) {
  AdmissionQueue blind(AdmissionPolicy::kBlind);
  EXPECT_TRUE(blind.submit(1, flow_on_nodes(1, {1})));
  EXPECT_TRUE(blind.submit(2, flow_on_nodes(1, {1})));  // same rule: no edge
  EXPECT_EQ(blind.conflict_edges(), 0u);

  AdmissionQueue serialize(AdmissionPolicy::kSerialize);
  EXPECT_TRUE(serialize.submit(1, flow_on_nodes(1, {1})));
  // Disjoint rules still wait: global FIFO.
  EXPECT_FALSE(serialize.submit(2, flow_on_nodes(2, {9})));
  EXPECT_FALSE(serialize.submit(3, flow_on_nodes(3, {17})));
  EXPECT_EQ(serialize.release(1), (std::vector<AdmissionQueue::Id>{2}));
  EXPECT_FALSE(serialize.admissible(3));
  EXPECT_EQ(serialize.release(2), (std::vector<AdmissionQueue::Id>{3}));
}

TEST(AdmissionQueueTest, ReleaseRulesUnblocksWhenLastConflictRetires) {
  AdmissionQueue q(AdmissionPolicy::kConflictAware);
  // A holds rules on switches 1 and 2; B conflicts with A only on 1.
  EXPECT_TRUE(q.submit(1, flow_on_nodes(1, {1, 2})));
  EXPECT_FALSE(q.submit(2, flow_on_nodes(1, {1, 3})));
  // Releasing A's non-conflicting rule changes nothing for B...
  EXPECT_TRUE(
      q.release_rules(1, {RuleRef{2, 0, flow::Match::exact_flow(1)}}).empty());
  EXPECT_FALSE(q.admissible(2));
  // ...releasing the conflicting rule unblocks B while A stays live.
  const std::vector<AdmissionQueue::Id> unblocked =
      q.release_rules(1, {RuleRef{1, 0, flow::Match::exact_flow(1)}});
  ASSERT_EQ(unblocked.size(), 1u);
  EXPECT_EQ(unblocked.front(), 2u);
  EXPECT_TRUE(q.admissible(2));
  EXPECT_EQ(q.live(), 2u);
  // A's eventual full release tolerates the already-released rules.
  EXPECT_TRUE(q.release(1).empty());
  EXPECT_EQ(q.live(), 1u);
}

TEST(AdmissionQueueTest, ReleaseRulesRetiresRulesForNewArrivalsToo) {
  AdmissionQueue q(AdmissionPolicy::kConflictAware);
  EXPECT_TRUE(q.submit(1, flow_on_nodes(1, {1, 2})));
  q.release_rules(1, {RuleRef{1, 0, flow::Match::exact_flow(1)}});
  // A new arrival on the retired rule sees no live conflict; one on A's
  // remaining rule still blocks.
  EXPECT_TRUE(q.submit(2, flow_on_nodes(1, {1})));
  EXPECT_FALSE(q.submit(3, flow_on_nodes(1, {2})));
  // A partially-conflicting release keeps the rest of the edge intact: B
  // blocked on two rules stays blocked until the last one retires.
  AdmissionQueue q2(AdmissionPolicy::kConflictAware);
  EXPECT_TRUE(q2.submit(1, flow_on_nodes(1, {1, 2})));
  EXPECT_FALSE(q2.submit(2, flow_on_nodes(1, {1, 2})));
  EXPECT_TRUE(
      q2.release_rules(1, {RuleRef{1, 0, flow::Match::exact_flow(1)}})
          .empty());
  EXPECT_FALSE(q2.admissible(2));
  const std::vector<AdmissionQueue::Id> unblocked =
      q2.release_rules(1, {RuleRef{2, 0, flow::Match::exact_flow(1)}});
  ASSERT_EQ(unblocked.size(), 1u);
  EXPECT_TRUE(q2.admissible(2));
}

TEST(AdmissionQueueTest, LivenessUnderRandomizedArrivalAndCompletion) {
  // 500 seeded instances: random footprints over a small switch pool
  // (dense conflicts), submitted in random order, completions interleaved
  // randomly with arrivals. The DAG must never deadlock: whenever requests
  // are live and none is running, at least one must be admissible, and
  // every request must eventually complete exactly once.
  for (std::uint64_t seed = 1; seed <= 500; ++seed) {
    Rng rng(seed);
    const AdmissionPolicy policy = static_cast<AdmissionPolicy>(seed % 3);
    AdmissionQueue q(policy);

    const std::size_t total = 5 + rng.index(30);
    std::size_t submitted = 0;
    std::size_t completed = 0;
    std::vector<AdmissionQueue::Id> waiting;  // live, not yet running
    std::vector<AdmissionQueue::Id> running;

    while (completed < total) {
      const bool can_submit = submitted < total;
      const bool prefer_submit = can_submit && rng.index(2) == 0;
      if (prefer_submit || (waiting.empty() && running.empty())) {
        ASSERT_TRUE(can_submit) << "seed " << seed << ": drained early";
        const AdmissionQueue::Id id = ++submitted;
        // 1-3 rules over 4 switches and 3 flows: heavy overlap.
        Footprint footprint;
        const std::size_t rules = 1 + rng.index(3);
        for (std::size_t r = 0; r < rules; ++r)
          footprint.add(RuleRef{static_cast<NodeId>(rng.index(4)), 0,
                                flow::Match::exact_flow(rng.index(3))});
        q.submit(id, std::move(footprint));
        waiting.push_back(id);
      } else if (!running.empty() && (waiting.empty() || rng.index(2) == 0)) {
        // Complete a random running request.
        const std::size_t pick = rng.index(running.size());
        const AdmissionQueue::Id id = running[pick];
        running.erase(running.begin() + pick);
        q.release(id);
        ++completed;
      } else {
        // Start a random admissible waiter; if none is admissible and
        // nothing is running, the DAG has deadlocked.
        std::vector<std::size_t> admissible;
        for (std::size_t i = 0; i < waiting.size(); ++i)
          if (q.admissible(waiting[i])) admissible.push_back(i);
        if (admissible.empty()) {
          ASSERT_FALSE(running.empty())
              << "seed " << seed << ": deadlock with " << waiting.size()
              << " waiters and nothing running";
          continue;  // progress requires a completion first
        }
        const std::size_t pick = admissible[rng.index(admissible.size())];
        running.push_back(waiting[pick]);
        waiting.erase(waiting.begin() + pick);
      }
    }
    EXPECT_EQ(q.live(), 0u) << "seed " << seed;
    EXPECT_EQ(completed, total) << "seed " << seed;
  }
}

TEST(AdmissionQueueTest, RuleIndexStaysPrunedOverManyCycles) {
  // release()/release_rules() prune empty by-switch index buckets; a
  // service-style run cycling requests over a rotating switch set must
  // return the index to empty at every drained instant, or steady-state
  // memory would grow with the number of distinct switches ever touched.
  AdmissionQueue q(AdmissionPolicy::kConflictAware);
  for (std::uint64_t cycle = 0; cycle < 2000; ++cycle) {
    const AdmissionQueue::Id id = cycle + 1;
    const NodeId base = static_cast<NodeId>((cycle % 97) * 3);
    EXPECT_TRUE(q.submit(
        id, flow_on_nodes(static_cast<FlowId>(cycle % 5),
                          {base, static_cast<NodeId>(base + 1),
                           static_cast<NodeId>(base + 2)})));
    q.release(id);
    ASSERT_EQ(q.live(), 0u);
    ASSERT_EQ(q.index_switches(), 0u);
    ASSERT_EQ(q.index_rules(), 0u);
  }
  // Overlapping lifetimes, released in both orders.
  AdmissionQueue::Id next = 1;
  for (std::uint64_t cycle = 0; cycle < 500; ++cycle) {
    const AdmissionQueue::Id a = next++;
    const AdmissionQueue::Id b = next++;
    q.submit(a, flow_on_nodes(1, {1, 2}));
    q.submit(b, flow_on_nodes(1, {2, 3}));  // conflicts with a on node 2
    if (cycle % 2 == 0) {
      q.release(a);
      q.release(b);
    } else {
      q.release(b);
      q.release(a);
    }
    ASSERT_EQ(q.live(), 0u);
    ASSERT_EQ(q.index_switches(), 0u);
    ASSERT_EQ(q.index_rules(), 0u);
  }
}

// ------------------------------------------- controller-level admission --

struct TestBed {
  sim::Simulator sim;
  Rng rng{777};
  Controller ctrl;
  std::map<NodeId, std::unique_ptr<switchsim::SimSwitch>> switches;
  std::vector<std::unique_ptr<channel::DuplexChannel>> channels;

  channel::ChannelConfig channel_config;
  switchsim::SwitchConfig switch_config;

  explicit TestBed(ControllerConfig config) : ctrl(sim, config) {
    channel_config.latency = sim::LatencyModel::constant(sim::milliseconds(1));
    switch_config.install_latency =
        sim::LatencyModel::constant(sim::milliseconds(1));
  }

  void add_switch(NodeId node) {
    auto sw = std::make_unique<switchsim::SimSwitch>(
        sim, node, node, switch_config, rng.fork());
    auto duplex = std::make_unique<channel::DuplexChannel>(
        sim, channel_config, rng);
    auto* sw_ptr = sw.get();
    auto* duplex_ptr = duplex.get();
    duplex->to_switch.set_receiver(
        [sw_ptr](const proto::Message& m) { sw_ptr->receive(m); });
    duplex->to_controller.set_receiver(
        [this, node](const proto::Message& m) { ctrl.on_message(node, m); });
    sw->set_controller_link([duplex_ptr](const proto::Message& m) {
      duplex_ptr->to_controller.send(m);
    });
    ctrl.attach_switch(node, [duplex_ptr](const proto::Message& m) {
      duplex_ptr->to_switch.send(m);
    });
    switches.emplace(node, std::move(sw));
    channels.push_back(std::move(duplex));
  }
};

UpdateRequest two_round_request(const std::string& name, FlowId flow,
                                NodeId a, NodeId b, NodeId next) {
  UpdateRequest request;
  request.name = name;
  request.flow = flow;
  request.rounds = {{op(a, flow, next)}, {op(b, flow, next + 1)}};
  return request;
}

TEST(ConflictAwareControllerTest, SameFlowUpdatesSerializeAcrossConflict) {
  ControllerConfig config;
  config.max_in_flight = 4;
  config.admission = AdmissionPolicy::kConflictAware;
  TestBed bed{config};
  bed.add_switch(1);
  bed.add_switch(2);
  bed.add_switch(3);
  // a and b rewrite the same flow on overlapping switches: a true rule
  // conflict. c updates another flow on the same switches: rule-disjoint.
  bed.ctrl.submit(two_round_request("a", 1, 1, 2, 7));
  bed.ctrl.submit(two_round_request("b", 1, 2, 3, 9));
  bed.ctrl.submit(two_round_request("c", 2, 1, 2, 7));
  EXPECT_EQ(bed.ctrl.in_flight(), 2u);  // a and c; b queued on a
  EXPECT_EQ(bed.ctrl.queued(), 1u);
  EXPECT_EQ(bed.ctrl.blocked(), 1u);
  bed.sim.run();

  ASSERT_EQ(bed.ctrl.completed().size(), 3u);
  std::map<std::string, const UpdateMetrics*> by_name;
  for (const UpdateMetrics& m : bed.ctrl.completed()) by_name[m.name] = &m;
  // The conflicting pair never overlapped...
  EXPECT_GE(by_name.at("b")->started, by_name.at("a")->finished);
  // ...and their order is arrival order, so the final state is b's.
  // The disjoint request ran concurrently with a.
  EXPECT_LT(by_name.at("c")->started, by_name.at("a")->finished);
  EXPECT_EQ(bed.ctrl.conflict_edges(), 1u);
  EXPECT_EQ(bed.ctrl.blocked_submissions(), 1u);

  // Switch 2 saw both of flow 1's writes in request order: b's rule
  // (round 1 on switch 2 forwards to 9) wins over a's earlier write.
  flow::Packet p;
  p.flow = 1;
  EXPECT_EQ(bed.switches[2]->table().lookup(p)->action,
            flow::Action::forward(9));
}

TEST(ConflictAwareControllerTest, BlindRacesWhereConflictAwareWaits) {
  // The same conflicting pair admitted blindly overlaps in time - the
  // transient-violation window conflict-aware admission closes.
  for (const AdmissionPolicy policy :
       {AdmissionPolicy::kBlind, AdmissionPolicy::kConflictAware}) {
    ControllerConfig config;
    config.max_in_flight = 2;
    config.admission = policy;
    TestBed bed{config};
    bed.add_switch(1);
    bed.add_switch(2);
    bed.ctrl.submit(two_round_request("a", 1, 1, 2, 7));
    bed.ctrl.submit(two_round_request("b", 1, 2, 1, 9));
    bed.sim.run();
    ASSERT_EQ(bed.ctrl.completed().size(), 2u);
    const UpdateMetrics& first = bed.ctrl.completed()[0];
    const UpdateMetrics& second = bed.ctrl.completed()[1];
    if (policy == AdmissionPolicy::kBlind) {
      // Both in flight at once: the race exists.
      EXPECT_EQ(bed.ctrl.max_in_flight_observed(), 2u);
      EXPECT_LT(second.started, first.finished);
    } else {
      EXPECT_EQ(bed.ctrl.max_in_flight_observed(), 1u);
      EXPECT_GE(second.started, first.finished);
    }
  }
}

TEST(ConflictAwareControllerTest, DifferentTablesAreDisjointStateAndRunConcurrently) {
  // Admission treats mods on different table ids as non-conflicting; the
  // switch grounds that physically by routing each mod to its own flow
  // table, so the concurrently admitted updates really touch disjoint
  // state.
  ControllerConfig config;
  config.max_in_flight = 2;
  config.admission = AdmissionPolicy::kConflictAware;
  TestBed bed{config};
  bed.add_switch(1);
  UpdateRequest t0;
  t0.name = "t0";
  t0.flow = 1;
  t0.rounds = {{op(1, 1, 7, 0)}};
  UpdateRequest t1;
  t1.name = "t1";
  t1.flow = 1;  // same switch, same match - only the table differs
  t1.rounds = {{op(1, 1, 9, 1)}};
  bed.ctrl.submit(t0);
  bed.ctrl.submit(t1);
  EXPECT_EQ(bed.ctrl.in_flight(), 2u);  // no conflict edge
  EXPECT_EQ(bed.ctrl.conflict_edges(), 0u);
  bed.sim.run();
  ASSERT_EQ(bed.ctrl.completed().size(), 2u);
  flow::Packet p;
  p.flow = 1;
  EXPECT_EQ(bed.switches[1]->table(0).lookup(p)->action,
            flow::Action::forward(7));
  EXPECT_EQ(bed.switches[1]->table(1).lookup(p)->action,
            flow::Action::forward(9));
}

TEST(ConflictAwareControllerTest, BlockedHeadDoesNotStallIndependentWork) {
  ControllerConfig config;
  config.max_in_flight = 2;
  config.admission = AdmissionPolicy::kConflictAware;
  TestBed bed{config};
  bed.add_switch(1);
  bed.add_switch(2);
  // Two conflicting requests fill slot 1 and the queue head; a later
  // disjoint request must overtake the blocked head instead of waiting.
  bed.ctrl.submit(two_round_request("a", 1, 1, 1, 7));
  bed.ctrl.submit(two_round_request("a2", 1, 1, 1, 9));
  bed.ctrl.submit(two_round_request("d", 2, 2, 2, 7));
  EXPECT_EQ(bed.ctrl.in_flight(), 2u);  // a + d (d overtook a2)
  bed.sim.run();
  ASSERT_EQ(bed.ctrl.completed().size(), 3u);
  EXPECT_EQ(bed.ctrl.completed()[0].name, "a");  // a, d same length; a first
  std::map<std::string, const UpdateMetrics*> by_name;
  for (const UpdateMetrics& m : bed.ctrl.completed()) by_name[m.name] = &m;
  EXPECT_EQ(by_name.at("d")->queueing_delay(), 0u);
  EXPECT_GT(by_name.at("a2")->queueing_delay(), 0u);
}

TEST(ConflictAwareControllerTest, RoundReleaseShrinksBlockedWindow) {
  // a's round 0 touches switch 1 and its round 1 touches switch 2; b
  // conflicts with a only on the round-0 rule. Per-round release lets b
  // start as soon as that round's barriers return - while a still runs
  // round 1 - whereas per-request release holds b to a's completion.
  for (const AdmissionRelease release :
       {AdmissionRelease::kRequest, AdmissionRelease::kRound}) {
    ControllerConfig config;
    config.max_in_flight = 4;
    config.admission = AdmissionPolicy::kConflictAware;
    config.admission_release = release;
    TestBed bed{config};
    bed.add_switch(1);
    bed.add_switch(2);
    bed.ctrl.submit(two_round_request("a", 1, 1, 2, 7));
    UpdateRequest b;
    b.name = "b";
    b.flow = 1;
    b.rounds = {{op(1, 1, 9)}};
    bed.ctrl.submit(std::move(b));
    EXPECT_EQ(bed.ctrl.in_flight(), 1u);  // b blocked on a's round-0 rule
    bed.sim.run();
    ASSERT_EQ(bed.ctrl.completed().size(), 2u);
    std::map<std::string, const UpdateMetrics*> by_name;
    for (const UpdateMetrics& m : bed.ctrl.completed()) by_name[m.name] = &m;
    if (release == AdmissionRelease::kRound) {
      EXPECT_LT(by_name.at("b")->started, by_name.at("a")->finished);
    } else {
      EXPECT_GE(by_name.at("b")->started, by_name.at("a")->finished);
    }
  }
}

}  // namespace
}  // namespace tsu::controller
