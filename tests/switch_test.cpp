#include <gtest/gtest.h>

#include <vector>

#include "tsu/switchsim/switch.hpp"

namespace tsu::switchsim {
namespace {

SwitchConfig fast_config() {
  SwitchConfig config;
  config.install_latency = sim::LatencyModel::constant(sim::milliseconds(1));
  config.barrier_processing = sim::microseconds(100);
  config.message_processing = sim::microseconds(10);
  return config;
}

proto::Message add_rule(Xid xid, FlowId flow, NodeId next) {
  proto::FlowMod mod;
  mod.command = proto::FlowModCommand::kAdd;
  mod.priority = 100;
  mod.match.flow = flow;
  mod.action = flow::Action::forward(next);
  return proto::make_flow_mod(xid, mod);
}

TEST(SwitchTest, FlowModAppliesAfterInstallLatency) {
  sim::Simulator sim;
  SimSwitch sw(sim, 1, 1, fast_config(), Rng(1));
  sw.receive(add_rule(1, 5, 2));
  // Not yet applied: installation takes 1 ms.
  EXPECT_TRUE(sw.table().empty());
  sim.run(sim::microseconds(500));
  EXPECT_TRUE(sw.table().empty());
  sim.run();
  EXPECT_EQ(sw.table().size(), 1u);
  EXPECT_EQ(sw.flow_mods_applied(), 1u);
  flow::Packet p;
  p.flow = 5;
  EXPECT_EQ(sw.table().lookup(p)->action, flow::Action::forward(2));
}

TEST(SwitchTest, FifoProcessingOrder) {
  sim::Simulator sim;
  SimSwitch sw(sim, 1, 1, fast_config(), Rng(1));
  // Two mods for the same match: the later one must win (FIFO).
  sw.receive(add_rule(1, 5, 2));
  sw.receive(add_rule(2, 5, 9));
  sim.run();
  flow::Packet p;
  p.flow = 5;
  EXPECT_EQ(sw.table().lookup(p)->action, flow::Action::forward(9));
}

TEST(SwitchTest, BarrierRepliesOnlyAfterAllPriorMessages) {
  sim::Simulator sim;
  SimSwitch sw(sim, 1, 1, fast_config(), Rng(1));
  std::vector<std::pair<sim::SimTime, proto::Message>> out;
  sw.set_controller_link([&](const proto::Message& m) {
    out.emplace_back(sim.now(), m);
  });
  sw.receive(add_rule(1, 5, 2));
  sw.receive(add_rule(2, 6, 3));
  sw.receive(proto::make_barrier_request(3));
  sim.run();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].second.type(), proto::MsgType::kBarrierReply);
  EXPECT_EQ(out[0].second.xid, 3u);
  // 2 installs x 1 ms + barrier processing 100 us.
  EXPECT_EQ(out[0].first, sim::milliseconds(2) + sim::microseconds(100));
  // Both rules were applied before the reply.
  EXPECT_EQ(sw.flow_mods_applied(), 2u);
  EXPECT_EQ(sw.barriers_replied(), 1u);
}

TEST(SwitchTest, OpenFlowBarrierSemanticsUnderLoad) {
  sim::Simulator sim;
  SwitchConfig config = fast_config();
  config.install_latency =
      sim::LatencyModel::uniform(sim::microseconds(200), sim::milliseconds(5));
  SimSwitch sw(sim, 1, 1, config, Rng(33));
  bool barrier_seen = false;
  sw.set_controller_link([&](const proto::Message& m) {
    if (m.type() == proto::MsgType::kBarrierReply) {
      barrier_seen = true;
      // The barrier contract: all 10 mods already applied.
      EXPECT_EQ(sw.flow_mods_applied(), 10u);
    }
  });
  for (Xid xid = 0; xid < 10; ++xid)
    sw.receive(add_rule(xid, xid, 2));
  sw.receive(proto::make_barrier_request(99));
  sim.run();
  EXPECT_TRUE(barrier_seen);
  EXPECT_TRUE(sw.quiescent());
}

TEST(SwitchTest, ModifyAndDeleteCommands) {
  sim::Simulator sim;
  SimSwitch sw(sim, 1, 1, fast_config(), Rng(1));
  sw.receive(add_rule(1, 5, 2));
  proto::FlowMod modify;
  modify.command = proto::FlowModCommand::kModify;
  modify.priority = 100;
  modify.match.flow = 5;
  modify.action = flow::Action::forward(7);
  sw.receive(proto::make_flow_mod(2, modify));
  sim.run();
  flow::Packet p;
  p.flow = 5;
  EXPECT_EQ(sw.table().lookup(p)->action, flow::Action::forward(7));

  proto::FlowMod del;
  del.command = proto::FlowModCommand::kDeleteStrict;
  del.priority = 100;
  del.match.flow = 5;
  sw.receive(proto::make_flow_mod(3, del));
  sim.run();
  EXPECT_TRUE(sw.table().empty());
}

TEST(SwitchTest, EchoRepliedWithPayload) {
  sim::Simulator sim;
  SimSwitch sw(sim, 1, 1, fast_config(), Rng(1));
  std::vector<proto::Message> out;
  sw.set_controller_link([&](const proto::Message& m) { out.push_back(m); });
  std::vector<std::byte> payload{std::byte{9}};
  sw.receive(proto::make_echo_request(4, payload));
  sim.run();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type(), proto::MsgType::kEchoReply);
  EXPECT_EQ(std::get<proto::Echo>(out[0].body).payload, payload);
}

TEST(SwitchTest, FeaturesReplyCarriesDatapath) {
  sim::Simulator sim;
  SimSwitch sw(sim, 3, 0xfeed, fast_config(), Rng(1));
  std::vector<proto::Message> out;
  sw.set_controller_link([&](const proto::Message& m) { out.push_back(m); });
  proto::Message request;
  request.xid = 1;
  request.body = proto::FeaturesRequest{};
  sw.receive(request);
  sim.run();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(std::get<proto::FeaturesReply>(out[0].body).datapath, 0xfeedu);
}

TEST(SwitchTest, InstallTimesRecorded) {
  sim::Simulator sim;
  SimSwitch sw(sim, 1, 1, fast_config(), Rng(1));
  sw.receive(add_rule(1, 1, 2));
  sw.receive(add_rule(2, 2, 2));
  sim.run();
  EXPECT_EQ(sw.install_times().count(), 2u);
  EXPECT_DOUBLE_EQ(sw.install_times().mean(), 1e6);  // constant 1 ms
}

TEST(SwitchTest, BatchExpandsInOrderAndKeepsBarrierFencing) {
  sim::Simulator sim;
  SimSwitch sw(sim, 1, 1, fast_config(), Rng(1));
  bool barrier_replied = false;
  sw.set_controller_link([&](const proto::Message& m) {
    if (m.type() == proto::MsgType::kBarrierReply) {
      barrier_replied = true;
      // The barrier reply must come only after both mods applied.
      EXPECT_EQ(sw.flow_mods_applied(), 2u);
    }
  });
  std::vector<proto::Message> group;
  group.push_back(add_rule(1, 5, 2));
  group.push_back(add_rule(2, 5, 9));
  group.push_back(proto::make_barrier_request(3));
  sw.receive(proto::make_batch(7, std::move(group)));
  sim.run();
  EXPECT_TRUE(barrier_replied);
  EXPECT_EQ(sw.batches_received(), 1u);
  EXPECT_EQ(sw.flow_mods_applied(), 2u);
  // FIFO within the batch: the later mod for the same match wins.
  flow::Packet p;
  p.flow = 5;
  EXPECT_EQ(sw.table().lookup(p)->action, flow::Action::forward(9));
}

TEST(SwitchTest, ReplyBatchingCoalescesSameInstantReplies) {
  // Zero processing times force several barrier replies into one instant;
  // with batch_replies they must ship as ONE Batch frame carrying every
  // reply in completion order, counted in the reply-direction stats.
  sim::Simulator sim;
  SwitchConfig config = fast_config();
  config.barrier_processing = 0;
  config.message_processing = 0;
  config.batch_replies = true;
  SimSwitch sw(sim, 1, 1, config, Rng(1));
  std::vector<proto::Message> out;
  sw.set_controller_link([&](const proto::Message& m) { out.push_back(m); });
  sw.receive(proto::make_barrier_request(1));
  sw.receive(proto::make_barrier_request(2));
  sw.receive(proto::make_barrier_request(3));
  sim.run();
  ASSERT_EQ(out.size(), 1u);
  ASSERT_EQ(out[0].type(), proto::MsgType::kBatch);
  const proto::Batch& batch = std::get<proto::Batch>(out[0].body);
  ASSERT_EQ(batch.messages.size(), 3u);
  for (Xid xid = 1; xid <= 3; ++xid) {
    EXPECT_EQ(batch.messages[xid - 1].type(), proto::MsgType::kBarrierReply);
    EXPECT_EQ(batch.messages[xid - 1].xid, xid);
  }
  EXPECT_EQ(sw.reply_batches_sent(), 1u);
  EXPECT_EQ(sw.batched_replies_sent(), 3u);
}

TEST(SwitchTest, ReplyBatchingSendsLoneRepliesPlain) {
  // A reply with no same-instant company pays no batch framing, and the
  // default config keeps the reply path untouched.
  sim::Simulator sim;
  SwitchConfig batched = fast_config();
  batched.batch_replies = true;
  SimSwitch sw(sim, 1, 1, batched, Rng(1));
  std::vector<proto::Message> out;
  sw.set_controller_link([&](const proto::Message& m) { out.push_back(m); });
  sw.receive(proto::make_barrier_request(5));
  sim.run();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type(), proto::MsgType::kBarrierReply);
  EXPECT_EQ(sw.reply_batches_sent(), 0u);
  EXPECT_EQ(sw.batched_replies_sent(), 0u);
}

TEST(SwitchTest, QuiescentReflectsPendingWork) {
  sim::Simulator sim;
  SimSwitch sw(sim, 1, 1, fast_config(), Rng(1));
  EXPECT_TRUE(sw.quiescent());
  sw.receive(add_rule(1, 1, 2));
  EXPECT_FALSE(sw.quiescent());
  sim.run();
  EXPECT_TRUE(sw.quiescent());
}

}  // namespace
}  // namespace tsu::switchsim
