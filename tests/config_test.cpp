#include <gtest/gtest.h>

#include "tsu/core/config.hpp"

namespace tsu::core {
namespace {

Result<ExecutorConfig> parse(std::string_view text) {
  return config_from_json(text);
}

TEST(ConfigTest, EmptyObjectYieldsDefaults) {
  const Result<ExecutorConfig> config = parse("{}");
  ASSERT_TRUE(config.ok());
  const ExecutorConfig defaults;
  EXPECT_EQ(config.value().seed, defaults.seed);
  EXPECT_EQ(config.value().with_traffic, defaults.with_traffic);
  EXPECT_EQ(config.value().priority, defaults.priority);
}

TEST(ConfigTest, FullDocumentParses) {
  const Result<ExecutorConfig> config = parse(R"({
    "seed": 99,
    "channel": {
      "latency": {"kind": "uniform", "lo_ms": 0.1, "hi_ms": 8},
      "loss": 0.05,
      "retransmit_timeout_ms": 30
    },
    "switch": {
      "install": {"kind": "lognormal", "median_ms": 2, "sigma": 1.0},
      "barrier_us": 50,
      "processing_us": 5
    },
    "use_barriers": false,
    "flow": 7,
    "priority": 321,
    "interval_ms": 12.5,
    "traffic": {
      "enabled": false,
      "interarrival": {"kind": "exponential", "mean_ms": 0.2},
      "link": {"kind": "constant", "ms": 0.05},
      "ttl": 32,
      "warmup_ms": 2,
      "drain_ms": 10
    }
  })");
  ASSERT_TRUE(config.ok()) << config.error().to_string();
  const ExecutorConfig& c = config.value();
  EXPECT_EQ(c.seed, 99u);
  EXPECT_EQ(c.channel.latency.kind, sim::LatencyKind::kUniform);
  EXPECT_DOUBLE_EQ(c.channel.loss_probability, 0.05);
  EXPECT_EQ(c.channel.retransmit_timeout, sim::milliseconds(30));
  EXPECT_EQ(c.switch_config.install_latency.kind,
            sim::LatencyKind::kLognormal);
  EXPECT_EQ(c.switch_config.barrier_processing, sim::microseconds(50));
  EXPECT_FALSE(c.controller.use_barriers);
  EXPECT_EQ(c.flow, 7u);
  EXPECT_EQ(c.priority, 321);
  EXPECT_EQ(c.interval, sim::from_ms(12.5));
  EXPECT_FALSE(c.with_traffic);
  EXPECT_EQ(c.ttl, 32);
  EXPECT_EQ(c.warmup, sim::milliseconds(2));
}

TEST(ConfigTest, AllLatencyKindsParse) {
  for (const char* text : {
           R"({"kind": "constant", "ms": 1})",
           R"({"kind": "uniform", "lo_ms": 1, "hi_ms": 2})",
           R"({"kind": "exponential", "mean_ms": 1})",
           R"({"kind": "lognormal", "median_ms": 1, "sigma": 0.5})",
           R"({"kind": "pareto", "lo_ms": 0.5, "hi_ms": 50, "alpha": 1.3})",
       }) {
    const Result<json::Value> doc = json::parse(text);
    ASSERT_TRUE(doc.ok());
    EXPECT_TRUE(latency_from_json(doc.value()).ok()) << text;
  }
}

TEST(ConfigTest, LatencyRejectsBadInput) {
  for (const char* text : {
           R"("constant")",                                  // not an object
           R"({"ms": 1})",                                   // missing kind
           R"({"kind": "warp", "ms": 1})",                   // unknown kind
           R"({"kind": "constant"})",                        // missing field
           R"({"kind": "constant", "ms": -1})",              // negative
           R"({"kind": "uniform", "lo_ms": 5, "hi_ms": 1})", // inverted
           R"({"kind": "exponential", "mean_ms": 0})",       // zero mean
           R"({"kind": "pareto", "lo_ms": 0, "hi_ms": 1, "alpha": 1})",
       }) {
    const Result<json::Value> doc = json::parse(text);
    ASSERT_TRUE(doc.ok()) << text;
    EXPECT_FALSE(latency_from_json(doc.value()).ok()) << text;
  }
}

TEST(ConfigTest, UnknownFieldsRejected) {
  EXPECT_FALSE(parse(R"({"sedd": 1})").ok());
  EXPECT_FALSE(parse(R"({"channel": {"latencyy": {}}})").ok());
  EXPECT_FALSE(parse(R"({"traffic": {"rate": 1}})").ok());
  EXPECT_FALSE(parse(R"({"switch": {"install_ms": 1}})").ok());
}

TEST(ConfigTest, RangeChecks) {
  EXPECT_FALSE(parse(R"({"seed": -1})").ok());
  EXPECT_FALSE(parse(R"({"channel": {"loss": 1.5}})").ok());
  EXPECT_FALSE(parse(R"({"priority": 70000})").ok());
  EXPECT_FALSE(parse(R"({"interval_ms": -2})").ok());
  EXPECT_FALSE(parse(R"({"traffic": {"ttl": 0}})").ok());
  EXPECT_FALSE(parse(R"({"use_barriers": "yes"})").ok());
  EXPECT_FALSE(parse(R"({"max_in_flight": 0})").ok());
  EXPECT_FALSE(parse(R"({"batch_frames": 1})").ok());
  EXPECT_FALSE(parse(R"({"batch_mode": "eager"})").ok());
  EXPECT_FALSE(parse(R"({"batch_window_ms": -0.5})").ok());
  EXPECT_FALSE(parse(R"({"batch_bytes": 0})").ok());
  EXPECT_FALSE(parse(R"({"admission": "optimistic"})").ok());
  EXPECT_FALSE(parse(R"({"admission_release": "eventually"})").ok());
  EXPECT_FALSE(parse(R"({"shards": 0})").ok());
  EXPECT_FALSE(parse(R"({"shards": 257})").ok());
  EXPECT_FALSE(parse(R"({"partition": "modulo"})").ok());
  EXPECT_FALSE(parse(R"({"speculate": 1})").ok());
  EXPECT_FALSE(parse(R"({"steal": "yes"})").ok());
  EXPECT_FALSE(parse(R"({"switch": {"batch_replies": 1}})").ok());
  EXPECT_FALSE(parse(R"(42)").ok());
  EXPECT_FALSE(parse(R"(not json)").ok());
}

TEST(ConfigTest, ShardingKnobsParse) {
  const Result<ExecutorConfig> parsed = parse(
      R"({"shards": 8, "partition": "block",
          "admission_release": "round",
          "switch": {"batch_replies": true}})");
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().controller.shards, 8u);
  EXPECT_EQ(parsed.value().controller.partition,
            topo::PartitionScheme::kBlock);
  EXPECT_EQ(parsed.value().controller.admission_release,
            controller::AdmissionRelease::kRound);
  EXPECT_TRUE(parsed.value().switch_config.batch_replies);

  const Result<ExecutorConfig> optimized =
      parse(R"({"speculate": true, "steal": true})");
  ASSERT_TRUE(optimized.ok()) << optimized.error().to_string();
  EXPECT_TRUE(optimized.value().controller.speculate);
  EXPECT_TRUE(optimized.value().controller.steal);

  // Defaults: the single controller, per-request release, plain replies,
  // the parallel-stepper optimizations off.
  const Result<ExecutorConfig> defaults = parse("{}");
  ASSERT_TRUE(defaults.ok());
  EXPECT_EQ(defaults.value().controller.shards, 1u);
  EXPECT_EQ(defaults.value().controller.admission_release,
            controller::AdmissionRelease::kRequest);
  EXPECT_FALSE(defaults.value().switch_config.batch_replies);
  EXPECT_FALSE(defaults.value().controller.speculate);
  EXPECT_FALSE(defaults.value().controller.steal);
}

TEST(ConfigTest, ControllerKnobsParse) {
  const Result<ExecutorConfig> parsed = parse(
      R"({"max_in_flight": 64, "batch_frames": true,
          "batch_mode": "window", "batch_window_ms": 0.25,
          "batch_bytes": 8192, "admission": "conflict_aware"})");
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().controller.max_in_flight, 64u);
  // The explicit batch_mode retired the legacy batch_frames alias.
  EXPECT_FALSE(parsed.value().controller.batch_frames);
  EXPECT_EQ(parsed.value().controller.batch_mode,
            controller::BatchMode::kWindow);
  EXPECT_EQ(parsed.value().controller.batch_window, sim::microseconds(250));
  EXPECT_EQ(parsed.value().controller.batch_bytes, 8192u);
  EXPECT_EQ(parsed.value().controller.admission,
            controller::AdmissionPolicy::kConflictAware);
}

TEST(ConfigTest, LegacyBatchFramesMeansInstantUnlessModeExplicit) {
  const Result<ExecutorConfig> legacy = parse(R"({"batch_frames": true})");
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(controller::effective_batch_mode(legacy.value().controller),
            controller::BatchMode::kInstant);
  // A legacy config round-trips with its effective instant mode intact.
  const Result<ExecutorConfig> legacy_again = parse(
      std::string_view(json::write(config_to_json(legacy.value()))));
  ASSERT_TRUE(legacy_again.ok());
  EXPECT_EQ(controller::effective_batch_mode(legacy_again.value().controller),
            controller::BatchMode::kInstant);

  const Result<ExecutorConfig> explicit_mode =
      parse(R"({"batch_frames": true, "batch_mode": "adaptive"})");
  ASSERT_TRUE(explicit_mode.ok());
  EXPECT_EQ(
      controller::effective_batch_mode(explicit_mode.value().controller),
      controller::BatchMode::kAdaptive);

  // An explicit "off" overrides the legacy alias, whatever the key order.
  const Result<ExecutorConfig> explicit_off =
      parse(R"({"batch_mode": "off", "batch_frames": true})");
  ASSERT_TRUE(explicit_off.ok());
  EXPECT_EQ(controller::effective_batch_mode(explicit_off.value().controller),
            controller::BatchMode::kOff);

  const Result<ExecutorConfig> plain = parse(R"({})");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(controller::effective_batch_mode(plain.value().controller),
            controller::BatchMode::kOff);
}

TEST(ConfigTest, RoundTripThroughJson) {
  ExecutorConfig config;
  config.seed = 17;
  config.channel.latency =
      sim::LatencyModel::pareto(sim::microseconds(500),
                                sim::milliseconds(50), 1.3);
  config.channel.loss_probability = 0.02;
  config.controller.use_barriers = false;
  config.controller.max_in_flight = 32;
  config.controller.batch_frames = true;
  config.controller.batch_mode = controller::BatchMode::kAdaptive;
  config.controller.batch_window = sim::microseconds(750);
  config.controller.batch_bytes = 4096;
  config.controller.admission = controller::AdmissionPolicy::kSerialize;
  config.controller.admission_release = controller::AdmissionRelease::kRound;
  config.controller.shards = 4;
  config.controller.partition = topo::PartitionScheme::kBlock;
  config.controller.speculate = true;
  config.controller.steal = true;
  config.switch_config.batch_replies = true;
  config.with_traffic = false;
  config.ttl = 48;
  config.interval = sim::milliseconds(7);

  const std::string rendered = json::write(config_to_json(config));
  const Result<ExecutorConfig> reparsed =
      config_from_json(std::string_view(rendered));
  ASSERT_TRUE(reparsed.ok()) << rendered;
  const ExecutorConfig& c = reparsed.value();
  EXPECT_EQ(c.seed, 17u);
  EXPECT_EQ(c.channel.latency.kind, sim::LatencyKind::kPareto);
  EXPECT_NEAR(c.channel.latency.c, 1.3, 1e-9);
  EXPECT_DOUBLE_EQ(c.channel.loss_probability, 0.02);
  EXPECT_FALSE(c.controller.use_barriers);
  EXPECT_EQ(c.controller.max_in_flight, 32u);
  // batch_frames is an input-only legacy alias; the EFFECTIVE flush policy
  // is what must survive the trip.
  EXPECT_EQ(controller::effective_batch_mode(c.controller),
            controller::BatchMode::kAdaptive);
  EXPECT_EQ(c.controller.batch_mode, controller::BatchMode::kAdaptive);
  EXPECT_EQ(c.controller.batch_window, sim::microseconds(750));
  EXPECT_EQ(c.controller.batch_bytes, 4096u);
  EXPECT_EQ(c.controller.admission, controller::AdmissionPolicy::kSerialize);
  EXPECT_EQ(c.controller.admission_release,
            controller::AdmissionRelease::kRound);
  EXPECT_EQ(c.controller.shards, 4u);
  EXPECT_EQ(c.controller.partition, topo::PartitionScheme::kBlock);
  EXPECT_TRUE(c.controller.speculate);
  EXPECT_TRUE(c.controller.steal);
  EXPECT_TRUE(c.switch_config.batch_replies);
  EXPECT_FALSE(c.with_traffic);
  EXPECT_EQ(c.ttl, 48);
  EXPECT_EQ(c.interval, sim::milliseconds(7));
}

}  // namespace
}  // namespace tsu::core
