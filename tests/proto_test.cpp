#include <gtest/gtest.h>

#include <vector>

#include "tsu/proto/bytes.hpp"
#include "tsu/proto/codec.hpp"
#include "tsu/proto/messages.hpp"
#include "tsu/util/rng.hpp"

namespace tsu::proto {
namespace {

Message round_trip(const Message& message) {
  const std::vector<std::byte> wire = encode(message);
  Result<Message> decoded = decode(wire);
  EXPECT_TRUE(decoded.ok())
      << (decoded.ok() ? "" : decoded.error().to_string());
  return decoded.ok() ? std::move(decoded).value() : Message{};
}

// ------------------------------------------------------------------ bytes --

TEST(BytesTest, WriterBigEndian) {
  Writer w;
  w.u16(0x0102);
  w.u32(0x03040506);
  const auto& data = w.data();
  ASSERT_EQ(data.size(), 6u);
  EXPECT_EQ(static_cast<unsigned>(data[0]), 0x01u);
  EXPECT_EQ(static_cast<unsigned>(data[1]), 0x02u);
  EXPECT_EQ(static_cast<unsigned>(data[5]), 0x06u);
}

TEST(BytesTest, ReaderRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  Reader r(w.data());
  EXPECT_EQ(r.u8().value(), 0xab);
  EXPECT_EQ(r.u16().value(), 0x1234);
  EXPECT_EQ(r.u32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.u64().value(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.exhausted());
}

TEST(BytesTest, ReaderUnderflowErrors) {
  Writer w;
  w.u8(1);
  Reader r(w.data());
  EXPECT_TRUE(r.u8().ok());
  EXPECT_FALSE(r.u16().ok());
  EXPECT_FALSE(r.u8().ok());
}

TEST(BytesTest, SkipAndBytes) {
  Writer w;
  w.u32(0x01020304);
  Reader r(w.data());
  EXPECT_TRUE(r.skip(2).ok());
  const auto rest = r.bytes(2);
  ASSERT_TRUE(rest.ok());
  EXPECT_EQ(static_cast<unsigned>(rest.value()[0]), 3u);
  EXPECT_FALSE(r.skip(1).ok());
}

TEST(BytesTest, PatchU16) {
  Writer w;
  w.u16(0);
  w.u8(9);
  w.patch_u16(0, 0xbeef);
  Reader r(w.data());
  EXPECT_EQ(r.u16().value(), 0xbeef);
}

// ------------------------------------------------------------ round trips --

TEST(CodecTest, HelloRoundTrip) {
  const Message m = round_trip(make_hello(7));
  EXPECT_EQ(m.type(), MsgType::kHello);
  EXPECT_EQ(m.xid, 7u);
}

TEST(CodecTest, BarrierRoundTrip) {
  EXPECT_EQ(round_trip(make_barrier_request(9)).type(),
            MsgType::kBarrierRequest);
  EXPECT_EQ(round_trip(make_barrier_reply(10)).type(),
            MsgType::kBarrierReply);
}

TEST(CodecTest, EchoPayloadPreserved) {
  std::vector<std::byte> payload{std::byte{1}, std::byte{2}, std::byte{3}};
  const Message m = round_trip(make_echo_request(3, payload));
  EXPECT_EQ(m.type(), MsgType::kEchoRequest);
  EXPECT_EQ(std::get<Echo>(m.body).payload, payload);
  const Message reply = round_trip(make_echo_reply(4, payload));
  EXPECT_EQ(reply.type(), MsgType::kEchoReply);
}

TEST(CodecTest, ErrorTextPreserved) {
  const Message m = round_trip(make_error(5, 12, "table full"));
  const auto& err = std::get<Error>(m.body);
  EXPECT_EQ(err.code, 12);
  EXPECT_EQ(err.text, "table full");
}

TEST(CodecTest, FeaturesReplyRoundTrip) {
  Message m;
  m.xid = 2;
  m.body = FeaturesReply{0xaabbccddeeff0011ULL, 4};
  const Message decoded = round_trip(m);
  const auto& reply = std::get<FeaturesReply>(decoded.body);
  EXPECT_EQ(reply.datapath, 0xaabbccddeeff0011ULL);
  EXPECT_EQ(reply.n_tables, 4u);
}

TEST(CodecTest, FlowModAllCommands) {
  for (const FlowModCommand command :
       {FlowModCommand::kAdd, FlowModCommand::kModify, FlowModCommand::kDelete,
        FlowModCommand::kDeleteStrict}) {
    FlowMod mod;
    mod.command = command;
    mod.table = 3;
    mod.priority = 321;
    mod.cookie = 0x1122334455667788ULL;
    mod.match.flow = 99;
    mod.action = flow::Action::forward(5);
    const Message m = round_trip(make_flow_mod(11, mod));
    const auto& decoded = std::get<FlowMod>(m.body);
    EXPECT_EQ(decoded.command, command);
    EXPECT_EQ(decoded.table, 3);
    EXPECT_EQ(decoded.priority, 321);
    EXPECT_EQ(decoded.cookie, mod.cookie);
    EXPECT_EQ(decoded.match, mod.match);
    EXPECT_EQ(decoded.action, mod.action);
  }
}

TEST(CodecTest, FlowModMatchFieldCombinations) {
  for (int bits = 0; bits < 16; ++bits) {
    FlowMod mod;
    if (bits & 1) mod.match.flow = 1;
    if (bits & 2) mod.match.src_host = 2;
    if (bits & 4) mod.match.dst_host = 3;
    if (bits & 8) mod.match.in_port = 4;
    mod.action = flow::Action::deliver();
    const Message m = round_trip(make_flow_mod(1, mod));
    EXPECT_EQ(std::get<FlowMod>(m.body).match, mod.match) << "bits=" << bits;
  }
}

TEST(CodecTest, PacketOutRoundTrip) {
  Message m;
  m.xid = 77;
  PacketOut p;
  p.packet.flow = 3;
  p.packet.src_host = 1;
  p.packet.dst_host = 12;
  p.packet.in_port = 2;
  p.packet.ttl = 63;
  p.out_port = 4;
  m.body = p;
  const Message decoded = round_trip(m);
  const auto& out = std::get<PacketOut>(decoded.body);
  EXPECT_EQ(out.packet.flow, 3u);
  EXPECT_EQ(out.packet.ttl, 63);
  EXPECT_EQ(out.out_port, 4u);
}

// ---------------------------------------------------------------- framing --

TEST(CodecTest, LengthFieldMatchesFrameSize) {
  const std::vector<std::byte> wire = encode(make_barrier_request(1));
  const std::size_t declared =
      static_cast<std::size_t>(static_cast<std::uint8_t>(wire[2])) << 8 |
      static_cast<std::size_t>(static_cast<std::uint8_t>(wire[3]));
  EXPECT_EQ(declared, wire.size());
}

TEST(CodecTest, EncodedSizeMatchesEncodeForEveryBodyShape) {
  // encoded_size computes frame sizes from the layout without encoding;
  // this pins it to the encoder so the two cannot drift (the controller's
  // outbox byte budget depends on it).
  std::vector<Message> messages;
  messages.push_back(make_hello(1));
  messages.push_back(make_barrier_request(2));
  messages.push_back(make_barrier_reply(3));
  messages.push_back(make_error(4, 7, "try again"));
  messages.push_back(make_echo_request(5, {std::byte{1}, std::byte{2}}));
  messages.push_back(make_echo_reply(6));
  {
    Message features;
    features.xid = 7;
    features.body = FeaturesReply{42, 3};
    messages.push_back(features);
  }
  {
    Message out;
    out.xid = 8;
    out.body = PacketOut{flow::Packet{9, 1, 2, 3, 64}, 5};
    messages.push_back(out);
  }
  // FlowMods across every match-presence combination.
  for (int bits = 0; bits < 16; ++bits) {
    FlowMod mod;
    if ((bits & 1) != 0) mod.match.flow = 12;
    if ((bits & 2) != 0) mod.match.src_host = 3;
    if ((bits & 4) != 0) mod.match.dst_host = 4;
    if ((bits & 8) != 0) mod.match.in_port = 5;
    mod.action = flow::Action::forward(9);
    messages.push_back(make_flow_mod(100 + bits, mod));
  }
  for (const Message& m : messages)
    EXPECT_EQ(encoded_size(m), encode(m).size()) << m.to_string();
  // And a batch of all of the above.
  const Message batch = make_batch(999, messages);
  EXPECT_EQ(encoded_size(batch), encode(batch).size());
}

TEST(CodecTest, TruncatedFrameRejected) {
  std::vector<std::byte> wire = encode(make_error(5, 1, "text"));
  wire.resize(wire.size() - 3);
  EXPECT_FALSE(decode(wire).ok());
}

TEST(CodecTest, BadVersionRejected) {
  std::vector<std::byte> wire = encode(make_hello(1));
  wire[0] = std::byte{0x99};
  EXPECT_FALSE(decode(wire).ok());
}

TEST(CodecTest, UnknownTypeRejected) {
  std::vector<std::byte> wire = encode(make_hello(1));
  wire[1] = std::byte{0x7f};
  EXPECT_FALSE(decode(wire).ok());
}

TEST(CodecTest, HeaderShorterThanMinimumRejected) {
  const std::vector<std::byte> tiny(4, std::byte{0});
  EXPECT_FALSE(decode(tiny).ok());
}

TEST(CodecTest, TrailingBodyBytesRejected) {
  std::vector<std::byte> wire = encode(make_barrier_request(1));
  // Grow the frame and fix the declared length: extra body bytes must be
  // flagged because BarrierRequest has an empty body.
  wire.push_back(std::byte{0});
  wire[2] = std::byte{0};
  wire[3] = std::byte{static_cast<unsigned char>(wire.size())};
  EXPECT_FALSE(decode(wire).ok());
}

TEST(CodecTest, FuzzRandomBytesNeverCrash) {
  Rng rng(0xf22);
  for (int i = 0; i < 2000; ++i) {
    const std::size_t len = rng.uniform_u64(0, 64);
    std::vector<std::byte> junk(len);
    for (auto& b : junk) b = static_cast<std::byte>(rng.uniform_u64(0, 255));
    (void)decode(junk);  // must not crash; errors are fine
  }
}

TEST(CodecTest, FuzzTruncationsOfValidFramesNeverCrash) {
  FlowMod mod;
  mod.match.flow = 1;
  mod.match.src_host = 2;
  mod.action = flow::Action::forward(3);
  const std::vector<std::byte> wire = encode(make_flow_mod(5, mod));
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    std::vector<std::byte> truncated(wire.begin(),
                                     wire.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(decode(truncated).ok());
  }
}

TEST(CodecStreamTest, DecodesBackToBackFrames) {
  std::vector<std::byte> wire = encode(make_hello(1));
  const std::vector<std::byte> second = encode(make_barrier_request(2));
  wire.insert(wire.end(), second.begin(), second.end());
  const Result<DecodeStreamResult> result = decode_stream(wire);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().messages.size(), 2u);
  EXPECT_EQ(result.value().consumed, wire.size());
  EXPECT_EQ(result.value().messages[1].type(), MsgType::kBarrierRequest);
}

TEST(CodecStreamTest, StopsAtIncompleteTail) {
  std::vector<std::byte> wire = encode(make_hello(1));
  const std::size_t full = wire.size();
  const std::vector<std::byte> second = encode(make_barrier_request(2));
  wire.insert(wire.end(), second.begin(), second.end() - 2);  // cut tail
  const Result<DecodeStreamResult> result = decode_stream(wire);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().messages.size(), 1u);
  EXPECT_EQ(result.value().consumed, full);
}

TEST(CodecStreamTest, FuzzedLengthFieldsNeverCrashOrOverread) {
  // Exhaustive 16-bit sweep over the middle frame's length field of a
  // three-frame stream: truncated (< header), lying-short (cuts into the
  // real body), lying-long (claims bytes of the following frames) and
  // oversized (past the buffer) declarations. Whatever the value, the
  // decoder must either fail cleanly or stop at the "incomplete" tail -
  // never crash, never consume past the buffer. The span-backed Reader
  // makes any overread a real out-of-bounds, so this sweep is the codec's
  // bounds-check regression test.
  std::vector<std::byte> wire = encode(make_hello(1));
  const std::size_t second_at = wire.size();
  FlowMod mod;
  mod.match.flow = 7;
  mod.action = flow::Action::forward(2);
  const std::vector<std::byte> second = encode(make_flow_mod(9, mod));
  wire.insert(wire.end(), second.begin(), second.end());
  const std::vector<std::byte> third = encode(make_barrier_request(3));
  wire.insert(wire.end(), third.begin(), third.end());

  std::size_t parsed_ok = 0;
  for (unsigned declared = 0; declared <= 0xffff; ++declared) {
    std::vector<std::byte> fuzzed = wire;
    fuzzed[second_at + 2] = static_cast<std::byte>(declared >> 8);
    fuzzed[second_at + 3] = static_cast<std::byte>(declared & 0xff);
    const Result<DecodeStreamResult> result = decode_stream(fuzzed);
    if (!result.ok()) continue;
    ++parsed_ok;
    ASSERT_LE(result.value().consumed, fuzzed.size());
    // The untouched first frame always parses.
    ASSERT_GE(result.value().messages.size(), 1u);
    EXPECT_EQ(result.value().messages[0].type(), MsgType::kHello);
  }
  // The true length (and every "tail incomplete" stop) parses; most
  // corruptions do not. Both regimes must actually occur.
  EXPECT_GT(parsed_ok, 0u);
  EXPECT_LT(parsed_ok, 0x10000u);
}

TEST(CodecStreamTest, TruncationSweepNeverCrashes) {
  // Cut a three-frame stream at every byte boundary: each prefix must
  // yield the fully contained frames and cleanly report the rest as
  // incomplete.
  std::vector<std::byte> wire = encode(make_hello(1));
  const std::size_t first_len = wire.size();
  const std::vector<std::byte> second = encode(make_echo_request(
      2, std::vector<std::byte>(13, std::byte{0xab})));
  wire.insert(wire.end(), second.begin(), second.end());
  const std::size_t two_len = wire.size();
  const std::vector<std::byte> third = encode(make_barrier_request(3));
  wire.insert(wire.end(), third.begin(), third.end());

  for (std::size_t cut = 0; cut <= wire.size(); ++cut) {
    const Result<DecodeStreamResult> result = decode_stream(
        std::span<const std::byte>(wire.data(), cut));
    ASSERT_TRUE(result.ok()) << "cut=" << cut;
    const std::size_t expect =
        cut >= wire.size() ? 3u : cut >= two_len ? 2u : cut >= first_len ? 1u
                                                                        : 0u;
    EXPECT_EQ(result.value().messages.size(), expect) << "cut=" << cut;
    EXPECT_LE(result.value().consumed, cut) << "cut=" << cut;
  }
}

TEST(CodecTest, EncodeIntoMatchesEncodeAndReusesCapacity) {
  FlowMod mod;
  mod.match.flow = 5;
  mod.match.src_host = 1;
  mod.action = flow::Action::forward(4);
  std::vector<Message> group;
  group.push_back(make_flow_mod(10, mod));
  group.push_back(make_barrier_request(11));
  const Message samples[] = {
      make_hello(1),
      make_flow_mod(2, mod),
      make_echo_request(3, std::vector<std::byte>(32, std::byte{0x5a})),
      make_batch(4, std::move(group)),
  };
  std::vector<std::byte> scratch;
  for (const Message& message : samples) {
    encode_into(message, scratch);
    EXPECT_EQ(scratch, encode(message)) << message.to_string();
  }
  // The caller-owned scratch is reused, not reallocated: encoding a
  // smaller frame into warmed capacity must keep the same storage.
  encode_into(samples[3], scratch);  // largest of the set
  const std::size_t warm_capacity = scratch.capacity();
  const std::byte* warm_data = scratch.data();
  encode_into(samples[0], scratch);  // smallest
  EXPECT_EQ(scratch.capacity(), warm_capacity);
  EXPECT_EQ(scratch.data(), warm_data);
  EXPECT_EQ(scratch, encode(samples[0]));
}

// ------------------------------------------------------------------ batch --

TEST(CodecBatchTest, RoundTripsCoalescedMessages) {
  FlowMod mod;
  mod.command = FlowModCommand::kModify;
  mod.priority = 70;
  mod.match.flow = 9;
  mod.action = flow::Action::forward(4);
  std::vector<Message> group;
  group.push_back(make_flow_mod(10, mod));
  group.push_back(make_flow_mod(11, mod));
  group.push_back(make_barrier_request(12));
  const Message decoded = round_trip(make_batch(99, std::move(group)));
  ASSERT_EQ(decoded.type(), MsgType::kBatch);
  EXPECT_EQ(decoded.xid, 99u);
  const Batch& batch = std::get<Batch>(decoded.body);
  ASSERT_EQ(batch.messages.size(), 3u);
  EXPECT_EQ(batch.messages[0].type(), MsgType::kFlowMod);
  EXPECT_EQ(batch.messages[0].xid, 10u);
  EXPECT_EQ(std::get<FlowMod>(batch.messages[1].body).match.flow, 9u);
  EXPECT_EQ(batch.messages[2].type(), MsgType::kBarrierRequest);
  EXPECT_EQ(batch.messages[2].xid, 12u);
}

TEST(CodecBatchTest, EmptyBatchRoundTrips) {
  const Message decoded = round_trip(make_batch(1, {}));
  EXPECT_TRUE(std::get<Batch>(decoded.body).messages.empty());
}

TEST(CodecBatchTest, RejectsNestedBatchOnDecode) {
  // Hand-craft a batch frame whose single element is itself a batch (the
  // encoder refuses to produce one, so splice bytes together manually).
  const std::vector<std::byte> inner = encode(make_batch(2, {}));
  Writer w;
  w.u8(kProtocolVersion);
  w.u8(22);   // kBatch
  w.u16(static_cast<std::uint16_t>(8 + 2 + inner.size()));
  w.u32(1);   // xid
  w.u16(1);   // count
  w.bytes(inner);
  const Result<Message> decoded = decode(std::move(w).take());
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.error().message.find("batch inside batch"),
            std::string::npos);
}

TEST(CodecBatchTest, RejectsTruncatedElementAndTrailingBytes) {
  const std::vector<std::byte> wire =
      encode(make_batch(1, {make_barrier_request(2)}));
  // Chop the last byte of the contained frame: element truncated.
  std::vector<std::byte> cut(wire.begin(), wire.end() - 1);
  cut[2] = std::byte{0};
  cut[3] = static_cast<std::byte>(cut.size());
  EXPECT_FALSE(decode(cut).ok());
  // Declare one message but append two: trailing bytes.
  std::vector<std::byte> extra = wire;
  const std::vector<std::byte> spare = encode(make_barrier_request(3));
  extra.insert(extra.end(), spare.begin(), spare.end());
  const std::size_t total = extra.size();
  extra[2] = static_cast<std::byte>(total >> 8);
  extra[3] = static_cast<std::byte>(total & 0xff);
  EXPECT_FALSE(decode(extra).ok());
}

TEST(MessagesTest, TypeNamesAndToString) {
  EXPECT_STREQ(to_string(MsgType::kFlowMod), "FLOW_MOD");
  EXPECT_STREQ(to_string(FlowModCommand::kModify), "MODIFY");
  FlowMod mod;
  mod.match.flow = 8;
  mod.action = flow::Action::forward(2);
  const std::string text = make_flow_mod(3, mod).to_string();
  EXPECT_NE(text.find("FLOW_MOD"), std::string::npos);
  EXPECT_NE(text.find("flow=8"), std::string::npos);
}

}  // namespace
}  // namespace tsu::proto
