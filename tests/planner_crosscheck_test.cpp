// Randomized cross-check over every planner: on ~500 seeded random
// instances, each planner's rounds must exactly partition
// Instance::touched() (validate_schedule) and every round must pass the
// safety oracle for the property mask the algorithm claims to guarantee.
#include <gtest/gtest.h>

#include <cstddef>
#include <functional>
#include <vector>

#include "tsu/core/executor.hpp"
#include "tsu/topo/instances.hpp"
#include "tsu/update/oracle.hpp"
#include "tsu/update/schedule.hpp"
#include "tsu/update/schedulers.hpp"
#include "tsu/util/rng.hpp"

namespace tsu::update {
namespace {

struct PlannerCase {
  const char* name;
  // Property mask the algorithm claims for every transient state (0 for
  // the baselines, which guarantee nothing beyond a valid partition).
  std::uint32_t claimed;
  std::function<Result<Schedule>(const Instance&)> plan;
};

std::vector<PlannerCase> planner_cases() {
  return {
      {"oneshot", 0, [](const Instance& i) { return plan_oneshot(i); }},
      {"twophase", 0, [](const Instance& i) { return plan_twophase(i); }},
      {"wayup", kWayUpGuarantee,
       [](const Instance& i) { return plan_wayup(i); }},
      {"peacock", kPeacockGuarantee,
       [](const Instance& i) { return plan_peacock(i); }},
      {"slf_greedy", kSlfGuarantee,
       [](const Instance& i) { return plan_slf_greedy(i); }},
      {"secure", kTransientlySecure,
       [](const Instance& i) { return plan_secure(i); }},
  };
}

TEST(PlannerCrossCheckTest, AllPlannersPartitionAndSatisfyClaimedMask) {
  constexpr std::size_t kInstances = 500;
  Rng rng(0xc405cec);
  topo::RandomInstanceOptions options;  // defaults include a waypoint
  std::vector<PlannerCase> cases = planner_cases();
  std::vector<std::size_t> successes(cases.size(), 0);

  for (std::size_t n = 0; n < kInstances; ++n) {
    const Instance inst = topo::random_instance(rng, options);
    for (std::size_t c = 0; c < cases.size(); ++c) {
      const PlannerCase& planner = cases[c];
      const Result<Schedule> planned = planner.plan(inst);
      // Planners may legitimately decline (infeasible instance, search
      // limits); what they return must still be correct.
      if (!planned.ok()) continue;
      ++successes[c];
      const Schedule& schedule = planned.value();
      const Status valid = validate_schedule(inst, schedule);
      EXPECT_TRUE(valid.ok())
          << planner.name << " on instance " << n << ": "
          << valid.error().to_string() << "\n" << inst.to_string();
      if (planner.claimed == 0) continue;
      for (std::size_t r = 0; r < schedule.rounds.size(); ++r) {
        const StateMask applied = state_after_rounds(inst, schedule, r);
        EXPECT_TRUE(round_safe(inst, applied, schedule.rounds[r],
                               planner.claimed))
            << planner.name << " round " << r << " unsafe on instance " << n
            << "\n" << inst.to_string() << "\n" << schedule.to_string();
      }
    }
  }

  // The sweep must actually have exercised every planner.
  for (std::size_t c = 0; c < cases.size(); ++c)
    EXPECT_GT(successes[c], 0u) << cases[c].name << " never succeeded";
  // The unconditional baseline plans every instance.
  EXPECT_EQ(successes[0], kInstances);
}

TEST(PlannerCrossCheckTest, NoWaypointFamilyAlsoHolds) {
  constexpr std::size_t kInstances = 200;
  Rng rng(0xbead);
  topo::RandomInstanceOptions options;
  options.with_waypoint = false;
  std::size_t peacock_ok = 0;
  for (std::size_t n = 0; n < kInstances; ++n) {
    const Instance inst = topo::random_instance(rng, options);
    const Result<Schedule> planned = plan_peacock(inst);
    if (!planned.ok()) continue;
    ++peacock_ok;
    EXPECT_TRUE(validate_schedule(inst, planned.value()).ok());
    for (std::size_t r = 0; r < planned.value().rounds.size(); ++r) {
      const StateMask applied = state_after_rounds(inst, planned.value(), r);
      EXPECT_TRUE(round_safe(inst, applied, planned.value().rounds[r],
                             kPeacockGuarantee))
          << "peacock round " << r << " unsafe on instance " << n;
    }
  }
  EXPECT_GT(peacock_ok, kInstances / 2);
}

TEST(PlannerCrossCheckTest, ConflictAwareMatchesSerializedOnOverlaps) {
  // Execution-level cross-check on overlapping-footprint workloads: flows
  // sharing a small switch pool (switch-level overlap, rule-level
  // disjoint), run under jittery latencies. The conflict-aware concurrent
  // run must report exactly the per-flow violation counts of the fully
  // serialized run - here zero on both sides, since every schedule is a
  // consistent Peacock plan; any rule race would break the equality.
  constexpr std::size_t kRounds = 12;
  constexpr std::size_t kFlows = 12;
  constexpr std::size_t kPool = 24;  // 4 blocks: 3 flows share each block
  for (std::uint64_t round = 0; round < kRounds; ++round) {
    const topo::PlannedPoolWorkload w =
        topo::planned_pool_workload(kFlows, kPool).value();

    core::ExecutorConfig config;
    config.seed = 1000 + round;
    config.channel.latency = sim::LatencyModel::uniform(
        sim::microseconds(100), sim::milliseconds(4));
    config.switch_config.install_latency =
        sim::LatencyModel::lognormal(sim::milliseconds(1), 0.8);

    const Result<std::vector<core::ExecutionResult>> serialized =
        core::execute_queue(w.instance_ptrs, w.schedule_ptrs, config);
    core::ExecutorConfig concurrent_config = config;
    concurrent_config.controller.max_in_flight = kFlows;
    concurrent_config.controller.admission =
        controller::AdmissionPolicy::kConflictAware;
    const Result<core::MultiFlowExecutionResult> concurrent =
        core::execute_multiflow(w.instance_ptrs, w.schedule_ptrs,
                                concurrent_config);
    ASSERT_TRUE(serialized.ok()) << serialized.error().to_string();
    ASSERT_TRUE(concurrent.ok()) << concurrent.error().to_string();

    ASSERT_EQ(concurrent.value().flows.size(), kFlows);
    for (std::size_t i = 0; i < kFlows; ++i) {
      const dataplane::MonitorReport& s = serialized.value()[i].traffic;
      const dataplane::MonitorReport& c = concurrent.value().flows[i].traffic;
      EXPECT_GT(c.total, 0u) << "round " << round << " flow " << i;
      EXPECT_EQ(c.bypassed, s.bypassed) << "round " << round << " flow " << i;
      EXPECT_EQ(c.looped, s.looped) << "round " << round << " flow " << i;
      EXPECT_EQ(c.blackholed, s.blackholed)
          << "round " << round << " flow " << i;
    }
    // Rule-level tracking found no conflicts, so the concurrent run really
    // overlapped the updates it was allowed to overlap.
    EXPECT_EQ(concurrent.value().conflict_edges, 0u);
    EXPECT_GT(concurrent.value().max_in_flight_observed, 1u);
  }
}

}  // namespace
}  // namespace tsu::update
