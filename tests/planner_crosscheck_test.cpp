// Randomized cross-check over every planner: on ~500 seeded random
// instances, each planner's rounds must exactly partition
// Instance::touched() (validate_schedule) and every round must pass the
// safety oracle for the property mask the algorithm claims to guarantee.
#include <gtest/gtest.h>

#include <cstddef>
#include <functional>
#include <vector>

#include "tsu/topo/instances.hpp"
#include "tsu/update/oracle.hpp"
#include "tsu/update/schedule.hpp"
#include "tsu/update/schedulers.hpp"
#include "tsu/util/rng.hpp"

namespace tsu::update {
namespace {

struct PlannerCase {
  const char* name;
  // Property mask the algorithm claims for every transient state (0 for
  // the baselines, which guarantee nothing beyond a valid partition).
  std::uint32_t claimed;
  std::function<Result<Schedule>(const Instance&)> plan;
};

std::vector<PlannerCase> planner_cases() {
  return {
      {"oneshot", 0, [](const Instance& i) { return plan_oneshot(i); }},
      {"twophase", 0, [](const Instance& i) { return plan_twophase(i); }},
      {"wayup", kWayUpGuarantee,
       [](const Instance& i) { return plan_wayup(i); }},
      {"peacock", kPeacockGuarantee,
       [](const Instance& i) { return plan_peacock(i); }},
      {"slf_greedy", kSlfGuarantee,
       [](const Instance& i) { return plan_slf_greedy(i); }},
      {"secure", kTransientlySecure,
       [](const Instance& i) { return plan_secure(i); }},
  };
}

TEST(PlannerCrossCheckTest, AllPlannersPartitionAndSatisfyClaimedMask) {
  constexpr std::size_t kInstances = 500;
  Rng rng(0xc405cec);
  topo::RandomInstanceOptions options;  // defaults include a waypoint
  std::vector<PlannerCase> cases = planner_cases();
  std::vector<std::size_t> successes(cases.size(), 0);

  for (std::size_t n = 0; n < kInstances; ++n) {
    const Instance inst = topo::random_instance(rng, options);
    for (std::size_t c = 0; c < cases.size(); ++c) {
      const PlannerCase& planner = cases[c];
      const Result<Schedule> planned = planner.plan(inst);
      // Planners may legitimately decline (infeasible instance, search
      // limits); what they return must still be correct.
      if (!planned.ok()) continue;
      ++successes[c];
      const Schedule& schedule = planned.value();
      const Status valid = validate_schedule(inst, schedule);
      EXPECT_TRUE(valid.ok())
          << planner.name << " on instance " << n << ": "
          << valid.error().to_string() << "\n" << inst.to_string();
      if (planner.claimed == 0) continue;
      for (std::size_t r = 0; r < schedule.rounds.size(); ++r) {
        const StateMask applied = state_after_rounds(inst, schedule, r);
        EXPECT_TRUE(round_safe(inst, applied, schedule.rounds[r],
                               planner.claimed))
            << planner.name << " round " << r << " unsafe on instance " << n
            << "\n" << inst.to_string() << "\n" << schedule.to_string();
      }
    }
  }

  // The sweep must actually have exercised every planner.
  for (std::size_t c = 0; c < cases.size(); ++c)
    EXPECT_GT(successes[c], 0u) << cases[c].name << " never succeeded";
  // The unconditional baseline plans every instance.
  EXPECT_EQ(successes[0], kInstances);
}

TEST(PlannerCrossCheckTest, NoWaypointFamilyAlsoHolds) {
  constexpr std::size_t kInstances = 200;
  Rng rng(0xbead);
  topo::RandomInstanceOptions options;
  options.with_waypoint = false;
  std::size_t peacock_ok = 0;
  for (std::size_t n = 0; n < kInstances; ++n) {
    const Instance inst = topo::random_instance(rng, options);
    const Result<Schedule> planned = plan_peacock(inst);
    if (!planned.ok()) continue;
    ++peacock_ok;
    EXPECT_TRUE(validate_schedule(inst, planned.value()).ok());
    for (std::size_t r = 0; r < planned.value().rounds.size(); ++r) {
      const StateMask applied = state_after_rounds(inst, planned.value(), r);
      EXPECT_TRUE(round_safe(inst, applied, planned.value().rounds[r],
                             kPeacockGuarantee))
          << "peacock round " << r << " unsafe on instance " << n;
    }
  }
  EXPECT_GT(peacock_ok, kInstances / 2);
}

}  // namespace
}  // namespace tsu::update
