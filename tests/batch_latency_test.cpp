// Latency regression suite for the windowed outbox: the hold window is a
// real bound (no FlowMod sits in an outbox longer than batch_window past
// readiness), a single flow pays at most one window per round, the
// adaptive mode collapses to an immediate flush when the control plane is
// idle, barrier rounds always flush (500-seed liveness sweep across random
// modes, windows, budgets and admission policies - no deadlock against the
// dependency DAG), and byte-budget flushes cancel armed timers without
// growing the event-queue heap past its compaction bound.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "tsu/core/executor.hpp"
#include "tsu/topo/instances.hpp"
#include "tsu/util/rng.hpp"

namespace tsu::core {
namespace {

ExecutorConfig constant_config(std::uint64_t seed) {
  ExecutorConfig config;
  config.seed = seed;
  config.channel.latency = sim::LatencyModel::constant(sim::microseconds(200));
  config.switch_config.install_latency =
      sim::LatencyModel::constant(sim::microseconds(100));
  config.with_traffic = false;
  config.warmup = sim::milliseconds(1);
  config.drain = sim::milliseconds(1);
  return config;
}

TEST(BatchLatencyTest, HoldNeverExceedsWindowUnderLoad) {
  const topo::PlannedPoolWorkload w =
      topo::planned_pool_workload(48, 6).value();
  for (const controller::BatchMode mode :
       {controller::BatchMode::kWindow, controller::BatchMode::kAdaptive}) {
    ExecutorConfig config = constant_config(3);
    config.controller.max_in_flight = 48;
    config.controller.batch_mode = mode;
    config.controller.batch_window = sim::microseconds(300);
    const Result<MultiFlowExecutionResult> run =
        execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
    ASSERT_TRUE(run.ok()) << run.error().to_string();
    // Timers really fired, something really got held...
    EXPECT_GT(run.value().batching.timer_flushes, 0u);
    EXPECT_GT(run.value().batching.max_hold, 0u);
    // ...and never longer than the window.
    EXPECT_LE(run.value().batching.max_hold, config.controller.batch_window)
        << controller::to_string(mode);
  }
}

TEST(BatchLatencyTest, SingleFlowPaysAtMostOneWindowPerRound) {
  const topo::PlannedPoolWorkload w = topo::planned_pool_workload(1, 6).value();
  const sim::Duration window = sim::microseconds(400);

  ExecutorConfig config = constant_config(5);
  config.controller.batch_mode = controller::BatchMode::kInstant;
  const Result<MultiFlowExecutionResult> instant =
      execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
  ASSERT_TRUE(instant.ok()) << instant.error().to_string();

  config.controller.batch_mode = controller::BatchMode::kWindow;
  config.controller.batch_window = window;
  const Result<MultiFlowExecutionResult> windowed =
      execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
  ASSERT_TRUE(windowed.ok()) << windowed.error().to_string();

  const sim::Duration instant_duration =
      instant.value().flows[0].update.duration();
  const sim::Duration windowed_duration =
      windowed.value().flows[0].update.duration();
  const std::size_t rounds = windowed.value().flows[0].update.rounds.size();
  ASSERT_GT(rounds, 0u);
  // Holding costs something but at most one full window per round (each
  // round's outbox fill arms exactly one timer per touched switch, all at
  // the round's first instant).
  EXPECT_GE(windowed_duration, instant_duration);
  EXPECT_LE(windowed_duration, instant_duration + rounds * window);
  EXPECT_LE(windowed.value().batching.max_hold, window);
}

TEST(BatchLatencyTest, AdaptiveCollapsesToImmediateFlushWhenIdle) {
  // One flow, nothing queued behind it: queue pressure never exceeds 1, so
  // the adaptive window is zero at every round boundary - the run must
  // match same-instant batching exactly, with zero hold.
  const topo::PlannedPoolWorkload w = topo::planned_pool_workload(1, 6).value();
  ExecutorConfig config = constant_config(9);
  config.controller.batch_mode = controller::BatchMode::kInstant;
  const Result<MultiFlowExecutionResult> instant =
      execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
  ASSERT_TRUE(instant.ok());

  config.controller.batch_mode = controller::BatchMode::kAdaptive;
  config.controller.batch_window = sim::milliseconds(5);  // would be visible
  const Result<MultiFlowExecutionResult> adaptive =
      execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
  ASSERT_TRUE(adaptive.ok());

  EXPECT_EQ(adaptive.value().batching.max_hold, 0u);
  EXPECT_EQ(adaptive.value().flows[0].update.duration(),
            instant.value().flows[0].update.duration());
  EXPECT_EQ(adaptive.value().final_state_digest,
            instant.value().final_state_digest);
}

TEST(BatchLatencyTest, BudgetFlushesCancelTimersWithoutLosingMessages) {
  // A tiny byte budget force-flushes nearly every fill ahead of its timer:
  // heavy cancel churn against the lazy-cancel event queue, with the run
  // still completing and still state-identical to the unbatched run.
  const topo::PlannedPoolWorkload w =
      topo::planned_pool_workload(32, 6).value();
  ExecutorConfig config = constant_config(11);
  config.controller.max_in_flight = 32;

  config.controller.batch_mode = controller::BatchMode::kOff;
  const Result<MultiFlowExecutionResult> off =
      execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
  ASSERT_TRUE(off.ok());

  config.controller.batch_mode = controller::BatchMode::kWindow;
  config.controller.batch_window = sim::milliseconds(1);
  config.controller.batch_bytes = 100;  // ~2-3 FlowMods
  const Result<MultiFlowExecutionResult> tiny =
      execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
  ASSERT_TRUE(tiny.ok()) << tiny.error().to_string();
  EXPECT_GT(tiny.value().batching.budget_flushes, 0u);
  EXPECT_GT(tiny.value().batching.flush_timers_cancelled, 0u);
  EXPECT_EQ(tiny.value().final_state_digest, off.value().final_state_digest);
  EXPECT_LE(tiny.value().batching.max_hold, config.controller.batch_window);
}

TEST(BatchLatencyTest, BarrierRoundsAlwaysFlushLiveness500Seeds) {
  // Random tiny workloads under random flush policies, windows (including
  // zero), byte budgets, admission policies and concurrency limits: every
  // run must complete every update (run_engine fails the run if the
  // simulation drains first, which is exactly what an outbox deadlock -
  // a barrier stuck behind a never-firing flush - would look like).
  for (std::uint64_t seed = 1; seed <= 500; ++seed) {
    Rng rng(seed);
    const std::size_t flows = 1 + rng.index(5);
    const std::size_t switches = 6 * (1 + rng.index(2));
    const topo::PlannedPoolWorkload w =
        topo::planned_pool_workload(flows, switches).value();

    ExecutorConfig config = constant_config(seed);
    config.controller.batch_mode =
        static_cast<controller::BatchMode>(rng.index(4));
    config.controller.batch_window = sim::microseconds(rng.index(2000));
    config.controller.batch_bytes = 64 + rng.index(2048);
    config.controller.admission =
        static_cast<controller::AdmissionPolicy>(rng.index(3));
    config.controller.max_in_flight = 1 + rng.index(flows);
    config.interval = rng.index(2) == 0 ? 0 : sim::microseconds(500);

    const Result<MultiFlowExecutionResult> run =
        execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
    ASSERT_TRUE(run.ok()) << "seed " << seed << ": "
                          << run.error().to_string();
    ASSERT_EQ(run.value().flows.size(), flows) << "seed " << seed;
    EXPECT_LE(run.value().batching.max_hold, config.controller.batch_window)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace tsu::core
