// FaultSchedule as plain, replayable data: JSON round trips preserve the
// exact event list, seeded generation is deterministic, an empty schedule
// leaves the engine bit-identical, and a serialized schedule replays the
// same digest-pinned trace it was recorded from.
#include <gtest/gtest.h>

#include "tsu/core/executor.hpp"
#include "tsu/json/json.hpp"
#include "tsu/sim/faults.hpp"
#include "tsu/verify/transient.hpp"
#include "multiflow_workload.hpp"

namespace tsu::sim {
namespace {

FaultSchedule sample_schedule() {
  FaultSchedule schedule;
  FaultEvent crash;
  crash.kind = FaultKind::kSwitchCrash;
  crash.at = milliseconds(3);
  crash.node = 4;
  crash.down_for = milliseconds(2);
  crash.lose_state = true;
  schedule.add(crash);
  FaultEvent warm = crash;
  warm.at = milliseconds(8);
  warm.node = 10;
  warm.lose_state = false;
  schedule.add(warm);
  FaultEvent link;
  link.kind = FaultKind::kLinkDown;
  link.at = milliseconds(5);
  link.node = 7;
  link.down_for = milliseconds(1);
  schedule.add(link);
  FaultEvent hole;
  hole.kind = FaultKind::kBlackhole;
  hole.at = milliseconds(2);
  hole.node = 1;
  hole.frames = 3;
  schedule.add(hole);
  return schedule;
}

TEST(FaultScheduleTest, AddKeepsEventsSortedByTime) {
  const FaultSchedule schedule = sample_schedule();
  ASSERT_EQ(schedule.size(), 4u);
  for (std::size_t i = 1; i < schedule.size(); ++i)
    EXPECT_LE(schedule.events()[i - 1].at, schedule.events()[i].at);
  EXPECT_EQ(schedule.events().front().kind, FaultKind::kBlackhole);
}

TEST(FaultScheduleTest, FaultScheduleRoundTrips) {
  const FaultSchedule schedule = sample_schedule();

  // Value round trip and textual round trip both reproduce the schedule.
  const Result<FaultSchedule> via_value =
      FaultSchedule::from_json(schedule.to_json());
  ASSERT_TRUE(via_value.ok()) << via_value.error().to_string();
  EXPECT_EQ(via_value.value(), schedule);

  const std::string text = json::write(schedule.to_json());
  const Result<FaultSchedule> via_text =
      FaultSchedule::from_json(std::string_view(text));
  ASSERT_TRUE(via_text.ok()) << via_text.error().to_string();
  EXPECT_EQ(via_text.value(), schedule);

  // The replay contract behind `sim_cli --faults`: running the engine from
  // the reparsed schedule reproduces the recorded run exactly - same final
  // forwarding state, same fault trace, same makespan.
  const testutil::Workload w = testutil::disjoint_workload(2);
  core::ExecutorConfig config;
  config.warmup = milliseconds(2);
  config.drain = milliseconds(8);
  config.controller.liveness_timeout = milliseconds(3);
  config.faults = schedule;
  const Result<core::MultiFlowExecutionResult> recorded =
      core::execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
  ASSERT_TRUE(recorded.ok()) << recorded.error().to_string();

  config.faults = via_text.value();
  const Result<core::MultiFlowExecutionResult> replayed =
      core::execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
  ASSERT_TRUE(replayed.ok()) << replayed.error().to_string();

  EXPECT_EQ(replayed.value().final_state_digest,
            recorded.value().final_state_digest);
  EXPECT_EQ(replayed.value().initial_state_digest,
            recorded.value().initial_state_digest);
  EXPECT_EQ(replayed.value().makespan, recorded.value().makespan);
  EXPECT_EQ(replayed.value().frames_sent, recorded.value().frames_sent);
  EXPECT_EQ(replayed.value().faults.crashes, recorded.value().faults.crashes);
  EXPECT_EQ(replayed.value().faults.resyncs, recorded.value().faults.resyncs);
  EXPECT_EQ(replayed.value().faults.resync_frames,
            recorded.value().faults.resync_frames);
  EXPECT_EQ(replayed.value().faults.retries, recorded.value().faults.retries);
  EXPECT_EQ(replayed.value().faults.frames_lost,
            recorded.value().faults.frames_lost);
  EXPECT_EQ(replayed.value().faults.recovery_ms,
            recorded.value().faults.recovery_ms);
}

TEST(FaultScheduleTest, FromJsonAcceptsBareEventsArray) {
  const Result<FaultSchedule> parsed = FaultSchedule::from_json(
      std::string_view("[{\"kind\":\"crash\",\"at_ms\":4,\"node\":2,"
                       "\"down_ms\":1.5}]"));
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  ASSERT_EQ(parsed.value().size(), 1u);
  EXPECT_EQ(parsed.value().events()[0].kind, FaultKind::kSwitchCrash);
  EXPECT_EQ(parsed.value().events()[0].node, 2u);
  EXPECT_EQ(parsed.value().events()[0].down_for, microseconds(1500));
  EXPECT_TRUE(parsed.value().events()[0].lose_state);  // defaulted
}

TEST(FaultScheduleTest, FromJsonRejectsMalformedEvents) {
  EXPECT_FALSE(FaultSchedule::from_json(
                   std::string_view("{\"events\": 3}")).ok());
  EXPECT_FALSE(
      FaultSchedule::from_json(
          std::string_view("[{\"kind\":\"melt\",\"at_ms\":1,\"node\":0}]"))
          .ok());
  EXPECT_FALSE(  // crash without a down window
      FaultSchedule::from_json(
          std::string_view("[{\"kind\":\"crash\",\"at_ms\":1,\"node\":0}]"))
          .ok());
  EXPECT_FALSE(  // negative time
      FaultSchedule::from_json(
          std::string_view("[{\"kind\":\"blackhole\",\"at_ms\":-1,"
                           "\"node\":0}]"))
          .ok());
  EXPECT_FALSE(  // zero-frame blackhole
      FaultSchedule::from_json(
          std::string_view("[{\"kind\":\"blackhole\",\"at_ms\":1,\"node\":0,"
                           "\"frames\":0}]"))
          .ok());
}

TEST(FaultScheduleTest, RandomGenerationIsSeedDeterministic) {
  ChaosOptions options;
  options.node_count = 24;
  options.start_ms = 1;
  options.horizon_ms = 20;
  options.crashes = 3;
  options.link_downs = 2;
  options.blackholes = 2;
  const FaultSchedule a = FaultSchedule::random(7, options);
  const FaultSchedule b = FaultSchedule::random(7, options);
  const FaultSchedule c = FaultSchedule::random(8, options);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  ASSERT_EQ(a.size(), 7u);
  for (const FaultEvent& event : a.events()) {
    EXPECT_LT(event.node, options.node_count);
    EXPECT_GE(event.at, milliseconds(1));
    EXPECT_LE(event.at, milliseconds(21));
    if (event.kind != FaultKind::kBlackhole) {
      EXPECT_GE(event.down_for, from_ms(options.min_down_ms));
      EXPECT_LE(event.down_for, from_ms(options.max_down_ms));
    } else {
      EXPECT_GE(event.frames, 1u);
      EXPECT_LE(event.frames, options.max_blackhole_frames);
    }
  }
}

TEST(FaultScheduleTest, EmptyScheduleLeavesEngineBitIdentical) {
  // The subsystem's core invariant: with no faults injected, enabling the
  // fault-tolerance machinery (shadow tables, send fencing, liveness
  // timers) must not perturb the run - same forwarding state, same frames,
  // same makespan, same packet outcomes, and every fault counter zero.
  const testutil::Workload w = testutil::disjoint_workload(3);
  core::ExecutorConfig plain;
  plain.drain = milliseconds(8);
  const Result<core::MultiFlowExecutionResult> baseline =
      core::execute_multiflow(w.instance_ptrs, w.schedule_ptrs, plain);
  ASSERT_TRUE(baseline.ok()) << baseline.error().to_string();

  core::ExecutorConfig armed = plain;
  armed.controller.liveness_timeout = milliseconds(5);
  const Result<core::MultiFlowExecutionResult> guarded =
      core::execute_multiflow(w.instance_ptrs, w.schedule_ptrs, armed);
  ASSERT_TRUE(guarded.ok()) << guarded.error().to_string();

  EXPECT_EQ(guarded.value().final_state_digest,
            baseline.value().final_state_digest);
  EXPECT_EQ(guarded.value().initial_state_digest,
            baseline.value().initial_state_digest);
  EXPECT_EQ(guarded.value().frames_sent, baseline.value().frames_sent);
  EXPECT_EQ(guarded.value().makespan, baseline.value().makespan);
  EXPECT_EQ(guarded.value().aggregate.total, baseline.value().aggregate.total);
  EXPECT_EQ(guarded.value().aggregate.delivered,
            baseline.value().aggregate.delivered);
  EXPECT_FALSE(guarded.value().faults.any());
  EXPECT_EQ(guarded.value().faults.resyncs, 0u);
  EXPECT_EQ(guarded.value().faults.retries, 0u);
  EXPECT_EQ(guarded.value().faults.frames_lost, 0u);

  // And the transient oracle agrees a fault-free trace is trivially clean.
  const verify::TransientCheckReport report = verify::check_fault_trace(
      FaultSchedule{}, guarded.value().faults, guarded.value().aggregate,
      w.instances.size(), guarded.value().flows.size());
  EXPECT_TRUE(report.ok) << report.to_string();
}

TEST(FaultScheduleTest, ExecutorRejectsFaultsOnUnknownSwitch) {
  const testutil::Workload w = testutil::disjoint_workload(1);
  core::ExecutorConfig config;
  FaultEvent crash;
  crash.kind = FaultKind::kSwitchCrash;
  crash.at = milliseconds(3);
  crash.node = 99;  // pool only has nodes 0..5
  crash.down_for = milliseconds(1);
  config.faults.add(crash);
  const Result<core::MultiFlowExecutionResult> run =
      core::execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
  EXPECT_FALSE(run.ok());
}

TEST(FaultScheduleTest, RecoveryPercentilesSummarizeSamples) {
  FaultStats stats;
  EXPECT_EQ(stats.recovery_p50_ms(), 0.0);
  stats.recovery_ms = {4.0, 1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(stats.recovery_p50_ms(), 2.5);
  EXPECT_GE(stats.recovery_p99_ms(), 3.9);
  EXPECT_LE(stats.recovery_p99_ms(), 4.0);
}

}  // namespace
}  // namespace tsu::sim
