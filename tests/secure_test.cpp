// Tests for the joint WPE + relaxed-loop-freedom scheduler (the
// SIGMETRICS'16 "transiently secure" combination, extension over the demo).
#include <gtest/gtest.h>

#include "tsu/topo/instances.hpp"
#include "tsu/update/schedulers.hpp"
#include "tsu/util/rng.hpp"
#include "tsu/verify/checker.hpp"

namespace tsu::update {
namespace {

TEST(SecureTest, RequiresWaypoint) {
  Result<Instance> inst = Instance::make({0, 1, 2}, {0, 3, 2});
  ASSERT_TRUE(inst.ok());
  EXPECT_FALSE(plan_secure(inst.value()).ok());
}

TEST(SecureTest, SolvesConflictFreeInstances) {
  // Disjoint interiors except the waypoint: jointly secure in few rounds.
  Result<Instance> inst =
      Instance::make({1, 2, 3, 4, 9}, {1, 5, 3, 6, 9}, NodeId{3});
  ASSERT_TRUE(inst.ok());
  const Result<Schedule> schedule = plan_secure(inst.value());
  ASSERT_TRUE(schedule.ok()) << schedule.error().to_string();
  const verify::CheckReport report = verify::check_schedule(
      inst.value(), schedule.value(), kTransientlySecure);
  EXPECT_TRUE(report.ok) << report.to_string();
}

TEST(SecureTest, Fig1IsJointlyInfeasible) {
  // The paper's own demo scenario admits NO schedule that is both
  // waypoint-enforcing and loop-free in every transient state - the
  // impossibility behind running WayUp and Peacock as separate algorithms
  // (HotNets'14 / SIGMETRICS'16). plan_secure must detect this exactly
  // (the fallback search enumerates the full round space).
  const Instance inst = topo::fig1().instance;
  const Result<Schedule> schedule = plan_secure(inst);
  ASSERT_FALSE(schedule.ok());
  EXPECT_EQ(schedule.error().code, Errc::kExhausted);
}

TEST(SecureTest, SmallConflictInstanceIsFeasibleViaWaypointFirst) {
  // old 0->1->2->3, new 0->2->1->3, wp = 1: looks like the WPE/WLF
  // conflict in miniature (X = {2} guards the bypass), but flipping the
  // *waypoint's own rule* first (1 -> 3) resolves it:
  //   R1 {1}: traffic 0->1->3, via wp, loop-free in both subset states;
  //   R2 {2}: node 2 is off the live path - invisible;
  //   R3 {0}: traffic 0->2->1->3, via wp.
  // plan_secure must find a jointly secure schedule here.
  Result<Instance> inst =
      Instance::make({0, 1, 2, 3}, {0, 2, 1, 3}, NodeId{1});
  ASSERT_TRUE(inst.ok());
  const Result<Schedule> joint = plan_secure(inst.value());
  ASSERT_TRUE(joint.ok()) << joint.error().to_string();
  EXPECT_TRUE(verify::check_schedule(inst.value(), joint.value(),
                                     kTransientlySecure)
                  .ok);
  // The hand-derived 3-round schedule above is itself valid.
  Schedule manual;
  manual.algorithm = "manual";
  manual.rounds = {{1}, {2}, {0}};
  EXPECT_TRUE(verify::check_schedule(inst.value(), manual,
                                     kTransientlySecure)
                  .ok);
}

TEST(SecureTest, SchedulesAreActuallySecureWhenFeasible) {
  Rng rng(606060);
  topo::RandomInstanceOptions options;
  options.old_interior_max = 5;
  options.new_len_max = 5;
  int feasible = 0;
  int checked = 0;
  for (int i = 0; i < 60; ++i) {
    const Instance inst = topo::random_instance(rng, options);
    if (inst.touched().size() > 12) continue;
    ++checked;
    const Result<Schedule> schedule = plan_secure(inst);
    if (!schedule.ok()) continue;
    ++feasible;
    EXPECT_TRUE(validate_schedule(inst, schedule.value()).ok());
    const verify::CheckReport report =
        verify::check_schedule(inst, schedule.value(), kTransientlySecure);
    EXPECT_TRUE(report.ok)
        << inst.to_string() << "\n" << schedule.value().to_string() << "\n"
        << report.to_string();
  }
  // Both outcomes must occur on a healthy sample: some instances are
  // jointly securable, some are not.
  EXPECT_GT(feasible, 0);
  EXPECT_LT(feasible, checked);
}

TEST(SecureTest, InfeasibilityVerdictMatchesExhaustiveSearch) {
  // Whenever plan_secure says infeasible on a small instance, the direct
  // exhaustive search must agree (and vice versa).
  Rng rng(717171);
  topo::RandomInstanceOptions options;
  options.old_interior_max = 4;
  options.new_len_max = 4;
  for (int i = 0; i < 30; ++i) {
    const Instance inst = topo::random_instance(rng, options);
    if (inst.touched().size() > 9) continue;
    const bool greedy_feasible = plan_secure(inst).ok();
    const bool search_feasible =
        search_rounds(inst, empty_state(inst), inst.touched(),
                      kTransientlySecure, inst.touched().size(),
                      OracleOptions{})
            .ok();
    EXPECT_EQ(greedy_feasible, search_feasible) << inst.to_string();
  }
}

}  // namespace
}  // namespace tsu::update
