#include <gtest/gtest.h>

#include <algorithm>

#include "tsu/topo/instances.hpp"
#include "tsu/update/schedulers.hpp"
#include "tsu/verify/checker.hpp"

namespace tsu::update {
namespace {

Instance fig1_instance() { return topo::fig1().instance; }

std::vector<NodeId> sorted(Round round) {
  std::sort(round.begin(), round.end());
  return round;
}

// ---------------------------------------------------------------- OneShot --

TEST(OneShotTest, SingleRoundWithAllTouched) {
  const Instance inst = fig1_instance();
  const Result<Schedule> schedule = plan_oneshot(inst);
  ASSERT_TRUE(schedule.ok());
  ASSERT_EQ(schedule.value().round_count(), 1u);
  EXPECT_EQ(sorted(schedule.value().rounds[0]),
            (std::vector<NodeId>{1, 2, 3, 5, 7, 9, 10, 11}));
  EXPECT_TRUE(validate_schedule(inst, schedule.value()).ok());
}

TEST(OneShotTest, CleanupContainsOldOnlyNodes) {
  const Instance inst = fig1_instance();
  const Result<Schedule> schedule = plan_oneshot(inst);
  ASSERT_TRUE(schedule.ok());
  EXPECT_EQ(sorted(schedule.value().cleanup), (std::vector<NodeId>{4, 6, 8}));
  SchedulerOptions options;
  options.with_cleanup = false;
  const Result<Schedule> bare = plan_oneshot(inst, options);
  EXPECT_TRUE(bare.value().cleanup.empty());
}

TEST(OneShotTest, NoChangesYieldsNoRounds) {
  Result<Instance> inst = Instance::make({0, 1, 2}, {0, 1, 2});
  ASSERT_TRUE(inst.ok());
  const Result<Schedule> schedule = plan_oneshot(inst.value());
  ASSERT_TRUE(schedule.ok());
  EXPECT_EQ(schedule.value().round_count(), 0u);
}

TEST(OneShotTest, ViolatesWaypointOnFig1) {
  const Instance inst = fig1_instance();
  const Result<Schedule> schedule = plan_oneshot(inst);
  const verify::CheckReport report =
      verify::check_schedule(inst, schedule.value(), kWaypoint);
  EXPECT_FALSE(report.ok);
}

// --------------------------------------------------------------- TwoPhase --

TEST(TwoPhaseTest, RequiresWaypoint) {
  Result<Instance> inst = Instance::make({0, 1, 2}, {0, 3, 2});
  ASSERT_TRUE(inst.ok());
  EXPECT_FALSE(plan_twophase(inst.value()).ok());
}

TEST(TwoPhaseTest, ThreeRoundsOnFig1) {
  const Instance inst = fig1_instance();
  const Result<Schedule> schedule = plan_twophase(inst);
  ASSERT_TRUE(schedule.ok());
  EXPECT_EQ(schedule.value().round_count(), 3u);
  EXPECT_TRUE(validate_schedule(inst, schedule.value()).ok());
  // Prefix round: new-path nodes up to the waypoint that are on both paths.
  EXPECT_EQ(sorted(schedule.value().rounds[1]),
            (std::vector<NodeId>{1, 3, 5}));
}

TEST(TwoPhaseTest, StillViolatesWaypointOnFig1) {
  // The strawman fails exactly because X={5} is flipped together with the
  // prefix and Y={2} with the suffix.
  const Instance inst = fig1_instance();
  const Result<Schedule> schedule = plan_twophase(inst);
  const verify::CheckReport report =
      verify::check_schedule(inst, schedule.value(), kWaypoint);
  EXPECT_FALSE(report.ok);
}

// ------------------------------------------------------------------ WayUp --

TEST(WayUpTest, RequiresWaypoint) {
  Result<Instance> inst = Instance::make({0, 1, 2}, {0, 3, 2});
  ASSERT_TRUE(inst.ok());
  EXPECT_FALSE(plan_wayup(inst.value()).ok());
}

TEST(WayUpTest, Fig1RoundStructure) {
  const Instance inst = fig1_instance();
  const Result<Schedule> schedule = plan_wayup(inst);
  ASSERT_TRUE(schedule.ok());
  const Schedule& s = schedule.value();
  ASSERT_EQ(s.round_count(), 4u);
  EXPECT_EQ(sorted(s.rounds[0]), (std::vector<NodeId>{7, 9, 10, 11}));  // installs
  EXPECT_EQ(sorted(s.rounds[1]), (std::vector<NodeId>{5}));     // behind wp (X)
  EXPECT_EQ(sorted(s.rounds[2]), (std::vector<NodeId>{1, 3}));  // prefix
  EXPECT_EQ(sorted(s.rounds[3]), (std::vector<NodeId>{2}));     // Y
  EXPECT_TRUE(validate_schedule(inst, s).ok());
}

TEST(WayUpTest, GuaranteesWaypointOnFig1) {
  const Instance inst = fig1_instance();
  const Result<Schedule> schedule = plan_wayup(inst);
  const verify::CheckReport report =
      verify::check_schedule(inst, schedule.value(), kWaypoint);
  EXPECT_TRUE(report.ok) << report.to_string();
  EXPECT_TRUE(report.exhaustive);
}

TEST(WayUpTest, AtMostFourRounds) {
  Rng rng(7);
  topo::RandomInstanceOptions options;
  for (int trial = 0; trial < 200; ++trial) {
    const Instance inst = topo::random_instance(rng, options);
    const Result<Schedule> schedule = plan_wayup(inst);
    ASSERT_TRUE(schedule.ok());
    EXPECT_LE(schedule.value().round_count(), 4u);
  }
}

TEST(WayUpTest, DegeneratesGracefullyWithoutConflicts) {
  // Disjoint interiors except the waypoint: X = Y = empty and nothing
  // touched sits behind the waypoint on the old path, so only the install
  // round and the prefix round remain.
  Result<Instance> inst =
      Instance::make({1, 2, 3, 4, 9}, {1, 5, 3, 6, 9}, NodeId{3});
  ASSERT_TRUE(inst.ok());
  const Result<Schedule> schedule = plan_wayup(inst.value());
  ASSERT_TRUE(schedule.ok());
  ASSERT_EQ(schedule.value().round_count(), 2u);
  EXPECT_EQ(sorted(schedule.value().rounds[0]), (std::vector<NodeId>{5, 6}));
  EXPECT_EQ(sorted(schedule.value().rounds[1]), (std::vector<NodeId>{1, 3}));
}

// ---------------------------------------------------------------- Peacock --

TEST(PeacockTest, WorksWithOrWithoutWaypoint) {
  const Instance with_wp = fig1_instance();
  EXPECT_TRUE(plan_peacock(with_wp).ok());
  Result<Instance> without = Instance::make({0, 1, 2}, {0, 3, 2});
  ASSERT_TRUE(without.ok());
  EXPECT_TRUE(plan_peacock(without.value()).ok());
}

TEST(PeacockTest, GuaranteesRelaxedLoopFreedomOnFig1) {
  const Instance inst = fig1_instance();
  const Result<Schedule> schedule = plan_peacock(inst);
  ASSERT_TRUE(schedule.ok());
  const verify::CheckReport report = verify::check_schedule(
      inst, schedule.value(), kLoopFree | kBlackholeFree);
  EXPECT_TRUE(report.ok) << report.to_string();
}

TEST(PeacockTest, ForwardOnlyInstanceIsTwoRounds) {
  // New path strictly forwards over the old order: installs + one round.
  Result<Instance> inst = Instance::make({0, 1, 2, 3, 4}, {0, 5, 2, 6, 4});
  ASSERT_TRUE(inst.ok());
  const Result<Schedule> schedule = plan_peacock(inst.value());
  ASSERT_TRUE(schedule.ok());
  EXPECT_EQ(schedule.value().round_count(), 2u);
}

TEST(PeacockTest, PureForwardWithoutInstallsIsOneRound) {
  Result<Instance> inst = Instance::make({0, 1, 2, 3}, {0, 2, 3});
  ASSERT_TRUE(inst.ok());
  const Result<Schedule> schedule = plan_peacock(inst.value());
  ASSERT_TRUE(schedule.ok());
  EXPECT_EQ(schedule.value().round_count(), 1u);
}

TEST(PeacockTest, ReversalInstanceStaysShallow) {
  // Peacock's whole point: far fewer rounds than strong loop freedom.
  const Instance inst = topo::reversal_instance(10);
  const Result<Schedule> peacock = plan_peacock(inst);
  ASSERT_TRUE(peacock.ok());
  const Result<Schedule> slf = plan_slf_greedy(inst);
  ASSERT_TRUE(slf.ok());
  EXPECT_LT(peacock.value().round_count(), slf.value().round_count());
  const verify::CheckReport report = verify::check_schedule(
      inst, peacock.value(), kLoopFree | kBlackholeFree);
  EXPECT_TRUE(report.ok) << report.to_string();
}

// -------------------------------------------------------------- SLF-greedy --

TEST(SlfGreedyTest, GuaranteesStrongLoopFreedom) {
  const Instance inst = fig1_instance();
  const Result<Schedule> schedule = plan_slf_greedy(inst);
  ASSERT_TRUE(schedule.ok());
  const verify::CheckReport report = verify::check_schedule(
      inst, schedule.value(), kGlobalLoopFree | kBlackholeFree);
  EXPECT_TRUE(report.ok) << report.to_string();
}

TEST(SlfGreedyTest, ReversalNeedsLinearRounds) {
  // On the reversal family only one node can move per round (plus the
  // initial install round is absent: no new-only nodes).
  for (const std::size_t n : {6u, 8u, 10u}) {
    const Instance inst = topo::reversal_instance(n);
    const Result<Schedule> schedule = plan_slf_greedy(inst);
    ASSERT_TRUE(schedule.ok());
    EXPECT_GE(schedule.value().round_count(), n - 3)
        << "n=" << n << " " << schedule.value().to_string();
  }
}

// ---------------------------------------------------------------- Optimal --

TEST(OptimalTest, MatchesKnownMinimumOnSmallInstance) {
  // old 0->1->2->3, new 0->2->1->3: WLF needs 2 rounds ({2} then {0,1}
  // would loop; the optimum is 2 rounds).
  Result<Instance> inst = Instance::make({0, 1, 2, 3}, {0, 2, 1, 3});
  ASSERT_TRUE(inst.ok());
  OptimalOptions options;
  options.properties = kLoopFree | kBlackholeFree;
  const Result<Schedule> schedule = plan_optimal(inst.value(), options);
  ASSERT_TRUE(schedule.ok()) << schedule.error().to_string();
  EXPECT_EQ(schedule.value().round_count(), 2u);
  EXPECT_TRUE(verify::check_schedule(inst.value(), schedule.value(),
                                     options.properties)
                  .ok);
}

TEST(OptimalTest, RefusesOversizedInstances) {
  const Instance inst = topo::reversal_instance(30);
  OptimalOptions options;
  options.node_limit = 10;
  EXPECT_FALSE(plan_optimal(inst, options).ok());
}

TEST(OptimalTest, NeverBeatenByHeuristics) {
  Rng rng(31);
  topo::RandomInstanceOptions gen;
  gen.old_interior_max = 4;
  gen.new_len_max = 4;
  for (int trial = 0; trial < 25; ++trial) {
    const Instance inst = topo::random_instance(rng, gen);
    if (inst.touched().size() > 10) continue;
    OptimalOptions options;
    options.properties = kLoopFree | kBlackholeFree;
    const Result<Schedule> best = plan_optimal(inst, options);
    ASSERT_TRUE(best.ok()) << inst.to_string();
    const Result<Schedule> heuristic = plan_peacock(inst);
    ASSERT_TRUE(heuristic.ok()) << inst.to_string();
    EXPECT_LE(best.value().round_count(), heuristic.value().round_count())
        << inst.to_string();
  }
}

TEST(SearchRoundsTest, EmptyPendingIsTrivial) {
  const Instance inst = fig1_instance();
  const Result<std::vector<Round>> rounds = search_rounds(
      inst, empty_state(inst), {}, kLoopFree, 4, OracleOptions{});
  ASSERT_TRUE(rounds.ok());
  EXPECT_TRUE(rounds.value().empty());
}

TEST(SearchRoundsTest, InfeasibleBudgetFails) {
  // Fig1 cannot be done WPE-safely in one round (that is OneShot).
  const Instance inst = fig1_instance();
  const Result<std::vector<Round>> rounds =
      search_rounds(inst, empty_state(inst), inst.touched(), kWaypoint, 1,
                    OracleOptions{});
  EXPECT_FALSE(rounds.ok());
}

}  // namespace
}  // namespace tsu::update
