// Golden tests pinned to the paper: the Figure 1 scenario admits no
// transiently secure schedule (plan_secure must report exhaustion), and the
// multi-flow executor is bit-for-bit deterministic under a fixed seed.
#include <gtest/gtest.h>

#include <vector>

#include "multiflow_workload.hpp"
#include "tsu/core/executor.hpp"
#include "tsu/topo/instances.hpp"
#include "tsu/update/schedulers.hpp"

namespace tsu {
namespace {

// The paper's own demo scenario: no schedule keeps waypoint enforcement,
// relaxed loop freedom and blackhole freedom simultaneously, which is the
// point Figure 1 makes. The exact search must prove that, not time out.
TEST(GoldenFig1Test, SecurePlannerReportsInfeasibility) {
  const topo::Fig1 fig = topo::fig1();
  const Result<update::Schedule> planned = update::plan_secure(fig.instance);
  ASSERT_FALSE(planned.ok());
  EXPECT_EQ(planned.error().code, Errc::kExhausted)
      << planned.error().to_string();
}

// WayUp, by contrast, schedules Figure 1 (waypoint enforcement only).
TEST(GoldenFig1Test, WayUpSchedulesFig1) {
  const topo::Fig1 fig = topo::fig1();
  const Result<update::Schedule> planned = update::plan_wayup(fig.instance);
  ASSERT_TRUE(planned.ok()) << planned.error().to_string();
  EXPECT_LE(planned.value().round_count(), 4u);
}

Result<core::MultiFlowExecutionResult> run_once(std::uint64_t seed) {
  const testutil::Workload w = testutil::disjoint_workload(6);
  core::ExecutorConfig config;
  config.seed = seed;
  config.controller.max_in_flight = 6;
  config.controller.batch_frames = true;
  return core::execute_multiflow(w.instance_ptrs, w.schedule_ptrs, config);
}

TEST(GoldenDeterminismTest, SameSeedSameMultiFlowMetrics) {
  const auto a = run_once(42);
  const auto b = run_once(42);
  ASSERT_TRUE(a.ok()) << a.error().to_string();
  ASSERT_TRUE(b.ok()) << b.error().to_string();
  EXPECT_EQ(a.value().frames_sent, b.value().frames_sent);
  EXPECT_EQ(a.value().control_bytes, b.value().control_bytes);
  EXPECT_EQ(a.value().messages_sent, b.value().messages_sent);
  EXPECT_EQ(a.value().makespan, b.value().makespan);
  EXPECT_EQ(a.value().aggregate.total, b.value().aggregate.total);
  ASSERT_EQ(a.value().flows.size(), b.value().flows.size());
  for (std::size_t i = 0; i < a.value().flows.size(); ++i) {
    const core::ExecutionResult& ra = a.value().flows[i];
    const core::ExecutionResult& rb = b.value().flows[i];
    EXPECT_EQ(ra.update.started, rb.update.started) << "flow " << i;
    EXPECT_EQ(ra.update.finished, rb.update.finished) << "flow " << i;
    EXPECT_EQ(ra.update.flow_mods_sent, rb.update.flow_mods_sent);
    EXPECT_EQ(ra.update.barriers_sent, rb.update.barriers_sent);
    ASSERT_EQ(ra.update.rounds.size(), rb.update.rounds.size());
    for (std::size_t r = 0; r < ra.update.rounds.size(); ++r) {
      EXPECT_EQ(ra.update.rounds[r].started, rb.update.rounds[r].started);
      EXPECT_EQ(ra.update.rounds[r].finished, rb.update.rounds[r].finished);
    }
    EXPECT_EQ(ra.traffic.total, rb.traffic.total) << "flow " << i;
    EXPECT_EQ(ra.traffic.delivered, rb.traffic.delivered);
    EXPECT_EQ(ra.packets_injected, rb.packets_injected);
  }
  // And a different seed genuinely changes the run.
  const auto c = run_once(43);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a.value().makespan, c.value().makespan);
}

}  // namespace
}  // namespace tsu
