// The parallel engine's worker pool (sim/thread_pool.hpp): every index of
// a batch runs exactly once, the pool survives reuse across many epochs
// (the sharded stepper dispatches thousands of small batches), task
// exceptions propagate to the caller deterministically (lowest index wins,
// whatever the completion order), and the size-1 / single-index paths run
// inline.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "tsu/sim/thread_pool.hpp"

namespace tsu::sim {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  constexpr std::size_t kCount = 64;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel(kCount, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i)
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, ReusableAcrossManyEpochs) {
  // The sharded stepper reuses one pool for every epoch of a run; pin that
  // thousands of small batches on one pool all complete fully.
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  constexpr std::size_t kEpochs = 2000;
  for (std::size_t epoch = 0; epoch < kEpochs; ++epoch)
    pool.parallel(4, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  EXPECT_EQ(total.load(), kEpochs * 4);
}

TEST(ThreadPoolTest, TaskExceptionPropagatesAfterBatchCompletes) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 32;
  std::vector<std::atomic<int>> hits(kCount);
  const auto batch = [&]() {
    pool.parallel(kCount, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
      if (i == 7 || i == 21)
        throw std::runtime_error("task " + std::to_string(i));
    });
  };
  EXPECT_THROW(batch(), std::runtime_error);
  // The whole batch still ran - an exception never strands later indexes.
  for (std::size_t i = 0; i < kCount; ++i)
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  // The rethrown error is the LOWEST throwing index, independent of the
  // nondeterministic completion order.
  try {
    batch();
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "task 7");
  }
  // The pool survives a throwing batch.
  std::atomic<std::size_t> total{0};
  pool.parallel(8, [&](std::size_t) {
    total.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 8u);
}

TEST(ThreadPoolTest, SingleLanePoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(5);
  std::size_t order_sum = 0;
  pool.parallel(5, [&](std::size_t i) {
    ran[i] = std::this_thread::get_id();
    order_sum = order_sum * 10 + i;  // unsynchronized: must be single-thread
  });
  for (const std::thread::id& id : ran) EXPECT_EQ(id, caller);
  EXPECT_EQ(order_sum, 1234u);  // 0,1,2,3,4 in order on the caller
  // Exceptions propagate from the inline path too.
  EXPECT_THROW(
      pool.parallel(2, [](std::size_t) { throw std::runtime_error("x"); }),
      std::runtime_error);
}

TEST(ThreadPoolTest, SingleIndexBatchRunsOnCaller) {
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran;
  pool.parallel(1, [&](std::size_t) { ran = std::this_thread::get_id(); });
  EXPECT_EQ(ran, caller);
  pool.parallel(0, [&](std::size_t) { FAIL() << "empty batch ran a task"; });
}

TEST(ThreadPoolTest, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

}  // namespace
}  // namespace tsu::sim
