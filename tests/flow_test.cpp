#include <gtest/gtest.h>

#include "tsu/flow/match.hpp"
#include "tsu/flow/table.hpp"

namespace tsu::flow {
namespace {

Packet packet(FlowId flow, NodeId src = 1, NodeId dst = 12,
              std::uint32_t in_port = 0) {
  Packet p;
  p.flow = flow;
  p.src_host = src;
  p.dst_host = dst;
  p.in_port = in_port;
  return p;
}

// ------------------------------------------------------------------ Match --

TEST(MatchTest, WildcardMatchesEverything) {
  const Match m = Match::wildcard();
  EXPECT_TRUE(m.matches(packet(1)));
  EXPECT_TRUE(m.matches(packet(999, 5, 6, 7)));
}

TEST(MatchTest, ExactFlowMatches) {
  const Match m = Match::exact_flow(7);
  EXPECT_TRUE(m.matches(packet(7)));
  EXPECT_FALSE(m.matches(packet(8)));
}

TEST(MatchTest, MultiFieldConjunction) {
  Match m;
  m.flow = 1;
  m.src_host = 2;
  EXPECT_TRUE(m.matches(packet(1, 2)));
  EXPECT_FALSE(m.matches(packet(1, 3)));
  EXPECT_FALSE(m.matches(packet(2, 2)));
}

TEST(MatchTest, InPortField) {
  Match m;
  m.in_port = 4;
  EXPECT_TRUE(m.matches(packet(1, 2, 3, 4)));
  EXPECT_FALSE(m.matches(packet(1, 2, 3, 5)));
}

TEST(MatchTest, SubsumesWildcardOverConcrete) {
  const Match wild = Match::wildcard();
  const Match narrow = Match::exact_flow(1);
  EXPECT_TRUE(wild.subsumes(narrow));
  EXPECT_FALSE(narrow.subsumes(wild));
  EXPECT_TRUE(narrow.subsumes(narrow));
}

TEST(MatchTest, SubsumesDifferentValuesFalse) {
  const Match a = Match::exact_flow(1);
  const Match b = Match::exact_flow(2);
  EXPECT_FALSE(a.subsumes(b));
  EXPECT_FALSE(b.subsumes(a));
}

TEST(MatchTest, SpecificityCountsFields) {
  EXPECT_EQ(Match::wildcard().specificity(), 0);
  EXPECT_EQ(Match::exact_flow(1).specificity(), 1);
  Match m;
  m.flow = 1;
  m.src_host = 2;
  m.dst_host = 3;
  m.in_port = 4;
  EXPECT_EQ(m.specificity(), 4);
}

TEST(MatchTest, ToStringShowsFieldsOrStar) {
  EXPECT_EQ(Match::wildcard().to_string(), "{*}");
  EXPECT_EQ(Match::exact_flow(3).to_string(), "{flow=3}");
}

TEST(ActionTest, Constructors) {
  EXPECT_EQ(Action::forward(5).kind, ActionKind::kForward);
  EXPECT_EQ(Action::forward(5).port, 5u);
  EXPECT_EQ(Action::deliver().kind, ActionKind::kDeliver);
  EXPECT_EQ(Action::drop().kind, ActionKind::kDrop);
}

// -------------------------------------------------------------- FlowTable --

TEST(FlowTableTest, EmptyLookupMisses) {
  const FlowTable t;
  EXPECT_FALSE(t.lookup(packet(1)).has_value());
}

TEST(FlowTableTest, AddAndLookup) {
  FlowTable t;
  t.add(FlowRule{Match::exact_flow(1), Action::forward(2), 100, 0});
  const auto rule = t.lookup(packet(1));
  ASSERT_TRUE(rule.has_value());
  EXPECT_EQ(rule->action, Action::forward(2));
  EXPECT_FALSE(t.lookup(packet(2)).has_value());
}

TEST(FlowTableTest, HigherPriorityWins) {
  FlowTable t;
  t.add(FlowRule{Match::wildcard(), Action::drop(), 1, 0});
  t.add(FlowRule{Match::exact_flow(1), Action::forward(9), 100, 0});
  EXPECT_EQ(t.lookup(packet(1))->action, Action::forward(9));
  EXPECT_EQ(t.lookup(packet(2))->action, Action::drop());
}

TEST(FlowTableTest, SpecificityBreaksPriorityTies) {
  FlowTable t;
  t.add(FlowRule{Match::wildcard(), Action::drop(), 10, 0});
  t.add(FlowRule{Match::exact_flow(1), Action::forward(4), 10, 0});
  EXPECT_EQ(t.lookup(packet(1))->action, Action::forward(4));
}

TEST(FlowTableTest, AddReplacesIdenticalMatchAndPriority) {
  FlowTable t;
  t.add(FlowRule{Match::exact_flow(1), Action::forward(2), 100, 0});
  t.add(FlowRule{Match::exact_flow(1), Action::forward(3), 100, 0});
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.lookup(packet(1))->action, Action::forward(3));
}

TEST(FlowTableTest, AddKeepsDistinctPriorities) {
  FlowTable t;
  t.add(FlowRule{Match::exact_flow(1), Action::forward(2), 100, 0});
  t.add(FlowRule{Match::exact_flow(1), Action::forward(3), 50, 0});
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.lookup(packet(1))->action, Action::forward(2));  // prio 100
}

TEST(FlowTableTest, ModifyRewritesAction) {
  FlowTable t;
  t.add(FlowRule{Match::exact_flow(1), Action::forward(2), 100, 0});
  const std::size_t n = t.modify(Match::exact_flow(1), 100,
                                 Action::forward(7), 42);
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(t.size(), 1u);
  const auto rule = t.lookup(packet(1));
  EXPECT_EQ(rule->action, Action::forward(7));
  EXPECT_EQ(rule->cookie, 42u);
}

TEST(FlowTableTest, ModifyOnMissBehavesLikeAdd) {
  FlowTable t;
  const std::size_t n = t.modify(Match::exact_flow(5), 80,
                                 Action::forward(2), 0);
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.lookup(packet(5))->priority, 80);
}

TEST(FlowTableTest, RemoveNonStrictSubsumption) {
  FlowTable t;
  t.add(FlowRule{Match::exact_flow(1), Action::forward(2), 100, 0});
  t.add(FlowRule{Match::exact_flow(2), Action::forward(3), 100, 0});
  // Wildcard delete clears everything it subsumes.
  EXPECT_EQ(t.remove(Match::wildcard()), 2u);
  EXPECT_TRUE(t.empty());
}

TEST(FlowTableTest, RemoveExactOnlyTouchesThatFlow) {
  FlowTable t;
  t.add(FlowRule{Match::exact_flow(1), Action::forward(2), 100, 0});
  t.add(FlowRule{Match::exact_flow(2), Action::forward(3), 100, 0});
  EXPECT_EQ(t.remove(Match::exact_flow(1)), 1u);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.lookup(packet(2)).has_value());
}

TEST(FlowTableTest, RemoveStrictNeedsExactPriority) {
  FlowTable t;
  t.add(FlowRule{Match::exact_flow(1), Action::forward(2), 100, 0});
  EXPECT_FALSE(t.remove_strict(Match::exact_flow(1), 99));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.remove_strict(Match::exact_flow(1), 100));
  EXPECT_TRUE(t.empty());
}

TEST(FlowTableTest, InsertionOrderBreaksFullTies) {
  FlowTable t;
  Match m1;
  m1.flow = 1;
  Match m2;
  m2.src_host = 1;
  // Same priority, same specificity; first-inserted wins.
  t.add(FlowRule{m1, Action::forward(10), 50, 0});
  t.add(FlowRule{m2, Action::forward(20), 50, 0});
  EXPECT_EQ(t.lookup(packet(1, 1))->action, Action::forward(10));
}

TEST(FlowTableTest, ClearEmptiesTable) {
  FlowTable t;
  t.add(FlowRule{Match::exact_flow(1), Action::forward(2), 100, 0});
  t.clear();
  EXPECT_TRUE(t.empty());
}

TEST(FlowTableTest, ToStringListsRules) {
  FlowTable t;
  t.add(FlowRule{Match::exact_flow(1), Action::forward(2), 100, 0});
  EXPECT_NE(t.to_string().find("prio=100"), std::string::npos);
}

}  // namespace
}  // namespace tsu::flow
