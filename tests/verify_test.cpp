#include <gtest/gtest.h>

#include <algorithm>

#include "tsu/graph/algorithms.hpp"
#include "tsu/topo/instances.hpp"
#include "tsu/update/schedulers.hpp"
#include "tsu/verify/checker.hpp"
#include "tsu/verify/property.hpp"

namespace tsu::verify {
namespace {

using update::Instance;
using update::Schedule;

Instance fig1_instance() { return topo::fig1().instance; }

// ---------------------------------------------------------------- checker --

TEST(CheckerTest, AcceptsWayUpOnFig1) {
  const Instance inst = fig1_instance();
  const Result<Schedule> schedule = update::plan_wayup(inst);
  ASSERT_TRUE(schedule.ok());
  const CheckReport report =
      check_schedule(inst, schedule.value(), update::kWaypoint);
  EXPECT_TRUE(report.ok);
  EXPECT_TRUE(report.exhaustive);
  // 2^4 + 2^1 + 2^2 + 2^1 = 24 states.
  EXPECT_EQ(report.states_checked, 24u);
}

TEST(CheckerTest, FindsWitnessSubsetForOneShot) {
  const Instance inst = fig1_instance();
  const Result<Schedule> schedule = update::plan_oneshot(inst);
  ASSERT_TRUE(schedule.ok());
  const CheckReport report =
      check_schedule(inst, schedule.value(), update::kWaypoint);
  ASSERT_FALSE(report.ok);
  ASSERT_FALSE(report.violations.empty());
  const Violation& violation = report.violations.front();
  EXPECT_EQ(violation.round_index, 0u);
  EXPECT_EQ(violation.violated & update::kWaypoint, update::kWaypoint);
  // The witness must replay: applying exactly that subset violates WPE.
  update::StateMask state = update::empty_state(inst);
  for (const NodeId v : violation.subset) state[v] = true;
  EXPECT_FALSE(update::state_satisfies(inst, state, update::kWaypoint));
  // And the recorded walk is a real bypass.
  EXPECT_EQ(violation.walk.outcome, update::WalkOutcome::kDelivered);
  EXPECT_FALSE(violation.walk.visited_waypoint);
}

TEST(CheckerTest, ViolationLimitRespected) {
  const Instance inst = fig1_instance();
  const Result<Schedule> schedule = update::plan_oneshot(inst);
  CheckOptions options;
  options.max_violations = 2;
  const CheckReport report = check_schedule(
      inst, schedule.value(), update::kTransientlySecure, options);
  EXPECT_FALSE(report.ok);
  EXPECT_LE(report.violations.size(), 2u);
}

TEST(CheckerTest, MonteCarloPathStillFindsGrossViolations) {
  const Instance inst = fig1_instance();
  const Result<Schedule> schedule = update::plan_oneshot(inst);
  CheckOptions options;
  options.exhaustive_limit = 2;  // force sampling (round has 8 nodes)
  options.monte_carlo_samples = 2048;
  const CheckReport report =
      check_schedule(inst, schedule.value(), update::kWaypoint, options);
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.exhaustive);
}

TEST(CheckerTest, FinalStateMismatchFlagged) {
  // A schedule that "forgets" a node is caught by validate_schedule; the
  // final-state check instead catches instances whose full state does not
  // deliver. Build a corrupted schedule via an instance whose new path is
  // fine but check against a *different* instance.
  Result<Instance> inst = Instance::make({0, 1, 2}, {0, 3, 2});
  ASSERT_TRUE(inst.ok());
  Schedule schedule;
  schedule.algorithm = "manual";
  schedule.rounds = {{3}, {0}};
  CheckOptions options;
  const CheckReport good =
      check_schedule(inst.value(), schedule, update::kLoopFree, options);
  EXPECT_TRUE(good.ok);
  // Drop the install round: full state then blackholes at 3... but the
  // final state of a *complete* instance is fine; instead disable the
  // final check and make sure per-round checking sees the blackhole.
  Schedule bad;
  bad.algorithm = "manual-bad";
  bad.rounds = {{0}, {3}};  // flip 0 before 3 has a rule
  const CheckReport report =
      check_schedule(inst.value(), bad, update::kBlackholeFree, options);
  EXPECT_FALSE(report.ok);
}

TEST(CheckerTest, CleanupSafetyFlagged) {
  const Instance inst = fig1_instance();
  Result<Schedule> schedule = update::plan_wayup(inst);
  ASSERT_TRUE(schedule.ok());
  // Sabotage: claim a node that stays reachable is cleanup-deletable.
  // Old-only nodes {4, 6, 8} are genuinely unreachable in the final state,
  // so the honest cleanup passes:
  EXPECT_TRUE(check_schedule(inst, schedule.value(), update::kWaypoint).ok);
  // A cleanup listing a node that is NOT old-only must be rejected by
  // validate_schedule (exercised in schedule_test); here we check the
  // reachability angle with a hand-made instance where an old-only node
  // remains reachable: impossible by construction (the new path never
  // visits old-only nodes), so assert exactly that invariant instead.
  const update::StateMask final_state = update::full_state(inst);
  const graph::Digraph g = update::active_graph(inst, final_state);
  const std::vector<bool> reach = graph::reachable_from(g, inst.source());
  for (const NodeId v : schedule.value().cleanup) EXPECT_FALSE(reach[v]);
}

TEST(CheckerTest, EmptyScheduleOnIdenticalPathsIsOk) {
  Result<Instance> inst = Instance::make({0, 1, 2}, {0, 1, 2});
  ASSERT_TRUE(inst.ok());
  Schedule schedule;
  schedule.algorithm = "noop";
  const CheckReport report = check_schedule(
      inst.value(), schedule, update::kTransientlySecure);
  EXPECT_TRUE(report.ok) << report.to_string();
}

TEST(CheckerTest, ReportRendering) {
  const Instance inst = fig1_instance();
  const Result<Schedule> schedule = update::plan_oneshot(inst);
  const CheckReport report =
      check_schedule(inst, schedule.value(), update::kWaypoint);
  const std::string text = report.to_string();
  EXPECT_NE(text.find("VIOLATED"), std::string::npos);
  EXPECT_NE(text.find("WPE"), std::string::npos);
}

TEST(CheckerTest, StateOkMatchesStateSatisfies) {
  const Instance inst = fig1_instance();
  EXPECT_TRUE(state_ok(inst, update::empty_state(inst),
                       update::kTransientlySecure));
}

// ----------------------------------------------------------- two-snapshot --

TEST(TwoSnapshotTest, AcceptsWayUpOnFig1) {
  const Instance inst = fig1_instance();
  const Result<Schedule> schedule = update::plan_wayup(inst);
  ASSERT_TRUE(schedule.ok());
  const TwoSnapshotReport report =
      check_two_snapshot(inst, schedule.value(), update::kWaypoint);
  EXPECT_TRUE(report.ok) << report.to_string();
  EXPECT_TRUE(report.exhaustive);
  EXPECT_GT(report.journeys_checked, 0u);
}

TEST(TwoSnapshotTest, RejectsOneShotOnFig1) {
  const Instance inst = fig1_instance();
  const Result<Schedule> schedule = update::plan_oneshot(inst);
  ASSERT_TRUE(schedule.ok());
  const TwoSnapshotReport report =
      check_two_snapshot(inst, schedule.value(), update::kWaypoint);
  EXPECT_FALSE(report.ok);
  ASSERT_FALSE(report.violations.empty());
  const TwoSnapshotViolation& v = report.violations.front();
  // S1 must be a subset of S2.
  for (const NodeId node : v.subset_before) {
    EXPECT_NE(std::find(v.subset_after.begin(), v.subset_after.end(), node),
              v.subset_after.end());
  }
}

TEST(TwoSnapshotTest, StrictlyStrongerThanSnapshots) {
  // A packet *crossing* the round can be hurt even when every frozen
  // snapshot is fine. Craft: old 0->1->2->3, new 0->2->1->3 updated in two
  // rounds R1={1}, R2={0,2}. All snapshot states deliver (see
  // OptimalTest.MatchesKnownMinimum), but a packet that leaves 0 under
  // {1 applied, nothing of R2} and then experiences {2} landing mid-flight
  // loops 1->... no: 1 is updated (R1) -> 3. Take instead a packet at 2
  // under old rule... with R2={0,2}: S1={}, S2={2}: walk hops: at 0 (S1:
  // old) -> 1; 1 updated -> 3 = delivered. Switch at hop 0: S2 at 0: 0
  // still old (0 not in S2)... -> the family is actually robust; so we
  // assert agreement here and leave disagreement hunting to the fuzzer
  // below.
  Result<Instance> inst = Instance::make({0, 1, 2, 3}, {0, 2, 1, 3});
  ASSERT_TRUE(inst.ok());
  Schedule schedule;
  schedule.algorithm = "manual";
  schedule.rounds = {{1}, {0, 2}};
  EXPECT_TRUE(check_schedule(inst.value(), schedule,
                             update::kLoopFree | update::kBlackholeFree)
                  .ok);
  EXPECT_TRUE(check_two_snapshot(inst.value(), schedule,
                                 update::kLoopFree | update::kBlackholeFree)
                  .ok);
}

TEST(TwoSnapshotTest, SampledModeForLargeRounds) {
  const Instance inst = fig1_instance();
  const Result<Schedule> schedule = update::plan_oneshot(inst);
  TwoSnapshotOptions options;
  options.exhaustive_limit = 3;
  options.samples = 512;
  const TwoSnapshotReport report = check_two_snapshot(
      inst, schedule.value(), update::kWaypoint, options);
  EXPECT_FALSE(report.exhaustive);
  EXPECT_FALSE(report.ok);  // gross violations still found by sampling
}

}  // namespace
}  // namespace tsu::verify
