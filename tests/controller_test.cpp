// Controller FSM tests: wire a real controller to real switches over real
// channels and assert the paper's round/barrier discipline.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "tsu/channel/channel.hpp"
#include "tsu/controller/controller.hpp"
#include "tsu/switchsim/switch.hpp"
#include "tsu/topo/instances.hpp"
#include "tsu/update/schedulers.hpp"

namespace tsu::controller {
namespace {

struct TestBed {
  sim::Simulator sim;
  Rng rng{12345};
  Controller ctrl;
  std::map<NodeId, std::unique_ptr<switchsim::SimSwitch>> switches;
  std::vector<std::unique_ptr<channel::DuplexChannel>> channels;

  explicit TestBed(ControllerConfig config = {},
                   sim::Duration channel_latency = sim::milliseconds(1),
                   sim::Duration install_latency = sim::milliseconds(1))
      : ctrl(sim, config) {
    channel_config.latency = sim::LatencyModel::constant(channel_latency);
    switch_config.install_latency =
        sim::LatencyModel::constant(install_latency);
  }

  channel::ChannelConfig channel_config;
  switchsim::SwitchConfig switch_config;

  void add_switch(NodeId node) {
    auto sw = std::make_unique<switchsim::SimSwitch>(
        sim, node, node, switch_config, rng.fork());
    auto duplex = std::make_unique<channel::DuplexChannel>(
        sim, channel_config, rng);
    auto* sw_ptr = sw.get();
    auto* duplex_ptr = duplex.get();
    duplex->to_switch.set_receiver(
        [sw_ptr](const proto::Message& m) { sw_ptr->receive(m); });
    duplex->to_controller.set_receiver(
        [this, node](const proto::Message& m) { ctrl.on_message(node, m); });
    sw->set_controller_link([duplex_ptr](const proto::Message& m) {
      duplex_ptr->to_controller.send(m);
    });
    ctrl.attach_switch(node, [duplex_ptr](const proto::Message& m) {
      duplex_ptr->to_switch.send(m);
    });
    switches.emplace(node, std::move(sw));
    channels.push_back(std::move(duplex));
  }
};

RoundOp op(NodeId node, FlowId flow, NodeId next) {
  proto::FlowMod mod;
  mod.command = proto::FlowModCommand::kAdd;
  mod.priority = 100;
  mod.match.flow = flow;
  mod.action = flow::Action::forward(next);
  return RoundOp{node, mod, {}};
}

TEST(ControllerTest, SingleRoundUpdateCompletes) {
  TestBed bed;
  bed.add_switch(1);
  bed.add_switch(2);
  UpdateRequest request;
  request.name = "simple";
  request.flow = 1;
  request.rounds = {{op(1, 1, 2), op(2, 1, 3)}};
  bed.ctrl.submit(request);
  bed.sim.run();
  EXPECT_TRUE(bed.ctrl.idle());
  ASSERT_EQ(bed.ctrl.completed().size(), 1u);
  const UpdateMetrics& m = bed.ctrl.completed()[0];
  EXPECT_EQ(m.flow_mods_sent, 2u);
  EXPECT_EQ(m.barriers_sent, 2u);
  ASSERT_EQ(m.rounds.size(), 1u);
  // channel 1ms + install 1ms + barrier 0.1ms + channel back 1ms = 3.1ms.
  EXPECT_EQ(m.duration(),
            sim::milliseconds(3) + sim::microseconds(100));
  // Rules actually landed.
  flow::Packet p;
  p.flow = 1;
  EXPECT_TRUE(bed.switches[1]->table().lookup(p).has_value());
  EXPECT_TRUE(bed.switches[2]->table().lookup(p).has_value());
}

TEST(ControllerTest, RoundsAreSequencedByBarriers) {
  TestBed bed;
  bed.add_switch(1);
  bed.add_switch(2);
  UpdateRequest request;
  request.name = "two-rounds";
  request.flow = 1;
  request.rounds = {{op(1, 1, 2)}, {op(2, 1, 3)}};
  bed.ctrl.submit(request);
  bed.sim.run();
  ASSERT_EQ(bed.ctrl.completed().size(), 1u);
  const UpdateMetrics& m = bed.ctrl.completed()[0];
  ASSERT_EQ(m.rounds.size(), 2u);
  // Round 2 begins only after round 1's barrier reply arrived.
  EXPECT_GE(m.rounds[1].started, m.rounds[0].finished);
  // Each round costs channel + install + barrier + channel back.
  EXPECT_EQ(m.rounds[0].finished - m.rounds[0].started,
            sim::milliseconds(3) + sim::microseconds(100));
}

TEST(ControllerTest, AsynchronousRoundStillWaitsForSlowestSwitch) {
  TestBed bed;
  bed.add_switch(1);
  bed.add_switch(2);
  // Switch 2 is pathologically slow to install.
  switchsim::SwitchConfig slow = bed.switch_config;
  slow.install_latency = sim::LatencyModel::constant(sim::milliseconds(50));
  auto slow_switch = std::make_unique<switchsim::SimSwitch>(
      bed.sim, 3, 3, slow, Rng(5));
  auto duplex = std::make_unique<channel::DuplexChannel>(
      bed.sim, bed.channel_config, bed.rng);
  auto* sw_ptr = slow_switch.get();
  auto* duplex_ptr = duplex.get();
  duplex->to_switch.set_receiver(
      [sw_ptr](const proto::Message& m) { sw_ptr->receive(m); });
  duplex->to_controller.set_receiver(
      [&bed](const proto::Message& m) { bed.ctrl.on_message(3, m); });
  sw_ptr->set_controller_link([duplex_ptr](const proto::Message& m) {
    duplex_ptr->to_controller.send(m);
  });
  bed.ctrl.attach_switch(3, [duplex_ptr](const proto::Message& m) {
    duplex_ptr->to_switch.send(m);
  });
  bed.switches.emplace(3, std::move(slow_switch));
  bed.channels.push_back(std::move(duplex));

  UpdateRequest request;
  request.flow = 1;
  request.rounds = {{op(1, 1, 2), op(3, 1, 4)}};
  bed.ctrl.submit(request);
  bed.sim.run();
  const UpdateMetrics& m = bed.ctrl.completed()[0];
  // Dominated by the slow switch: 1 + 50 + 0.1 + 1 ms.
  EXPECT_EQ(m.duration(),
            sim::milliseconds(52) + sim::microseconds(100));
}

TEST(ControllerTest, IntervalDelaysNextRound) {
  TestBed bed;
  bed.add_switch(1);
  bed.add_switch(2);
  UpdateRequest request;
  request.flow = 1;
  request.rounds = {{op(1, 1, 2)}, {op(2, 1, 3)}};
  request.interval = sim::milliseconds(20);
  bed.ctrl.submit(request);
  bed.sim.run();
  const UpdateMetrics& m = bed.ctrl.completed()[0];
  EXPECT_EQ(m.rounds[1].started - m.rounds[0].finished,
            sim::milliseconds(20));
}

TEST(ControllerTest, MessageQueueSerializesRequests) {
  TestBed bed;
  bed.add_switch(1);
  UpdateRequest first;
  first.name = "first";
  first.flow = 1;
  first.rounds = {{op(1, 1, 2)}};
  UpdateRequest second;
  second.name = "second";
  second.flow = 2;
  second.rounds = {{op(1, 2, 3)}};
  bed.ctrl.submit(first);
  bed.ctrl.submit(second);
  EXPECT_EQ(bed.ctrl.queued(), 1u);  // second waits its turn
  bed.sim.run();
  ASSERT_EQ(bed.ctrl.completed().size(), 2u);
  const UpdateMetrics& m1 = bed.ctrl.completed()[0];
  const UpdateMetrics& m2 = bed.ctrl.completed()[1];
  EXPECT_EQ(m1.name, "first");
  EXPECT_EQ(m2.name, "second");
  EXPECT_GE(m2.started, m1.finished);       // strict serialization
  EXPECT_EQ(m2.queueing_delay(), m1.finished - m2.submitted);
}

TEST(ControllerTest, RecklessModeSkipsPerRoundBarriers) {
  TestBed barriered{ControllerConfig{true}};
  barriered.add_switch(1);
  barriered.add_switch(2);
  TestBed reckless{ControllerConfig{false}};
  reckless.add_switch(1);
  reckless.add_switch(2);

  const auto request = []() {
    UpdateRequest r;
    r.flow = 1;
    r.rounds = {{op(1, 1, 2)}, {op(2, 1, 3)}, {op(1, 1, 9)}};
    return r;
  }();
  barriered.ctrl.submit(request);
  barriered.sim.run();
  reckless.ctrl.submit(request);
  reckless.sim.run();

  const sim::Duration with_barriers = barriered.ctrl.completed()[0].duration();
  const sim::Duration without = reckless.ctrl.completed()[0].duration();
  EXPECT_LT(without, with_barriers);
  // Rules still all land in reckless mode.
  flow::Packet p;
  p.flow = 1;
  EXPECT_TRUE(reckless.switches[2]->table().lookup(p).has_value());
}

TEST(ControllerTest, OnUpdateDoneFires) {
  TestBed bed;
  bed.add_switch(1);
  std::string done_name;
  bed.ctrl.set_on_update_done(
      [&](const UpdateMetrics& m) { done_name = m.name; });
  UpdateRequest request;
  request.name = "cb";
  request.flow = 1;
  request.rounds = {{op(1, 1, 2)}};
  bed.ctrl.submit(request);
  bed.sim.run();
  EXPECT_EQ(done_name, "cb");
}

TEST(ControllerTest, EmptyRequestCompletesImmediately) {
  TestBed bed;
  bed.add_switch(1);
  UpdateRequest request;
  request.name = "noop";
  bed.ctrl.submit(request);
  bed.sim.run();
  ASSERT_EQ(bed.ctrl.completed().size(), 1u);
  EXPECT_EQ(bed.ctrl.completed()[0].duration(), 0u);
}

// ------------------------------------------------- request_from_schedule --

TEST(UpdateRequestTest, InitialRulesCoverOldPathPlusDelivery) {
  const topo::Fig1 fig = topo::fig1();
  const std::vector<RoundOp> ops = initial_rules(fig.instance, 1, 100);
  ASSERT_EQ(ops.size(), fig.instance.old_path().size());
  EXPECT_EQ(ops.front().node, 1u);
  EXPECT_EQ(ops.front().mod.action, flow::Action::forward(2));
  EXPECT_EQ(ops.back().node, 12u);
  EXPECT_EQ(ops.back().mod.action, flow::Action::deliver());
}

TEST(UpdateRequestTest, LowersScheduleRoundsToFlowMods) {
  const topo::Fig1 fig = topo::fig1();
  const Result<update::Schedule> schedule = update::plan_wayup(fig.instance);
  ASSERT_TRUE(schedule.ok());
  const UpdateRequest request = request_from_schedule(
      fig.instance, schedule.value(), 1, 100, sim::milliseconds(5));
  // 4 semantic rounds + cleanup.
  ASSERT_EQ(request.rounds.size(), 5u);
  EXPECT_EQ(request.interval, sim::milliseconds(5));
  // Round 1 installs new-only nodes with ADD.
  for (const RoundOp& round_op : request.rounds[0])
    EXPECT_EQ(round_op.mod.command, proto::FlowModCommand::kAdd);
  // Round 3 modifies both-path nodes.
  for (const RoundOp& round_op : request.rounds[2])
    EXPECT_EQ(round_op.mod.command, proto::FlowModCommand::kModify);
  // Cleanup deletes.
  for (const RoundOp& round_op : request.rounds.back())
    EXPECT_EQ(round_op.mod.command, proto::FlowModCommand::kDeleteStrict);
  // Actions point at the new next hops.
  for (const RoundOp& round_op : request.rounds[2]) {
    EXPECT_EQ(round_op.mod.action,
              flow::Action::forward(fig.instance.new_next(round_op.node)));
  }
}

TEST(ControllerTest, XidWrapRecyclesRetiredSequences) {
  // The 24-bit per-shard xid sequence used to hard-abort on wrap, killing
  // long soaks. Jump the counter to its last few fresh values: the
  // controller must cross the wrap mid-workload by recycling retired
  // sequence numbers (flowmod/batch xids retire at send, barrier xids on
  // their reply) and every update must still complete normally.
  TestBed bed;
  bed.add_switch(1);
  bed.add_switch(2);
  bed.ctrl.exhaust_xid_space_for_test(16);
  for (int i = 0; i < 8; ++i) {
    UpdateRequest request;
    request.name = "wrap";
    request.flow = 1;
    request.rounds = {{op(1, 1, 2), op(2, 1, 3)}};
    bed.ctrl.submit(request);
  }
  bed.sim.run();
  EXPECT_TRUE(bed.ctrl.idle());
  ASSERT_EQ(bed.ctrl.completed().size(), 8u);
  for (const UpdateMetrics& m : bed.ctrl.completed()) {
    EXPECT_FALSE(m.aborted);
    EXPECT_EQ(m.flow_mods_sent, 2u);
  }
  EXPECT_EQ(bed.ctrl.retries(), 0u);  // recycled xids routed every reply
  // 8 updates x (2 flowmods + 2 barriers + batch frames) far exceeds the
  // 16 fresh values left, so the free list both filled and drained.
  EXPECT_GT(bed.ctrl.retired_xids(), 0u);
  // Every install really landed despite xid reuse across updates.
  for (const auto& [node, sw] : bed.switches)
    EXPECT_EQ(sw->flow_mods_applied(), 8u);
}

TEST(ControllerTest, XidWrapKeepsTimedOutXidsUnrecycled) {
  // A barrier that times out must leave its xid leaked forever: the
  // switch may still emit the late reply, which has to hit the late-
  // barrier path, not a recycled xid's new owner. Drive a crash so a
  // liveness timeout fires, then keep running wrapped updates: counts
  // must stay exact and nothing may mis-route.
  ControllerConfig config;
  config.liveness_timeout = sim::milliseconds(40);
  TestBed bed(config);
  bed.add_switch(1);
  bed.add_switch(2);
  bed.ctrl.exhaust_xid_space_for_test(16);

  UpdateRequest first;
  first.name = "crash-victim";
  first.flow = 1;
  first.rounds = {{op(1, 1, 2), op(2, 1, 3)}};
  bed.ctrl.submit(first);
  // Crash switch 2 before its install completes; the controller's
  // liveness timer fires, retries, and the update finishes after restart.
  bed.sim.schedule_at(sim::microseconds(1500),
                      [&]() { bed.switches.at(2)->crash(true); });
  bed.sim.schedule_at(sim::milliseconds(60),
                      [&]() { bed.switches.at(2)->restart(); });
  bed.sim.run();
  ASSERT_EQ(bed.ctrl.completed().size(), 1u);
  EXPECT_FALSE(bed.ctrl.completed()[0].aborted);
  EXPECT_GE(bed.ctrl.retries(), 1u);

  // Post-crash, post-wrap steady state still works off the free list.
  for (int i = 0; i < 4; ++i) {
    UpdateRequest request;
    request.name = "after";
    request.flow = 1;
    request.rounds = {{op(1, 1, 2), op(2, 1, 3)}};
    bed.ctrl.submit(request);
  }
  bed.sim.run();
  EXPECT_TRUE(bed.ctrl.idle());
  ASSERT_EQ(bed.ctrl.completed().size(), 5u);
  const std::size_t crash_retries = bed.ctrl.retries();
  for (std::size_t i = 1; i < 5; ++i)
    EXPECT_FALSE(bed.ctrl.completed()[i].aborted);
  EXPECT_EQ(bed.ctrl.retries(), crash_retries);  // no new retries post-wrap
}

TEST(CompletionLogTest, StreamsAggregatesAndKeepsBoundedRing) {
  CompletionLog log(4);
  for (int i = 0; i < 10; ++i) {
    UpdateMetrics m;
    m.name = "u" + std::to_string(i);
    m.flow = 1;
    m.enqueued = static_cast<sim::SimTime>(i * 10);
    m.submitted = m.enqueued;
    m.started = m.enqueued + 2;
    m.finished = m.enqueued + 7;
    m.flow_mods_sent = 2;
    m.barriers_sent = 1;
    m.rounds.resize(3);
    log.record(std::move(m));
  }
  EXPECT_EQ(log.count(), 10u);
  EXPECT_TRUE(log.wrapped());
  EXPECT_EQ(log.recent().size(), 4u);       // bounded despite 10 records
  EXPECT_EQ(log.recent_back(0).name, "u9");  // newest
  EXPECT_EQ(log.recent_back(3).name, "u6");  // oldest retained
  // Streaming aggregates still cover ALL 10 completions.
  const CompletionStats& stats = log.stats();
  EXPECT_EQ(stats.flow_mods_sent, 20u);
  EXPECT_EQ(stats.barriers_sent, 10u);
  EXPECT_EQ(stats.rounds, 30u);
  EXPECT_EQ(stats.first_finished, 7u);
  EXPECT_EQ(stats.last_finished, 97u);
  EXPECT_EQ(stats.duration_ms.count(), 10u);
  EXPECT_DOUBLE_EQ(stats.duration_ms.mean(), 5.0 / 1e6);
  EXPECT_EQ(stats.aborted, 0u);
}

TEST(CompletionLogTest, BelowCapacityKeepsFullHistoryInOrder) {
  // The closed-loop compatibility contract: until the ring wraps,
  // recent() is the complete history in completion order - exactly what
  // the old append-only vector exposed.
  CompletionLog log;  // default capacity 256
  for (int i = 0; i < 8; ++i) {
    UpdateMetrics m;
    m.name = "u" + std::to_string(i);
    log.record(std::move(m));
  }
  EXPECT_FALSE(log.wrapped());
  ASSERT_EQ(log.recent().size(), 8u);
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(log.recent()[i].name, "u" + std::to_string(i));
}

TEST(ControllerTest, SteadyStateEntriesReturnToZeroAfterDrain) {
  // The leak detector behind the soak test: every per-xid / per-update map
  // must erase on every path, so a drained controller holds zero entries.
  TestBed bed;
  bed.add_switch(1);
  bed.add_switch(2);
  for (int i = 0; i < 6; ++i) {
    UpdateRequest request;
    request.name = "drain";
    request.flow = 1;
    request.rounds = {{op(1, 1, 2), op(2, 1, 3)}};
    bed.ctrl.submit(request);
  }
  EXPECT_GT(bed.ctrl.steady_state_entries(), 0u);  // live while queued
  bed.sim.run();
  EXPECT_TRUE(bed.ctrl.idle());
  EXPECT_EQ(bed.ctrl.steady_state_entries(), 0u);
}

TEST(ControllerTest, SteadyStateEntriesFlatAcrossCrashRecovery) {
  // The timeout -> retry -> resync path allocates tracking entries in
  // several maps (liveness timers, resync waiting, barrier routing); all
  // of them must be erased once recovery completes.
  ControllerConfig config;
  config.liveness_timeout = sim::milliseconds(40);
  TestBed bed(config);
  bed.add_switch(1);
  bed.add_switch(2);
  UpdateRequest request;
  request.name = "crash";
  request.flow = 1;
  request.rounds = {{op(1, 1, 2), op(2, 1, 3)}};
  bed.ctrl.submit(request);
  bed.sim.schedule_at(sim::microseconds(1500),
                      [&]() { bed.switches.at(2)->crash(true); });
  bed.sim.schedule_at(sim::milliseconds(60),
                      [&]() { bed.switches.at(2)->restart(); });
  bed.sim.run();
  EXPECT_TRUE(bed.ctrl.idle());
  ASSERT_EQ(bed.ctrl.completed().size(), 1u);
  EXPECT_GE(bed.ctrl.retries(), 1u);
  EXPECT_EQ(bed.ctrl.steady_state_entries(), 0u);
}

}  // namespace
}  // namespace tsu::controller
