// Bounded-memory soak: the acceptance test behind the open-loop service
// mode. Runs millions of cumulative updates through execute_service and
// pins the three claims the closed-loop suite cannot check:
//
//   1. Memory stays FLAT while cumulative work grows without bound - the
//      allocator live-bytes watermark (alloc_hooks) is sampled every
//      snapshot window and the late-run high-water mark must not drift
//      above the post-warmup one.
//   2. The xid space wraps and recycles at least one full cycle: the test
//      pre-exhausts the 24-bit sequence down to a sliver via the tune
//      hook, so after the first few thousand barriers EVERY xid the run
//      emits is a recycled one. Millions of completions later, the run
//      finishing at all proves recycling sustains steady state.
//   3. Every per-xid / per-update map drains: steady_state_entries == 0
//      after the run, and the safety oracle (traffic section) sees zero
//      violations while updates churn.
//
// alloc_hooks.hpp replaces global operator new/delete - this must be the
// ONLY translation unit in the binary that includes it.
#include "tsu/util/alloc_hooks.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "tsu/controller/controller.hpp"
#include "tsu/controller/shard.hpp"
#include "tsu/core/service.hpp"

namespace tsu::core {
namespace {

// Debug/sanitizer builds run the slim soak (CMake defines TSU_SOAK_SLIM):
// same phases, two orders of magnitude fewer updates, so ASan/TSan still
// walk the wrap-recycling and drain paths inside the CI budget.
#ifdef TSU_SOAK_SLIM
constexpr std::uint64_t kSoakTarget = 30'000;
constexpr std::uint64_t kTrafficTarget = 3'000;
#else
constexpr std::uint64_t kSoakTarget = 2'000'000;
constexpr std::uint64_t kTrafficTarget = 100'000;
#endif

// Leave this many fresh sequence numbers before the 24-bit wrap; every
// xid after those comes from the recycle free list.
constexpr std::uint32_t kFreshXidsBeforeWrap = 1024;

ServiceConfig soak_config(std::uint64_t target) {
  ServiceConfig config;
  config.exec.seed = 1234;
  config.exec.with_traffic = false;
  config.flows = 8;
  config.pool_switches = 48;
  config.exec.controller.max_in_flight = 16;
  config.arrival_rate_per_sec = 50'000;
  config.max_pending = 512;
  config.target_completions = target;
  config.tune = [](controller::ShardCoordinator& coord) {
    coord.shard(0).engine().exhaust_xid_space_for_test(kFreshXidsBeforeWrap);
  };
  return config;
}

TEST(SoakTest, MemoryStaysFlatAcrossMillionsOfUpdates) {
  ServiceConfig config = soak_config(kSoakTarget);
  // Sample the allocator watermark once per sim-second. At 50k arrivals/s
  // the run spans ~target/50k seconds of sim time.
  config.snapshot_interval = sim::milliseconds(1000);
  config.snapshot_window = 8;
  std::vector<std::uint64_t> watermarks;
  watermarks.reserve(256);  // reserve BEFORE the run: sampling mustn't grow
  config.on_snapshot = [&](const ServiceSnapshot& snap) {
    // Per-xid/per-update map entries are bounded by the in-flight window
    // at EVERY sample, not just after the drain.
    EXPECT_LE(snap.steady_state_entries, 4096u);
    if (watermarks.size() < watermarks.capacity())
      watermarks.push_back(alloc_hooks::live_bytes());
  };

  const Result<ServiceResult> run = execute_service(config);
  ASSERT_TRUE(run.ok()) << run.error().to_string();
  const ServiceResult& result = run.value();

  EXPECT_EQ(result.stats.completed, kSoakTarget);
  EXPECT_EQ(result.stats.aborted, 0u);
  EXPECT_EQ(result.completions.count, kSoakTarget);
  // Drain contract: every controller map/queue is empty again.
  EXPECT_EQ(result.steady_state_entries_final, 0u);
  // Wrap recycling: only kFreshXidsBeforeWrap fresh sequence numbers
  // existed, and each completion consumed multiple barrier xids - so the
  // run recycled the full sequence space many times over. The free list
  // holds the retired (bounded) pool afterwards.
  EXPECT_GT(result.retired_xids, 0u);
  EXPECT_LE(result.retired_xids, static_cast<std::size_t>(
                                     kFreshXidsBeforeWrap));
  EXPECT_GT(result.stats.completed / kFreshXidsBeforeWrap, 1u)
      << "run too short to have cycled the pre-exhausted xid space";

  // The watermark check: compare high-water marks window-over-window.
  // Warmup (first quarter) may grow - pools fill, tables rehash to their
  // steady-state size. After that the high-water mark must be FLAT: the
  // last quarter's max may not exceed the post-warmup max before it by
  // more than a small slack (allocator jitter, not growth).
  if (alloc_hooks::tracks_live_bytes() && watermarks.size() >= 8) {
    const std::size_t warmup = watermarks.size() / 4;
    const std::size_t tail = watermarks.size() - watermarks.size() / 4;
    const std::uint64_t settled_max =
        *std::max_element(watermarks.begin() + warmup,
                          watermarks.begin() + tail);
    const std::uint64_t tail_max =
        *std::max_element(watermarks.begin() + tail, watermarks.end());
    constexpr std::uint64_t kSlackBytes = 64 * 1024;
    EXPECT_LE(tail_max, settled_max + kSlackBytes)
        << "allocator high-water mark grew across the soak: "
        << settled_max << " -> " << tail_max << " bytes";
  }
}

// The same open loop with the consistency oracle watching every packet:
// sustained churn must never blackhole, loop, or bypass the waypoint.
TEST(SoakTest, SafetyOracleStaysCleanUnderSustainedChurn) {
  ServiceConfig config = soak_config(kTrafficTarget);
  config.exec.with_traffic = true;
  const Result<ServiceResult> run = execute_service(config);
  ASSERT_TRUE(run.ok()) << run.error().to_string();
  const ServiceResult& result = run.value();
  EXPECT_EQ(result.stats.completed, kTrafficTarget);
  EXPECT_GT(result.traffic.total, 0u);
  EXPECT_EQ(result.traffic.bypassed, 0u);
  EXPECT_EQ(result.traffic.looped, 0u);
  EXPECT_EQ(result.traffic.blackholed, 0u);
  EXPECT_EQ(result.steady_state_entries_final, 0u);
}

// Overload soak: arrivals far beyond capacity for the whole run. The
// pending queue sheds load at its bound and the backlog never exceeds
// max_pending - overload DURATION must not translate into memory.
TEST(SoakTest, OverloadShedsWithoutAccumulating) {
  ServiceConfig config = soak_config(kSoakTarget / 20);
  config.arrival_rate_per_sec = 500'000;  // ~10x service capacity
  config.max_pending = 64;
  const Result<ServiceResult> run = execute_service(config);
  ASSERT_TRUE(run.ok()) << run.error().to_string();
  const ServiceResult& result = run.value();
  EXPECT_EQ(result.stats.completed, result.stats.accepted);
  EXPECT_GT(result.stats.rejected, 0u);
  EXPECT_LE(result.stats.peak_pending, 64u);
  EXPECT_EQ(result.steady_state_entries_final, 0u);
}

}  // namespace
}  // namespace tsu::core
