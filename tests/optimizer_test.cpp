#include <gtest/gtest.h>

#include <set>

#include "tsu/topo/instances.hpp"
#include "tsu/update/optimizer.hpp"
#include "tsu/update/schedulers.hpp"
#include "tsu/util/rng.hpp"
#include "tsu/verify/checker.hpp"

namespace tsu::update {
namespace {

// ----------------------------------------------------- compress_schedule --

TEST(CompressTest, NeverBreaksTheProperty) {
  Rng rng(111);
  topo::RandomInstanceOptions options;
  for (int i = 0; i < 100; ++i) {
    const Instance inst = topo::random_instance(rng, options);
    const Result<Schedule> schedule = plan_wayup(inst);
    ASSERT_TRUE(schedule.ok());
    const Schedule compressed =
        compress_schedule(inst, schedule.value(), kWaypoint);
    EXPECT_LE(compressed.round_count(), schedule.value().round_count());
    EXPECT_TRUE(validate_schedule(inst, compressed).ok()) << inst.to_string();
    EXPECT_TRUE(verify::check_schedule(inst, compressed, kWaypoint).ok)
        << inst.to_string() << "\n" << compressed.to_string();
  }
}

TEST(CompressTest, MergesWhenHazardAbsent) {
  // Disjoint interiors except the waypoint: no X/Y hazard, so WayUp's
  // install round can merge with the prefix round (installs are invisible,
  // and the prefix flip is bypass-safe without X).
  Result<Instance> inst =
      Instance::make({1, 2, 3, 4, 9}, {1, 5, 3, 6, 9}, NodeId{3});
  ASSERT_TRUE(inst.ok());
  const Result<Schedule> schedule = plan_wayup(inst.value());
  ASSERT_TRUE(schedule.ok());
  ASSERT_EQ(schedule.value().round_count(), 2u);
  const Schedule compressed =
      compress_schedule(inst.value(), schedule.value(), kWaypoint);
  EXPECT_EQ(compressed.round_count(), 1u) << compressed.to_string();
  EXPECT_TRUE(
      verify::check_schedule(inst.value(), compressed, kWaypoint).ok);
}

TEST(CompressTest, KeepsNecessaryRoundsOnFig1) {
  const Instance inst = topo::fig1().instance;
  const Result<Schedule> schedule = plan_wayup(inst);
  ASSERT_TRUE(schedule.ok());
  const Schedule compressed = compress_schedule(inst, schedule.value(),
                                                kWaypoint);
  // Fig1's hazards are real; rounds may merge partially but never below
  // the optimum for WPE (which is > 1: OneShot violates).
  EXPECT_GE(compressed.round_count(), 2u);
  EXPECT_TRUE(verify::check_schedule(inst, compressed, kWaypoint).ok)
      << compressed.to_string();
}

TEST(CompressTest, PreservesCleanupAndNames) {
  const Instance inst = topo::fig1().instance;
  const Result<Schedule> schedule = plan_wayup(inst);
  const Schedule compressed = compress_schedule(inst, schedule.value(),
                                                kWaypoint);
  EXPECT_EQ(compressed.cleanup, schedule.value().cleanup);
  EXPECT_EQ(compressed.algorithm, "wayup+compressed");
}

TEST(CompressTest, PeacockSchedulesCompressUnderWlf) {
  const Instance inst = topo::reversal_instance(10);
  const Result<Schedule> schedule = plan_peacock(inst);
  ASSERT_TRUE(schedule.ok());
  const Schedule compressed =
      compress_schedule(inst, schedule.value(), kPeacockGuarantee);
  EXPECT_LE(compressed.round_count(), schedule.value().round_count());
  EXPECT_TRUE(
      verify::check_schedule(inst, compressed, kPeacockGuarantee).ok);
}

// --------------------------------------------------------- merge_policies --

Instance policy_a() {
  // Uses switches 0..4.
  return std::move(Instance::make({0, 1, 2, 4}, {0, 3, 2, 4})).value();
}

Instance policy_b() {
  // Uses switches 10..14: fully disjoint from policy_a.
  return std::move(Instance::make({10, 11, 12, 14}, {10, 13, 12, 14}))
      .value();
}

Instance policy_overlapping() {
  // Shares switches 1, 2, 4 with policy_a.
  return std::move(Instance::make({1, 2, 4, 6}, {1, 5, 4, 6})).value();
}

TEST(MergePoliciesTest, DisjointPoliciesRunFullyParallel) {
  const Instance a = policy_a();
  const Instance b = policy_b();
  const Schedule sa = plan_peacock(a).value();
  const Schedule sb = plan_peacock(b).value();
  const Result<MergedSchedule> merged = merge_policies({&a, &b}, {&sa, &sb});
  ASSERT_TRUE(merged.ok()) << merged.error().to_string();
  EXPECT_EQ(merged.value().round_count(),
            std::max(sa.round_count(), sb.round_count()));
}

TEST(MergePoliciesTest, PreservesPerPolicyRoundOrder) {
  const Instance a = policy_a();
  const Instance b = policy_overlapping();
  const Schedule sa = plan_peacock(a).value();
  const Schedule sb = plan_peacock(b).value();
  const Result<MergedSchedule> merged = merge_policies({&a, &b}, {&sa, &sb});
  ASSERT_TRUE(merged.ok());

  // Reconstruct each policy's node order from the merged rounds and check
  // it is exactly the original round order, flattened.
  for (std::size_t policy = 0; policy < 2; ++policy) {
    const Schedule& original = policy == 0 ? sa : sb;
    std::vector<NodeId> flattened;
    for (const Round& round : original.rounds)
      flattened.insert(flattened.end(), round.begin(), round.end());
    std::vector<NodeId> observed;
    for (const MergedRound& round : merged.value().rounds)
      for (const auto& [p, v] : round.ops)
        if (p == policy) observed.push_back(v);
    EXPECT_EQ(observed, flattened) << "policy " << policy;
  }
}

TEST(MergePoliciesTest, NoSwitchTouchedTwicePerRound) {
  const Instance a = policy_a();
  const Instance b = policy_overlapping();
  const Schedule sa = plan_peacock(a).value();
  const Schedule sb = plan_peacock(b).value();
  const Result<MergedSchedule> merged = merge_policies({&a, &b}, {&sa, &sb});
  ASSERT_TRUE(merged.ok());
  for (const MergedRound& round : merged.value().rounds) {
    std::set<NodeId> touched;
    for (const auto& [policy, v] : round.ops) {
      EXPECT_TRUE(touched.insert(v).second)
          << "switch " << v << " touched twice in one merged round";
    }
  }
}

TEST(MergePoliciesTest, OverlapCostsRoundsButStaysBounded) {
  const Instance a = policy_a();
  const Instance b = policy_overlapping();
  const Schedule sa = plan_peacock(a).value();
  const Schedule sb = plan_peacock(b).value();
  const Result<MergedSchedule> merged = merge_policies({&a, &b}, {&sa, &sb});
  ASSERT_TRUE(merged.ok());
  EXPECT_GE(merged.value().round_count(),
            std::max(sa.round_count(), sb.round_count()));
  EXPECT_LE(merged.value().round_count(),
            sa.round_count() + sb.round_count());
  // Every op placed exactly once.
  std::size_t ops = 0;
  for (const MergedRound& round : merged.value().rounds)
    ops += round.ops.size();
  EXPECT_EQ(ops, sa.touched_count() + sb.touched_count());
}

TEST(MergePoliciesTest, RejectsBadInput) {
  const Instance a = policy_a();
  const Schedule sa = plan_peacock(a).value();
  EXPECT_FALSE(merge_policies({&a}, {}).ok());
  EXPECT_FALSE(merge_policies({&a}, {nullptr}).ok());
  Schedule broken = sa;
  broken.rounds.push_back({99});  // not a touched node
  EXPECT_FALSE(merge_policies({&a}, {&broken}).ok());
}

// ---------------------------------------------------------- minimization --

TEST(MinimizeViolationTest, ShrinksOneShotWitnessOnFig1) {
  const Instance inst = topo::fig1().instance;
  const Result<Schedule> schedule = plan_oneshot(inst);
  ASSERT_TRUE(schedule.ok());
  verify::CheckOptions options;
  options.max_violations = 1;
  const verify::CheckReport report = verify::check_schedule(
      inst, schedule.value(), kWaypoint, options);
  ASSERT_FALSE(report.ok);
  const verify::Violation& original = report.violations.front();
  const verify::Violation minimal = verify::minimize_violation(
      inst, schedule.value(), original, kWaypoint);
  EXPECT_LE(minimal.subset.size(), original.subset.size());
  EXPECT_NE(minimal.violated & kWaypoint, 0u);
  // Local minimality: dropping any single node kills the violation.
  const update::StateMask applied =
      state_after_rounds(inst, schedule.value(), minimal.round_index);
  for (std::size_t i = 0; i < minimal.subset.size(); ++i) {
    update::StateMask state = applied;
    for (std::size_t j = 0; j < minimal.subset.size(); ++j)
      if (j != i) state[minimal.subset[j]] = true;
    EXPECT_TRUE(verify::state_ok(inst, state, kWaypoint))
        << "node " << minimal.subset[i] << " was removable";
  }
  // The minimal witness walk is a genuine bypass.
  EXPECT_EQ(minimal.walk.outcome, WalkOutcome::kDelivered);
  EXPECT_FALSE(minimal.walk.visited_waypoint);
}

TEST(MinimizeViolationTest, MinimalWitnessOnFig1IsAKnownHazardRace) {
  // Fig1 has two canonical bypass races:
  //  - the X race: flip the source onto the new prefix while X={5} is
  //    stale ({1,7}: trace 1->7->5 -old-> 6->12, skipping 3), and
  //  - the Y race: flip Y={2} plus the new-suffix installs
  //    ({2,9,10,11}: trace 1->2 -new-> 9->10->11->12).
  // The minimizer must land on one of them (two or four racing FlowMods),
  // never on a bloated subset.
  const Instance inst = topo::fig1().instance;
  const Result<Schedule> schedule = plan_oneshot(inst);
  verify::CheckOptions options;
  options.max_violations = 4;
  const verify::CheckReport report = verify::check_schedule(
      inst, schedule.value(), kWaypoint, options);
  ASSERT_FALSE(report.ok);
  const verify::Violation minimal = verify::minimize_violation(
      inst, schedule.value(), report.violations.front(), kWaypoint);
  std::vector<NodeId> subset = minimal.subset;
  std::sort(subset.begin(), subset.end());
  const bool is_x_race = subset == std::vector<NodeId>{1, 7};
  const bool is_y_race = subset == std::vector<NodeId>{2, 9, 10, 11};
  EXPECT_TRUE(is_x_race || is_y_race)
      << "minimal subset: " << minimal.to_string();
}

}  // namespace
}  // namespace tsu::update
