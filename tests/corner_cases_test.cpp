// Corner-case instances for every scheduler: minimal paths, waypoints at
// the edges of the interior, fully overlapping and fully disjoint routes.
#include <gtest/gtest.h>

#include <algorithm>

#include "tsu/update/schedulers.hpp"
#include "tsu/verify/checker.hpp"

namespace tsu::update {
namespace {

void expect_all_schedulers_sound(const Instance& inst) {
  const struct {
    const char* name;
    Result<Schedule> schedule;
    std::uint32_t property;
    bool requires_waypoint;
  } cases[] = {
      {"wayup", plan_wayup(inst), kWaypoint, true},
      {"peacock", plan_peacock(inst), kPeacockGuarantee, false},
      {"slf", plan_slf_greedy(inst), kSlfGuarantee, false},
  };
  for (const auto& c : cases) {
    if (c.requires_waypoint && !inst.has_waypoint()) {
      EXPECT_FALSE(c.schedule.ok()) << c.name;
      continue;
    }
    ASSERT_TRUE(c.schedule.ok())
        << c.name << " on " << inst.to_string() << ": "
        << c.schedule.error().to_string();
    EXPECT_TRUE(validate_schedule(inst, c.schedule.value()).ok()) << c.name;
    const verify::CheckReport report =
        verify::check_schedule(inst, c.schedule.value(), c.property);
    EXPECT_TRUE(report.ok) << c.name << " on " << inst.to_string() << "\n"
                           << c.schedule.value().to_string() << "\n"
                           << report.to_string();
  }
}

TEST(CornerCases, MinimalTwoNodePaths) {
  // Identical one-hop routes: nothing to do.
  const Instance inst = std::move(Instance::make({0, 1}, {0, 1})).value();
  expect_all_schedulers_sound(inst);
  EXPECT_EQ(plan_peacock(inst).value().round_count(), 0u);
}

TEST(CornerCases, SingleDetour) {
  // Shortest possible real change: one-hop to two-hop.
  const Instance inst = std::move(Instance::make({0, 1}, {0, 2, 1})).value();
  expect_all_schedulers_sound(inst);
  // Install 2 first, then flip 0: exactly two rounds for everyone.
  EXPECT_EQ(plan_peacock(inst).value().round_count(), 2u);
  EXPECT_EQ(plan_slf_greedy(inst).value().round_count(), 2u);
}

TEST(CornerCases, ShortcutRemovingNodes) {
  // Two-hop to one-hop: only the source changes; old interior is cleanup.
  const Instance inst = std::move(Instance::make({0, 2, 1}, {0, 1})).value();
  expect_all_schedulers_sound(inst);
  const Result<Schedule> schedule = plan_peacock(inst);
  EXPECT_EQ(schedule.value().round_count(), 1u);
  EXPECT_EQ(schedule.value().cleanup, Round{2});
}

TEST(CornerCases, WaypointImmediatelyAfterSource) {
  const Instance inst =
      std::move(Instance::make({0, 1, 2, 3}, {0, 1, 4, 3}, NodeId{1}))
          .value();
  expect_all_schedulers_sound(inst);
  EXPECT_TRUE(verify::check_schedule(inst, plan_wayup(inst).value(),
                                     kWaypoint)
                  .ok);
}

TEST(CornerCases, WaypointImmediatelyBeforeDestination) {
  const Instance inst =
      std::move(Instance::make({0, 1, 2, 3}, {0, 4, 2, 3}, NodeId{2}))
          .value();
  expect_all_schedulers_sound(inst);
}

TEST(CornerCases, IdenticalPathsWithWaypoint) {
  const Instance inst =
      std::move(Instance::make({0, 1, 2}, {0, 1, 2}, NodeId{1})).value();
  expect_all_schedulers_sound(inst);
  EXPECT_EQ(plan_wayup(inst).value().round_count(), 0u);
}

TEST(CornerCases, FullyDisjointInteriors) {
  const Instance inst =
      std::move(Instance::make({0, 1, 2, 3, 4}, {0, 5, 6, 7, 4})).value();
  expect_all_schedulers_sound(inst);
  // Disjoint interiors: installs then a single flip of the source.
  EXPECT_EQ(plan_peacock(inst).value().round_count(), 2u);
}

TEST(CornerCases, SwappedMiddleNodes) {
  // old 0-1-2-3, new 0-2-1-3: the smallest loop hazard.
  const Instance inst =
      std::move(Instance::make({0, 1, 2, 3}, {0, 2, 1, 3})).value();
  expect_all_schedulers_sound(inst);
  const Result<Schedule> oneshot = plan_oneshot(inst);
  EXPECT_FALSE(
      verify::check_schedule(inst, oneshot.value(), kLoopFree).ok);
}

TEST(CornerCases, LongSharedPrefixAndSuffix) {
  // Only the middle differs; common segments must not be touched.
  const Instance inst = std::move(Instance::make({0, 1, 2, 3, 4, 5, 6},
                                                 {0, 1, 2, 7, 4, 5, 6}))
                            .value();
  expect_all_schedulers_sound(inst);
  std::vector<NodeId> touched = inst.touched();
  std::sort(touched.begin(), touched.end());
  EXPECT_EQ(touched, (std::vector<NodeId>{2, 7}));
}

TEST(CornerCases, WaypointOnSharedSegment) {
  // The waypoint lies on the common prefix: trivially enforced, and WayUp
  // must not generate bogus rounds for it.
  const Instance inst =
      std::move(Instance::make({0, 1, 2, 3, 4}, {0, 1, 5, 3, 4}, NodeId{1}))
          .value();
  expect_all_schedulers_sound(inst);
}

TEST(CornerCases, LargeReversalStressesEveryScheduler) {
  const Instance inst = [] {
    graph::Path old_path;
    graph::Path new_path;
    for (NodeId v = 0; v < 20; ++v) old_path.push_back(v);
    new_path.push_back(0);
    for (NodeId v = 18; v >= 1; --v) new_path.push_back(v);
    new_path.push_back(19);
    return std::move(Instance::make(old_path, new_path)).value();
  }();
  expect_all_schedulers_sound(inst);
}

TEST(CornerCases, OneShotOnTrivialChangeIsFine) {
  // A change with no hazard: even OneShot passes everything.
  const Instance inst =
      std::move(Instance::make({0, 1, 2}, {0, 3, 2})).value();
  const Result<Schedule> oneshot = plan_oneshot(inst);
  // One round containing {0-flip, 3-install}: subset {0} alone blackholes
  // at 3. So even here OneShot is *not* blackhole-free...
  EXPECT_FALSE(verify::check_schedule(inst, oneshot.value(),
                                      kBlackholeFree)
                   .ok);
  // ...but it is loop-free (no cycle possible among these rules).
  EXPECT_TRUE(
      verify::check_schedule(inst, oneshot.value(), kLoopFree).ok);
}

}  // namespace
}  // namespace tsu::update
