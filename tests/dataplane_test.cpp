#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "tsu/dataplane/monitor.hpp"
#include "tsu/dataplane/traffic.hpp"
#include "tsu/topo/instances.hpp"

namespace tsu::dataplane {
namespace {

struct Plane {
  sim::Simulator sim;
  std::vector<std::unique_ptr<switchsim::SimSwitch>> storage;
  std::vector<switchsim::SimSwitch*> switches;

  explicit Plane(std::size_t nodes) : switches(nodes, nullptr) {
    switchsim::SwitchConfig config;
    for (NodeId v = 0; v < nodes; ++v) {
      storage.push_back(std::make_unique<switchsim::SimSwitch>(
          sim, v, v, config, Rng(v + 1)));
      switches[v] = storage.back().get();
    }
  }

  // Directly installs a forwarding rule (bypassing the control channel).
  void rule(NodeId at, FlowId flow, flow::Action action) {
    switches[at]->table().add(
        flow::FlowRule{flow::Match::exact_flow(flow), action, 100, 0});
  }
};

TrafficConfig config_for(NodeId ingress, NodeId egress,
                         std::optional<NodeId> waypoint,
                         sim::SimTime stop = sim::milliseconds(10)) {
  TrafficConfig config;
  config.flow = 1;
  config.ingress = ingress;
  config.egress = egress;
  config.waypoint = waypoint;
  config.interarrival = sim::LatencyModel::constant(sim::milliseconds(1));
  config.link_latency = sim::LatencyModel::constant(sim::microseconds(10));
  config.stop = stop;
  return config;
}

TEST(TrafficTest, DeliversAlongStablePath) {
  Plane plane(4);
  plane.rule(0, 1, flow::Action::forward(1));
  plane.rule(1, 1, flow::Action::forward(2));
  plane.rule(2, 1, flow::Action::forward(3));
  plane.rule(3, 1, flow::Action::deliver());
  ConsistencyMonitor monitor;
  TrafficSource source(plane.sim, plane.switches,
                       config_for(0, 3, std::nullopt), Rng(9), monitor);
  source.start();
  plane.sim.run();
  EXPECT_EQ(source.injected(), 10u);  // 1/ms for 10 ms, starting at t=0
  EXPECT_EQ(monitor.report().delivered, 10u);
  EXPECT_EQ(monitor.report().total, 10u);
  EXPECT_EQ(source.in_flight(), 0u);
}

TEST(TrafficTest, WaypointCrossingRecognized) {
  Plane plane(3);
  plane.rule(0, 1, flow::Action::forward(1));
  plane.rule(1, 1, flow::Action::forward(2));
  plane.rule(2, 1, flow::Action::deliver());
  ConsistencyMonitor monitor;
  TrafficSource source(plane.sim, plane.switches,
                       config_for(0, 2, NodeId{1}), Rng(9), monitor);
  source.start();
  plane.sim.run();
  EXPECT_EQ(monitor.report().delivered, monitor.report().total);
  EXPECT_EQ(monitor.report().bypassed, 0u);
}

TEST(TrafficTest, WaypointBypassFlagged) {
  Plane plane(3);
  // Route skips switch 1 (the "firewall").
  plane.rule(0, 1, flow::Action::forward(2));
  plane.rule(2, 1, flow::Action::deliver());
  ConsistencyMonitor monitor;
  TrafficSource source(plane.sim, plane.switches,
                       config_for(0, 2, NodeId{1}), Rng(9), monitor);
  source.start();
  plane.sim.run();
  EXPECT_EQ(monitor.report().bypassed, monitor.report().total);
  EXPECT_EQ(monitor.report().delivered, 0u);
  EXPECT_GT(monitor.report().bypass_rate(), 0.99);
}

TEST(TrafficTest, LoopDetectedOnRevisit) {
  Plane plane(3);
  plane.rule(0, 1, flow::Action::forward(1));
  plane.rule(1, 1, flow::Action::forward(2));
  plane.rule(2, 1, flow::Action::forward(1));  // 1 <-> 2 loop
  ConsistencyMonitor monitor;
  // ingress == egress: switch 0 has no deliver rule, so packets forward
  // into the loop and must be classified as looped on the revisit of 1.
  const TrafficConfig config =
      config_for(0, 0, std::nullopt, sim::milliseconds(3));
  TrafficSource source(plane.sim, plane.switches, config, Rng(9), monitor);
  source.start();
  plane.sim.run();
  EXPECT_GT(monitor.report().total, 0u);
  EXPECT_EQ(monitor.report().looped, monitor.report().total);
}

TEST(TrafficTest, BlackholeOnMissingRule) {
  Plane plane(3);
  plane.rule(0, 1, flow::Action::forward(1));  // 1 has no rule
  ConsistencyMonitor monitor;
  TrafficSource source(plane.sim, plane.switches,
                       config_for(0, 2, std::nullopt, sim::milliseconds(3)),
                       Rng(9), monitor);
  source.start();
  plane.sim.run();
  EXPECT_EQ(monitor.report().blackholed, monitor.report().total);
}

TEST(TrafficTest, ExplicitDropCountsAsBlackhole) {
  Plane plane(2);
  plane.rule(0, 1, flow::Action::drop());
  ConsistencyMonitor monitor;
  TrafficSource source(plane.sim, plane.switches,
                       config_for(0, 1, std::nullopt, sim::milliseconds(2)),
                       Rng(9), monitor);
  source.start();
  plane.sim.run();
  EXPECT_EQ(monitor.report().blackholed, monitor.report().total);
}

TEST(TrafficTest, TtlExpiryOnLongDetour) {
  // A forward chain longer than the TTL: no revisit, but the packet dies.
  constexpr std::size_t kNodes = 40;
  Plane plane(kNodes);
  for (NodeId v = 0; v + 1 < kNodes; ++v)
    plane.rule(v, 1, flow::Action::forward(v + 1));
  plane.rule(kNodes - 1, 1, flow::Action::deliver());
  ConsistencyMonitor monitor;
  TrafficConfig config = config_for(0, kNodes - 1, std::nullopt,
                                    sim::milliseconds(2));
  config.ttl = 10;
  TrafficSource source(plane.sim, plane.switches, config, Rng(9), monitor);
  source.start();
  plane.sim.run();
  EXPECT_EQ(monitor.report().ttl_expired, monitor.report().total);
}

TEST(TrafficTest, RulesChangingMidFlightAffectPackets) {
  Plane plane(4);
  plane.rule(0, 1, flow::Action::forward(1));
  plane.rule(1, 1, flow::Action::forward(2));
  plane.rule(2, 1, flow::Action::forward(3));
  plane.rule(3, 1, flow::Action::deliver());
  ConsistencyMonitor monitor;
  TrafficConfig config = config_for(0, 3, std::nullopt,
                                    sim::milliseconds(10));
  config.link_latency = sim::LatencyModel::constant(sim::milliseconds(1));
  TrafficSource source(plane.sim, plane.switches, config, Rng(9), monitor);
  source.start();
  // While packets are in flight, break the path at switch 2.
  plane.sim.schedule(sim::milliseconds(5), [&plane]() {
    plane.switches[2]->table().clear();
  });
  plane.sim.run();
  EXPECT_GT(monitor.report().delivered, 0u);
  EXPECT_GT(monitor.report().blackholed, 0u);
  EXPECT_EQ(monitor.report().delivered + monitor.report().blackholed,
            monitor.report().total);
}

// ---------------------------------------------------------------- monitor --

TEST(MonitorTest, ReportAggregates) {
  ConsistencyMonitor monitor;
  monitor.record(0, PacketOutcome::kDelivered);
  monitor.record(sim::milliseconds(1), PacketOutcome::kBypassedWaypoint);
  monitor.record(sim::milliseconds(2), PacketOutcome::kLooped);
  monitor.record(sim::milliseconds(2), PacketOutcome::kBlackholed);
  monitor.record(sim::milliseconds(3), PacketOutcome::kTtlExpired);
  const MonitorReport& report = monitor.report();
  EXPECT_EQ(report.total, 5u);
  EXPECT_EQ(report.delivered, 1u);
  EXPECT_EQ(report.bypassed, 1u);
  EXPECT_DOUBLE_EQ(report.violation_rate(), 0.8);
  EXPECT_DOUBLE_EQ(report.bypass_rate(), 0.2);
}

TEST(MonitorTest, TimelineBucketsByTime) {
  ConsistencyMonitor monitor(sim::milliseconds(1));
  monitor.record(sim::microseconds(100), PacketOutcome::kDelivered);
  monitor.record(sim::microseconds(900), PacketOutcome::kDelivered);
  monitor.record(sim::milliseconds(2) + 1, PacketOutcome::kBypassedWaypoint);
  const auto& timeline = monitor.timeline();
  ASSERT_EQ(timeline.size(), 3u);
  EXPECT_EQ(timeline[0].delivered, 2u);
  EXPECT_EQ(timeline[1].delivered, 0u);
  EXPECT_EQ(timeline[2].bypassed, 1u);
  EXPECT_NE(monitor.timeline_to_string().find("BYPASSED"), std::string::npos);
}

TEST(MonitorTest, OutcomeNames) {
  EXPECT_STREQ(to_string(PacketOutcome::kBypassedWaypoint),
               "bypassed-waypoint");
  EXPECT_STREQ(to_string(PacketOutcome::kTtlExpired), "ttl-expired");
}

TEST(MonitorTest, EmptyReportRatesAreZero) {
  const MonitorReport report;
  EXPECT_DOUBLE_EQ(report.violation_rate(), 0.0);
  EXPECT_DOUBLE_EQ(report.bypass_rate(), 0.0);
}

}  // namespace
}  // namespace tsu::dataplane
