// Concurrent multi-flow controller tests: K in-flight updates interleaving
// rounds on a shared control plane, per-flow round tracking, and cross-flow
// frame batching.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "tsu/channel/channel.hpp"
#include "tsu/controller/controller.hpp"
#include "tsu/switchsim/switch.hpp"

namespace tsu::controller {
namespace {

struct TestBed {
  sim::Simulator sim;
  Rng rng{12345};
  Controller ctrl;
  std::map<NodeId, std::unique_ptr<switchsim::SimSwitch>> switches;
  std::vector<std::unique_ptr<channel::DuplexChannel>> channels;

  channel::ChannelConfig channel_config;
  switchsim::SwitchConfig switch_config;

  explicit TestBed(ControllerConfig config = {}) : ctrl(sim, config) {
    channel_config.latency = sim::LatencyModel::constant(sim::milliseconds(1));
    switch_config.install_latency =
        sim::LatencyModel::constant(sim::milliseconds(1));
  }

  void add_switch(NodeId node) {
    auto sw = std::make_unique<switchsim::SimSwitch>(
        sim, node, node, switch_config, rng.fork());
    auto duplex = std::make_unique<channel::DuplexChannel>(
        sim, channel_config, rng);
    auto* sw_ptr = sw.get();
    auto* duplex_ptr = duplex.get();
    duplex->to_switch.set_receiver(
        [sw_ptr](const proto::Message& m) { sw_ptr->receive(m); });
    duplex->to_controller.set_receiver(
        [this, node](const proto::Message& m) { ctrl.on_message(node, m); });
    sw->set_controller_link([duplex_ptr](const proto::Message& m) {
      duplex_ptr->to_controller.send(m);
    });
    ctrl.attach_switch(node, [duplex_ptr](const proto::Message& m) {
      duplex_ptr->to_switch.send(m);
    });
    switches.emplace(node, std::move(sw));
    channels.push_back(std::move(duplex));
  }

  std::size_t total_frames() const {
    std::size_t frames = 0;
    for (const auto& duplex : channels)
      frames += duplex->to_switch.frames_sent() +
                duplex->to_controller.frames_sent();
    return frames;
  }
};

RoundOp op(NodeId node, FlowId flow, NodeId next) {
  proto::FlowMod mod;
  mod.command = proto::FlowModCommand::kAdd;
  mod.priority = 100;
  mod.match.flow = flow;
  mod.action = flow::Action::forward(next);
  return RoundOp{node, mod, {}};
}

UpdateRequest two_round_request(const std::string& name, FlowId flow,
                                NodeId a, NodeId b) {
  UpdateRequest request;
  request.name = name;
  request.flow = flow;
  request.rounds = {{op(a, flow, 7)}, {op(b, flow, 8)}};
  return request;
}

TEST(ConcurrentControllerTest, TwoUpdatesOverlapWithK2) {
  ControllerConfig config;
  config.max_in_flight = 2;
  TestBed bed{config};
  bed.add_switch(1);
  bed.add_switch(2);
  bed.ctrl.submit(two_round_request("a", 1, 1, 2));
  bed.ctrl.submit(two_round_request("b", 2, 2, 1));
  EXPECT_EQ(bed.ctrl.queued(), 0u);  // both admitted immediately
  EXPECT_EQ(bed.ctrl.in_flight(), 2u);
  bed.sim.run();
  ASSERT_EQ(bed.ctrl.completed().size(), 2u);
  EXPECT_EQ(bed.ctrl.max_in_flight_observed(), 2u);
  const UpdateMetrics& m1 = bed.ctrl.completed()[0];
  const UpdateMetrics& m2 = bed.ctrl.completed()[1];
  // Concurrent, not serialized: the later-finishing update started before
  // the earlier one finished.
  EXPECT_LT(m2.started, m1.finished);
  EXPECT_EQ(m1.queueing_delay(), 0u);
  EXPECT_EQ(m2.queueing_delay(), 0u);
  // Both flows' rules landed.
  for (const FlowId flow : {1u, 2u}) {
    flow::Packet p;
    p.flow = flow;
    EXPECT_TRUE(bed.switches[1]->table().lookup(p).has_value());
    EXPECT_TRUE(bed.switches[2]->table().lookup(p).has_value());
  }
}

TEST(ConcurrentControllerTest, KOneStillSerializes) {
  ControllerConfig config;
  config.max_in_flight = 1;
  TestBed bed{config};
  bed.add_switch(1);
  bed.ctrl.submit(two_round_request("a", 1, 1, 1));
  bed.ctrl.submit(two_round_request("b", 2, 1, 1));
  EXPECT_EQ(bed.ctrl.queued(), 1u);
  bed.sim.run();
  ASSERT_EQ(bed.ctrl.completed().size(), 2u);
  EXPECT_GE(bed.ctrl.completed()[1].started,
            bed.ctrl.completed()[0].finished);
  EXPECT_EQ(bed.ctrl.max_in_flight_observed(), 1u);
}

TEST(ConcurrentControllerTest, AdmitsFromQueueAsSlotsFree) {
  ControllerConfig config;
  config.max_in_flight = 2;
  TestBed bed{config};
  bed.add_switch(1);
  for (int i = 0; i < 4; ++i) {
    std::string name("u");
    name.push_back(static_cast<char>('0' + i));
    bed.ctrl.submit(
        two_round_request(name, static_cast<FlowId>(i + 1), 1, 1));
  }
  EXPECT_EQ(bed.ctrl.in_flight(), 2u);
  EXPECT_EQ(bed.ctrl.queued(), 2u);
  bed.sim.run();
  EXPECT_TRUE(bed.ctrl.idle());
  EXPECT_EQ(bed.ctrl.completed().size(), 4u);
  EXPECT_EQ(bed.ctrl.max_in_flight_observed(), 2u);
}

TEST(ConcurrentControllerTest, PerFlowRoundsTrackedIndependently) {
  ControllerConfig config;
  config.max_in_flight = 2;
  TestBed bed{config};
  bed.add_switch(1);
  bed.add_switch(2);
  // Flow 1 has three rounds on a switch made slow by queueing; flow 2 has
  // one round on the other switch and must finish well before flow 1.
  UpdateRequest slow;
  slow.name = "slow";
  slow.flow = 1;
  slow.rounds = {{op(1, 1, 7)}, {op(1, 1, 8)}, {op(1, 1, 9)}};
  UpdateRequest fast;
  fast.name = "fast";
  fast.flow = 2;
  fast.rounds = {{op(2, 2, 7)}};
  bed.ctrl.submit(slow);
  bed.ctrl.submit(fast);
  bed.sim.run();
  ASSERT_EQ(bed.ctrl.completed().size(), 2u);
  const UpdateMetrics& first = bed.ctrl.completed()[0];
  const UpdateMetrics& second = bed.ctrl.completed()[1];
  EXPECT_EQ(first.name, "fast");  // completion order, not submission order
  EXPECT_EQ(second.name, "slow");
  EXPECT_EQ(first.flow, 2u);
  ASSERT_EQ(second.rounds.size(), 3u);
  // Flow 1's rounds stayed barrier-sequenced despite flow 2 interleaving.
  EXPECT_GE(second.rounds[1].started, second.rounds[0].finished);
  EXPECT_GE(second.rounds[2].started, second.rounds[1].finished);
}

TEST(ConcurrentControllerTest, BatchingCoalescesCrossFlowFrames) {
  ControllerConfig serial_config;
  serial_config.max_in_flight = 4;
  serial_config.batch_frames = false;
  ControllerConfig batched_config = serial_config;
  batched_config.batch_frames = true;

  const auto run = [](TestBed& bed) {
    for (FlowId flow = 1; flow <= 4; ++flow) {
      // All four flows touch the same two switches in each round.
      UpdateRequest request;
      request.name = "f";
      request.name.push_back(static_cast<char>('0' + flow));
      request.flow = flow;
      request.rounds = {{op(1, flow, 7), op(2, flow, 7)},
                        {op(1, flow, 8), op(2, flow, 8)}};
      bed.ctrl.submit(request);
    }
    bed.sim.run();
  };

  TestBed plain{serial_config};
  plain.add_switch(1);
  plain.add_switch(2);
  run(plain);
  TestBed batched{batched_config};
  batched.add_switch(1);
  batched.add_switch(2);
  run(batched);

  ASSERT_EQ(plain.ctrl.completed().size(), 4u);
  ASSERT_EQ(batched.ctrl.completed().size(), 4u);
  // Identical logical work...
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(batched.ctrl.completed()[i].flow_mods_sent,
              plain.ctrl.completed()[i].flow_mods_sent);
    EXPECT_EQ(batched.ctrl.completed()[i].barriers_sent,
              plain.ctrl.completed()[i].barriers_sent);
  }
  // ...but strictly fewer frames on the wire.
  EXPECT_LT(batched.total_frames(), plain.total_frames());
  EXPECT_GT(batched.ctrl.batches_sent(), 0u);
  EXPECT_GT(batched.ctrl.messages_coalesced(), 0u);
  // Every flow's rules landed in both modes.
  for (FlowId flow = 1; flow <= 4; ++flow) {
    flow::Packet p;
    p.flow = flow;
    EXPECT_EQ(batched.switches[1]->table().lookup(p)->action,
              flow::Action::forward(8));
    EXPECT_EQ(plain.switches[1]->table().lookup(p)->action,
              flow::Action::forward(8));
  }
}

TEST(ConcurrentControllerTest, BatchingAloneHelpsSingleFlowRounds) {
  // Even one update benefits: a round's FlowMod + barrier to the same
  // switch share a frame.
  ControllerConfig batched_config;
  batched_config.batch_frames = true;
  TestBed plain;
  plain.add_switch(1);
  TestBed batched{batched_config};
  batched.add_switch(1);
  UpdateRequest request;
  request.flow = 1;
  request.rounds = {{op(1, 1, 2), op(1, 1, 3)}};
  plain.ctrl.submit(request);
  plain.sim.run();
  batched.ctrl.submit(request);
  batched.sim.run();
  ASSERT_EQ(batched.ctrl.completed().size(), 1u);
  EXPECT_LT(batched.total_frames(), plain.total_frames());
}

}  // namespace
}  // namespace tsu::controller
