// The lock-free primitives of the allocation-free hot path: SpscRing (the
// cross-shard mailbox edge, sim/spsc_ring.hpp) and InlineFn (the
// small-buffer event closure, sim/inline_fn.hpp). FIFO order, full/empty
// edges, wraparound, move-only payloads, a threaded producer/consumer
// hammering (run under TSan in CI), and InlineFn's inline-vs-heap storage,
// move semantics and eager reset.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "tsu/sim/inline_fn.hpp"
#include "tsu/sim/spsc_ring.hpp"

namespace tsu::sim {
namespace {

// ------------------------------------------------------------- SpscRing --

TEST(SpscRingTest, FifoOrder) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.try_push(int{i}));
  EXPECT_EQ(ring.size(), 5u);
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRingTest, FullRingRejectsWithoutConsuming) {
  SpscRing<std::unique_ptr<int>> ring(4);
  for (int i = 0; i < 4; ++i)
    EXPECT_TRUE(ring.try_push(std::make_unique<int>(i)));
  auto extra = std::make_unique<int>(99);
  EXPECT_FALSE(ring.try_push(std::move(extra)));
  // The rejected value must NOT have been consumed: the caller spills it
  // to the overflow path.
  ASSERT_NE(extra, nullptr);
  EXPECT_EQ(*extra, 99);
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(*out, 0);
  EXPECT_TRUE(ring.try_push(std::move(extra)));  // slot freed
}

TEST(SpscRingTest, WrapsAroundManyTimes) {
  SpscRing<std::uint64_t> ring(4);
  std::uint64_t out = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_TRUE(ring.try_push(std::uint64_t{i}));
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRingTest, DestructorReleasesUnpoppedEntries) {
  auto probe = std::make_shared<int>(7);
  {
    SpscRing<std::shared_ptr<int>> ring(8);
    for (int i = 0; i < 3; ++i) {
      auto copy = probe;
      EXPECT_TRUE(ring.try_push(std::move(copy)));
    }
    EXPECT_EQ(probe.use_count(), 4);
  }
  EXPECT_EQ(probe.use_count(), 1);  // ring dtor destroyed its entries
}

TEST(SpscRingTest, MoveOnlyPayloadSurvivesTransit) {
  SpscRing<std::unique_ptr<std::string>> ring(2);
  EXPECT_TRUE(ring.try_push(std::make_unique<std::string>("hello")));
  std::unique_ptr<std::string> out;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(*out, "hello");
}

TEST(SpscRingTest, ThreadedProducerConsumer) {
  // One producer, one consumer, a ring much smaller than the item count:
  // every item arrives exactly once, in order, through many full/empty
  // transitions. CI runs this suite under TSan to vet the acquire/release
  // protocol.
  SpscRing<std::uint64_t> ring(64);
  constexpr std::uint64_t kItems = 200000;
  std::thread producer([&]() {
    for (std::uint64_t i = 0; i < kItems; ++i)
      while (!ring.try_push(std::uint64_t{i})) std::this_thread::yield();
  });
  std::uint64_t expected = 0;
  while (expected < kItems) {
    std::uint64_t out;
    if (ring.try_pop(out)) {
      ASSERT_EQ(out, expected);
      ++expected;
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

// ------------------------------------------------------------- InlineFn --

TEST(InlineFnTest, SmallClosureStaysInline) {
  int hits = 0;
  InlineFn fn([&hits]() { ++hits; });
  ASSERT_TRUE(static_cast<bool>(fn));
  EXPECT_TRUE(fn.is_inline());
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFnTest, OversizedClosureFallsBackToHeap) {
  struct Big {
    std::byte pad[InlineFn::kInlineSize + 64];
  };
  Big big{};
  big.pad[0] = std::byte{42};
  int result = 0;
  InlineFn fn([big, &result]() {
    result = static_cast<int>(big.pad[0]);
  });
  EXPECT_FALSE(fn.is_inline());
  fn();
  EXPECT_EQ(result, 42);
}

TEST(InlineFnTest, MoveTransfersClosure) {
  auto probe = std::make_shared<int>(5);
  InlineFn a([probe]() { ++*probe; });
  EXPECT_EQ(probe.use_count(), 2);
  InlineFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(use-after-move): spec'd empty
  EXPECT_EQ(probe.use_count(), 2);     // moved, not copied
  b();
  EXPECT_EQ(*probe, 6);
  InlineFn c;
  c = std::move(b);
  c();
  EXPECT_EQ(*probe, 7);
  c.reset();
  EXPECT_EQ(probe.use_count(), 1);
}

TEST(InlineFnTest, ResetDestroysClosureImmediately) {
  // The eager-cancel contract: reset() must release captured resources
  // NOW, not at the InlineFn's destruction.
  auto probe = std::make_shared<int>(1);
  InlineFn fn([probe]() {});
  EXPECT_EQ(probe.use_count(), 2);
  fn.reset();
  EXPECT_EQ(probe.use_count(), 1);
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(InlineFnTest, HeapClosureResetReleases) {
  struct Big {
    std::shared_ptr<int> probe;
    std::byte pad[InlineFn::kInlineSize];
    void operator()() {}
  };
  auto probe = std::make_shared<int>(1);
  InlineFn fn(Big{probe, {}});
  EXPECT_FALSE(fn.is_inline());
  EXPECT_EQ(probe.use_count(), 2);
  fn.reset();
  EXPECT_EQ(probe.use_count(), 1);
}

TEST(InlineFnTest, MoveAssignReleasesPreviousClosure) {
  auto old_probe = std::make_shared<int>(1);
  auto new_probe = std::make_shared<int>(2);
  InlineFn fn([old_probe]() {});
  EXPECT_EQ(old_probe.use_count(), 2);
  fn = InlineFn([new_probe]() {});
  EXPECT_EQ(old_probe.use_count(), 1);  // previous closure destroyed
  EXPECT_EQ(new_probe.use_count(), 2);
}

}  // namespace
}  // namespace tsu::sim
