#include <gtest/gtest.h>

#include "tsu/graph/algorithms.hpp"
#include "tsu/topo/generators.hpp"
#include "tsu/topo/instances.hpp"
#include "tsu/topo/topology.hpp"

namespace tsu::topo {
namespace {

// --------------------------------------------------------------- Topology --

TEST(TopologyTest, DefaultDpidsAreNodeIds) {
  const Topology t = line(4);
  EXPECT_EQ(t.dpid(2), 2u);
  EXPECT_EQ(t.node_of_dpid(3), 3u);
  EXPECT_FALSE(t.node_of_dpid(99).has_value());
}

TEST(TopologyTest, CustomDpids) {
  Topology t = line(3);
  t.set_dpid(0, 100);
  EXPECT_EQ(t.dpid(0), 100u);
  EXPECT_EQ(t.node_of_dpid(100), 0u);
  EXPECT_FALSE(t.node_of_dpid(0).has_value());
}

TEST(TopologyTest, Hosts) {
  Topology t = line(3);
  t.add_host("h1", 0);
  t.add_host("h2", 2);
  ASSERT_EQ(t.hosts().size(), 2u);
  EXPECT_EQ(t.hosts()[0].name, "h1");
  EXPECT_EQ(t.hosts()[1].attached, 2u);
}

// ------------------------------------------------------------- generators --

TEST(GeneratorsTest, LineShape) {
  const Topology t = line(5);
  EXPECT_EQ(t.switch_count(), 5u);
  EXPECT_EQ(t.graph().edge_count(), 8u);  // 4 links, both directions
  EXPECT_TRUE(t.graph().has_edge(0, 1));
  EXPECT_TRUE(t.graph().has_edge(1, 0));
  EXPECT_FALSE(t.graph().has_edge(0, 2));
}

TEST(GeneratorsTest, RingClosesLoop) {
  const Topology t = ring(4);
  EXPECT_EQ(t.graph().edge_count(), 8u);
  EXPECT_TRUE(t.graph().has_edge(3, 0));
  EXPECT_TRUE(t.graph().has_edge(0, 3));
}

TEST(GeneratorsTest, GridShape) {
  const Topology t = grid(2, 3);
  EXPECT_EQ(t.switch_count(), 6u);
  // 2*3 grid: 2 rows x 2 horizontal links + 3 vertical links = 7 links.
  EXPECT_EQ(t.graph().edge_count(), 14u);
  EXPECT_TRUE(t.graph().has_edge(0, 1));
  EXPECT_TRUE(t.graph().has_edge(0, 3));  // down
}

TEST(GeneratorsTest, ErdosRenyiConnected) {
  Rng rng(5);
  const Topology t = erdos_renyi(20, 0.05, rng);
  EXPECT_EQ(t.switch_count(), 20u);
  const auto reach = graph::reachable_from(t.graph(), 0);
  for (NodeId v = 0; v < 20; ++v) EXPECT_TRUE(reach[v]) << v;
}

TEST(GeneratorsTest, WaxmanConnectedAndSeeded) {
  Rng rng1(9);
  Rng rng2(9);
  const Topology a = waxman(15, 0.6, 0.3, rng1);
  const Topology b = waxman(15, 0.6, 0.3, rng2);
  EXPECT_EQ(a.graph().edge_count(), b.graph().edge_count());
  const auto reach = graph::reachable_from(a.graph(), 0);
  for (NodeId v = 0; v < 15; ++v) EXPECT_TRUE(reach[v]);
}

// ------------------------------------------------------------------- fig1 --

TEST(Fig1Test, MatchesPaperConstraints) {
  const Fig1 fig = fig1();
  // 12 switches (ids 1..12), h1 at switch 1, h2 at switch 12, waypoint 3.
  EXPECT_EQ(fig.topology.switch_count(), 13u);  // index 0 unused
  ASSERT_EQ(fig.topology.hosts().size(), 2u);
  EXPECT_EQ(fig.topology.hosts()[0].attached, 1u);
  EXPECT_EQ(fig.topology.hosts()[1].attached, 12u);
  EXPECT_EQ(fig.instance.source(), 1u);
  EXPECT_EQ(fig.instance.destination(), 12u);
  EXPECT_EQ(*fig.instance.waypoint(), 3u);
  // All 12 switches participate in old or new route.
  int used = 0;
  for (NodeId v = 1; v <= 12; ++v)
    if (fig.instance.on_old(v) || fig.instance.on_new(v)) ++used;
  EXPECT_EQ(used, 12);
}

TEST(Fig1Test, RoutesAreValidPathsInTopology) {
  const Fig1 fig = fig1();
  EXPECT_TRUE(graph::is_path_of(fig.topology.graph(), fig.instance.old_path()));
  EXPECT_TRUE(graph::is_path_of(fig.topology.graph(), fig.instance.new_path()));
}

TEST(Fig1Test, IsAdversarial) {
  // The scenario must exercise the interesting machinery: non-empty X, Y.
  const Fig1 fig = fig1();
  EXPECT_FALSE(fig.instance.set_x().empty());
  EXPECT_FALSE(fig.instance.set_y().empty());
}

// --------------------------------------------------------------- reversal --

TEST(ReversalTest, ShapeAndValidity) {
  const update::Instance inst = reversal_instance(6);
  EXPECT_EQ(inst.old_path(), (graph::Path{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(inst.new_path(), (graph::Path{0, 4, 3, 2, 1, 5}));
  EXPECT_EQ(inst.touched().size(), 5u);
}

// -------------------------------------------------------- random instances --

TEST(RandomInstanceTest, AlwaysValid) {
  Rng rng(1234);
  RandomInstanceOptions options;
  for (int i = 0; i < 500; ++i) {
    const update::Instance inst = random_instance(rng, options);
    EXPECT_GE(inst.old_path().size(), 2u);
    EXPECT_GE(inst.new_path().size(), 2u);
    EXPECT_EQ(inst.old_path().front(), inst.new_path().front());
    EXPECT_EQ(inst.old_path().back(), inst.new_path().back());
    ASSERT_TRUE(inst.has_waypoint());
    EXPECT_TRUE(inst.on_old(*inst.waypoint()));
    EXPECT_TRUE(inst.on_new(*inst.waypoint()));
  }
}

TEST(RandomInstanceTest, NoWaypointModeOmitsIt) {
  Rng rng(77);
  RandomInstanceOptions options;
  options.with_waypoint = false;
  for (int i = 0; i < 50; ++i) {
    const update::Instance inst = random_instance(rng, options);
    EXPECT_FALSE(inst.has_waypoint());
  }
}

TEST(RandomInstanceTest, ReuseKnobControlsOverlap) {
  Rng rng_low(3);
  Rng rng_high(3);
  RandomInstanceOptions low;
  low.reuse_probability = 0.05;
  low.with_waypoint = false;
  RandomInstanceOptions high;
  high.reuse_probability = 0.95;
  high.with_waypoint = false;
  std::size_t overlap_low = 0;
  std::size_t overlap_high = 0;
  for (int i = 0; i < 100; ++i) {
    const update::Instance a = random_instance(rng_low, low);
    for (const NodeId v : a.new_path())
      if (a.on_old(v)) ++overlap_low;
    const update::Instance b = random_instance(rng_high, high);
    for (const NodeId v : b.new_path())
      if (b.on_old(v)) ++overlap_high;
  }
  EXPECT_GT(overlap_high, overlap_low);
}

TEST(RandomInstanceTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  RandomInstanceOptions options;
  for (int i = 0; i < 20; ++i) {
    const update::Instance x = random_instance(a, options);
    const update::Instance y = random_instance(b, options);
    EXPECT_EQ(x.old_path(), y.old_path());
    EXPECT_EQ(x.new_path(), y.new_path());
    EXPECT_EQ(x.waypoint(), y.waypoint());
  }
}

TEST(TopologyForTest, EmbedsBothPaths) {
  const Fig1 fig = fig1();
  const Topology t = topology_for(fig.instance);
  EXPECT_TRUE(graph::is_path_of(t.graph(), fig.instance.old_path()));
  EXPECT_TRUE(graph::is_path_of(t.graph(), fig.instance.new_path()));
  EXPECT_EQ(t.hosts().size(), 2u);
}

}  // namespace
}  // namespace tsu::topo
