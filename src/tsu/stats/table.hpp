// Result tables: the benches print the evaluation as aligned markdown (for
// the console / EXPERIMENTS.md) and can emit CSV for plotting.
#pragma once

#include <string>
#include <vector>

namespace tsu::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Number of columns.
  std::size_t width() const noexcept { return header_.size(); }

  void add_row(std::vector<std::string> row);

  std::string to_markdown() const;
  std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tsu::stats
