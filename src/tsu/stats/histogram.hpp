// Fixed-boundary and log-scaled histograms for latency distributions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tsu::stats {

// Power-of-two bucketed histogram for non-negative values (ns-scale
// latencies): bucket i holds values in [2^i, 2^(i+1)).
class LogHistogram {
 public:
  void add(double x) noexcept;

  std::uint64_t total() const noexcept { return total_; }
  // Renders non-empty buckets as "[lo, hi): count" lines with a bar.
  std::string to_string() const;

 private:
  static constexpr int kBuckets = 64;
  std::vector<std::uint64_t> buckets_ = std::vector<std::uint64_t>(kBuckets, 0);
  std::uint64_t underflow_ = 0;  // x < 1
  std::uint64_t total_ = 0;
};

}  // namespace tsu::stats
