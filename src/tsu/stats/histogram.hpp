// Fixed-boundary and log-scaled histograms for latency distributions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tsu::stats {

// Power-of-two bucketed histogram for non-negative values (ns-scale
// latencies): bucket i holds values in [2^i, 2^(i+1)).
class LogHistogram {
 public:
  void add(double x) noexcept;

  std::uint64_t total() const noexcept { return total_; }
  // Approximate quantile (q in [0, 1]) by rank-walking the buckets and
  // interpolating linearly inside the winning power-of-two bucket. Exact
  // enough for p50/p99 trend tracking at a fixed 64-counter footprint -
  // the streaming-safe alternative to stats::Percentiles, which retains
  // every sample. Returns 0 for an empty histogram.
  double quantile(double q) const noexcept;
  // Renders non-empty buckets as "[lo, hi): count" lines with a bar.
  std::string to_string() const;

 private:
  static constexpr int kBuckets = 64;
  std::vector<std::uint64_t> buckets_ = std::vector<std::uint64_t>(kBuckets, 0);
  std::uint64_t underflow_ = 0;  // x < 1
  std::uint64_t total_ = 0;
};

}  // namespace tsu::stats
