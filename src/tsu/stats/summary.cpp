#include "tsu/stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "tsu/util/assert.hpp"

namespace tsu::stats {

void Summary::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Summary::min() const noexcept { return count_ == 0 ? 0 : min_; }
double Summary::max() const noexcept { return count_ == 0 ? 0 : max_; }

double Summary::variance() const noexcept {
  if (count_ < 2) return 0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

std::string Summary::to_string() const {
  std::ostringstream out;
  out << "n=" << count_ << " mean=" << mean() << " min=" << min()
      << " max=" << max() << " sd=" << stddev();
  return out.str();
}

void Percentiles::add_all(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

double Percentiles::quantile(double q) const {
  TSU_ASSERT(q >= 0.0 && q <= 1.0);
  TSU_ASSERT_MSG(!samples_.empty(), "quantile of empty sample set");
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (samples_.size() == 1) return samples_[0];
  const double rank = q * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] + (samples_[hi] - samples_[lo]) * frac;
}

}  // namespace tsu::stats
