#include "tsu/stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace tsu::stats {

void LogHistogram::add(double x) noexcept {
  ++total_;
  if (x < 1.0) {
    ++underflow_;
    return;
  }
  int bucket = static_cast<int>(std::floor(std::log2(x)));
  bucket = std::clamp(bucket, 0, kBuckets - 1);
  ++buckets_[static_cast<std::size_t>(bucket)];
}

double LogHistogram::quantile(double q) const noexcept {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample (0-based, nearest-rank with interpolation
  // inside the bucket).
  const double rank = q * static_cast<double>(total_ - 1);
  double seen = static_cast<double>(underflow_);
  if (rank < seen) return 0.5;  // midpoint of [0, 1)
  for (int i = 0; i < kBuckets; ++i) {
    const double count =
        static_cast<double>(buckets_[static_cast<std::size_t>(i)]);
    if (count == 0.0) continue;
    if (rank < seen + count) {
      const double lo = std::ldexp(1.0, i);
      const double frac = (rank - seen) / count;
      return lo * (1.0 + frac);  // linear within [2^i, 2^(i+1))
    }
    seen += count;
  }
  return std::ldexp(1.0, kBuckets);  // rank beyond the last bucket
}

std::string LogHistogram::to_string() const {
  std::ostringstream out;
  std::uint64_t peak = underflow_;
  for (const std::uint64_t c : buckets_) peak = std::max(peak, c);
  if (peak == 0) return "(empty histogram)\n";
  const auto bar = [&](std::uint64_t count) {
    const std::size_t width =
        static_cast<std::size_t>(40.0 * static_cast<double>(count) /
                                 static_cast<double>(peak));
    return std::string(width, '#');
  };
  if (underflow_ != 0)
    out << "[0, 1): " << underflow_ << " " << bar(underflow_) << "\n";
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t count = buckets_[static_cast<std::size_t>(i)];
    if (count == 0) continue;
    out << "[2^" << i << ", 2^" << (i + 1) << "): " << count << " "
        << bar(count) << "\n";
  }
  return out.str();
}

}  // namespace tsu::stats
