#include "tsu/stats/table.hpp"

#include <algorithm>
#include <sstream>

#include "tsu/util/assert.hpp"

namespace tsu::stats {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  TSU_ASSERT(!header_.empty());
}

void Table::add_row(std::vector<std::string> row) {
  TSU_ASSERT_MSG(row.size() == header_.size(),
                 "row width does not match header");
  rows_.push_back(std::move(row));
}

std::string Table::to_markdown() const {
  std::vector<std::size_t> col_width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    col_width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      col_width[c] = std::max(col_width[c], row[c].size());

  std::ostringstream out;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << " " << row[c]
          << std::string(col_width[c] - row[c].size(), ' ') << " |";
    }
    out << "\n";
  };
  emit_row(header_);
  out << "|";
  for (std::size_t c = 0; c < header_.size(); ++c)
    out << std::string(col_width[c] + 2, '-') << "|";
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  const auto escape = [](const std::string& field) {
    if (field.find_first_of(",\"\n") == std::string::npos) return field;
    std::string quoted = "\"";
    for (const char c : field) {
      if (c == '"') quoted += "\"\"";
      else quoted.push_back(c);
    }
    quoted += "\"";
    return quoted;
  };
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c != 0) out << ",";
    out << escape(header_[c]);
  }
  out << "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << ",";
      out << escape(row[c]);
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace tsu::stats
