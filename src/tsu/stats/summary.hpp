// Streaming summary statistics (Welford) and percentile estimation over
// retained samples. Used by every bench to aggregate per-seed results.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace tsu::stats {

// Numerically stable mean/variance accumulator.
class Summary {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  double min() const noexcept;
  double max() const noexcept;
  // Sample variance (n-1); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;

  std::string to_string() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// Retains all samples; exact percentiles on demand.
class Percentiles {
 public:
  void add(double x) { samples_.push_back(x); }
  void add_all(const std::vector<double>& xs);

  std::size_t count() const noexcept { return samples_.size(); }
  // q in [0, 1]; linear interpolation between order statistics.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace tsu::stats
