// OpenFlow-style match model, reduced to the fields the demo manipulates.
//
// The prototype's FlowMods match a single policy's traffic; we model that
// as an exact-or-wildcard match on (flow id, source host node, destination
// host node, ingress port). Wildcards are per-field, like the OpenFlow 1.0
// wildcard bitmap.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "tsu/util/ids.hpp"

namespace tsu::flow {

struct Packet {
  FlowId flow = 0;
  NodeId src_host = kInvalidNode;
  NodeId dst_host = kInvalidNode;
  std::uint32_t in_port = 0;
  int ttl = 64;
};

struct Match {
  // nullopt = wildcard.
  std::optional<FlowId> flow;
  std::optional<NodeId> src_host;
  std::optional<NodeId> dst_host;
  std::optional<std::uint32_t> in_port;

  bool matches(const Packet& packet) const noexcept;

  // True if this match covers every packet `other` covers (used for strict
  // vs. non-strict FlowMod deletion semantics).
  bool subsumes(const Match& other) const noexcept;

  // True if some packet is covered by both matches. Two matches are
  // disjoint exactly when some field is concrete in both with different
  // values; everything else (wildcards included) intersects. This is the
  // conservative rule-overlap test behind conflict-aware admission.
  bool overlaps(const Match& other) const noexcept;

  // Exact equality of the match structure (OpenFlow "strict" comparisons).
  bool operator==(const Match&) const = default;

  // Number of concrete (non-wildcard) fields; a crude specificity measure.
  int specificity() const noexcept;

  std::string to_string() const;

  static Match exact_flow(FlowId flow_id) {
    Match m;
    m.flow = flow_id;
    return m;
  }
  static Match wildcard() { return Match{}; }
};

enum class ActionKind : std::uint8_t {
  kForward,  // send out towards a neighbouring switch (port = neighbour id)
  kDeliver,  // punt to the attached host
  kDrop,
};

struct Action {
  ActionKind kind = ActionKind::kDrop;
  NodeId port = kInvalidNode;  // meaningful for kForward

  bool operator==(const Action&) const = default;
  std::string to_string() const;

  static Action forward(NodeId next) { return Action{ActionKind::kForward, next}; }
  static Action deliver() { return Action{ActionKind::kDeliver, kInvalidNode}; }
  static Action drop() { return Action{ActionKind::kDrop, kInvalidNode}; }
};

}  // namespace tsu::flow
