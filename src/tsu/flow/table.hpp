// Flow table with OpenFlow add/modify/delete semantics and highest-priority
// matching (ties broken towards the more specific match, then insertion
// order, mirroring common switch behaviour).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "tsu/flow/match.hpp"

namespace tsu::flow {

struct FlowRule {
  Match match;
  Action action;
  std::uint16_t priority = 0;
  std::uint64_t cookie = 0;

  std::string to_string() const;
};

class FlowTable {
 public:
  // OpenFlow ADD: replaces a rule with identical match and priority,
  // otherwise inserts.
  void add(FlowRule rule);

  // OpenFlow MODIFY (non-strict): rewrites the action of every rule whose
  // match equals `match`; if none matched, behaves like ADD (which is what
  // OVS does for MODIFY on a miss). Returns number of rewritten rules.
  std::size_t modify(const Match& match, std::uint16_t priority,
                     const Action& action, std::uint64_t cookie);

  // OpenFlow DELETE (non-strict): removes every rule subsumed by `match`.
  // Returns the number of removed rules.
  std::size_t remove(const Match& match);

  // OpenFlow DELETE_STRICT: removes the rule with identical match and
  // priority, if present.
  bool remove_strict(const Match& match, std::uint16_t priority);

  // Highest-priority matching rule for `packet`.
  std::optional<FlowRule> lookup(const Packet& packet) const;

  std::size_t size() const noexcept { return rules_.size(); }
  bool empty() const noexcept { return rules_.empty(); }
  const std::vector<FlowRule>& rules() const noexcept { return rules_; }
  void clear() noexcept { rules_.clear(); }

  std::string to_string() const;

 private:
  std::vector<FlowRule> rules_;  // kept sorted: priority desc, specificity
                                 // desc, insertion order
  std::uint64_t next_seq_ = 0;
  std::vector<std::uint64_t> seq_;  // parallel to rules_
};

}  // namespace tsu::flow
