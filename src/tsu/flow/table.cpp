#include "tsu/flow/table.hpp"

#include <algorithm>
#include <sstream>

#include "tsu/util/assert.hpp"

namespace tsu::flow {

std::string FlowRule::to_string() const {
  std::ostringstream out;
  out << "prio=" << priority << " " << match.to_string() << " -> "
      << action.to_string();
  return out.str();
}

namespace {

// Ordering: priority desc, specificity desc, then insertion sequence asc.
bool rule_before(const FlowRule& a, std::uint64_t seq_a, const FlowRule& b,
                 std::uint64_t seq_b) {
  if (a.priority != b.priority) return a.priority > b.priority;
  const int spec_a = a.match.specificity();
  const int spec_b = b.match.specificity();
  if (spec_a != spec_b) return spec_a > spec_b;
  return seq_a < seq_b;
}

}  // namespace

void FlowTable::add(FlowRule rule) {
  // Replace identical (match, priority) if present.
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i].priority == rule.priority && rules_[i].match == rule.match) {
      rules_[i] = std::move(rule);
      return;
    }
  }
  const std::uint64_t seq = next_seq_++;
  // Insert in sorted position.
  std::size_t pos = rules_.size();
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (rule_before(rule, seq, rules_[i], seq_[i])) {
      pos = i;
      break;
    }
  }
  rules_.insert(rules_.begin() + static_cast<std::ptrdiff_t>(pos),
                std::move(rule));
  seq_.insert(seq_.begin() + static_cast<std::ptrdiff_t>(pos), seq);
}

std::size_t FlowTable::modify(const Match& match, std::uint16_t priority,
                              const Action& action, std::uint64_t cookie) {
  std::size_t rewritten = 0;
  for (FlowRule& rule : rules_) {
    if (rule.match == match) {
      rule.action = action;
      rule.cookie = cookie;
      ++rewritten;
    }
  }
  if (rewritten == 0) {
    add(FlowRule{match, action, priority, cookie});
    return 1;
  }
  return rewritten;
}

std::size_t FlowTable::remove(const Match& match) {
  std::size_t removed = 0;
  for (std::size_t i = rules_.size(); i > 0; --i) {
    const std::size_t idx = i - 1;
    if (match.subsumes(rules_[idx].match)) {
      rules_.erase(rules_.begin() + static_cast<std::ptrdiff_t>(idx));
      seq_.erase(seq_.begin() + static_cast<std::ptrdiff_t>(idx));
      ++removed;
    }
  }
  return removed;
}

bool FlowTable::remove_strict(const Match& match, std::uint16_t priority) {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i].priority == priority && rules_[i].match == match) {
      rules_.erase(rules_.begin() + static_cast<std::ptrdiff_t>(i));
      seq_.erase(seq_.begin() + static_cast<std::ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

std::optional<FlowRule> FlowTable::lookup(const Packet& packet) const {
  // rules_ is sorted best-first; first hit wins.
  for (const FlowRule& rule : rules_)
    if (rule.match.matches(packet)) return rule;
  return std::nullopt;
}

std::string FlowTable::to_string() const {
  std::ostringstream out;
  for (const FlowRule& rule : rules_) out << rule.to_string() << "\n";
  return out.str();
}

}  // namespace tsu::flow
