#include "tsu/flow/match.hpp"

#include <sstream>

namespace tsu::flow {

bool Match::matches(const Packet& packet) const noexcept {
  if (flow.has_value() && *flow != packet.flow) return false;
  if (src_host.has_value() && *src_host != packet.src_host) return false;
  if (dst_host.has_value() && *dst_host != packet.dst_host) return false;
  if (in_port.has_value() && *in_port != packet.in_port) return false;
  return true;
}

bool Match::subsumes(const Match& other) const noexcept {
  const auto field_subsumes = [](const auto& mine, const auto& theirs) {
    // Wildcard subsumes anything; a concrete value subsumes only itself.
    return !mine.has_value() || (theirs.has_value() && *mine == *theirs);
  };
  return field_subsumes(flow, other.flow) &&
         field_subsumes(src_host, other.src_host) &&
         field_subsumes(dst_host, other.dst_host) &&
         field_subsumes(in_port, other.in_port);
}

bool Match::overlaps(const Match& other) const noexcept {
  const auto field_overlaps = [](const auto& mine, const auto& theirs) {
    // Only two concrete, different values separate the matches.
    return !mine.has_value() || !theirs.has_value() || *mine == *theirs;
  };
  return field_overlaps(flow, other.flow) &&
         field_overlaps(src_host, other.src_host) &&
         field_overlaps(dst_host, other.dst_host) &&
         field_overlaps(in_port, other.in_port);
}

int Match::specificity() const noexcept {
  int fields = 0;
  if (flow.has_value()) ++fields;
  if (src_host.has_value()) ++fields;
  if (dst_host.has_value()) ++fields;
  if (in_port.has_value()) ++fields;
  return fields;
}

std::string Match::to_string() const {
  std::ostringstream out;
  out << "{";
  bool first = true;
  const auto field = [&](const char* name, const auto& value) {
    if (!value.has_value()) return;
    if (!first) out << ",";
    first = false;
    out << name << "=" << *value;
  };
  field("flow", flow);
  field("src", src_host);
  field("dst", dst_host);
  field("in_port", in_port);
  if (first) out << "*";
  out << "}";
  return out.str();
}

std::string Action::to_string() const {
  switch (kind) {
    case ActionKind::kForward: return "forward(" + std::to_string(port) + ")";
    case ActionKind::kDeliver: return "deliver";
    case ActionKind::kDrop: return "drop";
  }
  return "?";
}

}  // namespace tsu::flow
