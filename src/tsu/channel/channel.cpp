#include "tsu/channel/channel.hpp"

#include "tsu/util/log.hpp"

namespace tsu::channel {

namespace {

bool carries_barrier(const proto::Message& message) {
  if (message.type() == proto::MsgType::kBarrierRequest) return true;
  if (message.type() != proto::MsgType::kBatch) return false;
  for (const proto::Message& inner :
       std::get<proto::Batch>(message.body).messages)
    if (inner.type() == proto::MsgType::kBarrierRequest) return true;
  return false;
}

}  // namespace

bool ControlChannel::faulted_drop(bool barrier) {
  // Fault injection: a dead link has no session to buffer into, and a
  // blackhole eats the frame silently. Both return before any latency or
  // loss sampling, so the fault-free RNG stream is untouched.
  //
  // A blackhole's glitch window closes on a barrier boundary: if the frame
  // budget runs out without a barrier among the eaten frames, keep dropping
  // until one is. Otherwise a lost FlowMod could be followed by a delivered
  // barrier whose reply would falsely fence it - the controller would
  // believe the rule installed with no timeout ever firing, an undetectable
  // safety hole. Eating through the barrier guarantees every blackhole is
  // surfaced as a missing barrier reply and recovered by liveness retry.
  if (!down_ && pending_drops_ == 0 && !drop_until_barrier_) return false;
  if (!down_) {
    if (pending_drops_ > 0) --pending_drops_;
    if (pending_drops_ == 0) drop_until_barrier_ = !barrier;
  }
  ++frames_dropped_;
  return true;
}

void ControlChannel::send(const proto::Message& message) {
  TSU_ASSERT_MSG(receiver_ != nullptr, "channel has no receiver");

  if (faulted_drop(carries_barrier(message))) return;

  // Round-trip through the codec: what arrives is what survives the wire.
  // Encode into a pooled buffer - no allocation once the pool is warm.
  std::vector<std::byte> frame = acquire_frame();
  proto::encode_into(message, frame);
  transmit(std::move(frame),
           message.type() == proto::MsgType::kBatch
               ? std::get<proto::Batch>(message.body).messages.size()
               : 1);
}

void ControlChannel::send_encoded(std::span<const std::byte> bytes,
                                  std::uint32_t xid) {
  TSU_ASSERT_MSG(receiver_ != nullptr, "channel has no receiver");

  // Pre-encoded frames are always single messages (never batches), so the
  // type byte alone decides whether this frame carries a barrier.
  if (faulted_drop(proto::frame_type(bytes) ==
                   proto::MsgType::kBarrierRequest))
    return;

  // Copy the immutable plan bytes into a pooled buffer and patch the live
  // xid in - the only per-send work; no encoder runs. assign() reuses the
  // pooled capacity, so the warm path stays allocation-free.
  std::vector<std::byte> frame = acquire_frame();
  frame.assign(bytes.begin(), bytes.end());
  proto::patch_xid(frame, xid);
  transmit(std::move(frame), 1);
}

void ControlChannel::transmit(std::vector<std::byte>&& frame,
                              std::size_t messages) {
  ++frames_sent_;
  bytes_sent_ += frame.size();
  messages_sent_ += messages;

  sim::Duration latency = config_.latency.sample(rng_);
  while (config_.loss_probability > 0 &&
         rng_.bernoulli(config_.loss_probability)) {
    // TCP recovers the loss; the receiver just sees it late.
    latency += config_.retransmit_timeout;
    ++retransmissions_;
  }

  // In-order (TCP) delivery: never overtake the previous frame.
  sim::SimTime deliver_at = sim_.now() + latency;
  if (deliver_at < last_delivery_) deliver_at = last_delivery_;
  last_delivery_ = deliver_at;

  sim_.schedule_at(
      deliver_at,
      [this, frame = std::move(frame), epoch = epoch_]() mutable {
        if (epoch != epoch_) {
          // The link went down while this frame was in flight: lost with
          // the session (fault injection; epochs never move otherwise).
          ++frames_dropped_;
          release_frame(std::move(frame));
          return;
        }
        Result<proto::Message> decoded = proto::decode(frame);
        TSU_ASSERT_MSG(decoded.ok(), "channel produced an undecodable frame");
        receiver_(decoded.value());
        // The decoded Message owns every byte it keeps (Echo copies its
        // payload), so the wire buffer can be recycled immediately.
        release_frame(std::move(frame));
      },
      delivery_scope_);
}

}  // namespace tsu::channel
