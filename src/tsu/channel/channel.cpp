#include "tsu/channel/channel.hpp"

#include "tsu/util/log.hpp"

namespace tsu::channel {

void ControlChannel::send(const proto::Message& message) {
  TSU_ASSERT_MSG(receiver_ != nullptr, "channel has no receiver");

  // Round-trip through the codec: what arrives is what survives the wire.
  const std::vector<std::byte> frame = proto::encode(message);
  ++frames_sent_;
  bytes_sent_ += frame.size();
  messages_sent_ += message.type() == proto::MsgType::kBatch
                        ? std::get<proto::Batch>(message.body).messages.size()
                        : 1;

  sim::Duration latency = config_.latency.sample(rng_);
  while (config_.loss_probability > 0 &&
         rng_.bernoulli(config_.loss_probability)) {
    // TCP recovers the loss; the receiver just sees it late.
    latency += config_.retransmit_timeout;
    ++retransmissions_;
  }

  // In-order (TCP) delivery: never overtake the previous frame.
  sim::SimTime deliver_at = sim_.now() + latency;
  if (deliver_at < last_delivery_) deliver_at = last_delivery_;
  last_delivery_ = deliver_at;

  sim_.schedule_at(
      deliver_at,
      [this, frame = std::move(frame)]() {
        Result<proto::Message> decoded = proto::decode(frame);
        TSU_ASSERT_MSG(decoded.ok(), "channel produced an undecodable frame");
        receiver_(decoded.value());
      },
      delivery_scope_);
}

}  // namespace tsu::channel
