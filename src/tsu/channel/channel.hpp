// Asynchronous control channel between the controller and one switch.
//
// OpenFlow runs over TCP: per-connection delivery is reliable and in-order,
// but *different* switches' connections race each other freely - which is
// exactly the asynchrony the paper's schedulers defend against. The model:
// every frame samples a latency from the configured distribution; delivery
// order within one channel direction is forced FIFO (a later frame never
// overtakes an earlier one); loss is modelled as TCP would surface it, as an
// extra retransmission delay rather than an actual drop.
//
// Frames are round-tripped through the binary codec on every send, so the
// wire format is exercised by every simulation, not just by codec tests.
#pragma once

#include <cstdint>
#include <functional>

#include "tsu/proto/codec.hpp"
#include "tsu/proto/messages.hpp"
#include "tsu/sim/distributions.hpp"
#include "tsu/sim/simulator.hpp"
#include "tsu/util/rng.hpp"

namespace tsu::channel {

struct ChannelConfig {
  sim::LatencyModel latency = sim::LatencyModel::constant(sim::milliseconds(1));
  // Probability that a frame transmission is lost and must be retransmitted
  // after `retransmit_timeout` (repeatable; geometric number of attempts).
  double loss_probability = 0.0;
  sim::Duration retransmit_timeout = sim::milliseconds(50);
};

class ControlChannel {
 public:
  using DeliverFn = std::function<void(const proto::Message&)>;

  ControlChannel(sim::Simulator& simulator, ChannelConfig config, Rng rng)
      : sim_(simulator), config_(config), rng_(rng) {}

  void set_receiver(DeliverFn receiver) { receiver_ = std::move(receiver); }

  // Scope of the delivery events this channel schedules (see
  // sim/event_queue.hpp). The executor marks the controller->switch
  // direction kLocal - switch, channel and owning controller shard live on
  // one shard - while switch->controller deliveries stay kShared: reply
  // processing can complete updates and cross shards through the
  // coordinator, so it must run at a sync point.
  void set_delivery_scope(sim::EventScope scope) noexcept {
    delivery_scope_ = scope;
  }

  // Enqueues `message` for delivery to the receiver side.
  void send(const proto::Message& message);

  std::size_t frames_sent() const noexcept { return frames_sent_; }
  std::size_t bytes_sent() const noexcept { return bytes_sent_; }
  std::size_t retransmissions() const noexcept { return retransmissions_; }
  // Logical messages carried; a batch frame counts its contained messages,
  // so messages_sent() - frames_sent() is the coalescing saving.
  std::size_t messages_sent() const noexcept { return messages_sent_; }

 private:
  sim::Simulator& sim_;
  ChannelConfig config_;
  Rng rng_;
  DeliverFn receiver_;
  sim::EventScope delivery_scope_ = sim::EventScope::kShared;
  sim::SimTime last_delivery_ = 0;

  std::size_t frames_sent_ = 0;
  std::size_t bytes_sent_ = 0;
  std::size_t retransmissions_ = 0;
  std::size_t messages_sent_ = 0;
};

// The duplex controller<->switch connection.
struct DuplexChannel {
  ControlChannel to_switch;
  ControlChannel to_controller;

  DuplexChannel(sim::Simulator& simulator, const ChannelConfig& config,
                Rng& parent_rng)
      : to_switch(simulator, config, parent_rng.fork()),
        to_controller(simulator, config, parent_rng.fork()) {}
};

}  // namespace tsu::channel
