// Asynchronous control channel between the controller and one switch.
//
// OpenFlow runs over TCP: per-connection delivery is reliable and in-order,
// but *different* switches' connections race each other freely - which is
// exactly the asynchrony the paper's schedulers defend against. The model:
// every frame samples a latency from the configured distribution; delivery
// order within one channel direction is forced FIFO (a later frame never
// overtakes an earlier one); loss is modelled as TCP would surface it, as an
// extra retransmission delay rather than an actual drop.
//
// Frames are round-tripped through the binary codec on every send, so the
// wire format is exercised by every simulation, not just by codec tests.
// Frame buffers are pooled: a send encodes into a recycled vector (capacity
// retained) and the delivery event returns it to the pool, so steady-state
// traffic allocates nothing once buffers hit their high-water size.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "tsu/proto/codec.hpp"
#include "tsu/proto/messages.hpp"
#include "tsu/sim/distributions.hpp"
#include "tsu/sim/simulator.hpp"
#include "tsu/util/rng.hpp"

namespace tsu::channel {

struct ChannelConfig {
  sim::LatencyModel latency = sim::LatencyModel::constant(sim::milliseconds(1));
  // Probability that a frame transmission is lost and must be retransmitted
  // after `retransmit_timeout` (repeatable; geometric number of attempts).
  double loss_probability = 0.0;
  sim::Duration retransmit_timeout = sim::milliseconds(50);
};

class ControlChannel {
 public:
  using DeliverFn = std::function<void(const proto::Message&)>;

  ControlChannel(sim::Simulator& simulator, ChannelConfig config, Rng rng)
      : sim_(simulator), config_(config), rng_(rng) {}

  void set_receiver(DeliverFn receiver) { receiver_ = std::move(receiver); }

  // Scope of the delivery events this channel schedules (see
  // sim/event_queue.hpp). The executor marks the controller->switch
  // direction kLocal - switch, channel and owning controller shard live on
  // one shard - while switch->controller deliveries stay kShared: reply
  // processing can complete updates and cross shards through the
  // coordinator, so it must run at a sync point.
  void set_delivery_scope(sim::EventScope scope) noexcept {
    delivery_scope_ = scope;
  }

  // Enqueues `message` for delivery to the receiver side.
  void send(const proto::Message& message);

  // Zero-encode variant for the compiled-plan submission path: `bytes` is
  // a complete pre-encoded frame (single message, never a batch) whose xid
  // field is patched to `xid` after copying into a pooled buffer - the
  // caller's bytes stay immutable. Delivery is byte-identical to send() of
  // the equivalent message: same counters, same single latency sample,
  // same FIFO clamp, same fault gates.
  void send_encoded(std::span<const std::byte> bytes, std::uint32_t xid);

  // --- fault injection (sim/faults.hpp; inert unless driven) -----------
  // Link outage: frames sent while down are dropped at the sender (the TCP
  // session is gone - nothing buffers), and frames already in flight at
  // the down transition are lost too (each delivery is fenced on the link
  // epoch captured at send time). Taking the link back up starts a fresh
  // epoch; it never resurrects lost frames.
  void set_down(bool down) noexcept {
    if (down_ != down) ++epoch_;
    down_ = down;
  }
  bool down() const noexcept { return down_; }
  // Blackhole: silently drop the next `frames` frames (no session loss).
  // The glitch window always closes on a barrier boundary - if none of the
  // eaten frames carried a barrier request, dropping continues until one
  // does. A later barrier delivered after a silently lost FlowMod would
  // otherwise fence the loss and hide it from liveness detection forever.
  void drop_next(std::size_t frames) noexcept { pending_drops_ += frames; }
  // Frames lost to outages and blackholes.
  std::size_t frames_dropped() const noexcept { return frames_dropped_; }

  std::size_t frames_sent() const noexcept { return frames_sent_; }
  std::size_t bytes_sent() const noexcept { return bytes_sent_; }
  std::size_t retransmissions() const noexcept { return retransmissions_; }
  // Logical messages carried; a batch frame counts its contained messages,
  // so messages_sent() - frames_sent() is the coalescing saving.
  std::size_t messages_sent() const noexcept { return messages_sent_; }

 private:
  // Shared fault gate: returns true when the frame was consumed by an
  // outage or blackhole window (counted in frames_dropped_). `barrier` is
  // whether the frame carries a barrier request - blackhole windows only
  // close on barrier boundaries.
  bool faulted_drop(bool barrier);
  // Shared back half of send()/send_encoded(): counts the frame, samples
  // one latency (plus loss retransmits) and schedules the FIFO-clamped
  // delivery event that decodes and hands the message to the receiver.
  void transmit(std::vector<std::byte>&& frame, std::size_t messages);

  // Frame-buffer pool. acquire hands out a cleared vector that keeps its
  // high-water capacity; release returns it after delivery (or epoch drop).
  std::vector<std::byte> acquire_frame() {
    if (frame_pool_.empty()) return {};
    std::vector<std::byte> frame = std::move(frame_pool_.back());
    frame_pool_.pop_back();
    return frame;
  }
  void release_frame(std::vector<std::byte>&& frame) {
    frame.clear();
    frame_pool_.push_back(std::move(frame));
  }

  sim::Simulator& sim_;
  ChannelConfig config_;
  Rng rng_;
  DeliverFn receiver_;
  sim::EventScope delivery_scope_ = sim::EventScope::kShared;
  sim::SimTime last_delivery_ = 0;

  // Fault state: down flag, link-session epoch (bumped on every up/down
  // transition; deliveries from an older epoch are dropped), and the
  // blackhole countdown. All untouched on the fault-free path.
  bool down_ = false;
  std::uint64_t epoch_ = 0;
  std::size_t pending_drops_ = 0;
  bool drop_until_barrier_ = false;
  std::size_t frames_dropped_ = 0;

  std::size_t frames_sent_ = 0;
  std::size_t bytes_sent_ = 0;
  std::size_t retransmissions_ = 0;
  std::size_t messages_sent_ = 0;

  std::vector<std::vector<std::byte>> frame_pool_;
};

// The duplex controller<->switch connection.
struct DuplexChannel {
  ControlChannel to_switch;
  ControlChannel to_controller;

  DuplexChannel(sim::Simulator& simulator, const ChannelConfig& config,
                Rng& parent_rng)
      : to_switch(simulator, config, parent_rng.fork()),
        to_controller(simulator, config, parent_rng.fork()) {}
};

}  // namespace tsu::channel
