// Fixed-capacity single-producer/single-consumer ring buffer - the
// lock-free edge of the cross-shard mailboxes (sharded.hpp), built in the
// NDN-DPDK idiom: one ring per producer-consumer pair, burst-drained at
// sync points, mempool-style storage that never allocates after
// construction.
//
// Contract: at most ONE thread pushes and at most ONE thread pops at any
// moment (the threads may change between epochs - the pool join provides
// the necessary happens-before edge). try_push never blocks: a full ring
// returns false and the caller spills to its (mutex-guarded, cold) overflow
// path, so the steady state stays lock-free while bursts stay correct.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>

#include "tsu/util/assert.hpp"

namespace tsu::sim {

template <typename T>
class SpscRing {
 public:
  // `capacity` must be a power of two (mask-based indexing).
  explicit SpscRing(std::size_t capacity)
      : mask_(capacity - 1),
        storage_(static_cast<std::byte*>(::operator new[](
            capacity * sizeof(T), std::align_val_t{alignof(T)}))) {
    TSU_ASSERT_MSG(capacity >= 2 && (capacity & (capacity - 1)) == 0,
                   "SpscRing capacity must be a power of two");
  }
  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;
  ~SpscRing() {
    T out;
    while (try_pop(out)) {}
    ::operator delete[](storage_, std::align_val_t{alignof(T)});
  }

  std::size_t capacity() const noexcept { return mask_ + 1; }

  // Producer side. Returns false (without consuming `value`) when full.
  bool try_push(T&& value) noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail - head > mask_) return false;
    ::new (slot(tail)) T(std::move(value));
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. Returns false when empty.
  bool try_pop(T& out) noexcept {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false;
    T* entry = std::launder(reinterpret_cast<T*>(slot(head)));
    out = std::move(*entry);
    entry->~T();
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Approximate (exact when the other side is quiescent).
  std::size_t size() const noexcept {
    return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                    head_.load(std::memory_order_acquire));
  }
  bool empty() const noexcept { return size() == 0; }

 private:
  void* slot(std::uint64_t index) noexcept {
    return storage_ + (index & mask_) * sizeof(T);
  }

  const std::uint64_t mask_;
  std::byte* const storage_;
  // Consumer-owned and producer-owned cursors on separate cache lines so
  // the two sides never false-share.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
};

}  // namespace tsu::sim
