#include "tsu/sim/faults.hpp"

#include <algorithm>
#include <cmath>

#include "tsu/util/strings.hpp"

namespace tsu::sim {

namespace {

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const double rank = p * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

Result<FaultKind> kind_from_string(const std::string& name) {
  if (name == "crash") return FaultKind::kSwitchCrash;
  if (name == "link_down") return FaultKind::kLinkDown;
  if (name == "blackhole") return FaultKind::kBlackhole;
  return make_error(Errc::kParseError,
                    "unknown fault kind '" + name +
                        "' (crash | link_down | blackhole)");
}

}  // namespace

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kSwitchCrash: return "crash";
    case FaultKind::kLinkDown: return "link_down";
    case FaultKind::kBlackhole: return "blackhole";
  }
  return "?";
}

std::string FaultEvent::to_string() const {
  std::string out = sim::to_string(kind);
  out += " node=" + std::to_string(node);
  out += " at=" + format_double(sim::to_ms(at), 3) + "ms";
  switch (kind) {
    case FaultKind::kSwitchCrash:
      out += " down=" + format_double(sim::to_ms(down_for), 3) + "ms";
      out += lose_state ? " lose_state" : " retained_tcam";
      break;
    case FaultKind::kLinkDown:
      out += " down=" + format_double(sim::to_ms(down_for), 3) + "ms";
      break;
    case FaultKind::kBlackhole:
      out += " frames=" + std::to_string(frames);
      break;
  }
  return out;
}

void FaultSchedule::add(FaultEvent event) {
  const auto pos = std::upper_bound(
      events_.begin(), events_.end(), event,
      [](const FaultEvent& a, const FaultEvent& b) {
        if (a.at != b.at) return a.at < b.at;
        if (a.node != b.node) return a.node < b.node;
        return static_cast<int>(a.kind) < static_cast<int>(b.kind);
      });
  events_.insert(pos, std::move(event));
}

json::Value FaultSchedule::to_json() const {
  json::Array events;
  events.reserve(events_.size());
  for (const FaultEvent& event : events_) {
    json::Object obj;
    obj.set("kind", json::Value(sim::to_string(event.kind)));
    obj.set("at_ms", json::Value(sim::to_ms(event.at)));
    obj.set("node", json::Value(static_cast<std::int64_t>(event.node)));
    switch (event.kind) {
      case FaultKind::kSwitchCrash:
        obj.set("down_ms", json::Value(sim::to_ms(event.down_for)));
        obj.set("lose_state", json::Value(event.lose_state));
        break;
      case FaultKind::kLinkDown:
        obj.set("down_ms", json::Value(sim::to_ms(event.down_for)));
        break;
      case FaultKind::kBlackhole:
        obj.set("frames",
                json::Value(static_cast<std::int64_t>(event.frames)));
        break;
    }
    events.push_back(json::Value(std::move(obj)));
  }
  json::Object root;
  root.set("events", json::Value(std::move(events)));
  return json::Value(std::move(root));
}

Result<FaultSchedule> FaultSchedule::from_json(std::string_view text) {
  Result<json::Value> doc = json::parse(text);
  if (!doc.ok()) return doc.error();
  return from_json(doc.value());
}

Result<FaultSchedule> FaultSchedule::from_json(const json::Value& value) {
  const json::Array* events = nullptr;
  if (value.is_array()) {
    events = &value.as_array();
  } else if (value.is_object()) {
    const json::Value* field = value.as_object().find("events");
    if (field == nullptr || !field->is_array())
      return make_error(Errc::kParseError,
                        "fault schedule object needs an 'events' array");
    events = &field->as_array();
  } else {
    return make_error(Errc::kParseError,
                      "fault schedule must be an array or {\"events\": []}");
  }

  FaultSchedule schedule;
  for (const json::Value& entry : *events) {
    if (!entry.is_object())
      return make_error(Errc::kParseError, "fault event must be an object");
    const json::Object& obj = entry.as_object();
    FaultEvent event;

    const json::Value* kind = obj.find("kind");
    if (kind == nullptr || !kind->is_string())
      return make_error(Errc::kParseError, "fault event needs string 'kind'");
    Result<FaultKind> parsed = kind_from_string(kind->as_string());
    if (!parsed.ok()) return parsed.error();
    event.kind = parsed.value();

    const json::Value* at = obj.find("at_ms");
    if (at == nullptr || !at->is_number() || at->as_double() < 0)
      return make_error(Errc::kParseError,
                        "fault event needs numeric 'at_ms' >= 0");
    event.at = sim::from_ms(at->as_double());

    const json::Value* node = obj.find("node");
    if (node == nullptr || !node->is_number() || node->as_int() < 0)
      return make_error(Errc::kParseError,
                        "fault event needs integer 'node' >= 0");
    event.node = static_cast<NodeId>(node->as_int());

    if (event.kind == FaultKind::kBlackhole) {
      const json::Value* frames = obj.find("frames");
      if (frames != nullptr) {
        if (!frames->is_number() || frames->as_int() < 1)
          return make_error(Errc::kOutOfRange, "'frames' must be >= 1");
        event.frames = static_cast<std::size_t>(frames->as_int());
      }
    } else {
      const json::Value* down = obj.find("down_ms");
      if (down == nullptr || !down->is_number() || down->as_double() <= 0)
        return make_error(Errc::kParseError,
                          "crash/link_down needs numeric 'down_ms' > 0");
      event.down_for = sim::from_ms(down->as_double());
      if (event.kind == FaultKind::kSwitchCrash) {
        const json::Value* lose = obj.find("lose_state");
        if (lose != nullptr) {
          if (!lose->is_bool())
            return make_error(Errc::kParseError,
                              "'lose_state' must be a bool");
          event.lose_state = lose->as_bool();
        }
      }
    }
    schedule.add(std::move(event));
  }
  return schedule;
}

FaultSchedule FaultSchedule::random(std::uint64_t seed,
                                    const ChaosOptions& options) {
  TSU_ASSERT_MSG(options.node_count > 0, "chaos needs a node population");
  Rng rng(seed ^ 0x0fa17u);
  FaultSchedule schedule;

  const auto pick_at = [&]() {
    const double span = std::max(options.horizon_ms, 0.001);
    const double at_ms =
        options.start_ms + span * static_cast<double>(rng.uniform_u64(
                                      0, 1'000'000)) / 1'000'000.0;
    return sim::from_ms(at_ms);
  };
  const auto pick_down = [&]() {
    const double lo = std::max(options.min_down_ms, 0.001);
    const double hi = std::max(options.max_down_ms, lo);
    const double down_ms =
        lo + (hi - lo) * static_cast<double>(rng.uniform_u64(0, 1'000'000)) /
                 1'000'000.0;
    return sim::from_ms(down_ms);
  };

  for (std::size_t i = 0; i < options.crashes; ++i) {
    FaultEvent event;
    event.kind = FaultKind::kSwitchCrash;
    event.at = pick_at();
    event.node = static_cast<NodeId>(rng.index(options.node_count));
    event.down_for = pick_down();
    event.lose_state = !rng.bernoulli(options.retained_tcam_fraction);
    schedule.add(std::move(event));
  }
  for (std::size_t i = 0; i < options.link_downs; ++i) {
    FaultEvent event;
    event.kind = FaultKind::kLinkDown;
    event.at = pick_at();
    event.node = static_cast<NodeId>(rng.index(options.node_count));
    event.down_for = pick_down();
    schedule.add(std::move(event));
  }
  for (std::size_t i = 0; i < options.blackholes; ++i) {
    FaultEvent event;
    event.kind = FaultKind::kBlackhole;
    event.at = pick_at();
    event.node = static_cast<NodeId>(rng.index(options.node_count));
    event.frames = 1 + rng.index(std::max<std::size_t>(
                           options.max_blackhole_frames, 1));
    schedule.add(std::move(event));
  }
  return schedule;
}

double FaultStats::recovery_p50_ms() const { return percentile(recovery_ms, 0.5); }
double FaultStats::recovery_p99_ms() const { return percentile(recovery_ms, 0.99); }

}  // namespace tsu::sim
