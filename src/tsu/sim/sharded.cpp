#include "tsu/sim/sharded.hpp"

#include <algorithm>
#include <utility>

namespace tsu::sim {

void ShardedSim::post(std::size_t target, std::size_t poster, SimTime at,
                      EventFn fn, EventScope scope) {
  TSU_ASSERT_MSG(target < shards_.size() && poster < shards_.size(),
                 "mailbox post outside the shard group");
  if (!buffering_) {
    // Sequential merger (or a sync point): the hand-off schedules straight
    // through. The remote band makes the resulting order a function of the
    // timestamps alone, so the buffered path below lands identically.
    shards_[target]->push_remote(at, std::move(fn), scope);
    return;
  }
  Post post;
  post.at = at;
  post.posted_at = shards_[poster]->now();
  post.poster = poster;
  post.seq = post_seq_[poster]++;  // poster-owned slot: no lock needed
  post.scope = scope;
  post.fn = std::move(fn);
  PairBox& box = pair_box(target, poster);
  // Mid-epoch only the worker stepping `poster` reaches this ring, and the
  // merging thread drains it after the pool join: a true SPSC pairing.
  if (box.ring.try_push(std::move(post))) return;
  // Ring full: spill to the locked overflow path. Correctness is
  // unaffected (the drain merges both sources before sorting); only this
  // burst pays for a lock.
  overflow_posts_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(box.overflow_mutex);
    box.overflow.push_back(std::move(post));
  }
  box.has_overflow.store(true, std::memory_order_release);
}

void ShardedSim::drain_mailbox(std::size_t target) {
  // Sync point: workers are quiescent (pool joined), so every ring pop and
  // overflow read here is safely ordered after the epoch's pushes.
  drain_scratch_.clear();
  for (std::size_t poster = 0; poster < shards_.size(); ++poster) {
    PairBox& box = pair_box(target, poster);
    Post post;
    while (box.ring.try_pop(post)) drain_scratch_.push_back(std::move(post));
    if (box.has_overflow.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(box.overflow_mutex);
      for (Post& spilled : box.overflow)
        drain_scratch_.push_back(std::move(spilled));
      box.overflow.clear();
      box.has_overflow.store(false, std::memory_order_relaxed);
    }
  }
  if (drain_scratch_.empty()) return;
  // The sequential merger fires posting events in (post time, shard, seq)
  // order and schedules each hand-off on the spot; sorting a buffered
  // batch the same way reproduces its insertion order exactly.
  std::sort(drain_scratch_.begin(), drain_scratch_.end(),
            [](const Post& a, const Post& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.posted_at != b.posted_at) return a.posted_at < b.posted_at;
              if (a.poster != b.poster) return a.poster < b.poster;
              return a.seq < b.seq;
            });
  for (Post& post : drain_scratch_)
    shards_[target]->push_remote(post.at, std::move(post.fn), post.scope);
  drain_scratch_.clear();
}

bool ShardedSim::step_earliest(SimTime until) {
  // Earliest next event across shards; ties go to the lowest shard index
  // (strict <), which is what makes merged runs deterministic.
  std::size_t best = shards_.size();
  SimTime best_time = std::numeric_limits<SimTime>::max();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const SimTime t = shards_[i]->next_event_time();
    if (t < best_time) {
      best_time = t;
      best = i;
    }
  }
  if (best == shards_.size() || best_time > until) return false;
  shards_[best]->step();
  ++events_[best];
  return true;
}

std::size_t ShardedSim::run(SimTime until) {
  std::size_t processed = 0;
  while (step_earliest(until)) ++processed;
  if (now_ < until && until != std::numeric_limits<SimTime>::max())
    now_ = until;
  return processed;
}

std::size_t ShardedSim::run_parallel(ThreadPool& pool, Duration lookahead,
                                     SimTime until) {
  const SimTime kMax = std::numeric_limits<SimTime>::max();
  std::size_t processed = 0;
  epoch_counts_.assign(shards_.size(), 0);
  std::vector<std::size_t>& counts = epoch_counts_;
  // The pool task is built ONCE: a single-reference capture keeps it inside
  // std::function's small-object buffer, and mutating `ctx` per epoch
  // avoids re-wrapping the lambda (one heap allocation per epoch
  // otherwise - measurable on fine-grained workloads).
  struct EpochCtx {
    ShardedSim* self;
    std::size_t* counts;
    SimTime horizon;
  } ctx{this, counts.data(), 0};
  const std::function<void(std::size_t)> epoch_task = [&ctx](std::size_t i) {
    ctx.counts[i] = ctx.self->shards_[i]->run_epoch(ctx.horizon);
  };
  while (true) {
    SimTime earliest = kMax;
    SimTime shared_min = kMax;
    std::size_t eligible = 0;  // shards with work strictly below the horizon
    for (const auto& shard : shards_) {
      earliest = std::min(earliest, shard->next_event_time());
      shared_min = std::min(shared_min, shard->next_shared_time());
    }
    if (earliest == kMax || earliest > until) break;

    // The safe horizon: nothing may run concurrently at or beyond the
    // earliest possible cross-shard interaction (see the file comment).
    SimTime horizon = shared_min;
    const SimTime creation_bound =
        lookahead > kMax - earliest ? kMax : earliest + lookahead;
    horizon = std::min(horizon, creation_bound);
    if (until != kMax && horizon > until)
      horizon = until == kMax - 1 ? kMax : until + 1;  // events AT until fire

    if (horizon <= earliest) {
      // Collapsed horizon: the earliest event is (or ties with) a kShared
      // one. One sequential merge step is always safe; kLocal posts made
      // by it schedule straight through (buffering_ is false here).
      const bool stepped = step_earliest(until);
      TSU_ASSERT(stepped);
      ++processed;
      ++horizon_stalls_;
      continue;
    }

    for (const auto& shard : shards_)
      if (shard->next_event_time() < horizon) ++eligible;

    if (eligible <= 1) {
      // One busy shard: run its epoch inline, skip the pool round-trip.
      for (std::size_t i = 0; i < shards_.size(); ++i)
        if (shards_[i]->next_event_time() < horizon) {
          buffering_ = true;
          const std::size_t n = shards_[i]->run_epoch(horizon);
          buffering_ = false;
          events_[i] += n;
          processed += n;
          now_ = std::max(now_, shards_[i]->epoch_now());
        }
    } else {
      buffering_ = true;
      ctx.horizon = horizon;
      pool.parallel(shards_.size(), epoch_task);
      buffering_ = false;
      for (std::size_t i = 0; i < shards_.size(); ++i) {
        events_[i] += counts[i];
        processed += counts[i];
        if (counts[i] > 0) now_ = std::max(now_, shards_[i]->epoch_now());
      }
    }
    ++parallel_epochs_;
    for (std::size_t i = 0; i < shards_.size(); ++i) drain_mailbox(i);
  }
  if (now_ < until && until != kMax) now_ = until;
  return processed;
}

}  // namespace tsu::sim
