#include "tsu/sim/sharded.hpp"

#include <algorithm>
#include <utility>

namespace tsu::sim {

namespace {

// The remote-band minor key: (poster, per-poster post sequence) packed so
// lexicographic uint64 comparison equals the pair comparison. 16 bits of
// poster is far beyond any shard count; 48 bits of sequence outlast any
// run.
inline std::uint64_t remote_key(std::size_t poster,
                                std::uint64_t seq) noexcept {
  TSU_ASSERT_MSG(poster < (1ull << 16) && seq < (1ull << 48),
                 "remote key fields exceed their packed widths");
  return (static_cast<std::uint64_t>(poster) << 48) | seq;
}

}  // namespace

void ShardedSim::post(std::size_t target, std::size_t poster, SimTime at,
                      EventFn fn, EventScope scope) {
  TSU_ASSERT_MSG(target < shards_.size() && poster < shards_.size(),
                 "mailbox post outside the shard group");
  if (!buffering_ || target == poster) {
    // Sequential merger / sync point - or a mid-wave SELF-post, where the
    // poster's own worker is the only thread touching this queue: the
    // hand-off schedules straight through. The remote-band key makes the
    // resulting order a function of the post itself, so the buffered path
    // below lands identically.
    const SimTime posted_at = shards_[poster]->now();
    shards_[target]->push_remote(at, std::move(fn), scope, posted_at,
                                 remote_key(poster, post_seq_[poster]++));
    return;
  }
  Post post;
  post.at = at;
  post.posted_at = shards_[poster]->now();
  post.poster = poster;
  post.seq = post_seq_[poster]++;  // poster-owned slot: no lock needed
  post.scope = scope;
  post.fn = std::move(fn);
  PairBox& box = pair_box(target, poster);
  // Mid-epoch only the worker stepping `poster` reaches this ring, and the
  // merging thread drains it after the pool join: a true SPSC pairing.
  if (box.ring.try_push(std::move(post))) return;
  // Ring full: spill to the locked overflow path. Correctness is
  // unaffected (the drain merges both sources before sorting); only this
  // burst pays for a lock.
  overflow_posts_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(box.overflow_mutex);
    box.overflow.push_back(std::move(post));
  }
  box.has_overflow.store(true, std::memory_order_release);
}

void ShardedSim::drain_mailbox(std::size_t target) {
  // Sync point: workers are quiescent (pool joined), so every ring pop and
  // overflow read here is safely ordered after the epoch's pushes.
  drain_scratch_.clear();
  for (std::size_t poster = 0; poster < shards_.size(); ++poster) {
    PairBox& box = pair_box(target, poster);
    Post post;
    while (box.ring.try_pop(post)) drain_scratch_.push_back(std::move(post));
    if (box.has_overflow.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(box.overflow_mutex);
      for (Post& spilled : box.overflow)
        drain_scratch_.push_back(std::move(spilled));
      box.overflow.clear();
      box.has_overflow.store(false, std::memory_order_relaxed);
    }
  }
  if (drain_scratch_.empty()) return;
  // The (at, post time, poster, seq) key carried on every remote entry is
  // what fixes the order - identical whatever wave drained the post. The
  // sort only keeps the queue pushes in that order too (cheap, and makes
  // drained batches humanly inspectable); correctness does not rest on it.
  std::sort(drain_scratch_.begin(), drain_scratch_.end(),
            [](const Post& a, const Post& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.posted_at != b.posted_at) return a.posted_at < b.posted_at;
              if (a.poster != b.poster) return a.poster < b.poster;
              return a.seq < b.seq;
            });
  for (Post& post : drain_scratch_)
    shards_[target]->push_remote(post.at, std::move(post.fn), post.scope,
                                 post.posted_at,
                                 remote_key(post.poster, post.seq));
  drain_scratch_.clear();
}

bool ShardedSim::step_earliest(SimTime until) {
  // Earliest next event across shards; ties go to the lowest shard index
  // (strict <), which is what makes merged runs deterministic.
  std::size_t best = shards_.size();
  SimTime best_time = std::numeric_limits<SimTime>::max();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const SimTime t = shards_[i]->next_event_time();
    if (t < best_time) {
      best_time = t;
      best = i;
    }
  }
  if (best == shards_.size() || best_time > until) return false;
  shards_[best]->step();
  ++events_[best];
  return true;
}

std::size_t ShardedSim::run(SimTime until) {
  std::size_t processed = 0;
  while (step_earliest(until)) ++processed;
  if (now_ < until && until != std::numeric_limits<SimTime>::max())
    now_ = until;
  return processed;
}

std::size_t ShardedSim::run_parallel(ThreadPool& pool, Duration lookahead,
                                     SimTime until) {
  const SimTime kMax = std::numeric_limits<SimTime>::max();
  const std::size_t n_shards = shards_.size();
  std::size_t processed = 0;
  epoch_counts_.assign(n_shards, 0);
  wave_bounds_.assign(n_shards, 0);
  std::vector<std::size_t>& counts = epoch_counts_;
  // The pool task is built ONCE: a single-reference capture keeps it inside
  // std::function's small-object buffer, and mutating `ctx` per wave
  // avoids re-wrapping the lambda (one heap allocation per wave
  // otherwise - measurable on fine-grained workloads).
  struct EpochCtx {
    ShardedSim* self;
    std::size_t* counts;
    const SimTime* bounds;
  } ctx{this, counts.data(), wave_bounds_.data()};
  const std::function<void(std::size_t)> epoch_task = [&ctx](std::size_t i) {
    ctx.counts[i] = ctx.self->shards_[i]->run_epoch(ctx.bounds[i]);
  };
  while (true) {
    // One pass: the global kShared minimum plus the two smallest
    // next-event times (with the argmin), so each shard's sibling minimum
    // min_{j != i} N_j is min1 (or min2 when i IS the argmin).
    SimTime shared_min = kMax;
    SimTime min1 = kMax, min2 = kMax;
    std::size_t argmin = n_shards;
    for (std::size_t i = 0; i < n_shards; ++i) {
      const SimTime t = shards_[i]->next_event_time();
      if (t < min1) {
        min2 = min1;
        min1 = t;
        argmin = i;
      } else {
        min2 = std::min(min2, t);
      }
      shared_min = std::min(shared_min, shards_[i]->next_shared_time());
    }
    if (min1 == kMax || min1 > until) break;

    // Per-shard safe bounds (see the file comment): shard i may run below
    // S_i = min(shared_min, min_{j != i} N_j + lookahead,
    //           N_i + 2 * lookahead). The sibling term covers everything a
    // SIBLING's pending work can send here; the self term covers a bounce
    // THROUGH a sibling (i's own event posts to j, whose handler posts
    // back) - that cycle crosses two mailbox hops of >= lookahead each, so
    // nothing i executes below N_i + 2*lookahead can be undercut by its
    // own echo even when every sibling is idle (N_j = max). Same-shard
    // creations are covered by run_epoch's own-kShared guard plus direct
    // self-post delivery.
    std::size_t eligible = 0;
    std::size_t busy = n_shards;  // the eligible shard, when exactly one
    for (std::size_t i = 0; i < n_shards; ++i) {
      const SimTime others = i == argmin ? min2 : min1;
      SimTime bound = shared_min;
      if (others != kMax) {
        const SimTime creation =
            lookahead > kMax - others ? kMax : others + lookahead;
        bound = std::min(bound, creation);
      }
      const SimTime self = shards_[i]->next_event_time();
      if (self != kMax) {
        const Duration round_trip =
            lookahead > kMax - lookahead ? kMax : 2 * lookahead;
        const SimTime bounce =
            round_trip > kMax - self ? kMax : self + round_trip;
        bound = std::min(bound, bounce);
      }
      if (until != kMax && bound > until)
        bound = until == kMax - 1 ? kMax : until + 1;  // events AT until fire
      wave_bounds_[i] = bound;
      if (shards_[i]->next_event_time() < bound) {
        ++eligible;
        busy = i;
      }
    }

    if (eligible == 0) {
      // Collapsed wave: the earliest event everywhere is (or ties with) a
      // kShared one. One sequential merge step is always safe; kLocal
      // posts made by it schedule straight through (buffering_ is false
      // here).
      const bool stepped = step_earliest(until);
      TSU_ASSERT(stepped);
      ++processed;
      ++horizon_stalls_;
      continue;
    }

    if (eligible == 1) {
      // One busy shard: run its epoch inline, skip the pool round-trip.
      buffering_ = true;
      const std::size_t count = shards_[busy]->run_epoch(wave_bounds_[busy]);
      buffering_ = false;
      events_[busy] += count;
      processed += count;
      now_ = std::max(now_, shards_[busy]->epoch_now());
    } else {
      const std::size_t* order = nullptr;
      if (steal_) {
        // Longest-epoch-first launch order: pending counts at the wave
        // start, descending, ties to the lowest index - deterministic
        // whatever the pool size. Count a steal for every launch the
        // reorder promoted past a lower-indexed shard that also has work
        // this wave.
        steal_order_.resize(n_shards);
        for (std::size_t i = 0; i < n_shards; ++i) steal_order_[i] = i;
        std::sort(steal_order_.begin(), steal_order_.end(),
                  [this](std::size_t a, std::size_t b) {
                    const std::size_t pa = shards_[a]->pending();
                    const std::size_t pb = shards_[b]->pending();
                    if (pa != pb) return pa > pb;
                    return a < b;
                  });
        for (std::size_t pos = 0; pos < n_shards; ++pos) {
          const std::size_t i = steal_order_[pos];
          if (shards_[i]->next_event_time() >= wave_bounds_[i]) continue;
          for (std::size_t later = pos + 1; later < n_shards; ++later) {
            const std::size_t j = steal_order_[later];
            if (j < i && shards_[j]->next_event_time() < wave_bounds_[j]) {
              ++steals_;
              break;
            }
          }
        }
        order = steal_order_.data();
      }
      buffering_ = true;
      pool.parallel_ordered(n_shards, order, epoch_task);
      buffering_ = false;
      for (std::size_t i = 0; i < n_shards; ++i) {
        events_[i] += counts[i];
        processed += counts[i];
        if (counts[i] > 0) now_ = std::max(now_, shards_[i]->epoch_now());
      }
    }
    ++parallel_epochs_;
    for (std::size_t i = 0; i < n_shards; ++i) drain_mailbox(i);
  }
  if (now_ < until && until != kMax) now_ = until;
  return processed;
}

}  // namespace tsu::sim
