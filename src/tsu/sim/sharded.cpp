#include "tsu/sim/sharded.hpp"

namespace tsu::sim {

std::size_t ShardedSim::run(SimTime until) {
  std::size_t processed = 0;
  while (true) {
    // Earliest next event across shards; ties go to the lowest shard
    // index (strict <), which is what makes merged runs deterministic.
    std::size_t best = shards_.size();
    SimTime best_time = std::numeric_limits<SimTime>::max();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const SimTime t = shards_[i]->next_event_time();
      if (t < best_time) {
        best_time = t;
        best = i;
      }
    }
    if (best == shards_.size() || best_time > until) break;
    shards_[best]->step();
    ++processed;
  }
  if (now_ < until && until != std::numeric_limits<SimTime>::max())
    now_ = until;
  return processed;
}

}  // namespace tsu::sim
