// Small-buffer-optimized move-only callable: the event fabric's replacement
// for std::function<void()>.
//
// std::function heap-allocates any closure larger than its ~16-byte SSO,
// which made every scheduled event - channel deliveries carrying a frame,
// switch completions carrying a Message, data-plane hops carrying a
// LivePacket - a malloc/free pair on the hottest loop of the simulator.
// InlineFn stores closures up to kInlineSize bytes in place (sized for the
// largest hot-path closure, the traffic hop; a static_assert at each hot
// call site would catch drift) and only falls back to the heap for the
// oversized cold-path captures of the harness/executor layer.
//
// Unlike std::function it is move-only, so closures may own move-only
// resources (pooled frame buffers, arena handles) without shared_ptr
// boxing. The dispatch table is three free-function pointers (invoke /
// relocate / destroy) per closure type - no virtual bases, no RTTI.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace tsu::sim {

class InlineFn {
 public:
  // Sized so the data-plane hop closure (LivePacket with its inline visited
  // bitmap + Rng) and the channel delivery closure (pooled frame vector +
  // link epoch) both fit without a heap fallback.
  static constexpr std::size_t kInlineSize = 184;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  InlineFn() noexcept = default;
  InlineFn(std::nullptr_t) noexcept {}  // NOLINT(implicit)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineFn(F&& f) {  // NOLINT(implicit)
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = ops_inline<D>();
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = ops_heap<D>();
    }
  }

  InlineFn(InlineFn&& other) noexcept { move_from(other); }
  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;
  ~InlineFn() { reset(); }

  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  // Destroys the held closure (and everything it owns) immediately. The
  // lazy-cancel event queue calls this from cancel() so a dead slot never
  // pins frames or request state until it surfaces at the heap top.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  // True when the closure lives in the inline buffer (no heap allocation).
  // Observability for the allocation-regression tests.
  bool is_inline() const noexcept {
    return ops_ != nullptr && ops_->inline_storage;
  }

  template <typename F>
  static constexpr bool fits_inline() noexcept {
    return sizeof(F) <= kInlineSize && alignof(F) <= kInlineAlign &&
           std::is_nothrow_move_constructible_v<F>;
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-construct into dst from src, then destroy src's closure.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
    bool inline_storage;
  };

  template <typename D>
  static const Ops* ops_inline() noexcept {
    static constexpr Ops ops{
        [](void* p) { (*std::launder(reinterpret_cast<D*>(p)))(); },
        [](void* dst, void* src) noexcept {
          D* from = std::launder(reinterpret_cast<D*>(src));
          ::new (dst) D(std::move(*from));
          from->~D();
        },
        [](void* p) noexcept { std::launder(reinterpret_cast<D*>(p))->~D(); },
        true};
    return &ops;
  }

  template <typename D>
  static const Ops* ops_heap() noexcept {
    static constexpr Ops ops{
        [](void* p) { (**std::launder(reinterpret_cast<D**>(p)))(); },
        [](void* dst, void* src) noexcept {
          ::new (dst) D*(*std::launder(reinterpret_cast<D**>(src)));
        },
        [](void* p) noexcept { delete *std::launder(reinterpret_cast<D**>(p)); },
        false};
    return &ops;
  }

  void move_from(InlineFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(kInlineAlign) std::byte buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace tsu::sim
