// Deterministic fault injection for the control plane.
//
// A FaultSchedule is a sorted list of fault events pinned to simulation
// times: switch crashes (with or without TCAM state loss), control-link
// outages, and frame blackholes. Schedules are plain data - seeded random
// generation, JSON round-tripping and value comparison all preserve the
// exact event list - so any chaos failure replays bit-identically from its
// serialized schedule (`sim_cli --faults <file>`).
//
// The schedule itself injects nothing; the core executor walks it and
// schedules the state flips as shared-scope events (sim/event_queue.hpp),
// so a fault lands at an exact instant on the owning shard's timeline in
// sequential and parallel stepping alike. An EMPTY schedule must leave the
// engine bit-identical to a build without this subsystem: nothing here may
// schedule events, draw randomness, or touch per-frame state unless the
// schedule is non-empty.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tsu/json/json.hpp"
#include "tsu/sim/time.hpp"
#include "tsu/util/ids.hpp"
#include "tsu/util/rng.hpp"
#include "tsu/util/status.hpp"

namespace tsu::sim {

enum class FaultKind : std::uint8_t {
  // The switch process dies at `at` and restarts `down_for` later. While
  // down it forwards nothing (packets arriving there are outage loss, not
  // consistency violations) and its control channel drops every frame,
  // in-flight ones included. `lose_state` picks the variant: true models a
  // cold reboot (flow tables wiped; the controller resyncs the full shadow
  // image on reconnect), false a retained-TCAM restart (tables survive; the
  // resync only corrects rules whose install was unfenced at crash time).
  kSwitchCrash = 0,
  // The control channel (both directions) goes dark for `down_for`; the
  // switch keeps forwarding with the rules it has. On re-establishment the
  // switch opens a fresh session (Hello), which triggers the same
  // controller-driven resync path as a crash reconnect.
  kLinkDown = 1,
  // The next `frames` controller->switch frames vanish silently - no
  // session loss, no reconnect, so recovery can only come from the
  // controller's liveness timeout and retry.
  kBlackhole = 2,
};

const char* to_string(FaultKind kind) noexcept;

struct FaultEvent {
  FaultKind kind = FaultKind::kSwitchCrash;
  SimTime at = 0;
  NodeId node = 0;
  Duration down_for = 0;    // crash / link_down
  bool lose_state = true;   // crash variant
  std::size_t frames = 1;   // blackhole

  bool operator==(const FaultEvent&) const = default;
  std::string to_string() const;
};

// Knobs for FaultSchedule::random (all times relative to the run).
struct ChaosOptions {
  std::size_t node_count = 0;     // targets drawn from [0, node_count)
  double start_ms = 0;            // injection window [start, start+horizon)
  double horizon_ms = 50;
  std::size_t crashes = 1;
  std::size_t link_downs = 1;
  std::size_t blackholes = 1;
  double min_down_ms = 1;
  double max_down_ms = 5;
  std::size_t max_blackhole_frames = 3;
  double retained_tcam_fraction = 0.5;  // crashes keeping their tables
};

class FaultSchedule {
 public:
  FaultSchedule() = default;

  bool empty() const noexcept { return events_.empty(); }
  std::size_t size() const noexcept { return events_.size(); }
  const std::vector<FaultEvent>& events() const noexcept { return events_; }

  // Keeps the list sorted by (at, node, kind): injection order is part of
  // the schedule's value, never of its construction order.
  void add(FaultEvent event);

  bool operator==(const FaultSchedule&) const = default;

  // {"events": [{"kind": "crash", "at_ms": 8, "node": 3, "down_ms": 5,
  //              "lose_state": true}, ...]} - the replay artifact chaos
  // tests print on failure. from_json also accepts the bare events array.
  json::Value to_json() const;
  static Result<FaultSchedule> from_json(const json::Value& value);
  static Result<FaultSchedule> from_json(std::string_view text);

  // Seeded chaos generator: same (seed, options) => same schedule.
  static FaultSchedule random(std::uint64_t seed, const ChaosOptions& options);

 private:
  std::vector<FaultEvent> events_;
};

// Fault-path observability for one engine run, aggregated across shards by
// the executor and surfaced through MultiFlow/Mixed results and the bench
// JSON. All zero on the fault-free path.
struct FaultStats {
  std::size_t crashes = 0;         // injected switch crashes
  std::size_t link_downs = 0;      // injected control-link outages
  std::size_t blackholes = 0;      // injected blackhole events
  std::size_t frames_lost = 0;     // control frames dropped by faults
  std::size_t timeouts = 0;        // liveness timeouts declared
  std::size_t resyncs = 0;         // reconnect resyncs completed
  std::size_t resync_frames = 0;   // FlowMods pushed by resyncs
  std::size_t rollbacks = 0;       // updates rolled back (inverse mods)
  std::size_t retries = 0;         // per-switch round retransmissions
  std::size_t resubmissions = 0;   // rolled-back updates resubmitted
  std::vector<double> recovery_ms; // outage start -> serving restored

  bool any() const noexcept {
    return crashes + link_downs + blackholes + timeouts + rollbacks != 0;
  }
  double recovery_p50_ms() const;
  double recovery_p99_ms() const;
};

}  // namespace tsu::sim
