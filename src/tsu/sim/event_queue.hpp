// Event queue for the discrete-event simulator: a min-heap on (time, band,
// seq) where seq is a monotonically increasing tie-breaker, so simultaneous
// events fire in scheduling order and runs are fully deterministic.
//
// Two orthogonal labels support the parallel sharded engine (sharded.hpp):
//
//   scope  kLocal events are guaranteed by their scheduler to touch only
//          state owned by this queue's shard, so a parallel epoch may run
//          them without cross-shard synchronization. kShared (the safe
//          default) events may read or mutate foreign-shard state and are
//          only ever executed at horizon sync points. next_shared_time()
//          is the earliest pending kShared event - one input of the safe-
//          horizon computation.
//
//   band   kNative events were scheduled by this shard's own execution;
//          kRemote events arrived through a cross-shard mailbox. At equal
//          timestamps every remote event sorts after every native one, so
//          the relative order of a hand-off against same-instant local work
//          is a property of the timestamps alone - not of WHEN the mailbox
//          was drained - which is what keeps sequential and parallel drains
//          bit-identical.
//
// Cancellation is lazy - the slot stays in the heap and is skimmed off when
// it reaches the top - but the heap compacts itself (a rebuild from the
// live pending set) whenever cancelled entries outnumber live ones past a
// threshold, so heavy cancel churn (retransmit timers that almost always
// get cancelled) cannot grow the heap without bound.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "tsu/sim/time.hpp"

namespace tsu::sim {

using EventFn = std::function<void()>;
using EventId = std::uint64_t;

// See the file comment. kShared is the default: only call sites that can
// prove shard-locality opt into kLocal.
enum class EventScope : std::uint8_t { kShared = 0, kLocal = 1 };

class EventQueue {
 public:
  // Which tie-break band an event occupies at its timestamp.
  enum class Band : std::uint8_t { kNative = 0, kRemote = 1 };

  EventId push(SimTime at, EventFn fn, EventScope scope = EventScope::kShared,
               Band band = Band::kNative);

  // Cancels a pending event (lazy: the slot stays in the heap but fires as
  // a no-op). Returns false if the event already fired or was cancelled.
  bool cancel(EventId id);

  bool empty() const noexcept;
  std::size_t size() const noexcept { return live_; }
  // Heap slots currently allocated, including lazily cancelled ones. The
  // compaction invariant keeps this within kCompactSlack * size() + a
  // small constant; exposed so tests can pin the bound.
  std::size_t heap_size() const noexcept { return heap_.size(); }
  SimTime next_time() const;
  // Earliest pending kShared event; SimTime max when none is pending.
  SimTime next_shared_time() const;

  // Pops and returns the next live event; callers must check empty() first.
  struct Fired {
    SimTime time;
    EventFn fn;
    EventScope scope;
  };
  Fired pop();

  // Compaction tuning (exposed for the regression test): rebuild once the
  // heap holds more than kCompactSlack x the live count and at least
  // kCompactMinimum entries.
  static constexpr std::size_t kCompactSlack = 2;
  static constexpr std::size_t kCompactMinimum = 64;

 private:
  struct Entry {
    SimTime time;
    Band band;
    EventId id;
    // min-heap: invert comparison. Equal times break remote-after-native,
    // then scheduling order.
    bool operator<(const Entry& other) const {
      if (time != other.time) return time > other.time;
      if (band != other.band) return band > other.band;
      return id > other.id;
    }
  };

  struct Pending {
    SimTime time;
    EventScope scope;
    Band band;
    EventFn fn;
  };

  // Rebuilds the heaps from pending_ when the cancelled fraction crosses
  // the threshold. O(live) and amortized free: a rebuild only happens
  // after at least as many cancels as live entries.
  void maybe_compact();

  std::priority_queue<Entry> heap_;
  // Index of pending kShared events only, skimmed lazily like heap_; keeps
  // next_shared_time() O(log shared) instead of a scan.
  std::priority_queue<Entry> shared_heap_;
  // id -> (time, scope, band, handler); erased on fire/cancel.
  std::unordered_map<EventId, Pending> pending_;

  EventId next_id_ = 0;
  std::size_t live_ = 0;
};

}  // namespace tsu::sim
