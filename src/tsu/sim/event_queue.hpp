// Event queue for the discrete-event simulator: a min-heap on (time, seq)
// where seq is a monotonically increasing tie-breaker, so simultaneous
// events fire in scheduling order and runs are fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "tsu/sim/time.hpp"

namespace tsu::sim {

using EventFn = std::function<void()>;
using EventId = std::uint64_t;

class EventQueue {
 public:
  EventId push(SimTime at, EventFn fn);

  // Cancels a pending event (lazy: the slot stays in the heap but fires as
  // a no-op). Returns false if the event already fired or was cancelled.
  bool cancel(EventId id);

  bool empty() const noexcept;
  std::size_t size() const noexcept { return live_; }
  SimTime next_time() const;

  // Pops and returns the next live event; callers must check empty() first.
  struct Fired {
    SimTime time;
    EventFn fn;
  };
  Fired pop();

 private:
  struct Entry {
    SimTime time;
    EventId id;
    // min-heap: invert comparison.
    bool operator<(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return id > other.id;
    }
  };

  std::priority_queue<Entry> heap_;
  // id -> handler; erased on fire/cancel.
  std::unordered_map<EventId, EventFn> pending_;

  EventId next_id_ = 0;
  std::size_t live_ = 0;
};

}  // namespace tsu::sim
