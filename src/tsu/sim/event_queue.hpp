// Event queue for the discrete-event simulator: a min-heap on (time, seq)
// where seq is a monotonically increasing tie-breaker, so simultaneous
// events fire in scheduling order and runs are fully deterministic.
//
// Cancellation is lazy - the slot stays in the heap and is skimmed off when
// it reaches the top - but the heap compacts itself (a rebuild from the
// live pending set) whenever cancelled entries outnumber live ones past a
// threshold, so heavy cancel churn (retransmit timers that almost always
// get cancelled) cannot grow the heap without bound.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "tsu/sim/time.hpp"

namespace tsu::sim {

using EventFn = std::function<void()>;
using EventId = std::uint64_t;

class EventQueue {
 public:
  EventId push(SimTime at, EventFn fn);

  // Cancels a pending event (lazy: the slot stays in the heap but fires as
  // a no-op). Returns false if the event already fired or was cancelled.
  bool cancel(EventId id);

  bool empty() const noexcept;
  std::size_t size() const noexcept { return live_; }
  // Heap slots currently allocated, including lazily cancelled ones. The
  // compaction invariant keeps this within kCompactSlack * size() + a
  // small constant; exposed so tests can pin the bound.
  std::size_t heap_size() const noexcept { return heap_.size(); }
  SimTime next_time() const;

  // Pops and returns the next live event; callers must check empty() first.
  struct Fired {
    SimTime time;
    EventFn fn;
  };
  Fired pop();

  // Compaction tuning (exposed for the regression test): rebuild once the
  // heap holds more than kCompactSlack x the live count and at least
  // kCompactMinimum entries.
  static constexpr std::size_t kCompactSlack = 2;
  static constexpr std::size_t kCompactMinimum = 64;

 private:
  struct Entry {
    SimTime time;
    EventId id;
    // min-heap: invert comparison.
    bool operator<(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return id > other.id;
    }
  };

  struct Pending {
    SimTime time;
    EventFn fn;
  };

  // Rebuilds the heap from pending_ when the cancelled fraction crosses
  // the threshold. O(live) and amortized free: a rebuild only happens
  // after at least as many cancels as live entries.
  void maybe_compact();

  std::priority_queue<Entry> heap_;
  // id -> (time, handler); erased on fire/cancel.
  std::unordered_map<EventId, Pending> pending_;

  EventId next_id_ = 0;
  std::size_t live_ = 0;
};

}  // namespace tsu::sim
