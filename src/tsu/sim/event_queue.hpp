// Event queue for the discrete-event simulator: a min-heap on (time, band,
// seq) where seq is a monotonically increasing tie-breaker, so simultaneous
// events fire in scheduling order and runs are fully deterministic.
//
// STORAGE. Events live in a pooled slot arena: a vector of fixed slots
// recycled through a free list, each holding the closure in a
// small-buffer-optimized InlineFn. Steady state performs ZERO heap
// allocations per event - push reuses a retired slot (and the heap vectors'
// high-water capacity), pop returns it. An EventId encodes (generation,
// slot); a bumped generation invalidates every outstanding reference to a
// retired incarnation, which is what makes lazily cancelled heap entries
// detectable in O(1) without a lookup table. The allocation-regression
// test (tests/hotpath_alloc_test.cpp) pins the zero-allocation property.
//
// Two orthogonal labels support the parallel sharded engine (sharded.hpp):
//
//   scope  kLocal events are guaranteed by their scheduler to touch only
//          state owned by this queue's shard, so a parallel epoch may run
//          them without cross-shard synchronization. kShared (the safe
//          default) events may read or mutate foreign-shard state and are
//          only ever executed at horizon sync points. next_shared_time()
//          is the earliest pending kShared event - one input of the safe-
//          horizon computation.
//
//   band   kNative events were scheduled by this shard's own execution;
//          kRemote events arrived through a cross-shard mailbox. At equal
//          timestamps every remote event sorts after every native one, and
//          remote events among themselves sort by the caller-supplied
//          (post time, poster, per-poster sequence) key - NOT by insertion
//          order. The full order of a hand-off against same-instant work
//          is therefore a property of the timestamps alone, not of WHEN
//          the mailbox was drained or in how many batches, which is what
//          keeps the sequential merger, the epoch stepper and the per-wave
//          drains of sharded.hpp bit-identical.
//
// Cancellation is lazy for the HEAP ENTRY only - the slot's closure (and
// everything it owns: frames, packets, request state) is destroyed
// EAGERLY in cancel(), and the slot returns to the free list immediately.
// The dead heap entry is skimmed off when it reaches the top, and the heap
// compacts itself IN PLACE (dead entries erased, then re-heapified over
// the retained capacity - no allocation) whenever cancelled entries
// outnumber live ones past a threshold, so heavy cancel churn (retransmit
// timers that almost always get cancelled) cannot grow the heap without
// bound.
#pragma once

#include <cstdint>
#include <vector>

#include "tsu/sim/inline_fn.hpp"
#include "tsu/sim/time.hpp"

namespace tsu::sim {

using EventFn = InlineFn;
using EventId = std::uint64_t;

// See the file comment. kShared is the default: only call sites that can
// prove shard-locality opt into kLocal.
enum class EventScope : std::uint8_t { kShared = 0, kLocal = 1 };

class EventQueue {
 public:
  // Which tie-break band an event occupies at its timestamp.
  enum class Band : std::uint8_t { kNative = 0, kRemote = 1 };

  // For Band::kRemote, `posted_at` and `remote_seq` form the deterministic
  // tie-break among same-instant remote events (see the file comment);
  // native pushes ignore them and tie-break on scheduling order.
  EventId push(SimTime at, EventFn fn, EventScope scope = EventScope::kShared,
               Band band = Band::kNative, SimTime posted_at = 0,
               std::uint64_t remote_seq = 0);

  // Cancels a pending event. The closure is released eagerly (its captured
  // resources die NOW, not when the dead heap slot surfaces); only the
  // heap entry stays behind, skimmed lazily. Returns false if the event
  // already fired or was cancelled.
  bool cancel(EventId id);

  bool empty() const noexcept;
  std::size_t size() const noexcept { return live_; }
  // Heap slots currently allocated, including lazily cancelled ones. The
  // compaction invariant keeps this within kCompactSlack * size() + a
  // small constant; exposed so tests can pin the bound.
  std::size_t heap_size() const noexcept { return heap_.size(); }
  SimTime next_time() const;
  // Earliest pending kShared event; SimTime max when none is pending.
  SimTime next_shared_time() const;

  // Pops and returns the next live event; callers must check empty() first.
  struct Fired {
    SimTime time;
    EventFn fn;
    EventScope scope;
  };
  Fired pop();

  // Compaction tuning (exposed for the regression test): rebuild once the
  // heap holds more than kCompactSlack x the live count and at least
  // kCompactMinimum entries.
  static constexpr std::size_t kCompactSlack = 2;
  static constexpr std::size_t kCompactMinimum = 64;

 private:
  struct Entry {
    SimTime time;
    // Native: the push-order sequence (unique, so `minor` never decides).
    // Remote: the poster's clock at post time, then (poster, post seq)
    // packed into `minor` - a pure function of the post itself, identical
    // whatever sync point drained it.
    std::uint64_t major;
    std::uint64_t minor;
    std::uint32_t slot;
    std::uint32_t gen;
    Band band;
    // min-heap: invert comparison. Equal times break remote-after-native,
    // then scheduling order (native) / post order (remote).
    bool operator<(const Entry& other) const {
      if (time != other.time) return time > other.time;
      if (band != other.band) return band > other.band;
      if (major != other.major) return major > other.major;
      return minor > other.minor;
    }
  };

  // One arena slot. `gen` advances when the incarnation retires (fire or
  // cancel), so a heap Entry is live iff its gen still matches.
  struct Slot {
    SimTime time = 0;
    std::uint64_t seq = 0;
    EventFn fn;
    std::uint32_t gen = 0;
    EventScope scope = EventScope::kShared;
    Band band = Band::kNative;
    bool pending = false;
  };

  static EventId make_id(std::uint32_t slot, std::uint32_t gen) noexcept {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  bool entry_live(const Entry& entry) const noexcept {
    return slots_[entry.slot].gen == entry.gen;
  }

  // Returns the slot to the free list and invalidates outstanding ids and
  // heap entries for this incarnation.
  void retire(std::uint32_t slot) noexcept {
    Slot& s = slots_[slot];
    s.fn.reset();
    s.pending = false;
    ++s.gen;
    free_.push_back(slot);
  }

  // Compacts the heaps in place (dead entries erased, then re-heapified)
  // when the cancelled fraction crosses the threshold. O(heap), amortized
  // free (a rebuild only happens after at least as many cancels as live
  // entries), and allocation-free: both vectors keep their capacity.
  void maybe_compact();

  // Binary max-heaps on the inverted Entry comparison (std::push_heap /
  // std::pop_heap over plain vectors, not std::priority_queue): raw
  // vectors are what lets maybe_compact() work in place and the arena
  // recycle capacity instead of reallocating.
  std::vector<Entry> heap_;
  // Index of pending kShared events only, skimmed lazily like heap_; keeps
  // next_shared_time() O(log shared) instead of a scan.
  std::vector<Entry> shared_heap_;

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;

  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace tsu::sim
