// The sharded logical clock: one global simulation time driving N
// per-shard event queues. Within a shard, events fire in (time, band,
// insertion) order exactly as in a lone Simulator; across shards the
// merger always steps the shard with the earliest next event, breaking
// timestamp ties towards the lowest shard index, so every run is fully
// deterministic and a 1-shard group is event-for-event identical to a lone
// Simulator (the `shards = 1` bit-compatibility guarantee rests on this).
//
// EXECUTION MODES. run() is the sequential merger. run_parallel() steps
// independent shards on a worker pool in WAVES between cross-shard
// synchronization points: each wave computes a PER-SHARD safe bound
//
//   S_i = min( earliest pending kShared event across shards,   // inbound
//              min over siblings j != i of N_j + lookahead,     // creation
//              N_i + 2 * lookahead )                            // bounce
//
// where N_j is shard j's earliest pending event at the wave start - the
// earliest instant at which any OTHER shard's execution can reach shard i.
// kShared events (inbound control-plane deliveries, coordinator round
// barriers, harness submissions) only ever run at sync points on the
// merging thread; `lookahead` is the caller's lower bound on the delay of
// any kShared event or cross-shard mailbox post CREATED by a kLocal event
// (the executor derives it from the latency models), so nothing a sibling
// schedules mid-wave can mature below S_i. The third term is shard i's own
// ROUND-TRIP horizon: an event i executes can post into a sibling's
// mailbox, and that sibling's handler can post right back - a cycle that
// crosses at least two mailbox hops of >= lookahead each, so the echo
// lands at >= N_i + 2*lookahead. Without this cap a shard with idle
// siblings and no near kShared event would run arbitrarily far ahead and
// later receive its own echo below events it already executed. A shard's
// own mid-wave creations are covered separately: run_epoch stops at the
// shard's own earliest pending kShared event (simulator.hpp), and
// same-shard mailbox posts deliver directly under the remote-band key
// order. Per-shard bounds still dominate the old global horizon
// min_i(N_i) + lookahead: a shard far ahead of its siblings no longer
// drags everyone's window down, it only constrains what may run on
// ITSELF - and since N_i >= min_j(N_j), the bounce cap N_i + 2*lookahead
// is never tighter than that old global horizon. If no shard has work below its
// bound the merger falls back to one sequential step (a HORIZON STALL);
// otherwise every eligible shard runs its sub-bound events concurrently on
// a private clock copy, the pool joins, mailboxes drain, and the global
// clock advances. Every event keeps the timestamp, shard and intra-shard
// order it has under run(), so both modes are bit-identical - the
// equivalence suite pins this.
//
// WORK STEALING. set_steal(true) orders each wave's epoch launches by
// pending-event count, descending (ties to the lowest shard index) - LPT
// scheduling, so when shards outnumber pool lanes an idle lane picks up
// the heaviest remaining epoch first instead of walking shard indexes.
// The order is a pure function of the wave-start queue states, hence
// deterministic and thread-count independent; steals() counts how many
// launches the reorder moved ahead of a lower-indexed eligible shard.
//
// MAILBOXES. Shards never schedule into a foreign shard's queue mid-step.
// A cross-shard hand-off (today: a data-plane packet hopping to a switch
// owned by another shard) is posted into a lock-free SPSC ring - one ring
// per (poster, target) shard pair, so each ring has exactly one producer
// (the worker stepping the posting shard) and one consumer (the merging
// thread at the sync point). A full ring spills to a mutex-guarded
// overflow vector, keeping bursts correct while the steady state never
// takes a lock or allocates. At each sync point the target's rings and
// overflow drain into a reusable scratch buffer, sorted into the same
// deterministic order the sequential merger produces naturally: (delivery
// time, post time, posting shard, per-shard post sequence). Drained
// entries enter the target queue in the REMOTE band (event_queue.hpp), so
// their order against same-instant native events is fixed by timestamps
// alone and the sequential merger - which drains posts immediately -
// produces the identical schedule.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "tsu/sim/exec_mode.hpp"
#include "tsu/sim/simulator.hpp"
#include "tsu/sim/spsc_ring.hpp"
#include "tsu/sim/thread_pool.hpp"
#include "tsu/sim/time.hpp"
#include "tsu/util/assert.hpp"

namespace tsu::sim {

class ShardedSim {
 public:
  explicit ShardedSim(std::size_t shards = 1) {
    const std::size_t count = shards == 0 ? 1 : shards;
    shards_.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
      shards_.push_back(std::make_unique<Simulator>(&now_));
    pair_boxes_.reserve(count * count);
    for (std::size_t i = 0; i < count * count; ++i)
      pair_boxes_.push_back(std::make_unique<PairBox>());
    post_seq_.assign(count, 0);
    events_.assign(count, 0);
  }
  ShardedSim(const ShardedSim&) = delete;
  ShardedSim& operator=(const ShardedSim&) = delete;

  std::size_t shard_count() const noexcept { return shards_.size(); }
  Simulator& shard(std::size_t i) {
    TSU_ASSERT_MSG(i < shards_.size(), "shard index out of range");
    return *shards_[i];
  }
  const Simulator& shard(std::size_t i) const {
    TSU_ASSERT_MSG(i < shards_.size(), "shard index out of range");
    return *shards_[i];
  }

  SimTime now() const noexcept { return now_; }

  // Harness-level events (warmup submissions and the like) land on shard 0
  // unless schedule_on targets the shard that owns the work.
  EventId schedule(Duration delay, EventFn fn,
                   EventScope scope = EventScope::kShared) {
    return shards_[0]->schedule(delay, std::move(fn), scope);
  }
  EventId schedule_on(std::size_t shard, Duration delay, EventFn fn,
                      EventScope scope = EventScope::kShared) {
    TSU_ASSERT_MSG(shard < shards_.size(), "shard index out of range");
    return shards_[shard]->schedule(delay, std::move(fn), scope);
  }

  // Cross-shard hand-off from `poster`'s execution into `target`'s queue
  // at absolute time `at` (see the file comment). Callable from a worker
  // thread mid-epoch; the entry becomes visible to the target at the next
  // sync point (immediately under the sequential merger, and immediately
  // for a SELF-post - target == poster - which only the poster's own
  // worker can observe; the remote-band key makes the insertion instant
  // irrelevant to ordering either way).
  void post(std::size_t target, std::size_t poster, SimTime at, EventFn fn,
            EventScope scope = EventScope::kLocal);

  // Merged run: repeatedly steps the shard with the earliest pending event
  // until every queue drains or `until` is reached (events at exactly
  // `until` still fire). Returns the number of events processed.
  std::size_t run(SimTime until = std::numeric_limits<SimTime>::max());

  // Parallel run (see the file comment). `lookahead` must lower-bound the
  // delay of every kShared event / mailbox post a kLocal event can create
  // TOWARDS A SIBLING shard (same-shard creations are self-guarded);
  // 0 degenerates to per-event sequential stepping (always correct, never
  // concurrent). Bit-identical to run() by construction.
  std::size_t run_parallel(ThreadPool& pool, Duration lookahead,
                           SimTime until = std::numeric_limits<SimTime>::max());

  // Longest-epoch-first launch ordering for waves (see the file comment).
  // Off by default: with lanes >= shards the order cannot matter.
  void set_steal(bool on) noexcept { steal_ = on; }
  bool steal() const noexcept { return steal_; }

  std::size_t pending() const noexcept {
    std::size_t total = 0;
    for (const auto& shard : shards_) total += shard->pending();
    return total;
  }

  // Observability of the stepping engine: epochs that ran shards
  // concurrently, sequential fallback steps at collapsed horizons, and
  // events processed per shard (equal across reruns of one seed - the
  // parallel determinism test pins this).
  std::size_t parallel_epochs() const noexcept { return parallel_epochs_; }
  std::size_t horizon_stalls() const noexcept { return horizon_stalls_; }
  // Epoch launches the steal reorder promoted past a lower-indexed
  // eligible shard (0 unless set_steal(true)); a wave-start-state count,
  // so it is identical across reruns and thread counts.
  std::size_t steals() const noexcept { return steals_; }
  const std::vector<std::size_t>& events_per_shard() const noexcept {
    return events_;
  }
  // Posts that found their SPSC ring full and took the mutex-guarded
  // overflow path. A persistently non-zero rate on a steady workload means
  // kRingCapacity is undersized for it.
  std::size_t overflow_posts() const noexcept {
    return overflow_posts_.load(std::memory_order_relaxed);
  }

  // Ring depth per (poster, target) pair. Bursts beyond this spill to the
  // overflow vector - correct but locked; sized so steady workloads never
  // spill (the bench JSON tracks overflow_posts to keep this honest).
  static constexpr std::size_t kRingCapacity = 128;

 private:
  struct Post {
    SimTime at = 0;         // absolute delivery time
    SimTime posted_at = 0;  // poster's clock when the post was made
    std::size_t poster = 0;
    std::uint64_t seq = 0;  // per-poster monotone sequence
    EventScope scope = EventScope::kLocal;
    EventFn fn;
  };
  // The mailbox edge for one (poster, target) pair: a lock-free SPSC ring
  // for the steady state, a mutex-guarded vector for overflow bursts.
  // has_overflow lets the drain skip the lock entirely in the common case.
  struct PairBox {
    PairBox() : ring(kRingCapacity) {}
    SpscRing<Post> ring;
    std::mutex overflow_mutex;
    std::vector<Post> overflow;
    std::atomic<bool> has_overflow{false};
  };

  PairBox& pair_box(std::size_t target, std::size_t poster) noexcept {
    return *pair_boxes_[target * shards_.size() + poster];
  }

  // One sequential merge step: fires the earliest event across shards
  // (ties to the lowest shard index). Returns false when nothing is
  // pending at or before `until`.
  bool step_earliest(SimTime until);
  void drain_mailbox(std::size_t target);

  SimTime now_ = 0;
  // unique_ptr: each shard's &now_ must stay valid, and Simulator is
  // intentionally non-copyable.
  std::vector<std::unique_ptr<Simulator>> shards_;
  // Row-major [target][poster]; unique_ptr because PairBox (mutex, atomics,
  // ring storage) is neither movable nor copyable.
  std::vector<std::unique_ptr<PairBox>> pair_boxes_;
  std::vector<std::uint64_t> post_seq_;
  std::vector<std::size_t> events_;
  // Reused across drains so sync points allocate nothing once the
  // high-water capacity is reached.
  std::vector<Post> drain_scratch_;
  // Per-epoch event counts, per-shard wave bounds and the steal launch
  // order - members so run_parallel itself is allocation-free in steady
  // state.
  std::vector<std::size_t> epoch_counts_;
  std::vector<SimTime> wave_bounds_;
  std::vector<std::size_t> steal_order_;
  // True while workers are inside an epoch: posts buffer in the mailbox
  // instead of scheduling straight through.
  bool buffering_ = false;
  bool steal_ = false;
  std::size_t parallel_epochs_ = 0;
  std::size_t horizon_stalls_ = 0;
  std::size_t steals_ = 0;
  std::atomic<std::size_t> overflow_posts_{0};
};

}  // namespace tsu::sim
