// The sharded logical clock: one global simulation time driving N
// per-shard event queues. Within a shard, events fire in (time, insertion)
// order exactly as in a lone Simulator; across shards the merger always
// steps the shard with the earliest next event, breaking timestamp ties
// towards the lowest shard index, so every run is fully deterministic and
// a 1-shard group is event-for-event identical to a lone Simulator (the
// `shards = 1` bit-compatibility guarantee rests on this).
//
// Shards only interact through messages that cross shard boundaries as
// scheduled events, so a later revision can step independent shards on
// worker threads between cross-shard synchronization points; today the
// merger is single-threaded and the structure is what buys the option.
#pragma once

#include <cstddef>
#include <limits>
#include <memory>
#include <vector>

#include "tsu/sim/simulator.hpp"
#include "tsu/sim/time.hpp"
#include "tsu/util/assert.hpp"

namespace tsu::sim {

class ShardedSim {
 public:
  explicit ShardedSim(std::size_t shards = 1) {
    const std::size_t count = shards == 0 ? 1 : shards;
    shards_.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
      shards_.push_back(std::make_unique<Simulator>(&now_));
  }
  ShardedSim(const ShardedSim&) = delete;
  ShardedSim& operator=(const ShardedSim&) = delete;

  std::size_t shard_count() const noexcept { return shards_.size(); }
  Simulator& shard(std::size_t i) {
    TSU_ASSERT_MSG(i < shards_.size(), "shard index out of range");
    return *shards_[i];
  }
  const Simulator& shard(std::size_t i) const {
    TSU_ASSERT_MSG(i < shards_.size(), "shard index out of range");
    return *shards_[i];
  }

  SimTime now() const noexcept { return now_; }

  // Harness-level events (warmup submissions and the like) land on shard 0.
  EventId schedule(Duration delay, EventFn fn) {
    return shards_[0]->schedule(delay, std::move(fn));
  }

  // Merged run: repeatedly steps the shard with the earliest pending event
  // until every queue drains or `until` is reached (events at exactly
  // `until` still fire). Returns the number of events processed.
  std::size_t run(SimTime until = std::numeric_limits<SimTime>::max());

  std::size_t pending() const noexcept {
    std::size_t total = 0;
    for (const auto& shard : shards_) total += shard->pending();
    return total;
  }

 private:
  SimTime now_ = 0;
  // unique_ptr: each shard's &now_ must stay valid, and Simulator is
  // intentionally non-copyable.
  std::vector<std::unique_ptr<Simulator>> shards_;
};

}  // namespace tsu::sim
