// How a ShardedSim (sim/sharded.hpp) steps its shards. Split out so
// configuration layers (controller config, REST, JSON) can name the enum
// without pulling in the sharded stepper and its threading headers.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace tsu::sim {

enum class ExecMode : std::uint8_t {
  kSequential = 0,  // single-threaded global merge (the PR 4 engine)
  kParallel = 1,    // worker-pool epochs between safe horizons
};

const char* to_string(ExecMode mode) noexcept;
std::optional<ExecMode> exec_mode_from_string(std::string_view name) noexcept;

}  // namespace tsu::sim
