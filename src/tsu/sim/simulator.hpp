// The discrete-event simulator driving controller, channels, switches and
// data-plane packets on one logical clock. A Simulator either owns its
// clock (the default) or shares the clock of a ShardedSim group (see
// sharded.hpp), in which case it is one shard's event queue and the group
// merger steps the shards in global time order.
#pragma once

#include <cstdint>
#include <limits>

#include "tsu/sim/event_queue.hpp"
#include "tsu/sim/time.hpp"
#include "tsu/util/assert.hpp"

namespace tsu::sim {

class Simulator {
 public:
  Simulator() noexcept : now_(&own_now_) {}
  // A shard of a ShardedSim: shares the group's clock so delays scheduled
  // from any shard land at the correct global time.
  explicit Simulator(SimTime* shared_now) noexcept : now_(shared_now) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const noexcept { return *now_; }

  // Schedules `fn` to run `delay` after the current time.
  EventId schedule(Duration delay, EventFn fn) {
    return queue_.push(*now_ + delay, std::move(fn));
  }
  EventId schedule_at(SimTime at, EventFn fn) {
    TSU_ASSERT_MSG(at >= *now_, "cannot schedule into the past");
    return queue_.push(at, std::move(fn));
  }
  bool cancel(EventId id) { return queue_.cancel(id); }

  // Runs until the queue drains or `until` is reached (events at exactly
  // `until` still fire). Returns the number of events processed.
  std::size_t run(SimTime until = std::numeric_limits<SimTime>::max());

  // Runs at most one event; returns false if none was pending.
  bool step();

  // The next pending event's time; SimTime max when the queue is empty.
  // The ShardedSim merger uses this to pick the shard to step.
  SimTime next_event_time() const {
    return queue_.empty() ? std::numeric_limits<SimTime>::max()
                          : queue_.next_time();
  }

  std::size_t pending() const noexcept { return queue_.size(); }
  // Heap slots including lazily cancelled ones (see EventQueue::heap_size);
  // exposed so cancel-heavy clients (the controller's flush timers) can pin
  // the compaction bound end to end.
  std::size_t heap_size() const noexcept { return queue_.heap_size(); }

 private:
  EventQueue queue_;
  SimTime own_now_ = 0;
  SimTime* now_;
};

}  // namespace tsu::sim
