// The discrete-event simulator driving controller, channels, switches and
// data-plane packets on one logical clock. A Simulator either owns its
// clock (the default) or shares the clock of a ShardedSim group (see
// sharded.hpp), in which case it is one shard's event queue and the group
// merger steps the shards in global time order.
//
// For the PARALLEL sharded engine the simulator additionally understands
// event scopes (see event_queue.hpp): run_epoch() executes the pending
// kLocal events up to a horizon on a PRIVATE copy of the clock, so worker
// threads can step disjoint shards concurrently without touching the
// group's shared `now` - the group re-syncs the global clock at the join.
#pragma once

#include <cstdint>
#include <limits>

#include "tsu/sim/event_queue.hpp"
#include "tsu/sim/time.hpp"
#include "tsu/util/assert.hpp"

namespace tsu::sim {

class Simulator {
 public:
  Simulator() noexcept : now_(&own_now_) {}
  // A shard of a ShardedSim: shares the group's clock so delays scheduled
  // from any shard land at the correct global time.
  explicit Simulator(SimTime* shared_now) noexcept
      : now_(shared_now), shared_now_(shared_now) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const noexcept { return *now_; }

  // Schedules `fn` to run `delay` after the current time. The scope is a
  // PROMISE by the caller: kLocal asserts the handler touches only this
  // shard's state (see event_queue.hpp); when unsure, keep the kShared
  // default - it only costs parallelism, never correctness.
  EventId schedule(Duration delay, EventFn fn,
                   EventScope scope = EventScope::kShared) {
    return queue_.push(*now_ + delay, std::move(fn), scope);
  }
  EventId schedule_at(SimTime at, EventFn fn,
                      EventScope scope = EventScope::kShared) {
    TSU_ASSERT_MSG(at >= *now_, "cannot schedule into the past");
    return queue_.push(at, std::move(fn), scope);
  }
  // A cross-shard mailbox delivery (sharded.hpp drains these): lands in the
  // remote band, so at equal timestamps it sorts after every natively
  // scheduled event - and among remote events by (posted_at, remote_seq) -
  // whatever instant or batch the mailbox was drained in. A delivery below
  // the executed frontier means the sharded engine's safe bound let this
  // shard run past a causal dependency - fail fast instead of executing
  // out of order (equal is fine: the remote band sorts after natives).
  EventId push_remote(SimTime at, EventFn fn,
                      EventScope scope = EventScope::kShared,
                      SimTime posted_at = 0, std::uint64_t remote_seq = 0) {
    TSU_ASSERT_MSG(at >= executed_frontier_,
                   "remote delivery below the executed-event frontier");
    return queue_.push(at, std::move(fn), scope, EventQueue::Band::kRemote,
                       posted_at, remote_seq);
  }
  bool cancel(EventId id) { return queue_.cancel(id); }

  // Runs until the queue drains or `until` is reached (events at exactly
  // `until` still fire). Returns the number of events processed.
  std::size_t run(SimTime until = std::numeric_limits<SimTime>::max());

  // Runs at most one event; returns false if none was pending.
  bool step();

  // Parallel-epoch stepping (only meaningful for a shared-clock shard):
  // processes pending kLocal events strictly before `horizon` on a local
  // clock copy, stopping early at this shard's own earliest pending
  // kShared event - the ShardedSim bound computation only covers events
  // SIBLING shards could create, while a handler in this same epoch may
  // schedule a kShared event below the bound (the group steps those at
  // sync points, in exactly the sequential order). Returns the number of
  // events processed; epoch_now() reports how far the local clock advanced.
  std::size_t run_epoch(SimTime horizon);
  SimTime epoch_now() const noexcept { return own_now_; }

  // The next pending event's time; SimTime max when the queue is empty.
  // The ShardedSim merger uses this to pick the shard to step.
  SimTime next_event_time() const {
    return queue_.empty() ? std::numeric_limits<SimTime>::max()
                          : queue_.next_time();
  }
  // The next pending kShared event's time; SimTime max when none. One
  // input of the ShardedSim safe-horizon computation.
  SimTime next_shared_time() const { return queue_.next_shared_time(); }

  std::size_t pending() const noexcept { return queue_.size(); }
  // Heap slots including lazily cancelled ones (see EventQueue::heap_size);
  // exposed so cancel-heavy clients (the controller's flush timers) can pin
  // the compaction bound end to end.
  std::size_t heap_size() const noexcept { return queue_.heap_size(); }

 private:
  EventQueue queue_;
  SimTime own_now_ = 0;
  SimTime* now_;
  // High-water mark of executed event times: the push_remote causality
  // check above. Monotone, because every pop comes off a time-ordered
  // queue and every insertion path asserts against going into the past.
  SimTime executed_frontier_ = 0;
  // The group clock this shard rejoins after a run_epoch (null for a
  // self-clocked simulator, which never runs epochs).
  SimTime* shared_now_ = nullptr;
};

}  // namespace tsu::sim
