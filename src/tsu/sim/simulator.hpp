// The discrete-event simulator driving controller, channels, switches and
// data-plane packets on one logical clock.
#pragma once

#include <cstdint>
#include <limits>

#include "tsu/sim/event_queue.hpp"
#include "tsu/sim/time.hpp"
#include "tsu/util/assert.hpp"

namespace tsu::sim {

class Simulator {
 public:
  SimTime now() const noexcept { return now_; }

  // Schedules `fn` to run `delay` after the current time.
  EventId schedule(Duration delay, EventFn fn) {
    return queue_.push(now_ + delay, std::move(fn));
  }
  EventId schedule_at(SimTime at, EventFn fn) {
    TSU_ASSERT_MSG(at >= now_, "cannot schedule into the past");
    return queue_.push(at, std::move(fn));
  }
  bool cancel(EventId id) { return queue_.cancel(id); }

  // Runs until the queue drains or `until` is reached (events at exactly
  // `until` still fire). Returns the number of events processed.
  std::size_t run(SimTime until = std::numeric_limits<SimTime>::max());

  // Runs at most one event; returns false if none was pending.
  bool step();

  std::size_t pending() const noexcept { return queue_.size(); }
  // Heap slots including lazily cancelled ones (see EventQueue::heap_size);
  // exposed so cancel-heavy clients (the controller's flush timers) can pin
  // the compaction bound end to end.
  std::size_t heap_size() const noexcept { return queue_.heap_size(); }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
};

}  // namespace tsu::sim
