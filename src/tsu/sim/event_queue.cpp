#include "tsu/sim/event_queue.hpp"

#include <utility>

#include "tsu/util/assert.hpp"

namespace tsu::sim {

EventId EventQueue::push(SimTime at, EventFn fn) {
  const EventId id = next_id_++;
  heap_.push(Entry{at, id});
  pending_.emplace(id, Pending{at, std::move(fn)});
  ++live_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  const auto it = pending_.find(id);
  if (it == pending_.end()) return false;
  pending_.erase(it);
  --live_;
  maybe_compact();
  return true;
}

void EventQueue::maybe_compact() {
  if (heap_.size() < kCompactMinimum) return;
  if (heap_.size() <= kCompactSlack * live_) return;
  std::vector<Entry> entries;
  entries.reserve(pending_.size());
  for (const auto& [id, pending] : pending_)
    entries.push_back(Entry{pending.time, id});
  heap_ = std::priority_queue<Entry>(std::less<Entry>{}, std::move(entries));
}

bool EventQueue::empty() const noexcept { return live_ == 0; }

SimTime EventQueue::next_time() const {
  TSU_ASSERT_MSG(!empty(), "next_time on empty queue");
  // The heap may have cancelled entries at the top; skim them off lazily.
  auto* self = const_cast<EventQueue*>(this);
  while (!self->heap_.empty() &&
         self->pending_.find(self->heap_.top().id) == self->pending_.end())
    self->heap_.pop();
  TSU_ASSERT(!heap_.empty());
  return heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  TSU_ASSERT_MSG(!empty(), "pop on empty queue");
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    heap_.pop();
    const auto it = pending_.find(top.id);
    if (it == pending_.end()) continue;  // cancelled
    Fired fired{top.time, std::move(it->second.fn)};
    pending_.erase(it);
    --live_;
    return fired;
  }
  TSU_ASSERT_MSG(false, "live_ count out of sync with heap");
  return Fired{0, nullptr};
}

}  // namespace tsu::sim
