#include "tsu/sim/event_queue.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "tsu/util/assert.hpp"

namespace tsu::sim {

namespace {

// The heap vectors are max-heaps under Entry's inverted comparison, so
// front() is the earliest event. These helpers keep the call sites honest
// (templates: Entry is private to EventQueue).
template <typename Entry>
inline void heap_push(std::vector<Entry>& heap, Entry entry) {
  heap.push_back(entry);
  std::push_heap(heap.begin(), heap.end());
}

template <typename Entry>
inline void heap_pop(std::vector<Entry>& heap) {
  std::pop_heap(heap.begin(), heap.end());
  heap.pop_back();
}

}  // namespace

EventId EventQueue::push(SimTime at, EventFn fn, EventScope scope, Band band,
                         SimTime posted_at, std::uint64_t remote_seq) {
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    // The free list can hold at most one entry per slot. Growing it in
    // lockstep with the arena's geometric capacity keeps retire() - which
    // is noexcept and runs on the pop/cancel hot path - from ever
    // allocating.
    if (free_.capacity() < slots_.capacity()) free_.reserve(slots_.capacity());
  }
  Slot& s = slots_[slot];
  s.time = at;
  s.seq = next_seq_++;
  s.fn = std::move(fn);
  s.scope = scope;
  s.band = band;
  s.pending = true;
  // Remote entries tie-break on the post key so the order is independent
  // of drain batching; native entries tie-break on push order.
  const std::uint64_t major = band == Band::kRemote ? posted_at : s.seq;
  const std::uint64_t minor = band == Band::kRemote ? remote_seq : 0;
  heap_push(heap_, Entry{at, major, minor, slot, s.gen, band});
  if (scope == EventScope::kShared)
    heap_push(shared_heap_, Entry{at, major, minor, slot, s.gen, band});
  ++live_;
  return make_id(slot, s.gen);
}

bool EventQueue::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (s.gen != gen || !s.pending) return false;
  // Eager release: retire() destroys the closure NOW, so captured frames
  // and request state never outlive the cancel. Only the heap entries
  // linger (invalidated by the generation bump) until skimmed.
  retire(slot);
  --live_;
  maybe_compact();
  return true;
}

void EventQueue::maybe_compact() {
  if (heap_.size() < kCompactMinimum) return;
  if (heap_.size() <= kCompactSlack * live_) return;
  // In place over the retained capacity: erase the dead entries, restore
  // the heap property. No allocation - cancel churn is part of the
  // allocation-free steady state (tests/hotpath_alloc_test.cpp).
  const auto dead = [this](const Entry& entry) { return !entry_live(entry); };
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(), dead), heap_.end());
  std::make_heap(heap_.begin(), heap_.end());
  shared_heap_.erase(
      std::remove_if(shared_heap_.begin(), shared_heap_.end(), dead),
      shared_heap_.end());
  std::make_heap(shared_heap_.begin(), shared_heap_.end());
}

bool EventQueue::empty() const noexcept { return live_ == 0; }

SimTime EventQueue::next_time() const {
  TSU_ASSERT_MSG(!empty(), "next_time on empty queue");
  // The heap may have cancelled entries at the top; skim them off lazily.
  auto* self = const_cast<EventQueue*>(this);
  while (!self->heap_.empty() && !entry_live(self->heap_.front()))
    heap_pop(self->heap_);
  TSU_ASSERT(!heap_.empty());
  return heap_.front().time;
}

SimTime EventQueue::next_shared_time() const {
  auto* self = const_cast<EventQueue*>(this);
  while (!self->shared_heap_.empty() && !entry_live(self->shared_heap_.front()))
    heap_pop(self->shared_heap_);
  return shared_heap_.empty() ? std::numeric_limits<SimTime>::max()
                              : shared_heap_.front().time;
}

EventQueue::Fired EventQueue::pop() {
  TSU_ASSERT_MSG(!empty(), "pop on empty queue");
  while (!heap_.empty()) {
    const Entry top = heap_.front();
    heap_pop(heap_);
    if (!entry_live(top)) continue;  // cancelled
    Slot& s = slots_[top.slot];
    Fired fired{top.time, std::move(s.fn), s.scope};
    retire(top.slot);
    --live_;
    if (fired.scope == EventScope::kShared) {
      // A fired kShared event is the minimum of heap_, hence of the
      // subset shared_heap_ too: skim it (and any cancelled entries
      // above it) off now, so sequential runs - which never call
      // next_shared_time() - cannot grow the index without bound.
      while (!shared_heap_.empty() && !entry_live(shared_heap_.front()))
        heap_pop(shared_heap_);
    }
    return fired;
  }
  TSU_ASSERT_MSG(false, "live_ count out of sync with heap");
  return Fired{0, nullptr, EventScope::kShared};
}

}  // namespace tsu::sim
