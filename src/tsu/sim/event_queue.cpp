#include "tsu/sim/event_queue.hpp"

#include <limits>
#include <utility>

#include "tsu/util/assert.hpp"

namespace tsu::sim {

EventId EventQueue::push(SimTime at, EventFn fn, EventScope scope, Band band) {
  const EventId id = next_id_++;
  heap_.push(Entry{at, band, id});
  if (scope == EventScope::kShared) shared_heap_.push(Entry{at, band, id});
  pending_.emplace(id, Pending{at, scope, band, std::move(fn)});
  ++live_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  const auto it = pending_.find(id);
  if (it == pending_.end()) return false;
  pending_.erase(it);
  --live_;
  maybe_compact();
  return true;
}

void EventQueue::maybe_compact() {
  if (heap_.size() < kCompactMinimum) return;
  if (heap_.size() <= kCompactSlack * live_) return;
  std::vector<Entry> entries;
  std::vector<Entry> shared;
  entries.reserve(pending_.size());
  for (const auto& [id, pending] : pending_) {
    entries.push_back(Entry{pending.time, pending.band, id});
    if (pending.scope == EventScope::kShared)
      shared.push_back(Entry{pending.time, pending.band, id});
  }
  heap_ = std::priority_queue<Entry>(std::less<Entry>{}, std::move(entries));
  shared_heap_ =
      std::priority_queue<Entry>(std::less<Entry>{}, std::move(shared));
}

bool EventQueue::empty() const noexcept { return live_ == 0; }

SimTime EventQueue::next_time() const {
  TSU_ASSERT_MSG(!empty(), "next_time on empty queue");
  // The heap may have cancelled entries at the top; skim them off lazily.
  auto* self = const_cast<EventQueue*>(this);
  while (!self->heap_.empty() &&
         self->pending_.find(self->heap_.top().id) == self->pending_.end())
    self->heap_.pop();
  TSU_ASSERT(!heap_.empty());
  return heap_.top().time;
}

SimTime EventQueue::next_shared_time() const {
  auto* self = const_cast<EventQueue*>(this);
  while (!self->shared_heap_.empty() &&
         self->pending_.find(self->shared_heap_.top().id) ==
             self->pending_.end())
    self->shared_heap_.pop();
  return shared_heap_.empty() ? std::numeric_limits<SimTime>::max()
                              : shared_heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  TSU_ASSERT_MSG(!empty(), "pop on empty queue");
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    heap_.pop();
    const auto it = pending_.find(top.id);
    if (it == pending_.end()) continue;  // cancelled
    Fired fired{top.time, std::move(it->second.fn), it->second.scope};
    pending_.erase(it);
    --live_;
    if (fired.scope == EventScope::kShared) {
      // A fired kShared event is the minimum of heap_, hence of the
      // subset shared_heap_ too: skim it (and any cancelled entries
      // above it) off now, so sequential runs - which never call
      // next_shared_time() - cannot grow the index without bound.
      while (!shared_heap_.empty() &&
             pending_.find(shared_heap_.top().id) == pending_.end())
        shared_heap_.pop();
    }
    return fired;
  }
  TSU_ASSERT_MSG(false, "live_ count out of sync with heap");
  return Fired{0, nullptr, EventScope::kShared};
}

}  // namespace tsu::sim
