#include "tsu/sim/thread_pool.hpp"

#include <algorithm>

namespace tsu::sim {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t lanes = std::max<std::size_t>(threads, 1);
  workers_.reserve(lanes - 1);
  for (std::size_t i = 0; i + 1 < lanes; ++i)
    workers_.emplace_back([this]() { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ThreadPool::hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

void ThreadPool::drain_batch() {
  while (true) {
    std::size_t index;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (next_ >= count_) return;
      const std::size_t claim = next_++;
      index = order_ ? order_[claim] : claim;
    }
    std::exception_ptr error;
    try {
      (*task_)(index);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error) errors_[index] = error;
      if (--remaining_ == 0) done_.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&]() { return stopping_ || generation_ != seen; });
      if (stopping_) return;
      seen = generation_;
    }
    drain_batch();
  }
}

void ThreadPool::parallel(std::size_t count,
                          const std::function<void(std::size_t)>& fn) {
  parallel_ordered(count, nullptr, fn);
}

void ThreadPool::parallel_ordered(std::size_t count, const std::size_t* order,
                                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    // Inline fast path: no locks, no wakes - run in claim order, so the
    // single-lane execution is exactly the threaded claim sequence. Still
    // collect every index's error and rethrow the lowest-index one, like
    // the threaded path.
    std::exception_ptr first;
    std::size_t first_index = count;
    for (std::size_t claim = 0; claim < count; ++claim) {
      const std::size_t index = order ? order[claim] : claim;
      try {
        fn(index);
      } catch (...) {
        if (index < first_index) {
          first = std::current_exception();
          first_index = index;
        }
      }
    }
    if (first) std::rethrow_exception(first);
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    task_ = &fn;
    order_ = order;
    count_ = count;
    next_ = 0;
    remaining_ = count;
    errors_.assign(count, nullptr);
    ++generation_;
  }
  wake_.notify_all();
  drain_batch();  // the calling thread is a lane too
  std::exception_ptr first;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&]() { return remaining_ == 0; });
    task_ = nullptr;
    order_ = nullptr;
    for (std::exception_ptr& error : errors_)
      if (error) {
        first = error;
        break;
      }
    errors_.clear();
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace tsu::sim
