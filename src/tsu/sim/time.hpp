// Simulated time: 64-bit nanoseconds since simulation start.
#pragma once

#include <cstdint>

namespace tsu::sim {

using SimTime = std::uint64_t;   // absolute, ns
using Duration = std::uint64_t;  // relative, ns

inline constexpr Duration nanoseconds(std::uint64_t n) { return n; }
inline constexpr Duration microseconds(std::uint64_t n) { return n * 1'000ULL; }
inline constexpr Duration milliseconds(std::uint64_t n) {
  return n * 1'000'000ULL;
}
inline constexpr Duration seconds(std::uint64_t n) {
  return n * 1'000'000'000ULL;
}

inline constexpr double to_ms(Duration d) {
  return static_cast<double>(d) / 1e6;
}
inline constexpr double to_us(Duration d) {
  return static_cast<double>(d) / 1e3;
}

// Converts a (non-negative) double amount of milliseconds to a Duration.
Duration from_ms(double ms) noexcept;

}  // namespace tsu::sim
