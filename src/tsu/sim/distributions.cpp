#include "tsu/sim/distributions.hpp"

#include <cmath>
#include <sstream>

#include "tsu/sim/time.hpp"

namespace tsu::sim {

Duration from_ms(double ms) noexcept {
  if (ms <= 0) return 0;
  return static_cast<Duration>(ms * 1e6);
}

Duration LatencyModel::sample(Rng& rng) const {
  double value = 0;
  switch (kind) {
    case LatencyKind::kConstant: value = a; break;
    case LatencyKind::kUniform: value = rng.uniform(a, b); break;
    case LatencyKind::kExponential: value = rng.exponential(a); break;
    case LatencyKind::kLognormal: value = rng.lognormal_median(a, b); break;
    case LatencyKind::kPareto: value = rng.pareto(c, a, b); break;
  }
  if (value < 0) value = 0;
  return static_cast<Duration>(value);
}

Duration LatencyModel::min_delay() const noexcept {
  switch (kind) {
    case LatencyKind::kConstant:
    case LatencyKind::kUniform:
    case LatencyKind::kPareto:
      // sample() casts a double >= a, so the truncated `a` lower-bounds it.
      return a <= 0 ? 0 : static_cast<Duration>(a);
    case LatencyKind::kExponential:
    case LatencyKind::kLognormal:
      return 0;
  }
  return 0;
}

double LatencyModel::mean() const {
  switch (kind) {
    case LatencyKind::kConstant: return a;
    case LatencyKind::kUniform: return (a + b) / 2.0;
    case LatencyKind::kExponential: return a;
    case LatencyKind::kLognormal: return a * std::exp(b * b / 2.0);
    case LatencyKind::kPareto: {
      // Mean of a bounded Pareto on [a, b) with shape c.
      const double alpha = c;
      if (alpha == 1.0) return a * std::log(b / a) / (1.0 - a / b);
      const double la = std::pow(a, alpha);
      return la / (1.0 - la / std::pow(b, alpha)) * alpha /
             (alpha - 1.0) *
             (1.0 / std::pow(a, alpha - 1.0) -
              1.0 / std::pow(b, alpha - 1.0));
    }
  }
  return 0;
}

std::string LatencyModel::to_string() const {
  std::ostringstream out;
  switch (kind) {
    case LatencyKind::kConstant:
      out << "const(" << a / 1e6 << "ms)";
      break;
    case LatencyKind::kUniform:
      out << "uniform(" << a / 1e6 << ".." << b / 1e6 << "ms)";
      break;
    case LatencyKind::kExponential:
      out << "exp(mean=" << a / 1e6 << "ms)";
      break;
    case LatencyKind::kLognormal:
      out << "lognormal(median=" << a / 1e6 << "ms,sigma=" << b << ")";
      break;
    case LatencyKind::kPareto:
      out << "pareto(" << a / 1e6 << ".." << b / 1e6 << "ms,alpha=" << c
          << ")";
      break;
  }
  return out.str();
}

LatencyModel LatencyModel::constant(Duration value) {
  return LatencyModel{LatencyKind::kConstant, static_cast<double>(value), 0, 0};
}

LatencyModel LatencyModel::uniform(Duration lo, Duration hi) {
  TSU_ASSERT(lo <= hi);
  return LatencyModel{LatencyKind::kUniform, static_cast<double>(lo),
                      static_cast<double>(hi), 0};
}

LatencyModel LatencyModel::exponential(Duration mean) {
  TSU_ASSERT(mean > 0);
  return LatencyModel{LatencyKind::kExponential, static_cast<double>(mean), 0,
                      0};
}

LatencyModel LatencyModel::lognormal(Duration median, double sigma) {
  TSU_ASSERT(median > 0 && sigma >= 0);
  return LatencyModel{LatencyKind::kLognormal, static_cast<double>(median),
                      sigma, 0};
}

LatencyModel LatencyModel::pareto(Duration lo, Duration hi, double alpha) {
  TSU_ASSERT(lo > 0 && lo < hi && alpha > 0);
  return LatencyModel{LatencyKind::kPareto, static_cast<double>(lo),
                      static_cast<double>(hi), alpha};
}

}  // namespace tsu::sim
