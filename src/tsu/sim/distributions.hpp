// Latency models for the control channel, FlowMod installation and link
// traversal. A LatencyModel is a tagged value so experiment configs stay
// plain data; sample() draws a Duration from the model.
//
// The lognormal and bounded-Pareto models reflect the OVS / hardware
// flow-table update behaviour reported by Kuzniar et al. (PAM'15), which the
// paper cites as the reason multi-vendor deployments see even wilder
// asynchrony than Mininet does (footnote 2).
#pragma once

#include <string>

#include "tsu/sim/time.hpp"
#include "tsu/util/rng.hpp"

namespace tsu::sim {

enum class LatencyKind : unsigned char {
  kConstant,
  kUniform,
  kExponential,
  kLognormal,
  kPareto,
};

struct LatencyModel {
  LatencyKind kind = LatencyKind::kConstant;
  // Parameter meaning by kind:
  //   kConstant:    a = value (ns)
  //   kUniform:     a = lo (ns), b = hi (ns)
  //   kExponential: a = mean (ns)
  //   kLognormal:   a = median (ns), b = sigma
  //   kPareto:      a = lo (ns), b = hi (ns), c = alpha
  double a = 0;
  double b = 0;
  double c = 0;

  Duration sample(Rng& rng) const;
  // Expected value (exact per model); used for analytic sanity checks.
  double mean() const;
  // A guaranteed lower bound on sample(): the value for kConstant, the
  // distribution's lower edge for kUniform/kPareto, 0 for the unbounded-
  // below kinds. The parallel sharded engine derives its cross-shard
  // lookahead from this (sim/sharded.hpp).
  Duration min_delay() const noexcept;
  std::string to_string() const;

  static LatencyModel constant(Duration value);
  static LatencyModel uniform(Duration lo, Duration hi);
  static LatencyModel exponential(Duration mean);
  static LatencyModel lognormal(Duration median, double sigma);
  static LatencyModel pareto(Duration lo, Duration hi, double alpha);
};

}  // namespace tsu::sim
