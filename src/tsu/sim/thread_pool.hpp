// A persistent worker pool for the parallel sharded simulator: one
// fixed set of threads reused across every epoch, so the per-epoch cost is
// a wake + a join rather than thread churn.
//
// The unit of work is parallel(count, fn): invoke fn(0..count-1), every
// index exactly once, distributed over the workers WITH the calling thread
// participating - a pool of size 1 (or a single-index batch) degenerates to
// a plain inline loop with no synchronization at all, which keeps the
// sequential-fallback cost of parallel mode honest on small machines.
//
// Exceptions thrown by tasks are captured per index; after every index of
// the batch has finished, the exception of the LOWEST index is rethrown on
// the calling thread (deterministic whatever the completion order).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tsu::sim {

class ThreadPool {
 public:
  // Spawns `threads - 1` workers (the caller is the remaining thread);
  // 0 means one, i.e. fully inline. hardware_threads() is a sensible cap.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total execution lanes including the calling thread.
  std::size_t size() const noexcept { return workers_.size() + 1; }

  // Runs fn(i) for every i in [0, count), blocking until all complete.
  // Reentrant calls (fn itself calling parallel) are not supported.
  void parallel(std::size_t count, const std::function<void(std::size_t)>& fn);

  // Like parallel(), but lanes CLAIM indexes in the order given by the
  // `order` permutation of [0, count): order[0] starts first, order[1]
  // second, ... Which LANE runs which index stays scheduling-dependent;
  // only the start order is pinned, which is how the sharded engine gets
  // deterministic longest-epoch-first work stealing (sharded.cpp). A null
  // `order` means identity. Errors are still reported (and the lowest
  // rethrown) by index, not by claim position.
  void parallel_ordered(std::size_t count, const std::size_t* order,
                        const std::function<void(std::size_t)>& fn);

  // std::thread::hardware_concurrency with a floor of 1.
  static std::size_t hardware_threads() noexcept;

 private:
  void worker_loop();
  // Claims and runs batch indexes until the batch is exhausted.
  void drain_batch();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::vector<std::thread> workers_;

  // Current batch, guarded by mutex_: generation bumps wake the workers,
  // next/remaining track claim and completion. order_ (may be null =
  // identity) maps claim position -> index for the current batch.
  const std::function<void(std::size_t)>* task_ = nullptr;
  const std::size_t* order_ = nullptr;
  std::size_t count_ = 0;
  std::size_t next_ = 0;
  std::size_t remaining_ = 0;
  std::uint64_t generation_ = 0;
  std::vector<std::exception_ptr> errors_;
  bool stopping_ = false;
};

}  // namespace tsu::sim
