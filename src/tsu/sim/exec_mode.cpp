#include "tsu/sim/exec_mode.hpp"

namespace tsu::sim {

const char* to_string(ExecMode mode) noexcept {
  switch (mode) {
    case ExecMode::kSequential: return "sequential";
    case ExecMode::kParallel: return "parallel";
  }
  return "?";
}

std::optional<ExecMode> exec_mode_from_string(std::string_view name) noexcept {
  if (name == "sequential") return ExecMode::kSequential;
  if (name == "parallel") return ExecMode::kParallel;
  return std::nullopt;
}

}  // namespace tsu::sim
