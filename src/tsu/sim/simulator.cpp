#include "tsu/sim/simulator.hpp"

namespace tsu::sim {

std::size_t Simulator::run(SimTime until) {
  std::size_t processed = 0;
  while (!queue_.empty() && queue_.next_time() <= until) {
    EventQueue::Fired fired = queue_.pop();
    *now_ = fired.time;
    fired.fn();
    ++processed;
  }
  if (*now_ < until && until != std::numeric_limits<SimTime>::max())
    *now_ = until;
  return processed;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  EventQueue::Fired fired = queue_.pop();
  *now_ = fired.time;
  fired.fn();
  return true;
}

}  // namespace tsu::sim
