#include "tsu/sim/simulator.hpp"

namespace tsu::sim {

std::size_t Simulator::run(SimTime until) {
  std::size_t processed = 0;
  while (!queue_.empty() && queue_.next_time() <= until) {
    EventQueue::Fired fired = queue_.pop();
    *now_ = fired.time;
    executed_frontier_ = fired.time;
    fired.fn();
    ++processed;
  }
  if (*now_ < until && until != std::numeric_limits<SimTime>::max())
    *now_ = until;
  return processed;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  EventQueue::Fired fired = queue_.pop();
  *now_ = fired.time;
  executed_frontier_ = fired.time;
  fired.fn();
  return true;
}

std::size_t Simulator::run_epoch(SimTime horizon) {
  TSU_ASSERT_MSG(shared_now_ != nullptr,
                 "run_epoch is only for shared-clock shards");
  // Step on a private clock: handlers see their own shard's time through
  // now() while sibling shards advance concurrently; the group merger
  // folds the locals back into the shared clock at the join.
  own_now_ = *shared_now_;
  now_ = &own_now_;
  std::size_t processed = 0;
  // Dynamic own-kShared guard: the group's per-shard bound only proves that
  // SIBLING shards cannot interact below it. A kLocal handler running in
  // this very epoch may schedule a kShared event (even at the current
  // instant - the controller's speculative deferrals do exactly that) below
  // the bound; stopping the epoch at our own earliest kShared event keeps
  // same-shard ordering identical to the sequential merger, which also
  // executes that kShared event next for this shard.
  while (!queue_.empty() && queue_.next_time() < horizon &&
         queue_.next_time() < queue_.next_shared_time()) {
    EventQueue::Fired fired = queue_.pop();
    TSU_ASSERT_MSG(fired.scope == EventScope::kLocal,
                   "kShared event matured below the parallel horizon");
    own_now_ = fired.time;
    executed_frontier_ = fired.time;
    fired.fn();
    ++processed;
  }
  now_ = shared_now_;
  return processed;
}

}  // namespace tsu::sim
