#include "tsu/rest/service_json.hpp"

#include "tsu/json/json.hpp"

namespace tsu::rest {

namespace {

json::Value count(std::uint64_t n) {
  return json::Value(static_cast<std::int64_t>(n));
}

json::Value class_stats(const core::ServiceClassStats& stats) {
  json::Object obj;
  obj.set("arrivals", count(stats.arrivals));
  obj.set("accepted", count(stats.accepted));
  obj.set("rejected", count(stats.rejected));
  obj.set("submitted", count(stats.submitted));
  obj.set("completed", count(stats.completed));
  obj.set("throttled", count(stats.throttled));
  return json::Value(std::move(obj));
}

}  // namespace

std::string to_json(const core::ServiceSnapshot& snapshot) {
  json::Object root;
  root.set("at_ms", json::Value(static_cast<double>(snapshot.at) / 1e6));
  root.set("arrivals", count(snapshot.arrivals));
  root.set("accepted", count(snapshot.accepted));
  root.set("rejected", count(snapshot.rejected));
  root.set("submitted", count(snapshot.submitted));
  root.set("completed", count(snapshot.completed));
  root.set("pending", count(snapshot.pending));
  root.set("controller_depth", count(snapshot.controller_depth));
  root.set("steady_state_entries", count(snapshot.steady_state_entries));
  root.set("plan_compiles", count(snapshot.plan_compiles));
  root.set("plan_hits", count(snapshot.plan_hits));
  root.set("plan_invalidations", count(snapshot.plan_invalidations));
  root.set("window_throughput_per_sec",
           json::Value(snapshot.window_throughput_per_sec));
  root.set("p50_duration_ms", json::Value(snapshot.p50_duration_ms));
  root.set("p99_duration_ms", json::Value(snapshot.p99_duration_ms));
  root.set("p50_wait_ms", json::Value(snapshot.p50_wait_ms));
  root.set("p99_wait_ms", json::Value(snapshot.p99_wait_ms));
  return json::write(json::Value(std::move(root)));
}

std::string to_json(const core::ServiceResult& result) {
  json::Object root;
  root.set("arrivals", count(result.stats.arrivals));
  root.set("accepted", count(result.stats.accepted));
  root.set("rejected", count(result.stats.rejected));
  root.set("submitted", count(result.stats.submitted));
  root.set("completed", count(result.stats.completed));
  root.set("aborted", count(result.stats.aborted));
  root.set("throttled", count(result.stats.throttled));
  root.set("peak_pending", count(result.stats.peak_pending));
  root.set("peak_controller_depth",
           count(result.stats.peak_controller_depth));
  root.set("plan_compiles", count(result.stats.plan_compiles));
  root.set("plan_hits", count(result.stats.plan_hits));
  root.set("plan_invalidations", count(result.stats.plan_invalidations));

  json::Array classes;
  for (const core::ServiceClassStats& stats : result.stats.by_class)
    classes.push_back(class_stats(stats));
  root.set("classes", json::Value(std::move(classes)));

  const controller::CompletionStats& done = result.completions;
  json::Object latency;
  latency.set("mean_duration_ms", json::Value(done.duration_ms.mean()));
  latency.set("p50_duration_ms",
              json::Value(done.duration_ns.quantile(0.5) / 1e6));
  latency.set("p99_duration_ms",
              json::Value(done.duration_ns.quantile(0.99) / 1e6));
  latency.set("mean_wait_ms", json::Value(done.wait_ms.mean()));
  latency.set("p50_wait_ms", json::Value(done.wait_ns.quantile(0.5) / 1e6));
  latency.set("p99_wait_ms", json::Value(done.wait_ns.quantile(0.99) / 1e6));
  root.set("latency", json::Value(std::move(latency)));

  root.set("flow_mods_sent", count(done.flow_mods_sent));
  root.set("barriers_sent", count(done.barriers_sent));
  root.set("rounds", count(done.rounds));
  root.set("sim_duration_ms",
           json::Value(static_cast<double>(result.sim_duration) / 1e6));
  root.set("sustained_per_sec", json::Value(result.sustained_per_sec()));
  root.set("steady_state_entries_final",
           count(result.steady_state_entries_final));
  root.set("retired_xids", count(result.retired_xids));
  root.set("frames_sent", count(result.frames_sent));
  if (result.traffic.total > 0) {
    json::Object traffic;
    traffic.set("total", count(result.traffic.total));
    traffic.set("delivered", count(result.traffic.delivered));
    traffic.set("blackholed", count(result.traffic.blackholed));
    traffic.set("looped", count(result.traffic.looped));
    traffic.set("bypassed", count(result.traffic.bypassed));
    root.set("traffic", json::Value(std::move(traffic)));
  }
  return json::write(json::Value(std::move(root)));
}

}  // namespace tsu::rest
