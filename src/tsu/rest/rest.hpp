// The paper's REST update message (§2):
//
//   {
//     "oldpath":[<dp-num>,<dp-num>,<dp-num>],
//     "newpath":[<dp-num>,<dp-num>,<dp-num>],
//     "wp":<dp-num>,
//     "interval":<time in ms>,
//     <type>:[<OpenFlow message information>],
//     ...
//   }
//
// Header fields parameterize the scheduler (routes, waypoint, inter-round
// interval); the body carries explicit FlowMod descriptions keyed by type
// ("add" / "modify" / "delete"), in the style of Ryu's ofctl_rest. As in
// Ryu, datapath numbers may arrive as JSON numbers or numeric strings ("the
// waypoint is a string, which can be converted to an integer value").
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "tsu/controller/admission.hpp"
#include "tsu/controller/controller.hpp"
#include "tsu/proto/messages.hpp"
#include "tsu/topo/partition.hpp"
#include "tsu/topo/topology.hpp"
#include "tsu/update/instance.hpp"
#include "tsu/util/ids.hpp"
#include "tsu/util/status.hpp"

namespace tsu::rest {

struct FlowModSpec {
  DatapathId dpid = kInvalidDatapath;
  proto::FlowMod mod;
};

struct RestUpdateMessage {
  std::vector<DatapathId> old_path;
  std::vector<DatapathId> new_path;
  std::optional<DatapathId> waypoint;
  double interval_ms = 0;
  std::vector<FlowModSpec> flow_mods;
  // Optional controller knobs carried in the header, beyond the paper's
  // schema: how the serving controller should admit this and concurrent
  // requests, how its per-switch outbox batches frames, and how the
  // control plane is sharded (controller/shard.hpp). Absent fields leave
  // the controller's configuration alone.
  std::optional<controller::AdmissionPolicy> admission;
  std::optional<controller::AdmissionRelease> admission_release;
  std::optional<std::size_t> max_in_flight;
  std::optional<bool> batch_frames;
  std::optional<controller::BatchMode> batch_mode;
  std::optional<double> batch_window_ms;
  std::optional<std::size_t> batch_bytes;
  std::optional<std::size_t> shards;
  std::optional<topo::PartitionScheme> partition;
  // How the sharded clock steps (sequential merge or parallel epochs) and
  // with how many worker threads (0 = auto); see sim/sharded.hpp.
  std::optional<sim::ExecMode> exec;
  std::optional<std::size_t> threads;
  // Speculative round barriers and longest-first epoch launch ordering
  // (controller/controller.hpp speculate / steal).
  std::optional<bool> speculate;
  // Compiled-plan cache for service-mode submissions ("on" | "off" in the
  // wire document, matching the config key; controller.hpp plan_cache).
  std::optional<bool> plan_cache;
  std::optional<bool> steal;
  // Fault-tolerance knobs (controller/controller.hpp): liveness detection
  // timeout (0 disables the whole fault path) and what a timed-out update
  // does (wait-and-retry or roll back).
  std::optional<double> liveness_timeout_ms;
  std::optional<controller::FailureResponse> failure_response;
  // Admission priority class for THIS update (0 = highest, served first by
  // the open-loop service and by the controller's start scan). Unlike the
  // knobs above it configures the request, not the controller.
  std::optional<std::uint32_t> priority_class;
};

// Parses the JSON request body. Unknown body keys are rejected; "add",
// "modify", "delete" carry FlowMod arrays.
Result<RestUpdateMessage> parse_update_message(std::string_view json_text);

// Round-trip support (compact JSON).
std::string to_json(const RestUpdateMessage& message);

// Maps datapath numbers to topology nodes and validates the two routes as
// an update instance.
Result<update::Instance> to_instance(const RestUpdateMessage& message,
                                     const topo::Topology& topology);

// Applies the message's optional controller knobs (admission policy and
// release granularity, max_in_flight, the batching knobs batch_frames /
// batch_mode / batch_window_ms / batch_bytes, the sharding knobs
// shards / partition / exec / threads / speculate / steal, and the
// fault-tolerance knobs liveness_timeout_ms / failure_response) onto a
// controller configuration.
void apply_controller_overrides(const RestUpdateMessage& message,
                                controller::ControllerConfig& config);

}  // namespace tsu::rest
