// JSON views of the open-loop service's live state (core/service.hpp) -
// the documents behind `sim_cli --serve` and a REST stats endpoint. Thin
// adapter layered ABOVE both rest and core: core never includes this.
#pragma once

#include <string>

#include "tsu/core/service.hpp"

namespace tsu::rest {

// One live snapshot: cumulative counters, instantaneous depths, window
// throughput, and streaming latency quantiles.
std::string to_json(const core::ServiceSnapshot& snapshot);

// Final run document: totals, per-class breakdown, latency/wait summary,
// drain proof (steady_state_entries_final) and sustained throughput.
std::string to_json(const core::ServiceResult& result);

}  // namespace tsu::rest
