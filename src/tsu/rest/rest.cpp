#include "tsu/rest/rest.hpp"

#include "tsu/json/json.hpp"
#include "tsu/util/strings.hpp"

namespace tsu::rest {

namespace {

// Datapath numbers may be JSON numbers or numeric strings.
Result<DatapathId> as_dpid(const json::Value& value) {
  if (value.is_number()) {
    const std::int64_t n = value.as_int();
    if (n < 0) return make_error(Errc::kParseError, "negative datapath id");
    return static_cast<DatapathId>(n);
  }
  if (value.is_string()) {
    const auto n = parse_int(value.as_string());
    if (!n.has_value() || *n < 0)
      return make_error(Errc::kParseError,
                        "datapath id string is not a non-negative integer");
    return static_cast<DatapathId>(*n);
  }
  return make_error(Errc::kParseError, "datapath id must be number or string");
}

Result<std::vector<DatapathId>> as_path(const json::Value& value,
                                        const char* field) {
  if (!value.is_array())
    return make_error(Errc::kParseError,
                      std::string(field) + " must be an array");
  std::vector<DatapathId> path;
  for (const json::Value& item : value.as_array()) {
    Result<DatapathId> dpid = as_dpid(item);
    if (!dpid.ok()) return dpid.error();
    path.push_back(dpid.value());
  }
  return path;
}

Result<proto::FlowModCommand> command_for_key(std::string_view key) {
  if (key == "add") return proto::FlowModCommand::kAdd;
  if (key == "modify") return proto::FlowModCommand::kModify;
  if (key == "delete") return proto::FlowModCommand::kDelete;
  return make_error(Errc::kParseError,
                    "unknown body key '" + std::string(key) + "'");
}

Result<FlowModSpec> parse_flow_mod(const json::Value& value,
                                   proto::FlowModCommand command) {
  if (!value.is_object())
    return make_error(Errc::kParseError, "FlowMod entry must be an object");
  const json::Object& obj = value.as_object();

  FlowModSpec spec;
  spec.mod.command = command;

  const json::Value* dpid = obj.find("dpid");
  if (dpid == nullptr)
    return make_error(Errc::kParseError, "FlowMod entry missing 'dpid'");
  Result<DatapathId> dp = as_dpid(*dpid);
  if (!dp.ok()) return dp.error();
  spec.dpid = dp.value();

  if (const json::Value* priority = obj.find("priority")) {
    if (!priority->is_number())
      return make_error(Errc::kParseError, "'priority' must be a number");
    const std::int64_t p = priority->as_int();
    if (p < 0 || p > 0xffff)
      return make_error(Errc::kOutOfRange, "'priority' out of range");
    spec.mod.priority = static_cast<std::uint16_t>(p);
  }
  if (const json::Value* cookie = obj.find("cookie")) {
    if (!cookie->is_number())
      return make_error(Errc::kParseError, "'cookie' must be a number");
    spec.mod.cookie = static_cast<std::uint64_t>(cookie->as_int());
  }

  if (const json::Value* match = obj.find("match")) {
    if (!match->is_object())
      return make_error(Errc::kParseError, "'match' must be an object");
    for (const auto& [key, field] : match->as_object()) {
      if (!field.is_number())
        return make_error(Errc::kParseError,
                          "match field '" + key + "' must be a number");
      if (key == "flow")
        spec.mod.match.flow = static_cast<FlowId>(field.as_int());
      else if (key == "src")
        spec.mod.match.src_host = static_cast<NodeId>(field.as_int());
      else if (key == "dst")
        spec.mod.match.dst_host = static_cast<NodeId>(field.as_int());
      else if (key == "in_port")
        spec.mod.match.in_port = static_cast<std::uint32_t>(field.as_int());
      else
        return make_error(Errc::kParseError,
                          "unknown match field '" + key + "'");
    }
  }

  if (const json::Value* actions = obj.find("actions")) {
    if (!actions->is_array())
      return make_error(Errc::kParseError, "'actions' must be an array");
    for (const json::Value& entry : actions->as_array()) {
      if (!entry.is_object() || entry.as_object().find("type") == nullptr)
        return make_error(Errc::kParseError, "action needs a 'type'");
      const json::Object& action = entry.as_object();
      const std::string& type = action.find("type")->as_string();
      if (type == "OUTPUT") {
        const json::Value* port = action.find("port");
        if (port == nullptr || !port->is_number())
          return make_error(Errc::kParseError,
                            "OUTPUT action needs numeric 'port'");
        spec.mod.action =
            flow::Action::forward(static_cast<NodeId>(port->as_int()));
      } else if (type == "DELIVER") {
        spec.mod.action = flow::Action::deliver();
      } else if (type == "DROP") {
        spec.mod.action = flow::Action::drop();
      } else {
        return make_error(Errc::kParseError,
                          "unknown action type '" + type + "'");
      }
    }
  }

  return spec;
}

}  // namespace

Result<RestUpdateMessage> parse_update_message(std::string_view json_text) {
  Result<json::Value> doc = json::parse(json_text);
  if (!doc.ok()) return doc.error();
  if (!doc.value().is_object())
    return make_error(Errc::kParseError, "REST message must be an object");
  const json::Object& obj = doc.value().as_object();

  RestUpdateMessage message;
  bool saw_oldpath = false;
  bool saw_newpath = false;

  for (const auto& [key, value] : obj) {
    if (key == "oldpath") {
      Result<std::vector<DatapathId>> path = as_path(value, "oldpath");
      if (!path.ok()) return path.error();
      message.old_path = std::move(path).value();
      saw_oldpath = true;
    } else if (key == "newpath") {
      Result<std::vector<DatapathId>> path = as_path(value, "newpath");
      if (!path.ok()) return path.error();
      message.new_path = std::move(path).value();
      saw_newpath = true;
    } else if (key == "wp") {
      Result<DatapathId> wp = as_dpid(value);
      if (!wp.ok()) return wp.error();
      message.waypoint = wp.value();
    } else if (key == "interval") {
      if (!value.is_number())
        return make_error(Errc::kParseError, "'interval' must be a number");
      message.interval_ms = value.as_double();
      if (message.interval_ms < 0)
        return make_error(Errc::kOutOfRange, "'interval' must be >= 0");
    } else if (key == "admission") {
      if (!value.is_string())
        return make_error(Errc::kParseError, "'admission' must be a string");
      const std::optional<controller::AdmissionPolicy> policy =
          controller::admission_policy_from_string(value.as_string());
      if (!policy.has_value())
        return make_error(Errc::kParseError,
                          "unknown admission policy '" + value.as_string() +
                              "' (blind | conflict_aware | serialize)");
      message.admission = *policy;
    } else if (key == "admission_release") {
      if (!value.is_string())
        return make_error(Errc::kParseError,
                          "'admission_release' must be a string");
      const std::optional<controller::AdmissionRelease> release =
          controller::admission_release_from_string(value.as_string());
      if (!release.has_value())
        return make_error(Errc::kParseError,
                          "unknown admission release '" + value.as_string() +
                              "' (request | round)");
      message.admission_release = *release;
    } else if (key == "shards") {
      if (!value.is_number() || value.as_int() < 1 ||
          value.as_int() >
              static_cast<std::int64_t>(proto::kMaxXidShards))
        return make_error(Errc::kOutOfRange, "'shards' must be in [1, 256]");
      message.shards = static_cast<std::size_t>(value.as_int());
    } else if (key == "partition") {
      if (!value.is_string())
        return make_error(Errc::kParseError, "'partition' must be a string");
      const std::optional<topo::PartitionScheme> scheme =
          topo::partition_scheme_from_string(value.as_string());
      if (!scheme.has_value())
        return make_error(Errc::kParseError,
                          "unknown partition scheme '" + value.as_string() +
                              "' (hash | block | greedy_cut)");
      message.partition = *scheme;
    } else if (key == "exec") {
      if (!value.is_string())
        return make_error(Errc::kParseError, "'exec' must be a string");
      const std::optional<sim::ExecMode> mode =
          sim::exec_mode_from_string(value.as_string());
      if (!mode.has_value())
        return make_error(Errc::kParseError,
                          "unknown exec mode '" + value.as_string() +
                              "' (sequential | parallel)");
      message.exec = *mode;
    } else if (key == "threads") {
      if (!value.is_number() || value.as_int() < 0)
        return make_error(Errc::kOutOfRange, "'threads' must be >= 0");
      message.threads = static_cast<std::size_t>(value.as_int());
    } else if (key == "speculate") {
      if (!value.is_bool())
        return make_error(Errc::kParseError, "'speculate' must be a bool");
      message.speculate = value.as_bool();
    } else if (key == "steal") {
      if (!value.is_bool())
        return make_error(Errc::kParseError, "'steal' must be a bool");
      message.steal = value.as_bool();
    } else if (key == "plan_cache") {
      if (!value.is_string() ||
          (value.as_string() != "on" && value.as_string() != "off"))
        return make_error(Errc::kParseError,
                          "'plan_cache' must be \"on\" or \"off\"");
      message.plan_cache = value.as_string() == "on";
    } else if (key == "liveness_timeout_ms") {
      if (!value.is_number() || value.as_double() < 0)
        return make_error(Errc::kOutOfRange,
                          "'liveness_timeout_ms' must be >= 0");
      message.liveness_timeout_ms = value.as_double();
    } else if (key == "failure_response") {
      if (!value.is_string())
        return make_error(Errc::kParseError,
                          "'failure_response' must be a string");
      const std::optional<controller::FailureResponse> response =
          controller::failure_response_from_string(value.as_string());
      if (!response.has_value())
        return make_error(Errc::kParseError,
                          "unknown failure response '" + value.as_string() +
                              "' (wait | rollback)");
      message.failure_response = *response;
    } else if (key == "priority_class") {
      if (!value.is_number() || value.as_int() < 0 || value.as_int() > 255)
        return make_error(Errc::kOutOfRange,
                          "'priority_class' must be in [0, 255]");
      message.priority_class = static_cast<std::uint32_t>(value.as_int());
    } else if (key == "max_in_flight") {
      if (!value.is_number() || value.as_int() < 1)
        return make_error(Errc::kOutOfRange, "'max_in_flight' must be >= 1");
      message.max_in_flight = static_cast<std::size_t>(value.as_int());
    } else if (key == "batch_frames") {
      if (!value.is_bool())
        return make_error(Errc::kParseError, "'batch_frames' must be a bool");
      message.batch_frames = value.as_bool();
    } else if (key == "batch_mode") {
      if (!value.is_string())
        return make_error(Errc::kParseError, "'batch_mode' must be a string");
      const std::optional<controller::BatchMode> mode =
          controller::batch_mode_from_string(value.as_string());
      if (!mode.has_value())
        return make_error(Errc::kParseError,
                          "unknown batch mode '" + value.as_string() +
                              "' (off | instant | window | adaptive)");
      message.batch_mode = *mode;
    } else if (key == "batch_window_ms") {
      if (!value.is_number() || value.as_double() < 0)
        return make_error(Errc::kOutOfRange, "'batch_window_ms' must be >= 0");
      message.batch_window_ms = value.as_double();
    } else if (key == "batch_bytes") {
      if (!value.is_number() || value.as_int() < 1)
        return make_error(Errc::kOutOfRange, "'batch_bytes' must be >= 1");
      message.batch_bytes = static_cast<std::size_t>(value.as_int());
    } else {
      Result<proto::FlowModCommand> command = command_for_key(key);
      if (!command.ok()) return command.error();
      if (!value.is_array())
        return make_error(Errc::kParseError,
                          "body key '" + key + "' must hold an array");
      for (const json::Value& entry : value.as_array()) {
        Result<FlowModSpec> spec = parse_flow_mod(entry, command.value());
        if (!spec.ok()) return spec.error();
        message.flow_mods.push_back(std::move(spec).value());
      }
    }
  }

  if (!saw_oldpath || !saw_newpath)
    return make_error(Errc::kParseError,
                      "REST message requires 'oldpath' and 'newpath'");
  return message;
}

std::string to_json(const RestUpdateMessage& message) {
  json::Object root;
  const auto path_array = [](const std::vector<DatapathId>& path) {
    json::Array array;
    for (const DatapathId dp : path)
      array.emplace_back(static_cast<std::int64_t>(dp));
    return array;
  };
  root.set("oldpath", json::Value(path_array(message.old_path)));
  root.set("newpath", json::Value(path_array(message.new_path)));
  if (message.waypoint.has_value())
    root.set("wp", json::Value(static_cast<std::int64_t>(*message.waypoint)));
  root.set("interval", json::Value(message.interval_ms));
  if (message.admission.has_value())
    root.set("admission",
             json::Value(controller::to_string(*message.admission)));
  if (message.admission_release.has_value())
    root.set("admission_release",
             json::Value(controller::to_string(*message.admission_release)));
  if (message.shards.has_value())
    root.set("shards",
             json::Value(static_cast<std::int64_t>(*message.shards)));
  if (message.partition.has_value())
    root.set("partition", json::Value(topo::to_string(*message.partition)));
  if (message.exec.has_value())
    root.set("exec", json::Value(sim::to_string(*message.exec)));
  if (message.threads.has_value())
    root.set("threads",
             json::Value(static_cast<std::int64_t>(*message.threads)));
  if (message.speculate.has_value())
    root.set("speculate", json::Value(*message.speculate));
  if (message.steal.has_value())
    root.set("steal", json::Value(*message.steal));
  if (message.plan_cache.has_value())
    root.set("plan_cache", json::Value(*message.plan_cache ? "on" : "off"));
  if (message.liveness_timeout_ms.has_value())
    root.set("liveness_timeout_ms", json::Value(*message.liveness_timeout_ms));
  if (message.failure_response.has_value())
    root.set("failure_response",
             json::Value(controller::to_string(*message.failure_response)));
  if (message.priority_class.has_value())
    root.set("priority_class",
             json::Value(static_cast<std::int64_t>(*message.priority_class)));
  if (message.max_in_flight.has_value())
    root.set("max_in_flight",
             json::Value(static_cast<std::int64_t>(*message.max_in_flight)));
  if (message.batch_frames.has_value())
    root.set("batch_frames", json::Value(*message.batch_frames));
  if (message.batch_mode.has_value())
    root.set("batch_mode",
             json::Value(controller::to_string(*message.batch_mode)));
  if (message.batch_window_ms.has_value())
    root.set("batch_window_ms", json::Value(*message.batch_window_ms));
  if (message.batch_bytes.has_value())
    root.set("batch_bytes",
             json::Value(static_cast<std::int64_t>(*message.batch_bytes)));

  json::Array add, modify, del;
  for (const FlowModSpec& spec : message.flow_mods) {
    json::Object entry;
    entry.set("dpid", json::Value(static_cast<std::int64_t>(spec.dpid)));
    entry.set("priority",
              json::Value(static_cast<std::int64_t>(spec.mod.priority)));
    json::Object match;
    if (spec.mod.match.flow.has_value())
      match.set("flow",
                json::Value(static_cast<std::int64_t>(*spec.mod.match.flow)));
    if (spec.mod.match.src_host.has_value())
      match.set("src", json::Value(static_cast<std::int64_t>(
                           *spec.mod.match.src_host)));
    if (spec.mod.match.dst_host.has_value())
      match.set("dst", json::Value(static_cast<std::int64_t>(
                           *spec.mod.match.dst_host)));
    if (spec.mod.match.in_port.has_value())
      match.set("in_port", json::Value(static_cast<std::int64_t>(
                               *spec.mod.match.in_port)));
    entry.set("match", json::Value(std::move(match)));

    json::Array actions;
    json::Object action;
    switch (spec.mod.action.kind) {
      case flow::ActionKind::kForward:
        action.set("type", json::Value("OUTPUT"));
        action.set("port", json::Value(static_cast<std::int64_t>(
                               spec.mod.action.port)));
        break;
      case flow::ActionKind::kDeliver:
        action.set("type", json::Value("DELIVER"));
        break;
      case flow::ActionKind::kDrop:
        action.set("type", json::Value("DROP"));
        break;
    }
    actions.push_back(json::Value(std::move(action)));
    entry.set("actions", json::Value(std::move(actions)));

    switch (spec.mod.command) {
      case proto::FlowModCommand::kAdd:
        add.push_back(json::Value(std::move(entry)));
        break;
      case proto::FlowModCommand::kModify:
        modify.push_back(json::Value(std::move(entry)));
        break;
      default:
        del.push_back(json::Value(std::move(entry)));
        break;
    }
  }
  if (!add.empty()) root.set("add", json::Value(std::move(add)));
  if (!modify.empty()) root.set("modify", json::Value(std::move(modify)));
  if (!del.empty()) root.set("delete", json::Value(std::move(del)));
  return json::write(json::Value(std::move(root)));
}

Result<update::Instance> to_instance(const RestUpdateMessage& message,
                                     const topo::Topology& topology) {
  const auto map_path =
      [&topology](const std::vector<DatapathId>& dpids,
                  const char* name) -> Result<graph::Path> {
    graph::Path path;
    for (const DatapathId dp : dpids) {
      const std::optional<NodeId> node = topology.node_of_dpid(dp);
      if (!node.has_value())
        return make_error(Errc::kNotFound,
                          std::string(name) + " references unknown datapath " +
                              std::to_string(dp));
      path.push_back(*node);
    }
    return path;
  };

  Result<graph::Path> old_path = map_path(message.old_path, "oldpath");
  if (!old_path.ok()) return old_path.error();
  Result<graph::Path> new_path = map_path(message.new_path, "newpath");
  if (!new_path.ok()) return new_path.error();

  std::optional<NodeId> waypoint;
  if (message.waypoint.has_value()) {
    const std::optional<NodeId> node = topology.node_of_dpid(*message.waypoint);
    if (!node.has_value())
      return make_error(Errc::kNotFound, "wp references unknown datapath");
    waypoint = *node;
  }

  return update::Instance::make(std::move(old_path).value(),
                                std::move(new_path).value(), waypoint);
}

void apply_controller_overrides(const RestUpdateMessage& message,
                                controller::ControllerConfig& config) {
  if (message.admission.has_value()) config.admission = *message.admission;
  if (message.admission_release.has_value())
    config.admission_release = *message.admission_release;
  if (message.shards.has_value()) config.shards = *message.shards;
  if (message.partition.has_value()) config.partition = *message.partition;
  if (message.exec.has_value()) config.exec = *message.exec;
  if (message.threads.has_value()) config.threads = *message.threads;
  if (message.speculate.has_value()) config.speculate = *message.speculate;
  if (message.steal.has_value()) config.steal = *message.steal;
  if (message.plan_cache.has_value()) config.plan_cache = *message.plan_cache;
  if (message.max_in_flight.has_value())
    config.max_in_flight = *message.max_in_flight;
  if (message.batch_frames.has_value())
    config.batch_frames = *message.batch_frames;
  if (message.batch_mode.has_value()) {
    config.batch_mode = *message.batch_mode;
    // The explicit mode retires the legacy alias: "off" must be able to
    // override a server-side batch_frames = true.
    config.batch_frames = false;
  }
  if (message.batch_window_ms.has_value())
    config.batch_window = sim::from_ms(*message.batch_window_ms);
  if (message.batch_bytes.has_value())
    config.batch_bytes = *message.batch_bytes;
  if (message.liveness_timeout_ms.has_value())
    config.liveness_timeout = sim::from_ms(*message.liveness_timeout_ms);
  if (message.failure_response.has_value())
    config.failure_response = *message.failure_response;
}

}  // namespace tsu::rest
