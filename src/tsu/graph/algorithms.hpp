// Graph algorithms used by the schedulers and the transient-state checker:
// reachability, cycle detection (including "cycle reachable from a source",
// the core of the weak-loop-freedom certificate), topological sort and
// BFS shortest paths.
#pragma once

#include <optional>
#include <vector>

#include "tsu/graph/graph.hpp"
#include "tsu/util/ids.hpp"

namespace tsu::graph {

// Set of nodes reachable from `source` (including `source`).
std::vector<bool> reachable_from(const Digraph& g, NodeId source);

// True if the whole graph is acyclic.
bool is_acyclic(const Digraph& g);

// True if some cycle is reachable from `source` (i.e. a walk starting at
// `source` can run forever). Equivalent to: the subgraph induced by nodes
// reachable from `source` contains a cycle.
bool cycle_reachable_from(const Digraph& g, NodeId source);

// Topological order, or nullopt if the graph has a cycle.
std::optional<std::vector<NodeId>> topological_order(const Digraph& g);

// Unweighted shortest path from `source` to `target` (inclusive), or empty
// vector if unreachable.
std::vector<NodeId> shortest_path(const Digraph& g, NodeId source,
                                  NodeId target);

// Shortest path that avoids node `banned` entirely; empty if none exists.
// Used by the waypoint-enforcement certificate: WPE is violated iff the
// adversarial union graph has an s->d path avoiding the waypoint.
std::vector<NodeId> shortest_path_avoiding(const Digraph& g, NodeId source,
                                           NodeId target, NodeId banned);

// True if `target` is reachable from `source`.
bool has_path(const Digraph& g, NodeId source, NodeId target);

}  // namespace tsu::graph
