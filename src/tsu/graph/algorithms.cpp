#include "tsu/graph/algorithms.hpp"

#include <algorithm>
#include <deque>

namespace tsu::graph {

std::vector<bool> reachable_from(const Digraph& g, NodeId source) {
  std::vector<bool> seen(g.node_count(), false);
  if (source >= g.node_count()) return seen;
  std::vector<NodeId> stack{source};
  seen[source] = true;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (const NodeId w : g.out_neighbors(v)) {
      if (!seen[w]) {
        seen[w] = true;
        stack.push_back(w);
      }
    }
  }
  return seen;
}

namespace {

enum class Color : unsigned char { kWhite, kGray, kBlack };

// Iterative DFS cycle detection from a set of roots; only explores nodes
// where `allowed` is true (empty allowed = all nodes).
bool has_cycle_dfs(const Digraph& g, const std::vector<NodeId>& roots,
                   const std::vector<bool>* allowed) {
  std::vector<Color> color(g.node_count(), Color::kWhite);
  // Explicit stack of (node, next-neighbor-index).
  std::vector<std::pair<NodeId, std::size_t>> stack;
  for (const NodeId root : roots) {
    if (color[root] != Color::kWhite) continue;
    if (allowed != nullptr && !(*allowed)[root]) continue;
    color[root] = Color::kGray;
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
      const NodeId v = stack.back().first;
      const auto nbrs = g.out_neighbors(v);
      bool descended = false;
      while (stack.back().second < nbrs.size()) {
        const NodeId w = nbrs[stack.back().second++];
        if (allowed != nullptr && !(*allowed)[w]) continue;
        if (color[w] == Color::kGray) return true;  // back edge
        if (color[w] == Color::kWhite) {
          color[w] = Color::kGray;
          stack.emplace_back(w, 0);
          descended = true;
          break;
        }
      }
      if (!descended) {
        color[v] = Color::kBlack;
        stack.pop_back();
      }
    }
  }
  return false;
}

}  // namespace

bool is_acyclic(const Digraph& g) {
  std::vector<NodeId> roots(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) roots[v] = v;
  return !has_cycle_dfs(g, roots, nullptr);
}

bool cycle_reachable_from(const Digraph& g, NodeId source) {
  if (source >= g.node_count()) return false;
  const std::vector<bool> allowed = reachable_from(g, source);
  return has_cycle_dfs(g, {source}, &allowed);
}

std::optional<std::vector<NodeId>> topological_order(const Digraph& g) {
  std::vector<std::size_t> indegree(g.node_count(), 0);
  for (NodeId v = 0; v < g.node_count(); ++v)
    for (const NodeId w : g.out_neighbors(v)) ++indegree[w];
  std::deque<NodeId> ready;
  for (NodeId v = 0; v < g.node_count(); ++v)
    if (indegree[v] == 0) ready.push_back(v);
  std::vector<NodeId> order;
  order.reserve(g.node_count());
  while (!ready.empty()) {
    const NodeId v = ready.front();
    ready.pop_front();
    order.push_back(v);
    for (const NodeId w : g.out_neighbors(v))
      if (--indegree[w] == 0) ready.push_back(w);
  }
  if (order.size() != g.node_count()) return std::nullopt;
  return order;
}

namespace {

std::vector<NodeId> bfs_path(const Digraph& g, NodeId source, NodeId target,
                             NodeId banned) {
  if (source >= g.node_count() || target >= g.node_count()) return {};
  if (source == banned || target == banned) return {};
  std::vector<NodeId> parent(g.node_count(), kInvalidNode);
  std::deque<NodeId> queue{source};
  std::vector<bool> seen(g.node_count(), false);
  seen[source] = true;
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    if (v == target) {
      std::vector<NodeId> path;
      for (NodeId cur = target; cur != kInvalidNode; cur = parent[cur])
        path.push_back(cur);
      std::reverse(path.begin(), path.end());
      return path;
    }
    for (const NodeId w : g.out_neighbors(v)) {
      if (w == banned || seen[w]) continue;
      seen[w] = true;
      parent[w] = v;
      queue.push_back(w);
    }
  }
  return {};
}

}  // namespace

std::vector<NodeId> shortest_path(const Digraph& g, NodeId source,
                                  NodeId target) {
  return bfs_path(g, source, target, kInvalidNode);
}

std::vector<NodeId> shortest_path_avoiding(const Digraph& g, NodeId source,
                                           NodeId target, NodeId banned) {
  return bfs_path(g, source, target, banned);
}

bool has_path(const Digraph& g, NodeId source, NodeId target) {
  if (source >= g.node_count() || target >= g.node_count()) return false;
  return reachable_from(g, source)[target];
}

}  // namespace tsu::graph
