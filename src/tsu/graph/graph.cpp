#include "tsu/graph/graph.hpp"

#include <algorithm>
#include <sstream>

namespace tsu::graph {

void Digraph::ensure_nodes(std::size_t count) {
  if (count > out_.size()) {
    out_.resize(count);
    in_.resize(count);
  }
}

NodeId Digraph::add_node() {
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<NodeId>(out_.size() - 1);
}

void Digraph::add_edge(NodeId from, NodeId to) {
  TSU_ASSERT_MSG(from < out_.size() && to < out_.size(),
                 "edge endpoint out of range");
  TSU_ASSERT_MSG(from != to, "self-loops are not supported");
  if (has_edge(from, to)) return;
  out_[from].push_back(to);
  in_[to].push_back(from);
  ++edge_count_;
}

bool Digraph::has_edge(NodeId from, NodeId to) const noexcept {
  if (from >= out_.size()) return false;
  const auto& nbrs = out_[from];
  return std::find(nbrs.begin(), nbrs.end(), to) != nbrs.end();
}

std::vector<Edge> Digraph::edges() const {
  std::vector<Edge> result;
  result.reserve(edge_count_);
  for (NodeId v = 0; v < out_.size(); ++v)
    for (const NodeId w : out_[v]) result.push_back(Edge{v, w});
  return result;
}

void Digraph::make_bidirectional() {
  const std::vector<Edge> snapshot = edges();
  for (const Edge& e : snapshot) add_edge(e.to, e.from);
}

std::string Digraph::to_dot() const {
  std::ostringstream out;
  out << "digraph G {\n";
  for (NodeId v = 0; v < out_.size(); ++v)
    for (const NodeId w : out_[v]) out << "  " << v << " -> " << w << ";\n";
  out << "}\n";
  return out.str();
}

}  // namespace tsu::graph
