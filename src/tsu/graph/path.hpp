// Simple-path utilities. A Path is an ordered node sequence; update
// instances carry an old and a new Path between the same endpoints.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "tsu/graph/graph.hpp"
#include "tsu/util/ids.hpp"
#include "tsu/util/status.hpp"

namespace tsu::graph {

using Path = std::vector<NodeId>;

// True if `path` is a simple (no repeated node) path; an empty path and a
// single node are considered simple.
bool is_simple(const Path& path);

// True if every consecutive pair of `path` is an edge of `g`.
bool is_path_of(const Digraph& g, const Path& path);

// Index of `v` in `path`, or nullopt.
std::optional<std::size_t> index_of(const Path& path, NodeId v);

bool contains(const Path& path, NodeId v);

// Sub-path [from_index, to_index] inclusive. Requires valid indices.
Path segment(const Path& path, std::size_t from_index, std::size_t to_index);

// Next hop of `v` along `path`, or nullopt if v is absent or the last node.
std::optional<NodeId> next_hop(const Path& path, NodeId v);

// Validates an (old, new) path pair as a routing-policy update: both simple,
// both non-trivial, same source and destination, and - if `waypoint` is set -
// the waypoint lies on both paths strictly between the endpoints.
Status validate_update_paths(const Path& old_path, const Path& new_path,
                             std::optional<NodeId> waypoint);

// "<1, 2, 3>" rendering used in logs and tables (mirrors the paper's
// angle-bracket route notation).
std::string to_string(const Path& path);

// Adds every consecutive pair of `path` as an edge of `g` (growing `g` as
// needed).
void add_path_edges(Digraph& g, const Path& path);

}  // namespace tsu::graph
