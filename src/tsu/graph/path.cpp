#include "tsu/graph/path.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace tsu::graph {

bool is_simple(const Path& path) {
  std::unordered_set<NodeId> seen;
  seen.reserve(path.size());
  for (const NodeId v : path)
    if (!seen.insert(v).second) return false;
  return true;
}

bool is_path_of(const Digraph& g, const Path& path) {
  for (std::size_t i = 0; i + 1 < path.size(); ++i)
    if (!g.has_edge(path[i], path[i + 1])) return false;
  return true;
}

std::optional<std::size_t> index_of(const Path& path, NodeId v) {
  const auto it = std::find(path.begin(), path.end(), v);
  if (it == path.end()) return std::nullopt;
  return static_cast<std::size_t>(it - path.begin());
}

bool contains(const Path& path, NodeId v) {
  return index_of(path, v).has_value();
}

Path segment(const Path& path, std::size_t from_index, std::size_t to_index) {
  TSU_ASSERT(from_index <= to_index && to_index < path.size());
  return Path(path.begin() + static_cast<std::ptrdiff_t>(from_index),
              path.begin() + static_cast<std::ptrdiff_t>(to_index) + 1);
}

std::optional<NodeId> next_hop(const Path& path, NodeId v) {
  const auto idx = index_of(path, v);
  if (!idx.has_value() || *idx + 1 >= path.size()) return std::nullopt;
  return path[*idx + 1];
}

Status validate_update_paths(const Path& old_path, const Path& new_path,
                             std::optional<NodeId> waypoint) {
  if (old_path.size() < 2 || new_path.size() < 2)
    return make_error(Errc::kInvalidArgument,
                      "paths must contain at least two nodes");
  if (!is_simple(old_path))
    return make_error(Errc::kInvalidArgument, "old path is not simple");
  if (!is_simple(new_path))
    return make_error(Errc::kInvalidArgument, "new path is not simple");
  if (old_path.front() != new_path.front())
    return make_error(Errc::kInvalidArgument,
                      "old and new path have different sources");
  if (old_path.back() != new_path.back())
    return make_error(Errc::kInvalidArgument,
                      "old and new path have different destinations");
  if (waypoint.has_value()) {
    const NodeId w = *waypoint;
    if (w == old_path.front() || w == old_path.back())
      return make_error(Errc::kInvalidArgument,
                        "waypoint must be strictly inside the paths");
    if (!contains(old_path, w))
      return make_error(Errc::kInvalidArgument, "waypoint not on old path");
    if (!contains(new_path, w))
      return make_error(Errc::kInvalidArgument, "waypoint not on new path");
  }
  return Status::ok_status();
}

std::string to_string(const Path& path) {
  std::ostringstream out;
  out << '<';
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i != 0) out << ", ";
    out << path[i];
  }
  out << '>';
  return out.str();
}

void add_path_edges(Digraph& g, const Path& path) {
  NodeId max_node = 0;
  for (const NodeId v : path) max_node = std::max(max_node, v);
  if (!path.empty()) g.ensure_nodes(static_cast<std::size_t>(max_node) + 1);
  for (std::size_t i = 0; i + 1 < path.size(); ++i)
    g.add_edge(path[i], path[i + 1]);
}

}  // namespace tsu::graph
