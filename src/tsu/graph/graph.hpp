// Directed graph over dense NodeIds.
//
// This is the substrate for topologies and for the forwarding-state analysis
// in src/tsu/update and src/tsu/verify. It is deliberately simple: adjacency
// lists of out-neighbours (with parallel in-neighbour lists for reverse
// traversals), no self-loops, no parallel edges.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "tsu/util/assert.hpp"
#include "tsu/util/ids.hpp"

namespace tsu::graph {

struct Edge {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;

  bool operator==(const Edge&) const = default;
};

class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(std::size_t node_count)
      : out_(node_count), in_(node_count) {}

  std::size_t node_count() const noexcept { return out_.size(); }
  std::size_t edge_count() const noexcept { return edge_count_; }

  // Grows the node set to at least `count` nodes.
  void ensure_nodes(std::size_t count);

  NodeId add_node();

  // Adds a directed edge; ignores duplicates, rejects self-loops and
  // out-of-range endpoints via assertion (graph construction is programmatic).
  void add_edge(NodeId from, NodeId to);

  bool has_edge(NodeId from, NodeId to) const noexcept;

  std::span<const NodeId> out_neighbors(NodeId v) const noexcept {
    TSU_ASSERT(v < out_.size());
    return out_[v];
  }
  std::span<const NodeId> in_neighbors(NodeId v) const noexcept {
    TSU_ASSERT(v < in_.size());
    return in_[v];
  }

  std::vector<Edge> edges() const;

  // Adds the reversed edge for every existing edge (makes links duplex,
  // which is how SDN topologies are usually modelled).
  void make_bidirectional();

  std::string to_dot() const;

 private:
  std::vector<std::vector<NodeId>> out_;
  std::vector<std::vector<NodeId>> in_;
  std::size_t edge_count_ = 0;
};

}  // namespace tsu::graph
