#include "tsu/verify/transient.hpp"

#include <sstream>

namespace tsu::verify {

namespace {

// One fault kind present anywhere in the schedule?
bool schedule_has(const sim::FaultSchedule& schedule, sim::FaultKind kind) {
  for (const sim::FaultEvent& e : schedule.events())
    if (e.kind == kind) return true;
  return false;
}

}  // namespace

std::string TransientCheckReport::to_string() const {
  if (ok) return "transient check: ok";
  std::ostringstream out;
  out << "transient check: " << issues.size() << " issue(s)";
  for (const std::string& issue : issues) out << "\n  - " << issue;
  return out.str();
}

TransientCheckReport check_fault_trace(const sim::FaultSchedule& schedule,
                                       const sim::FaultStats& stats,
                                       const dataplane::MonitorReport& traffic,
                                       std::size_t requests_submitted,
                                       std::size_t requests_completed) {
  TransientCheckReport report;
  const auto fail = [&report](std::string issue) {
    report.ok = false;
    report.issues.push_back(std::move(issue));
  };

  // Consistency must hold through every fault, recovery and rollback: the
  // monitor saw each packet's full walk, so any transient hole shows up
  // here as a concrete outcome count.
  if (traffic.bypassed != 0)
    fail(std::to_string(traffic.bypassed) +
         " packet(s) bypassed their waypoint during the fault trace");
  if (traffic.looped != 0)
    fail(std::to_string(traffic.looped) +
         " packet(s) looped during the fault trace");
  if (traffic.blackholed != 0)
    fail(std::to_string(traffic.blackholed) +
         " packet(s) blackholed at an in-service switch (committed flows "
         "must keep forwarding between fault and recovery)");

  // Liveness: faults may delay updates, never strand them.
  if (requests_completed != requests_submitted)
    fail("only " + std::to_string(requests_completed) + " of " +
         std::to_string(requests_submitted) +
         " submitted request(s) reached a terminal state");

  // Recovery accounting must line up with what was injected. A crash or a
  // link flap tears down the control session, so each forces a reconnect
  // resync; with no session-loss fault at all, no resync (and no rollback,
  // which only a liveness timeout can start) may fire.
  const bool session_loss =
      schedule_has(schedule, sim::FaultKind::kSwitchCrash) ||
      schedule_has(schedule, sim::FaultKind::kLinkDown);
  const std::size_t sessions_lost = stats.crashes + stats.link_downs;
  // At least one resync must have completed (a faulted switch's LAST
  // reconnect always resyncs to completion). Counts need not match one to
  // one: a second fault on the same switch abandons the in-flight resync,
  // and a link flap during a crash produces no hello of its own.
  if (session_loss && stats.resyncs == 0)
    fail("no resync completed despite " + std::to_string(sessions_lost) +
         " lost session(s)");
  if (!schedule.empty() && stats.crashes + stats.link_downs +
                                   stats.blackholes !=
                               schedule.size())
    fail("injected " + std::to_string(stats.crashes + stats.link_downs +
                                      stats.blackholes) +
         " fault(s) but the schedule holds " +
         std::to_string(schedule.size()));
  if (schedule.empty() && stats.any())
    fail("fault machinery engaged on an empty schedule");
  if (!session_loss && stats.resyncs != 0)
    fail("resync without a session-loss fault");
  if (schedule.empty() && stats.rollbacks != 0)
    fail("rollback without any fault");
  // Every clocked recovery belongs to a lost session, and every lost
  // session that was clocked recovered after the fault began.
  if (stats.recovery_ms.size() > sessions_lost)
    fail("more recoveries clocked than sessions lost");
  for (const double ms : stats.recovery_ms)
    if (ms <= 0)
      fail("non-positive recovery time clocked");

  return report;
}

}  // namespace tsu::verify
