#include "tsu/verify/property.hpp"

#include <sstream>

#include "tsu/util/rng.hpp"

namespace tsu::verify {

namespace {

struct JourneyResult {
  update::WalkOutcome outcome = update::WalkOutcome::kDelivered;
  bool visited_waypoint = false;
  std::vector<NodeId> trace;
};

// Walks from the source using `before` for the first `switch_hop` hops and
// `after` afterwards. A node may legitimately be revisited once when the
// revisit happens in the second phase and the first visit was in the first
// phase (its rule may have changed); a revisit within the same phase is a
// loop.
JourneyResult hybrid_walk(const update::Instance& inst,
                          const update::StateMask& before,
                          const update::StateMask& after,
                          std::size_t switch_hop) {
  JourneyResult result;
  const NodeId wp = inst.has_waypoint() ? *inst.waypoint() : kInvalidNode;
  std::vector<unsigned char> seen_phase1(inst.node_count(), 0);
  std::vector<unsigned char> seen_phase2(inst.node_count(), 0);

  NodeId v = inst.source();
  std::size_t hop = 0;
  while (true) {
    result.trace.push_back(v);
    if (v == wp) result.visited_waypoint = true;
    if (v == inst.destination()) {
      result.outcome = update::WalkOutcome::kDelivered;
      return result;
    }
    const bool phase2 = hop >= switch_hop;
    auto& seen = phase2 ? seen_phase2 : seen_phase1;
    if (seen[v] != 0) {
      result.outcome = update::WalkOutcome::kLoop;
      return result;
    }
    seen[v] = 1;
    const NodeId next =
        update::active_next(inst, phase2 ? after : before, v);
    if (next == kInvalidNode) {
      result.outcome = update::WalkOutcome::kBlackhole;
      return result;
    }
    v = next;
    ++hop;
  }
}

std::uint32_t journey_violations(const update::Instance& inst,
                                 const JourneyResult& journey,
                                 std::uint32_t properties) {
  std::uint32_t failed = 0;
  if ((properties & update::kWaypoint) != 0 && inst.has_waypoint() &&
      journey.outcome == update::WalkOutcome::kDelivered &&
      !journey.visited_waypoint)
    failed |= update::kWaypoint;
  if ((properties & update::kLoopFree) != 0 &&
      journey.outcome == update::WalkOutcome::kLoop)
    failed |= update::kLoopFree;
  if ((properties & update::kBlackholeFree) != 0 &&
      journey.outcome == update::WalkOutcome::kBlackhole)
    failed |= update::kBlackholeFree;
  return failed;
}

std::string render_subset(const std::vector<NodeId>& subset) {
  std::ostringstream out;
  out << "{";
  for (std::size_t i = 0; i < subset.size(); ++i) {
    if (i != 0) out << ",";
    out << subset[i];
  }
  out << "}";
  return out.str();
}

}  // namespace

std::string TwoSnapshotViolation::to_string() const {
  std::ostringstream out;
  out << "round " << (round_index + 1) << " violates "
      << update::property_name(violated) << " crossing "
      << render_subset(subset_before) << " -> " << render_subset(subset_after)
      << " at hop " << switch_hop;
  return out.str();
}

std::string TwoSnapshotReport::to_string() const {
  std::ostringstream out;
  out << (ok ? "OK" : "VIOLATED") << " (" << journeys_checked
      << " journeys, " << (exhaustive ? "exhaustive" : "sampled") << ")";
  for (const TwoSnapshotViolation& v : violations)
    out << "\n  " << v.to_string();
  return out.str();
}

TwoSnapshotReport check_two_snapshot(const update::Instance& inst,
                                     const update::Schedule& schedule,
                                     std::uint32_t properties,
                                     const TwoSnapshotOptions& options) {
  TwoSnapshotReport report;
  report.exhaustive = true;
  Rng rng(options.seed);

  update::StateMask applied = update::empty_state(inst);
  update::StateMask before = applied;
  update::StateMask after = applied;

  const auto subset_nodes = [](const update::Round& round,
                               std::uint64_t bits) {
    std::vector<NodeId> nodes;
    for (std::size_t i = 0; i < round.size(); ++i)
      if ((bits >> i) & 1ULL) nodes.push_back(round[i]);
    return nodes;
  };

  const auto try_pair = [&](std::size_t round_index,
                            const update::Round& round, std::uint64_t bits1,
                            std::uint64_t bits2) {
    for (std::size_t i = 0; i < round.size(); ++i) {
      before[round[i]] = applied[round[i]] || ((bits1 >> i) & 1ULL) != 0;
      after[round[i]] = applied[round[i]] || ((bits2 >> i) & 1ULL) != 0;
    }
    // Upper bound on useful switch hops: the walk can visit each node at
    // most twice.
    const std::size_t max_hops = 2 * inst.node_count() + 2;
    for (std::size_t k = 0; k <= max_hops; ++k) {
      const JourneyResult journey = hybrid_walk(inst, before, after, k);
      ++report.journeys_checked;
      const std::uint32_t failed =
          journey_violations(inst, journey, properties);
      if (failed != 0 &&
          report.violations.size() < options.max_violations) {
        TwoSnapshotViolation v;
        v.violated = failed;
        v.round_index = round_index;
        v.subset_before = subset_nodes(round, bits1);
        v.subset_after = subset_nodes(round, bits2);
        v.switch_hop = k;
        v.trace = journey.trace;
        report.violations.push_back(std::move(v));
      }
      if (k >= journey.trace.size()) break;  // later switches change nothing
    }
  };

  for (std::size_t r = 0; r < schedule.rounds.size(); ++r) {
    const update::Round& round = schedule.rounds[r];
    if (round.size() <= options.exhaustive_limit) {
      // Enumerate S1 ⊆ S2 pairs: each node is in neither, only S2, or both.
      const std::uint64_t subsets = 1ULL << round.size();
      for (std::uint64_t bits2 = 0; bits2 < subsets; ++bits2) {
        for (std::uint64_t bits1 = bits2;;
             bits1 = (bits1 - 1) & bits2) {  // sub-subsets of bits2
          try_pair(r, round, bits1, bits2);
          if (bits1 == 0) break;
        }
      }
    } else {
      report.exhaustive = false;
      for (std::size_t sample = 0; sample < options.samples; ++sample) {
        std::uint64_t bits2 = 0;
        std::uint64_t bits1 = 0;
        for (std::size_t i = 0; i < round.size() && i < 64; ++i) {
          if (rng.bernoulli(0.5)) {
            bits2 |= 1ULL << i;
            if (rng.bernoulli(0.5)) bits1 |= 1ULL << i;
          }
        }
        try_pair(r, round, bits1, bits2);
      }
    }
    for (const NodeId v : round) {
      applied[v] = true;
      before[v] = true;
      after[v] = true;
    }
  }

  report.ok = report.violations.empty();
  return report;
}

}  // namespace tsu::verify
