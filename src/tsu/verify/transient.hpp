// Transient safety oracle for fault traces.
//
// The model checker (checker.hpp) proves a SCHEDULE safe against install
// asynchrony; this layer judges an EXECUTED run that had faults injected
// (sim/faults.hpp). The executed trace carries its own evidence: the
// consistency monitor classified every packet walked between the first
// fault and the last recovery, and the engine refuses to drain while any
// update is unfinished. A fault trace passes when, across the whole run:
//
//   - no packet bypassed its waypoint, looped, or blackholed at an
//     in-service switch (transient consistency held through crash,
//     resync, retry and rollback alike);
//   - every submitted request reached a terminal state (completed, or
//     recorded as aborted after a rollback without resubmission) - faults
//     stalled nothing forever;
//   - recovery machinery engaged iff faults could require it (a crash or
//     link flap forces a resync; resyncs and rollbacks never fire without
//     a fault to cause them).
//
// Packets dropped at a switch taken down by fault injection
// (PacketOutcome::kFaultDropped) are OUTAGE, not inconsistency: a real
// network loses frames at a dead device too, and no update protocol can
// prevent it. The oracle reports them separately and does not fail on
// them.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "tsu/dataplane/monitor.hpp"
#include "tsu/sim/faults.hpp"

namespace tsu::verify {

struct TransientCheckReport {
  bool ok = true;
  std::vector<std::string> issues;  // human-readable, one per failure

  std::string to_string() const;
};

// Judges one executed fault trace: `schedule` is what was injected,
// `stats` what the engine observed (core/executor.hpp fills it),
// `traffic` the aggregated monitor report over every flow, and
// `requests_submitted` / `requests_completed` the request accounting
// (completed includes aborted-after-rollback records).
TransientCheckReport check_fault_trace(const sim::FaultSchedule& schedule,
                                       const sim::FaultStats& stats,
                                       const dataplane::MonitorReport& traffic,
                                       std::size_t requests_submitted,
                                       std::size_t requests_completed);

}  // namespace tsu::verify
