#include "tsu/verify/checker.hpp"

#include <sstream>

#include "tsu/graph/algorithms.hpp"
#include "tsu/util/rng.hpp"

namespace tsu::verify {

namespace {

// Property bits that fail on a single concrete state.
std::uint32_t violated_bits(const update::Instance& inst,
                            const update::StateMask& state,
                            std::uint32_t properties,
                            update::WalkResult* walk_out) {
  using update::WalkOutcome;
  std::uint32_t failed = 0;
  const update::WalkResult walk = update::walk_from_source(inst, state);
  if ((properties & update::kWaypoint) != 0 && inst.has_waypoint() &&
      walk.outcome == WalkOutcome::kDelivered && !walk.visited_waypoint)
    failed |= update::kWaypoint;
  if ((properties & update::kLoopFree) != 0 &&
      walk.outcome == WalkOutcome::kLoop)
    failed |= update::kLoopFree;
  if ((properties & update::kBlackholeFree) != 0 &&
      walk.outcome == WalkOutcome::kBlackhole)
    failed |= update::kBlackholeFree;
  if ((properties & update::kGlobalLoopFree) != 0 &&
      !graph::is_acyclic(update::active_graph(inst, state)))
    failed |= update::kGlobalLoopFree;
  if (walk_out != nullptr) *walk_out = walk;
  return failed;
}

}  // namespace

std::string Violation::to_string() const {
  std::ostringstream out;
  out << "round " << (round_index + 1) << " violates "
      << update::property_name(violated) << " with in-flight subset {";
  for (std::size_t i = 0; i < subset.size(); ++i) {
    if (i != 0) out << ",";
    out << subset[i];
  }
  out << "}: " << walk.to_string();
  return out.str();
}

std::string CheckReport::to_string() const {
  std::ostringstream out;
  out << (ok ? "OK" : "VIOLATED") << " (" << states_checked << " states, "
      << (exhaustive ? "exhaustive" : "sampled") << ")";
  for (const Violation& v : violations) out << "\n  " << v.to_string();
  return out.str();
}

bool state_ok(const update::Instance& inst, const update::StateMask& state,
              std::uint32_t properties) {
  return violated_bits(inst, state, properties, nullptr) == 0;
}

Violation minimize_violation(const update::Instance& inst,
                             const update::Schedule& schedule,
                             const Violation& violation,
                             std::uint32_t properties) {
  const update::StateMask applied =
      update::state_after_rounds(inst, schedule, violation.round_index);

  std::vector<NodeId> subset = violation.subset;
  update::StateMask state = applied;
  const auto violates = [&](const std::vector<NodeId>& nodes) {
    state = applied;
    for (const NodeId v : nodes) state[v] = true;
    return violated_bits(inst, state, properties, nullptr) != 0;
  };

  // Greedy deletion until locally minimal: every remaining node is needed.
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (std::size_t i = 0; i < subset.size(); ++i) {
      std::vector<NodeId> candidate = subset;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
      if (violates(candidate)) {
        subset = std::move(candidate);
        shrunk = true;
        break;
      }
    }
  }

  Violation minimal = violation;
  minimal.subset = subset;
  state = applied;
  for (const NodeId v : subset) state[v] = true;
  minimal.violated = violated_bits(inst, state, properties, &minimal.walk);
  return minimal;
}

CheckReport check_schedule(const update::Instance& inst,
                           const update::Schedule& schedule,
                           std::uint32_t properties,
                           const CheckOptions& options) {
  CheckReport report;
  report.exhaustive = true;

  update::StateMask applied = update::empty_state(inst);
  update::StateMask state = applied;
  Rng rng(options.monte_carlo_seed);

  const auto record = [&](std::size_t round_index,
                          const std::vector<NodeId>& round,
                          std::uint64_t bits, std::uint32_t failed,
                          update::WalkResult walk) {
    if (report.violations.size() >= options.max_violations) return;
    Violation v;
    v.violated = failed;
    v.round_index = round_index;
    for (std::size_t i = 0; i < round.size(); ++i)
      if ((bits >> i) & 1ULL) v.subset.push_back(round[i]);
    v.walk = std::move(walk);
    report.violations.push_back(std::move(v));
  };

  for (std::size_t r = 0; r < schedule.rounds.size(); ++r) {
    const update::Round& round = schedule.rounds[r];
    if (round.size() <= options.exhaustive_limit) {
      const std::uint64_t subsets = 1ULL << round.size();
      for (std::uint64_t bits = 0; bits < subsets; ++bits) {
        for (std::size_t i = 0; i < round.size(); ++i)
          state[round[i]] = applied[round[i]] || ((bits >> i) & 1ULL) != 0;
        ++report.states_checked;
        update::WalkResult walk;
        const std::uint32_t failed =
            violated_bits(inst, state, properties, &walk);
        if (failed != 0) record(r, round, bits, failed, std::move(walk));
      }
      // Restore `state` to `applied` for the next round's enumeration base.
      for (const NodeId v : round) state[v] = applied[v];
    } else {
      report.exhaustive = false;
      for (std::size_t sample = 0; sample < options.monte_carlo_samples;
           ++sample) {
        std::uint64_t bits = 0;
        for (std::size_t i = 0; i < round.size(); ++i) {
          const bool on = rng.bernoulli(0.5);
          if (i < 64 && on) bits |= 1ULL << i;
          state[round[i]] = applied[round[i]] || on;
        }
        ++report.states_checked;
        update::WalkResult walk;
        const std::uint32_t failed =
            violated_bits(inst, state, properties, &walk);
        if (failed != 0) record(r, round, bits, failed, std::move(walk));
      }
      for (const NodeId v : round) state[v] = applied[v];
    }
    // Commit the round.
    for (const NodeId v : round) {
      applied[v] = true;
      state[v] = true;
    }
  }

  if (options.check_final_state) {
    const update::StateMask final_state = update::full_state(inst);
    const update::WalkResult walk =
        update::walk_from_source(inst, final_state);
    const bool delivered =
        walk.outcome == update::WalkOutcome::kDelivered &&
        walk.trace == inst.new_path();
    if (!delivered) {
      Violation v;
      v.violated = properties;
      v.round_index =
          schedule.rounds.empty() ? 0 : schedule.rounds.size() - 1;
      v.walk = walk;
      report.violations.push_back(std::move(v));
    }
  }

  if (options.check_cleanup && !schedule.cleanup.empty()) {
    // Cleanup deletes rules; it is safe iff the deleted nodes are
    // unreachable from the source in the final state.
    const graph::Digraph final_graph =
        update::active_graph(inst, update::full_state(inst));
    const std::vector<bool> reach =
        graph::reachable_from(final_graph, inst.source());
    for (const NodeId v : schedule.cleanup) {
      if (v < reach.size() && reach[v]) {
        Violation viol;
        viol.violated = update::kBlackholeFree;
        viol.round_index = schedule.rounds.size();
        viol.subset = {v};
        report.violations.push_back(std::move(viol));
      }
    }
  }

  report.ok = report.violations.empty();
  return report;
}

}  // namespace tsu::verify
