// Transient-state model checker.
//
// Ground truth for the whole repository: every scheduler's output is checked
// here, per round, against the per-subset asynchrony semantics (DESIGN.md 2).
// For round R on top of applied set A, all 2^|R| states A ∪ S are enumerated
// (when |R| <= exhaustive_limit; Monte-Carlo sampling plus the sound
// union-graph certificate otherwise) and each is evaluated against the
// property mask. Violations carry the witness subset and the packet walk, so
// failures replay as concrete forwarding traces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tsu/update/forwarding.hpp"
#include "tsu/update/instance.hpp"
#include "tsu/update/oracle.hpp"
#include "tsu/update/schedule.hpp"

namespace tsu::verify {

struct Violation {
  std::uint32_t violated = 0;        // property bits that failed
  std::size_t round_index = 0;       // which round was in flight
  std::vector<NodeId> subset;        // in-flight updates that had landed
  update::WalkResult walk;           // witness packet walk (if applicable)

  std::string to_string() const;
};

struct CheckOptions {
  std::size_t exhaustive_limit = 20;
  std::size_t monte_carlo_samples = 4096;
  std::uint64_t monte_carlo_seed = 0xc0ffee123ULL;
  std::size_t max_violations = 8;  // stop collecting after this many
  bool check_final_state = true;   // full state must deliver along new path
  bool check_cleanup = true;       // cleanup nodes unreachable when deleted
};

struct CheckReport {
  bool ok = false;
  bool exhaustive = false;         // every round fully enumerated
  std::size_t states_checked = 0;
  std::vector<Violation> violations;

  std::string to_string() const;
};

// Verifies `schedule` on `inst` against `properties`.
CheckReport check_schedule(const update::Instance& inst,
                           const update::Schedule& schedule,
                           std::uint32_t properties,
                           const CheckOptions& options = {});

// Convenience: checks a one-round-per-call state sequence, i.e. evaluates a
// single concrete state against the property mask and reports the witness.
// Used by the dataplane monitor to classify live packet walks.
bool state_ok(const update::Instance& inst, const update::StateMask& state,
              std::uint32_t properties);

// Shrinks a violation's in-flight subset to a locally minimal one: removing
// any single remaining node makes the violation disappear. Greatly improves
// diagnostics ("exactly nodes {2, 9} racing causes the bypass"). The
// returned violation replays against the same schedule round.
Violation minimize_violation(const update::Instance& inst,
                             const update::Schedule& schedule,
                             const Violation& violation,
                             std::uint32_t properties);

}  // namespace tsu::verify
