// Extended adversarial analyses beyond the per-subset snapshot model.
//
// The per-subset checker (checker.hpp) evaluates each transient state as a
// frozen snapshot. A packet in flight, however, can *cross* a rule change:
// it traverses its first hops while subset S1 of the round has landed and
// its remaining hops after more updates (S2 ⊇ S1) have landed. The
// two-snapshot model enumerates exactly these journeys: all pairs
// S1 ⊆ S2 ⊆ R and all switch-over hops. Since updates within a round are
// monotone (rules only flip old -> new), a single switch-over already
// covers the worst case for the walk-based properties: any multi-switch
// journey is dominated hop-wise by some (S1, S2, k) journey in which every
// prefix hop uses a rule available in S1 and every suffix hop a rule
// available in S2.
//
// WayUp's region argument is per-hop local, so WPE survives this stronger
// adversary; the tests assert it and EXPERIMENTS.md records it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tsu/update/instance.hpp"
#include "tsu/update/schedule.hpp"
#include "tsu/verify/checker.hpp"

namespace tsu::verify {

struct TwoSnapshotViolation {
  std::uint32_t violated = 0;
  std::size_t round_index = 0;
  std::vector<NodeId> subset_before;  // S1
  std::vector<NodeId> subset_after;   // S2
  std::size_t switch_hop = 0;
  std::vector<NodeId> trace;

  std::string to_string() const;
};

struct TwoSnapshotOptions {
  // Rounds larger than this are sampled instead of enumerated (the pair
  // enumeration costs 3^|R|).
  std::size_t exhaustive_limit = 12;
  std::size_t samples = 2048;
  std::uint64_t seed = 0x2e8bfc1dULL;
  std::size_t max_violations = 8;
};

struct TwoSnapshotReport {
  bool ok = false;
  bool exhaustive = false;
  std::size_t journeys_checked = 0;
  std::vector<TwoSnapshotViolation> violations;

  std::string to_string() const;
};

// Checks walk-based properties (kWaypoint, kLoopFree, kBlackholeFree) under
// the two-snapshot in-flight adversary. kGlobalLoopFree is snapshot-based by
// definition and is ignored here.
TwoSnapshotReport check_two_snapshot(const update::Instance& inst,
                                     const update::Schedule& schedule,
                                     std::uint32_t properties,
                                     const TwoSnapshotOptions& options = {});

}  // namespace tsu::verify
