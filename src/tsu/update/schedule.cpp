#include "tsu/update/schedule.hpp"

#include <sstream>

#include "tsu/update/forwarding.hpp"

namespace tsu::update {

std::size_t Schedule::touched_count() const {
  std::size_t count = 0;
  for (const Round& round : rounds) count += round.size();
  return count;
}

std::string Schedule::to_string() const {
  std::ostringstream out;
  out << algorithm << " [";
  for (std::size_t r = 0; r < rounds.size(); ++r) {
    if (r != 0) out << " | ";
    out << "R" << (r + 1) << ":{";
    for (std::size_t i = 0; i < rounds[r].size(); ++i) {
      if (i != 0) out << ",";
      out << rounds[r][i];
    }
    out << "}";
  }
  out << "]";
  if (!cleanup.empty()) {
    out << " cleanup:{";
    for (std::size_t i = 0; i < cleanup.size(); ++i) {
      if (i != 0) out << ",";
      out << cleanup[i];
    }
    out << "}";
  }
  return out.str();
}

Status validate_schedule(const Instance& inst, const Schedule& schedule) {
  std::vector<int> seen(inst.node_count(), 0);
  for (const Round& round : schedule.rounds) {
    if (round.empty())
      return make_error(Errc::kInvalidArgument, "schedule has an empty round");
    for (const NodeId v : round) {
      if (v >= inst.node_count() || !inst.is_touched(v))
        return make_error(Errc::kInvalidArgument,
                          "scheduled node " + std::to_string(v) +
                              " is not a touched node");
      if (++seen[v] > 1)
        return make_error(Errc::kInvalidArgument,
                          "node " + std::to_string(v) +
                              " scheduled more than once");
    }
  }
  for (const NodeId v : inst.touched()) {
    if (seen[v] == 0)
      return make_error(Errc::kInvalidArgument,
                        "touched node " + std::to_string(v) +
                            " missing from schedule");
  }
  for (const NodeId v : schedule.cleanup) {
    if (v >= inst.node_count() || inst.role(v) != NodeRole::kOldOnly)
      return make_error(Errc::kInvalidArgument,
                        "cleanup node " + std::to_string(v) +
                            " is not old-only");
  }
  return Status::ok_status();
}

StateMask state_after_rounds(const Instance& inst, const Schedule& schedule,
                             std::size_t upto_round) {
  StateMask state = empty_state(inst);
  const std::size_t limit = std::min(upto_round, schedule.rounds.size());
  for (std::size_t r = 0; r < limit; ++r)
    for (const NodeId v : schedule.rounds[r]) state[v] = true;
  return state;
}

}  // namespace tsu::update
