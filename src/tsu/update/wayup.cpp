// WayUp: constant-round waypoint-enforcing update scheduler.
//
// Reconstruction of the WayUp algorithm the paper executes (Ludwig, Rost,
// Foucard, Schmid, "Good Network Updates for Bad Packets", HotNets'14; the
// demo paper cites it as [5] and inherits its guarantee "waypoint
// enforcement"). The cited paper is not restated in the demo, so the round
// structure below is derived from first principles and machine-checked by
// tests/update_property_test.cpp against the exhaustive transient-state
// checker on thousands of random instances.
//
// Notation (DESIGN.md 3.2): s/d endpoints, w waypoint; O1/N1 = old/new path
// up to and including w; O2/N2 = from w on. Conflict sets
//   X = (N1 ∩ O2) \ {w}   and   Y = (O1 ∩ N2) \ {w}.
//
// Rounds:
//   R1  new-only nodes. Traffic still runs entirely on the old path and no
//       old-path node forwards into a new-only node yet, so these installs
//       are invisible: every subset state forwards exactly like the initial
//       state. Safe.
//   R2  (O2 ∩ P_new) \ {w}: every node here lies strictly behind w on the
//       old path, and - because no O1 node has been touched - a packet can
//       only arrive at it *after* traversing w. Whatever subset of R2 has
//       landed, a delivered packet already passed the waypoint: no bypass.
//       (X ⊆ R2 is the point: X nodes are re-aimed at the new prefix, i.e.
//       towards w, *before* any traffic can enter the new prefix.)
//   R3  O1 ∩ N1 (includes s and w). In the region before w, every active
//       edge now leads towards w: old rules follow O1, new rules follow N1
//       whose members are new-only (R1), X (R2) or in-round O1∩N1 nodes.
//       A packet therefore cannot leave the before-w region except at w,
//       in any subset state - so it cannot be delivered while skipping w.
//       Behind w nothing changed since R2, where delivery was already
//       waypoint-clean. Transient *loops* are possible here; WayUp, like
//       its namesake, trades loop freedom for waypoint enforcement (the
//       two are not always jointly satisfiable - see the twophase comment
//       and the SIGMETRICS'16 impossibility).
//   R4  Y. After R3 the live path is s -N1-> w, so a packet reaches a Y
//       node only after w; flipping Y onto the new suffix can no longer
//       skip the waypoint. (Updating Y any earlier is the classic bypass:
//       Y sits before w on the old path.)
//
// Empty rounds are dropped, so the schedule has at most 4 rounds plus the
// optional cleanup of old-only rules, which runs when the new path is fully
// live and old-only nodes are unreachable.
#include "tsu/update/schedulers.hpp"

#include <algorithm>

namespace tsu::update {

Result<Schedule> plan_wayup(const Instance& inst,
                            const SchedulerOptions& options) {
  if (!inst.has_waypoint())
    return make_error(Errc::kFailedPrecondition, "wayup requires a waypoint");

  const NodeId w = *inst.waypoint();
  const std::size_t w_old = *inst.old_pos(w);
  const std::size_t w_new = *inst.new_pos(w);

  Round r1_installs;
  Round r2_behind_waypoint;
  Round r3_prefix;
  Round r4_y;
  for (const NodeId v : inst.touched()) {
    if (inst.role(v) == NodeRole::kNewOnly) {
      r1_installs.push_back(v);
      continue;
    }
    // v is on both paths (old-only nodes are never touched).
    if (v == w) {
      r3_prefix.push_back(v);
      continue;
    }
    const std::size_t pos_old = *inst.old_pos(v);
    const std::size_t pos_new = *inst.new_pos(v);
    if (pos_old > w_old) {
      r2_behind_waypoint.push_back(v);  // includes X (pos_new < w_new)
    } else if (pos_new < w_new) {
      r3_prefix.push_back(v);  // O1 ∩ N1, includes s
    } else {
      r4_y.push_back(v);  // Y = O1 ∩ N2
    }
  }

  Schedule schedule;
  schedule.algorithm = "wayup";
  for (Round* round : {&r1_installs, &r2_behind_waypoint, &r3_prefix, &r4_y})
    if (!round->empty()) schedule.rounds.push_back(std::move(*round));
  if (options.with_cleanup) schedule.cleanup = inst.old_only_nodes();
  return schedule;
}

}  // namespace tsu::update
