#include "tsu/update/forwarding.hpp"

#include <sstream>

namespace tsu::update {

StateMask empty_state(const Instance& inst) {
  return StateMask(inst.node_count(), false);
}

StateMask full_state(const Instance& inst) {
  StateMask state(inst.node_count(), false);
  for (const NodeId v : inst.touched()) state[v] = true;
  return state;
}

NodeId active_next(const Instance& inst, const StateMask& state, NodeId v) {
  TSU_ASSERT(v < inst.node_count());
  if (inst.on_new(v) && state[v]) return inst.new_next(v);
  if (inst.on_old(v)) return inst.old_next(v);
  return kInvalidNode;
}

const char* to_string(WalkOutcome outcome) noexcept {
  switch (outcome) {
    case WalkOutcome::kDelivered: return "delivered";
    case WalkOutcome::kBlackhole: return "blackhole";
    case WalkOutcome::kLoop: return "loop";
  }
  return "?";
}

std::string WalkResult::to_string() const {
  std::ostringstream out;
  out << update::to_string(outcome) << " trace=<";
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i != 0) out << ",";
    out << trace[i];
  }
  out << ">" << (visited_waypoint ? " via-wp" : "");
  return out.str();
}

WalkResult walk_from_source(const Instance& inst, const StateMask& state) {
  TSU_ASSERT(state.size() == inst.node_count());
  WalkResult result;
  std::vector<bool> visited(inst.node_count(), false);
  const NodeId wp =
      inst.has_waypoint() ? *inst.waypoint() : kInvalidNode;

  NodeId v = inst.source();
  while (true) {
    result.trace.push_back(v);
    if (v == wp) result.visited_waypoint = true;
    if (v == inst.destination()) {
      result.outcome = WalkOutcome::kDelivered;
      return result;
    }
    if (visited[v]) {
      result.outcome = WalkOutcome::kLoop;
      return result;
    }
    visited[v] = true;
    const NodeId next = active_next(inst, state, v);
    if (next == kInvalidNode) {
      result.outcome = WalkOutcome::kBlackhole;
      return result;
    }
    v = next;
  }
}

graph::Digraph active_graph(const Instance& inst, const StateMask& state) {
  graph::Digraph g(inst.node_count());
  for (NodeId v = 0; v < inst.node_count(); ++v) {
    const NodeId next = active_next(inst, state, v);
    if (next != kInvalidNode) g.add_edge(v, next);
  }
  return g;
}

graph::Digraph union_graph(const Instance& inst, const StateMask& applied,
                           const std::vector<NodeId>& round) {
  TSU_ASSERT(applied.size() == inst.node_count());
  graph::Digraph g(inst.node_count());
  StateMask in_round(inst.node_count(), false);
  for (const NodeId v : round) in_round[v] = true;

  for (NodeId v = 0; v < inst.node_count(); ++v) {
    if (v == inst.destination()) continue;
    const bool updated = inst.on_new(v) && applied[v];
    if (updated) {
      g.add_edge(v, inst.new_next(v));
      continue;
    }
    if (in_round[v]) {
      // Both rules may be observed while the round is in flight.
      if (inst.on_new(v)) g.add_edge(v, inst.new_next(v));
      if (inst.on_old(v)) g.add_edge(v, inst.old_next(v));
      continue;
    }
    if (inst.on_old(v)) g.add_edge(v, inst.old_next(v));
  }
  return g;
}

}  // namespace tsu::update
