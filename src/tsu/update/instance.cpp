#include "tsu/update/instance.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

namespace tsu::update {

namespace {
constexpr std::size_t kNoPos = std::numeric_limits<std::size_t>::max();
}

std::uint64_t Instance::identity_digest() const noexcept {
  // FNV-1a over (old path, new path, waypoint), length-prefixed so path
  // boundaries cannot alias.
  constexpr std::uint64_t kOffset = 1469598103934665603ULL;
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  std::uint64_t digest = kOffset;
  const auto mix = [&digest](std::uint64_t value) {
    digest ^= value;
    digest *= kPrime;
  };
  mix(old_.size());
  for (const NodeId v : old_) mix(v);
  mix(new_.size());
  for (const NodeId v : new_) mix(v);
  mix(waypoint_.has_value() ? static_cast<std::uint64_t>(*waypoint_) + 1 : 0);
  return digest;
}

const char* to_string(NodeRole role) noexcept {
  switch (role) {
    case NodeRole::kUntouched: return "untouched";
    case NodeRole::kOldOnly: return "old-only";
    case NodeRole::kNewOnly: return "new-only";
    case NodeRole::kBoth: return "both";
  }
  return "?";
}

Result<Instance> Instance::make(graph::Path old_path, graph::Path new_path,
                                std::optional<NodeId> waypoint) {
  if (Status s = graph::validate_update_paths(old_path, new_path, waypoint);
      !s.ok())
    return s.error();

  Instance inst;
  inst.old_ = std::move(old_path);
  inst.new_ = std::move(new_path);
  inst.waypoint_ = waypoint;

  NodeId max_node = 0;
  for (const NodeId v : inst.old_) max_node = std::max(max_node, v);
  for (const NodeId v : inst.new_) max_node = std::max(max_node, v);
  inst.node_count_ = static_cast<std::size_t>(max_node) + 1;

  inst.old_next_.assign(inst.node_count_, kInvalidNode);
  inst.new_next_.assign(inst.node_count_, kInvalidNode);
  inst.old_pos_.assign(inst.node_count_, kNoPos);
  inst.new_pos_.assign(inst.node_count_, kNoPos);
  inst.role_.assign(inst.node_count_, NodeRole::kUntouched);
  inst.touched_mask_.assign(inst.node_count_, false);

  for (std::size_t i = 0; i < inst.old_.size(); ++i) {
    const NodeId v = inst.old_[i];
    inst.old_pos_[v] = i;
    if (i + 1 < inst.old_.size()) inst.old_next_[v] = inst.old_[i + 1];
  }
  for (std::size_t i = 0; i < inst.new_.size(); ++i) {
    const NodeId v = inst.new_[i];
    inst.new_pos_[v] = i;
    if (i + 1 < inst.new_.size()) inst.new_next_[v] = inst.new_[i + 1];
  }

  for (NodeId v = 0; v < inst.node_count_; ++v) {
    const bool on_old = inst.old_pos_[v] != kNoPos;
    const bool on_new = inst.new_pos_[v] != kNoPos;
    if (on_old && on_new)
      inst.role_[v] = NodeRole::kBoth;
    else if (on_old)
      inst.role_[v] = NodeRole::kOldOnly;
    else if (on_new)
      inst.role_[v] = NodeRole::kNewOnly;
  }

  // A node is "touched" when its active rule must change: it is on the new
  // path (so it ends up with its new next-hop), it is not the destination,
  // and either it has no old rule (install) or the next-hop differs.
  const NodeId destination = inst.old_.back();
  for (const NodeId v : inst.new_) {
    if (v == destination) continue;
    if (inst.old_next_[v] != inst.new_next_[v]) {
      inst.touched_mask_[v] = true;
      inst.touched_.push_back(v);
    }
  }

  return inst;
}

NodeRole Instance::role(NodeId v) const noexcept {
  return v < role_.size() ? role_[v] : NodeRole::kUntouched;
}

bool Instance::on_old(NodeId v) const noexcept {
  return v < old_pos_.size() && old_pos_[v] != kNoPos;
}

bool Instance::on_new(NodeId v) const noexcept {
  return v < new_pos_.size() && new_pos_[v] != kNoPos;
}

NodeId Instance::old_next(NodeId v) const noexcept {
  return v < old_next_.size() ? old_next_[v] : kInvalidNode;
}

NodeId Instance::new_next(NodeId v) const noexcept {
  return v < new_next_.size() ? new_next_[v] : kInvalidNode;
}

bool Instance::is_touched(NodeId v) const noexcept {
  return v < touched_mask_.size() && touched_mask_[v];
}

std::vector<NodeId> Instance::old_only_nodes() const {
  std::vector<NodeId> result;
  for (const NodeId v : old_)
    if (role(v) == NodeRole::kOldOnly) result.push_back(v);
  return result;
}

std::vector<NodeId> Instance::set_x() const {
  std::vector<NodeId> result;
  if (!waypoint_.has_value()) return result;
  const NodeId w = *waypoint_;
  const std::size_t w_old = *old_pos(w);
  const std::size_t w_new = *new_pos(w);
  // X = nodes strictly before w on the new path and strictly after w on the
  // old path.
  for (std::size_t i = 0; i < w_new; ++i) {
    const NodeId v = new_[i];
    const auto po = old_pos(v);
    if (po.has_value() && *po > w_old) result.push_back(v);
  }
  return result;
}

std::vector<NodeId> Instance::set_y() const {
  std::vector<NodeId> result;
  if (!waypoint_.has_value()) return result;
  const NodeId w = *waypoint_;
  const std::size_t w_old = *old_pos(w);
  const std::size_t w_new = *new_pos(w);
  // Y = nodes strictly before w on the old path and strictly after w on the
  // new path.
  for (std::size_t i = w_new + 1; i < new_.size(); ++i) {
    const NodeId v = new_[i];
    const auto po = old_pos(v);
    if (po.has_value() && *po < w_old) result.push_back(v);
  }
  return result;
}

std::optional<std::size_t> Instance::old_pos(NodeId v) const noexcept {
  if (v >= old_pos_.size() || old_pos_[v] == kNoPos) return std::nullopt;
  return old_pos_[v];
}

std::optional<std::size_t> Instance::new_pos(NodeId v) const noexcept {
  if (v >= new_pos_.size() || new_pos_[v] == kNoPos) return std::nullopt;
  return new_pos_[v];
}

std::string Instance::to_string() const {
  std::ostringstream out;
  out << "old=" << graph::to_string(old_) << " new=" << graph::to_string(new_);
  if (waypoint_.has_value()) out << " wp=" << *waypoint_;
  return out.str();
}

}  // namespace tsu::update
