// Forwarding semantics of a transient state.
//
// A transient state is the set of touched nodes whose new rule has already
// taken effect. The active rule of a node is then:
//   - its new next-hop, if the node is on the new path and updated,
//   - else its old next-hop, if the node is on the old path,
//   - else no rule (packets reaching it are dropped - a blackhole).
// A packet injected at the source performs a deterministic walk over active
// rules; the walk terminates at the destination, at a rule-less node, or
// when it revisits a node (a forwarding loop).
#pragma once

#include <string>
#include <vector>

#include "tsu/graph/graph.hpp"
#include "tsu/update/instance.hpp"
#include "tsu/util/ids.hpp"

namespace tsu::update {

// Set of updated nodes, indexed by NodeId (size = instance.node_count()).
using StateMask = std::vector<bool>;

StateMask empty_state(const Instance& inst);
StateMask full_state(const Instance& inst);

// Active next hop of `v` under `state`; kInvalidNode when v has no rule.
NodeId active_next(const Instance& inst, const StateMask& state, NodeId v);

enum class WalkOutcome : unsigned char {
  kDelivered,  // reached the destination
  kBlackhole,  // reached a node with no active rule
  kLoop,       // revisited a node
};

const char* to_string(WalkOutcome outcome) noexcept;

struct WalkResult {
  WalkOutcome outcome = WalkOutcome::kDelivered;
  bool visited_waypoint = false;   // meaningful only if inst.has_waypoint()
  std::vector<NodeId> trace;       // nodes in visit order, starting at source

  std::string to_string() const;
};

// Deterministic walk from the instance source under `state`.
WalkResult walk_from_source(const Instance& inst, const StateMask& state);

// The functional graph of all active rules under `state` (for strong
// loop-freedom checks). Nodes: [0, inst.node_count()).
graph::Digraph active_graph(const Instance& inst, const StateMask& state);

// Adversarial union graph for a round: nodes in `applied` contribute their
// new rule, nodes in `round` contribute *both* rules (the adversary decides
// when each lands), all other old-path nodes contribute their old rule.
// Every per-subset active graph is a subgraph of this union graph, which is
// what makes it a sound safety certificate (see oracle.hpp).
graph::Digraph union_graph(const Instance& inst, const StateMask& applied,
                           const std::vector<NodeId>& round);

}  // namespace tsu::update
