// Schedule post-optimization.
//
// compress_schedule: greedily merges adjacent rounds whenever the merged
// round still passes the per-subset safety oracle for the given property
// mask. Sound for any scheduler's output (the oracle re-proves each merged
// round from its actual applied prefix) and useful because constant-round
// algorithms like WayUp pay for hazards that a concrete instance may not
// have - e.g. with an empty X set, WayUp's rounds 2 and 3 merge.
//
// merge_policies: interleaves the per-policy schedules of several
// *independent* flows into one global round sequence such that
//   - each policy's own round order is preserved, and
//   - within one global round, each switch is touched by at most one
//     policy (the "can't touch this" discipline of the paper's reference
//     [1], DSN'16: concurrent touches of one switch are the dangerous
//     interleavings).
// Per-policy transient consistency is preserved because every policy's
// rounds still execute in order, barrier-separated; the merge only
// parallelizes across policies.
#pragma once

#include <cstdint>
#include <vector>

#include "tsu/update/instance.hpp"
#include "tsu/update/oracle.hpp"
#include "tsu/update/schedule.hpp"
#include "tsu/util/status.hpp"

namespace tsu::update {

// Returns a schedule with the same per-node semantics but possibly fewer
// rounds; `properties` is the mask the schedule must keep satisfying.
Schedule compress_schedule(const Instance& inst, const Schedule& schedule,
                           std::uint32_t properties,
                           const OracleOptions& oracle = {});

struct MergedRound {
  // (policy index, node) pairs updated in this global round.
  std::vector<std::pair<std::size_t, NodeId>> ops;
};

struct MergedSchedule {
  std::vector<MergedRound> rounds;

  std::size_t round_count() const noexcept { return rounds.size(); }
};

// Merges per-policy schedules; policies[i] and schedules[i] correspond.
// Fails if the inputs are inconsistent.
Result<MergedSchedule> merge_policies(
    const std::vector<const Instance*>& policies,
    const std::vector<const Schedule*>& schedules);

}  // namespace tsu::update
