// Peacock: weak-loop-freedom scheduler.
//
// Reconstruction of the Peacock algorithm the paper executes (Ludwig,
// Marcinkowski, Schmid, "Scheduling Loop-Free Network Updates: It's Good to
// Relax!", PODC'15; cited as [4] with the guarantee "weak loop freedom").
// The demo does not restate the algorithm, so we reproduce its structure -
// relaxed loop freedom, forward edges together, backward edges retired over
// few rounds - and machine-check every schedule against the exhaustive
// transient-state checker (tests/update_property_test.cpp).
//
// Terminology: relabel nodes by their position on the old path. For a
// touched node u on both paths, its *effective target* t(u) is the first
// old-path node reached from u along the new path (new-only chain nodes in
// between are transparent: they are installed before any traffic can reach
// them). The move at u is FORWARD if t(u) lies later on the old path than
// u, BACKWARD otherwise.
//
// Rounds:
//   R1  new-only installs. No old-path rule has changed, so these nodes are
//       unreachable in every subset state: trivially safe.
//   R2  all FORWARD nodes at once. In any subset state every active edge
//       increases the old-path position (old rules by +1; updated rules
//       jump, possibly through a new-only chain, to a strictly later
//       old-path node; chains of still-old backward nodes can only be
//       entered through their head, which is not updated). A cycle would
//       need a position-decreasing edge - there is none. This round is even
//       strongly loop-free.
//   R3+ BACKWARD nodes, retired greedily: candidates off the current live
//       walk first (flipping a node the walk never visits cannot change the
//       walk - always safe), then on-walk candidates from the destination
//       side backwards; each addition is admitted only if the grown round
//       passes the WLF safety oracle (exhaustive for small rounds, sound
//       union-graph certificate for large ones). If no candidate can be
//       placed, an exhaustive search over round choices takes over (small
//       instances; PODC'15 guarantees WLF schedules always exist).
#include "tsu/update/schedulers.hpp"

#include <algorithm>

#include "tsu/util/log.hpp"

namespace tsu::update {

namespace {

// First old-path node reached from `u` along the new path (u itself must be
// on both paths). Always exists because the destination is on both paths.
NodeId effective_target(const Instance& inst, NodeId u) {
  NodeId v = inst.new_next(u);
  while (v != kInvalidNode && !inst.on_old(v)) v = inst.new_next(v);
  TSU_ASSERT_MSG(v != kInvalidNode, "new path must rejoin the old path at d");
  return v;
}

}  // namespace

Result<Schedule> plan_peacock(const Instance& inst,
                              const PeacockOptions& options) {
  Schedule schedule;
  schedule.algorithm = "peacock";

  Round installs;
  Round forward;
  std::vector<NodeId> backward;
  for (const NodeId v : inst.touched()) {
    if (inst.role(v) == NodeRole::kNewOnly) {
      installs.push_back(v);
      continue;
    }
    const NodeId target = effective_target(inst, v);
    const std::size_t pos_v = *inst.old_pos(v);
    const std::size_t pos_t = *inst.old_pos(target);
    (pos_t > pos_v ? forward : backward).push_back(v);
  }

  if (!installs.empty()) schedule.rounds.push_back(std::move(installs));
  if (!forward.empty()) schedule.rounds.push_back(std::move(forward));

  StateMask applied = state_after_rounds(inst, schedule, schedule.rounds.size());

  const std::uint32_t property = kPeacockGuarantee;
  while (!backward.empty()) {
    // Order candidates: off-walk nodes first, then on-walk nodes from the
    // destination side backwards.
    const WalkResult walk = walk_from_source(inst, applied);
    std::vector<std::size_t> walk_pos(inst.node_count(), 0);
    std::vector<bool> on_walk(inst.node_count(), false);
    for (std::size_t i = 0; i < walk.trace.size(); ++i) {
      walk_pos[walk.trace[i]] = i;
      on_walk[walk.trace[i]] = true;
    }
    std::vector<NodeId> candidates = backward;
    std::sort(candidates.begin(), candidates.end(),
              [&](NodeId a, NodeId b) {
                if (on_walk[a] != on_walk[b]) return !on_walk[a];
                if (on_walk[a]) return walk_pos[a] > walk_pos[b];
                return a < b;
              });

    Round round;
    for (const NodeId u : candidates) {
      round.push_back(u);
      if (!round_safe(inst, applied, round, property, options.base.oracle))
        round.pop_back();
    }

    if (round.empty()) {
      // Greedy dead end; delegate the remaining nodes to exhaustive search.
      if (!options.search_fallback ||
          backward.size() > options.search_node_limit)
        return make_error(Errc::kExhausted,
                          "peacock greedy could not place any backward node");
      Result<std::vector<Round>> rest =
          search_rounds(inst, applied, backward, property,
                        /*max_rounds=*/backward.size(), options.base.oracle);
      if (!rest.ok()) return rest.error();
      for (Round& r : rest.value()) schedule.rounds.push_back(std::move(r));
      backward.clear();
      break;
    }

    for (const NodeId u : round) {
      applied[u] = true;
      backward.erase(std::find(backward.begin(), backward.end(), u));
    }
    schedule.rounds.push_back(std::move(round));
  }

  if (options.base.with_cleanup) schedule.cleanup = inst.old_only_nodes();
  return schedule;
}

}  // namespace tsu::update
