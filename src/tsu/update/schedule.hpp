// Update schedules: the output of every scheduler and the input of the
// executor and the transient-state checker.
//
// A schedule partitions the instance's touched nodes into ordered rounds.
// Within a round, FlowMods land in arbitrary order (the asynchronous control
// channel); rounds are separated by OpenFlow barriers, exactly as in the
// paper's controller. An optional cleanup round deletes stale rules of
// old-only nodes after the last semantic round.
#pragma once

#include <string>
#include <vector>

#include "tsu/update/forwarding.hpp"
#include "tsu/update/instance.hpp"
#include "tsu/util/ids.hpp"
#include "tsu/util/status.hpp"

namespace tsu::update {

using Round = std::vector<NodeId>;

struct Schedule {
  std::vector<Round> rounds;
  // Old-only nodes whose rules are deleted after the last round (not part of
  // the consistency argument; checked separately for unreachability).
  Round cleanup;
  // Name of the algorithm that produced the schedule (for tables/logs).
  std::string algorithm;

  std::size_t round_count() const noexcept { return rounds.size(); }
  std::size_t touched_count() const;

  std::string to_string() const;
};

// Checks that `schedule.rounds` is a partition of `inst.touched()` (every
// touched node in exactly one round, nothing else scheduled) and that the
// cleanup round only contains old-only nodes.
Status validate_schedule(const Instance& inst, const Schedule& schedule);

// Convenience: the state mask after applying rounds [0, upto_round).
StateMask state_after_rounds(const Instance& inst, const Schedule& schedule,
                             std::size_t upto_round);

}  // namespace tsu::update
