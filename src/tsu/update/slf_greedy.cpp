// Strong-loop-freedom greedy scheduler (baseline).
//
// Per round, nodes are admitted while the adversarial union graph stays
// acyclic. For global (strong) loop freedom the union-graph test is *exact*:
// a cycle in the union graph visits each node at most once, so choosing, for
// every in-round node on the cycle, exactly the rule the cycle uses yields a
// concrete subset state realizing the loop; conversely every subset state's
// graph is a subgraph of the union graph.
//
// On "reversal" instances (new path traverses the old path's interior in
// reverse) only one node can move per round, so the schedule degenerates to
// Θ(n) rounds - the lower-bound family PODC'15 contrasts Peacock against;
// bench_rounds_scaling regenerates that curve.
#include "tsu/update/schedulers.hpp"

#include <algorithm>

#include "tsu/graph/algorithms.hpp"

namespace tsu::update {

Result<Schedule> plan_slf_greedy(const Instance& inst,
                                 const SchedulerOptions& options) {
  Schedule schedule;
  schedule.algorithm = "slf-greedy";

  std::vector<NodeId> pending = inst.touched();
  StateMask applied = empty_state(inst);

  // New-only installs are strongly safe in a first round of their own: they
  // are unreachable and - absent any flipped old-path node - cannot close a
  // cycle with old edges (no old edge enters a new-only node).
  Round installs;
  for (const NodeId v : pending)
    if (inst.role(v) == NodeRole::kNewOnly) installs.push_back(v);
  if (!installs.empty()) {
    // Verify the claim with the exact certificate anyway (defensive).
    if (!round_safe_union_certificate(inst, applied, installs,
                                      kGlobalLoopFree))
      return make_error(Errc::kFailedPrecondition,
                        "install round unexpectedly unsafe");
    for (const NodeId v : installs) {
      applied[v] = true;
      pending.erase(std::find(pending.begin(), pending.end(), v));
    }
    schedule.rounds.push_back(std::move(installs));
  }

  while (!pending.empty()) {
    Round round;
    // Heuristic order: nodes whose new rule jumps farthest forward first;
    // their edges are the least likely to participate in a cycle.
    std::vector<NodeId> candidates = pending;
    std::sort(candidates.begin(), candidates.end(), [&](NodeId a, NodeId b) {
      const auto key = [&](NodeId v) -> std::ptrdiff_t {
        const auto pos = inst.old_pos(v);
        if (!pos.has_value()) return 0;
        NodeId t = inst.new_next(v);
        while (t != kInvalidNode && !inst.on_old(t)) t = inst.new_next(t);
        if (t == kInvalidNode) return 0;
        return static_cast<std::ptrdiff_t>(*inst.old_pos(t)) -
               static_cast<std::ptrdiff_t>(*pos);
      };
      return key(a) > key(b);
    });
    for (const NodeId u : candidates) {
      round.push_back(u);
      if (!round_safe_union_certificate(inst, applied, round,
                                        kGlobalLoopFree))
        round.pop_back();
    }
    if (round.empty())
      return make_error(
          Errc::kExhausted,
          "no strongly loop-free round exists from the current state");
    for (const NodeId u : round) {
      applied[u] = true;
      pending.erase(std::find(pending.begin(), pending.end(), u));
    }
    schedule.rounds.push_back(std::move(round));
  }

  if (options.with_cleanup) schedule.cleanup = inst.old_only_nodes();
  return schedule;
}

}  // namespace tsu::update
