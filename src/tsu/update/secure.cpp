// plan_secure: jointly waypoint-enforcing AND relaxed-loop-free schedules.
//
// The demo runs WayUp (WPE, tolerates transient loops) and Peacock (WLF,
// tolerates transient bypasses) as separate algorithms; its reference [3]
// (Ludwig et al., SIGMETRICS'16, "Transiently secure network updates")
// studies the combination and shows it cannot always be satisfied - there
// are instances where *no* round schedule is simultaneously WPE and
// loop-free. This scheduler is the constructive side of that story:
//
//   1. install round for new-only rules (always jointly safe),
//   2. greedy rounds over the remaining nodes, admitting a node only if
//      the grown round passes the full WPE+WLF+BH oracle,
//   3. if the greedy stalls, an exhaustive search over round choices
//      (small instances) decides feasibility exactly; instances that are
//      genuinely infeasible - including the paper's own Figure 1 scenario -
//      are reported as kExhausted, reproducing the impossibility.
//
// bench_secure_feasibility (E10) measures how often random instances admit
// a jointly secure schedule and what it costs in rounds.
#include "tsu/update/schedulers.hpp"

#include <algorithm>

namespace tsu::update {

Result<Schedule> plan_secure(const Instance& inst,
                             const SecureOptions& options) {
  if (!inst.has_waypoint())
    return make_error(Errc::kFailedPrecondition,
                      "plan_secure requires a waypoint");
  const std::uint32_t property = kTransientlySecure;

  Schedule schedule;
  schedule.algorithm = "secure";

  std::vector<NodeId> pending = inst.touched();
  StateMask applied = empty_state(inst);

  // Install round: new-only nodes are unreachable until an old-path rule
  // flips, so they can never bypass the waypoint, loop, or blackhole.
  Round installs;
  for (const NodeId v : pending)
    if (inst.role(v) == NodeRole::kNewOnly) installs.push_back(v);
  if (!installs.empty()) {
    for (const NodeId v : installs) {
      applied[v] = true;
      pending.erase(std::find(pending.begin(), pending.end(), v));
    }
    schedule.rounds.push_back(std::move(installs));
  }

  while (!pending.empty()) {
    // Candidate order: WayUp's phases are a good heuristic for the joint
    // property too - nodes behind the waypoint first, then the prefix,
    // then Y.
    std::vector<NodeId> candidates = pending;
    const NodeId w = *inst.waypoint();
    const std::size_t w_old = *inst.old_pos(w);
    const auto phase = [&](NodeId v) -> int {
      if (v == w) return 1;
      const auto pos_old = inst.old_pos(v);
      if (!pos_old.has_value()) return 0;
      return *pos_old > w_old ? 0 : (inst.set_y().empty() ? 1 : 2);
    };
    std::sort(candidates.begin(), candidates.end(), [&](NodeId a, NodeId b) {
      const int pa = phase(a);
      const int pb = phase(b);
      if (pa != pb) return pa < pb;
      return a < b;
    });

    Round round;
    for (const NodeId u : candidates) {
      round.push_back(u);
      if (!round_safe(inst, applied, round, property, options.base.oracle))
        round.pop_back();
    }

    if (round.empty()) {
      if (!options.search_fallback ||
          pending.size() > options.search_node_limit)
        return make_error(Errc::kExhausted,
                          "no jointly WPE+loop-free round exists from the "
                          "current state (instance may be infeasible)");
      Result<std::vector<Round>> rest =
          search_rounds(inst, applied, pending, property,
                        /*max_rounds=*/pending.size(), options.base.oracle);
      if (rest.ok()) {
        for (Round& r : rest.value()) schedule.rounds.push_back(std::move(r));
        pending.clear();
        break;
      }
      // The greedy prefix may itself have painted us into the corner;
      // decide feasibility exactly by searching from scratch.
      if (inst.touched().size() <= options.search_node_limit) {
        Result<std::vector<Round>> from_scratch = search_rounds(
            inst, empty_state(inst), inst.touched(), property,
            /*max_rounds=*/inst.touched().size(), options.base.oracle);
        if (from_scratch.ok()) {
          schedule.rounds = std::move(from_scratch).value();
          pending.clear();
          break;
        }
      }
      return make_error(Errc::kExhausted,
                        "instance admits no jointly secure schedule: " +
                            rest.error().message);
    }

    for (const NodeId u : round) {
      applied[u] = true;
      pending.erase(std::find(pending.begin(), pending.end(), u));
    }
    schedule.rounds.push_back(std::move(round));
  }

  if (options.base.with_cleanup) schedule.cleanup = inst.old_only_nodes();
  return schedule;
}

}  // namespace tsu::update
