// The routing-policy update instance: the formal object all schedulers and
// the transient-state checker operate on.
//
// An instance is a pair of simple paths (old route, new route) between the
// same source and destination, plus an optional security waypoint that lies
// on both (the firewall/IDS of the paper's Figure 1). Every node on a path
// holds at most one forwarding rule for the flow being updated:
//   - nodes on the old path start with their old next-hop installed,
//   - updating a node activates its new next-hop (installing it first if the
//     node is not on the old path),
//   - nodes only on the old path keep forwarding until an optional cleanup
//     round deletes their rule.
// The asynchronous-rounds semantics over these rules is defined in
// forwarding.hpp / DESIGN.md section 2.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "tsu/graph/path.hpp"
#include "tsu/util/ids.hpp"
#include "tsu/util/status.hpp"

namespace tsu::update {

// Where a node sits relative to the two routes.
enum class NodeRole : unsigned char {
  kUntouched,  // on neither path
  kOldOnly,    // only on the old path (rule persists until cleanup)
  kNewOnly,    // only on the new path (rule must be installed)
  kBoth,       // on both paths (rule is modified)
};

const char* to_string(NodeRole role) noexcept;

class Instance {
 public:
  // Validates and builds an instance. Fails if the paths are not simple,
  // do not share endpoints, or the waypoint is not strictly interior to
  // both paths.
  static Result<Instance> make(graph::Path old_path, graph::Path new_path,
                               std::optional<NodeId> waypoint = std::nullopt);

  const graph::Path& old_path() const noexcept { return old_; }
  const graph::Path& new_path() const noexcept { return new_; }
  NodeId source() const noexcept { return old_.front(); }
  NodeId destination() const noexcept { return old_.back(); }
  std::optional<NodeId> waypoint() const noexcept { return waypoint_; }
  bool has_waypoint() const noexcept { return waypoint_.has_value(); }

  // 1 + the largest node id mentioned by either path.
  std::size_t node_count() const noexcept { return node_count_; }

  NodeRole role(NodeId v) const noexcept;
  bool on_old(NodeId v) const noexcept;
  bool on_new(NodeId v) const noexcept;

  // Next hop under the old (resp. new) rule; kInvalidNode if the node has
  // no such rule (not on that path, or is the destination).
  NodeId old_next(NodeId v) const noexcept;
  NodeId new_next(NodeId v) const noexcept;

  // Nodes whose forwarding behaviour actually changes (new rule differs from
  // old, or a rule must be freshly installed); excludes the destination.
  // This is exactly the set a schedule must partition into rounds.
  const std::vector<NodeId>& touched() const noexcept { return touched_; }
  bool is_touched(NodeId v) const noexcept;

  // Nodes on the old path only (candidates for the cleanup round).
  std::vector<NodeId> old_only_nodes() const;

  // --- waypoint segment structure (used by WayUp; see DESIGN.md 3.2) ---
  // Sets are empty when the instance has no waypoint.
  // O1/N1: nodes strictly before the waypoint on the old/new path (incl. s);
  // O2/N2: nodes strictly after it (incl. d).
  // X = N1 ∩ O2: new-prefix nodes on the old suffix (bypass hazard if stale).
  // Y = O1 ∩ N2: old-prefix nodes on the new suffix (bypass hazard if eager).
  std::vector<NodeId> set_x() const;
  std::vector<NodeId> set_y() const;

  // Position of v on the old path, if any.
  std::optional<std::size_t> old_pos(NodeId v) const noexcept;
  std::optional<std::size_t> new_pos(NodeId v) const noexcept;

  // Stable identity of this instance's template: an FNV-1a fold of both
  // paths and the waypoint. Two instances digest equal iff they describe
  // the same (old path, new path, waypoint) triple, so the digest keys
  // memoized artifacts derived purely from the instance - the service
  // executor's compiled-plan cache derives its per-(template, direction)
  // keys from it.
  std::uint64_t identity_digest() const noexcept;

  std::string to_string() const;

 private:
  Instance() = default;

  graph::Path old_;
  graph::Path new_;
  std::optional<NodeId> waypoint_;
  std::size_t node_count_ = 0;

  // Dense per-node tables (kInvalidNode / npos when absent).
  std::vector<NodeId> old_next_;
  std::vector<NodeId> new_next_;
  std::vector<std::size_t> old_pos_;
  std::vector<std::size_t> new_pos_;
  std::vector<NodeRole> role_;
  std::vector<bool> touched_mask_;
  std::vector<NodeId> touched_;
};

}  // namespace tsu::update
