// Transient-consistency properties and the round-safety oracles used both
// by the schedulers (to build rounds) and by the checker (to verify them).
//
// Property semantics over a single transient state S (see DESIGN.md 2):
//   kWaypoint       : the walk from s must not reach d without visiting w.
//   kLoopFree       : the walk from s must not enter a cycle (weak/relaxed
//                     loop freedom of Peacock - stale loops off the live
//                     path are tolerated).
//   kGlobalLoopFree : the functional graph of ALL active rules is acyclic
//                     (strong loop freedom).
//   kBlackholeFree  : the walk from s never reaches a rule-less node.
// A round R is safe on top of applied set A iff every state A ∪ S with
// S ⊆ R satisfies the property mask.
#pragma once

#include <cstdint>
#include <vector>

#include "tsu/update/forwarding.hpp"
#include "tsu/update/instance.hpp"

namespace tsu::update {

enum PropertyMask : std::uint32_t {
  kWaypoint = 1u << 0,
  kLoopFree = 1u << 1,
  kGlobalLoopFree = 1u << 2,
  kBlackholeFree = 1u << 3,
};

// Common combinations.
inline constexpr std::uint32_t kWayUpGuarantee = kWaypoint;
inline constexpr std::uint32_t kPeacockGuarantee = kLoopFree | kBlackholeFree;
inline constexpr std::uint32_t kSlfGuarantee =
    kGlobalLoopFree | kBlackholeFree;
inline constexpr std::uint32_t kTransientlySecure =
    kWaypoint | kLoopFree | kBlackholeFree;

std::string property_name(std::uint32_t mask);

// Evaluates the property mask on one concrete state. Returns true if all
// requested properties hold.
bool state_satisfies(const Instance& inst, const StateMask& state,
                     std::uint32_t properties);

struct OracleOptions {
  // Rounds up to this size are checked by exhaustive subset enumeration
  // (2^size states); larger rounds fall back to the union-graph certificate
  // plus Monte-Carlo subset sampling.
  std::size_t exhaustive_limit = 16;
  std::size_t monte_carlo_samples = 512;
  std::uint64_t monte_carlo_seed = 0x7b1e4d2cULL;
};

// Sound-but-incomplete certificate: checks the property mask on the
// adversarial union graph (applied -> new rule, round -> both rules). If it
// returns true, every subset state satisfies the mask. If it returns false,
// a violation is *possible* but not guaranteed.
bool round_safe_union_certificate(const Instance& inst,
                                  const StateMask& applied,
                                  const std::vector<NodeId>& round,
                                  std::uint32_t properties);

// Exact check by enumerating all 2^|round| subsets. Requires
// round.size() <= 63 and is only sensible for small rounds.
bool round_safe_exhaustive(const Instance& inst, const StateMask& applied,
                           const std::vector<NodeId>& round,
                           std::uint32_t properties);

// Dispatcher: exhaustive when small, otherwise union certificate (sound)
// OR-ed with sampling - i.e. for large rounds a `true` answer is certified
// by the union graph, a `false` answer may come from either test.
bool round_safe(const Instance& inst, const StateMask& applied,
                const std::vector<NodeId>& round, std::uint32_t properties,
                const OracleOptions& options = {});

}  // namespace tsu::update
