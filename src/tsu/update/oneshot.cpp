#include "tsu/update/schedulers.hpp"

namespace tsu::update {

Result<Schedule> plan_oneshot(const Instance& inst,
                              const SchedulerOptions& options) {
  Schedule schedule;
  schedule.algorithm = "oneshot";
  if (!inst.touched().empty()) schedule.rounds.push_back(inst.touched());
  if (options.with_cleanup) schedule.cleanup = inst.old_only_nodes();
  return schedule;
}

}  // namespace tsu::update
