#include "tsu/update/optimizer.hpp"

#include <algorithm>
#include <unordered_set>

namespace tsu::update {

Schedule compress_schedule(const Instance& inst, const Schedule& schedule,
                           std::uint32_t properties,
                           const OracleOptions& oracle) {
  Schedule compressed;
  compressed.algorithm = schedule.algorithm + "+compressed";
  compressed.cleanup = schedule.cleanup;

  StateMask applied = empty_state(inst);
  for (const Round& round : schedule.rounds) {
    if (!compressed.rounds.empty()) {
      // Try to fold this round into the previous one. The previous round
      // was proven safe from `applied_before_prev`; the merged round must
      // be re-proven from the same base.
      Round merged = compressed.rounds.back();
      merged.insert(merged.end(), round.begin(), round.end());
      StateMask base = applied;
      for (const NodeId v : compressed.rounds.back()) base[v] = false;
      if (round_safe(inst, base, merged, properties, oracle)) {
        compressed.rounds.back() = std::move(merged);
        for (const NodeId v : round) applied[v] = true;
        continue;
      }
    }
    compressed.rounds.push_back(round);
    for (const NodeId v : round) applied[v] = true;
  }
  return compressed;
}

Result<MergedSchedule> merge_policies(
    const std::vector<const Instance*>& policies,
    const std::vector<const Schedule*>& schedules) {
  if (policies.size() != schedules.size())
    return make_error(Errc::kInvalidArgument,
                      "policies/schedules size mismatch");
  for (std::size_t i = 0; i < policies.size(); ++i) {
    if (policies[i] == nullptr || schedules[i] == nullptr)
      return make_error(Errc::kInvalidArgument, "null policy or schedule");
    if (Status s = validate_schedule(*policies[i], *schedules[i]); !s.ok())
      return make_error(Errc::kInvalidArgument,
                        "policy " + std::to_string(i) +
                            " schedule invalid: " + s.error().message);
  }

  MergedSchedule merged;
  // next_round[i] = index of the first round of policy i not yet placed.
  std::vector<std::size_t> next_round(policies.size(), 0);

  while (true) {
    MergedRound global;
    std::unordered_set<NodeId> touched_switches;
    bool progressed = false;
    // Greedy pass: admit the next round of every policy whose switches are
    // all untouched in this global round. Earlier policies get priority
    // (FIFO fairness, matching the paper's queue semantics).
    for (std::size_t i = 0; i < policies.size(); ++i) {
      if (next_round[i] >= schedules[i]->rounds.size()) continue;
      const Round& round = schedules[i]->rounds[next_round[i]];
      const bool disjoint = std::none_of(
          round.begin(), round.end(), [&touched_switches](NodeId v) {
            return touched_switches.count(v) != 0;
          });
      if (!disjoint) continue;
      for (const NodeId v : round) {
        touched_switches.insert(v);
        global.ops.emplace_back(i, v);
      }
      ++next_round[i];
      progressed = true;
    }
    if (!progressed) break;
    merged.rounds.push_back(std::move(global));
  }

  for (std::size_t i = 0; i < policies.size(); ++i) {
    if (next_round[i] != schedules[i]->rounds.size())
      return make_error(Errc::kFailedPrecondition,
                        "merge stalled before all rounds were placed");
  }
  return merged;
}

}  // namespace tsu::update
