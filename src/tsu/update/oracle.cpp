#include "tsu/update/oracle.hpp"

#include <string>

#include "tsu/graph/algorithms.hpp"
#include "tsu/util/rng.hpp"

namespace tsu::update {

std::string property_name(std::uint32_t mask) {
  std::string out;
  const auto append = [&out](const char* name) {
    if (!out.empty()) out += "+";
    out += name;
  };
  if ((mask & kWaypoint) != 0) append("WPE");
  if ((mask & kLoopFree) != 0) append("WLF");
  if ((mask & kGlobalLoopFree) != 0) append("SLF");
  if ((mask & kBlackholeFree) != 0) append("BH");
  if (out.empty()) out = "none";
  return out;
}

bool state_satisfies(const Instance& inst, const StateMask& state,
                     std::uint32_t properties) {
  if ((properties & (kWaypoint | kLoopFree | kBlackholeFree)) != 0) {
    const WalkResult walk = walk_from_source(inst, state);
    if ((properties & kWaypoint) != 0 && inst.has_waypoint() &&
        walk.outcome == WalkOutcome::kDelivered && !walk.visited_waypoint)
      return false;
    if ((properties & kLoopFree) != 0 && walk.outcome == WalkOutcome::kLoop)
      return false;
    if ((properties & kBlackholeFree) != 0 &&
        walk.outcome == WalkOutcome::kBlackhole)
      return false;
  }
  if ((properties & kGlobalLoopFree) != 0) {
    if (!graph::is_acyclic(active_graph(inst, state))) return false;
  }
  return true;
}

bool round_safe_union_certificate(const Instance& inst,
                                  const StateMask& applied,
                                  const std::vector<NodeId>& round,
                                  std::uint32_t properties) {
  const graph::Digraph g = union_graph(inst, applied, round);
  const NodeId s = inst.source();
  const NodeId d = inst.destination();

  if ((properties & kWaypoint) != 0 && inst.has_waypoint()) {
    // A bypass in any subset state is a w-avoiding s->d walk in that state's
    // functional graph, hence a w-avoiding s->d path in the union graph.
    if (!graph::shortest_path_avoiding(g, s, d, *inst.waypoint()).empty())
      return false;
  }
  if ((properties & kLoopFree) != 0) {
    // A reachable cycle in any subset state is a reachable cycle here.
    if (graph::cycle_reachable_from(g, s)) return false;
  }
  if ((properties & kGlobalLoopFree) != 0) {
    // Exact for SLF: a union-graph cycle visits each node once, so the
    // subset that picks each cycle node's witnessed rule realizes it.
    if (!graph::is_acyclic(g)) return false;
  }
  if ((properties & kBlackholeFree) != 0) {
    // A node is a potential blackhole if some subset state leaves it
    // rule-less while reachable: new-only nodes of the current round (not
    // yet installed) and nodes with no rule at all.
    const std::vector<bool> reach = graph::reachable_from(g, s);
    StateMask in_round(inst.node_count(), false);
    for (const NodeId v : round) in_round[v] = true;
    for (NodeId v = 0; v < inst.node_count(); ++v) {
      if (v == d || !reach[v]) continue;
      const bool has_old = inst.on_old(v);
      const bool has_new_installed = inst.on_new(v) && applied[v];
      if (!has_old && !has_new_installed) return false;
    }
  }
  return true;
}

bool round_safe_exhaustive(const Instance& inst, const StateMask& applied,
                           const std::vector<NodeId>& round,
                           std::uint32_t properties) {
  TSU_ASSERT_MSG(round.size() <= 63, "round too large for exhaustive check");
  StateMask state = applied;
  const std::uint64_t subsets = 1ULL << round.size();
  for (std::uint64_t bits = 0; bits < subsets; ++bits) {
    for (std::size_t i = 0; i < round.size(); ++i)
      state[round[i]] = applied[round[i]] || ((bits >> i) & 1ULL) != 0;
    if (!state_satisfies(inst, state, properties)) return false;
  }
  return true;
}

bool round_safe(const Instance& inst, const StateMask& applied,
                const std::vector<NodeId>& round, std::uint32_t properties,
                const OracleOptions& options) {
  if (round.size() <= options.exhaustive_limit)
    return round_safe_exhaustive(inst, applied, round, properties);
  if (round_safe_union_certificate(inst, applied, round, properties))
    return true;
  // The certificate is conservative; sample random subsets looking for a
  // concrete counterexample before giving up. If none is found we still
  // report unsafe (soundness first): schedulers must then shrink the round.
  Rng rng(options.monte_carlo_seed);
  StateMask state = applied;
  for (std::size_t sample = 0; sample < options.monte_carlo_samples;
       ++sample) {
    for (const NodeId v : round)
      state[v] = applied[v] || rng.bernoulli(0.5);
    if (!state_satisfies(inst, state, properties)) return false;
  }
  return false;
}

}  // namespace tsu::update
