// Minimum-round schedules by exhaustive search (iterative deepening over
// the number of rounds, DFS over candidate rounds, memoized dead ends).
//
// Round safety is subset-closed (a round is safe only if *every* subset
// state is safe, so any subset of a safe round is safe), but it is not
// monotone in the applied set - updating more nodes earlier can make a later
// round unsafe. Hence the search enumerates all subsets of the pending set
// as the next round rather than only maximal ones. Cost is O(3^p) state
// evaluations per deepening level for p pending nodes; the node_limit keeps
// this in laptop range. Used by tests and bench_wayup_rounds (E5) to measure
// the optimality gap of WayUp/Peacock on small instances.
#include "tsu/update/schedulers.hpp"

#include <unordered_map>

namespace tsu::update {

namespace {

class RoundSearch {
 public:
  RoundSearch(const Instance& inst, const std::vector<NodeId>& pending,
              std::uint32_t properties, const OracleOptions& oracle)
      : inst_(inst), pending_(pending), properties_(properties),
        oracle_(oracle) {}

  // Tries to retire all pending nodes in exactly <= budget rounds starting
  // from `state`; fills `out` (in order) on success.
  bool solve(StateMask& state, std::uint64_t remaining_mask,
             std::size_t budget, std::vector<Round>& out) {
    if (remaining_mask == 0) return true;
    if (budget == 0) return false;
    const auto memo = failed_.find(remaining_mask);
    if (memo != failed_.end() && memo->second >= budget) return false;

    // Enumerate non-empty subsets of remaining_mask as the next round.
    for (std::uint64_t sub = remaining_mask; sub != 0;
         sub = (sub - 1) & remaining_mask) {
      Round round;
      for (std::size_t i = 0; i < pending_.size(); ++i)
        if ((sub >> i) & 1ULL) round.push_back(pending_[i]);
      if (!round_safe_exhaustive(inst_, state, round, properties_)) continue;
      for (const NodeId v : round) state[v] = true;
      out.push_back(round);
      if (solve(state, remaining_mask & ~sub, budget - 1, out)) return true;
      out.pop_back();
      for (const NodeId v : round) state[v] = false;
    }
    auto& worst = failed_[remaining_mask];
    worst = std::max(worst, budget);
    return false;
  }

 private:
  const Instance& inst_;
  const std::vector<NodeId>& pending_;
  std::uint32_t properties_;
  OracleOptions oracle_;
  // remaining_mask -> largest budget proven infeasible.
  std::unordered_map<std::uint64_t, std::size_t> failed_;
};

}  // namespace

Result<std::vector<Round>> search_rounds(const Instance& inst,
                                         const StateMask& initial,
                                         const std::vector<NodeId>& pending,
                                         std::uint32_t properties,
                                         std::size_t max_rounds,
                                         const OracleOptions& oracle) {
  if (pending.size() > 24)
    return make_error(Errc::kOutOfRange,
                      "search_rounds: too many pending nodes");
  if (pending.empty()) return std::vector<Round>{};

  const std::uint64_t all_mask =
      pending.size() == 64 ? ~0ULL : (1ULL << pending.size()) - 1;
  RoundSearch search(inst, pending, properties, oracle);
  for (std::size_t budget = 1; budget <= max_rounds; ++budget) {
    StateMask state = initial;
    std::vector<Round> rounds;
    if (search.solve(state, all_mask, budget, rounds)) return rounds;
  }
  return make_error(Errc::kExhausted,
                    "no schedule within max_rounds satisfies " +
                        property_name(properties));
}

Result<Schedule> plan_optimal(const Instance& inst,
                              const OptimalOptions& options) {
  if (inst.touched().size() > options.node_limit)
    return make_error(Errc::kOutOfRange,
                      "plan_optimal: instance exceeds node_limit (" +
                          std::to_string(inst.touched().size()) + " touched)");
  Result<std::vector<Round>> rounds =
      search_rounds(inst, empty_state(inst), inst.touched(),
                    options.properties, options.max_rounds,
                    options.base.oracle);
  if (!rounds.ok()) return rounds.error();
  Schedule schedule;
  schedule.algorithm = "optimal(" + property_name(options.properties) + ")";
  schedule.rounds = std::move(rounds).value();
  if (options.base.with_cleanup) schedule.cleanup = inst.old_only_nodes();
  return schedule;
}

}  // namespace tsu::update
