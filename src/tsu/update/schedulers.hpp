// The five update schedulers (DESIGN.md section 3).
//
//   plan_oneshot    - all FlowMods in a single round; what a plain
//                     `ofctl_rest.py` controller does. Baseline.
//   plan_twophase   - strawman "prefix round then suffix round" split around
//                     the waypoint; shows why naive phasing is insufficient.
//   plan_wayup      - the WayUp reconstruction: <= 4 rounds, guarantees
//                     waypoint enforcement (WPE) in every transient state.
//   plan_peacock    - the Peacock reconstruction: guarantees weak loop
//                     freedom (WLF); few rounds (forward edges together,
//                     backward edges retired greedily under the oracle).
//   plan_slf_greedy - strong-loop-freedom greedy baseline; Θ(n) rounds on
//                     reversal instances (the contrast PODC'15 draws).
//   plan_optimal    - exhaustive minimum-round search for a property mask;
//                     exponential, intended for small instances (tests and
//                     the E5 ablation bench).
//
// All schedulers return rounds that partition Instance::touched(), and fill
// Schedule::cleanup with the old-only nodes when options request it.
#pragma once

#include <cstdint>

#include "tsu/update/instance.hpp"
#include "tsu/update/oracle.hpp"
#include "tsu/update/schedule.hpp"
#include "tsu/util/status.hpp"

namespace tsu::update {

struct SchedulerOptions {
  bool with_cleanup = true;
  OracleOptions oracle;
};

Result<Schedule> plan_oneshot(const Instance& inst,
                              const SchedulerOptions& options = {});

// Requires a waypoint.
Result<Schedule> plan_twophase(const Instance& inst,
                               const SchedulerOptions& options = {});

// Requires a waypoint.
Result<Schedule> plan_wayup(const Instance& inst,
                            const SchedulerOptions& options = {});

struct PeacockOptions {
  SchedulerOptions base;
  // When the greedy round construction cannot place any pending node, fall
  // back to an exhaustive search over round choices (feasible for small
  // instances) instead of failing.
  bool search_fallback = true;
  std::size_t search_node_limit = 20;
};

Result<Schedule> plan_peacock(const Instance& inst,
                              const PeacockOptions& options = {});

Result<Schedule> plan_slf_greedy(const Instance& inst,
                                 const SchedulerOptions& options = {});

// Joint waypoint enforcement + relaxed loop freedom + blackhole freedom -
// the "transiently secure" combination of the paper's reference [3]
// (SIGMETRICS'16). Not every instance admits such a schedule (the paper's
// own Figure 1 scenario does not); infeasibility is reported as kExhausted
// after an exact search on small instances.
struct SecureOptions {
  SchedulerOptions base;
  bool search_fallback = true;
  std::size_t search_node_limit = 14;
};

Result<Schedule> plan_secure(const Instance& inst,
                             const SecureOptions& options = {});

struct OptimalOptions {
  SchedulerOptions base;
  std::uint32_t properties = kPeacockGuarantee;
  std::size_t max_rounds = 8;
  // Refuse instances with more touched nodes than this (search is
  // exponential in the touched count).
  std::size_t node_limit = 16;
};

Result<Schedule> plan_optimal(const Instance& inst,
                              const OptimalOptions& options = {});

// Building block shared by plan_optimal and Peacock's fallback: exhaustive
// iterative-deepening search for the minimum number of safe rounds that
// retire `pending` starting from `initial`. Exponential in pending.size().
Result<std::vector<Round>> search_rounds(const Instance& inst,
                                         const StateMask& initial,
                                         const std::vector<NodeId>& pending,
                                         std::uint32_t properties,
                                         std::size_t max_rounds,
                                         const OracleOptions& oracle);

}  // namespace tsu::update
