// Strawman two-phase scheduler: install new-only rules, then flip everything
// up to and including the waypoint, then flip the rest.
//
// This is the "obvious" fix for waypoint bypasses and it is *wrong* whenever
// the conflict sets X = N1∩O2 or Y = O1∩N2 are non-empty: a packet routed
// onto the new prefix can still exit through a stale X node (phase 2), and
// an eagerly-updated Y node can still teleport unfiltered packets past the
// waypoint (phase 3). Tests and bench_violations reproduce both failure
// modes; WayUp exists precisely to order X before and Y after the prefix
// flip.
#include "tsu/update/schedulers.hpp"

namespace tsu::update {

Result<Schedule> plan_twophase(const Instance& inst,
                               const SchedulerOptions& options) {
  if (!inst.has_waypoint())
    return make_error(Errc::kFailedPrecondition,
                      "twophase requires a waypoint");
  Schedule schedule;
  schedule.algorithm = "twophase";
  const NodeId w = *inst.waypoint();
  const std::size_t w_new = *inst.new_pos(w);

  Round installs;   // new-only rule installations
  Round prefix;     // new-path nodes before/including the waypoint
  Round suffix;     // new-path nodes after the waypoint
  for (const NodeId v : inst.touched()) {
    if (inst.role(v) == NodeRole::kNewOnly) {
      installs.push_back(v);
      continue;
    }
    const std::size_t pos = *inst.new_pos(v);
    if (pos <= w_new)
      prefix.push_back(v);
    else
      suffix.push_back(v);
  }
  if (!installs.empty()) schedule.rounds.push_back(std::move(installs));
  if (!prefix.empty()) schedule.rounds.push_back(std::move(prefix));
  if (!suffix.empty()) schedule.rounds.push_back(std::move(suffix));
  if (options.with_cleanup) schedule.cleanup = inst.old_only_nodes();
  return schedule;
}

}  // namespace tsu::update
