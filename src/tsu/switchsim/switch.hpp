// Simulated OpenFlow switch.
//
// Control messages are processed strictly FIFO with per-message processing
// times (FlowMods pay an install latency drawn from a configurable
// distribution - the knob that models OVS vs. the much noisier hardware
// switches of Kuzniar et al., which the paper cites in footnote 2).
// BARRIER_REQUEST is answered only once every earlier message has finished
// processing, which the FIFO discipline yields for free - exactly the
// OpenFlow barrier contract the paper's controller relies on.
//
// The flow table mutates at the *completion* instant of each FlowMod, so
// the data plane observes rule changes with realistic skew.
//
// Reply batching (`batch_replies`): the switch->controller direction can
// coalesce too. Replies produced within one simulation instant (barrier
// replies, echoes - a burst of batched barriers completes several at once)
// collect in a reply outbox flushed by a zero-delay event as one
// proto::Batch frame towards the owning controller shard, mirroring the
// controller's kInstant outbox. Off by default: reply timing is unchanged
// unless asked for.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "tsu/flow/table.hpp"
#include "tsu/proto/messages.hpp"
#include "tsu/sim/distributions.hpp"
#include "tsu/sim/simulator.hpp"
#include "tsu/stats/summary.hpp"
#include "tsu/util/ids.hpp"
#include "tsu/util/ring.hpp"
#include "tsu/util/rng.hpp"

namespace tsu::switchsim {

struct SwitchConfig {
  // OVS-ish default: median 1 ms with moderate spread.
  sim::LatencyModel install_latency =
      sim::LatencyModel::lognormal(sim::milliseconds(1), 0.5);
  sim::Duration barrier_processing = sim::microseconds(100);
  sim::Duration message_processing = sim::microseconds(10);
  // Coalesce same-instant switch->controller replies into one Batch frame.
  bool batch_replies = false;
};

class SimSwitch {
 public:
  using SendFn = std::function<void(const proto::Message&)>;

  SimSwitch(sim::Simulator& simulator, NodeId node, DatapathId dpid,
            SwitchConfig config, Rng rng)
      : sim_(simulator), node_(node), dpid_(dpid), config_(config),
        rng_(rng) {}

  NodeId node() const noexcept { return node_; }
  DatapathId dpid() const noexcept { return dpid_; }

  // Outbound path towards the controller (barrier replies, echoes, errors).
  void set_controller_link(SendFn send) { to_controller_ = std::move(send); }

  // Inbound path: the channel delivers controller messages here.
  void receive(const proto::Message& message);

  // Live table 0 - the pipeline entry the data plane matches against - as
  // it stands right now.
  const flow::FlowTable& table() const noexcept { return table(0); }
  flow::FlowTable& table() noexcept { return tables_[0]; }

  // A specific flow table by id. FlowMods route to the table named in
  // their `table` field, so mods on different table ids really do mutate
  // different state - the physical grounding of the admission footprint's
  // table dimension. (Packet lookups stay in table 0: the pipeline model
  // has no goto-table.)
  const flow::FlowTable& table(std::uint8_t id) const noexcept {
    static const flow::FlowTable kEmpty;
    const auto it = tables_.find(id);
    return it != tables_.end() ? it->second : kEmpty;
  }
  flow::FlowTable& table(std::uint8_t id) noexcept { return tables_[id]; }

  // Every flow table by id (for whole-switch state digests). Emptied
  // tables stay resident (proto/apply.hpp keeps the slot so its rule
  // vectors' capacity survives the next install); consumers that care
  // about logical state must skip tables with size() == 0.
  const std::map<std::uint8_t, flow::FlowTable>& tables() const noexcept {
    return tables_;
  }

  // Number of tables currently holding at least one rule - the logical
  // table count (resident-but-empty tables are unwound state).
  std::size_t populated_tables() const noexcept {
    std::size_t n = 0;
    for (const auto& [id, table] : tables_)
      if (!table.empty()) ++n;
    return n;
  }

  // True when no message is being processed and the inbox is empty.
  bool quiescent() const noexcept { return !busy_ && inbox_.empty(); }

  // --- fault injection (sim/faults.hpp; inert unless driven) -----------
  // The switch process dies: control messages in the inbox are lost, the
  // in-flight install (if any) never completes (its completion event is
  // epoch-fenced below), and with `lose_state` the flow tables are wiped -
  // the cold-reboot variant. serving() goes false either way: a rebooting
  // switch forwards nothing until the controller's resync clears it
  // (fail-secure; a retained-TCAM switch serving stale rules before resync
  // could silently violate the very properties under test).
  void crash(bool lose_state);
  // The process is back: opens a fresh control session by sending Hello
  // towards the controller (bypassing reply batching - there is no session
  // to batch into yet). serving() stays false until resync completes.
  void restart();
  // A link-only outage healed: same fresh-session Hello, but the data
  // plane never stopped (serving() untouched).
  void announce();
  bool up() const noexcept { return up_; }
  bool serving() const noexcept { return serving_; }
  void set_serving(bool serving) noexcept { serving_ = serving; }
  std::size_t crashes() const noexcept { return crashes_; }
  // Control frames dropped because they arrived while the switch was down.
  std::size_t frames_dropped() const noexcept { return frames_dropped_; }

  std::size_t flow_mods_applied() const noexcept { return flow_mods_applied_; }
  std::size_t barriers_replied() const noexcept { return barriers_replied_; }
  std::size_t batches_received() const noexcept { return batches_received_; }
  // Batch expansion: logical messages unpacked from batch frames, and the
  // largest single batch seen (how hard the outbox actually packed).
  std::size_t batched_messages_received() const noexcept {
    return batched_messages_received_;
  }
  std::size_t largest_batch() const noexcept { return largest_batch_; }
  // Reply direction of the batch-expansion stats: Batch frames this switch
  // shipped towards the controller and the replies they carried.
  std::size_t reply_batches_sent() const noexcept {
    return reply_batches_sent_;
  }
  std::size_t batched_replies_sent() const noexcept {
    return batched_replies_sent_;
  }
  const stats::Summary& install_times() const noexcept {
    return install_times_;
  }

 private:
  void start_next();
  void complete(const proto::Message& message);
  void apply_flow_mod(const proto::FlowMod& mod);
  void send_to_controller(proto::Message message);
  void maybe_flush_replies();
  void flush_replies();

  sim::Simulator& sim_;
  NodeId node_;
  DatapathId dpid_;
  SwitchConfig config_;
  Rng rng_;
  SendFn to_controller_;

  // Flow tables by table id; created on first touch. Table 0 serves the
  // data plane.
  std::map<std::uint8_t, flow::FlowTable> tables_;
  // Flat ring, not a deque: the inbox cycles at a roughly constant depth
  // in steady state, and deque chunk churn would allocate on every ~32rd
  // push (util/ring.hpp).
  util::FlatRing<proto::Message> inbox_;
  bool busy_ = false;

  // Fault state. `epoch_` fences in-flight completion events across a
  // crash: a completion scheduled before the crash sees a stale epoch and
  // becomes a no-op (the install died with the process).
  bool up_ = true;
  bool serving_ = true;
  std::uint64_t epoch_ = 0;
  std::size_t crashes_ = 0;
  std::size_t frames_dropped_ = 0;

  // Reply outbox (batch_replies): same-instant replies awaiting the
  // zero-delay flush, whose event is re-armed per completion so it always
  // fires after the instant's last reply.
  std::vector<proto::Message> reply_outbox_;
  // Reused flush staging buffer (capacities circulate with reply_outbox_,
  // so steady-state flushes stop allocating at high-water size).
  std::vector<proto::Message> reply_scratch_;
  bool reply_flush_scheduled_ = false;
  sim::EventId reply_flush_event_ = 0;

  std::size_t flow_mods_applied_ = 0;
  std::size_t barriers_replied_ = 0;
  std::size_t batches_received_ = 0;
  std::size_t batched_messages_received_ = 0;
  std::size_t largest_batch_ = 0;
  std::size_t reply_batches_sent_ = 0;
  std::size_t batched_replies_sent_ = 0;
  stats::Summary install_times_;  // ns
};

}  // namespace tsu::switchsim
