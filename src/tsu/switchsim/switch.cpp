#include "tsu/switchsim/switch.hpp"

#include <algorithm>

#include "tsu/util/log.hpp"

namespace tsu::switchsim {

void SimSwitch::receive(const proto::Message& message) {
  if (message.type() == proto::MsgType::kBatch) {
    // Unpack atomically: the contained messages enter the FIFO in order, so
    // a FlowMod-then-Barrier sequence keeps its fencing semantics while the
    // whole group paid only one channel frame.
    ++batches_received_;
    const proto::Batch& batch = std::get<proto::Batch>(message.body);
    batched_messages_received_ += batch.messages.size();
    largest_batch_ = std::max(largest_batch_, batch.messages.size());
    for (const proto::Message& m : batch.messages) inbox_.push_back(m);
  } else {
    inbox_.push_back(message);
  }
  if (!busy_) start_next();
}

void SimSwitch::start_next() {
  TSU_ASSERT(!busy_);
  if (inbox_.empty()) return;
  busy_ = true;
  const proto::Message message = std::move(inbox_.front());
  inbox_.pop_front();

  sim::Duration processing = config_.message_processing;
  if (message.type() == proto::MsgType::kFlowMod) {
    processing = config_.install_latency.sample(rng_);
    install_times_.add(static_cast<double>(processing));
  } else if (message.type() == proto::MsgType::kBarrierRequest) {
    processing = config_.barrier_processing;
  }

  sim_.schedule(processing, [this, message = std::move(message)]() {
    complete(message);
    busy_ = false;
    start_next();
  });
}

void SimSwitch::complete(const proto::Message& message) {
  switch (message.type()) {
    case proto::MsgType::kFlowMod:
      apply_flow_mod(std::get<proto::FlowMod>(message.body));
      ++flow_mods_applied_;
      break;
    case proto::MsgType::kBarrierRequest:
      ++barriers_replied_;
      if (to_controller_)
        to_controller_(proto::make_barrier_reply(message.xid));
      break;
    case proto::MsgType::kEchoRequest:
      if (to_controller_)
        to_controller_(proto::make_echo_reply(
            message.xid, std::get<proto::Echo>(message.body).payload));
      break;
    case proto::MsgType::kHello:
      if (to_controller_) to_controller_(proto::make_hello(message.xid));
      break;
    case proto::MsgType::kFeaturesRequest:
      if (to_controller_) {
        proto::Message reply;
        reply.xid = message.xid;
        reply.body = proto::FeaturesReply{
            dpid_, static_cast<std::uint32_t>(
                       tables_.empty() ? 1 : tables_.size())};
        to_controller_(reply);
      }
      break;
    default:
      TSU_LOG(kDebug) << "switch " << node_ << " ignoring "
                      << message.to_string();
      break;
  }
}

void SimSwitch::apply_flow_mod(const proto::FlowMod& mod) {
  // Mods mutate the table named in the message, so updates admitted as
  // non-conflicting on the table dimension really touch disjoint state.
  flow::FlowTable& target = table(mod.table);
  switch (mod.command) {
    case proto::FlowModCommand::kAdd:
      target.add(flow::FlowRule{mod.match, mod.action, mod.priority,
                                mod.cookie});
      break;
    case proto::FlowModCommand::kModify:
      target.modify(mod.match, mod.priority, mod.action, mod.cookie);
      break;
    case proto::FlowModCommand::kDelete:
      target.remove(mod.match);
      break;
    case proto::FlowModCommand::kDeleteStrict:
      target.remove_strict(mod.match, mod.priority);
      break;
  }
}

}  // namespace tsu::switchsim
