#include "tsu/switchsim/switch.hpp"

#include <algorithm>
#include <iterator>

#include "tsu/proto/apply.hpp"
#include "tsu/util/log.hpp"

namespace tsu::switchsim {

void SimSwitch::receive(const proto::Message& message) {
  if (!up_) {
    // The process is dead; the frame reached a closed port. Counting, not
    // queueing: the controller's liveness timeout owns the recovery.
    ++frames_dropped_;
    return;
  }
  if (message.type() == proto::MsgType::kBatch) {
    // Unpack atomically: the contained messages enter the FIFO in order, so
    // a FlowMod-then-Barrier sequence keeps its fencing semantics while the
    // whole group paid only one channel frame.
    ++batches_received_;
    const proto::Batch& batch = std::get<proto::Batch>(message.body);
    batched_messages_received_ += batch.messages.size();
    largest_batch_ = std::max(largest_batch_, batch.messages.size());
    for (const proto::Message& m : batch.messages) inbox_.push_back(m);
  } else {
    inbox_.push_back(message);
  }
  if (!busy_) start_next();
}

void SimSwitch::start_next() {
  TSU_ASSERT(!busy_);
  if (inbox_.empty()) return;
  busy_ = true;
  const proto::Message message = std::move(inbox_.front());
  inbox_.pop_front();

  sim::Duration processing = config_.message_processing;
  if (message.type() == proto::MsgType::kFlowMod) {
    processing = config_.install_latency.sample(rng_);
    install_times_.add(static_cast<double>(processing));
  } else if (message.type() == proto::MsgType::kBarrierRequest) {
    processing = config_.barrier_processing;
  }

  // kLocal: a switch only touches its own tables and its own channel, all
  // of which live on this switch's shard (see sim/event_queue.hpp).
  // The captured epoch fences this completion across a crash: if the
  // process dies before the install lands, the event no-ops.
  auto completion = [this, message = std::move(message), epoch = epoch_]() {
    if (epoch != epoch_) return;
    complete(message);
    busy_ = false;
    start_next();
    // Arm (or re-arm) the reply flush AFTER start_next scheduled the
    // next completion: the flush event then sorts after every
    // completion of this instant, so all same-instant replies share
    // one frame.
    maybe_flush_replies();
  };
  // Per-message completion is the switch's hot-path event: it must stay
  // within the event fabric's inline buffer or every install allocates.
  static_assert(sim::EventFn::fits_inline<decltype(completion)>(),
                "switch completion closure outgrew the inline event buffer");
  sim_.schedule(processing, std::move(completion), sim::EventScope::kLocal);
}

void SimSwitch::complete(const proto::Message& message) {
  switch (message.type()) {
    case proto::MsgType::kFlowMod:
      apply_flow_mod(std::get<proto::FlowMod>(message.body));
      ++flow_mods_applied_;
      break;
    case proto::MsgType::kBarrierRequest:
      ++barriers_replied_;
      send_to_controller(proto::make_barrier_reply(message.xid));
      break;
    case proto::MsgType::kEchoRequest:
      send_to_controller(proto::make_echo_reply(
          message.xid, std::get<proto::Echo>(message.body).payload));
      break;
    case proto::MsgType::kHello:
      send_to_controller(proto::make_hello(message.xid));
      break;
    case proto::MsgType::kFeaturesRequest: {
      // Count populated tables: resident-but-empty tables are unwound
      // state, not capacity the datapath advertises.
      const std::size_t populated = populated_tables();
      proto::Message reply;
      reply.xid = message.xid;
      reply.body = proto::FeaturesReply{
          dpid_, static_cast<std::uint32_t>(populated == 0 ? 1 : populated)};
      send_to_controller(std::move(reply));
      break;
    }
    default:
      TSU_LOG(kDebug) << "switch " << node_ << " ignoring "
                      << message.to_string();
      break;
  }
}

void SimSwitch::send_to_controller(proto::Message message) {
  if (to_controller_ == nullptr) return;
  if (!config_.batch_replies) {
    to_controller_(message);
    return;
  }
  // Same-instant coalescing towards the controller: collect until the
  // zero-delay flush (armed by the completion event), mirroring the
  // controller's kInstant outbox.
  reply_outbox_.push_back(std::move(message));
}

void SimSwitch::maybe_flush_replies() {
  if (reply_outbox_.empty()) return;
  // Re-arming on every completion keeps the flush sorted after the last
  // same-instant completion; the lazy-cancel event queue absorbs the
  // churn (see sim/event_queue.hpp).
  if (reply_flush_scheduled_) sim_.cancel(reply_flush_event_);
  reply_flush_scheduled_ = true;
  reply_flush_event_ = sim_.schedule(0, [this]() { flush_replies(); },
                                     sim::EventScope::kLocal);
}

void SimSwitch::flush_replies() {
  reply_flush_scheduled_ = false;
  if (reply_outbox_.empty() || to_controller_ == nullptr) return;
  reply_scratch_.clear();
  std::vector<proto::Message>& replies = reply_scratch_;
  replies.swap(reply_outbox_);
  // Chunk against the shared frame-cap-derived bound (proto).
  std::size_t begin = 0;
  while (begin < replies.size()) {
    const std::size_t end =
        std::min(begin + proto::kMaxBatchMessages, replies.size());
    // A lone reply gains nothing from batch framing: send it plain. The
    // batch frame's own xid carries no routing information (each contained
    // reply keeps its shard-tagged xid), so 0 is fine.
    if (end - begin == 1) {
      to_controller_(replies[begin]);
    } else {
      std::vector<proto::Message> chunk(
          std::make_move_iterator(replies.begin() + begin),
          std::make_move_iterator(replies.begin() + end));
      batched_replies_sent_ += chunk.size();
      ++reply_batches_sent_;
      to_controller_(proto::make_batch(0, std::move(chunk)));
    }
    begin = end;
  }
}

void SimSwitch::apply_flow_mod(const proto::FlowMod& mod) {
  // Mods mutate the table named in the message, so updates admitted as
  // non-conflicting on the table dimension really touch disjoint state.
  // Shared semantics with the controller's shadow tables (proto/apply.hpp):
  // crash resync reconstructs exactly what this would have built.
  proto::apply_flow_mod(tables_, mod);
}

void SimSwitch::crash(bool lose_state) {
  ++crashes_;
  ++epoch_;  // orphan any in-flight completion event
  up_ = false;
  serving_ = false;
  busy_ = false;
  frames_dropped_ += inbox_.size();
  inbox_.clear();
  reply_outbox_.clear();
  if (reply_flush_scheduled_) {
    reply_flush_scheduled_ = false;
    sim_.cancel(reply_flush_event_);
  }
  if (lose_state) tables_.clear();
}

void SimSwitch::restart() {
  up_ = true;
  announce();
}

void SimSwitch::announce() {
  if (!up_) return;  // a dead process can't greet a revived link
  // A fresh session's handshake frame. Straight onto the channel: the
  // reply outbox belongs to the previous session's batching discipline.
  // The xid carries the handshake's state bit (stand-in for the
  // features/stats exchange of a real reconnect): nonzero means the
  // tables survived, so the controller can resync just the uncertain keys.
  // Populated, not resident: a switch whose rules were all unwound holds
  // no state worth resyncing, exactly as if the tables had been dropped.
  if (to_controller_ != nullptr)
    to_controller_(proto::make_hello(populated_tables() == 0 ? 0 : 1));
}

}  // namespace tsu::switchsim
