#include "tsu/dataplane/monitor.hpp"

#include <sstream>

namespace tsu::dataplane {

const char* to_string(PacketOutcome outcome) noexcept {
  switch (outcome) {
    case PacketOutcome::kDelivered: return "delivered";
    case PacketOutcome::kBypassedWaypoint: return "bypassed-waypoint";
    case PacketOutcome::kLooped: return "looped";
    case PacketOutcome::kBlackholed: return "blackholed";
    case PacketOutcome::kTtlExpired: return "ttl-expired";
    case PacketOutcome::kFaultDropped: return "fault-dropped";
  }
  return "?";
}

double MonitorReport::violation_rate() const noexcept {
  if (total == 0) return 0;
  return static_cast<double>(bypassed + looped + blackholed + ttl_expired) /
         static_cast<double>(total);
}

double MonitorReport::bypass_rate() const noexcept {
  if (total == 0) return 0;
  return static_cast<double>(bypassed) / static_cast<double>(total);
}

std::string MonitorReport::to_string() const {
  std::ostringstream out;
  out << "packets=" << total << " delivered=" << delivered
      << " bypassed=" << bypassed << " looped=" << looped
      << " blackholed=" << blackholed << " ttl-expired=" << ttl_expired;
  if (fault_dropped != 0) out << " fault-dropped=" << fault_dropped;
  return out.str();
}

void ConsistencyMonitor::record(sim::SimTime at, PacketOutcome outcome) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++report_.total;
  switch (outcome) {
    case PacketOutcome::kDelivered: ++report_.delivered; break;
    case PacketOutcome::kBypassedWaypoint: ++report_.bypassed; break;
    case PacketOutcome::kLooped: ++report_.looped; break;
    case PacketOutcome::kBlackholed: ++report_.blackholed; break;
    case PacketOutcome::kTtlExpired: ++report_.ttl_expired; break;
    case PacketOutcome::kFaultDropped: ++report_.fault_dropped; break;
  }
  // bucket_width == 0 disables the timeline: the open-loop service mode
  // runs unbounded sim horizons where a per-bucket vector would grow
  // without limit (and at / 0 would fault).
  if (bucket_width_ == 0) return;
  const std::size_t bucket = static_cast<std::size_t>(at / bucket_width_);
  if (bucket >= timeline_.size()) timeline_.resize(bucket + 1);
  Bucket& b = timeline_[bucket];
  switch (outcome) {
    case PacketOutcome::kDelivered: ++b.delivered; break;
    case PacketOutcome::kBypassedWaypoint: ++b.bypassed; break;
    case PacketOutcome::kLooped: ++b.looped; break;
    case PacketOutcome::kBlackholed:
    case PacketOutcome::kTtlExpired: ++b.blackholed; break;
    case PacketOutcome::kFaultDropped: break;  // outage, not a violation
  }
}

ConsistencyMonitor& MultiFlowMonitor::monitor(FlowId flow) {
  const auto it = flows_.find(flow);
  if (it != flows_.end()) return it->second;
  // try_emplace: ConsistencyMonitor owns a mutex and cannot be moved.
  return flows_.try_emplace(flow, bucket_width_).first->second;
}

const ConsistencyMonitor* MultiFlowMonitor::find(FlowId flow) const noexcept {
  const auto it = flows_.find(flow);
  return it == flows_.end() ? nullptr : &it->second;
}

MonitorReport MultiFlowMonitor::aggregate() const {
  MonitorReport sum;
  for (const auto& [flow, monitor] : flows_) {
    const MonitorReport& r = monitor.report();
    sum.total += r.total;
    sum.delivered += r.delivered;
    sum.bypassed += r.bypassed;
    sum.looped += r.looped;
    sum.blackholed += r.blackholed;
    sum.ttl_expired += r.ttl_expired;
    sum.fault_dropped += r.fault_dropped;
  }
  return sum;
}

std::string ConsistencyMonitor::timeline_to_string() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < timeline_.size(); ++i) {
    const Bucket& b = timeline_[i];
    out << "[" << i << "] delivered=" << b.delivered;
    if (b.bypassed != 0) out << " BYPASSED=" << b.bypassed;
    if (b.looped != 0) out << " looped=" << b.looped;
    if (b.blackholed != 0) out << " dropped=" << b.blackholed;
    out << "\n";
  }
  return out.str();
}

}  // namespace tsu::dataplane
