// Data-plane traffic: a host injects packets while the update is running;
// each packet hops switch-to-switch against the *live* flow tables (which
// mutate underneath it as FlowMods complete), so transient inconsistencies
// show up exactly as they would in the Mininet demo: loops, drops, and
// packets that slip past the waypoint.
#pragma once

#include <functional>
#include <vector>

#include "tsu/dataplane/monitor.hpp"
#include "tsu/flow/match.hpp"
#include "tsu/sim/distributions.hpp"
#include "tsu/sim/simulator.hpp"
#include "tsu/switchsim/switch.hpp"
#include "tsu/util/ids.hpp"
#include "tsu/util/rng.hpp"

namespace tsu::dataplane {

struct TrafficConfig {
  FlowId flow = 1;
  NodeId ingress = kInvalidNode;       // switch attached to the source host
  NodeId egress = kInvalidNode;        // switch attached to the dest host
  std::optional<NodeId> waypoint;      // security middlebox to enforce
  sim::LatencyModel interarrival =
      sim::LatencyModel::constant(sim::microseconds(200));
  sim::LatencyModel link_latency =
      sim::LatencyModel::constant(sim::microseconds(50));
  int ttl = 64;
  sim::SimTime start = 0;
  sim::SimTime stop = 0;  // no packet injected at/after this time
};

class TrafficSource {
 public:
  // `switches` is indexed by NodeId; entries may be null for non-switch ids.
  TrafficSource(sim::Simulator& simulator,
                std::vector<switchsim::SimSwitch*> switches,
                TrafficConfig config, Rng rng, ConsistencyMonitor& monitor);

  // Schedules the first injection; the source then self-perpetuates until
  // `config.stop`.
  void start();

  std::size_t injected() const noexcept { return injected_; }
  // Packets still traversing the network.
  std::size_t in_flight() const noexcept { return in_flight_; }

  // Moves the injection stop time (e.g. once the update under observation
  // has completed and the drain window is known).
  void set_stop(sim::SimTime stop) noexcept { config_.stop = stop; }

 private:
  struct LivePacket {
    flow::Packet packet;
    std::vector<bool> visited;
    bool crossed_waypoint = false;
  };

  void inject();
  void hop(LivePacket live, NodeId at);
  void finish(const LivePacket& live, PacketOutcome outcome);

  sim::Simulator& sim_;
  std::vector<switchsim::SimSwitch*> switches_;
  TrafficConfig config_;
  Rng rng_;
  ConsistencyMonitor& monitor_;
  std::size_t injected_ = 0;
  std::size_t in_flight_ = 0;
};

}  // namespace tsu::dataplane
