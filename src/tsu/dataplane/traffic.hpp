// Data-plane traffic: a host injects packets while the update is running;
// each packet hops switch-to-switch against the *live* flow tables (which
// mutate underneath it as FlowMods complete), so transient inconsistencies
// show up exactly as they would in the Mininet demo: loops, drops, and
// packets that slip past the waypoint.
//
// SHARDED OPERATION. When constructed over a ShardedSim + SwitchPartition,
// every hop event executes on the event queue of the shard OWNING the
// switch it reads, so a hop only ever touches shard-local flow tables - the
// invariant that lets parallel epochs run hops concurrently. A hop whose
// next switch lives on a foreign shard hands the packet off through the
// group's per-shard mailbox (ShardedSim::post) instead of scheduling into
// the foreign queue directly. Each packet carries its own forked Rng for
// link-latency sampling: samples then depend only on the packet's own hop
// sequence, never on how concurrently-flying packets interleave, which
// keeps parallel runs bit-identical to sequential ones.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "tsu/dataplane/monitor.hpp"
#include "tsu/flow/match.hpp"
#include "tsu/sim/distributions.hpp"
#include "tsu/sim/sharded.hpp"
#include "tsu/sim/simulator.hpp"
#include "tsu/switchsim/switch.hpp"
#include "tsu/topo/partition.hpp"
#include "tsu/util/ids.hpp"
#include "tsu/util/rng.hpp"

namespace tsu::dataplane {

struct TrafficConfig {
  FlowId flow = 1;
  NodeId ingress = kInvalidNode;       // switch attached to the source host
  NodeId egress = kInvalidNode;        // switch attached to the dest host
  std::optional<NodeId> waypoint;      // security middlebox to enforce
  sim::LatencyModel interarrival =
      sim::LatencyModel::constant(sim::microseconds(200));
  sim::LatencyModel link_latency =
      sim::LatencyModel::constant(sim::microseconds(50));
  int ttl = 64;
  sim::SimTime start = 0;
  sim::SimTime stop = 0;  // no packet injected at/after this time
};

class TrafficSource {
 public:
  // Single-queue operation: everything runs on `simulator`.
  // `switches` is indexed by NodeId; entries may be null for non-switch ids.
  TrafficSource(sim::Simulator& simulator,
                std::vector<switchsim::SimSwitch*> switches,
                TrafficConfig config, Rng rng, ConsistencyMonitor& monitor);

  // Sharded operation (see the file comment): injection lives on the
  // ingress switch's shard; hops follow the packet across shard queues.
  // `partition` must outlive the source.
  TrafficSource(sim::ShardedSim& group, const topo::SwitchPartition& partition,
                std::vector<switchsim::SimSwitch*> switches,
                TrafficConfig config, Rng rng, ConsistencyMonitor& monitor);

  // Schedules the first injection; the source then self-perpetuates until
  // `config.stop`.
  void start();

  std::size_t injected() const noexcept { return injected_; }
  // Packets still traversing the network.
  std::size_t in_flight() const noexcept {
    return in_flight_.load(std::memory_order_relaxed);
  }

  // Moves the injection stop time (e.g. once the update under observation
  // has completed and the drain window is known). Only safe at a sync
  // point (the executor calls it from update-completion handlers, which
  // are kShared events): injection reads it from inside parallel epochs.
  void set_stop(sim::SimTime stop) noexcept { config_.stop = stop; }

 private:
  // Loop-detection bitmap sized by switch count. Topologies up to
  // kInlineBits switches (every current experiment) live entirely inline,
  // so a LivePacket - and the hop closure carrying it - needs no heap at
  // all; larger topologies fall back to one vector per packet.
  class VisitedSet {
   public:
    static constexpr std::size_t kInlineBits = 512;

    void reset(std::size_t size) {
      if (size > kInlineBits) {
        overflow_.assign((size + 63) / 64, 0);
      } else {
        overflow_.clear();
        bits_.fill(0);
      }
    }
    bool test(std::size_t i) const noexcept {
      return (words()[i >> 6] >> (i & 63) & 1) != 0;
    }
    void set(std::size_t i) noexcept {
      words()[i >> 6] |= std::uint64_t{1} << (i & 63);
    }

   private:
    const std::uint64_t* words() const noexcept {
      return overflow_.empty() ? bits_.data() : overflow_.data();
    }
    std::uint64_t* words() noexcept {
      return overflow_.empty() ? bits_.data() : overflow_.data();
    }
    std::array<std::uint64_t, kInlineBits / 64> bits_{};
    std::vector<std::uint64_t> overflow_;
  };

  struct LivePacket {
    flow::Packet packet;
    VisitedSet visited;
    bool crossed_waypoint = false;
    // Per-packet latency stream (see the file comment).
    Rng rng;
    explicit LivePacket(Rng packet_rng) : rng(packet_rng) {}
  };

  // The event queue owning switch `node` (home_sim_ when unsharded).
  sim::Simulator& sim_of(NodeId node);
  std::size_t shard_of(NodeId node) const noexcept;

  void inject();
  // Runs on the queue of `at`'s owning shard.
  void hop(LivePacket live, NodeId at);
  void finish(const LivePacket& live, PacketOutcome outcome, sim::SimTime at);

  sim::Simulator* home_sim_;                       // ingress shard's queue
  sim::ShardedSim* group_ = nullptr;               // null when unsharded
  const topo::SwitchPartition* partition_ = nullptr;
  std::vector<switchsim::SimSwitch*> switches_;
  TrafficConfig config_;
  Rng rng_;
  ConsistencyMonitor& monitor_;
  std::size_t injected_ = 0;
  // Decremented by whichever shard finishes the packet.
  std::atomic<std::size_t> in_flight_{0};
};

}  // namespace tsu::dataplane
