#include "tsu/dataplane/traffic.hpp"

#include "tsu/util/log.hpp"

namespace tsu::dataplane {

TrafficSource::TrafficSource(sim::Simulator& simulator,
                             std::vector<switchsim::SimSwitch*> switches,
                             TrafficConfig config, Rng rng,
                             ConsistencyMonitor& monitor)
    : sim_(simulator), switches_(std::move(switches)), config_(config),
      rng_(rng), monitor_(monitor) {
  TSU_ASSERT(config_.ingress < switches_.size() &&
             switches_[config_.ingress] != nullptr);
  TSU_ASSERT(config_.egress < switches_.size() &&
             switches_[config_.egress] != nullptr);
}

void TrafficSource::start() {
  sim_.schedule_at(config_.start, [this]() { inject(); });
}

void TrafficSource::inject() {
  if (sim_.now() >= config_.stop) return;

  LivePacket live;
  live.packet.flow = config_.flow;
  live.packet.src_host = config_.ingress;
  live.packet.dst_host = config_.egress;
  live.packet.ttl = config_.ttl;
  live.visited.assign(switches_.size(), false);
  ++injected_;
  ++in_flight_;
  hop(std::move(live), config_.ingress);

  sim_.schedule(config_.interarrival.sample(rng_), [this]() { inject(); });
}

void TrafficSource::hop(LivePacket live, NodeId at) {
  TSU_ASSERT(at < switches_.size() && switches_[at] != nullptr);

  if (config_.waypoint.has_value() && at == *config_.waypoint)
    live.crossed_waypoint = true;

  // Look up the live flow table *now*; the rule may have changed since the
  // previous hop - that is the whole point of the experiment.
  const std::optional<flow::FlowRule> rule =
      switches_[at]->table().lookup(live.packet);
  if (!rule.has_value() || rule->action.kind == flow::ActionKind::kDrop) {
    finish(live, PacketOutcome::kBlackholed);
    return;
  }
  if (rule->action.kind == flow::ActionKind::kDeliver) {
    if (at == config_.egress) {
      const bool needs_waypoint = config_.waypoint.has_value();
      finish(live, needs_waypoint && !live.crossed_waypoint
                       ? PacketOutcome::kBypassedWaypoint
                       : PacketOutcome::kDelivered);
    } else {
      // Delivered to the wrong host: treat as a drop.
      finish(live, PacketOutcome::kBlackholed);
    }
    return;
  }

  // Forwarding.
  if (live.visited[at]) {
    finish(live, PacketOutcome::kLooped);
    return;
  }
  live.visited[at] = true;
  if (--live.packet.ttl <= 0) {
    finish(live, PacketOutcome::kTtlExpired);
    return;
  }
  const NodeId next = rule->action.port;
  if (next >= switches_.size() || switches_[next] == nullptr) {
    finish(live, PacketOutcome::kBlackholed);
    return;
  }
  live.packet.in_port = at;
  sim_.schedule(config_.link_latency.sample(rng_),
                [this, live = std::move(live), next]() mutable {
                  hop(std::move(live), next);
                });
}

void TrafficSource::finish(const LivePacket& live, PacketOutcome outcome) {
  (void)live;
  --in_flight_;
  monitor_.record(sim_.now(), outcome);
}

}  // namespace tsu::dataplane
