#include "tsu/dataplane/traffic.hpp"

#include "tsu/util/log.hpp"

namespace tsu::dataplane {

TrafficSource::TrafficSource(sim::Simulator& simulator,
                             std::vector<switchsim::SimSwitch*> switches,
                             TrafficConfig config, Rng rng,
                             ConsistencyMonitor& monitor)
    : home_sim_(&simulator), switches_(std::move(switches)), config_(config),
      rng_(rng), monitor_(monitor) {
  TSU_ASSERT(config_.ingress < switches_.size() &&
             switches_[config_.ingress] != nullptr);
  TSU_ASSERT(config_.egress < switches_.size() &&
             switches_[config_.egress] != nullptr);
}

TrafficSource::TrafficSource(sim::ShardedSim& group,
                             const topo::SwitchPartition& partition,
                             std::vector<switchsim::SimSwitch*> switches,
                             TrafficConfig config, Rng rng,
                             ConsistencyMonitor& monitor)
    : home_sim_(&group.shard(partition.shard_of(config.ingress))),
      group_(&group), partition_(&partition), switches_(std::move(switches)),
      config_(config), rng_(rng), monitor_(monitor) {
  TSU_ASSERT(config_.ingress < switches_.size() &&
             switches_[config_.ingress] != nullptr);
  TSU_ASSERT(config_.egress < switches_.size() &&
             switches_[config_.egress] != nullptr);
}

std::size_t TrafficSource::shard_of(NodeId node) const noexcept {
  return partition_ == nullptr ? 0 : partition_->shard_of(node);
}

sim::Simulator& TrafficSource::sim_of(NodeId node) {
  return group_ == nullptr ? *home_sim_ : group_->shard(shard_of(node));
}

void TrafficSource::start() {
  // kLocal: injection reads source-local state and starts the packet on
  // the ingress switch, which lives on this very shard.
  home_sim_->schedule_at(config_.start, [this]() { inject(); },
                         sim::EventScope::kLocal);
}

void TrafficSource::inject() {
  if (home_sim_->now() >= config_.stop) return;

  // Fork in injection order: the packet's latency stream is deterministic
  // however its hops later interleave with other packets'.
  LivePacket live(rng_.fork());
  live.packet.flow = config_.flow;
  live.packet.src_host = config_.ingress;
  live.packet.dst_host = config_.egress;
  live.packet.ttl = config_.ttl;
  live.visited.reset(switches_.size());
  ++injected_;
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  hop(std::move(live), config_.ingress);

  home_sim_->schedule(config_.interarrival.sample(rng_),
                      [this]() { inject(); }, sim::EventScope::kLocal);
}

void TrafficSource::hop(LivePacket live, NodeId at) {
  TSU_ASSERT(at < switches_.size() && switches_[at] != nullptr);
  sim::Simulator& here = sim_of(at);

  if (config_.waypoint.has_value() && at == *config_.waypoint)
    live.crossed_waypoint = true;

  // A crashed switch forwards nothing until its controller resync restores
  // it to service; traffic hitting it is outage loss, kept apart from the
  // consistency verdicts (fault injection only; always serving otherwise).
  if (!switches_[at]->serving()) {
    finish(live, PacketOutcome::kFaultDropped, here.now());
    return;
  }

  // Look up the live flow table *now*; the rule may have changed since the
  // previous hop - that is the whole point of the experiment.
  const std::optional<flow::FlowRule> rule =
      switches_[at]->table().lookup(live.packet);
  if (!rule.has_value() || rule->action.kind == flow::ActionKind::kDrop) {
    finish(live, PacketOutcome::kBlackholed, here.now());
    return;
  }
  if (rule->action.kind == flow::ActionKind::kDeliver) {
    if (at == config_.egress) {
      const bool needs_waypoint = config_.waypoint.has_value();
      finish(live,
             needs_waypoint && !live.crossed_waypoint
                 ? PacketOutcome::kBypassedWaypoint
                 : PacketOutcome::kDelivered,
             here.now());
    } else {
      // Delivered to the wrong host: treat as a drop.
      finish(live, PacketOutcome::kBlackholed, here.now());
    }
    return;
  }

  // Forwarding.
  if (live.visited.test(at)) {
    finish(live, PacketOutcome::kLooped, here.now());
    return;
  }
  live.visited.set(at);
  if (--live.packet.ttl <= 0) {
    finish(live, PacketOutcome::kTtlExpired, here.now());
    return;
  }
  const NodeId next = rule->action.port;
  if (next >= switches_.size() || switches_[next] == nullptr) {
    finish(live, PacketOutcome::kBlackholed, here.now());
    return;
  }
  live.packet.in_port = at;
  const sim::Duration latency = config_.link_latency.sample(live.rng);
  const std::size_t here_shard = shard_of(at);
  const std::size_t next_shard = shard_of(next);
  auto next_hop = [this, live = std::move(live), next]() mutable {
    hop(std::move(live), next);
  };
  // The hop closure is THE hot-path event: it must stay within the event
  // fabric's inline buffer or every forwarded packet allocates again.
  static_assert(sim::EventFn::fits_inline<decltype(next_hop)>(),
                "hop closure outgrew the inline event buffer");
  if (group_ == nullptr || next_shard == here_shard) {
    // kLocal: the hop reads only `next`'s tables, owned by this shard.
    here.schedule(latency, std::move(next_hop), sim::EventScope::kLocal);
  } else {
    // Cross-shard hand-off: into the owner's mailbox, never into its
    // queue mid-step (see sim/sharded.hpp).
    group_->post(next_shard, here_shard, here.now() + latency,
                 std::move(next_hop));
  }
}

void TrafficSource::finish(const LivePacket& live, PacketOutcome outcome,
                           sim::SimTime at) {
  (void)live;
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
  monitor_.record(at, outcome);
}

}  // namespace tsu::dataplane
