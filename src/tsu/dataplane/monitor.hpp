// Consistency monitor: classifies every data-plane packet that traversed
// the network during an update and aggregates violations over time.
//
// The security property of the paper is judged here: a packet that reaches
// the destination host without having crossed the waypoint switch is a
// *waypoint bypass* - the event WayUp exists to prevent.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "tsu/sim/time.hpp"
#include "tsu/util/ids.hpp"

namespace tsu::dataplane {

enum class PacketOutcome : unsigned char {
  kDelivered,         // reached destination, waypoint ok (or no waypoint)
  kBypassedWaypoint,  // reached destination *around* the waypoint
  kLooped,            // revisited a switch
  kBlackholed,        // no matching rule / explicit drop
  kTtlExpired,        // ran out of TTL without revisiting (long detour)
  kFaultDropped,      // arrived at a switch taken down by fault injection
};

const char* to_string(PacketOutcome outcome) noexcept;

struct MonitorReport {
  std::size_t total = 0;
  std::size_t delivered = 0;
  std::size_t bypassed = 0;
  std::size_t looped = 0;
  std::size_t blackholed = 0;
  std::size_t ttl_expired = 0;
  // Packets that hit a crashed (non-serving) switch. Deliberately excluded
  // from violation_rate(): losing traffic at a dead switch is outage, not
  // an inconsistency - a correct fault run keeps blackholed == 0 while
  // fault_dropped counts the crash's collateral.
  std::size_t fault_dropped = 0;

  // Fraction of packets violating any transient property.
  double violation_rate() const noexcept;
  // Fraction of packets violating the *security* property (bypass).
  double bypass_rate() const noexcept;
  std::string to_string() const;
};

class ConsistencyMonitor {
 public:
  // bucket_width = 0 disables the per-bucket timeline (aggregate counts
  // only) - required for open-loop runs whose timeline would otherwise
  // grow with the sim horizon.
  explicit ConsistencyMonitor(sim::Duration bucket_width =
                                  sim::milliseconds(1))
      : bucket_width_(bucket_width) {}

  // Thread-safe and commutative: under the parallel sharded engine a
  // flow's packets can finish on whichever shard owns their last switch,
  // so concurrent epochs may record from several workers. Every count and
  // timeline bucket is a pure accumulator keyed by the simulation
  // timestamp, so the final report is independent of record() call order -
  // which is what keeps parallel runs bit-identical to sequential ones.
  void record(sim::SimTime at, PacketOutcome outcome);

  // Readers are only safe once the simulation has quiesced (the executor
  // reads after run()); they are not synchronized against record().
  const MonitorReport& report() const noexcept { return report_; }

  struct Bucket {
    std::size_t delivered = 0;
    std::size_t bypassed = 0;
    std::size_t looped = 0;
    std::size_t blackholed = 0;
  };
  // Outcome counts per bucket_width window since t=0 (index = t / width).
  const std::vector<Bucket>& timeline() const noexcept { return timeline_; }
  sim::Duration bucket_width() const noexcept { return bucket_width_; }

  // Renders the per-bucket bypass/loop counts as a compact text timeline.
  std::string timeline_to_string() const;

 private:
  sim::Duration bucket_width_;
  std::mutex mutex_;  // guards record() against concurrent shard workers
  MonitorReport report_;
  std::vector<Bucket> timeline_;
};

// Per-flow consistency monitors for a concurrent multi-flow run: every
// in-flight update gets its own ConsistencyMonitor (stable references, so
// traffic sources can hold them across the run) plus an aggregate view over
// all flows observed simultaneously.
class MultiFlowMonitor {
 public:
  explicit MultiFlowMonitor(sim::Duration bucket_width =
                                sim::milliseconds(1))
      : bucket_width_(bucket_width) {}

  // The monitor watching `flow`; created on first use.
  ConsistencyMonitor& monitor(FlowId flow);
  const ConsistencyMonitor* find(FlowId flow) const noexcept;

  const std::map<FlowId, ConsistencyMonitor>& flows() const noexcept {
    return flows_;
  }
  std::size_t flow_count() const noexcept { return flows_.size(); }

  // Outcome counts summed across every flow.
  MonitorReport aggregate() const;

 private:
  sim::Duration bucket_width_;
  std::map<FlowId, ConsistencyMonitor> flows_;
};

}  // namespace tsu::dataplane
