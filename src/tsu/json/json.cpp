#include "tsu/json/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace tsu::json {

// ---------------------------------------------------------------- Object --

Value* Object::find(std::string_view key) {
  for (auto& [k, v] : entries_)
    if (k == key) return &v;
  return nullptr;
}

const Value* Object::find(std::string_view key) const {
  for (const auto& [k, v] : entries_)
    if (k == key) return &v;
  return nullptr;
}

Value& Object::set(std::string key, Value value) {
  if (Value* existing = find(key)) {
    *existing = std::move(value);
    return *existing;
  }
  entries_.emplace_back(std::move(key), std::move(value));
  return entries_.back().second;
}

// ----------------------------------------------------------------- Value --

std::int64_t Value::as_int() const {
  TSU_ASSERT(is_number());
  TSU_ASSERT_MSG(std::nearbyint(num_) == num_, "number is not integral");
  TSU_ASSERT_MSG(num_ >= -9.007199254740992e15 && num_ <= 9.007199254740992e15,
                 "number exceeds exact integer range");
  return static_cast<std::int64_t>(num_);
}

void Value::copy_from(const Value& other) {
  type_ = other.type_;
  bool_ = other.bool_;
  num_ = other.num_;
  str_ = other.str_;
  arr_ = other.arr_ ? std::make_unique<Array>(*other.arr_) : nullptr;
  obj_ = other.obj_ ? std::make_unique<Object>(*other.obj_) : nullptr;
}

bool Value::operator==(const Value& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kNumber: return num_ == other.num_;
    case Type::kString: return str_ == other.str_;
    case Type::kArray: {
      const Array& a = *arr_;
      const Array& b = *other.arr_;
      if (a.size() != b.size()) return false;
      for (std::size_t i = 0; i < a.size(); ++i)
        if (!(a[i] == b[i])) return false;
      return true;
    }
    case Type::kObject: {
      const Object& a = *obj_;
      const Object& b = *other.obj_;
      if (a.size() != b.size()) return false;
      for (const auto& [k, v] : a) {
        const Value* bv = b.find(k);
        if (bv == nullptr || !(v == *bv)) return false;
      }
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------- Parser --

namespace {

class Parser {
 public:
  Parser(std::string_view text, const ParseOptions& options)
      : text_(text), options_(options) {}

  Result<Value> run() {
    skip_ws();
    Result<Value> value = parse_value();
    if (!value.ok()) return value;
    skip_ws();
    if (pos_ != text_.size())
      return fail("trailing characters after JSON document");
    return value;
  }

 private:
  Error fail(std::string message) const {
    return make_error(Errc::kParseError,
                      message + " at offset " + std::to_string(pos_));
  }

  bool eof() const noexcept { return pos_ >= text_.size(); }
  char peek() const noexcept { return text_[pos_]; }
  char take() noexcept { return text_[pos_++]; }

  void skip_ws() noexcept {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        return;
    }
  }

  bool consume(std::string_view word) noexcept {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Result<Value> parse_value() {
    if (depth_ > options_.max_depth) return fail("nesting depth exceeded");
    if (eof()) return fail("unexpected end of input");
    switch (peek()) {
      case 'n':
        if (consume("null")) return Value(nullptr);
        return fail("invalid literal");
      case 't':
        if (consume("true")) return Value(true);
        return fail("invalid literal");
      case 'f':
        if (consume("false")) return Value(false);
        return fail("invalid literal");
      case '"': return parse_string_value();
      case '[': return parse_array();
      case '{': return parse_object();
      default: return parse_number();
    }
  }

  Result<Value> parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || peek() < '0' || peek() > '9') return fail("invalid number");
    if (peek() == '0') {
      ++pos_;
    } else {
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || peek() < '0' || peek() > '9')
        return fail("digit expected after decimal point");
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || peek() < '0' || peek() > '9')
        return fail("digit expected in exponent");
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return fail("invalid number");
    if (!std::isfinite(value)) return fail("number out of range");
    return Value(value);
  }

  Result<Value> parse_string_value() {
    Result<std::string> s = parse_string();
    if (!s.ok()) return s.error();
    return Value(std::move(s).value());
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Result<std::uint32_t> parse_hex4() {
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      if (eof()) return fail("unterminated \\u escape");
      const char c = take();
      value <<= 4;
      if (c >= '0' && c <= '9')
        value |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      else
        return fail("invalid hex digit in \\u escape");
    }
    return value;
  }

  Result<std::string> parse_string() {
    TSU_ASSERT(peek() == '"');
    ++pos_;
    std::string out;
    while (true) {
      if (eof()) return fail("unterminated string");
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) return fail("unterminated escape");
      const char esc = take();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          Result<std::uint32_t> hi = parse_hex4();
          if (!hi.ok()) return hi.error();
          std::uint32_t cp = hi.value();
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
            if (!consume("\\u")) return fail("unpaired high surrogate");
            Result<std::uint32_t> lo = parse_hex4();
            if (!lo.ok()) return lo.error();
            if (lo.value() < 0xDC00 || lo.value() > 0xDFFF)
              return fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo.value() - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unpaired low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: return fail("invalid escape character");
      }
    }
  }

  Result<Value> parse_array() {
    TSU_ASSERT(peek() == '[');
    ++pos_;
    ++depth_;
    Array items;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      --depth_;
      return Value(std::move(items));
    }
    while (true) {
      skip_ws();
      Result<Value> item = parse_value();
      if (!item.ok()) return item;
      items.push_back(std::move(item).value());
      skip_ws();
      if (eof()) return fail("unterminated array");
      const char c = take();
      if (c == ']') {
        --depth_;
        return Value(std::move(items));
      }
      if (c != ',') return fail("expected ',' or ']' in array");
    }
  }

  Result<Value> parse_object() {
    TSU_ASSERT(peek() == '{');
    ++pos_;
    ++depth_;
    Object object;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      --depth_;
      return Value(std::move(object));
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') return fail("expected object key");
      Result<std::string> key = parse_string();
      if (!key.ok()) return key.error();
      skip_ws();
      if (eof() || take() != ':') return fail("expected ':' after object key");
      skip_ws();
      Result<Value> value = parse_value();
      if (!value.ok()) return value;
      object.set(std::move(key).value(), std::move(value).value());
      skip_ws();
      if (eof()) return fail("unterminated object");
      const char c = take();
      if (c == '}') {
        --depth_;
        return Value(std::move(object));
      }
      if (c != ',') return fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  ParseOptions options_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

Result<Value> parse(std::string_view text, const ParseOptions& options) {
  if (text.size() > options.max_bytes)
    return make_error(Errc::kOutOfRange, "JSON input exceeds max_bytes");
  return Parser(text, options).run();
}

// ---------------------------------------------------------------- Writer --

namespace {

void write_escaped(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void write_number(double d, std::string& out) {
  if (std::nearbyint(d) == d && std::abs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(d));
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out += buf;
}

void write_value(const Value& value, const WriteOptions& options, int depth,
                 std::string& out) {
  const auto newline_indent = [&](int d) {
    if (options.indent <= 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(options.indent * d), ' ');
  };
  switch (value.type()) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += value.as_bool() ? "true" : "false"; break;
    case Type::kNumber: write_number(value.as_double(), out); break;
    case Type::kString: write_escaped(value.as_string(), out); break;
    case Type::kArray: {
      const Array& items = value.as_array();
      if (items.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i != 0) out.push_back(',');
        newline_indent(depth + 1);
        write_value(items[i], options, depth + 1, out);
      }
      newline_indent(depth);
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      const Object& object = value.as_object();
      if (object.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      bool first = true;
      for (const auto& [k, v] : object) {
        if (!first) out.push_back(',');
        first = false;
        newline_indent(depth + 1);
        write_escaped(k, out);
        out.push_back(':');
        if (options.indent > 0) out.push_back(' ');
        write_value(v, options, depth + 1, out);
      }
      newline_indent(depth);
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

std::string write(const Value& value, const WriteOptions& options) {
  std::string out;
  write_value(value, options, 0, out);
  return out;
}

}  // namespace tsu::json
