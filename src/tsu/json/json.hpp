// Minimal JSON document model, parser and writer (RFC 8259 subset).
//
// Exists to parse the paper's REST update messages ({"oldpath": [...],
// "newpath": [...], "wp": ..., "interval": ..., "add": [...]}) and to emit
// machine-readable experiment results, without pulling an external
// dependency into an offline build.
//
// Supported: null, booleans, numbers (stored as double, with an integer
// fast-path), strings with \uXXXX escapes (BMP + surrogate pairs -> UTF-8),
// arrays, objects (insertion-ordered). Limits: configurable nesting depth
// and input size; duplicate keys keep the last value (matching common
// loose parsers, including Python's, which the Ryu prototype used).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "tsu/util/status.hpp"

namespace tsu::json {

class Value;

using Array = std::vector<Value>;

// Insertion-ordered object: preserves the order keys appear in the input,
// which keeps round-tripped REST messages diffable.
class Object {
 public:
  Value* find(std::string_view key);
  const Value* find(std::string_view key) const;

  // Inserts or overwrites.
  Value& set(std::string key, Value value);

  bool contains(std::string_view key) const { return find(key) != nullptr; }
  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }

  auto begin() const noexcept { return entries_.begin(); }
  auto end() const noexcept { return entries_.end(); }

 private:
  std::vector<std::pair<std::string, Value>> entries_;
};

enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

class Value {
 public:
  Value() noexcept : type_(Type::kNull) {}
  Value(std::nullptr_t) noexcept : type_(Type::kNull) {}     // NOLINT
  Value(bool b) noexcept : type_(Type::kBool), bool_(b) {}   // NOLINT
  Value(double d) noexcept : type_(Type::kNumber), num_(d) {}          // NOLINT
  Value(std::int64_t i) noexcept                                        // NOLINT
      : type_(Type::kNumber), num_(static_cast<double>(i)) {}
  Value(int i) noexcept : Value(static_cast<std::int64_t>(i)) {}       // NOLINT
  Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}   // NOLINT
  Value(const char* s) : Value(std::string(s)) {}                      // NOLINT
  Value(Array a) : type_(Type::kArray),                                // NOLINT
                   arr_(std::make_unique<Array>(std::move(a))) {}
  Value(Object o) : type_(Type::kObject),                              // NOLINT
                    obj_(std::make_unique<Object>(std::move(o))) {}

  Value(const Value& other) { copy_from(other); }
  Value& operator=(const Value& other) {
    if (this != &other) copy_from(other);
    return *this;
  }
  Value(Value&&) noexcept = default;
  Value& operator=(Value&&) noexcept = default;
  ~Value() = default;

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }
  bool is_bool() const noexcept { return type_ == Type::kBool; }
  bool is_number() const noexcept { return type_ == Type::kNumber; }
  bool is_string() const noexcept { return type_ == Type::kString; }
  bool is_array() const noexcept { return type_ == Type::kArray; }
  bool is_object() const noexcept { return type_ == Type::kObject; }

  bool as_bool() const {
    TSU_ASSERT(is_bool());
    return bool_;
  }
  double as_double() const {
    TSU_ASSERT(is_number());
    return num_;
  }
  // Integer view of a number; asserts the value is integral and in range.
  std::int64_t as_int() const;
  const std::string& as_string() const {
    TSU_ASSERT(is_string());
    return str_;
  }
  const Array& as_array() const {
    TSU_ASSERT(is_array());
    return *arr_;
  }
  Array& as_array() {
    TSU_ASSERT(is_array());
    return *arr_;
  }
  const Object& as_object() const {
    TSU_ASSERT(is_object());
    return *obj_;
  }
  Object& as_object() {
    TSU_ASSERT(is_object());
    return *obj_;
  }

  bool operator==(const Value& other) const;

 private:
  void copy_from(const Value& other);

  Type type_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::unique_ptr<Array> arr_;
  std::unique_ptr<Object> obj_;
};

struct ParseOptions {
  std::size_t max_depth = 64;
  std::size_t max_bytes = 16u << 20;  // 16 MiB
};

// Parses exactly one JSON document; trailing non-whitespace is an error.
Result<Value> parse(std::string_view text, const ParseOptions& options = {});

struct WriteOptions {
  // 0 = compact; otherwise pretty-print with this indent width.
  int indent = 0;
};

std::string write(const Value& value, const WriteOptions& options = {});

}  // namespace tsu::json
