#include "tsu/topo/instances.hpp"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "tsu/graph/path.hpp"
#include "tsu/update/schedulers.hpp"
#include "tsu/util/assert.hpp"

namespace tsu::topo {

Fig1 fig1() {
  const graph::Path old_route{1, 2, 3, 4, 8, 5, 6, 12};
  const graph::Path new_route{1, 7, 5, 3, 2, 9, 10, 11, 12};
  Result<update::Instance> inst =
      update::Instance::make(old_route, new_route, NodeId{3});
  TSU_ASSERT_MSG(inst.ok(), "fig1 instance must validate");

  graph::Digraph g(13);  // switch ids 1..12 (index 0 unused)
  graph::add_path_edges(g, old_route);
  graph::add_path_edges(g, new_route);
  g.make_bidirectional();
  Topology topo(std::move(g));
  topo.add_host("h1", 1);
  topo.add_host("h2", 12);
  return Fig1{std::move(topo), std::move(inst).value()};
}

update::Instance reversal_instance(std::size_t n) {
  TSU_ASSERT_MSG(n >= 4, "reversal instance needs at least 4 nodes");
  graph::Path old_path(n);
  for (std::size_t i = 0; i < n; ++i) old_path[i] = static_cast<NodeId>(i);
  graph::Path new_path;
  new_path.push_back(0);
  for (std::size_t i = n - 2; i >= 1; --i)
    new_path.push_back(static_cast<NodeId>(i));
  new_path.push_back(static_cast<NodeId>(n - 1));
  Result<update::Instance> inst =
      update::Instance::make(std::move(old_path), std::move(new_path));
  TSU_ASSERT(inst.ok());
  return std::move(inst).value();
}

update::Instance random_instance(Rng& rng,
                                 const RandomInstanceOptions& options) {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const std::size_t old_interior =
        rng.uniform_u64(options.old_interior_min, options.old_interior_max);
    // Node universe: 0 = source; 1..old_interior = old interior;
    // fresh nodes allocated from old_interior + 2 upwards; destination is
    // old_interior + 1.
    const NodeId destination = static_cast<NodeId>(old_interior + 1);
    graph::Path old_path;
    old_path.push_back(0);
    for (std::size_t i = 1; i <= old_interior; ++i)
      old_path.push_back(static_cast<NodeId>(i));
    old_path.push_back(destination);

    NodeId next_fresh = static_cast<NodeId>(old_interior + 2);
    const std::size_t new_interior =
        rng.uniform_u64(options.new_len_min, options.new_len_max);
    graph::Path new_path;
    new_path.push_back(0);
    std::unordered_set<NodeId> used{0, destination};
    for (std::size_t i = 0; i < new_interior; ++i) {
      NodeId v = kInvalidNode;
      if (rng.bernoulli(options.reuse_probability)) {
        // Try to reuse an old interior node not yet on the new path.
        std::vector<NodeId> available;
        for (std::size_t j = 1; j <= old_interior; ++j) {
          const NodeId cand = static_cast<NodeId>(j);
          if (used.find(cand) == used.end()) available.push_back(cand);
        }
        if (!available.empty()) v = rng.pick(available);
      }
      if (v == kInvalidNode) v = next_fresh++;
      used.insert(v);
      new_path.push_back(v);
    }
    new_path.push_back(destination);

    std::optional<NodeId> waypoint;
    if (options.with_waypoint) {
      // The waypoint must be interior to both paths; candidates are old
      // interior nodes already on the new path.
      std::vector<NodeId> candidates;
      for (std::size_t j = 1; j <= old_interior; ++j) {
        const NodeId cand = static_cast<NodeId>(j);
        if (graph::contains(new_path, cand)) candidates.push_back(cand);
      }
      if (candidates.empty()) {
        // Force one: replace a random interior new-path node by a random
        // unused old interior node.
        std::vector<NodeId> unused_old;
        for (std::size_t j = 1; j <= old_interior; ++j) {
          const NodeId cand = static_cast<NodeId>(j);
          if (!graph::contains(new_path, cand)) unused_old.push_back(cand);
        }
        if (unused_old.empty() || new_path.size() < 3) continue;  // retry
        const NodeId wp = rng.pick(unused_old);
        const std::size_t slot = 1 + rng.index(new_path.size() - 2);
        new_path[slot] = wp;
        candidates.push_back(wp);
      }
      waypoint = rng.pick(candidates);
    }

    Result<update::Instance> inst =
        update::Instance::make(old_path, new_path, waypoint);
    if (inst.ok()) return std::move(inst).value();
  }
  TSU_ASSERT_MSG(false, "random_instance failed to converge");
  // Unreachable; keeps the compiler happy.
  return std::move(
      update::Instance::make({0, 1}, {0, 1}, std::nullopt)).value();
}

std::vector<update::Instance> pool_workload(std::size_t count,
                                            std::size_t pool_switches) {
  const std::size_t blocks = pool_switches / 6;
  TSU_ASSERT_MSG(blocks > 0, "pool_workload needs at least 6 switches");
  std::vector<update::Instance> instances;
  instances.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId base = static_cast<NodeId>((i % blocks) * 6);
    const graph::Path old_path{base, base + 1, base + 2, base + 3};
    const graph::Path new_path{base, base + 4, base + 5, base + 3};
    instances.push_back(
        std::move(update::Instance::make(old_path, new_path)).value());
  }
  return instances;
}

Result<PlannedPoolWorkload> planned_pool_workload(std::size_t count,
                                                  std::size_t pool_switches) {
  PlannedPoolWorkload w;
  w.instances = pool_workload(count, pool_switches);
  w.schedules.reserve(count);
  for (const update::Instance& inst : w.instances) {
    Result<update::Schedule> schedule = update::plan_peacock(inst);
    if (!schedule.ok()) return schedule.error();
    w.schedules.push_back(std::move(schedule).value());
  }
  for (std::size_t i = 0; i < count; ++i) {
    w.instance_ptrs.push_back(&w.instances[i]);
    w.schedule_ptrs.push_back(&w.schedules[i]);
  }
  return w;
}

Topology topology_for(const update::Instance& inst) {
  graph::Digraph g(inst.node_count());
  graph::add_path_edges(g, inst.old_path());
  graph::add_path_edges(g, inst.new_path());
  g.make_bidirectional();
  Topology topo(std::move(g));
  topo.add_host("h_src", inst.source());
  topo.add_host("h_dst", inst.destination());
  return topo;
}

}  // namespace tsu::topo
