// Switch -> controller-shard partitioners for the sharded control plane
// (controller/shard.hpp). Three schemes:
//
//   kHash       stateless splitmix64 over the NodeId: spreads any topology
//               evenly and makes most multi-switch updates span shards -
//               the stress case for the coordinator's cross-shard round
//               protocol.
//   kBlock      contiguous, topology-aware ranges over [0, node_count):
//               consecutive NodeIds - which the generators lay out along
//               paths and pool blocks - stay on one shard, so most updates
//               are shard-local and coordination only pays at range
//               boundaries.
//   kGreedyCut  workload-aware: make_greedy_cut_partition() greedily
//               assigns switches to balanced shards so as to minimize the
//               cut of the workload's switch co-occurrence graph (switches
//               touched by the same update want the same shard). Fewer cut
//               edges means fewer cross-shard rounds for the coordinator
//               to barrier on and wider safe horizons for the parallel
//               stepper (sim/sharded.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "tsu/util/ids.hpp"

namespace tsu::topo {

enum class PartitionScheme : std::uint8_t {
  kHash = 0,
  kBlock = 1,
  kGreedyCut = 2,
};

const char* to_string(PartitionScheme scheme) noexcept;
std::optional<PartitionScheme> partition_scheme_from_string(
    std::string_view name) noexcept;

// One weighted edge of the workload's switch co-occurrence graph: `weight`
// updates touch both `a` and `b`.
struct SwitchAffinity {
  NodeId a = 0;
  NodeId b = 0;
  std::size_t weight = 1;
};

// Maps every switch to the controller shard that owns it. For kHash/kBlock
// the mapping is a pure function of (shards, scheme, node_count); kGreedyCut
// additionally carries an explicit per-switch table computed from the
// workload (make_greedy_cut_partition). Every layer that needs the mapping
// - the executor harness, the coordinator's request splitter, reply routing
// - shares the same partition object, so they always agree.
class SwitchPartition {
 public:
  // Everything on shard 0 (the unsharded controller).
  SwitchPartition() = default;

  // `node_count` bounds the id space for kBlock's contiguous ranges (ids
  // at or beyond it fall into the last range); kHash ignores it.
  SwitchPartition(std::size_t shards, PartitionScheme scheme,
                  std::size_t node_count);

  std::size_t shards() const noexcept { return shards_; }
  PartitionScheme scheme() const noexcept { return scheme_; }

  std::size_t shard_of(NodeId node) const noexcept;

  // Sum of affinity weights whose endpoints land on different shards under
  // this partition - the coordination the workload will pay.
  std::size_t cut_weight(const std::vector<SwitchAffinity>& edges) const;

 private:
  friend SwitchPartition make_greedy_cut_partition(
      std::size_t shards, std::size_t node_count,
      const std::vector<SwitchAffinity>& edges);

  std::size_t shards_ = 1;
  PartitionScheme scheme_ = PartitionScheme::kHash;
  std::size_t node_count_ = 0;
  // kGreedyCut only: explicit assignment by NodeId (ids beyond the table
  // fall back to kBlock's ranges, which kGreedyCut uses for untouched ids).
  std::vector<std::uint32_t> table_;
};

// Builds a kGreedyCut partition: switches in descending affinity degree
// are placed on the shard they have the most affinity weight with, subject
// to a balanced capacity of ceil(node_count / shards) switches per shard;
// ties and isolated switches fall back to kBlock's contiguous ranges.
// Deterministic for a given edge list.
SwitchPartition make_greedy_cut_partition(
    std::size_t shards, std::size_t node_count,
    const std::vector<SwitchAffinity>& edges);

}  // namespace tsu::topo
