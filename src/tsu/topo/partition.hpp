// Switch -> controller-shard partitioners for the sharded control plane
// (controller/shard.hpp). Two schemes:
//
//   kHash   stateless splitmix64 over the NodeId: spreads any topology
//           evenly and makes most multi-switch updates span shards - the
//           stress case for the coordinator's cross-shard round protocol.
//   kBlock  contiguous, topology-aware ranges over [0, node_count):
//           consecutive NodeIds - which the generators lay out along paths
//           and pool blocks - stay on one shard, so most updates are
//           shard-local and coordination only pays at range boundaries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

#include "tsu/util/ids.hpp"

namespace tsu::topo {

enum class PartitionScheme : std::uint8_t {
  kHash = 0,
  kBlock = 1,
};

const char* to_string(PartitionScheme scheme) noexcept;
std::optional<PartitionScheme> partition_scheme_from_string(
    std::string_view name) noexcept;

// Maps every switch to the controller shard that owns it. Pure function of
// (shards, scheme, node_count): every layer that needs the mapping - the
// executor harness, the coordinator's request splitter, reply routing -
// derives the same partition from the same config.
class SwitchPartition {
 public:
  // Everything on shard 0 (the unsharded controller).
  SwitchPartition() = default;

  // `node_count` bounds the id space for kBlock's contiguous ranges (ids
  // at or beyond it fall into the last range); kHash ignores it.
  SwitchPartition(std::size_t shards, PartitionScheme scheme,
                  std::size_t node_count);

  std::size_t shards() const noexcept { return shards_; }
  PartitionScheme scheme() const noexcept { return scheme_; }

  std::size_t shard_of(NodeId node) const noexcept;

 private:
  std::size_t shards_ = 1;
  PartitionScheme scheme_ = PartitionScheme::kHash;
  std::size_t node_count_ = 0;
};

}  // namespace tsu::topo
