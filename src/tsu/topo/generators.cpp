#include "tsu/topo/generators.hpp"

#include <cmath>
#include <vector>

namespace tsu::topo {

Topology line(std::size_t n) {
  TSU_ASSERT(n >= 1);
  graph::Digraph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  g.make_bidirectional();
  return Topology(std::move(g));
}

Topology ring(std::size_t n) {
  TSU_ASSERT(n >= 3);
  graph::Digraph g(n);
  for (NodeId v = 0; v < n; ++v)
    g.add_edge(v, static_cast<NodeId>((v + 1) % n));
  g.make_bidirectional();
  return Topology(std::move(g));
}

Topology grid(std::size_t rows, std::size_t cols) {
  TSU_ASSERT(rows >= 1 && cols >= 1);
  graph::Digraph g(rows * cols);
  const auto at = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(at(r, c), at(r, c + 1));
      if (r + 1 < rows) g.add_edge(at(r, c), at(r + 1, c));
    }
  }
  g.make_bidirectional();
  return Topology(std::move(g));
}

namespace {

// Random spanning line so the generated graph is connected.
void add_spanning_line(graph::Digraph& g, Rng& rng) {
  std::vector<NodeId> order(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) order[v] = v;
  rng.shuffle(order);
  for (std::size_t i = 0; i + 1 < order.size(); ++i)
    g.add_edge(order[i], order[i + 1]);
}

}  // namespace

Topology erdos_renyi(std::size_t n, double p, Rng& rng) {
  TSU_ASSERT(n >= 2);
  graph::Digraph g(n);
  add_spanning_line(g, rng);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = static_cast<NodeId>(u + 1); v < n; ++v)
      if (rng.bernoulli(p)) g.add_edge(u, v);
  g.make_bidirectional();
  return Topology(std::move(g));
}

Topology waxman(std::size_t n, double alpha, double beta, Rng& rng) {
  TSU_ASSERT(n >= 2);
  std::vector<std::pair<double, double>> position(n);
  for (auto& [x, y] : position) {
    x = rng.uniform01();
    y = rng.uniform01();
  }
  graph::Digraph g(n);
  add_spanning_line(g, rng);
  const double max_dist = std::sqrt(2.0);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = static_cast<NodeId>(u + 1); v < n; ++v) {
      const double dx = position[u].first - position[v].first;
      const double dy = position[u].second - position[v].second;
      const double dist = std::sqrt(dx * dx + dy * dy);
      if (rng.bernoulli(alpha * std::exp(-dist / (beta * max_dist))))
        g.add_edge(u, v);
    }
  }
  g.make_bidirectional();
  return Topology(std::move(g));
}

}  // namespace tsu::topo
