// Request arrival processes for the open-loop service mode: instead of
// submitting a whole workload at warmup and draining (closed loop), the
// service executor draws successive interarrival gaps from one of these
// processes and injects update requests into the running engine at the
// drawn sim times - the offered load is independent of the system's
// completion rate, which is what makes saturation and backpressure
// observable.
//
// Two families:
//   - Poisson: i.i.d. exponential gaps with a configured mean rate. The
//     classic open-loop model; bursty at every timescale.
//   - Trace: an explicit interarrival list (e.g. replayed from a real
//     controller log), optionally cycled to extend past its own length.
//
// Determinism: a process is a pure function of (its parameters, the Rng
// stream it is handed), so a seeded service run is reproducible.
#pragma once

#include <cstddef>
#include <vector>

#include "tsu/sim/distributions.hpp"
#include "tsu/sim/time.hpp"
#include "tsu/util/rng.hpp"

namespace tsu::topo {

class ArrivalProcess {
 public:
  // Poisson arrivals at `rate_per_sec` requests/second (exponential gaps
  // with mean 1e9 / rate ns). Requires rate_per_sec > 0.
  static ArrivalProcess poisson(double rate_per_sec);

  // Deterministic gaps: every gap is exactly `gap` (rate 1/gap). The
  // smoothest possible offered load at the same mean rate as poisson() -
  // useful to separate queueing caused by burstiness from queueing caused
  // by plain overload.
  static ArrivalProcess uniform_spaced(sim::Duration gap);

  // Trace-driven: gap i is interarrivals[i]. When `cycle` the list repeats
  // from the start after its last entry; otherwise the process is
  // exhausted once the list runs out. Requires a non-empty list.
  static ArrivalProcess trace(std::vector<sim::Duration> interarrivals,
                              bool cycle = true);

  // The next interarrival gap. Must not be called when exhausted().
  sim::Duration next_gap(Rng& rng);

  // True once a non-cycling trace has produced every entry. Poisson,
  // uniform and cycling-trace processes never exhaust.
  bool exhausted() const noexcept;

  // Mean offered rate in requests/second (trace: over one pass).
  double rate_per_sec() const noexcept;

  // Number of gaps produced so far.
  std::uint64_t produced() const noexcept { return produced_; }

 private:
  enum class Kind : unsigned char { kPoisson, kUniform, kTrace };

  ArrivalProcess() = default;

  Kind kind_ = Kind::kPoisson;
  sim::LatencyModel gap_model_;            // kPoisson / kUniform
  std::vector<sim::Duration> trace_;       // kTrace
  bool cycle_ = true;
  std::size_t trace_pos_ = 0;
  std::uint64_t produced_ = 0;
};

}  // namespace tsu::topo
