#include "tsu/topo/topology.hpp"

#include <sstream>

namespace tsu::topo {

Topology::Topology(graph::Digraph g) : graph_(std::move(g)) {
  dpids_.resize(graph_.node_count());
  for (NodeId v = 0; v < graph_.node_count(); ++v)
    dpids_[v] = static_cast<DatapathId>(v);
}

void Topology::set_dpid(NodeId node, DatapathId dpid) {
  TSU_ASSERT(node < graph_.node_count());
  if (dpids_.size() < graph_.node_count())
    dpids_.resize(graph_.node_count());
  dpids_[node] = dpid;
}

DatapathId Topology::dpid(NodeId node) const {
  TSU_ASSERT(node < graph_.node_count());
  if (node < dpids_.size()) return dpids_[node];
  return static_cast<DatapathId>(node);
}

std::optional<NodeId> Topology::node_of_dpid(DatapathId dpid) const {
  for (NodeId v = 0; v < graph_.node_count(); ++v)
    if (this->dpid(v) == dpid) return v;
  return std::nullopt;
}

void Topology::add_host(std::string name, NodeId attached) {
  TSU_ASSERT(attached < graph_.node_count());
  hosts_.push_back(Host{std::move(name), attached});
}

std::string Topology::to_string() const {
  std::ostringstream out;
  out << "topology: " << graph_.node_count() << " switches, "
      << graph_.edge_count() << " links, " << hosts_.size() << " hosts";
  return out.str();
}

}  // namespace tsu::topo
