// Network topology: the switch graph plus host attachment points and the
// NodeId <-> DatapathId mapping used by the control plane (Ryu identifies
// switches by integer datapath numbers; the paper's REST messages carry
// routes as lists of <dp-num>).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "tsu/graph/graph.hpp"
#include "tsu/util/ids.hpp"
#include "tsu/util/status.hpp"

namespace tsu::topo {

struct Host {
  std::string name;
  NodeId attached = kInvalidNode;
};

class Topology {
 public:
  Topology() = default;
  explicit Topology(graph::Digraph g);

  const graph::Digraph& graph() const noexcept { return graph_; }
  graph::Digraph& graph() noexcept { return graph_; }

  std::size_t switch_count() const noexcept { return graph_.node_count(); }

  // By default a node's datapath id is its node id; deployments with
  // non-trivial numbering can override.
  void set_dpid(NodeId node, DatapathId dpid);
  DatapathId dpid(NodeId node) const;
  std::optional<NodeId> node_of_dpid(DatapathId dpid) const;

  void add_host(std::string name, NodeId attached);
  const std::vector<Host>& hosts() const noexcept { return hosts_; }

  std::string to_string() const;

 private:
  graph::Digraph graph_;
  std::vector<DatapathId> dpids_;
  std::vector<Host> hosts_;
};

}  // namespace tsu::topo
