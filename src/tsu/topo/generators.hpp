// Topology generators: deterministic shapes (line, ring, grid) and random
// families (Erdős–Rényi, Waxman) used to embed update instances in
// realistic-looking networks for the benches.
#pragma once

#include <cstddef>

#include "tsu/topo/topology.hpp"
#include "tsu/util/rng.hpp"

namespace tsu::topo {

// 0 - 1 - ... - (n-1), bidirectional links.
Topology line(std::size_t n);

// Line plus the closing link, bidirectional.
Topology ring(std::size_t n);

// rows x cols mesh, bidirectional.
Topology grid(std::size_t rows, std::size_t cols);

// G(n, p) with bidirectional links; guarantees connectivity by first laying
// a random spanning line.
Topology erdos_renyi(std::size_t n, double p, Rng& rng);

// Waxman random graph: nodes placed uniformly in the unit square, link
// probability alpha * exp(-dist / (beta * sqrt(2))); spanning line ensures
// connectivity. Classic topology model for WAN-ish SDN evaluations.
Topology waxman(std::size_t n, double alpha, double beta, Rng& rng);

}  // namespace tsu::topo
