#include "tsu/topo/partition.hpp"

#include <algorithm>

namespace tsu::topo {

namespace {

// splitmix64 finalizer: cheap, stateless, well-mixed over dense NodeIds.
std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

const char* to_string(PartitionScheme scheme) noexcept {
  switch (scheme) {
    case PartitionScheme::kHash: return "hash";
    case PartitionScheme::kBlock: return "block";
  }
  return "?";
}

std::optional<PartitionScheme> partition_scheme_from_string(
    std::string_view name) noexcept {
  if (name == "hash") return PartitionScheme::kHash;
  if (name == "block") return PartitionScheme::kBlock;
  return std::nullopt;
}

SwitchPartition::SwitchPartition(std::size_t shards, PartitionScheme scheme,
                                 std::size_t node_count)
    : shards_(shards == 0 ? 1 : shards),
      scheme_(scheme),
      node_count_(node_count) {}

std::size_t SwitchPartition::shard_of(NodeId node) const noexcept {
  if (shards_ <= 1) return 0;
  if (scheme_ == PartitionScheme::kHash)
    return static_cast<std::size_t>(splitmix64(node) % shards_);
  // kBlock: equal contiguous ranges over [0, node_count_).
  const std::size_t count = node_count_ == 0 ? 1 : node_count_;
  const std::size_t clamped = std::min<std::size_t>(node, count - 1);
  return std::min(clamped * shards_ / count, shards_ - 1);
}

}  // namespace tsu::topo
