#include "tsu/topo/partition.hpp"

#include <algorithm>
#include <unordered_map>

namespace tsu::topo {

namespace {

// splitmix64 finalizer: cheap, stateless, well-mixed over dense NodeIds.
std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// kBlock's contiguous ranges; also the fallback for ids a greedy table
// does not cover.
std::size_t block_shard(NodeId node, std::size_t shards,
                        std::size_t node_count) noexcept {
  const std::size_t count = node_count == 0 ? 1 : node_count;
  const std::size_t clamped = std::min<std::size_t>(node, count - 1);
  return std::min(clamped * shards / count, shards - 1);
}

}  // namespace

const char* to_string(PartitionScheme scheme) noexcept {
  switch (scheme) {
    case PartitionScheme::kHash: return "hash";
    case PartitionScheme::kBlock: return "block";
    case PartitionScheme::kGreedyCut: return "greedy_cut";
  }
  return "?";
}

std::optional<PartitionScheme> partition_scheme_from_string(
    std::string_view name) noexcept {
  if (name == "hash") return PartitionScheme::kHash;
  if (name == "block") return PartitionScheme::kBlock;
  if (name == "greedy_cut") return PartitionScheme::kGreedyCut;
  return std::nullopt;
}

SwitchPartition::SwitchPartition(std::size_t shards, PartitionScheme scheme,
                                 std::size_t node_count)
    : shards_(shards == 0 ? 1 : shards),
      scheme_(scheme),
      node_count_(node_count) {}

std::size_t SwitchPartition::shard_of(NodeId node) const noexcept {
  if (shards_ <= 1) return 0;
  if (scheme_ == PartitionScheme::kGreedyCut && node < table_.size())
    return table_[node];
  if (scheme_ == PartitionScheme::kHash)
    return static_cast<std::size_t>(splitmix64(node) % shards_);
  // kBlock (and the greedy fallback for ids beyond the table): equal
  // contiguous ranges over [0, node_count_).
  return block_shard(node, shards_, node_count_);
}

std::size_t SwitchPartition::cut_weight(
    const std::vector<SwitchAffinity>& edges) const {
  std::size_t cut = 0;
  for (const SwitchAffinity& edge : edges)
    if (shard_of(edge.a) != shard_of(edge.b)) cut += edge.weight;
  return cut;
}

SwitchPartition make_greedy_cut_partition(
    std::size_t shards, std::size_t node_count,
    const std::vector<SwitchAffinity>& edges) {
  SwitchPartition partition(shards, PartitionScheme::kGreedyCut, node_count);
  if (partition.shards() <= 1 || node_count == 0) return partition;

  const std::size_t count = partition.shards();
  // Balanced capacity: the parallel stepper is only as fast as its
  // busiest shard, so the cut is minimized subject to even switch counts.
  const std::size_t capacity = (node_count + count - 1) / count;

  // Adjacency of the affinity graph (merged parallel edges).
  std::vector<std::vector<std::pair<NodeId, std::size_t>>> adjacent(
      node_count);
  std::vector<std::size_t> degree(node_count, 0);
  for (const SwitchAffinity& edge : edges) {
    if (edge.a >= node_count || edge.b >= node_count || edge.a == edge.b)
      continue;
    adjacent[edge.a].emplace_back(edge.b, edge.weight);
    adjacent[edge.b].emplace_back(edge.a, edge.weight);
    degree[edge.a] += edge.weight;
    degree[edge.b] += edge.weight;
  }

  // Heaviest switches place first (their edges are the expensive ones to
  // cut); NodeId breaks ties so the result is deterministic.
  std::vector<NodeId> order(node_count);
  for (NodeId v = 0; v < node_count; ++v) order[v] = v;
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (degree[a] != degree[b]) return degree[a] > degree[b];
    return a < b;
  });

  constexpr std::uint32_t kUnassigned = ~0u;
  std::vector<std::uint32_t> table(node_count, kUnassigned);
  std::vector<std::size_t> load(count, 0);
  std::vector<std::size_t> attraction(count, 0);
  for (const NodeId v : order) {
    // Attraction: affinity weight towards already-placed neighbours.
    std::fill(attraction.begin(), attraction.end(), 0);
    for (const auto& [peer, weight] : adjacent[v])
      if (table[peer] != kUnassigned) attraction[table[peer]] += weight;
    // Best open shard by (attraction, then load, then index) - isolated
    // switches land on the least-loaded shard, keeping the balance tight.
    std::size_t best = count;
    for (std::size_t s = 0; s < count; ++s) {
      if (load[s] >= capacity) continue;
      if (best == count || attraction[s] > attraction[best] ||
          (attraction[s] == attraction[best] && load[s] < load[best]))
        best = s;
    }
    if (best == count) best = block_shard(v, count, node_count);  // all full
    table[v] = static_cast<std::uint32_t>(best);
    if (best < count) ++load[best];
  }

  partition.table_ = std::move(table);
  return partition;
}

}  // namespace tsu::topo
