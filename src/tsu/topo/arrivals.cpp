#include "tsu/topo/arrivals.hpp"

#include <numeric>
#include <utility>

#include "tsu/util/log.hpp"

namespace tsu::topo {

ArrivalProcess ArrivalProcess::poisson(double rate_per_sec) {
  TSU_ASSERT_MSG(rate_per_sec > 0, "poisson arrival rate must be positive");
  ArrivalProcess p;
  p.kind_ = Kind::kPoisson;
  p.gap_model_ = sim::LatencyModel::exponential(
      static_cast<sim::Duration>(1e9 / rate_per_sec));
  return p;
}

ArrivalProcess ArrivalProcess::uniform_spaced(sim::Duration gap) {
  TSU_ASSERT_MSG(gap > 0, "uniform arrival gap must be positive");
  ArrivalProcess p;
  p.kind_ = Kind::kUniform;
  p.gap_model_ = sim::LatencyModel::constant(gap);
  return p;
}

ArrivalProcess ArrivalProcess::trace(std::vector<sim::Duration> interarrivals,
                                     bool cycle) {
  TSU_ASSERT_MSG(!interarrivals.empty(), "arrival trace must be non-empty");
  ArrivalProcess p;
  p.kind_ = Kind::kTrace;
  p.trace_ = std::move(interarrivals);
  p.cycle_ = cycle;
  return p;
}

sim::Duration ArrivalProcess::next_gap(Rng& rng) {
  TSU_ASSERT_MSG(!exhausted(), "next_gap() on an exhausted arrival trace");
  ++produced_;
  if (kind_ != Kind::kTrace) return gap_model_.sample(rng);
  const sim::Duration gap = trace_[trace_pos_];
  ++trace_pos_;
  if (cycle_ && trace_pos_ == trace_.size()) trace_pos_ = 0;
  return gap;
}

bool ArrivalProcess::exhausted() const noexcept {
  return kind_ == Kind::kTrace && !cycle_ && trace_pos_ >= trace_.size();
}

double ArrivalProcess::rate_per_sec() const noexcept {
  if (kind_ != Kind::kTrace) {
    const double mean_ns = gap_model_.mean();
    return mean_ns > 0 ? 1e9 / mean_ns : 0;
  }
  const double total = std::accumulate(trace_.begin(), trace_.end(), 0.0);
  return total > 0 ? static_cast<double>(trace_.size()) * 1e9 / total : 0;
}

}  // namespace tsu::topo
