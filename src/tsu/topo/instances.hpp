// Update-instance workloads: the paper's Figure 1 scenario and the seeded
// random families used by the property tests and the scaling benches.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "tsu/topo/topology.hpp"
#include "tsu/update/instance.hpp"
#include "tsu/update/schedule.hpp"
#include "tsu/util/rng.hpp"
#include "tsu/util/status.hpp"

namespace tsu::topo {

// The demo scenario of the paper's Figure 1: 12 OpenFlow switches, host h1
// at switch 1, host h2 at switch 12, waypoint (firewall/IDS) at switch 3;
// solid-line old route and dashed-line new route. The figure does not label
// every edge, so the concrete routes below are our synthesis under every
// constraint the text states; they are chosen *adversarially* - non-empty
// X and Y conflict sets and backward moves - so the scenario exercises all
// WayUp rounds and Peacock's backward phase (see DESIGN.md section 1).
//   old route: <1, 2, 3, 4, 8, 5, 6, 12>
//   new route: <1, 7, 5, 3, 2, 9, 10, 11, 12>
struct Fig1 {
  Topology topology;
  update::Instance instance;
};

Fig1 fig1();

// Reversal family: old path 0,1,...,n-1; the new path visits the interior
// in reverse order. Strong loop freedom needs Θ(n) rounds here while
// relaxed schedulers stay flat - the PODC'15 contrast (bench E4).
update::Instance reversal_instance(std::size_t n);

struct RandomInstanceOptions {
  std::size_t old_interior_min = 3;   // interior nodes of the old path
  std::size_t old_interior_max = 8;
  std::size_t new_len_min = 3;        // interior nodes of the new path
  std::size_t new_len_max = 8;
  // Probability that the next new-path node is drawn from the old path's
  // interior (creating overlap, backward moves and X/Y conflicts) rather
  // than being a fresh node.
  double reuse_probability = 0.6;
  bool with_waypoint = true;
};

// Seeded random two-path instance. Paths share endpoints; when
// `with_waypoint` the waypoint is interior to both paths. The generator
// retries internally until a valid instance emerges (always terminates:
// a fresh-node path is always valid).
update::Instance random_instance(Rng& rng,
                                 const RandomInstanceOptions& options = {});

// Embeds an instance's edges into a topology (union of both paths as links,
// made bidirectional), hosts at the endpoints. Gives the data-plane
// simulator something to route over.
Topology topology_for(const update::Instance& inst);

// Shared-pool workload for admission and scale experiments: `count` update
// instances whose nodes come from a pool of `pool_switches` switches
// (rounded down to whole blocks of 6). Instance i lives in block
// i % (pool / 6): old route <b, b+1, b+2, b+3>, new route
// <b, b+4, b+5, b+3>. With more instances than blocks, instances share
// switches (switch-level overlap) while their rules stay disjoint per flow
// - the workload where rule-level admission beats switch-level and blind
// stays safe. Requires pool_switches >= 6.
std::vector<update::Instance> pool_workload(std::size_t count,
                                            std::size_t pool_switches);

// pool_workload with Peacock schedules already planned, plus the pointer
// lists the executors take. The pointer vectors reference this struct's
// own storage (stable across moves: the vectors' heap buffers move with
// it).
struct PlannedPoolWorkload {
  std::vector<update::Instance> instances;
  std::vector<update::Schedule> schedules;
  std::vector<const update::Instance*> instance_ptrs;
  std::vector<const update::Schedule*> schedule_ptrs;
};

Result<PlannedPoolWorkload> planned_pool_workload(std::size_t count,
                                                  std::size_t pool_switches);

}  // namespace tsu::topo
