// Experiment runner: the one-call path used by examples and benches -
// plan, verify, execute, and aggregate across seeds.
#pragma once

#include <string>
#include <vector>

#include "tsu/core/executor.hpp"
#include "tsu/core/planner.hpp"
#include "tsu/stats/summary.hpp"

namespace tsu::core {

struct ExperimentResult {
  Algorithm algorithm = Algorithm::kOneShot;
  update::Schedule schedule;
  verify::CheckReport check;       // model-checker verdict for the schedule
  ExecutionResult execution;       // one simulated run

  std::string summary_line() const;
};

// Plans with `algorithm`, model-checks the schedule against the algorithm's
// guarantee, then executes one simulation run.
Result<ExperimentResult> run_experiment(const update::Instance& inst,
                                        Algorithm algorithm,
                                        const ExecutorConfig& exec_config = {},
                                        const PlannerOptions& plan_options = {});

struct SeedSweep {
  stats::Summary update_ms;        // controller-observed update duration
  stats::Percentiles update_ms_pct;
  stats::Summary bypassed;         // per-run bypassed packet counts
  stats::Summary looped;
  stats::Summary blackholed;
  stats::Summary delivered;
  std::size_t runs = 0;
  std::size_t runs_with_bypass = 0;
  std::size_t runs_with_loop = 0;
  std::size_t runs_with_drop = 0;
};

// Re-executes one planned schedule across `seeds` (channel/install/traffic
// randomness varies; the schedule is fixed).
Result<SeedSweep> sweep_seeds(const update::Instance& inst,
                              const update::Schedule& schedule,
                              ExecutorConfig exec_config,
                              const std::vector<std::uint64_t>& seeds);

}  // namespace tsu::core
