// Executes a schedule against the full simulated control plane - the C++
// equivalent of running the paper's demo once: switches come up with the old
// route installed, traffic flows, the controller pushes the schedule round
// by round over asynchronous channels with barriers, and the consistency
// monitor watches every packet.
//
// The engine behind every entry point runs over CONTROLLER SHARDS
// (controller/shard.hpp): config.controller.shards partitions the switches
// across that many controller instances on a sharded logical clock
// (sim/sharded.hpp), with cross-shard updates coordinated round-by-round.
// The default shards = 1 is the single controller, bit-identical to the
// pre-sharding engine.
#pragma once

#include <cstdint>
#include <vector>

#include "tsu/channel/channel.hpp"
#include "tsu/controller/controller.hpp"
#include "tsu/controller/shard.hpp"
#include "tsu/dataplane/monitor.hpp"
#include "tsu/dataplane/traffic.hpp"
#include "tsu/sim/faults.hpp"
#include "tsu/switchsim/switch.hpp"
#include "tsu/update/instance.hpp"
#include "tsu/update/schedule.hpp"
#include "tsu/util/status.hpp"

namespace tsu::core {

struct ExecutorConfig {
  std::uint64_t seed = 1;
  channel::ChannelConfig channel;
  switchsim::SwitchConfig switch_config;
  controller::ControllerConfig controller;
  FlowId flow = 1;
  std::uint16_t priority = 100;
  sim::Duration interval = 0;        // inter-round pause (REST "interval")
  // Traffic during the update.
  bool with_traffic = true;
  sim::LatencyModel traffic_interarrival =
      sim::LatencyModel::constant(sim::microseconds(200));
  sim::LatencyModel link_latency =
      sim::LatencyModel::constant(sim::microseconds(50));
  int ttl = 64;
  sim::Duration warmup = sim::milliseconds(5);   // traffic before the update
  sim::Duration drain = sim::milliseconds(20);   // observation after it
  // Fault injection (sim/faults.hpp): switch crashes, control-link outages
  // and frame blackholes at scheduled sim times. An EMPTY schedule leaves
  // every digest bit-identical to a build without the subsystem. A
  // non-empty schedule with controller.liveness_timeout == 0 enables fault
  // tolerance with a default 25 ms timeout (every injected fault must be
  // detectable, or the run cannot drain).
  sim::FaultSchedule faults;
};

struct ExecutionResult {
  controller::UpdateMetrics update;        // timings as the controller saw them
  dataplane::MonitorReport traffic;        // packet outcome counts
  std::vector<dataplane::ConsistencyMonitor::Bucket> timeline;
  sim::Duration timeline_bucket = 0;
  std::size_t frames_sent = 0;             // control-channel frames
  std::size_t control_bytes = 0;
  std::size_t packets_injected = 0;

  double update_ms() const noexcept { return sim::to_ms(update.duration()); }
};

// Runs one simulated update. The instance's node ids index the switches;
// the schedule must already be planned for this instance.
Result<ExecutionResult> execute(const update::Instance& inst,
                                const update::Schedule& schedule,
                                const ExecutorConfig& config = {});

// Executes several updates through one controller back-to-back (the paper's
// message queue; bench E8). The controller is forced to max_in_flight = 1,
// so results are per-request in submission order.
Result<std::vector<ExecutionResult>> execute_queue(
    const std::vector<const update::Instance*>& instances,
    const std::vector<const update::Schedule*>& schedules,
    const ExecutorConfig& config = {});

// Executes several updates CONCURRENTLY through one controller: up to
// config.controller.max_in_flight requests progress at once, their rounds
// interleaving on the shared control plane, while per-flow traffic and the
// consistency monitor observe every flow simultaneously. With
// config.controller.batch_frames the controller coalesces same-instant
// messages per switch into Batch frames.
// Batching observability of one engine run (see controller::BatchMode):
// frames actually batched, what triggered the flushes, and the longest any
// message was held in an outbox past readiness (bounded by batch_window).
struct BatchingStats {
  std::size_t batches_sent = 0;
  std::size_t messages_coalesced = 0;
  std::size_t timer_flushes = 0;
  std::size_t budget_flushes = 0;
  std::size_t flush_timers_cancelled = 0;
  sim::Duration max_hold = 0;

  double max_hold_ms() const noexcept { return sim::to_ms(max_hold); }
};

// Sharding observability of one engine run (see controller/shard.hpp and
// sim/sharded.hpp): how many updates spanned shards, what the two-phase
// round barrier cost - the summed spread between the first and last shard
// confirming each cross-shard round - and how the stepping engine ran:
// epochs that stepped shards concurrently, sequential fallback steps at
// collapsed horizons, per-shard event counts (identical across reruns of a
// seed; the parallel determinism test pins this), the workload cut the
// partition paid, and the wall-clock cost of the run loop (steady-clock;
// the simulation itself never reads wall time).
struct ShardStats {
  std::size_t shards = 1;
  sim::ExecMode exec = sim::ExecMode::kSequential;
  std::size_t threads = 1;  // pool lanes actually used (1 when sequential)
  std::size_t cross_shard_updates = 0;
  std::size_t rounds_synced = 0;
  sim::Duration sync_overhead = 0;
  std::size_t parallel_epochs = 0;
  std::size_t horizon_stalls = 0;
  // Interval skips taken by speculative round release
  // (controller.speculate; 0 without conflict-aware admission).
  std::size_t speculative_releases = 0;
  // Epoch launches the work-stealing reorder promoted past a lower-indexed
  // busy shard (controller.steal; sim/sharded.hpp).
  std::size_t steals = 0;
  // Cross-shard mailbox posts that found their SPSC ring full and took the
  // locked overflow path (sim/sharded.hpp) - 0 on a well-sized steady
  // state.
  std::size_t overflow_posts = 0;
  std::vector<std::size_t> events_per_shard;
  // Affinity weight of the workload's switch co-occurrence graph crossing
  // shards under the chosen partition (topo::SwitchPartition::cut_weight).
  std::size_t partition_cut_weight = 0;
  double wall_ms = 0;

  double sync_overhead_ms() const noexcept {
    return sim::to_ms(sync_overhead);
  }
};

struct MultiFlowExecutionResult {
  std::vector<ExecutionResult> flows;     // indexed like the input lists
  dataplane::MonitorReport aggregate;     // outcome counts over all flows
  std::size_t frames_sent = 0;            // control-channel frames, total
  std::size_t control_bytes = 0;
  std::size_t messages_sent = 0;          // logical messages (>= frames)
  std::size_t max_in_flight_observed = 0;
  // Admission stats (see controller/admission.hpp): dependency edges the
  // conflict DAG created, and requests that had to wait on a conflict.
  std::uint64_t conflict_edges = 0;
  std::uint64_t blocked_submissions = 0;
  BatchingStats batching;
  ShardStats sharding;
  // Fault-injection observability (empty unless config.faults is set):
  // injected fault counts, frames lost to them, and the controller's
  // detection/recovery counters (sim/faults.hpp).
  sim::FaultStats faults;
  // Order-insensitive digest of every switch's final flow tables; two runs
  // installed the same forwarding state iff their digests match (the
  // batched-vs-unbatched equivalence oracle, and the sharded-vs-single
  // controller one).
  std::uint64_t final_state_digest = 0;
  // Same digest taken right after the initial rules were installed, before
  // any update ran: what a fully rolled-back, non-resubmitted update must
  // leave behind.
  std::uint64_t initial_state_digest = 0;
  sim::Duration makespan = 0;             // first start -> last finish

  double makespan_ms() const noexcept { return sim::to_ms(makespan); }
};

Result<MultiFlowExecutionResult> execute_multiflow(
    const std::vector<const update::Instance*>& instances,
    const std::vector<const update::Schedule*>& schedules,
    const ExecutorConfig& config = {});

// Executes several policies as ONE multi-policy request whose global rounds
// interleave the per-policy rounds (update::merge_policies +
// controller::request_from_merged; bench E11). Per-policy guarantees carry
// over because each policy's rounds stay ordered and barrier-separated.
struct MergedExecutionResult {
  controller::UpdateMetrics update;              // the single merged update
  std::vector<dataplane::MonitorReport> traffic; // per policy
  std::size_t frames_sent = 0;

  double update_ms() const noexcept { return sim::to_ms(update.duration()); }
};

Result<MergedExecutionResult> execute_merged(
    const std::vector<const update::Instance*>& instances,
    const std::vector<const update::Schedule*>& schedules,
    const ExecutorConfig& config = {});

// Executes a MIX of merged and independent requests through one controller:
// `groups` partitions the policy indexes; each singleton group becomes an
// ordinary per-flow request, each larger group is merged
// (update::merge_policies) into one multi-policy request, and all requests
// then compose through the controller's admission policy - a merged request
// runs concurrently with any independent request whose rule footprint it
// does not overlap. This is execute_merged and execute_multiflow on the
// same control plane at once.
struct MixedExecutionResult {
  std::vector<controller::UpdateMetrics> updates;  // per group, input order
  std::vector<dataplane::MonitorReport> traffic;   // per policy, input order
  dataplane::MonitorReport aggregate;
  std::size_t frames_sent = 0;
  std::size_t max_in_flight_observed = 0;
  std::uint64_t conflict_edges = 0;
  std::uint64_t blocked_submissions = 0;
  BatchingStats batching;
  ShardStats sharding;
  sim::FaultStats faults;
  std::uint64_t final_state_digest = 0;
  std::uint64_t initial_state_digest = 0;
  sim::Duration makespan = 0;

  double makespan_ms() const noexcept { return sim::to_ms(makespan); }
};

Result<MixedExecutionResult> execute_mixed(
    const std::vector<const update::Instance*>& instances,
    const std::vector<const update::Schedule*>& schedules,
    const std::vector<std::vector<std::size_t>>& groups,
    const ExecutorConfig& config = {});

}  // namespace tsu::core
