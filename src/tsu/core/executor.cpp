#include "tsu/core/executor.hpp"

#include <limits>
#include <memory>

#include "tsu/sim/simulator.hpp"
#include "tsu/util/log.hpp"

namespace tsu::core {

namespace {

flow::FlowRule rule_from_mod(const proto::FlowMod& mod) {
  return flow::FlowRule{mod.match, mod.action, mod.priority, mod.cookie};
}

// Everything one simulated run needs, wired together.
struct Harness {
  sim::Simulator sim;
  Rng rng;
  std::vector<std::unique_ptr<switchsim::SimSwitch>> switch_storage;
  std::vector<switchsim::SimSwitch*> switches;  // by NodeId
  std::vector<std::unique_ptr<channel::DuplexChannel>> channels;
  std::unique_ptr<controller::Controller> ctrl;

  explicit Harness(const ExecutorConfig& config) : rng(config.seed) {
    ctrl = std::make_unique<controller::Controller>(sim, config.controller);
  }

  void add_switch(NodeId node, const ExecutorConfig& config) {
    if (node < switches.size() && switches[node] != nullptr) return;
    if (switches.size() <= node) switches.resize(node + 1, nullptr);

    auto sw = std::make_unique<switchsim::SimSwitch>(
        sim, node, static_cast<DatapathId>(node), config.switch_config,
        rng.fork());
    auto duplex = std::make_unique<channel::DuplexChannel>(
        sim, config.channel, rng);

    switchsim::SimSwitch* sw_ptr = sw.get();
    channel::DuplexChannel* duplex_ptr = duplex.get();
    controller::Controller* ctrl_ptr = ctrl.get();

    duplex_ptr->to_switch.set_receiver(
        [sw_ptr](const proto::Message& m) { sw_ptr->receive(m); });
    duplex_ptr->to_controller.set_receiver(
        [ctrl_ptr, node](const proto::Message& m) {
          ctrl_ptr->on_message(node, m);
        });
    sw_ptr->set_controller_link([duplex_ptr](const proto::Message& m) {
      duplex_ptr->to_controller.send(m);
    });
    ctrl->attach_switch(node, [duplex_ptr](const proto::Message& m) {
      duplex_ptr->to_switch.send(m);
    });

    switches[node] = sw_ptr;
    switch_storage.push_back(std::move(sw));
    channels.push_back(std::move(duplex));
  }

  void install_initial(const update::Instance& inst, FlowId flow,
                       std::uint16_t priority) {
    for (const controller::RoundOp& op :
         controller::initial_rules(inst, flow, priority))
      switches[op.node]->table().add(rule_from_mod(op.mod));
  }

  std::size_t total_frames() const {
    std::size_t frames = 0;
    for (const auto& duplex : channels)
      frames += duplex->to_switch.frames_sent() +
                duplex->to_controller.frames_sent();
    return frames;
  }

  std::size_t total_bytes() const {
    std::size_t bytes = 0;
    for (const auto& duplex : channels)
      bytes += duplex->to_switch.bytes_sent() +
               duplex->to_controller.bytes_sent();
    return bytes;
  }
};

void add_instance_switches(Harness& harness, const update::Instance& inst,
                           const ExecutorConfig& config) {
  for (NodeId v = 0; v < inst.node_count(); ++v)
    if (inst.on_old(v) || inst.on_new(v)) harness.add_switch(v, config);
}

}  // namespace

Result<ExecutionResult> execute(const update::Instance& inst,
                                const update::Schedule& schedule,
                                const ExecutorConfig& config) {
  std::vector<const update::Instance*> instances{&inst};
  std::vector<const update::Schedule*> schedules{&schedule};
  Result<std::vector<ExecutionResult>> results =
      execute_queue(instances, schedules, config);
  if (!results.ok()) return results.error();
  TSU_ASSERT(results.value().size() == 1);
  return std::move(results).value()[0];
}

Result<std::vector<ExecutionResult>> execute_queue(
    const std::vector<const update::Instance*>& instances,
    const std::vector<const update::Schedule*>& schedules,
    const ExecutorConfig& config) {
  if (instances.size() != schedules.size() || instances.empty())
    return make_error(Errc::kInvalidArgument,
                      "need matching, non-empty instance/schedule lists");

  Harness harness(config);
  for (const update::Instance* inst : instances)
    add_instance_switches(harness, *inst, config);
  for (std::size_t i = 0; i < instances.size(); ++i)
    harness.install_initial(*instances[i], config.flow + i, config.priority);

  // Per-request traffic and monitors (distinct flow ids).
  std::vector<std::unique_ptr<dataplane::ConsistencyMonitor>> monitors;
  std::vector<std::unique_ptr<dataplane::TrafficSource>> sources;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    monitors.push_back(std::make_unique<dataplane::ConsistencyMonitor>());
    if (!config.with_traffic) continue;
    const update::Instance& inst = *instances[i];
    dataplane::TrafficConfig traffic;
    traffic.flow = config.flow + i;
    traffic.ingress = inst.source();
    traffic.egress = inst.destination();
    traffic.waypoint = inst.waypoint();
    traffic.interarrival = config.traffic_interarrival;
    traffic.link_latency = config.link_latency;
    traffic.ttl = config.ttl;
    traffic.start = 0;
    traffic.stop = std::numeric_limits<sim::SimTime>::max();
    sources.push_back(std::make_unique<dataplane::TrafficSource>(
        harness.sim, harness.switches, traffic, harness.rng.fork(),
        *monitors[i]));
  }

  // Stop injecting `drain` after the last update completes.
  std::size_t done_count = 0;
  harness.ctrl->set_on_update_done(
      [&](const controller::UpdateMetrics&) {
        if (++done_count != instances.size()) return;
        // Give in-flight packets and the monitor a drain window.
        // (set_stop is monotone: injection checks the new bound.)
        for (auto& source : sources)
          if (source) source->set_stop(harness.sim.now() + config.drain);
      });

  for (auto& source : sources)
    if (source) source->start();

  // Submit all requests at the end of the warmup (the paper's queue: they
  // arrive together, the controller serializes them).
  harness.sim.schedule(config.warmup, [&]() {
    for (std::size_t i = 0; i < instances.size(); ++i) {
      harness.ctrl->submit(controller::request_from_schedule(
          *instances[i], *schedules[i], config.flow + i, config.priority,
          config.interval));
    }
  });

  harness.sim.run();

  if (!harness.ctrl->idle() ||
      harness.ctrl->completed().size() != instances.size())
    return make_error(Errc::kFailedPrecondition,
                      "simulation drained before all updates completed");

  std::vector<ExecutionResult> results(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    ExecutionResult& result = results[i];
    result.update = harness.ctrl->completed()[i];
    result.traffic = monitors[i]->report();
    result.timeline = monitors[i]->timeline();
    result.timeline_bucket = monitors[i]->bucket_width();
    result.frames_sent = harness.total_frames();
    result.control_bytes = harness.total_bytes();
    result.packets_injected =
        (config.with_traffic && i < sources.size() && sources[i])
            ? sources[i]->injected()
            : 0;
  }
  return results;
}

Result<MergedExecutionResult> execute_merged(
    const std::vector<const update::Instance*>& instances,
    const std::vector<const update::Schedule*>& schedules,
    const ExecutorConfig& config) {
  if (instances.size() != schedules.size() || instances.empty())
    return make_error(Errc::kInvalidArgument,
                      "need matching, non-empty instance/schedule lists");

  Result<update::MergedSchedule> merged =
      update::merge_policies(instances, schedules);
  if (!merged.ok()) return merged.error();

  Harness harness(config);
  for (const update::Instance* inst : instances)
    add_instance_switches(harness, *inst, config);
  for (std::size_t i = 0; i < instances.size(); ++i)
    harness.install_initial(*instances[i], config.flow + i, config.priority);

  std::vector<FlowId> flows(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i)
    flows[i] = config.flow + i;

  std::vector<std::unique_ptr<dataplane::ConsistencyMonitor>> monitors;
  std::vector<std::unique_ptr<dataplane::TrafficSource>> sources;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    monitors.push_back(std::make_unique<dataplane::ConsistencyMonitor>());
    if (!config.with_traffic) continue;
    const update::Instance& inst = *instances[i];
    dataplane::TrafficConfig traffic;
    traffic.flow = flows[i];
    traffic.ingress = inst.source();
    traffic.egress = inst.destination();
    traffic.waypoint = inst.waypoint();
    traffic.interarrival = config.traffic_interarrival;
    traffic.link_latency = config.link_latency;
    traffic.ttl = config.ttl;
    traffic.start = 0;
    traffic.stop = std::numeric_limits<sim::SimTime>::max();
    sources.push_back(std::make_unique<dataplane::TrafficSource>(
        harness.sim, harness.switches, traffic, harness.rng.fork(),
        *monitors[i]));
  }

  harness.ctrl->set_on_update_done(
      [&](const controller::UpdateMetrics&) {
        for (auto& source : sources)
          if (source) source->set_stop(harness.sim.now() + config.drain);
      });
  for (auto& source : sources)
    if (source) source->start();

  harness.sim.schedule(config.warmup, [&]() {
    harness.ctrl->submit(controller::request_from_merged(
        instances, schedules, merged.value(), flows, config.priority,
        config.interval));
  });

  harness.sim.run();

  if (!harness.ctrl->idle() || harness.ctrl->completed().size() != 1)
    return make_error(Errc::kFailedPrecondition,
                      "simulation drained before the merged update finished");

  MergedExecutionResult result;
  result.update = harness.ctrl->completed().front();
  for (const auto& monitor : monitors)
    result.traffic.push_back(monitor->report());
  result.frames_sent = harness.total_frames();
  return result;
}

}  // namespace tsu::core
