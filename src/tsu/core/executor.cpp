#include "tsu/core/executor.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <unordered_map>

#include "tsu/sim/simulator.hpp"
#include "tsu/util/log.hpp"

namespace tsu::core {

namespace {

flow::FlowRule rule_from_mod(const proto::FlowMod& mod) {
  return flow::FlowRule{mod.match, mod.action, mod.priority, mod.cookie};
}

// Everything one simulated run needs, wired together.
struct Harness {
  sim::Simulator sim;
  Rng rng;
  std::vector<std::unique_ptr<switchsim::SimSwitch>> switch_storage;
  std::vector<switchsim::SimSwitch*> switches;  // by NodeId
  std::vector<std::unique_ptr<channel::DuplexChannel>> channels;
  std::unique_ptr<controller::Controller> ctrl;

  Harness(const ExecutorConfig& config,
          const controller::ControllerConfig& controller_config)
      : rng(config.seed) {
    ctrl = std::make_unique<controller::Controller>(sim, controller_config);
  }

  void add_switch(NodeId node, const ExecutorConfig& config) {
    if (node < switches.size() && switches[node] != nullptr) return;
    if (switches.size() <= node) switches.resize(node + 1, nullptr);

    auto sw = std::make_unique<switchsim::SimSwitch>(
        sim, node, static_cast<DatapathId>(node), config.switch_config,
        rng.fork());
    auto duplex = std::make_unique<channel::DuplexChannel>(
        sim, config.channel, rng);

    switchsim::SimSwitch* sw_ptr = sw.get();
    channel::DuplexChannel* duplex_ptr = duplex.get();
    controller::Controller* ctrl_ptr = ctrl.get();

    duplex_ptr->to_switch.set_receiver(
        [sw_ptr](const proto::Message& m) { sw_ptr->receive(m); });
    duplex_ptr->to_controller.set_receiver(
        [ctrl_ptr, node](const proto::Message& m) {
          ctrl_ptr->on_message(node, m);
        });
    sw_ptr->set_controller_link([duplex_ptr](const proto::Message& m) {
      duplex_ptr->to_controller.send(m);
    });
    ctrl->attach_switch(node, [duplex_ptr](const proto::Message& m) {
      duplex_ptr->to_switch.send(m);
    });

    switches[node] = sw_ptr;
    switch_storage.push_back(std::move(sw));
    channels.push_back(std::move(duplex));
  }

  void install_initial(const update::Instance& inst, FlowId flow,
                       std::uint16_t priority) {
    for (const controller::RoundOp& op :
         controller::initial_rules(inst, flow, priority))
      switches[op.node]->table().add(rule_from_mod(op.mod));
  }

  std::size_t total_frames() const {
    std::size_t frames = 0;
    for (const auto& duplex : channels)
      frames += duplex->to_switch.frames_sent() +
                duplex->to_controller.frames_sent();
    return frames;
  }

  std::size_t total_bytes() const {
    std::size_t bytes = 0;
    for (const auto& duplex : channels)
      bytes += duplex->to_switch.bytes_sent() +
               duplex->to_controller.bytes_sent();
    return bytes;
  }

  std::size_t total_messages() const {
    std::size_t messages = 0;
    for (const auto& duplex : channels)
      messages += duplex->to_switch.messages_sent() +
                  duplex->to_controller.messages_sent();
    return messages;
  }
};

void add_instance_switches(Harness& harness, const update::Instance& inst,
                           const ExecutorConfig& config) {
  for (NodeId v = 0; v < inst.node_count(); ++v)
    if (inst.on_old(v) || inst.on_new(v)) harness.add_switch(v, config);
}

// Per-flow traffic sources feeding one MultiFlowMonitor; flow i of the run
// is config.flow + i.
std::vector<std::unique_ptr<dataplane::TrafficSource>> make_sources(
    Harness& harness, dataplane::MultiFlowMonitor& monitors,
    const std::vector<const update::Instance*>& instances,
    const ExecutorConfig& config) {
  std::vector<std::unique_ptr<dataplane::TrafficSource>> sources;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const FlowId flow = config.flow + i;
    dataplane::ConsistencyMonitor& monitor = monitors.monitor(flow);
    if (!config.with_traffic) continue;
    const update::Instance& inst = *instances[i];
    dataplane::TrafficConfig traffic;
    traffic.flow = flow;
    traffic.ingress = inst.source();
    traffic.egress = inst.destination();
    traffic.waypoint = inst.waypoint();
    traffic.interarrival = config.traffic_interarrival;
    traffic.link_latency = config.link_latency;
    traffic.ttl = config.ttl;
    traffic.start = 0;
    traffic.stop = std::numeric_limits<sim::SimTime>::max();
    sources.push_back(std::make_unique<dataplane::TrafficSource>(
        harness.sim, harness.switches, traffic, harness.rng.fork(), monitor));
  }
  return sources;
}

// The shared engine behind execute_queue and execute_multiflow: wire the
// control plane, run traffic, submit every request at the end of the
// warmup, and collect per-flow results (flows[i] belongs to instances[i],
// regardless of completion order).
struct RunOutput {
  std::vector<ExecutionResult> flows;
  dataplane::MonitorReport aggregate;
  std::size_t frames_sent = 0;
  std::size_t control_bytes = 0;
  std::size_t messages_sent = 0;
  std::size_t max_in_flight_observed = 0;
  sim::Duration makespan = 0;
};

Result<RunOutput> run_updates(
    const std::vector<const update::Instance*>& instances,
    const std::vector<const update::Schedule*>& schedules,
    const ExecutorConfig& config,
    const controller::ControllerConfig& controller_config) {
  if (instances.size() != schedules.size() || instances.empty())
    return make_error(Errc::kInvalidArgument,
                      "need matching, non-empty instance/schedule lists");

  Harness harness(config, controller_config);
  for (const update::Instance* inst : instances)
    add_instance_switches(harness, *inst, config);
  for (std::size_t i = 0; i < instances.size(); ++i)
    harness.install_initial(*instances[i], config.flow + i, config.priority);

  dataplane::MultiFlowMonitor monitors;
  std::vector<std::unique_ptr<dataplane::TrafficSource>> sources =
      make_sources(harness, monitors, instances, config);

  // Stop injecting `drain` after the last update completes.
  std::size_t done_count = 0;
  harness.ctrl->set_on_update_done(
      [&](const controller::UpdateMetrics&) {
        if (++done_count != instances.size()) return;
        // Give in-flight packets and the monitor a drain window.
        // (set_stop is monotone: injection checks the new bound.)
        for (auto& source : sources)
          if (source) source->set_stop(harness.sim.now() + config.drain);
      });

  for (auto& source : sources)
    if (source) source->start();

  // Submit all requests at the end of the warmup (the paper's queue: they
  // arrive together; how many progress at once is the controller's
  // max_in_flight).
  harness.sim.schedule(config.warmup, [&]() {
    for (std::size_t i = 0; i < instances.size(); ++i) {
      harness.ctrl->submit(controller::request_from_schedule(
          *instances[i], *schedules[i], config.flow + i, config.priority,
          config.interval));
    }
  });

  harness.sim.run();

  if (!harness.ctrl->idle() ||
      harness.ctrl->completed().size() != instances.size())
    return make_error(Errc::kFailedPrecondition,
                      "simulation drained before all updates completed");

  // Completion order need not match submission order when updates run
  // concurrently; route metrics back to their request by flow id.
  std::unordered_map<FlowId, const controller::UpdateMetrics*> by_flow;
  for (const controller::UpdateMetrics& m : harness.ctrl->completed())
    by_flow[m.flow] = &m;

  RunOutput out;
  out.frames_sent = harness.total_frames();
  out.control_bytes = harness.total_bytes();
  out.messages_sent = harness.total_messages();
  out.max_in_flight_observed = harness.ctrl->max_in_flight_observed();
  out.aggregate = monitors.aggregate();

  sim::SimTime first_start = std::numeric_limits<sim::SimTime>::max();
  sim::SimTime last_finish = 0;
  out.flows.resize(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const FlowId flow = config.flow + i;
    const auto it = by_flow.find(flow);
    if (it == by_flow.end())
      return make_error(Errc::kFailedPrecondition,
                        "no completed update for flow");
    ExecutionResult& result = out.flows[i];
    result.update = *it->second;
    const dataplane::ConsistencyMonitor* monitor = monitors.find(flow);
    TSU_ASSERT(monitor != nullptr);
    result.traffic = monitor->report();
    result.timeline = monitor->timeline();
    result.timeline_bucket = monitor->bucket_width();
    result.frames_sent = out.frames_sent;
    result.control_bytes = out.control_bytes;
    result.packets_injected =
        (config.with_traffic && i < sources.size() && sources[i])
            ? sources[i]->injected()
            : 0;
    first_start = std::min(first_start, result.update.started);
    last_finish = std::max(last_finish, result.update.finished);
  }
  out.makespan = last_finish - first_start;
  return out;
}

}  // namespace

Result<ExecutionResult> execute(const update::Instance& inst,
                                const update::Schedule& schedule,
                                const ExecutorConfig& config) {
  std::vector<const update::Instance*> instances{&inst};
  std::vector<const update::Schedule*> schedules{&schedule};
  Result<std::vector<ExecutionResult>> results =
      execute_queue(instances, schedules, config);
  if (!results.ok()) return results.error();
  TSU_ASSERT(results.value().size() == 1);
  return std::move(results).value()[0];
}

Result<std::vector<ExecutionResult>> execute_queue(
    const std::vector<const update::Instance*>& instances,
    const std::vector<const update::Schedule*>& schedules,
    const ExecutorConfig& config) {
  // The paper's strictly serializing message queue.
  controller::ControllerConfig serialized = config.controller;
  serialized.max_in_flight = 1;
  Result<RunOutput> out =
      run_updates(instances, schedules, config, serialized);
  if (!out.ok()) return out.error();
  return std::move(out.value().flows);
}

Result<MultiFlowExecutionResult> execute_multiflow(
    const std::vector<const update::Instance*>& instances,
    const std::vector<const update::Schedule*>& schedules,
    const ExecutorConfig& config) {
  Result<RunOutput> out =
      run_updates(instances, schedules, config, config.controller);
  if (!out.ok()) return out.error();
  MultiFlowExecutionResult result;
  result.flows = std::move(out.value().flows);
  result.aggregate = out.value().aggregate;
  result.frames_sent = out.value().frames_sent;
  result.control_bytes = out.value().control_bytes;
  result.messages_sent = out.value().messages_sent;
  result.max_in_flight_observed = out.value().max_in_flight_observed;
  result.makespan = out.value().makespan;
  return result;
}

Result<MergedExecutionResult> execute_merged(
    const std::vector<const update::Instance*>& instances,
    const std::vector<const update::Schedule*>& schedules,
    const ExecutorConfig& config) {
  if (instances.size() != schedules.size() || instances.empty())
    return make_error(Errc::kInvalidArgument,
                      "need matching, non-empty instance/schedule lists");

  Result<update::MergedSchedule> merged =
      update::merge_policies(instances, schedules);
  if (!merged.ok()) return merged.error();

  Harness harness(config, config.controller);
  for (const update::Instance* inst : instances)
    add_instance_switches(harness, *inst, config);
  for (std::size_t i = 0; i < instances.size(); ++i)
    harness.install_initial(*instances[i], config.flow + i, config.priority);

  std::vector<FlowId> flows(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i)
    flows[i] = config.flow + i;

  dataplane::MultiFlowMonitor monitors;
  std::vector<std::unique_ptr<dataplane::TrafficSource>> sources =
      make_sources(harness, monitors, instances, config);

  harness.ctrl->set_on_update_done(
      [&](const controller::UpdateMetrics&) {
        for (auto& source : sources)
          if (source) source->set_stop(harness.sim.now() + config.drain);
      });
  for (auto& source : sources)
    if (source) source->start();

  harness.sim.schedule(config.warmup, [&]() {
    harness.ctrl->submit(controller::request_from_merged(
        instances, schedules, merged.value(), flows, config.priority,
        config.interval));
  });

  harness.sim.run();

  if (!harness.ctrl->idle() || harness.ctrl->completed().size() != 1)
    return make_error(Errc::kFailedPrecondition,
                      "simulation drained before the merged update finished");

  MergedExecutionResult result;
  result.update = harness.ctrl->completed().front();
  for (const FlowId flow : flows) {
    const dataplane::ConsistencyMonitor* monitor = monitors.find(flow);
    TSU_ASSERT(monitor != nullptr);
    result.traffic.push_back(monitor->report());
  }
  result.frames_sent = harness.total_frames();
  return result;
}

}  // namespace tsu::core
